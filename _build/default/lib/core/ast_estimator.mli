(** The AST-based intra-procedural estimators (paper section 4.2).

    A single top-down walk assigns each statement an execution frequency
    relative to one entry of the function: loop bodies use the standard
    5-iteration model, conditional arms split the incoming frequency, and
    switch arms are weighted by their case labels. As in the paper, the
    walk ignores break/continue/goto/return. *)

module Ast = Cfront.Ast
module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Cfg = Cfg_ir.Cfg

(** [Loop] splits branches 50/50; [Smart] applies the branch-prediction
    heuristics with the configured predicted-arm probability. *)
type mode = Loop | Smart

val mode_to_string : mode -> string

(** [count_labels body] counts the case labels of a switch body (without
    entering nested switches) and reports whether a default is present. *)
val count_labels : Ast.stmt -> int * bool

(** How many case labels directly mark a statement (case a: case b: s). *)
val marker_count : Ast.stmt -> int

(** Per-statement frequencies for one function, entry = 1, keyed by
    statement node id. *)
val stmt_freqs :
  Typecheck.t -> Ast.fundef -> mode -> (Ast.node_id, float) Hashtbl.t

(** Statement frequencies mapped onto the CFG's basic blocks through the
    "first statement lowered into the block" link. *)
val block_freqs : Typecheck.t -> Cfg.fn -> mode -> float array
