(* Test entry point: one alcotest binary running every suite. *)

let () =
  Alcotest.run "static-estimators"
    [ ("lexer", Test_lexer.suite);
      ("preproc", Test_preproc.suite);
      ("parser", Test_parser.suite);
      ("typecheck", Test_typecheck.suite);
      ("const-fold", Test_const_fold.suite);
      ("cfg", Test_cfg.suite);
      ("interp", Test_interp.suite);
      ("compile", Test_compile.suite);
      ("linalg", Test_linalg.suite);
      ("solver", Test_solver.suite);
      ("weight-matching", Test_weight_matching.suite);
      ("branch-predictor", Test_branch_predictor.suite);
      ("intra-estimators", Test_estimators.suite);
      ("inter-estimators", Test_inter.suite);
      ("miss-rate", Test_missrate.suite);
      ("pipeline", Test_pipeline.suite);
      ("config", Test_config.suite);
      ("differential", Test_differential.suite);
      ("parallel", Test_parallel.suite);
      ("fault", Test_fault.suite);
      ("hist", Test_hist.suite);
      ("trace", Test_trace.suite);
      ("record", Test_record.suite);
      ("corpus", Test_corpus.suite);
      ("incr", Test_incr.suite);
      ("persist", Test_persist.suite);
      (* supervise lives in test/supervise/ as its own executable: it
         forks, and this binary's Parallel fan-outs make fork illegal
         for the rest of the process. *)
      ("serve", Test_serve.suite);
      ("misc", Test_misc.suite);
      ("dominance", Test_dominance.suite);
      ("suite-programs", Test_suite_programs.suite) ]
