(* Compile-time constant evaluation over typechecked expressions.

   Used for two purposes from the paper:
   - excluding branches "whose conditional expressions could be determined
     via constant folding" from branch-prediction scoring (section 2), and
   - evaluating case labels and global initializers.

   Returns [None] for anything not statically known. *)

type value = Cint of int | Cfloat of float

let is_true = function Cint n -> n <> 0 | Cfloat f -> f <> 0.0

let to_int = function Cint n -> n | Cfloat f -> int_of_float f
let to_float = function Cint n -> float_of_int n | Cfloat f -> f

let rec eval (tc : Typecheck.t) (e : Ast.expr) : value option =
  let open Ast in
  match e.enode with
  | IntLit n -> Some (Cint n)
  | CharLit c -> Some (Cint c)
  | FloatLit f -> Some (Cfloat f)
  | StringLit _ -> None (* an address: truthy but not a numeric constant *)
  | Ident _ -> begin
    match Typecheck.resolution_of tc e with
    | Some (Typecheck.Renum v) -> Some (Cint v)
    | _ -> None
  end
  | Unop (op, a) -> begin
    match (op, eval tc a) with
    | _, None -> None
    | Uneg, Some (Cint n) -> Some (Cint (-n))
    | Uneg, Some (Cfloat f) -> Some (Cfloat (-.f))
    | Uplus, v -> v
    | Unot, Some v -> Some (Cint (if is_true v then 0 else 1))
    | Ubnot, Some (Cint n) -> Some (Cint (lnot n))
    | Ubnot, Some (Cfloat _) -> None
    | (Uderef | Uaddr), _ -> None
  end
  | Binop (op, a, b) -> eval_binop tc op a b
  | Cond (c, a, b) -> begin
    match eval tc c with
    | Some v -> if is_true v then eval tc a else eval tc b
    | None -> None
  end
  | Cast (ty, a) -> begin
    match (ty, eval tc a) with
    | _, None -> None
    | (Ctypes.Tint | Ctypes.Tchar), Some v -> Some (Cint (to_int v))
    | Ctypes.Tdouble, Some v -> Some (Cfloat (to_float v))
    | _ -> None
  end
  | SizeofT ty -> begin
    try Some (Cint (Ctypes.size_of tc.Typecheck.tunit.Ast.structs ty))
    with Ctypes.Type_error _ -> None
  end
  | SizeofE _ -> None (* would need the operand type pre-decay; rare *)
  | Assign _ | Call _ | Index _ | Field _ | Arrow _ | PreIncr _ | PreDecr _
  | PostIncr _ | PostDecr _ | Comma _ ->
    None

and eval_binop tc op a b : value option =
  let open Ast in
  (* && and || can fold from the left operand alone *)
  match op with
  | Bland -> begin
    match eval tc a with
    | Some v when not (is_true v) -> Some (Cint 0)
    | Some _ -> begin
      match eval tc b with
      | Some v -> Some (Cint (if is_true v then 1 else 0))
      | None -> None
    end
    | None -> None
  end
  | Blor -> begin
    match eval tc a with
    | Some v when is_true v -> Some (Cint 1)
    | Some _ -> begin
      match eval tc b with
      | Some v -> Some (Cint (if is_true v then 1 else 0))
      | None -> None
    end
    | None -> None
  end
  | _ -> begin
    match (eval tc a, eval tc b) with
    | Some x, Some y -> apply op x y
    | _ -> None
  end

and apply op x y : value option =
  let open Ast in
  let bool_ b = Some (Cint (if b then 1 else 0)) in
  match (x, y) with
  | Cint a, Cint b -> begin
    match op with
    | Badd -> Some (Cint (a + b))
    | Bsub -> Some (Cint (a - b))
    | Bmul -> Some (Cint (a * b))
    | Bdiv -> if b = 0 then None else Some (Cint (a / b))
    | Bmod -> if b = 0 then None else Some (Cint (a mod b))
    | Bshl -> Some (Cint (a lsl b))
    | Bshr -> Some (Cint (a asr b))
    | Blt -> bool_ (a < b)
    | Bgt -> bool_ (a > b)
    | Ble -> bool_ (a <= b)
    | Bge -> bool_ (a >= b)
    | Beq -> bool_ (a = b)
    | Bne -> bool_ (a <> b)
    | Bband -> Some (Cint (a land b))
    | Bbor -> Some (Cint (a lor b))
    | Bbxor -> Some (Cint (a lxor b))
    | Bland | Blor -> None (* handled above *)
  end
  | _ ->
    let a = to_float x and b = to_float y in
    (match op with
    | Badd -> Some (Cfloat (a +. b))
    | Bsub -> Some (Cfloat (a -. b))
    | Bmul -> Some (Cfloat (a *. b))
    | Bdiv -> if b = 0.0 then None else Some (Cfloat (a /. b))
    | Blt -> bool_ (a < b)
    | Bgt -> bool_ (a > b)
    | Ble -> bool_ (a <= b)
    | Bge -> bool_ (a >= b)
    | Beq -> bool_ (a = b)
    | Bne -> bool_ (a <> b)
    | Bmod | Bshl | Bshr | Bband | Bbor | Bbxor | Bland | Blor -> None)

(* A branch condition is "constant" for miss-rate purposes if it folds. *)
let is_constant_condition tc e = eval tc e <> None

(* Evaluate an integer constant (case labels); raises on failure. *)
let eval_int_exn tc (e : Ast.expr) : int =
  match eval tc e with
  | Some v -> to_int v
  | None ->
    raise (Typecheck.Error ("expected integer constant", e.Ast.epos))
