test/test_pipeline.ml: Alcotest Array Cfg_ir Cinterp Core Driver Lazy List Option String
