(* Process-wide fault record store.

   This is the recording half of the driver's fault-tolerance layer
   ([Driver.Fault] adds the typed taxonomy, capture combinators and
   rendering). It lives in [obs] — the dependency-free bottom of the
   tree — because recoveries happen *below* the driver too: the Markov
   solvers record their last-resort fallbacks and the interpreter
   records budget exhaustion, and neither can link against [Driver].

   Records accumulate under a mutex; cross-domain record order is
   scheduling-dependent, so consumers sort before rendering. *)

type t = {
  stage : string;      (* compile | profile | solve | estimate | ... *)
  subject : string;    (* program or function name; "" when global *)
  detail : string;     (* free-form context: injection point, run index *)
  exn_text : string;   (* printed exception, "" for non-exception faults *)
  backtrace : string;  (* raw backtrace text, "" when not captured *)
  recovery : string;   (* what the system did instead of crashing *)
}

let m = Mutex.create ()
let log : t list ref = ref [] (* reversed: most recent first *)

let record ?(subject = "") ?(detail = "") ?(exn_text = "")
    ?(backtrace = "") ~(stage : string) (recovery : string) : unit =
  let f = { stage; subject; detail; exn_text; backtrace; recovery } in
  Mutex.lock m;
  log := f :: !log;
  Mutex.unlock m

let all () : t list =
  Mutex.lock m;
  let l = List.rev !log in
  Mutex.unlock m;
  l

let count () : int =
  Mutex.lock m;
  let n = List.length !log in
  Mutex.unlock m;
  n

let reset () : unit =
  Mutex.lock m;
  log := [];
  Mutex.unlock m
