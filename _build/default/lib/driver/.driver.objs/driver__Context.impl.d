lib/driver/context.ml: Cinterp Core Hashtbl List Suite
