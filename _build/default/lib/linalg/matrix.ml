(* Dense matrices over floats — just enough linear algebra for the Markov
   models: construction, multiplication (used by tests to validate
   solutions), and row access for the solver. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.0
  done;
  m

let of_rows (rows : float array array) =
  let nrows = Array.length rows in
  if nrows = 0 then create 0 0
  else begin
    let ncols = Array.length rows.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> ncols then invalid_arg "Matrix.of_rows: ragged")
      rows;
    let m = create nrows ncols in
    Array.iteri
      (fun i r -> Array.blit r 0 m.data (i * ncols) ncols)
      rows;
    m
  end

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.get";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.set";
  m.data.((i * m.cols) + j) <- v

let add_to m i j v = set m i j (get m i j +. v)

let copy m = { m with data = Array.copy m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mul_vec a (x : float array) =
  if a.cols <> Array.length x then invalid_arg "Matrix.mul_vec";
  Array.init a.rows (fun i ->
      let s = ref 0.0 in
      for j = 0 to a.cols - 1 do
        s := !s +. (a.data.((i * a.cols) + j) *. x.(j))
      done;
      !s)

let transpose m =
  let t = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      t.data.((j * t.cols) + i) <- m.data.((i * m.cols) + j)
    done
  done;
  t

let to_string m =
  let buf = Buffer.create 256 in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Buffer.add_string buf (Printf.sprintf "%8.3f " (get m i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
