(* Benchmark harness.

   Three parts:
   1. Reproduction: prints every table and figure of the paper's
      evaluation (the same rows/series, from the 14-program suite).
   2. Suite-throughput: wall-clock time of the whole suite pipeline
      (compile + profile + smart estimates), sequential vs parallel, and
      the resulting speedup (~1x on a single-core machine by design).
   3. Bechamel micro-benchmarks: one Test.make per table/figure, timing
      the analysis machinery that experiment exercises (the paper's claim
      that estimation runs at "conventional optimization" speed).

   Run everything:        dune exec bench/main.exe
   Only the timings:      dune exec bench/main.exe -- --bench-only
   Only the experiments:  dune exec bench/main.exe -- --repro-only
   Only profile bench:    dune exec bench/main.exe -- --profile-only
   Parallelism:           dune exec bench/main.exe -- --jobs 8
   Back end:              dune exec bench/main.exe -- --interp-backend tree
   Observability:         dune exec bench/main.exe -- --trace
                          dune exec bench/main.exe -- --metrics-out FILE
   Fault policy:          dune exec bench/main.exe -- --strict
                          dune exec bench/main.exe -- --chaos SEED

   Like bin/main.exe, a run that completes with recorded faults prints
   the fault summary to stderr and exits 3.

   The profile-throughput section times the two interpreter back ends
   (tree walker vs closure-compiled) over every (program, input) pair of
   the suite at jobs 1 and jobs N, and writes the numbers to
   BENCH_profile.json (path override: --profile-json FILE).

   --corpus sweeps the generated-corpus pipeline (generate + compile +
   profile + every estimator) over corpus size x jobs and writes
   BENCH_corpus.json (path override: --corpus-json FILE).

   --solver-only benchmarks the dense vs sparse Markov solvers over
   synthetic 10^3..10^5-node graphs and writes BENCH_solver.json (path
   override: --solver-json FILE); --solver MODE selects the solver used
   by the reproduction/throughput sections (dense, sparse or auto).

   --probe-overhead times one cold analysis pass under probes off /
   probes on / probes+histograms on, plus the per-call cost of the
   recording primitives, and writes BENCH_overhead.json (path
   override: --overhead-json FILE) — the numbers EXPERIMENTS.md quotes
   for the telemetry plane's cost.

   On a single-core machine every BENCH_*.json env block is tagged
   "single_core": "true" and a warning is printed, because jobs > 1 then
   adds domain-scheduling overhead without speedup — the documented
   jobs-4-slower-than-jobs-1 anomaly. *)

open Bechamel

module Pipeline = Core.Pipeline
module Cfg = Cfg_ir.Cfg
module Context = Driver.Context
module Parallel = Driver.Parallel

(* Pre-compiled inputs for the staged benchmark functions, drawn from the
   shared suite cache so the bench harness and the experiments never
   recompile the same program twice in one process. *)
let compile_bench name = (Context.by_name name).Context.compiled

let lisp = lazy (compile_bench "lisp_mini")
let compress = lazy (compile_bench "compress_mini")
let bison = lazy (compile_bench "bison_mini")
let cholesky = lazy (compile_bench "cholesky_mini")
let tree = lazy (compile_bench "tree_mini")

let lisp_source =
  lazy (Option.get (Suite.Registry.find "lisp_mini")).Suite.Bench_prog.source

(* The profile of compress's first run, via the same cache (profiles are
   stored in run order). *)
let compress_profile =
  lazy (List.hd (Context.by_name "compress_mini").Context.profiles)

let strchr_arrays =
  (* the Table 2 vectors *)
  ([| 5.0; 4.0; 0.8; 4.0; 1.0 |], [| 3.0; 3.0; 2.0; 1.0; 0.0 |])

let tests : Test.t list =
  [ Test.make ~name:"table1:front-end (lisp_mini parse+check+cfg)"
      (Staged.stage (fun () ->
           ignore (Pipeline.compile ~name:"lisp" (Lazy.force lisp_source))));
    Test.make ~name:"table2:weight-matching score"
      (Staged.stage (fun () ->
           let estimate, actual = strchr_arrays in
           ignore (Core.Weight_matching.score ~estimate ~actual ~cutoff:0.6)));
    Test.make ~name:"fig2:miss-rate tally (compress_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force compress in
           let prof = Lazy.force compress_profile in
           ignore
             (Core.Missrate.rate c.Pipeline.prog prof
                (Core.Missrate.smart_predictor c.Pipeline.prog))));
    Test.make ~name:"fig3:smart AST estimate (lisp_mini, all functions)"
      (Staged.stage (fun () ->
           let c = Lazy.force lisp in
           ignore (Pipeline.intra_table c Pipeline.Ismart)));
    Test.make ~name:"fig4:loop+smart+markov intra (bison_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force bison in
           ignore (Pipeline.intra_table c Pipeline.Iloop);
           ignore (Pipeline.intra_table c Pipeline.Ismart);
           ignore (Pipeline.intra_table c Pipeline.Imarkov)));
    Test.make ~name:"fig5a:simple inter estimators (lisp_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force lisp in
           let intra = Pipeline.intra_provider c Pipeline.Ismart in
           List.iter
             (fun k ->
               ignore (Core.Inter_simple.estimate c.Pipeline.graph ~intra k))
             Core.Inter_simple.all_kinds));
    Test.make ~name:"fig5bc:markov call-graph solve (lisp_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force lisp in
           let intra = Pipeline.intra_provider c Pipeline.Ismart in
           ignore (Core.Markov_inter.estimate c.Pipeline.graph ~intra)));
    Test.make ~name:"fig6_7:markov intra solve (cholesky_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force cholesky in
           ignore (Pipeline.intra_table c Pipeline.Imarkov)));
    Test.make ~name:"fig8:recursion repair (tree_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force tree in
           let intra = Pipeline.intra_provider c Pipeline.Ismart in
           ignore (Core.Markov_inter.estimate c.Pipeline.graph ~intra)));
    Test.make ~name:"fig9:call-site ranking (compress_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force compress in
           let intra = Pipeline.intra_provider c Pipeline.Ismart in
           ignore (Pipeline.callsite_estimate c ~intra Pipeline.Imarkov_inter)));
    Test.make ~name:"fig10:cost model (compress_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force compress in
           let prof = Lazy.force compress_profile in
           ignore
             (Pipeline.modelled_time c prof ~optimized:[ "hash_probe" ])))
  ]

let run_benchmarks () =
  print_endline "=== Bechamel micro-benchmarks (analysis machinery) ===\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            if ns > 1_000_000.0 then
              Printf.printf "  %-55s %10.3f ms/run\n%!" name (ns /. 1e6)
            else
              Printf.printf "  %-55s %10.1f us/run\n%!" name (ns /. 1e3)
          | _ -> Printf.printf "  %-55s (no estimate)\n%!" name)
        stats)
    tests

(* ------------------------------------------------------------------ *)
(* Suite throughput: the full per-program pipeline (compile, profile
   every input, smart intra estimates), sequential vs parallel. Both
   passes start from a cold cache; the differential test in
   [test/test_parallel.ml] asserts the two produce identical results, so
   this only reports wall-clock. *)

let warm_suite () =
  ignore
    (Parallel.map
       (fun (d : Context.prog_data) ->
         ignore (Pipeline.intra_table d.Context.compiled Pipeline.Ismart))
       (Context.all ()))

let run_suite_throughput (jobs : int) =
  let time_with j =
    Context.clear ();
    Parallel.set_jobs j;
    let t0 = Unix.gettimeofday () in
    warm_suite ();
    Unix.gettimeofday () -. t0
  in
  let n = List.length Suite.Registry.all in
  Printf.printf
    "=== Suite throughput (compile + profile + smart estimates, %d programs) ===\n\n"
    n;
  let seq = time_with 1 in
  let par = time_with jobs in
  Parallel.set_jobs jobs;
  Printf.printf "  sequential (--jobs 1)    %8.3f s\n" seq;
  Printf.printf "  parallel   (--jobs %-2d)   %8.3f s\n" jobs par;
  Printf.printf "  speedup                  %8.2fx" (seq /. par);
  if Parallel.default_jobs () < 2 then
    print_string "   (single-core machine: ~1x expected)";
  print_newline ();
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Profile throughput: tree vs closure-compiled back end over every
   (program, input) pair of the suite, at jobs 1 and jobs N. Lowering to
   closures happens once, outside the timed region — that is the
   deployment model (compile once, profile many inputs). The differential
   suite in [test/test_compile.ml] proves the two back ends produce
   bit-identical profiles, so this section only reports wall-clock. *)

(* One core means the domain pool can only time-slice: parallel configs
   measure scheduling overhead, not speedup. Say so once on stderr and
   tag every emitted JSON env block, so a BENCH file from such a machine
   is self-explaining. *)
let single_core () = Obs.Envmeta.cores () < 2

let warn_single_core () =
  if single_core () then
    prerr_endline
      "bench: warning: only one core available — jobs > 1 adds \
       domain-scheduling overhead without speedup, so parallel configs \
       will look slower than --jobs 1 (env blocks are tagged \
       \"single_core\": \"true\")"

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The same environment block the run records carry — plus the
   single-core tag — so bench numbers from different machines/commits
   can be told apart when compared. Shared by every BENCH_*.json. *)
let add_env_block (buf : Buffer.t) : unit =
  let env =
    Obs.Envmeta.common ()
    @ (if single_core () then [ ("single_core", "true") ] else [])
    @ [ ("timestamp",
         let t = Unix.gmtime (Unix.gettimeofday ()) in
         Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ"
           (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1) t.Unix.tm_mday
           t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec) ]
  in
  Buffer.add_string buf "  \"env\": {\n";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": \"%s\"%s\n" (json_escape k)
           (json_escape v)
           (if i = List.length env - 1 then "" else ",")))
    env;
  Buffer.add_string buf "  },\n";
  (* Any latency histograms recorded while this bench ran (probes on
     during a diagnostic pass) ride next to env: count/sum/min/max and
     p50/p90/p99/p999, nanoseconds. Empty when probes stayed off. *)
  (match Obs.Hist.all () with
  | [] -> ()
  | hists ->
    Buffer.add_string buf "  \"hists\": {\n";
    List.iteri
      (fun i (name, s) ->
        Buffer.add_string buf
          (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name)
             (Obs.Json.to_compact_string (Obs.Hist.summary_json s))
             (if i = List.length hists - 1 then "" else ",")))
      hists;
    Buffer.add_string buf "  },\n")

let run_profile_throughput (jobs : int) (json_path : string) =
  (* Compile (and profile-warm) the suite via the shared cache, then
     force the closure lowering for every program so neither back end
     pays one-time costs inside the timed region. *)
  let data = Context.all () in
  List.iter
    (fun (d : Context.prog_data) ->
      ignore (Pipeline.closure_exe d.Context.compiled))
    data;
  let pairs =
    List.concat_map
      (fun (d : Context.prog_data) ->
        List.map
          (fun (r : Suite.Bench_prog.run) ->
            ( d.Context.compiled,
              { Pipeline.argv = r.Suite.Bench_prog.r_argv;
                input = r.Suite.Bench_prog.r_input } ))
          d.Context.bench.Suite.Bench_prog.runs)
      data
  in
  let reps = 3 in
  (* Best-of-[reps] wall clock for one full profiling sweep; the summed
     work units (executed instruction units) are identical across
     backends and jobs settings by construction. *)
  let time_config (backend : Pipeline.backend) (j : int) : float * float =
    Parallel.set_jobs j;
    let best = ref infinity in
    let work = ref 0.0 in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let works =
        Parallel.map
          (fun (c, r) ->
            (Pipeline.run_once ~backend c r).Cinterp.Eval.work)
          pairs
      in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      work := List.fold_left ( +. ) 0.0 works
    done;
    (!best, !work)
  in
  let n_programs = List.length data in
  let n_pairs = List.length pairs in
  Printf.printf
    "=== Profile throughput (%d programs, %d (program, input) pairs, \
     best of %d) ===\n\n"
    n_programs n_pairs reps;
  let configs =
    [ (Pipeline.Tree, 1); (Pipeline.Tree, jobs);
      (Pipeline.Compiled, 1); (Pipeline.Compiled, jobs) ]
  in
  let results =
    List.map
      (fun (backend, j) ->
        let seconds, work = time_config backend j in
        Printf.printf "  %-8s  --jobs %-2d   %8.3f s   %12.0f work units/s\n%!"
          (Pipeline.backend_to_string backend)
          j seconds (work /. seconds);
        (backend, j, seconds, work))
      configs
  in
  Parallel.set_jobs jobs;
  let seconds_of b j =
    let _, _, s, _ =
      List.find (fun (b', j', _, _) -> b' = b && j' = j) results
    in
    s
  in
  let speedup_1 = seconds_of Pipeline.Tree 1 /. seconds_of Pipeline.Compiled 1 in
  let speedup_n =
    seconds_of Pipeline.Tree jobs /. seconds_of Pipeline.Compiled jobs
  in
  Printf.printf "\n  compiled vs tree speedup:  %.2fx (--jobs 1), %.2fx (--jobs %d)\n\n"
    speedup_1 speedup_n jobs;
  let _, _, _, work_units = List.hd results in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"suite\": \"%s\",\n" (json_escape "pldi94-estimators"));
  add_env_block buf;
  Buffer.add_string buf (Printf.sprintf "  \"programs\": %d,\n" n_programs);
  Buffer.add_string buf (Printf.sprintf "  \"run_pairs\": %d,\n" n_pairs);
  Buffer.add_string buf (Printf.sprintf "  \"reps\": %d,\n" reps);
  Buffer.add_string buf (Printf.sprintf "  \"work_units\": %.0f,\n" work_units);
  Buffer.add_string buf "  \"configs\": [\n";
  List.iteri
    (fun i (backend, j, seconds, work) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"backend\": \"%s\", \"jobs\": %d, \"seconds\": %.6f, \
            \"work_units_per_s\": %.1f }%s\n"
           (Pipeline.backend_to_string backend)
           j seconds (work /. seconds)
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_compiled_vs_tree_jobs1\": %.3f,\n" speedup_1);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_compiled_vs_tree_jobs%d\": %.3f\n" jobs
       speedup_n);
  Buffer.add_string buf "}\n";
  let oc = open_out json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  [profile throughput written to %s]\n\n" json_path

(* ------------------------------------------------------------------ *)
(* Corpus throughput: the full generated-corpus pipeline (seeded
   generation, compile, fuel-budgeted profiling, every estimator,
   distribution aggregation) swept over corpus size x jobs. The score
   store is reset around each configuration — corpus sizes share class
   names, so stale records from a larger sweep would otherwise leak
   into a smaller one's aggregate. *)

let run_corpus_sweep (jobs : int) (json_path : string) =
  let per_class_sizes = [ 5; 10; 20 ] in
  let jobs_list = if jobs <= 1 then [ 1 ] else [ 1; jobs ] in
  Printf.printf
    "=== Corpus throughput (generate + compile + profile + every estimator, \
     size small) ===\n\n";
  let results =
    List.concat_map
      (fun per_class ->
        List.map
          (fun j ->
            Parallel.set_jobs j;
            Driver.Score.reset ();
            let spec =
              { Driver.Corpus_eval.default_spec with
                Driver.Corpus_eval.c_per_class = per_class;
                c_size = Corpus.Shape.small }
            in
            let t0 = Unix.gettimeofday () in
            let r = Driver.Corpus_eval.evaluate spec in
            let dt = Unix.gettimeofday () -. t0 in
            let n = r.Driver.Corpus_eval.o_programs in
            Printf.printf
              "  per-class %-3d (%3d programs)  --jobs %-2d   %8.3f s   \
               %7.1f programs/s\n%!"
              per_class n j dt
              (float_of_int n /. dt);
            (per_class, j, n, dt))
          jobs_list)
      per_class_sizes
  in
  Driver.Score.reset ();
  Parallel.set_jobs jobs;
  print_newline ();
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"suite\": \"%s\",\n"
       (json_escape "pldi94-estimators-corpus"));
  add_env_block buf;
  Buffer.add_string buf "  \"seed\": 1,\n  \"size\": \"small\",\n";
  Buffer.add_string buf "  \"configs\": [\n";
  List.iteri
    (fun i (per_class, j, n, dt) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"per_class\": %d, \"jobs\": %d, \"programs\": %d, \
            \"seconds\": %.6f, \"programs_per_s\": %.1f }%s\n"
           per_class j n dt
           (float_of_int n /. dt)
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  [corpus throughput written to %s]\n\n" json_path

(* ------------------------------------------------------------------ *)
(* Solver scaling: dense elimination vs the sparse iterative path over
   synthetic huge graphs (10^3..10^5 nodes) — the regime ROADMAP item 2
   targets, far beyond the 60-400 LoC suite minis. Both generators are
   deterministic (pure functions of n), so the numbers are comparable
   across machines and commits. The CLI solver mode is saved and
   restored: this section times both paths explicitly. *)

(* A long CFG: straight-line flow partitioned into 25-block loop
   segments. Each segment ends in a 0.8 back edge to its header (the
   standard loop-guess probability) and a 0.2 exit into the next
   segment; every 7th block inside a segment is a 0.8/0.2 forward
   branch that skips one block. The last block returns. *)
let synthetic_cfg_arcs (n : int) : Linalg.Csr.arcs_iter =
 fun f ->
  for i = 0 to n - 2 do
    if i mod 25 = 24 then begin
      f i (i - 24) 0.8;
      f i (i + 1) 0.2
    end
    else if i mod 7 = 3 && i + 2 <= n - 1 then begin
      f i (i + 1) 0.8;
      f i (i + 2) 0.2
    end
    else f i (i + 1) 1.0
  done

(* A call graph shaped like a 4-ary tree (node i calls 4i+1..4i+4) with
   per-arc call weights cycling through 0.6..1.3 calls per invocation,
   a 0.3 direct-recursion self arc on every 13th node, and a low-weight
   cross arc (0.05) from every 11th node to an arbitrary other node —
   the irregular edges that keep the system from being a pure DAG. *)
let synthetic_callgraph_arcs (n : int) : Linalg.Csr.arcs_iter =
 fun f ->
  for i = 0 to n - 1 do
    for k = 0 to 3 do
      let child = (4 * i) + 1 + k in
      if child < n then
        f i child (0.6 +. (0.1 *. float_of_int ((i + k) mod 8)))
    done;
    if i mod 13 = 5 then f i i 0.3;
    if i mod 11 = 7 && n > 1 then begin
      let t = ((i * 7) + 3) mod n in
      if t <> i then f i t 0.05
    end
  done

let count_arcs (arcs : Linalg.Csr.arcs_iter) : int =
  let k = ref 0 in
  arcs (fun _ _ _ -> incr k);
  !k

let max_rel_diff (a : float array) (b : float array) : float =
  let m = ref 0.0 in
  Array.iteri
    (fun i av ->
      let d =
        Float.abs (av -. b.(i))
        /. Float.max 1.0 (Float.max (Float.abs av) (Float.abs b.(i)))
      in
      if d > !m then m := d)
    a;
  !m

let run_solver_bench (json_path : string) =
  let saved_mode = !Linalg.Linsolve.solver_mode in
  let saved_probes = Obs.Probe.enabled () in
  Fun.protect ~finally:(fun () ->
      Linalg.Linsolve.solver_mode := saved_mode;
      Obs.Probe.set_enabled saved_probes)
  @@ fun () ->
  Printf.printf
    "=== Solver scaling (dense elimination vs sparse iterative, synthetic \
     graphs) ===\n\n";
  let time_solve mode ~n arcs reps =
    Linalg.Linsolve.solver_mode := mode;
    let best = ref infinity in
    let result = ref [||] in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      result := Linalg.Linsolve.markov_frequencies_iter ~n ~source:0 arcs;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (!best, !result)
  in
  (* One probe-instrumented sparse solve per config reports the sweep
     count and final residual alongside the wall clock. *)
  let sparse_diag ~n arcs =
    Obs.Probe.set_enabled true;
    Obs.Probe.reset ();
    Linalg.Linsolve.solver_mode := Linalg.Linsolve.Sparse;
    ignore (Linalg.Linsolve.markov_frequencies_iter ~n ~source:0 arcs);
    let counter name =
      Option.map
        (fun c -> c.Obs.Probe.vmax)
        (List.assoc_opt name (Obs.Probe.counters ()))
    in
    let sweeps = counter "linsolve.gs.sweeps" in
    let residual = counter "linsolve.gs.residual" in
    Obs.Probe.set_enabled false;
    Obs.Probe.reset ();
    (sweeps, residual)
  in
  let configs =
    [ ("cfg", synthetic_cfg_arcs, [ 1_000; 3_000; 10_000; 100_000 ]);
      ("callgraph", synthetic_callgraph_arcs,
       [ 1_000; 3_000; 10_000; 100_000 ]) ]
  in
  let rows =
    List.concat_map
      (fun (label, gen, sizes) ->
        List.map
          (fun n ->
            let arcs = gen n in
            let nnz = count_arcs arcs in
            let reps = if n >= 10_000 then 1 else 3 in
            let sparse_s, sparse_x =
              time_solve Linalg.Linsolve.Sparse ~n arcs reps
            in
            let sweeps, residual = sparse_diag ~n arcs in
            (* the dense n*n build at 10^5 nodes is 80 GB — skip it *)
            let dense =
              if n > Linalg.Linsolve.dense_fallback_limit then None
              else begin
                let dense_s, dense_x =
                  time_solve Linalg.Linsolve.Dense ~n arcs reps
                in
                Some (dense_s, max_rel_diff dense_x sparse_x)
              end
            in
            (match dense with
            | Some (dense_s, diff) ->
              Printf.printf
                "  %-10s n=%-7d arcs=%-7d sparse %10.6f s   dense %10.6f \
                 s   speedup %8.1fx   max_rel_diff %.2e\n%!"
                label n nnz sparse_s dense_s (dense_s /. sparse_s) diff
            | None ->
              Printf.printf
                "  %-10s n=%-7d arcs=%-7d sparse %10.6f s   dense \
                 (skipped: system would be %d GB)\n%!"
                label n nnz sparse_s
                (n * n * 8 / 1_000_000_000));
            (label, n, nnz, sparse_s, sweeps, residual, dense))
          sizes)
      configs
  in
  print_newline ();
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"suite\": \"%s\",\n"
       (json_escape "pldi94-estimators-solver"));
  add_env_block buf;
  Buffer.add_string buf "  \"configs\": [\n";
  List.iteri
    (fun i (label, n, nnz, sparse_s, sweeps, residual, dense) ->
      let opt_num = function
        | Some v -> Printf.sprintf "%g" v
        | None -> "null"
      in
      let dense_s, speedup, diff =
        match dense with
        | Some (d, diff) -> (Some d, Some (d /. sparse_s), Some diff)
        | None -> (None, None, None)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"graph\": \"%s\", \"nodes\": %d, \"arcs\": %d, \
            \"sparse_seconds\": %.6f, \"gs_sweeps\": %s, \"residual\": \
            %s, \"dense_seconds\": %s, \"speedup\": %s, \"max_rel_diff\": \
            %s }%s\n"
           label n nnz sparse_s (opt_num sweeps) (opt_num residual)
           (opt_num dense_s) (opt_num speedup) (opt_num diff)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  [solver scaling written to %s]\n\n" json_path

(* ------------------------------------------------------------------ *)
(* Incremental analysis: cold vs warm vs single-function-edit over the
   suite plus a 200-program generated corpus, through the Driver.Incr
   content-addressed store. The headline number is the cost of
   re-analyzing *everything* after a one-function edit: every unchanged
   function hits the store, so the warm edit pass should be orders of
   magnitude cheaper than the cold pass. Scores are asserted
   bit-identical between the cold, warm and reverted passes — the store
   may only change timings. *)

let run_incremental_bench (json_path : string) =
  let corpus_per_class = 50 in
  let corpus =
    List.concat_map
      (fun cls ->
        List.init corpus_per_class (fun index ->
            ( Printf.sprintf "%s_%03d" (Corpus.Shape.class_to_string cls)
                index,
              Corpus.Genprog.generate ~seed:1 ~cls ~size:Corpus.Shape.small
                ~index )))
      Corpus.Shape.all_classes
  in
  let suite =
    List.map
      (fun (p : Suite.Bench_prog.t) ->
        (p.Suite.Bench_prog.name, p.Suite.Bench_prog.source))
      Suite.Registry.all
  in
  let sources = suite @ corpus in
  let n = List.length sources in
  let analyze_all srcs =
    let t0 = Unix.gettimeofday () in
    let results =
      Parallel.map
        (fun (name, source) ->
          let a = Driver.Incr.analyze ~name source in
          ( name, a.Driver.Incr.an_scores, a.Driver.Incr.an_fn_hits,
            a.Driver.Incr.an_fn_misses ))
        srcs
    in
    let dt = Unix.gettimeofday () -. t0 in
    let hits = List.fold_left (fun acc (_, _, h, _) -> acc + h) 0 results in
    let misses =
      List.fold_left (fun acc (_, _, _, m) -> acc + m) 0 results
    in
    (dt, hits, misses, List.map (fun (nm, s, _, _) -> (nm, s)) results)
  in
  Printf.printf
    "=== Incremental analysis (%d suite + %d corpus programs, all intra \
     kinds + markov inter) ===\n\n"
    (List.length suite) (List.length corpus);
  Driver.Incr.clear ();
  Driver.Incr.reset_stats ();
  let t_cold, h_cold, m_cold, scores_cold = analyze_all sources in
  let t_warm, h_warm, m_warm, scores_warm = analyze_all sources in
  (* Edit exactly one function-worth of content in one program: append
     a fresh probe function. Every pre-existing function's content hash
     is unchanged, so only the probe misses. *)
  let edited_name =
    match corpus with (nm, _) :: _ -> nm | [] -> assert false
  in
  let probe = "\nint __incr_probe(int x) { return x + 1; }\n" in
  let sources_edited =
    List.map
      (fun (nm, src) ->
        if nm = edited_name then (nm, src ^ probe) else (nm, src))
      sources
  in
  let t_edit, h_edit, m_edit, _ = analyze_all sources_edited in
  let t_revert, h_revert, m_revert, scores_revert = analyze_all sources in
  let warm_identical = compare scores_cold scores_warm = 0 in
  let revert_identical = compare scores_cold scores_revert = 0 in
  let st = Driver.Incr.stats () in
  (* Restart-warm: populate a durable store from a cold pass, simulate
     kill -9 (drop all in-memory state and the unflushed journal fd),
     reopen the directory and re-analyze. Every intra solve should be
     served from the restored entries; scores must stay bit-identical. *)
  let store_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_incr_store_%d" (Unix.getpid ()))
  in
  Driver.Incr.clear ();
  Driver.Incr.reset_stats ();
  ignore (Driver.Incr.open_store store_dir);
  let t_pcold, h_pcold, m_pcold, _ = analyze_all sources in
  Driver.Incr.crash_store ();
  let restore = Driver.Incr.open_store store_dir in
  let t_restart, h_restart, m_restart, scores_restart =
    analyze_all sources
  in
  Driver.Incr.close_store ();
  let restart_identical = compare scores_cold scores_restart = 0 in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  (try rm_rf store_dir with Sys_error _ | Unix.Unix_error _ -> ());
  let row label t h m =
    Printf.printf "  %-26s %8.3f s   fn hits %6d   fn misses %6d\n" label t
      h m
  in
  row "cold (empty store)" t_cold h_cold m_cold;
  row "warm (no edit)" t_warm h_warm m_warm;
  row (Printf.sprintf "one fn edited (%s)" edited_name) t_edit h_edit m_edit;
  row "reverted" t_revert h_revert m_revert;
  row "cold + journal" t_pcold h_pcold m_pcold;
  row
    (Printf.sprintf "restart warm (%d restored)" restore.Driver.Incr.rs_restored)
    t_restart h_restart m_restart;
  Printf.printf "\n  cold/warm speedup            %8.1fx\n" (t_cold /. t_warm);
  Printf.printf "  cold/single-edit speedup     %8.1fx\n" (t_cold /. t_edit);
  Printf.printf "  cold/restart-warm speedup    %8.1fx\n"
    (t_cold /. t_restart);
  Printf.printf "  scores: warm %s cold, reverted %s cold, restarted %s cold\n\n"
    (if warm_identical then "==" else "!=")
    (if revert_identical then "==" else "!=")
    (if restart_identical then "==" else "!=");
  if not (warm_identical && revert_identical && restart_identical) then begin
    prerr_endline
      "bench: ERROR: incremental scores diverged from the cold pass";
    exit 1
  end;
  (* One probe-instrumented warm pass — untimed, outside every measured
     phase — populates the latency histograms the JSON block below
     publishes. The timed phases run with probes in the caller's state
     (off by default), so instrumentation cannot skew the speedups. *)
  let saved_probes = Obs.Probe.enabled () in
  Obs.Probe.set_enabled true;
  ignore (analyze_all sources);
  Obs.Probe.set_enabled saved_probes;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"suite\": \"%s\",\n"
       (json_escape "pldi94-estimators-incremental"));
  add_env_block buf;
  Buffer.add_string buf
    (Printf.sprintf "  \"programs\": %d,\n  \"suite_programs\": %d,\n"
       n (List.length suite));
  Buffer.add_string buf
    (Printf.sprintf "  \"corpus_programs\": %d,\n  \"jobs\": %d,\n"
       (List.length corpus) (Parallel.jobs ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"edited_program\": \"%s\",\n"
       (json_escape edited_name));
  let phase label t h m last =
    Buffer.add_string buf
      (Printf.sprintf
         "    { \"phase\": \"%s\", \"seconds\": %.6f, \"fn_hits\": %d, \
          \"fn_misses\": %d }%s\n"
         label t h m
         (if last then "" else ","))
  in
  Buffer.add_string buf "  \"phases\": [\n";
  phase "cold" t_cold h_cold m_cold false;
  phase "warm" t_warm h_warm m_warm false;
  phase "single_fn_edit" t_edit h_edit m_edit false;
  phase "revert" t_revert h_revert m_revert false;
  phase "cold_journaled" t_pcold h_pcold m_pcold false;
  phase "restart_warm" t_restart h_restart m_restart true;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_cold_vs_warm\": %.2f,\n" (t_cold /. t_warm));
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_cold_vs_single_edit\": %.2f,\n"
       (t_cold /. t_edit));
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_cold_vs_restart_warm\": %.2f,\n"
       (t_cold /. t_restart));
  Buffer.add_string buf
    (Printf.sprintf "  \"restored_entries\": %d,\n"
       restore.Driver.Incr.rs_restored);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scores_bit_identical\": %b,\n  \"store\": { \"entries\": %d, \
        \"bytes\": %d, \"hits\": %d, \"misses\": %d, \"evictions\": %d }\n"
       (warm_identical && revert_identical && restart_identical)
       st.Driver.Incr.st_entries st.Driver.Incr.st_bytes
       st.Driver.Incr.st_hits st.Driver.Incr.st_misses
       st.Driver.Incr.st_evictions);
  Buffer.add_string buf "}\n";
  let oc = open_out json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Driver.Incr.clear ();
  Printf.printf "  [incremental analysis written to %s]\n\n" json_path

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: one cold suite+corpus analysis pass timed under
   three configurations — probes off (master switch gates every site),
   probes on with histograms suppressed, and the full plane — plus the
   per-call cost of the recording primitives in a tight loop. The
   acceptance bar is full-plane overhead within ~2% of probes-off;
   EXPERIMENTS.md records the measured numbers. *)

let run_probe_overhead (json_path : string) =
  let corpus =
    List.concat_map
      (fun cls ->
        List.init 40 (fun index ->
            ( Printf.sprintf "ovh_%s_%03d"
                (Corpus.Shape.class_to_string cls) index,
              Corpus.Genprog.generate ~seed:3 ~cls ~size:Corpus.Shape.small
                ~index )))
      Corpus.Shape.all_classes
  in
  let suite =
    List.map
      (fun (p : Suite.Bench_prog.t) ->
        (p.Suite.Bench_prog.name, p.Suite.Bench_prog.source))
      Suite.Registry.all
  in
  let sources = suite @ corpus in
  let reps = 5 in
  let cold_pass () =
    Driver.Incr.clear ();
    Driver.Incr.reset_stats ();
    let t0 = Unix.gettimeofday () in
    ignore
      (Parallel.map
         (fun (name, source) -> ignore (Driver.Incr.analyze ~name source))
         sources);
    Unix.gettimeofday () -. t0
  in
  let median xs =
    let a = List.sort compare xs in
    List.nth a (List.length a / 2)
  in
  let timed ~probes ~hists =
    Obs.Probe.set_enabled probes;
    Obs.Hist.set_enabled hists;
    let t = cold_pass () in
    Obs.Probe.set_enabled false;
    Obs.Hist.set_enabled true;
    t
  in
  Printf.printf
    "=== Telemetry overhead (%d programs, cold pass, median of %d) ===\n\n"
    (List.length sources) reps;
  (* two untimed warm-ups, then the three configurations interleaved
     per round so machine drift hits them equally *)
  ignore (timed ~probes:false ~hists:true);
  ignore (timed ~probes:true ~hists:true);
  let off = ref [] and probes_on = ref [] and full = ref [] in
  for _ = 1 to reps do
    off := timed ~probes:false ~hists:true :: !off;
    probes_on := timed ~probes:true ~hists:false :: !probes_on;
    full := timed ~probes:true ~hists:true :: !full
  done;
  Obs.Probe.reset ();
  Obs.Hist.reset ();
  let t_off = median !off in
  let t_probes = median !probes_on in
  let t_full = median !full in
  let pct t = 100.0 *. (t -. t_off) /. t_off in
  Printf.printf "  probes off             %8.3f s\n" t_off;
  Printf.printf "  probes on, no hists    %8.3f s   (%+.2f%%)\n" t_probes
    (pct t_probes);
  Printf.printf "  probes + histograms    %8.3f s   (%+.2f%%)\n\n" t_full
    (pct t_full);
  let ns_per_call f =
    let n = 2_000_000 in
    let t0 = Unix.gettimeofday () in
    for i = 1 to n do
      f i
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  Obs.Probe.set_enabled true;
  let count_ns = ns_per_call (fun _ -> Obs.Probe.count "overhead.count") in
  let observe_ns = ns_per_call (fun i -> Obs.Hist.observe "overhead.ns" i) in
  Obs.Probe.set_enabled false;
  let gated_ns = ns_per_call (fun i -> Obs.Hist.observe "overhead.ns" i) in
  Obs.Probe.reset ();
  Obs.Hist.reset ();
  Printf.printf "  Probe.count   %6.1f ns/call   Hist.observe %6.1f \
                 ns/call   disabled site %6.1f ns/call\n\n"
    count_ns observe_ns gated_ns;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"suite\": \"%s\",\n"
       (json_escape "pldi94-estimators-probe-overhead"));
  add_env_block buf;
  Buffer.add_string buf
    (Printf.sprintf
       "  \"programs\": %d,\n  \"reps\": %d,\n  \"probes_off_s\": %.6f,\n  \
        \"probes_on_s\": %.6f,\n  \"probes_on_pct\": %.3f,\n  \
        \"histograms_on_s\": %.6f,\n  \"histograms_on_pct\": %.3f,\n  \
        \"count_ns_per_call\": %.1f,\n  \"observe_ns_per_call\": %.1f,\n  \
        \"disabled_ns_per_call\": %.1f\n"
       (List.length sources) reps t_off t_probes (pct t_probes) t_full
       (pct t_full) count_ns observe_ns gated_ns);
  Buffer.add_string buf "}\n";
  let oc = open_out json_path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  [probe overhead written to %s]\n\n" json_path

let () =
  let args = Array.to_list Sys.argv in
  let bench_only = List.mem "--bench-only" args in
  let repro_only = List.mem "--repro-only" args in
  let profile_only = List.mem "--profile-only" args in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> (
        match int_of_string_opt n with
        | Some j -> j
        | None ->
          Printf.eprintf "bench: --jobs expects an integer, got %S\n" n;
          exit 2)
      | _ :: rest -> find rest
      | [] -> Parallel.default_jobs ()
    in
    find args
  in
  let trace = List.mem "--trace" args in
  let metrics_out =
    let rec find = function
      | "--metrics-out" :: f :: _ -> Some f
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  (match
     let rec find = function
       | "--interp-backend" :: b :: _ -> Some b
       | _ :: rest -> find rest
       | [] -> None
     in
     find args
   with
  | None -> ()
  | Some b -> (
    match Pipeline.backend_of_string b with
    | Some backend -> Pipeline.default_backend := backend
    | None ->
      Printf.eprintf "bench: --interp-backend expects tree or compiled, got %S\n" b;
      exit 2));
  let profile_json =
    let rec find = function
      | "--profile-json" :: f :: _ -> f
      | _ :: rest -> find rest
      | [] -> "BENCH_profile.json"
    in
    find args
  in
  let corpus_only = List.mem "--corpus" args in
  let corpus_json =
    let rec find = function
      | "--corpus-json" :: f :: _ -> f
      | _ :: rest -> find rest
      | [] -> "BENCH_corpus.json"
    in
    find args
  in
  let incremental_only = List.mem "--incremental" args in
  let incremental_json =
    let rec find = function
      | "--incremental-json" :: f :: _ -> f
      | _ :: rest -> find rest
      | [] -> "BENCH_incremental.json"
    in
    find args
  in
  let overhead_only = List.mem "--probe-overhead" args in
  let overhead_json =
    let rec find = function
      | "--overhead-json" :: f :: _ -> f
      | _ :: rest -> find rest
      | [] -> "BENCH_overhead.json"
    in
    find args
  in
  let solver_only = List.mem "--solver-only" args in
  let solver_json =
    let rec find = function
      | "--solver-json" :: f :: _ -> f
      | _ :: rest -> find rest
      | [] -> "BENCH_solver.json"
    in
    find args
  in
  (match
     let rec find = function
       | "--solver" :: m :: _ -> Some m
       | _ :: rest -> find rest
       | [] -> None
     in
     find args
   with
  | None -> ()
  | Some m -> (
    match Linalg.Linsolve.mode_of_string m with
    | Some mode -> Linalg.Linsolve.solver_mode := mode
    | None ->
      Printf.eprintf
        "bench: --solver expects dense, sparse or auto, got %S\n" m;
      exit 2));
  if List.mem "--strict" args then Driver.Fault.set_strict true;
  (let rec find = function
     | "--chaos" :: s :: _ -> (
       match int_of_string_opt s with
       | Some seed -> Driver.Fault.arm_chaos ~seed ()
       | None ->
         Printf.eprintf "bench: --chaos expects an integer seed, got %S\n" s;
         exit 2)
     | _ :: rest -> find rest
     | [] -> ()
   in
   find args);
  Parallel.set_jobs jobs;
  warn_single_core ();
  Driver.Trace.with_reporting ~trace ~metrics_out (fun () ->
      if incremental_only then run_incremental_bench incremental_json
      else if overhead_only then run_probe_overhead overhead_json
      else if solver_only then run_solver_bench solver_json
      else if corpus_only then run_corpus_sweep (max 2 jobs) corpus_json
      else if profile_only then run_profile_throughput (max 2 jobs) profile_json
      else begin
        if not bench_only then begin
          print_endline
            "=== Reproduction of every table and figure (PLDI 1994) ===\n";
          print_string (Driver.Experiments.run_all ());
          print_newline ()
        end;
        if not repro_only then begin
          run_suite_throughput (max 2 jobs);
          run_profile_throughput (max 2 jobs) profile_json;
          run_benchmarks ()
        end
      end);
  let faults = Driver.Fault.summary () in
  if faults <> "" then prerr_string faults;
  exit (Driver.Fault.exit_code ())
