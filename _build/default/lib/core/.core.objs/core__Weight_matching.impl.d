lib/core/weight_matching.ml: Array List
