(* Quickstart: compile a C function, estimate its block frequencies three
   ways, profile an actual run, and score the estimates with the
   weight-matching metric.

     dune exec examples/quickstart.exe *)

module Pipeline = Core.Pipeline
module Cfg = Cfg_ir.Cfg
module Profile = Cinterp.Profile

let source = {|
/* Count how many array elements exceed a threshold. */
int count_above(int *a, int n, int threshold) {
  int i, count = 0;
  for (i = 0; i < n; i++) {
    if (a[i] > threshold) count++;
  }
  return count;
}

int main(void) {
  int data[100];
  int i;
  for (i = 0; i < 100; i++) data[i] = (i * 37) % 100;
  printf("%d\n", count_above(data, 100, 75));
  return 0;
}
|}

let () =
  (* 1. Compile: preprocess, parse, typecheck, build CFGs. *)
  let c = Pipeline.compile ~name:"quickstart" source in
  let fn = Option.get (Cfg.find_fn c.Pipeline.prog "count_above") in
  Printf.printf "count_above has %d basic blocks\n\n" (Cfg.n_blocks fn);

  (* 2. Static estimates, relative to one function entry. *)
  let loop = Pipeline.intra_provider c Pipeline.Iloop "count_above" in
  let smart = Pipeline.intra_provider c Pipeline.Ismart "count_above" in
  let markov = Pipeline.intra_provider c Pipeline.Imarkov "count_above" in

  (* 3. Run the program; the interpreter profiles for free. *)
  let outcome = Pipeline.run_once c { Pipeline.argv = []; input = "" } in
  Printf.printf "program printed: %s" outcome.Cinterp.Eval.stdout_text;
  let actual = Profile.block_counts outcome.Cinterp.Eval.profile "count_above" in

  Printf.printf "\nblock   loop  smart  markov  actual\n";
  Array.iteri
    (fun i a ->
      Printf.printf "B%-5d %5.1f  %5.1f  %6.2f  %6.0f\n" i loop.(i)
        smart.(i) markov.(i) a)
    actual;

  (* 4. Score each estimate: how much of the top-20% weight it finds. *)
  let score estimate =
    Core.Weight_matching.score ~estimate ~actual ~cutoff:0.2
  in
  Printf.printf
    "\nweight-matching at 20%%: loop %.0f%%, smart %.0f%%, markov %.0f%%\n"
    (100.0 *. score loop) (100.0 *. score smart) (100.0 *. score markov)
