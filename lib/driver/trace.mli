(** Structured tracing and metrics for the estimator pipeline.

    The recording layer is {!Obs.Probe} (spans + counters, recorded
    per-domain, merged by span id); this module is the user-facing
    subsystem: it aggregates the recorded stream into a deterministic
    tree, renders it for humans ([--trace]) and exports it as JSON
    ([--metrics-out FILE]) on both [bin/main.exe] and [bench/main.exe].

    Tracing is purely observational: it never touches the analysis
    results, so the differential harness's byte-identity across [--jobs]
    settings holds with tracing on or off. *)

val enable : unit -> unit
(** Turn probe recording on (idempotent). *)

val enabled : unit -> bool

val with_span : string -> (unit -> 'a) -> 'a
(** Re-export of {!Obs.Probe.with_span} for driver-level code. *)

val render_tree : unit -> string
(** The recorded spans as a human-readable tree: spans are merged by
    span id (never completion order), grouped by label under their
    parent, and reported as [count × total-time]. Counters follow,
    sorted by name; then the fault summary ({!Fault.summary}), present
    only when the run degraded somewhere. *)

val metrics_json : unit -> string
(** The recorded spans, counters and faults as a JSON document:
    [{"jobs": n, "spans": [{"path", "count", "total_ms"} ...],
      "counters": [{"name", "hits", "total", "min", "max"} ...],
      "faults": [{"stage", "subject", "detail", "exn", "recovery"} ...]}].
    Span paths are slash-joined label chains, sorted lexicographically;
    counters are sorted by name; faults follow the deterministic
    {!Fault.sorted} order ([[]] when the run was healthy) — the document
    layout is deterministic for a given execution structure. *)

val with_reporting :
  trace:bool -> metrics_out:string option -> (unit -> 'a) -> 'a
(** [with_reporting ~trace ~metrics_out f] enables recording if either
    output was requested, runs [f] under a root ["run"] span, then
    prints the tree to stderr (when [trace]) and writes the JSON
    document to the given file (when [metrics_out]). Reports are emitted
    even when [f] raises — diagnostics matter most on failure. *)
