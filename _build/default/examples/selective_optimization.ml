(* Selective optimization (the paper's section 6 application): rank the
   functions of compress_mini by the static Markov invocation estimate,
   optimize them one at a time in that order, and watch the modelled run
   time fall — no profiling run required.

     dune exec examples/selective_optimization.exe *)

module Pipeline = Core.Pipeline
module Callgraph = Cfg_ir.Callgraph

let () =
  let bench = Option.get (Suite.Registry.find "compress_mini") in
  let c = Pipeline.compile ~name:"compress" bench.Suite.Bench_prog.source in
  let intra = Pipeline.intra_provider c Pipeline.Ismart in

  (* Static ranking: no execution needed. *)
  let estimates = Pipeline.inter_estimate c ~intra Pipeline.Imarkov_inter in
  let names = c.Pipeline.graph.Callgraph.names in
  let order =
    List.init (Array.length names) (fun i -> i)
    |> List.sort (fun a b -> compare estimates.(b) estimates.(a))
    |> List.map (fun i -> names.(i))
  in
  Printf.printf "static hot-function ranking:\n";
  List.iteri
    (fun i name -> if i < 8 then Printf.printf "  %d. %s\n" (i + 1) name)
    order;

  (* Evaluate against a real workload. *)
  let input =
    match bench.Suite.Bench_prog.runs with
    | r :: _ -> r.Suite.Bench_prog.r_input
    | [] -> ""
  in
  let outcome = Pipeline.run_once c { Pipeline.argv = []; input } in
  let profile = outcome.Cinterp.Eval.profile in
  let base = Pipeline.modelled_time c profile ~optimized:[] in
  Printf.printf "\n#optimized  speedup\n";
  List.iter
    (fun k ->
      let chosen = List.filteri (fun i _ -> i < k) order in
      let t = Pipeline.modelled_time c profile ~optimized:chosen in
      Printf.printf "%10d  %6.2fx%s\n" k (base /. t)
        (if k = 0 then "" else "  (+" ^ List.nth order (k - 1) ^ ")"))
    [ 0; 1; 2; 3; 4; 5; 6 ];
  let all = Array.to_list names in
  Printf.printf "%10d  %6.2fx  (everything)\n" (List.length all)
    (base /. Pipeline.modelled_time c profile ~optimized:all)
