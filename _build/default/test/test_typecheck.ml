(* Type checker tests: expression typing, name resolution, scoping, local
   slots, struct layout, lifted statics, and rejection of ill-typed
   programs. *)

open Cfront

let check_src src =
  let tu = Parser.parse_string ~file:"t.c" src in
  Typecheck.check tu

let expr_types src =
  (* Returns the recorded types of all Ident nodes named "probe". *)
  let tc = check_src src in
  let out = ref [] in
  List.iter
    (function
      | Ast.Gfun f ->
        Ast.iter_stmt f.Ast.f_body
          ~on_stmt:(fun _ -> ())
          ~on_expr:(fun e ->
            match e.Ast.enode with
            | Ast.Ident "probe" -> out := Typecheck.type_of tc e :: !out
            | _ -> ())
      | _ -> ())
    tc.Typecheck.tunit.Ast.globals;
  List.rev !out

let check_probe name src expected =
  match expr_types src with
  | [ t ] -> Alcotest.(check string) name expected (Ctypes.to_string t)
  | l -> Alcotest.failf "%s: %d probes" name (List.length l)

let test_decay () =
  check_probe "array decays" "int probe[4]; int f(void){ return *probe; }"
    "int*";
  check_probe "param array decays"
    "int f(int probe[8]) { return probe[0]; }" "int*";
  check_probe "function name is pointer"
    "int probe(void) { return 0; } int g(void) { return probe != NULL; }"
    "int()*"

let test_arith_types () =
  check_probe "char reads as char" "char probe; int f(void){ return probe; }"
    "char";
  check_probe "double" "double probe; double f(void){ return probe * 2.0; }"
    "double"

let test_resolutions () =
  let tc =
    check_src
      "int g; enum { E = 7 };\n\
       int f(int p) { int l; l = g + E + p; return l; }"
  in
  let kinds = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.Gfun fn ->
        Ast.iter_stmt fn.Ast.f_body
          ~on_stmt:(fun _ -> ())
          ~on_expr:(fun e ->
            match (e.Ast.enode, Typecheck.resolution_of tc e) with
            | Ast.Ident name, Some r -> Hashtbl.replace kinds name r
            | _ -> ())
      | _ -> ())
    tc.Typecheck.tunit.Ast.globals;
  (match Hashtbl.find kinds "g" with
  | Typecheck.Rglobal "g" -> ()
  | _ -> Alcotest.fail "g should be global");
  (match Hashtbl.find kinds "E" with
  | Typecheck.Renum 7 -> ()
  | _ -> Alcotest.fail "E should be enum 7");
  (match Hashtbl.find kinds "p" with
  | Typecheck.Rlocal 0 -> ()
  | _ -> Alcotest.fail "p should be local slot 0");
  match Hashtbl.find kinds "l" with
  | Typecheck.Rlocal 1 -> ()
  | _ -> Alcotest.fail "l should be local slot 1"

let test_shadowing () =
  (* inner x must get its own slot *)
  let tc =
    check_src "int f(int x) { { int x; x = 1; } return x; }"
  in
  let fi = Option.get (Typecheck.fun_info tc "f") in
  Alcotest.(check int) "two slots" 2
    (Array.length fi.Typecheck.fi_locals);
  Alcotest.(check bool) "param flag" true
    fi.Typecheck.fi_locals.(0).Typecheck.l_param;
  Alcotest.(check bool) "local flag" false
    fi.Typecheck.fi_locals.(1).Typecheck.l_param

let test_struct_layout () =
  let tc =
    check_src
      "struct inner { int a; int b; };\n\
       struct outer { int x; struct inner i; int arr[3]; double d; };\n\
       struct outer g;"
  in
  let reg = tc.Typecheck.tunit.Ast.structs in
  let outer =
    match (Hashtbl.find tc.Typecheck.globals "g").Ast.d_ty with
    | Ctypes.Tstruct i -> i
    | _ -> Alcotest.fail "struct"
  in
  let field n = Ctypes.find_field reg outer n in
  Alcotest.(check int) "x offset" 0 (field "x").Ctypes.fld_offset;
  Alcotest.(check int) "i offset" 1 (field "i").Ctypes.fld_offset;
  Alcotest.(check int) "arr offset" 3 (field "arr").Ctypes.fld_offset;
  Alcotest.(check int) "d offset" 6 (field "d").Ctypes.fld_offset;
  Alcotest.(check int) "total size" 7
    (Ctypes.size_of reg (Ctypes.Tstruct outer))

let test_static_local_lifted () =
  let tc =
    check_src
      "int bump(void) { static int counter = 0; counter++; return counter; }"
  in
  let lifted =
    List.filter (fun n -> String.length n > 4 && String.sub n 0 4 = "bump")
      tc.Typecheck.global_order
  in
  Alcotest.(check int) "one lifted static" 1 (List.length lifted)

let test_fun_order () =
  let tc = check_src "int a(void){return 0;} int b(void){return 0;} int main(void){return 0;}" in
  Alcotest.(check (list string)) "definition order" [ "a"; "b"; "main" ]
    tc.Typecheck.fun_order

let test_prototype_then_definition () =
  let tc =
    check_src
      "int helper(int);\n\
       int main(void) { return helper(1); }\n\
       int helper(int x) { return x + 1; }"
  in
  Alcotest.(check (list string)) "order keeps definitions" [ "main"; "helper" ]
    tc.Typecheck.fun_order

let test_builtin_resolution () =
  let tc = check_src "int main(void) { printf(\"%d\", 1); return 0; }" in
  let found = ref false in
  List.iter
    (function
      | Ast.Gfun f ->
        Ast.iter_stmt f.Ast.f_body
          ~on_stmt:(fun _ -> ())
          ~on_expr:(fun e ->
            match (e.Ast.enode, Typecheck.resolution_of tc e) with
            | Ast.Ident "printf", Some (Typecheck.Rbuiltin "printf") ->
              found := true
            | _ -> ())
      | _ -> ())
    tc.Typecheck.tunit.Ast.globals;
  Alcotest.(check bool) "printf is a builtin" true !found

let test_user_shadows_builtin () =
  (* a user definition of strchr must shadow the builtin *)
  let tc =
    check_src
      "char *strchr(char *s, int c) { return s; }\n\
       int main(void) { strchr(\"a\", 'a'); return 0; }"
  in
  Alcotest.(check bool) "strchr defined" true
    (List.mem "strchr" tc.Typecheck.fun_order)

let expect_error name src =
  match check_src src with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected type error" name

let test_type_errors () =
  expect_error "undeclared" "int f(void) { return nope; }";
  expect_error "call non-function" "int g; int f(void) { return g(); }";
  expect_error "wrong arity" "int h(int a) { return a; } int f(void) { return h(1, 2); }";
  expect_error "deref int" "int f(int x) { return *x; }";
  expect_error "field of non-struct" "int f(int x) { return x.f; }";
  expect_error "arrow on non-pointer" "struct s { int f; }; int f(struct s v) { return v->f; }";
  expect_error "unknown field" "struct s { int a; }; int f(struct s v) { return v.b; }";
  expect_error "assign to rvalue" "int f(int x) { (x + 1) = 2; return x; }";
  expect_error "void condition" "void g(void) {} int f(void) { if (g()) return 1; return 0; }";
  expect_error "missing return value" "int f(void) { return; }";
  expect_error "value from void" "void f(void) { return 3; }";
  expect_error "redefinition" "int f(void) { return 0; } int f(void) { return 1; }";
  expect_error "struct/scalar confusion" "struct s { int a; }; struct s v; int f(void) { return v + 1; }";
  expect_error "switch on double" "int f(double d) { switch (d) { default: return 0; } }";
  expect_error "mod on double" "int f(double d) { return d % 2; }";
  expect_error "sizeof void" "int f(void) { return sizeof(void); }"

let test_lenient_mixes_accepted () =
  (* these must typecheck: pointer/int compares, void* mixing, arithmetic
     promotions *)
  let _ =
    check_src
      "int f(char *p, int n, double d) {\n\
      \  void *v = p;\n\
      \  char *q = v;\n\
      \  if (p == NULL) return 0;\n\
      \  if (p) n = n + d;\n\
      \  return n + *p;\n\
       }"
  in
  ()

let suite =
  [ Alcotest.test_case "decay" `Quick test_decay;
    Alcotest.test_case "arith types" `Quick test_arith_types;
    Alcotest.test_case "resolutions" `Quick test_resolutions;
    Alcotest.test_case "shadowing" `Quick test_shadowing;
    Alcotest.test_case "struct layout" `Quick test_struct_layout;
    Alcotest.test_case "lifted statics" `Quick test_static_local_lifted;
    Alcotest.test_case "definition order" `Quick test_fun_order;
    Alcotest.test_case "prototype then definition" `Quick test_prototype_then_definition;
    Alcotest.test_case "builtin resolution" `Quick test_builtin_resolution;
    Alcotest.test_case "user shadows builtin" `Quick test_user_shadows_builtin;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "lenient mixes" `Quick test_lenient_mixes_accepted ]
