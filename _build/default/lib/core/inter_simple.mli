(** The simple function-invocation estimators (paper section 4.3):
    [call_site], [direct], [all_rec] and [all_rec2]. All combine
    per-function intra-procedural block frequencies with the static call
    graph, without solving a global flow problem. Indirect call-site
    counts are divided among address-taken functions in proportion to the
    static address-of census. *)

module Cfg = Cfg_ir.Cfg
module Callgraph = Cfg_ir.Callgraph

type kind =
  | Call_site  (** sum of the call sites' local block frequencies *)
  | Direct     (** [Call_site]; directly-recursive functions x5 *)
  | All_rec    (** functions in any recursive SCC x5 *)
  | All_rec2   (** one propagation round: callers scale their callees *)

val kind_to_string : kind -> string

val all_kinds : kind list

(** [estimate graph ~intra kind] returns estimated invocation counts per
    defined function, in call-graph node order. [intra] supplies each
    function's block frequencies normalized to one entry. *)
val estimate :
  Callgraph.t -> intra:(string -> float array) -> kind -> (string * float) list
