lib/cfg_ir/cfg.ml: Array Cfront List
