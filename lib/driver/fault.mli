(** The driver's fault-tolerance policy layer.

    Every degradable stage of the suite driver runs under {!capture}: in
    the default mode an exception becomes a typed, recorded fault and
    the caller substitutes a documented degradation (a degraded suite
    row, a fallback estimate, a partial profile); under [--strict]
    ({!set_strict}) the original exception is re-raised with its
    original backtrace and the run fails fast.

    Fault records pass through {!Obs.Faultlog} — the same store the
    Markov solvers and the interpreter budget machinery write to from
    below the driver — so {!count}, {!summary} and {!exit_code} see
    every recovery taken anywhere in the pipeline.

    Deterministic fault injection ({!Obs.Inject}) is armed here:
    {!injection_points} is the static registry of named points and
    {!arm_chaos} is the [--chaos SEED] entry point. *)

(** Where in the pipeline a fault was absorbed. *)
type stage =
  | Compile      (** front end: preprocess/parse/typecheck/CFG *)
  | Profile      (** interpreting one (program, input) pair *)
  | Solve        (** a Markov linear-system solve *)
  | Estimate     (** building an estimator table *)
  | Experiment   (** rendering one table/figure *)
  | Worker       (** a Parallel pool task died outside any inner capture *)
  | Persist      (** the durable store: journal append, snapshot, restore *)

val stage_to_string : stage -> string
val stage_of_string : string -> stage option

type t = {
  f_stage : stage;
  f_subject : string;   (** program / function / experiment id *)
  f_detail : string;    (** free-form context, e.g. ["run 2"] *)
  f_exn : string;       (** printed exception; [""] for non-exception faults *)
  f_backtrace : string; (** backtrace text; [""] when not captured *)
  f_recovery : string;  (** what the system did instead of crashing *)
}

(** Raised by consumers that are handed a degraded entry where a healthy
    one is required (e.g. {!Context.by_name} on a faulted program). *)
exception Degraded of t

(** {1 Policy} *)

val set_strict : bool -> unit
(** [--strict]: re-raise instead of degrading. Process-wide. *)

val strict : unit -> bool

(** {1 Injection registry} *)

val injection_points : string list
(** Every named injection point, in pipeline order: ["compile"],
    ["profile"], ["profile.fuel"], ["solve.intra"], ["solve.inter"],
    ["estimate"], ["worker"], ["persist.append"], ["persist.snapshot"],
    ["serve.worker-kill"]. *)

val register_points : unit -> unit
(** Idempotently register {!injection_points} with {!Obs.Inject}. *)

val arm_chaos : seed:int -> ?rate:float -> unit -> unit
(** Arm every point with the deterministic seeded hash — the [--chaos
    SEED] mode. A (point, key) pair fires iff [hash(seed, point, key)]
    lands under [rate] (default 0.3); the decision never depends on
    call order or scheduling, so a chaos run is reproducible at any
    [--jobs] setting. *)

(** {1 Recording and capture} *)

val record : t -> unit
(** Append to the process-wide fault log. *)

val absorb :
  stage:stage ->
  subject:string ->
  ?detail:string ->
  recovery:string ->
  exn ->
  Printexc.raw_backtrace ->
  t
(** Turn a caught exception into a recorded fault — or, in strict mode,
    re-raise it with the given (original) backtrace. *)

val capture :
  stage:stage ->
  subject:string ->
  ?detail:string ->
  recovery:string ->
  (unit -> 'a) ->
  ('a, t) result
(** Run a stage under the degrade-or-fail-fast policy. [recovery] names
    what the caller will do with the [Error] — it is recorded, not
    executed here. *)

(** {1 Reporting} *)

val count : unit -> int
(** Faults recorded so far, including those written below the driver. *)

val reset : unit -> unit
(** Clear the log (tests). *)

val sorted : unit -> t list
(** All recorded faults in a deterministic order (stage, subject,
    detail, exception) — cross-domain record order is
    scheduling-dependent, so consumers must read this view. *)

val degraded_exit_code : int
(** 3 — the exit code of a run that completed with recorded faults. *)

val exit_code : unit -> int
(** [0] when no fault was recorded, {!degraded_exit_code} otherwise. *)

val summary : unit -> string
(** Human-readable fault listing; [""] when the run was healthy (so
    healthy output stays byte-identical). *)
