(* Parser tests: declarator syntax, expression precedence (validated via
   the constant evaluator and pretty printer), statements, enums, structs
   and typedefs. *)

open Cfront

let parse src = Parser.parse_string ~file:"test.c" src

let global_var tu name =
  List.find_map
    (function
      | Ast.Gvar d when d.Ast.d_name = name -> Some d
      | _ -> None)
    tu.Ast.globals
  |> function
  | Some d -> d
  | None -> Alcotest.failf "no global %s" name

let var_ty src name =
  Ctypes.to_string (global_var (parse src) name).Ast.d_ty

let check_ty name src expected =
  Alcotest.(check string) name expected (var_ty src "x")

let test_declarators () =
  check_ty "int" "int x;" "int";
  check_ty "pointer" "int *x;" "int*";
  check_ty "pointer pointer" "int **x;" "int**";
  check_ty "array" "int x[10];" "int[10]";
  check_ty "array of pointers" "int *x[3];" "int*[3]";
  check_ty "pointer to array" "int (*x)[3];" "int[3]*";
  check_ty "2d array" "int x[2][3];" "int[3][2]";
  check_ty "function pointer" "int (*x)(int, char);" "int(int, char)*";
  check_ty "fnptr returning ptr" "char *(*x)(void);" "char*()*";
  check_ty "array of fn pointers" "int (*x[4])(int);" "int(int)*[4]";
  check_ty "const ignored" "const int x;" "int";
  check_ty "double" "double x;" "double";
  check_ty "char ptr ptr" "char **x;" "char**"

let test_array_size_expressions () =
  check_ty "computed size" "int x[2 * 3 + 1];" "int[7]";
  check_ty "sizeof in size" "int x[sizeof(int) + 1];" "int[2]";
  check_ty "enum const in size" "enum { N = 5 }; int x[N];" "int[5]";
  check_ty "shift in size" "int x[1 << 4];" "int[16]"

let test_array_init_completion () =
  check_ty "array sized by init" "int x[] = {1, 2, 3};" "int[3]";
  check_ty "char array from string" "char x[] = \"hi\";" "char[3]"

let test_typedef () =
  check_ty "simple typedef" "typedef int myint; myint x;" "int";
  check_ty "pointer typedef" "typedef char *str; str x;" "char*";
  check_ty "typedef array" "typedef int vec[4]; vec x;" "int[4]";
  check_ty "typedef then pointer" "typedef int myint; myint *x;" "int*"

let test_struct_parsing () =
  let tu =
    parse
      "struct point { int x; int y; }; struct point x; struct point *p;"
  in
  (match (global_var tu "x").Ast.d_ty with
  | Ctypes.Tstruct _ -> ()
  | t -> Alcotest.failf "expected struct, got %s" (Ctypes.to_string t));
  match (global_var tu "p").Ast.d_ty with
  | Ctypes.Tptr (Ctypes.Tstruct _) -> ()
  | t -> Alcotest.failf "expected struct*, got %s" (Ctypes.to_string t)

let test_struct_forward_reference () =
  (* self-referential struct via pointer *)
  let tu = parse "struct node { int v; struct node *next; }; struct node x;" in
  let reg = tu.Ast.structs in
  match (global_var tu "x").Ast.d_ty with
  | Ctypes.Tstruct i ->
    Alcotest.(check int) "two fields" 2 (List.length (Ctypes.fields reg i));
    Alcotest.(check int) "size" 2 (Ctypes.size_of reg (Ctypes.Tstruct i))
  | _ -> Alcotest.fail "struct expected"

let test_enum_values () =
  let tu = parse "enum color { RED, GREEN = 10, BLUE, ALPHA = BLUE * 2 };" in
  Alcotest.(check (list (pair string int)))
    "enum constants"
    [ ("RED", 0); ("GREEN", 10); ("BLUE", 11); ("ALPHA", 22) ]
    tu.Ast.enum_consts

(* Evaluate a constant expression through the parser; precedence mistakes
   change the value. *)
let const_value expr_src =
  let tu = parse (Printf.sprintf "int x[%s];" expr_src) in
  match (global_var tu "x").Ast.d_ty with
  | Ctypes.Tarray (_, Some n) -> n
  | _ -> Alcotest.fail "array expected"

let check_const name expr expected =
  Alcotest.(check int) name expected (const_value expr)

let test_precedence () =
  check_const "mul before add" "2 + 3 * 4" 14;
  check_const "parens" "(2 + 3) * 4" 20;
  check_const "sub is left assoc" "10 - 4 - 3" 3;
  check_const "div is left assoc" "100 / 5 / 2" 10;
  check_const "unary minus" "7 - -3" 10;
  check_const "shift vs add" "1 << 2 + 1" 8;
  check_const "relational vs shift" "(1 << 3 > 7) + 1" 2;
  check_const "bitand vs equality" "(3 & 1 == 1) + 1" 2;
  check_const "xor layer" "(2 ^ 3 & 1) + 1" 4;
  check_const "or layer" "(4 | 2 ^ 2) + 1" 5;
  check_const "logical and or" "(0 && 1 || 1) + 1" 2;
  check_const "conditional" "1 ? 2 : 3" 2;
  check_const "conditional nesting" "0 ? 2 : 0 ? 3 : 4" 4;
  check_const "bitnot" "~0 + 2" 1;
  check_const "mod" "17 % 5" 2;
  check_const "mixed" "1 + 2 * 3 - 4 / 2" 5

let fundef tu name =
  List.find_map
    (function
      | Ast.Gfun f when f.Ast.f_name = name -> Some f
      | _ -> None)
    tu.Ast.globals
  |> function
  | Some f -> f
  | None -> Alcotest.failf "no function %s" name

let test_function_heads () =
  let tu =
    parse
      "int f(void) { return 0; }\n\
       char *g(char *s, int n) { return s; }\n\
       void h() { }\n\
       double *const_ptr(double d) { return NULL; }\n\
       int varargs_fn(char *fmt, ...) { return 0; }"
  in
  let f = fundef tu "f" in
  Alcotest.(check int) "f params" 0 (List.length f.Ast.f_params);
  let g = fundef tu "g" in
  Alcotest.(check string) "g ret" "char*" (Ctypes.to_string g.Ast.f_ret);
  Alcotest.(check int) "g params" 2 (List.length g.Ast.f_params);
  let v = fundef tu "varargs_fn" in
  Alcotest.(check bool) "varargs" true v.Ast.f_varargs

let count_stmts pred (f : Ast.fundef) =
  let n = ref 0 in
  Ast.iter_stmt f.Ast.f_body
    ~on_stmt:(fun s -> if pred s then incr n)
    ~on_expr:(fun _ -> ());
  !n

let test_statements () =
  let tu =
    parse
      {|
int f(int n) {
  int i, acc = 0;
  for (i = 0; i < n; i++) {
    if (i % 2) acc += i; else acc -= i;
    while (acc > 100) acc /= 2;
    do { acc++; } while (0);
    switch (i & 3) {
    case 0: acc++; break;
    case 1:
    case 2: acc--; break;
    default: acc ^= 1; break;
    }
    if (acc < 0) goto out;
    continue;
  }
out:
  return acc;
}
|}
  in
  let f = fundef tu "f" in
  let is k s = k s.Ast.snode in
  Alcotest.(check int) "for" 1
    (count_stmts (is (function Ast.Sfor _ -> true | _ -> false)) f);
  Alcotest.(check int) "if" 2
    (count_stmts (is (function Ast.Sif _ -> true | _ -> false)) f);
  Alcotest.(check int) "while" 1
    (count_stmts (is (function Ast.Swhile _ -> true | _ -> false)) f);
  Alcotest.(check int) "do" 1
    (count_stmts (is (function Ast.Sdo _ -> true | _ -> false)) f);
  Alcotest.(check int) "switch" 1
    (count_stmts (is (function Ast.Sswitch _ -> true | _ -> false)) f);
  Alcotest.(check int) "cases" 3
    (count_stmts (is (function Ast.Scase _ -> true | _ -> false)) f);
  Alcotest.(check int) "default" 1
    (count_stmts (is (function Ast.Sdefault _ -> true | _ -> false)) f);
  Alcotest.(check int) "goto" 1
    (count_stmts (is (function Ast.Sgoto _ -> true | _ -> false)) f);
  Alcotest.(check int) "label" 1
    (count_stmts (is (function Ast.Slabel _ -> true | _ -> false)) f);
  Alcotest.(check int) "break" 3
    (count_stmts (is (function Ast.Sbreak -> true | _ -> false)) f);
  Alcotest.(check int) "continue" 1
    (count_stmts (is (function Ast.Scontinue -> true | _ -> false)) f)

let test_for_decl_init () =
  let tu = parse "int f(void) { int s = 0; for (int i = 0; i < 3; i++) s += i; return s; }" in
  let f = fundef tu "f" in
  let has_fdecl = ref false in
  Ast.iter_stmt f.Ast.f_body
    ~on_stmt:(fun s ->
      match s.Ast.snode with
      | Ast.Sfor (Ast.Fdecl _, _, _, _) -> has_fdecl := true
      | _ -> ())
    ~on_expr:(fun _ -> ());
  Alcotest.(check bool) "for-decl" true !has_fdecl

let test_dangling_else () =
  (* else binds to the nearest if *)
  let tu = parse "int f(int a, int b) { if (a) if (b) return 1; else return 2; return 3; }" in
  let f = fundef tu "f" in
  let outer_has_else = ref None in
  Ast.iter_stmt f.Ast.f_body
    ~on_stmt:(fun s ->
      match s.Ast.snode with
      | Ast.Sif (_, { Ast.snode = Ast.Sif (_, _, inner_else); _ }, outer_else)
        ->
        outer_has_else := Some (outer_else <> None, inner_else <> None)
      | _ -> ())
    ~on_expr:(fun _ -> ());
  match !outer_has_else with
  | Some (outer, inner) ->
    Alcotest.(check bool) "outer if has no else" false outer;
    Alcotest.(check bool) "inner if has else" true inner
  | None -> Alcotest.fail "nested if not found"

let test_expression_forms () =
  (* exercise every expression constructor through the pretty printer *)
  let tu =
    parse
      {|
struct s { int f; struct s *n; };
int g(int x) { return x; }
int main(void) {
  struct s v, *p;
  int a[4];
  int i = 1, j;
  double d;
  p = &v;
  v.f = 2;
  p->f = 3;
  a[2] = v.f + p->f;
  j = i++ + ++i - i-- - --i;
  j += a[1] ? g(j) : (int)d;
  j = sizeof(struct s) + sizeof a[0];
  j = (i, j);
  j = ~i ^ (i | j) & (i << 2) >> 1;
  j = !i + -i + +i;
  return j % 3;
}
|}
  in
  let main_fn = fundef tu "main" in
  let exprs = ref 0 in
  Ast.iter_stmt main_fn.Ast.f_body
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun e ->
      incr exprs;
      (* pretty-printing must not raise *)
      ignore (Pretty.expr_to_string e));
  Alcotest.(check bool) "many expressions" true (!exprs > 40)

let test_unique_node_ids () =
  let tu =
    parse "int f(int x) { return x + x * x; } int g(void) { return f(2); }"
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (function
      | Ast.Gfun f ->
        Ast.iter_stmt f.Ast.f_body
          ~on_stmt:(fun s ->
            Alcotest.(check bool) "stmt id unique" false (Hashtbl.mem seen s.Ast.sid);
            Hashtbl.replace seen s.Ast.sid ())
          ~on_expr:(fun e ->
            Alcotest.(check bool) "expr id unique" false (Hashtbl.mem seen e.Ast.eid);
            Hashtbl.replace seen e.Ast.eid ())
      | _ -> ())
    tu.Ast.globals;
  Alcotest.(check bool) "ids bounded" true
    (Hashtbl.fold (fun id _ acc -> max id acc) seen 0 < tu.Ast.node_count)

let expect_error name src =
  match parse src with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected parse error" name

let test_parse_errors () =
  expect_error "missing semicolon" "int x int y;";
  expect_error "unbalanced paren" "int f(void) { return (1; }";
  expect_error "union rejected" "union u { int a; } x;";
  expect_error "bad declarator" "int 3x;";
  expect_error "unterminated block" "int f(void) { return 0;";
  expect_error "field name missing" "struct s { int; } x;";
  (* case outside switch is a CFG-construction error, not a parse error;
     ensure it at least parses *)
  match parse "int f(void) { case 1: return 0; }" with
  | _ -> ()
  | exception Parser.Error _ -> Alcotest.fail "case should parse"

let suite =
  [ Alcotest.test_case "declarators" `Quick test_declarators;
    Alcotest.test_case "array size expressions" `Quick test_array_size_expressions;
    Alcotest.test_case "array init completion" `Quick test_array_init_completion;
    Alcotest.test_case "typedef" `Quick test_typedef;
    Alcotest.test_case "struct parsing" `Quick test_struct_parsing;
    Alcotest.test_case "recursive struct" `Quick test_struct_forward_reference;
    Alcotest.test_case "enum values" `Quick test_enum_values;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "function heads" `Quick test_function_heads;
    Alcotest.test_case "statements" `Quick test_statements;
    Alcotest.test_case "for-decl init" `Quick test_for_decl_init;
    Alcotest.test_case "dangling else" `Quick test_dangling_else;
    Alcotest.test_case "expression forms" `Quick test_expression_forms;
    Alcotest.test_case "unique node ids" `Quick test_unique_node_ids;
    Alcotest.test_case "parse errors" `Quick test_parse_errors ]
