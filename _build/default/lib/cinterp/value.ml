(* Runtime values for the C interpreter.

   The memory model is cell-based: every scalar occupies one cell, and a
   pointer is a (block, offset) pair. The null pointer is the integer 0,
   as in C source; pointer operations treat [Vint 0] as null. Integers are
   wrapped to 32-bit two's complement so that hash functions and overflow
   idioms in benchmark programs behave conventionally. *)

type ptr = { blk : int; off : int }

type fkind = Fuser of string | Fbuiltin of string

type value =
  | Vint of int       (* int and char values, 32-bit wrapped *)
  | Vfloat of float
  | Vptr of ptr
  | Vfun of fkind

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* Wrap to signed 32-bit. *)
let wrap32 x =
  let m = x land 0xFFFFFFFF in
  if m >= 0x80000000 then m - 0x100000000 else m

(* Wrap to signed 8-bit (stores into char objects). *)
let wrap8 x =
  let m = x land 0xFF in
  if m >= 0x80 then m - 0x100 else m

let is_null = function Vint 0 -> true | _ -> false

let to_bool = function
  | Vint n -> n <> 0
  | Vfloat f -> f <> 0.0
  | Vptr _ -> true
  | Vfun _ -> true

let int_of = function
  | Vint n -> n
  | Vfloat f -> wrap32 (int_of_float f)
  | Vptr _ -> error "pointer used as integer"
  | Vfun _ -> error "function used as integer"

let float_of = function
  | Vint n -> float_of_int n
  | Vfloat f -> f
  | Vptr _ -> error "pointer used as float"
  | Vfun _ -> error "function used as float"

let to_string = function
  | Vint n -> string_of_int n
  | Vfloat f -> Printf.sprintf "%g" f
  | Vptr p -> Printf.sprintf "<ptr %d:%d>" p.blk p.off
  | Vfun (Fuser f) -> Printf.sprintf "<fun %s>" f
  | Vfun (Fbuiltin f) -> Printf.sprintf "<builtin %s>" f

(* Equality following C semantics for the scalar universe we support.
   A pointer never equals a nonzero integer; null (Vint 0) only equals
   null. *)
let equal_values a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Vint x, Vfloat y | Vfloat y, Vint x -> float_of_int x = y
  | Vptr p, Vptr q -> p.blk = q.blk && p.off = q.off
  | Vptr _, Vint _ | Vint _, Vptr _ -> false
  | Vfun f, Vfun g -> f = g
  | Vfun _, Vint _ | Vint _, Vfun _ -> false
  | (Vptr _ | Vfun _), (Vfloat _ | Vfun _ | Vptr _)
  | Vfloat _, (Vptr _ | Vfun _) ->
    false
