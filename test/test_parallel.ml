(* The parallel pipeline's backbone guarantee: running the analysis on a
   pool of domains is observationally identical to running it
   sequentially. Three layers of evidence:

   1. scheduler unit tests — ordering, exception routing, nesting;
   2. a differential harness that renders the paper's *entire*
      evaluation (every table, figure and ablation over the full suite)
      sequentially and at --jobs 2 and --jobs 8 from a cold cache each
      time, and asserts the outputs are byte-identical;
   3. a per-program score matrix (intra, inter and call-site
      weight-matching at every q-threshold) compared bit-for-bit between
      a sequentially-warmed and a parallel-warmed cache, plus a stress
      run that hammers the pool 50 times on a small program. *)

module Parallel = Driver.Parallel
module Context = Driver.Context
module Experiments = Driver.Experiments
module Pipeline = Core.Pipeline
module Weight_matching = Core.Weight_matching

(* Every test leaves the process sequential again so the rest of the
   alcotest binary is unaffected. *)
let with_jobs (n : int) (f : unit -> 'a) : 'a =
  Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs 1) f

(* --- scheduler unit tests -------------------------------------------- *)

let test_map_order () =
  with_jobs 8 (fun () ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results merge in input order"
        (List.map (fun i -> i * i) xs)
        (Parallel.map (fun i -> i * i) xs))

(* A single task failure re-raises the original exception (with its
   backtrace); the other slots still run to completion. *)
let test_map_single_exception () =
  with_jobs 4 (fun () ->
      match
        Parallel.map
          (fun i -> if i = 7 then failwith (string_of_int i) else i)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        Alcotest.(check string) "the task's own exception escapes" "7" msg)

(* Several failures are collected — every one, ordered by input index —
   and surfaced together as [Worker_errors]. *)
let test_map_exception () =
  with_jobs 4 (fun () ->
      match
        Parallel.map
          (fun i -> if i >= 7 then failwith (string_of_int i) else i)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Parallel.Worker_errors errors ->
        Alcotest.(check (list int))
          "all failing indices, in input order"
          [ 7; 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19 ]
          (List.map (fun (i, _, _) -> i) errors);
        List.iter
          (fun (i, e, _) ->
            match e with
            | Failure msg ->
              Alcotest.(check string) "each slot keeps its own exception"
                (string_of_int i) msg
            | e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e))
          errors)

(* [map_results] never raises: every slot reports Ok or Error in input
   order, at any jobs setting. *)
let test_map_results () =
  let exercise jobs =
    with_jobs jobs (fun () ->
        let slots =
          Parallel.map_results
            (fun i -> if i mod 3 = 0 then failwith "boom" else i * 10)
            (List.init 10 Fun.id)
        in
        List.iteri
          (fun i slot ->
            match slot with
            | Ok v ->
              Alcotest.(check bool) "ok slot survives" true (i mod 3 <> 0);
              Alcotest.(check int) "ok slot value" (i * 10) v
            | Error (Failure _, _) ->
              Alcotest.(check bool) "error slot failed" true (i mod 3 = 0)
            | Error (e, _) ->
              Alcotest.failf "unexpected exception %s" (Printexc.to_string e))
          slots)
  in
  exercise 1;
  exercise 4

let test_nested_map () =
  with_jobs 4 (fun () ->
      let table =
        Parallel.map
          (fun i -> Parallel.map (fun j -> i * j) (List.init 5 Fun.id))
          (List.init 5 Fun.id)
      in
      Alcotest.(check (list (list int)))
        "nested maps run inline and stay correct"
        (List.init 5 (fun i -> List.init 5 (fun j -> i * j)))
        table)

let test_run_thunks () =
  with_jobs 2 (fun () ->
      Alcotest.(check (list string))
        "heterogeneous stage list"
        [ "a"; "b"; "c" ]
        (Parallel.run [ (fun () -> "a"); (fun () -> "b"); (fun () -> "c") ]))

(* --- the differential harness ---------------------------------------- *)

let run_all_with (jobs : int) : string =
  Context.clear ();
  with_jobs jobs Experiments.run_all

let test_differential_run_all () =
  let sequential = run_all_with 1 in
  let par2 = run_all_with 2 in
  Alcotest.(check bool)
    "--jobs 2 output is byte-identical to sequential" true
    (String.equal sequential par2);
  let par8 = run_all_with 8 in
  Alcotest.(check bool)
    "--jobs 8 output is byte-identical to sequential" true
    (String.equal sequential par8)

(* Per-program weight-matching scores at every q-threshold the paper
   uses, from smart/markov intra, markov inter and call-site estimates.
   Computed twice — once from a sequentially warmed cache, once from a
   cache warmed by the 8-domain pool — and compared bit-for-bit. *)

let q_thresholds = [ 0.05; 0.10; 0.20; 0.25; 0.40; 0.60; 0.80; 1.00 ]

let score_matrix () : (string * float list) list =
  List.map
    (fun (d : Context.prog_data) ->
      let name = d.Context.bench.Suite.Bench_prog.name in
      let smart = Pipeline.intra_provider d.Context.compiled Pipeline.Ismart in
      let inter_est =
        Pipeline.inter_estimate d.Context.compiled ~intra:smart
          Pipeline.Imarkov_inter
      in
      let callsite_est =
        Pipeline.callsite_estimate d.Context.compiled ~intra:smart
          Pipeline.Imarkov_inter
      in
      let scores =
        List.concat_map
          (fun cutoff ->
            let intra kind =
              let estimate =
                Pipeline.intra_provider d.Context.compiled kind
              in
              Pipeline.mean_over_profiles d.Context.profiles (fun p ->
                  Pipeline.intra_score d.Context.compiled ~estimate p ~cutoff)
            in
            let inter_and_callsite =
              List.concat_map
                (fun p ->
                  [ Weight_matching.score ~estimate:inter_est
                      ~actual:(Pipeline.inter_actual d.Context.compiled p)
                      ~cutoff;
                    Weight_matching.score ~estimate:callsite_est
                      ~actual:(Pipeline.callsite_actual d.Context.compiled p)
                      ~cutoff ])
                d.Context.profiles
            in
            intra Pipeline.Ismart :: intra Pipeline.Imarkov
            :: inter_and_callsite)
          q_thresholds
      in
      (name, scores))
    (Context.all ())

let exact_float =
  Alcotest.testable
    (fun fmt v -> Format.fprintf fmt "%.17g" v)
    (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let test_differential_scores () =
  Context.clear ();
  let sequential = with_jobs 1 score_matrix in
  Context.clear ();
  let parallel = with_jobs 8 score_matrix in
  Alcotest.(check (list (pair string (list exact_float))))
    "per-program scores at every q-threshold are bit-identical" sequential
    parallel

(* --- stress: shake out scheduling races ------------------------------ *)

let stress_source =
  {|
int collatz(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) n = n / 2;
    else n = 3 * n + 1;
    steps++;
  }
  return steps;
}
int main(void) { return collatz(27); }
|}

(* One full pipeline pass: compile, profile, estimate. Returns data that
   would expose a race anywhere in the stack. *)
let stress_pass () : float * float array =
  let c = Pipeline.compile ~name:"stress" stress_source in
  let o = Pipeline.run_once c { Pipeline.argv = []; input = "" } in
  let smart = Pipeline.intra_provider c Pipeline.Ismart in
  (o.Cinterp.Eval.work, smart "collatz")

let test_stress_pool () =
  let reference = stress_pass () in
  with_jobs 8 (fun () ->
      for _round = 1 to 50 do
        let results = Parallel.map (fun () -> stress_pass ()) (List.init 8 (fun _ -> ())) in
        List.iter
          (fun (work, freqs) ->
            let ref_work, ref_freqs = reference in
            Alcotest.(check exact_float) "work units stable" ref_work work;
            Alcotest.(check (array exact_float))
              "smart estimate stable" ref_freqs freqs)
          results
      done)

(* Resizing or retiring the pool from inside a task would deadlock (the
   worker would join itself); both calls must fail fast instead, and the
   pool must keep working afterwards. *)
let test_reentrant_reconfiguration_rejected () =
  with_jobs 4 (fun () ->
      let outcomes =
        Parallel.map
          (fun i ->
            if i = 0 then
              match Parallel.set_jobs 2 with
              | () -> "set_jobs accepted"
              | exception Invalid_argument _ -> (
                match Parallel.shutdown () with
                | () -> "shutdown accepted"
                | exception Invalid_argument _ -> "rejected")
            else "worker"
          )
          (List.init 8 Fun.id)
      in
      Alcotest.(check string)
        "set_jobs and shutdown raise Invalid_argument inside a task"
        "rejected" (List.hd outcomes);
      (* the pool is still alive and correct *)
      Alcotest.(check (list int)) "pool survives"
        (List.init 16 (fun i -> i * 2))
        (Parallel.map (fun i -> i * 2) (List.init 16 Fun.id)))

(* The pool survives repeated reconfiguration (each resize retires the
   old domains and spawns fresh ones). *)
let test_resize_churn () =
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs 1)
    (fun () ->
      for round = 1 to 10 do
        Parallel.set_jobs (1 + (round mod 4));
        let n = List.length (Parallel.map Fun.id (List.init 32 Fun.id)) in
        Alcotest.(check int) "all tasks completed" 32 n
      done)

(* Regression (PR 8): jobs is not an all-or-nothing startup choice —
   the pool can be resized at any point in a process's life (the serve
   daemon does, between request batches), results stay identical, and
   [pool_size] observes the live pool through the resize cycle:
   retirement is eager (the old domains are joined inside [set_jobs]),
   re-creation is lazy (on the next fan-out). *)
let test_resize_between_batches () =
  Fun.protect
    ~finally:(fun () -> Parallel.set_jobs 1)
    (fun () ->
      let expect = List.init 64 (fun i -> i * i) in
      Parallel.set_jobs 1;
      Parallel.set_jobs 3;
      Alcotest.(check (option int)) "resize retires the old pool eagerly"
        None (Parallel.pool_size ());
      Alcotest.(check (list int)) "first batch at 3 domains" expect
        (Parallel.map (fun i -> i * i) (List.init 64 Fun.id));
      Alcotest.(check (option int)) "the pool spun up lazily at 3"
        (Some 3) (Parallel.pool_size ());
      Parallel.set_jobs 2;
      Alcotest.(check (list int)) "mid-life downsize, identical results"
        expect
        (Parallel.map (fun i -> i * i) (List.init 64 Fun.id));
      Alcotest.(check (option int)) "the pool followed the resize"
        (Some 2) (Parallel.pool_size ());
      Parallel.set_jobs 2;
      Alcotest.(check (option int)) "a same-size set_jobs keeps the pool"
        (Some 2) (Parallel.pool_size ()))

let suite =
  [ Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map re-raises a lone error" `Quick
      test_map_single_exception;
    Alcotest.test_case "map collects every error in input order" `Quick
      test_map_exception;
    Alcotest.test_case "map_results never raises" `Quick test_map_results;
    Alcotest.test_case "nested maps" `Quick test_nested_map;
    Alcotest.test_case "run thunks" `Quick test_run_thunks;
    Alcotest.test_case "pool resize churn" `Quick test_resize_churn;
    Alcotest.test_case "mid-life resize is observable and exact" `Quick
      test_resize_between_batches;
    Alcotest.test_case "reentrant reconfiguration rejected" `Quick
      test_reentrant_reconfiguration_rejected;
    Alcotest.test_case "stress: 50 pool rounds on a small program" `Slow
      test_stress_pool;
    Alcotest.test_case "differential: score matrix seq vs 8 domains" `Slow
      test_differential_scores;
    Alcotest.test_case "differential: full evaluation at jobs 1/2/8" `Slow
      test_differential_run_all ]
