lib/cfront/preproc.ml: Buffer Hashtbl List String
