lib/core/ast_estimator.mli: Cfg_ir Cfront Hashtbl
