lib/suite/prog_compress.ml: Bench_prog Buffer Char
