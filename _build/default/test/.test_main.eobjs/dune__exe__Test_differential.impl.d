test/test_differential.ml: Alcotest Array Buffer Cinterp Core Int32 List Printf QCheck QCheck_alcotest String
