lib/core/structural_estimator.mli: Cfg_ir
