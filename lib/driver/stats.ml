(* Small-sample statistics for score aggregation.

   The empty-series convention matches [Experiments.mean]: a statistic
   of nothing is not a plausible-looking 0.0 — it records an
   [Estimate]-stage fault (so the run exits 3) and returns NaN, which
   every table formatter renders as an explicit — marker.  NaN *inputs*
   propagate silently: the fault was already recorded wherever the NaN
   was produced, and re-reporting it per statistic would quadruple the
   noise. *)

let mean_opt (xs : float list) : float option =
  match xs with
  | [] -> None
  | _ -> Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))

let empty_series_fault ~(what : string) ~(subject : string) : unit =
  Fault.record
    { Fault.f_stage = Fault.Estimate; f_subject = subject;
      f_detail = Printf.sprintf "%s of empty series" what; f_exn = "";
      f_backtrace = ""; f_recovery = "rendered as a — marker instead of 0" }

let mean ?(subject = "mean") (xs : float list) : float =
  match mean_opt xs with
  | Some v -> v
  | None ->
    empty_series_fault ~what:"mean" ~subject;
    Float.nan

(* Quantile with type-7 (linear) interpolation — the R/NumPy default,
   so p50 on an odd-length list is the middle element exactly and on an
   even-length list the midpoint of the two central elements.  [q] is
   clamped to [0, 1]; q=0 is the minimum, q=1 the maximum. *)
let quantile_opt (q : float) (xs : float list) : float option =
  match xs with
  | [] -> None
  | _ when List.exists (fun x -> Float.is_nan x) xs -> Some Float.nan
  | _ ->
    let a = Array.of_list xs in
    (* Not the polymorphic sort: both it and [Float.compare] follow IEEE
       equality, under which -0.0 = 0.0 — so the sorted order of a
       signed-zero pair depended on *input* order, and a quantile landing
       on it could flip sign bit between runs, visible to the bit-exact
       drift gate. Breaking the tie on the sign bit (-0.0 before 0.0)
       makes the sort a pure function of the multiset. NaNs never reach
       the sort (short-circuited above). *)
    let cmp x y =
      let c = Float.compare x y in
      if c <> 0 then c
      else Bool.compare (Float.sign_bit y) (Float.sign_bit x)
    in
    Array.sort cmp a;
    let n = Array.length a in
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    if frac = 0.0 then Some a.(lo)
    else Some (((1.0 -. frac) *. a.(lo)) +. (frac *. a.(hi)))

let quantile ?(subject = "quantile") (q : float) (xs : float list) : float =
  match quantile_opt q xs with
  | Some v -> v
  | None ->
    (* Report the clamped quantile actually computed: [quantile 1.5 []]
       is a p100 request, not a "p150" — the fault message must match
       what [quantile_opt] would have evaluated. *)
    let q = Float.max 0.0 (Float.min 1.0 q) in
    empty_series_fault ~what:(Printf.sprintf "p%g quantile" (q *. 100.0)) ~subject;
    Float.nan
