(* Control-flow graph for one function, lowered from the AST.

   Blocks contain straight-line instructions (expression statements and
   local initializations); terminators carry the control flow. Branch
   terminators keep a back-reference to the originating AST construct so
   the branch-prediction heuristics can inspect source structure, exactly
   like the paper's AST-level predictor. *)

module Ast = Cfront.Ast
module Typecheck = Cfront.Typecheck

type callee =
  | Direct of string    (* a defined or prototyped user function *)
  | Builtin of string   (* interpreter runtime function *)
  | Indirect            (* call through a function pointer *)

type call_site = {
  cs_id : int;          (* unique across the whole program *)
  cs_fun : string;      (* containing function *)
  cs_block : int;       (* containing block *)
  cs_expr : Ast.expr;   (* the Call expression (callee + arguments) *)
  cs_callee : callee;
}

type instr =
  | Iexpr of Ast.expr
  | Ilocal_init of int * Ast.decl  (* local slot, declaration with init *)

(* Which source construct a conditional branch came from. The "true" edge
   of a loop branch is the edge that (re-)enters the loop body. *)
type branch_kind = Kif | Kwhile | Kdo | Kfor | Kcond

type branch = {
  br_cond : Ast.expr;
  br_kind : branch_kind;
  br_stmt : Ast.stmt;             (* originating statement *)
  br_then_arm : Ast.stmt option;  (* AST arm reached when cond is true *)
  br_else_arm : Ast.stmt option;  (* AST arm reached when cond is false *)
}

type terminator =
  | Tjump of int
  | Tbranch of branch * int * int       (* true target, false target *)
  | Tswitch of Ast.expr * (int * int) list * int  (* (value, target), default *)
  | Treturn of Ast.expr option

type block = {
  b_id : int;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
  mutable b_src : Ast.node_id option;  (* first statement lowered here *)
  mutable b_preds : int list;
}

type fn = {
  fn_name : string;
  fn_def : Ast.fundef;
  fn_info : Typecheck.fun_info;
  fn_blocks : block array;
  fn_entry : int;
  fn_call_sites : call_site list;      (* in block order *)
}

type program = {
  prog_tc : Typecheck.t;
  prog_fns : fn list;                  (* defined functions, source order *)
  prog_sites : call_site array;        (* indexed by cs_id *)
}

let successors (t : terminator) : int list =
  match t with
  | Tjump b -> [ b ]
  | Tbranch (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | Tswitch (_, cases, d) ->
    List.sort_uniq compare (d :: List.map snd cases)
  | Treturn _ -> []

let find_fn (p : program) name : fn option =
  List.find_opt (fun f -> f.fn_name = name) p.prog_fns

let fn_names (p : program) = List.map (fun f -> f.fn_name) p.prog_fns

(* All branch terminators of a function, with their block ids. *)
let branches (f : fn) : (int * branch) list =
  Array.to_list f.fn_blocks
  |> List.filter_map (fun b ->
       match b.b_term with
       | Tbranch (br, _, _) -> Some (b.b_id, br)
       | _ -> None)

let n_blocks (f : fn) = Array.length f.fn_blocks

(* Call sites of the whole program, flattened. *)
let all_sites (p : program) : call_site list = Array.to_list p.prog_sites

let direct_sites (p : program) : call_site list =
  all_sites p
  |> List.filter (fun cs ->
       match cs.cs_callee with Direct _ -> true | _ -> false)

let indirect_sites (p : program) : call_site list =
  all_sites p |> List.filter (fun cs -> cs.cs_callee = Indirect)
