(* Mini-preprocessor tests: object macros, conditionals, string
   protection, recursion guard, and error cases. *)

open Cfront

let process ?defines src = Preproc.process ?defines src

(* Strip blank-only differences for robust comparison. *)
let squash s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")
  |> String.concat "\n"

let check name src expected =
  Alcotest.(check string) name (squash expected) (squash (process src))

let test_define () =
  check "simple define" "#define N 10\nint a[N];" "int a[10];"

let test_define_expression_body () =
  check "expression body" "#define SQ (3 * 3)\nint x = SQ + SQ;"
    "int x = (3 * 3) + (3 * 3);"

let test_chained_macros () =
  (* chained expansion happens at use time, to a fixpoint *)
  check "macro referring to macro" "#define A 1\n#define B (A + A)\nint x = B;"
    "int x = (1 + 1);"

let test_word_boundaries () =
  check "no substring replacement" "#define N 10\nint NN = N; int xN;"
    "int NN = 10; int xN;"

let test_undef () =
  check "undef" "#define N 1\n#undef N\nint N;" "int N;"

let test_strings_protected () =
  check "macro names inside strings survive"
    "#define N 10\nchar *s = \"N is N\"; int x = N;"
    "char *s = \"N is N\"; int x = 10;"

let test_char_protected () =
  check "char literals survive" "#define x 9\nint c = 'x'; int y = x;"
    "int c = 'x'; int y = 9;"

let test_ifdef () =
  check "ifdef taken" "#define A 1\n#ifdef A\nint yes;\n#endif\nint always;"
    "int yes;\nint always;";
  check "ifdef skipped" "#ifdef B\nint no;\n#endif\nint always;"
    "int always;"

let test_ifndef_else () =
  check "ifndef with else"
    "#ifndef A\nint not_defined;\n#else\nint defined_;\n#endif"
    "int not_defined;";
  check "else branch"
    "#define A 1\n#ifndef A\nint not_defined;\n#else\nint defined_;\n#endif"
    "int defined_;"

let test_nested_conditionals () =
  check "nested ifdefs"
    "#define A 1\n#ifdef A\n#ifdef B\nint ab;\n#else\nint a_only;\n#endif\n#endif"
    "int a_only;"

let test_define_inside_inactive () =
  check "defines in dead branches ignored"
    "#ifdef NO\n#define X 1\n#endif\n#ifdef X\nint x;\n#endif\nint y;"
    "int y;"

let test_seed_defines () =
  let out = process ~defines:[ ("NULL", "0") ] "char *p = NULL;" in
  Alcotest.(check string) "seeded define" "char *p = 0;" (squash out)

let test_self_reference_terminates () =
  (* A self-referential macro must not loop forever. *)
  let out = process "#define X X + 1\nint y = X;" in
  Alcotest.(check bool) "terminates" true (String.length out > 0)

let collapse_spaces s =
  String.split_on_char ' ' s
  |> List.filter (fun w -> w <> "")
  |> String.concat " "

let test_line_continuation () =
  let out = process "#define LONG 1 + \\\n  2\nint x = LONG;" in
  Alcotest.(check string) "continuation joined" "int x = 1 + 2;"
    (collapse_spaces (squash out))

let expect_error name src =
  match process src with
  | exception Preproc.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a preprocessor error" name

let test_errors () =
  expect_error "function-like macro" "#define F(x) x\n";
  expect_error "include" "#include <stdio.h>\n";
  expect_error "unknown directive" "#frobnicate\n";
  expect_error "unbalanced endif" "#endif\n";
  expect_error "unterminated ifdef" "#ifdef A\nint x;\n";
  expect_error "else without ifdef" "#else\n"

let test_line_count_preserved () =
  (* directive lines become blank lines so diagnostics keep line numbers *)
  let src = "#define A 1\nint x = A;\n#ifdef A\nint y;\n#endif\n" in
  let out = process src in
  Alcotest.(check int) "line count"
    (List.length (String.split_on_char '\n' src))
    (List.length (String.split_on_char '\n' out))

let suite =
  [ Alcotest.test_case "define" `Quick test_define;
    Alcotest.test_case "expression body" `Quick test_define_expression_body;
    Alcotest.test_case "chained macros" `Quick test_chained_macros;
    Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
    Alcotest.test_case "undef" `Quick test_undef;
    Alcotest.test_case "strings protected" `Quick test_strings_protected;
    Alcotest.test_case "chars protected" `Quick test_char_protected;
    Alcotest.test_case "ifdef" `Quick test_ifdef;
    Alcotest.test_case "ifndef/else" `Quick test_ifndef_else;
    Alcotest.test_case "nested conditionals" `Quick test_nested_conditionals;
    Alcotest.test_case "dead-branch defines" `Quick test_define_inside_inactive;
    Alcotest.test_case "seeded defines" `Quick test_seed_defines;
    Alcotest.test_case "self-reference" `Quick test_self_reference_terminates;
    Alcotest.test_case "line continuation" `Quick test_line_continuation;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "line count preserved" `Quick test_line_count_preserved ]
