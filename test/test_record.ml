(* The result-level observability layer: typed score records, the
   persisted run record, and the baseline drift gate.

   - qcheck round-trips: arbitrary run records encode → (independent
     syntax check) → parse → decode back structurally identical, and
     floats survive Obs.Json bit-exactly;
   - the --metrics-out trace document is readable by the shared
     Obs.Json reader (not just the validity checker);
   - the empty-mean fix: an all-degraded suite renders — markers and
     records a fault instead of silently averaging to 0;
   - drift classification: exact score comparison, a mutated record is
     flagged as drift (the baseline-gate regression test), a degraded
     program is flagged as degraded rather than a score regression,
     added scores and out-of-band timings are typed findings;
   - chaos drift reports are byte-identical at jobs 1 and jobs 4. *)

module Json = Obs.Json
module Score = Driver.Score
module Run_record = Driver.Run_record
module Drift = Driver.Drift
module Experiments = Driver.Experiments
module Fault = Driver.Fault
module Context = Driver.Context
module Parallel = Driver.Parallel
module Inject = Obs.Inject

let contains (haystack : string) (needle : string) : bool =
  let h = String.length haystack and n = String.length needle in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* Tests here run suite experiments under injection; restore an idle
   process around each (see test_fault.ml for the same discipline). *)
let pristine () =
  Inject.disarm_all ();
  Fault.reset ();
  Fault.set_strict false;
  Context.clear ();
  Score.reset ();
  Parallel.set_jobs 1

let shielded (f : unit -> unit) () =
  pristine ();
  Fun.protect ~finally:pristine f

(* --- generators ------------------------------------------------------- *)

let gen_float : float QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [ (4, float);
        (2, float_bound_inclusive 1.0);
        ( 1,
          oneofl
            [ nan; infinity; neg_infinity; 0.0; -0.0; 1e-308; -1e-308;
              Float.max_float; Float.min_float ] ) ])

let gen_name : string QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [ (4, string_size ~gen:(char_range 'a' 'z') (int_range 1 12));
        (1, string_size ~gen:printable (int_bound 20));
        (1, string_size ~gen:char (int_bound 20)) ])

let gen_score : Score.t QCheck.Gen.t =
  QCheck.Gen.(
    gen_name >>= fun s_experiment ->
    gen_name >>= fun s_program ->
    gen_name >>= fun s_estimator ->
    oneofl Score.all_metrics >>= fun s_metric ->
    gen_float >>= fun s_param ->
    gen_float >|= fun s_value ->
    { Score.s_experiment; s_program; s_estimator; s_metric; s_param;
      s_value })

let gen_record : Run_record.t QCheck.Gen.t =
  QCheck.Gen.(
    list_size (int_bound 8) (pair gen_name gen_name) >>= fun r_meta ->
    list_size (int_bound 20) gen_score >>= fun r_scores ->
    list_size (int_bound 3) (pair gen_name gen_name) >>= fun degraded ->
    list_size (int_bound 3)
      (triple gen_name (int_bound 1000) gen_float)
    >|= fun timings ->
    { Run_record.r_meta;
      r_scores;
      (* decode maps stages through [Fault.stage_of_string]; keep the
         generated stages inside the taxonomy *)
      r_degraded = List.map (fun (p, _) -> (p, "compile")) degraded;
      r_faults = [];
      r_timings =
        List.map
          (fun (t_label, t_count, t_total_ms) ->
            { Run_record.t_label; t_count; t_total_ms })
          timings })

let arbitrary_record : Run_record.t QCheck.arbitrary =
  QCheck.make ~print:Run_record.encode gen_record

(* --- round-trips ------------------------------------------------------ *)

(* compare-based equality: nan must equal itself for this check. *)
let prop_record_round_trip =
  QCheck.Test.make ~name:"run record encode → parse → decode round-trips"
    ~count:200 arbitrary_record (fun r ->
      let doc = Run_record.encode r in
      (match Json_check.parse_json doc with
      | () -> ()
      | exception Json_check.Bad_json msg ->
        QCheck.Test.fail_reportf "encoder produced invalid JSON (%s):\n%s"
          msg doc);
      match Run_record.decode doc with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok r' ->
        if compare r r' = 0 then true
        else
          QCheck.Test.fail_reportf "round trip changed the record:\n%s"
            (Run_record.encode r'))

let prop_float_round_trip =
  QCheck.Test.make ~name:"floats survive Obs.Json bit-exactly"
    ~count:500
    (QCheck.make ~print:string_of_float gen_float)
    (fun f ->
      let doc = Json.to_string (Json.Num f) in
      match Json.to_num (Json.parse_exn doc) with
      | None -> QCheck.Test.fail_reportf "no number back from %s" doc
      | Some f' ->
        compare f f' = 0
        || QCheck.Test.fail_reportf "%h round-tripped to %h" f f')

(* The trace document (--metrics-out) must be readable by the shared
   reader, not only syntactically valid. *)
let test_metrics_doc_readable () =
  Obs.Probe.reset ();
  Obs.Probe.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Probe.set_enabled false;
      Obs.Probe.reset ())
    (fun () ->
      Obs.Probe.with_span "stage" (fun () ->
          Obs.Probe.observe "odd \"name\"\n" nan);
      let doc = Driver.Trace.metrics_json () in
      let j = Json.parse_exn doc in
      (match Json.member "spans" j with
      | Some (Json.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "spans array missing or empty");
      (match Json.member "counters" j with
      | Some (Json.Arr [ c ]) ->
        Alcotest.(check (option string))
          "counter name decodes through escapes"
          (Some "odd \"name\"\n")
          (Option.bind (Json.member "name" c) Json.to_str)
      | _ -> Alcotest.fail "expected exactly one counter");
      match Option.bind (Json.member "jobs" j) Json.to_num with
      | Some _ -> ()
      | None -> Alcotest.fail "jobs field missing")

(* --- the empty-mean fix ----------------------------------------------- *)

let test_mean_empty_surfaces_fault () =
  Alcotest.(check bool) "mean [] is nan, not 0"
    true
    (Float.is_nan (Experiments.mean []));
  Alcotest.(check bool) "and it records a fault" true
    (List.exists
       (fun (f : Fault.t) -> f.Fault.f_subject = "mean")
       (Fault.sorted ()))

(* An all-degraded suite: averages must render as markers (never a
   plausible 0.0%) and the missing average goes on the fault record. *)
let test_all_degraded_average_marker () =
  Inject.arm "compile";
  let out =
    match Experiments.find "fig4" with
    | Some f -> f ()
    | None -> Alcotest.fail "fig4 missing"
  in
  Alcotest.(check bool) "every row is degraded" true
    (contains out "queens_mini \xe2\x80\xa0");
  Alcotest.(check bool) "average renders the marker" true
    (contains out "AVERAGE");
  Alcotest.(check bool) "no fake 0.0% average" false (contains out "0.0%");
  Alcotest.(check bool) "missing average is a recorded fault" true
    (List.exists
       (fun (f : Fault.t) ->
         f.Fault.f_subject = "fig4"
         && contains f.Fault.f_detail "no healthy programs")
       (Fault.sorted ()))

(* --- drift classification --------------------------------------------- *)

let mk_score ?(experiment = "fig4") ?(program = "p") ?(estimator = "smart")
    ?(metric = Score.Wm_intra) ?(param = 0.05) value : Score.t =
  { Score.s_experiment = experiment; s_program = program;
    s_estimator = estimator; s_metric = metric; s_param = param;
    s_value = value }

let mk_record ?(scores = []) ?(degraded = []) ?(timings = []) () :
    Run_record.t =
  { Run_record.r_meta = [ ("git_rev", "test") ];
    r_scores = scores;
    r_degraded = degraded;
    r_faults = [];
    r_timings =
      List.map
        (fun (t_label, t_total_ms) ->
          { Run_record.t_label; t_count = 1; t_total_ms })
        timings }

let test_drift_clean () =
  let scores = [ mk_score 0.5; mk_score ~program:"q" nan ] in
  let r = mk_record ~scores () in
  let report = Drift.diff ~baseline:r ~current:r () in
  Alcotest.(check bool) "identical records do not drift (nan included)"
    false (Drift.has_drift report);
  Alcotest.(check int) "every score compared" 2 report.Drift.compared

(* The baseline-gate regression test: one mutated score value must be
   reported as drift. *)
let test_drift_mutated_value () =
  let baseline = mk_record ~scores:[ mk_score 0.5; mk_score ~program:"q" 0.7 ] () in
  let mutated =
    { baseline with
      Run_record.r_scores =
        List.map
          (fun (s : Score.t) ->
            if s.Score.s_program = "q" then { s with Score.s_value = 0.7000001 }
            else s)
          baseline.Run_record.r_scores }
  in
  let report = Drift.diff ~baseline ~current:mutated () in
  Alcotest.(check bool) "mutated record drifts" true (Drift.has_drift report);
  (match report.Drift.findings with
  | [ Drift.Changed (s, v) ] ->
    Alcotest.(check string) "the right score" "q" s.Score.s_program;
    Alcotest.(check (float 1e-12)) "the new value" 0.7000001 v
  | fs -> Alcotest.failf "expected one Changed finding, got %d" (List.length fs));
  Alcotest.(check bool) "render names the score" true
    (contains (Drift.render report) "fig4/q/smart/wm_intra@0.05")

(* The solver epsilon band: solver-derived scores within the band are
   matches (counted separately), non-solver scores never get the band,
   and the default band of 0.0 keeps the gate bit-exact. *)
let test_drift_solver_band () =
  (* fig6_7 scores pass through the Markov solver; fig4/"smart" with a
     non-markov estimator does not *)
  let solver_score v = mk_score ~experiment:"fig6_7" ~estimator:"solved" v in
  let plain_score v = mk_score v in
  Alcotest.(check bool) "predicate: fig6_7 is solver-derived" true
    (Drift.solver_derived (solver_score 1.0));
  Alcotest.(check bool) "predicate: markov estimator is solver-derived" true
    (Drift.solver_derived (mk_score ~estimator:"markov_wl" 1.0));
  Alcotest.(check bool) "predicate: smart/fig4 is not" false
    (Drift.solver_derived (plain_score 1.0));
  Alcotest.(check bool) "within_band has an absolute floor at 1" true
    (Drift.within_band ~band:1e-4 1e-9 2e-9);
  Alcotest.(check bool) "within_band is relative above 1" true
    (Drift.within_band ~band:1e-4 20000.0 20001.0);
  Alcotest.(check bool) "outside the band" false
    (Drift.within_band ~band:1e-4 1.0 1.001);
  let baseline =
    mk_record ~scores:[ solver_score 0.5; plain_score 0.5 ] ()
  in
  let nudged =
    mk_record ~scores:[ solver_score 0.50002; plain_score 0.5 ] ()
  in
  (* default: exact compare — the nudge is drift *)
  let exact_report = Drift.diff ~baseline ~current:nudged () in
  Alcotest.(check bool) "band 0 keeps the gate bit-exact" true
    (Drift.has_drift exact_report);
  (* with the band: a match, counted as banded, and rendered as such *)
  let banded_report =
    Drift.diff ~solver_band:Drift.default_solver_band ~baseline
      ~current:nudged ()
  in
  Alcotest.(check bool) "banded nudge is not drift" false
    (Drift.has_drift banded_report);
  Alcotest.(check int) "banded count" 1 banded_report.Drift.banded;
  Alcotest.(check int) "both scores compared" 2 banded_report.Drift.compared;
  Alcotest.(check bool) "render reports the split" true
    (contains (Drift.render banded_report) "1 within the solver band");
  (* the same nudge on a non-solver score stays drift even with a band *)
  let plain_nudged =
    mk_record ~scores:[ solver_score 0.5; plain_score 0.50002 ] ()
  in
  Alcotest.(check bool) "band never applies to non-solver scores" true
    (Drift.has_drift
       (Drift.diff ~solver_band:Drift.default_solver_band ~baseline
          ~current:plain_nudged ()))

let test_drift_degraded_not_regression () =
  let baseline =
    mk_record ~scores:[ mk_score 0.5; mk_score ~program:"q" 0.7 ] ()
  in
  let current =
    mk_record ~scores:[ mk_score 0.5 ]
      ~degraded:[ ("q", "profile") ] ()
  in
  let report = Drift.diff ~baseline ~current () in
  (match report.Drift.findings with
  | [ Drift.Degraded_program (s, stage) ] ->
    Alcotest.(check string) "degraded program" "q" s.Score.s_program;
    Alcotest.(check string) "carries the stage" "profile" stage
  | fs ->
    Alcotest.failf "expected one Degraded_program finding, got %d"
      (List.length fs));
  Alcotest.(check bool) "flagged in the rendering" true
    (contains (Drift.render report) "degraded")

let test_drift_missing_and_added () =
  let baseline = mk_record ~scores:[ mk_score 0.5 ] () in
  let current = mk_record ~scores:[ mk_score ~program:"new" 0.9 ] () in
  let report = Drift.diff ~baseline ~current () in
  match report.Drift.findings with
  | [ Drift.Missing _; Drift.Added a ] ->
    Alcotest.(check string) "added score" "new" a.Score.s_program
  | fs -> Alcotest.failf "expected Missing+Added, got %d" (List.length fs)

let test_drift_timing_band () =
  let baseline = mk_record ~timings:[ ("run", 1000.0); ("tiny", 0.01) ] () in
  let within = mk_record ~timings:[ ("run", 3000.0); ("tiny", 4.0) ] () in
  Alcotest.(check bool) "3x and sub-floor jitter are in band" false
    (Drift.has_drift (Drift.diff ~baseline ~current:within ()));
  let out = mk_record ~timings:[ ("run", 1000.0 *. 80.0) ] () in
  match (Drift.diff ~baseline ~current:out ()).Drift.findings with
  | [ Drift.Timing_out_of_band ("run", b, c) ] ->
    Alcotest.(check (float 1e-9)) "baseline ms" 1000.0 b;
    Alcotest.(check (float 1e-9)) "current ms" 80000.0 c
  | fs -> Alcotest.failf "expected one timing finding, got %d" (List.length fs)

(* --- jobs invariance of the drift gate -------------------------------- *)

(* Run a representative slice of the suite (plain rows, score tables,
   the keep-filtered fig9) under chaos at jobs 1 and jobs 4, collect a
   run record from each, and require the *drift reports* — not just the
   scores — to be byte-identical. *)
let chaos_record (jobs : int) : Run_record.t =
  pristine ();
  Parallel.set_jobs jobs;
  Fault.arm_chaos ~seed:424242 ();
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some f -> ignore (f ())
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "table1"; "fig2"; "fig4"; "fig9" ];
  let r = Run_record.collect ~meta:[ ("jobs", string_of_int jobs) ] () in
  pristine ();
  r

let test_chaos_drift_jobs_invariant () =
  let r1 = chaos_record 1 in
  let r4 = chaos_record 4 in
  Alcotest.(check bool) "same scores at jobs 1 and 4" true
    (compare r1.Run_record.r_scores r4.Run_record.r_scores = 0);
  Alcotest.(check bool) "same degradations" true
    (compare r1.Run_record.r_degraded r4.Run_record.r_degraded = 0);
  (* diff both against a perturbed baseline: the rendered drift report
     must come out byte-identical *)
  let baseline =
    { r1 with
      Run_record.r_scores =
        List.map
          (fun (s : Score.t) -> { s with Score.s_value = s.Score.s_value +. 0.125 })
          r1.Run_record.r_scores;
      r_timings = [] }
  in
  let render r = Drift.render (Drift.diff ~baseline ~current:r ()) in
  let d1 = render r1 and d4 = render r4 in
  Alcotest.(check string) "drift output identical at jobs 1 and 4" d1 d4;
  Alcotest.(check bool) "and it does report drift" true
    (Drift.has_drift (Drift.diff ~baseline ~current:r1 ()))

(* ---------------------------------------------------------------------- *)

(* Regression (PR 8): [Obs.Envmeta.git_rev] has a freshness contract —
   the ref files are re-read on every call, never memoized per process.
   A long-running consumer (the serve daemon's [stats], every
   [Run_record.collect]) must see a commit made under it on the next
   call. Pinned with a synthetic repo: a detached HEAD swap and a
   branch-ref swap both show up immediately. *)
let test_git_rev_fresh_per_call () =
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let root = Filename.temp_file "gitrev" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  let git = Filename.concat root ".git" in
  Sys.mkdir git 0o755;
  let head = Filename.concat git "HEAD" in
  let cwd = Sys.getcwd () in
  Fun.protect
    ~finally:(fun () ->
      Sys.chdir cwd;
      Array.iter
        (fun f -> try Sys.remove (Filename.concat git f) with _ -> ())
        (try Sys.readdir git with _ -> [||]);
      (try Sys.rmdir git with _ -> ());
      try Sys.rmdir root with _ -> ())
    (fun () ->
      Sys.chdir root;
      (* Detached HEAD: the file is the hash. *)
      write head "1111111111111111111111111111111111111111\n";
      Alcotest.(check string) "first read"
        "1111111111111111111111111111111111111111"
        (Obs.Envmeta.git_rev ());
      write head "2222222222222222222222222222222222222222\n";
      Alcotest.(check string) "a HEAD swap is visible on the next call"
        "2222222222222222222222222222222222222222"
        (Obs.Envmeta.git_rev ());
      (* Symbolic HEAD: the loose ref file is what must be re-read. *)
      write head "ref: refs/heads/main\n";
      Sys.mkdir (Filename.concat git "refs") 0o755;
      Sys.mkdir (Filename.concat git "refs/heads") 0o755;
      let branch = Filename.concat git "refs/heads/main" in
      write branch "3333333333333333333333333333333333333333\n";
      Alcotest.(check string) "symbolic HEAD resolves through the ref"
        "3333333333333333333333333333333333333333"
        (Obs.Envmeta.git_rev ());
      write branch "4444444444444444444444444444444444444444\n";
      Alcotest.(check string) "a commit under a live process is visible"
        "4444444444444444444444444444444444444444"
        (Obs.Envmeta.git_rev ());
      Sys.remove branch;
      Sys.rmdir (Filename.concat git "refs/heads");
      Sys.rmdir (Filename.concat git "refs"))

let suite =
  [ QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 0x5c07e |])
      prop_record_round_trip;
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 0xf10a7 |])
      prop_float_round_trip;
    Alcotest.test_case "metrics document readable by Obs.Json" `Quick
      test_metrics_doc_readable;
    Alcotest.test_case "mean [] surfaces a fault" `Quick
      (shielded test_mean_empty_surfaces_fault);
    Alcotest.test_case "all-degraded average renders a marker" `Slow
      (shielded test_all_degraded_average_marker);
    Alcotest.test_case "drift: identical records are clean" `Quick
      test_drift_clean;
    Alcotest.test_case "drift: mutated record is flagged" `Quick
      test_drift_mutated_value;
    Alcotest.test_case "drift: solver epsilon band" `Quick
      test_drift_solver_band;
    Alcotest.test_case "drift: degraded program is not a regression" `Quick
      test_drift_degraded_not_regression;
    Alcotest.test_case "drift: missing and added scores" `Quick
      test_drift_missing_and_added;
    Alcotest.test_case "drift: timing tolerance band" `Quick
      test_drift_timing_band;
    Alcotest.test_case "git_rev is re-read on every call" `Quick
      test_git_rev_fresh_per_call;
    Alcotest.test_case "drift report is jobs-invariant under chaos" `Slow
      (shielded test_chaos_drift_jobs_invariant) ]
