(* Per-function content hashes for incremental analysis.

   The hash of a function is a digest of a *canonical serialization* of
   everything its intra-procedural analysis results can depend on:

   - the function's signature and body, serialized from the AST with
     node ids and source positions excluded — so whitespace, comment
     and unrelated-function edits leave the hash unchanged;
   - the declarations of every global the function mentions (via the
     existing [Usage] read sets): a changed initializer or type on a
     used global must invalidate the function;
   - the prototypes of every function or builtin it names: typed call
     nodes feed the branch heuristics, so a callee signature change
     must invalidate the caller;
   - a translation-unit signature covering the struct registry and the
     resolved enum constants. [Ctypes.to_string] renders [Tstruct i]
     by registry index and [Const_fold] bakes enum values into the
     AST, so any change to either could shift meaning under an
     unchanged body text. Folding the whole unit signature into every
     hash is deliberately conservative: editing any struct or enum
     invalidates all functions, which is sound and cheap at this
     subset's scale.

   The serialization does NOT try to be a parseable pretty-print; it
   is a length-prefixed tag soup whose only contract is injectivity on
   the dependency closure above. Digests are [Digest.string] (MD5 from
   the stdlib — collision resistance against adversaries is a non-goal
   for a cache key; determinism and speed are). *)

let add_tag (buf : Buffer.t) (tag : string) = Buffer.add_string buf tag

(* Length-prefix strings so concatenations cannot collide
   ("ab"+"c" vs "a"+"bc"). *)
let add_str (buf : Buffer.t) (s : string) =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let add_int (buf : Buffer.t) (i : int) =
  Buffer.add_string buf (string_of_int i);
  Buffer.add_char buf ';'

(* Bit-exact float serialization: %h prints the hex significand. *)
let add_float (buf : Buffer.t) (f : float) =
  Buffer.add_string buf (Printf.sprintf "%h;" f)

let add_ty (buf : Buffer.t) (ty : Ctypes.ty) = add_str buf (Ctypes.to_string ty)

let rec add_expr (buf : Buffer.t) (e : Ast.expr) =
  match e.Ast.enode with
  | Ast.IntLit i -> add_tag buf "I"; add_int buf i
  | Ast.FloatLit f -> add_tag buf "F"; add_float buf f
  | Ast.CharLit c -> add_tag buf "C"; add_int buf c
  | Ast.StringLit s -> add_tag buf "S"; add_str buf s
  | Ast.Ident name -> add_tag buf "V"; add_str buf name
  | Ast.Unop (op, a) ->
    add_tag buf "U"; add_str buf (Ast.unop_to_string op); add_expr buf a
  | Ast.Binop (op, a, b) ->
    add_tag buf "B";
    add_str buf (Ast.binop_to_string op);
    add_expr buf a; add_expr buf b
  | Ast.Assign (op, a, b) ->
    add_tag buf "A";
    add_str buf (Ast.assign_op_to_string op);
    add_expr buf a; add_expr buf b
  | Ast.Cond (c, a, b) ->
    add_tag buf "?"; add_expr buf c; add_expr buf a; add_expr buf b
  | Ast.Call (f, args) ->
    add_tag buf "(";
    add_expr buf f;
    add_int buf (List.length args);
    List.iter (add_expr buf) args
  | Ast.Cast (ty, a) -> add_tag buf "T"; add_ty buf ty; add_expr buf a
  | Ast.Index (a, i) -> add_tag buf "["; add_expr buf a; add_expr buf i
  | Ast.Field (a, f) -> add_tag buf "."; add_expr buf a; add_str buf f
  | Ast.Arrow (a, f) -> add_tag buf ">"; add_expr buf a; add_str buf f
  | Ast.SizeofT ty -> add_tag buf "zT"; add_ty buf ty
  | Ast.SizeofE a -> add_tag buf "zE"; add_expr buf a
  | Ast.PreIncr a -> add_tag buf "+e"; add_expr buf a
  | Ast.PreDecr a -> add_tag buf "-e"; add_expr buf a
  | Ast.PostIncr a -> add_tag buf "e+"; add_expr buf a
  | Ast.PostDecr a -> add_tag buf "e-"; add_expr buf a
  | Ast.Comma (a, b) -> add_tag buf ","; add_expr buf a; add_expr buf b

let rec add_init (buf : Buffer.t) (init : Ast.init) =
  match init with
  | Ast.Iexpr e -> add_tag buf "ie"; add_expr buf e
  | Ast.Ilist items ->
    add_tag buf "il";
    add_int buf (List.length items);
    List.iter (add_init buf) items

let add_decl (buf : Buffer.t) (d : Ast.decl) =
  add_tag buf "D";
  add_str buf d.Ast.d_name;
  add_ty buf d.Ast.d_ty;
  (match d.Ast.d_init with
  | None -> add_tag buf "0"
  | Some init -> add_init buf init);
  add_int buf (Bool.to_int d.Ast.d_static);
  add_int buf (Bool.to_int d.Ast.d_extern)

let rec add_stmt (buf : Buffer.t) (s : Ast.stmt) =
  match s.Ast.snode with
  | Ast.Sexpr e -> add_tag buf "sE"; add_expr buf e
  | Ast.Sblock items ->
    add_tag buf "s{";
    add_int buf (List.length items);
    List.iter
      (function
        | Ast.Bstmt s -> add_stmt buf s
        | Ast.Bdecl d -> add_decl buf d)
      items
  | Ast.Sif (c, t, f) ->
    add_tag buf "sI";
    add_expr buf c;
    add_stmt buf t;
    (match f with
    | None -> add_tag buf "0"
    | Some f -> add_tag buf "1"; add_stmt buf f)
  | Ast.Swhile (c, b) -> add_tag buf "sW"; add_expr buf c; add_stmt buf b
  | Ast.Sdo (b, c) -> add_tag buf "sD"; add_stmt buf b; add_expr buf c
  | Ast.Sfor (init, cond, step, b) ->
    add_tag buf "sF";
    (match init with
    | Ast.Fnone -> add_tag buf "0"
    | Ast.Fexpr e -> add_tag buf "e"; add_expr buf e
    | Ast.Fdecl ds ->
      add_tag buf "d";
      add_int buf (List.length ds);
      List.iter (add_decl buf) ds);
    (match cond with
    | None -> add_tag buf "0"
    | Some e -> add_tag buf "1"; add_expr buf e);
    (match step with
    | None -> add_tag buf "0"
    | Some e -> add_tag buf "1"; add_expr buf e);
    add_stmt buf b
  | Ast.Sswitch (c, b) -> add_tag buf "sS"; add_expr buf c; add_stmt buf b
  | Ast.Scase (c, b) -> add_tag buf "sC"; add_expr buf c; add_stmt buf b
  | Ast.Sdefault b -> add_tag buf "sO"; add_stmt buf b
  | Ast.Sbreak -> add_tag buf "sB"
  | Ast.Scontinue -> add_tag buf "sK"
  | Ast.Sgoto l -> add_tag buf "sG"; add_str buf l
  | Ast.Slabel (l, b) -> add_tag buf "sL"; add_str buf l; add_stmt buf b
  | Ast.Sreturn None -> add_tag buf "sR0"
  | Ast.Sreturn (Some e) -> add_tag buf "sR1"; add_expr buf e
  | Ast.Snull -> add_tag buf "s;"

let add_fun_ty (buf : Buffer.t) (fty : Ctypes.fun_ty) =
  add_ty buf fty.Ctypes.ret;
  add_int buf (List.length fty.Ctypes.params);
  List.iter (add_ty buf) fty.Ctypes.params;
  add_int buf (Bool.to_int fty.Ctypes.varargs)

let add_fundef (buf : Buffer.t) (f : Ast.fundef) =
  add_tag buf "fn";
  add_str buf f.Ast.f_name;
  add_ty buf f.Ast.f_ret;
  add_int buf (List.length f.Ast.f_params);
  List.iter
    (fun (name, ty) -> add_str buf name; add_ty buf ty)
    f.Ast.f_params;
  add_int buf (Bool.to_int f.Ast.f_varargs);
  add_int buf (Bool.to_int f.Ast.f_static);
  add_stmt buf f.Ast.f_body

(* ------------------------------------------------------------------ *)
(* Translation-unit signature: struct registry + enum constants. *)

let unit_signature (tc : Typecheck.t) : string =
  let buf = Buffer.create 256 in
  let reg = tc.Typecheck.tunit.Ast.structs in
  add_tag buf "structs";
  add_int buf reg.Ctypes.count;
  for i = 0 to reg.Ctypes.count - 1 do
    let d = reg.Ctypes.items.(i) in
    add_str buf (Option.value ~default:"" d.Ctypes.str_tag);
    (match d.Ctypes.str_fields with
    | None -> add_tag buf "fwd"
    | Some fs ->
      add_int buf (List.length fs);
      List.iter
        (fun (fld : Ctypes.field) ->
          add_str buf fld.Ctypes.fld_name;
          add_ty buf fld.Ctypes.fld_ty;
          add_int buf fld.Ctypes.fld_offset)
        fs);
    add_int buf d.Ctypes.str_size
  done;
  add_tag buf "enums";
  let enums =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tc.Typecheck.enum_values []
    |> List.sort compare
  in
  add_int buf (List.length enums);
  List.iter (fun (k, v) -> add_str buf k; add_int buf v) enums;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Function hash. *)

(* Distinct names the body resolves to functions/builtins, with the
   callee prototype folded in for user functions. *)
let add_callees (buf : Buffer.t) (tc : Typecheck.t) (f : Ast.fundef) =
  let seen = Hashtbl.create 8 in
  Ast.iter_stmt f.Ast.f_body
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun (e : Ast.expr) ->
      match e.Ast.enode with
      | Ast.Ident name -> begin
        match Typecheck.resolution_of tc e with
        | Some (Typecheck.Rfun _) -> Hashtbl.replace seen name `Fun
        | Some (Typecheck.Rbuiltin _) -> Hashtbl.replace seen name `Builtin
        | _ -> ()
      end
      | _ -> ());
  let callees =
    Hashtbl.fold (fun name kind acc -> (name, kind) :: acc) seen []
    |> List.sort compare
  in
  add_tag buf "callees";
  add_int buf (List.length callees);
  List.iter
    (fun (name, kind) ->
      add_str buf name;
      match kind with
      | `Builtin -> add_tag buf "builtin"
      | `Fun -> begin
        add_tag buf "user";
        match Typecheck.fun_info tc name with
        | Some fi -> add_fun_ty buf fi.Typecheck.fi_ty
        | None -> add_tag buf "proto-only"
      end)
    callees

(* Declarations of the globals the function mentions, from the [Usage]
   read sets (every [Ident] occurrence counts as a read there, stores
   included, so this is the full mentioned-globals set). *)
let add_used_globals (buf : Buffer.t) (tc : Typecheck.t) (usage : Usage.t) =
  let names =
    Hashtbl.fold
      (fun k _ acc ->
        match k with Usage.Vglobal g -> g :: acc | Usage.Vlocal _ -> acc)
      usage.Usage.fun_reads []
    |> List.sort_uniq compare
  in
  add_tag buf "globals";
  add_int buf (List.length names);
  List.iter
    (fun g ->
      add_str buf g;
      match Hashtbl.find_opt tc.Typecheck.globals g with
      | Some d -> add_decl buf d
      | None -> add_tag buf "undeclared")
    names

(* The content hash of one function, given the unit signature (compute
   it once per translation unit with {!unit_signature}) and the
   function's [Usage] summary. *)
let fn_hash (tc : Typecheck.t) ~(unit_sig : string) (usage : Usage.t)
    (f : Ast.fundef) : string =
  let buf = Buffer.create 1024 in
  add_str buf unit_sig;
  add_fundef buf f;
  add_used_globals buf tc usage;
  add_callees buf tc f;
  Digest.to_hex (Digest.string (Buffer.contents buf))
