lib/core/missrate.mli: Branch_predictor Cfg_ir Cfront Cinterp
