(* Span and counter recording. See probe.mli for the contract.

   Hot-path discipline: when disabled, every probe is one Atomic.get and
   a branch. When enabled, spans touch only domain-local state (a DLS
   stack and a DLS buffer) plus one fetch-and-add for the id; counters
   take a global mutex, which is acceptable at diagnostic volumes. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now_ns () : int64 = Monotonic_clock.now ()

(* ------------------------------------------------------------------ *)
(* Spans. *)

type span = {
  id : int;
  parent : int;
  domain : int;
  label : string;
  start_ns : int64;
  stop_ns : int64;
}

let next_id = Atomic.make 0

(* Per-domain buffers of closed spans. Each buffer registers itself in
   the global list on first use in its domain; the registry keeps the
   ref alive past the domain's death (pools retire their workers), so no
   recorded span is ever lost. *)
let registry : span list ref list ref = ref []
let registry_lock = Mutex.create ()

let buffer_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let buf = ref [] in
      Mutex.lock registry_lock;
      registry := buf :: !registry;
      Mutex.unlock registry_lock;
      buf)

(* The stack of open span ids on this domain. The ambient parent handed
   over by [with_parent] is just a pre-seeded stack bottom. *)
let stack_key : int list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let current_span () =
  match Domain.DLS.get stack_key with [] -> -1 | id :: _ -> id

let with_parent parent f =
  if (not (enabled ())) || parent < 0 then f ()
  else begin
    let saved = Domain.DLS.get stack_key in
    Domain.DLS.set stack_key (parent :: saved);
    Fun.protect ~finally:(fun () -> Domain.DLS.set stack_key saved) f
  end

let with_span label f =
  if not (enabled ()) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let saved = Domain.DLS.get stack_key in
    let parent = match saved with [] -> -1 | p :: _ -> p in
    Domain.DLS.set stack_key (id :: saved);
    let start_ns = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let stop_ns = now_ns () in
        Domain.DLS.set stack_key saved;
        let buf = Domain.DLS.get buffer_key in
        buf :=
          { id; parent; domain = (Domain.self () :> int); label; start_ns;
            stop_ns }
          :: !buf)
      f
  end

let spans () : span list =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  List.concat_map (fun buf -> !buf) buffers
  |> List.sort (fun a b -> compare a.id b.id)

(* ------------------------------------------------------------------ *)
(* Counters. *)

type counter = { hits : int; total : float; vmin : float; vmax : float }

type cell = {
  mutable hits' : int;
  mutable total' : float;
  mutable vmin' : float;
  mutable vmax' : float;
}

let counter_lock = Mutex.create ()
let counter_table : (string, cell) Hashtbl.t = Hashtbl.create 64

let observe name v =
  if enabled () then begin
    Mutex.lock counter_lock;
    (match Hashtbl.find_opt counter_table name with
    | Some c ->
      c.hits' <- c.hits' + 1;
      c.total' <- c.total' +. v;
      if v < c.vmin' then c.vmin' <- v;
      if v > c.vmax' then c.vmax' <- v
    | None ->
      Hashtbl.replace counter_table name
        { hits' = 1; total' = v; vmin' = v; vmax' = v });
    Mutex.unlock counter_lock
  end

let count name = observe name 1.0

let counters () : (string * counter) list =
  Mutex.lock counter_lock;
  let entries =
    Hashtbl.fold
      (fun name c acc ->
        (name, { hits = c.hits'; total = c.total'; vmin = c.vmin';
                 vmax = c.vmax' })
        :: acc)
      counter_table []
  in
  Mutex.unlock counter_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

(* ------------------------------------------------------------------ *)
(* Gauges: last-write-wins levels, same mutex discipline as counters. *)

let gauge_lock = Mutex.create ()
let gauge_table : (string, float) Hashtbl.t = Hashtbl.create 16

let set_gauge name v =
  if enabled () then begin
    Mutex.lock gauge_lock;
    Hashtbl.replace gauge_table name v;
    Mutex.unlock gauge_lock
  end

let gauge name =
  Mutex.lock gauge_lock;
  let v = Hashtbl.find_opt gauge_table name in
  Mutex.unlock gauge_lock;
  v

let gauges () : (string * float) list =
  Mutex.lock gauge_lock;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauge_table [] in
  Mutex.unlock gauge_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

(* ------------------------------------------------------------------ *)

let reset_spans () =
  Mutex.lock registry_lock;
  List.iter (fun buf -> buf := []) !registry;
  Mutex.unlock registry_lock

let reset () =
  Mutex.lock counter_lock;
  Hashtbl.reset counter_table;
  Mutex.unlock counter_lock;
  Mutex.lock gauge_lock;
  Hashtbl.reset gauge_table;
  Mutex.unlock gauge_lock;
  reset_spans ();
  Atomic.set next_id 0
