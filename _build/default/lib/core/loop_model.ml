(* The paper's loop model (section 4.1): "a very simple loop model,
   predicting that all loops iterate five times". Five iterations means
   the loop test executes 5 times per loop entry and the body 4 times
   (Figure 3), i.e. a continue probability of 0.8.

   The standard count is read from [Config] so the ablation experiments
   can vary it; the default is the paper's 5. *)

let standard_iterations () = Config.current.Config.loop_iterations

(* P(loop test is true) = (k-1)/k for a test executed k times per entry. *)
let continue_probability () =
  let k = standard_iterations () in
  (k -. 1.0) /. k

(* Per loop entry: the number of times the test runs. *)
let test_executions () = standard_iterations ()

(* Per loop entry: the number of times the body of a top-tested loop
   (while/for) runs. *)
let body_executions () = standard_iterations () -. 1.0

(* A bottom-tested loop (do/while) runs its body as often as its test. *)
let do_body_executions () = standard_iterations ()

(* Multiplier applied to recursive functions by the [direct] and [all_rec]
   simple inter-procedural estimators (section 4.3): the standard count. *)
let recursion_multiplier () = standard_iterations ()

(* Ceiling for per-SCC Markov subproblem solutions (section 5.2.2,
   footnote 6: "After some experimentation, we chose a ceiling of 5"). *)
let scc_solution_ceiling = 5.0

(* Probability used to replace invalid (> 1) direct-recursion arc weights
   (section 5.2.2: "recursive arcs with a probability greater than 1 are
   changed to a standard value of 0.8"). *)
let recursive_arc_probability = 0.8
