(* A minimal JSON implementation: a value type, a strict recursive-
   descent parser and a printer. The repository deliberately carries no
   JSON dependency — the run-record/baseline machinery (Driver.Run_record)
   and the test suite both need to *read* the documents the observability
   layer writes, so the reader lives here at the bottom of the tree next
   to the probes that produce the data. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing. *)

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity; [Num] printing must never corrupt the
   document, so non-finite floats become strings (the reader side of
   this convention lives with each schema, e.g. [Run_record]). Finite
   floats print with enough digits to round-trip bit-exactly — the
   drift gate compares scores for equality across processes. *)
let float_repr (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec print (buf : Buffer.t) (indent : int) (v : t) : unit =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
    if Float.is_finite v then Buffer.add_string buf (float_repr v)
    else Buffer.add_string buf (Printf.sprintf "\"%s\"" (string_of_float v))
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        print buf (indent + 1) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 1));
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        print buf (indent + 1) item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 4096 in
  print buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Single-line printer for newline-delimited protocols ([Driver.Serve]):
   no indentation, no interior newlines, no trailing newline — the
   framing layer owns the newline. *)
let rec print_compact (buf : Buffer.t) (v : t) : unit =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
    if Float.is_finite v then Buffer.add_string buf (float_repr v)
    else Buffer.add_string buf (Printf.sprintf "\"%s\"" (string_of_float v))
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        print_compact buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        print_compact buf item)
      fields;
    Buffer.add_char buf '}'

let to_compact_string (v : t) : string =
  let buf = Buffer.create 1024 in
  print_compact buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing. *)

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
        | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
          advance ();
          let code = ref 0 in
          for _ = 1 to 4 do
            (match peek () with
            | Some ('0' .. '9' as c) ->
              code := (!code * 16) + (Char.code c - Char.code '0')
            | Some ('a' .. 'f' as c) ->
              code := (!code * 16) + (Char.code c - Char.code 'a' + 10)
            | Some ('A' .. 'F' as c) ->
              code := (!code * 16) + (Char.code c - Char.code 'A' + 10)
            | _ -> fail "bad \\u escape");
            advance ()
          done;
          (* Encode the code point as UTF-8; the writer only emits
             \u00XX control escapes, but accept the full BMP. *)
          let c = !code in
          if c < 0x80 then Buffer.add_char buf (Char.chr c)
          else if c < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (c lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (c lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
          end;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !pos = d0 then fail "expected digits"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    let v =
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            items := value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ();
          Arr (List.rev !items)
        end
      | Some '"' -> Str (string_body ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> Num (number ())
      | _ -> fail "expected a value"
    in
    skip_ws ();
    v
  in
  match
    let v = value () in
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let parse_exn (s : string) : t =
  match parse s with Ok v -> v | Error msg -> raise (Parse_error msg)

(* ------------------------------------------------------------------ *)
(* Accessors: total lookups returning options, so schema readers can
   give precise errors instead of pattern-match failures. *)

let member (name : string) (v : t) : t option =
  match v with Obj fields -> List.assoc_opt name fields | _ -> None

let to_list (v : t) : t list option =
  match v with Arr items -> Some items | _ -> None

let to_str (v : t) : string option =
  match v with Str s -> Some s | _ -> None

(* Numbers, honouring the non-finite-floats-as-strings convention. *)
let to_num (v : t) : float option =
  match v with
  | Num f -> Some f
  | Str s -> float_of_string_opt s
  | _ -> None
