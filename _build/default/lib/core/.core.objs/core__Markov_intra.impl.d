lib/core/markov_intra.ml: Array Branch_predictor Cfg_ir Cfront Config Float Hashtbl Linalg List Option
