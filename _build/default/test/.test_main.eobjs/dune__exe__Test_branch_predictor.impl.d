test/test_branch_predictor.ml: Alcotest Cfg_ir Cfront Core List Option Parser Typecheck Usage
