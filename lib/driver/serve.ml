(* The estimator server: a long-running daemon speaking newline-
   delimited JSON, answering from the warm incremental store.

   Framing. One request per line; a *blank line* (or EOF) closes a
   batch. All [analyze] requests that are adjacent within a batch fan
   out together — through [Parallel.map] in-process, or across the
   supervised worker pool under [--workers]; the control operations
   ([scores], [invalidate], [stats], [resize], [shutdown]) are
   sequential barriers between fan-outs. Responses are written one per
   line, in request order, after the whole batch has been processed,
   then flushed — so a client that writes N lines and a blank line
   reads exactly N lines back. The framing itself lives in
   [Driver.Transport]; this module is carrier-agnostic and serves the
   same protocol over stdin/stdout ([serve], the default of [bin
   serve]) or a Unix-domain socket ([--socket PATH]).

   Requests:   {"id": .., "op": "analyze", "name": s, "source": s,
                "kinds": [s..]?, "runs": [{"argv": [s..], "input": s}..]?}
               {"id": .., "op": "scores", "name": s}
               {"id": .., "op": "invalidate", "name": s?}
               {"id": .., "op": "stats"}
               {"id": .., "op": "metrics"}
               {"id": .., "op": "resize", "jobs": n}
               {"id": .., "op": "shutdown"}
   Responses:  {"id": .., "ok": true, ...}    (per-op payload below)
             | {"id": .., "ok": false, "error": {"stage": s,
                "subject": s, "detail": s, "exn": s, "recovery": s}}

   Three error responses carry an extra marker field so clients can
   react without parsing detail strings: ["overloaded": true] (the
   request was shed at admission because the pending-request queue was
   full), ["worker_lost": true] (a [--workers] shard died twice on this
   request — once plus one replay — and was restarted), and
   ["deadline_exceeded": true] (the request overran [--deadline-ms]).

   The [id] is echoed verbatim (any JSON value; [null] when the
   request had none or did not parse).

   Fault isolation. Each request body runs under [Fault.capture] with
   the PR-4 taxonomy: a bad source degrades exactly one response —
   carrying the fault's stage/exn detail — and never the daemon. The
   fault log is reset after every batch so a long-running daemon's
   memory stays bounded; clients that care read [stats.faults] (the
   count for the current batch's log) before it resets. A [shutdown]
   answers [ok] and stops after its batch; requests queued *behind* it
   in the same batch get an error response rather than silence.

   Durability and drain. Under [--store DIR] every intra solution is
   journaled through [Incr]/[Persist] as it is computed, so a restart
   (graceful or [kill -9]) begins warm. SIGTERM/SIGINT drain
   gracefully: stop accepting work, finish the in-flight batch, take a
   final snapshot (flushing the journal), report recorded faults on
   stderr and exit — code 3 if any batch of the daemon's life degraded,
   0 otherwise. *)

module Json = Obs.Json

type request = { rq_id : Json.t; rq_op : string; rq_body : Json.t }

(* ------------------------------------------------------------------ *)
(* Parsing. *)

let member_str (name : string) (j : Json.t) : string option =
  Option.bind (Json.member name j) Json.to_str

let parse_request (line : string) : (request, Json.t * string) result =
  match Json.parse line with
  | Error msg -> Error (Json.Null, "request is not valid JSON: " ^ msg)
  | Ok j ->
    let id = Option.value ~default:Json.Null (Json.member "id" j) in
    (match member_str "op" j with
    | None -> Error (id, "request has no \"op\" field")
    | Some op -> Ok { rq_id = id; rq_op = op; rq_body = j })

(* The id of a raw line, for error responses built before (or instead
   of) dispatch: shed, shutdown-drain, client bookkeeping. *)
let line_id (line : string) : Json.t =
  match parse_request line with Ok rq -> rq.rq_id | Error (id, _) -> id

let parse_kinds (j : Json.t) :
    (Core.Pipeline.intra_kind list option, string) result =
  match Json.member "kinds" j with
  | None -> Ok None
  | Some ks ->
    (match Json.to_list ks with
    | None -> Error "\"kinds\" is not an array"
    | Some items ->
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | item :: rest ->
          (match Option.bind (Json.to_str item) Core.Pipeline.intra_kind_of_string with
          | Some k -> go (k :: acc) rest
          | None ->
            Error
              (Printf.sprintf "unknown intra kind %s"
                 (Json.to_compact_string item)))
      in
      go [] items)

let parse_runs (j : Json.t) :
    (Core.Pipeline.run list, string) result =
  match Json.member "runs" j with
  | None -> Ok []
  | Some rs ->
    (match Json.to_list rs with
    | None -> Error "\"runs\" is not an array"
    | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
          let argv =
            match Option.bind (Json.member "argv" item) Json.to_list with
            | None -> Some []
            | Some l ->
              let strs = List.filter_map Json.to_str l in
              if List.length strs = List.length l then Some strs else None
          in
          let input =
            match Json.member "input" item with
            | None -> Some ""
            | Some v -> Json.to_str v
          in
          (match (argv, input) with
          | Some argv, Some input ->
            go ({ Core.Pipeline.argv; input } :: acc) rest
          | _ -> Error "each run is {\"argv\": [str..], \"input\": str}")
      in
      go [] items)

(* ------------------------------------------------------------------ *)
(* Responses. *)

let ok_response (id : Json.t) (fields : (string * Json.t) list) : Json.t =
  Json.Obj (("id", id) :: ("ok", Json.Bool true) :: fields)

let fault_error (id : Json.t) (f : Fault.t) : Json.t =
  Json.Obj
    [ ("id", id); ("ok", Json.Bool false);
      ("error",
       Json.Obj
         [ ("stage", Json.Str (Fault.stage_to_string f.Fault.f_stage));
           ("subject", Json.Str f.Fault.f_subject);
           ("detail", Json.Str f.Fault.f_detail);
           ("exn", Json.Str f.Fault.f_exn);
           ("recovery", Json.Str f.Fault.f_recovery) ])
    ]

let plain_error (id : Json.t) (detail : string) : Json.t =
  fault_error id
    { Fault.f_stage = Fault.Experiment; f_subject = "serve";
      f_detail = detail; f_exn = ""; f_backtrace = "";
      f_recovery = "request rejected; daemon keeps serving" }

(* Marker-carrying errors (see the protocol comment above). *)

let with_marker (marker : string) (j : Json.t) : Json.t =
  match j with
  | Json.Obj fields -> Json.Obj (fields @ [ (marker, Json.Bool true) ])
  | j -> j

let overloaded_response (id : Json.t) ~(queue_limit : int) : Json.t =
  with_marker "overloaded"
    (fault_error id
       { Fault.f_stage = Fault.Experiment; f_subject = "serve";
         f_detail =
           Printf.sprintf "pending-request queue limit %d exceeded"
             queue_limit;
         f_exn = ""; f_backtrace = "";
         f_recovery =
           "request shed before execution; retry after the daemon drains" })

(* Worker-lost and supervised-deadline responses are *recorded* faults:
   they count toward [stats.faults] and turn the daemon's eventual exit
   code to 3, same as any other degradation. *)

let worker_lost_response (id : Json.t) ~(name : string) (detail : string) :
    Json.t =
  let f =
    { Fault.f_stage = Fault.Worker; f_subject = name; f_detail = detail;
      f_exn = "worker process died"; f_backtrace = "";
      f_recovery = "worker restarted; request replayed once, then failed" }
  in
  Fault.record f;
  with_marker "worker_lost" (fault_error id f)

let deadline_response (id : Json.t) ~(name : string) (seconds : float) :
    Json.t =
  let f =
    { Fault.f_stage = Fault.Worker; f_subject = name;
      f_detail = Printf.sprintf "request deadline %gs exceeded" seconds;
      f_exn = "worker killed on deadline"; f_backtrace = "";
      f_recovery = "worker restarted; request answered with a deadline fault" }
  in
  Fault.record f;
  with_marker "deadline_exceeded" (fault_error id f)

(* ------------------------------------------------------------------ *)
(* The metrics snapshot: one JSON object of every counter, gauge and
   histogram summary, plus the slow-request log. Schema versioned like
   the run-record schema; bump on any shape change. *)

let metrics_schema_version = 1

let metrics_payload () : (string * Json.t) list =
  let num i = Json.Num (float_of_int i) in
  let counters =
    Json.Obj
      (List.map
         (fun (name, c) ->
           ( name,
             Json.Obj
               [ ("hits", num c.Obs.Probe.hits);
                 ("total", Json.Num c.Obs.Probe.total);
                 ("min", Json.Num c.Obs.Probe.vmin);
                 ("max", Json.Num c.Obs.Probe.vmax) ] ))
         (Obs.Probe.counters ()))
  in
  (* Gauges carry a shard label from day one so local and merged
     snapshots parse identically; -1 is "this process" (the parent, or
     an unsharded daemon). *)
  let gauges =
    Json.Obj
      (List.map
         (fun (name, v) ->
           ( name,
             Json.Obj
               [ ("value", Json.Num v); ("shard", num (-1));
                 ("per_shard", Json.Arr [ Json.Arr [ num (-1); Json.Num v ] ])
               ] ))
         (Obs.Probe.gauges ()))
  in
  let hists =
    Json.Obj
      (List.map
         (fun (name, s) -> (name, Obs.Hist.summary_json s))
         (Obs.Hist.all ()))
  in
  let recent =
    let entries = Reqtrace.slow_entries () in
    let skip = List.length entries - 8 in
    List.filteri (fun i _ -> i >= skip) entries
  in
  let slow =
    Json.Obj
      [ ( "threshold_ms",
          match Reqtrace.slow_ms () with
          | None -> Json.Null
          | Some t -> Json.Num t );
        ("count", num (Reqtrace.slow_count ()));
        ("recent", Json.Arr (List.map Reqtrace.slow_entry_to_json recent)) ]
  in
  [ ("schema", num metrics_schema_version);
    ("counters", counters);
    ("gauges", gauges);
    ("hists", hists);
    ("slow", slow);
    ("workers", num 0);
    ("workers_alive", num 0);
    ("worker_restarts", num 0);
    ("worker_lost", num 0);
    ("shards", Json.Arr []);
    ("git_rev", Json.Str (Obs.Envmeta.git_rev ())) ]

(* ------------------------------------------------------------------ *)
(* Per-request handlers. *)

(* Last successful analysis per program name, so [scores] can answer
   without re-running anything. Written only from the sequential merge
   path of [handle_batch] (or, sharded, inside the owning worker);
   bounded by the number of distinct names. *)
let last_scores : (string, Score.t list) Hashtbl.t = Hashtbl.create 64

let scores_json (scores : Score.t list) : Json.t =
  Json.Arr (List.map Run_record.score_to_json scores)

let analysis_response (id : Json.t) (a : Incr.analysis) : Json.t =
  ok_response id
    [ ("name", Json.Str a.Incr.an_name);
      ("program_hit", Json.Bool a.Incr.an_program_hit);
      ("profile_hit",
       match a.Incr.an_profile_hit with
       | None -> Json.Null
       | Some h -> Json.Bool h);
      ("fn_hits", Json.Num (float_of_int a.Incr.an_fn_hits));
      ("fn_misses", Json.Num (float_of_int a.Incr.an_fn_misses));
      ("fn_hashes",
       Json.Obj
         (List.map (fun (fn, h) -> (fn, Json.Str h)) a.Incr.an_fn_hashes));
      ("scores", scores_json a.Incr.an_scores) ]

(* The parallel part of [analyze]: everything except the response-cache
   write, which the merge path does sequentially. The cooperative
   [deadline_s] rides into [Incr.analyze]; overrunning it raises
   [Incr.Deadline_exceeded], which the capture below turns into a typed
   fault response like any other per-request failure. *)
let run_analyze ?(deadline_s : float option) (rq : request) :
    (Incr.analysis, Json.t) result =
  match member_str "name" rq.rq_body with
  | None -> Error (plain_error rq.rq_id "analyze needs a \"name\" field")
  | Some name ->
    (match member_str "source" rq.rq_body with
    | None -> Error (plain_error rq.rq_id "analyze needs a \"source\" field")
    | Some source ->
      (match parse_kinds rq.rq_body with
      | Error msg -> Error (plain_error rq.rq_id msg)
      | Ok kinds ->
        (match parse_runs rq.rq_body with
        | Error msg -> Error (plain_error rq.rq_id msg)
        | Ok runs ->
          (match
             Fault.capture ~stage:Fault.Experiment ~subject:name
               ~detail:"serve analyze"
               ~recovery:"request answered with an error response"
               (fun () -> Incr.analyze ?kinds ~runs ?deadline_s ~name source)
           with
          | Ok a -> Ok a
          | Error f ->
            let resp = fault_error rq.rq_id f in
            let resp =
              if Fault.(f.f_exn) <> ""
                 && String.length f.Fault.f_exn >= 17
                 && String.sub f.Fault.f_exn 0 17 = "Driver.Incr.Deadl"
              then with_marker "deadline_exceeded" resp
              else resp
            in
            Error resp))))

let handle_control (stop : bool ref) (rq : request) : Json.t =
  match rq.rq_op with
  | "scores" ->
    (match member_str "name" rq.rq_body with
    | None -> plain_error rq.rq_id "scores needs a \"name\" field"
    | Some name ->
      (match Hashtbl.find_opt last_scores name with
      | None ->
        plain_error rq.rq_id
          (Printf.sprintf "no analysis on record for %S" name)
      | Some scores ->
        ok_response rq.rq_id
          [ ("name", Json.Str name); ("scores", scores_json scores) ]))
  | "invalidate" ->
    (match member_str "name" rq.rq_body with
    | Some name ->
      let dropped = Incr.invalidate ~name in
      Hashtbl.remove last_scores name;
      ok_response rq.rq_id
        [ ("name", Json.Str name);
          ("dropped", Json.Num (float_of_int dropped)) ]
    | None ->
      Incr.clear ();
      Hashtbl.reset last_scores;
      ok_response rq.rq_id [ ("cleared", Json.Bool true) ])
  | "stats" ->
    let st = Incr.stats () in
    let num i = Json.Num (float_of_int i) in
    ok_response rq.rq_id
      [ ("entries", num st.Incr.st_entries);
        ("bytes", num st.Incr.st_bytes);
        ("budget", num st.Incr.st_budget);
        ("hits", num st.Incr.st_hits);
        ("misses", num st.Incr.st_misses);
        ("evictions", num st.Incr.st_evictions);
        ("bypasses", num st.Incr.st_bypasses);
        ("restored", num st.Incr.st_restored);
        ("journal_entries", num st.Incr.st_journal_entries);
        ("snapshots", num st.Incr.st_snapshots);
        ("persisted", Json.Bool st.Incr.st_persisted);
        ("jobs", num (Parallel.jobs ()));
        ("pool_size",
         match Parallel.pool_size () with
         | None -> Json.Null
         | Some s -> num s);
        ("faults", num (Fault.count ()));
        (* Re-read per request — a long-running daemon must report the
           repository's rev as it is *now*, not at startup. *)
        ("git_rev", Json.Str (Obs.Envmeta.git_rev ())) ]
  | "metrics" -> ok_response rq.rq_id (metrics_payload ())
  | "resize" ->
    (match Option.bind (Json.member "jobs" rq.rq_body) Json.to_num with
    | None -> plain_error rq.rq_id "resize needs a numeric \"jobs\" field"
    | Some n ->
      Parallel.set_jobs (int_of_float n);
      ok_response rq.rq_id [ ("jobs", Json.Num (float_of_int (Parallel.jobs ()))) ])
  | "shutdown" ->
    stop := true;
    ok_response rq.rq_id [ ("stopping", Json.Bool true) ]
  | op -> plain_error rq.rq_id (Printf.sprintf "unknown op %S" op)

(* ------------------------------------------------------------------ *)
(* The worker side of [--workers]: handle exactly one request line and
   return one response line. Runs inside a [Supervise] child, which
   has its own store shard attached ([Incr.open_store DIR/shard-N]).
   Chaos ([--chaos SEED] arming ["serve.worker-kill"]) kills the worker
   *process* here, by request key — the parent's supervision, not this
   handler, turns that into a typed response. *)

let handle_one_line ?(deadline_s : float option) (line : string) : string =
  let parsed = parse_request line in
  (* The parent's tracing envelope: ["__trace"] asks for our span
     subtree back; ["__seq"] is the daemon-assigned request id, echoed
     inside the subtree envelope so the parent can verify it grafts the
     right request's spans. *)
  let want_trace =
    match parsed with
    | Ok rq -> Json.member "__trace" rq.rq_body = Some (Json.Bool true)
    | Error _ -> false
  in
  let seq =
    match parsed with
    | Ok rq -> Option.bind (Json.member "__seq" rq.rq_body) Json.to_num
    | Error _ -> None
  in
  let handle () =
    match parsed with
    | Error (id, msg) -> plain_error id msg
    | Ok rq when rq.rq_op = "analyze" ->
      (match member_str "name" rq.rq_body with
      | Some name when Obs.Inject.should_fire "serve.worker-kill" ~key:name
        ->
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        plain_error rq.rq_id "unreachable"
      | _ ->
        (match run_analyze ?deadline_s rq with
        | Ok a ->
          Hashtbl.replace last_scores a.Incr.an_name a.Incr.an_scores;
          analysis_response rq.rq_id a
        | Error resp -> resp))
    | Ok rq -> handle_control (ref false) rq
  in
  let resp, root =
    Obs.Hist.time "serve.handle.ns" (fun () ->
        if want_trace then Reqtrace.with_root handle else (handle (), -1))
  in
  let resp =
    if want_trace && root >= 0 then
      match (Reqtrace.tree_of_root root (Obs.Probe.spans ()), resp) with
      | Some tree, Json.Obj fields ->
        Json.Obj
          (fields
          @ [ ( "__spans",
                Json.Obj
                  [ ( "seq",
                      match seq with Some s -> Json.Num s | None -> Json.Null
                    );
                    ("tree", Reqtrace.tree_to_json tree) ] ) ])
      | _ -> resp
    else resp
  in
  let s = Json.to_compact_string resp in
  (* One request is this process's whole batch: reset the log after the
     response (which already carries any fault detail) is built. Store
     gauges are re-published and span buffers dropped for the same
     bounded-memory reason — counters and histograms accumulate for the
     life of the worker; [metrics] reads them. *)
  Fault.reset ();
  Incr.republish_gauges ();
  if Obs.Probe.enabled () then Obs.Probe.reset_spans ();
  s

(* ------------------------------------------------------------------ *)
(* Batch execution. *)

(* Split a batch into maximal runs of adjacent analyzes (parallel) and
   single control requests (barriers), preserving order. *)
type group =
  | Analyzes of (int * request) list  (* original indices *)
  | Control of int * request
  | Malformed of int * Json.t  (* ready-made error response *)

let group_requests (lines : string list) : group list =
  let parsed =
    List.mapi (fun i line -> (i, parse_request line)) lines
  in
  let flush_run acc run =
    match run with [] -> acc | run -> Analyzes (List.rev run) :: acc
  in
  let rec go acc run = function
    | [] -> List.rev (flush_run acc run)
    | (i, Error (id, msg)) :: rest ->
      go (Malformed (i, plain_error id msg) :: flush_run acc run) [] rest
    | (i, Ok rq) :: rest when rq.rq_op = "analyze" ->
      go acc ((i, rq) :: run) rest
    | (i, Ok rq) :: rest ->
      go (Control (i, rq) :: flush_run acc run) [] rest
  in
  go [] [] parsed

(* How a batch's requests get executed: in this process (fanning out
   through the domain pool) or across the supervised worker pool. *)
type dispatcher = Local | Sharded of Supervise.t

(* Aggregate [stats] across every shard: per-store numeric fields sum;
   [faults] additionally counts the parent's own supervision faults;
   pool-shape fields come from the parent, which owns the pool. *)
let sum_fields =
  [ "entries"; "bytes"; "budget"; "hits"; "misses"; "evictions";
    "bypasses"; "restored"; "journal_entries"; "snapshots"; "faults" ]

let merge_stats (pool : Supervise.t) (id : Json.t)
    (replies : (int * Supervise.outcome) list) : Json.t =
  let sums = Hashtbl.create 16 in
  let persisted = ref false in
  List.iter
    (fun (_, o) ->
      match o with
      | Supervise.Reply line ->
        (match Json.parse line with
        | Error _ -> ()
        | Ok j ->
          List.iter
            (fun f ->
              match Option.bind (Json.member f j) Json.to_num with
              | Some v ->
                Hashtbl.replace sums f
                  ((try Hashtbl.find sums f with Not_found -> 0.0) +. v)
              | None -> ())
            sum_fields;
          (match Json.member "persisted" j with
          | Some (Json.Bool true) -> persisted := true
          | _ -> ()))
      | Supervise.Deadline _ | Supervise.Lost _ -> ())
    replies;
  let get f = try Hashtbl.find sums f with Not_found -> 0.0 in
  let num v = Json.Num v in
  ok_response id
    (List.map
       (fun f ->
         if f = "faults" then
           (f, num (get f +. float_of_int (Fault.count ())))
         else (f, num (get f)))
       sum_fields
    @ [ ("persisted", Json.Bool !persisted);
        ("jobs", num (float_of_int (Supervise.size pool)));
        ("pool_size", Json.Null);
        ("workers", num (float_of_int (Supervise.size pool)));
        ("workers_alive", num (float_of_int (Supervise.alive pool)));
        ("worker_restarts", num (float_of_int (Supervise.restarts pool)));
        ("worker_lost", num (float_of_int (Supervise.lost pool)));
        ("git_rev", Json.Str (Obs.Envmeta.git_rev ())) ])

(* Aggregate [metrics] across the parent and every shard. Counters are
   sums (hits and totals add; min-of-mins, max-of-maxes) and histograms
   are bucket merges — both order-independent. Gauges are NOT summed:
   each shard's level was sampled at a different instant, so the merged
   entry reports the per-shard maximum, labelled with the shard that
   holds it, plus the full per-shard list ([[-1, v] is the parent). A
   client wanting total store bytes across shards reads [stats.bytes],
   which sums a consistent per-store field instead. *)
let merge_metrics (pool : Supervise.t) (id : Json.t)
    (replies : (int * Supervise.outcome) list) : Json.t =
  let num i = Json.Num (float_of_int i) in
  let fnum field j = Option.bind (Json.member field j) Json.to_num in
  let parent = Json.Obj (metrics_payload ()) in
  let sources =
    (-1, parent)
    :: List.filter_map
         (fun (shard, o) ->
           match o with
           | Supervise.Reply l ->
             (match Json.parse l with
             | Ok j -> Some (shard, j)
             | Error _ -> None)
           | Supervise.Deadline _ | Supervise.Lost _ -> None)
         replies
  in
  let counters : (string, float * float * float * float) Hashtbl.t =
    Hashtbl.create 64
  in
  let gauges : (string, (int * float) list) Hashtbl.t = Hashtbl.create 16 in
  let hists : (string, Obs.Hist.snapshot) Hashtbl.t = Hashtbl.create 16 in
  let fold_obj j field f =
    match Json.member field j with
    | Some (Json.Obj entries) -> List.iter f entries
    | _ -> ()
  in
  List.iter
    (fun (shard, j) ->
      fold_obj j "counters" (fun (name, c) ->
          match (fnum "hits" c, fnum "total" c, fnum "min" c, fnum "max" c)
          with
          | Some h, Some t, Some mn, Some mx ->
            let merged =
              match Hashtbl.find_opt counters name with
              | None -> (h, t, mn, mx)
              | Some (h0, t0, mn0, mx0) ->
                (h0 +. h, t0 +. t, Float.min mn0 mn, Float.max mx0 mx)
            in
            Hashtbl.replace counters name merged
          | _ -> ());
      fold_obj j "gauges" (fun (name, g) ->
          match fnum "value" g with
          | Some v ->
            Hashtbl.replace gauges name
              (Option.value ~default:[] (Hashtbl.find_opt gauges name)
              @ [ (shard, v) ])
          | None -> ());
      fold_obj j "hists" (fun (name, h) ->
          match Obs.Hist.of_json h with
          | Some s ->
            let s0 =
              Option.value ~default:Obs.Hist.empty (Hashtbl.find_opt hists name)
            in
            Hashtbl.replace hists name (Obs.Hist.merge s0 s)
          | None -> ()))
    sources;
  let sorted tbl f =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (k, v) -> (k, f v))
  in
  let counters_json =
    Json.Obj
      (sorted counters (fun (h, t, mn, mx) ->
           Json.Obj
             [ ("hits", Json.Num h); ("total", Json.Num t);
               ("min", Json.Num mn); ("max", Json.Num mx) ]))
  in
  let gauges_json =
    Json.Obj
      (sorted gauges (fun per_shard ->
           let best_shard, best =
             List.fold_left
               (fun (bs, bv) (s, v) -> if v > bv then (s, v) else (bs, bv))
               (List.hd per_shard) (List.tl per_shard)
           in
           Json.Obj
             [ ("value", Json.Num best); ("shard", num best_shard);
               ( "per_shard",
                 Json.Arr
                   (List.map
                      (fun (s, v) -> Json.Arr [ num s; Json.Num v ])
                      per_shard) ) ]))
  in
  let hists_json = Json.Obj (sorted hists Obs.Hist.summary_json) in
  let shards_json =
    Json.Arr
      (List.map
         (fun (ss : Supervise.shard_state) ->
           Json.Obj
             [ ("shard", num ss.Supervise.ss_shard);
               ("alive", Json.Bool ss.Supervise.ss_alive);
               ("crashes", num ss.Supervise.ss_crashes);
               ("broken", Json.Bool ss.Supervise.ss_broken);
               ("restarts", num ss.Supervise.ss_restarts) ])
         (Supervise.shard_states pool))
  in
  ok_response id
    [ ("schema", num metrics_schema_version);
      ("counters", counters_json);
      ("gauges", gauges_json);
      ("hists", hists_json);
      (* The slow log lives in the parent: slow detection times the
         whole round trip, and only the parent holds merged trees. *)
      ("slow", Option.value ~default:Json.Null (Json.member "slow" parent));
      ("workers", num (Supervise.size pool));
      ("workers_alive", num (Supervise.alive pool));
      ("worker_restarts", num (Supervise.restarts pool));
      ("worker_lost", num (Supervise.lost pool));
      ("shards", shards_json);
      ("git_rev", Json.Str (Obs.Envmeta.git_rev ())) ]

(* One request's telemetry, gathered while its group executes and
   resolved after the whole batch: the histogram recording and slow
   detection need [Probe.spans], which is only safe to snapshot once no
   fan-out is running. *)
type req_telemetry = {
  rt_id : Json.t;                   (* client id, echoed in slow entries *)
  rt_op : string;
  rt_name : string;
  rt_dur_s : float;
  rt_root : int;                    (* local span root, or -1 *)
  rt_tree : Reqtrace.tree option;   (* pre-merged (sharded graft) *)
}

(* Requests answered since startup; the source of [__seq], the request
   id the daemon assigns at ingress. Only written from the sequential
   batch path. *)
let req_seq = ref 0

(* Strip a worker's ["__spans"] envelope off its reply line, returning
   the client-facing line and the shipped tree — only when the echoed
   sequence number proves the subtree belongs to this request. *)
let strip_spans ~(seq : int) (line : string) :
    string * Reqtrace.tree option =
  match Json.parse line with
  | Ok (Json.Obj fields) when List.mem_assoc "__spans" fields ->
    let env = List.assoc "__spans" fields in
    let rest = List.filter (fun (k, _) -> k <> "__spans") fields in
    let tree =
      match Option.bind (Json.member "seq" env) Json.to_num with
      | Some s when int_of_float s = seq ->
        Option.bind (Json.member "tree" env) Reqtrace.tree_of_json
      | _ -> None
    in
    (Json.to_compact_string (Json.Obj rest), tree)
  | Ok _ | Error _ -> (line, None)

let handle_batch ?(deadline_s : float option) ?(dispatcher = Local)
    (stop : bool ref) (lines : string list) : string list =
  let n = List.length lines in
  let responses = Array.make n "" in
  let put i j = responses.(i) <- Json.to_compact_string j in
  let tracing = Obs.Probe.enabled () && Reqtrace.slow_ms () <> None in
  let seq_base = !req_seq in
  req_seq := !req_seq + n;
  let seq_of i = seq_base + i in
  let telemetry : req_telemetry list ref = ref [] in
  let note ?tree ?(root = -1) ~id ~op ~name dur_s =
    if Obs.Probe.enabled () then
      telemetry :=
        { rt_id = id; rt_op = op; rt_name = name; rt_dur_s = dur_s;
          rt_root = root; rt_tree = tree }
        :: !telemetry
  in
  let name_of (rq : request) =
    Option.value ~default:"" (member_str "name" rq.rq_body)
  in
  let now = Unix.gettimeofday in
  (* Plain forwarding for broadcasts; traced forwarding (the tracing
     envelope rides inside the NDJSON request object) for routed
     requests, whose replies come back through [strip_spans]. *)
  let forward (rq : request) : string = Json.to_compact_string rq.rq_body in
  let forward_traced (rq : request) (seq : int) : string =
    if not tracing then forward rq
    else
      match rq.rq_body with
      | Json.Obj fields ->
        Json.to_compact_string
          (Json.Obj
             (fields
             @ [ ("__trace", Json.Bool true);
                 ("__seq", Json.Num (float_of_int seq)) ]))
      | _ -> forward rq
  in
  let unstrip slot line =
    if tracing then strip_spans ~seq:(seq_of slot) line else (line, None)
  in
  List.iter
    (fun group ->
      match group with
      | Malformed (i, resp) ->
        put i resp;
        note ~id:(Option.value ~default:Json.Null (Json.member "id" resp))
          ~op:"malformed" ~name:"" 0.0
      | _ when !stop ->
        let reject i (rq : request) =
          put i (plain_error rq.rq_id "server is shutting down");
          note ~id:rq.rq_id ~op:rq.rq_op ~name:(name_of rq) 0.0
        in
        (match group with
        | Analyzes rqs -> List.iter (fun (i, rq) -> reject i rq) rqs
        | Control (i, rq) -> reject i rq
        | Malformed _ -> ())
      | Control (i, rq) -> (
        let t0 = now () in
        match dispatcher with
        | Local ->
          let resp, root =
            Reqtrace.with_root (fun () -> handle_control stop rq)
          in
          put i resp;
          note ~root ~id:rq.rq_id ~op:rq.rq_op ~name:(name_of rq)
            (now () -. t0)
        | Sharded pool ->
          let finish () =
            note ~id:rq.rq_id ~op:rq.rq_op ~name:(name_of rq) (now () -. t0)
          in
          (match rq.rq_op with
          | "shutdown" ->
            stop := true;
            put i (ok_response rq.rq_id [ ("stopping", Json.Bool true) ]);
            finish ()
          | "resize" ->
            put i
              (plain_error rq.rq_id
                 "resize is unavailable with --workers; restart the \
                  daemon to change the worker count");
            finish ()
          | "stats" ->
            put i
              (merge_stats pool rq.rq_id
                 (Supervise.broadcast pool (forward rq)));
            finish ()
          | "metrics" ->
            put i
              (merge_metrics pool rq.rq_id
                 (Supervise.broadcast pool (forward rq)));
            finish ()
          | "invalidate" when member_str "name" rq.rq_body = None ->
            ignore (Supervise.broadcast pool (forward rq));
            put i (ok_response rq.rq_id [ ("cleared", Json.Bool true) ]);
            finish ()
          | "scores" | "invalidate" -> (
            match member_str "name" rq.rq_body with
            | None ->
              put i
                (plain_error rq.rq_id (rq.rq_op ^ " needs a \"name\" field"));
              finish ()
            | Some name ->
              let shard = Supervise.shard_of pool name in
              let graft wtree =
                if tracing then
                  Some
                    (Reqtrace.graft ~shard
                       ~roundtrip_ns:
                         (Int64.of_float ((now () -. t0) *. 1e9))
                       wtree)
                else None
              in
              (match
                 Supervise.request pool ~key:name (forward_traced rq (seq_of i))
               with
              | Supervise.Reply l ->
                let l, wtree = unstrip i l in
                responses.(i) <- l;
                note ?tree:(graft wtree) ~id:rq.rq_id ~op:rq.rq_op ~name
                  (now () -. t0)
              | Supervise.Deadline s ->
                put i (deadline_response rq.rq_id ~name s);
                note ?tree:(graft None) ~id:rq.rq_id ~op:rq.rq_op ~name
                  (now () -. t0)
              | Supervise.Lost d ->
                put i (worker_lost_response rq.rq_id ~name d);
                note ?tree:(graft None) ~id:rq.rq_id ~op:rq.rq_op ~name
                  (now () -. t0)))
          | op ->
            put i (plain_error rq.rq_id (Printf.sprintf "unknown op %S" op));
            finish ()))
      | Analyzes rqs -> (
        match dispatcher with
        | Local ->
          let outcomes =
            Parallel.map
              (fun (_, rq) ->
                let t0 = now () in
                let outcome, root =
                  Reqtrace.with_root (fun () -> run_analyze ?deadline_s rq)
                in
                (outcome, root, now () -. t0))
              rqs
          in
          List.iter2
            (fun (i, rq) (outcome, root, dur) ->
              note ~root ~id:rq.rq_id ~op:"analyze" ~name:(name_of rq) dur;
              match outcome with
              | Ok a ->
                Hashtbl.replace last_scores a.Incr.an_name a.Incr.an_scores;
                put i (analysis_response rq.rq_id a)
              | Error resp -> put i resp)
            rqs outcomes
        | Sharded pool ->
          let items =
            List.filter_map
              (fun (i, rq) ->
                match member_str "name" rq.rq_body with
                | None ->
                  put i
                    (plain_error rq.rq_id "analyze needs a \"name\" field");
                  note ~id:rq.rq_id ~op:"analyze" ~name:"" 0.0;
                  None
                | Some name ->
                  Some (i, name, forward_traced rq (seq_of i), rq))
              rqs
          in
          let by_slot = List.map (fun (i, _, _, rq) -> (i, rq)) items in
          let outcomes =
            Supervise.request_many_timed pool
              (List.map (fun (i, key, line, _) -> (i, key, line)) items)
          in
          List.iter
            (fun (slot, outcome, dur) ->
              let rq = List.assoc slot by_slot in
              let name =
                Option.value ~default:"?" (member_str "name" rq.rq_body)
              in
              let shard = Supervise.shard_of pool name in
              let graft wtree =
                if tracing then
                  Some
                    (Reqtrace.graft ~shard
                       ~roundtrip_ns:(Int64.of_float (dur *. 1e9))
                       wtree)
                else None
              in
              match outcome with
              | Supervise.Reply l ->
                let l, wtree = unstrip slot l in
                responses.(slot) <- l;
                note ?tree:(graft wtree) ~id:rq.rq_id ~op:"analyze" ~name dur
              | Supervise.Deadline s ->
                put slot (deadline_response rq.rq_id ~name s);
                note ?tree:(graft None) ~id:rq.rq_id ~op:"analyze" ~name dur
              | Supervise.Lost d ->
                put slot (worker_lost_response rq.rq_id ~name d);
                note ?tree:(graft None) ~id:rq.rq_id ~op:"analyze" ~name dur)
            outcomes))
    (group_requests lines);
  (* Resolve telemetry after the last fan-out: record every request's
     latency, then slow-log anything over threshold with its merged
     tree. One span dump serves the whole batch; dropping the spans
     afterwards is what keeps a long-running daemon's memory bounded. *)
  if Obs.Probe.enabled () then begin
    let spans = lazy (Obs.Probe.spans ()) in
    let threshold = Reqtrace.slow_ms () in
    List.iter
      (fun rt ->
        Obs.Hist.observe "serve.request.ns"
          (int_of_float (rt.rt_dur_s *. 1e9));
        let ms = rt.rt_dur_s *. 1000.0 in
        match threshold with
        | Some t when ms >= t ->
          let tree =
            match rt.rt_tree with
            | Some _ as tr -> tr
            | None when rt.rt_root >= 0 ->
              Reqtrace.tree_of_root rt.rt_root (Lazy.force spans)
            | None -> None
          in
          Reqtrace.note_slow ~id:rt.rt_id ~op:rt.rt_op ~name:rt.rt_name ~ms
            tree
        | _ -> ())
      (List.rev !telemetry);
    Obs.Probe.reset_spans ()
  end;
  Array.to_list responses

(* ------------------------------------------------------------------ *)
(* The single-client daemon loop (tests; embedded use). No signal
   handling and no process exit: returns on EOF or [shutdown]. *)

let serve (ic : in_channel) (oc : out_channel) : unit =
  Incr.install ();
  Fun.protect
    ~finally:(fun () -> Incr.uninstall ())
    (fun () ->
      let t = Transport.of_channels ic oc in
      let stop = ref false in
      let rec loop () =
        if not !stop then
          match t.Transport.read_batch () with
          | None -> ()
          | Some lines ->
            t.Transport.write_lines (handle_batch stop lines);
            (* Bound the daemon's memory: the fault log only ever holds
               the current batch's faults. Store gauges are re-published
               right after — a [metrics] call in the next batch must
               never see the cache-size gauge missing because something
               reset the probe tables. *)
            Fault.reset ();
            Incr.republish_gauges ();
            loop ()
      in
      loop ())

(* ------------------------------------------------------------------ *)
(* The full daemon: [bin serve]. *)

type config = {
  c_socket : string option;   (* Unix-domain socket path; None = stdio *)
  c_store : string option;    (* durable store directory *)
  c_workers : int;            (* 0 = in-process *)
  c_deadline_s : float option;
  c_queue_limit : int;        (* pending-request admission limit *)
  c_budget_bytes : int;
  c_jobs : int;
  c_slow_ms : float option;   (* slow-request log threshold *)
  c_slow_log : string option; (* NDJSON sink for slow entries *)
}

let default_config =
  { c_socket = None; c_store = None; c_workers = 0; c_deadline_s = None;
    c_queue_limit = 256; c_budget_bytes = Incr.default_budget;
    c_jobs = Parallel.default_jobs (); c_slow_ms = None; c_slow_log = None }

(* Degradation is cumulative across the daemon's whole life even though
   the fault log resets per batch: any degraded batch turns the
   eventual exit code to 3. *)
let faults_total = ref 0

let note_batch_faults () : unit =
  let c = Fault.count () in
  if c > 0 then begin
    faults_total := !faults_total + c;
    (* The summary is per-batch (the log resets); stream it to stderr
       as it happens so the drain report is complete. *)
    prerr_string (Fault.summary ());
    flush stderr
  end;
  Fault.reset ();
  Incr.republish_gauges ()

let finalize_and_exit ~(dispatcher : dispatcher) () : 'a =
  (* Stop accepting; workers see EOF, take their final snapshot and
     exit — the blocking stop is the journal-flush barrier. *)
  (match dispatcher with
  | Sharded pool -> Supervise.stop pool
  | Local -> ());
  Incr.close_store ();
  note_batch_faults ();
  if !faults_total > 0 then
    Printf.eprintf "serve: drained with %d recorded fault(s)\n%!"
      !faults_total;
  exit (if !faults_total > 0 then Fault.degraded_exit_code else 0)

let shed_responses ~(queue_limit : int) (lines : string list) :
    string list =
  List.map
    (fun line ->
      Obs.Probe.count "serve.shed";
      Json.to_compact_string
        (overloaded_response (line_id line) ~queue_limit))
    lines

(* Channel carrier (stdin/stdout): one client, batches processed as
   they arrive. A drain signal landing while idle (blocked in read)
   finalizes directly from the handler; landing mid-batch it defers to
   the post-batch check, honouring "finish the in-flight batch". *)
let serve_channels ~(dispatcher : dispatcher) ?(deadline_s : float option)
    ~(queue_limit : int) (ic : in_channel) (oc : out_channel) : 'a =
  let t = Transport.of_channels ic oc in
  let drain = ref false in
  let processing = ref false in
  let on_signal (_ : int) =
    if !processing then drain := true
    else finalize_and_exit ~dispatcher ()
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let stop = ref false in
  let rec loop () =
    if !stop || !drain then finalize_and_exit ~dispatcher ()
    else
      match t.Transport.read_batch () with
      | None -> finalize_and_exit ~dispatcher ()
      | Some lines ->
        let n = List.length lines in
        Obs.Probe.set_gauge "serve.queue_depth" (float_of_int n);
        let responses =
          if n > queue_limit then shed_responses ~queue_limit lines
          else begin
            processing := true;
            let r = handle_batch ?deadline_s ~dispatcher stop lines in
            processing := false;
            r
          end
        in
        t.Transport.write_lines responses;
        Obs.Probe.set_gauge "serve.queue_depth" 0.0;
        note_batch_faults ();
        loop ()
  in
  loop ()

(* Socket carrier: a select loop multiplexing the listener and every
   client connection. Completed batches queue for execution (bounded by
   [queue_limit] *requests*, not batches; past it a whole batch is shed
   with per-request [overloaded] errors); one batch executes per loop
   turn, so accept/read latency stays bounded by one batch. *)
let serve_socket ~(dispatcher : dispatcher) ?(deadline_s : float option)
    ~(queue_limit : int) (path : string) : 'a =
  let listener = Transport.listen_unix path in
  let drain = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> drain := true));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> drain := true));
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let conns : (Unix.file_descr, Transport.Conn.conn) Hashtbl.t =
    Hashtbl.create 16
  in
  let pending : (Transport.Conn.conn * string list) Queue.t =
    Queue.create ()
  in
  let queued = ref 0 in
  let stop = ref false in
  let publish_depth () =
    Obs.Probe.set_gauge "serve.queue_depth" (float_of_int !queued)
  in
  let admit conn lines =
    let k = List.length lines in
    if !queued + k > queue_limit then
      Transport.Conn.write_lines conn (shed_responses ~queue_limit lines)
    else begin
      Queue.add (conn, lines) pending;
      queued := !queued + k;
      publish_depth ()
    end
  in
  let drain_and_exit () =
    (* Admitted-but-unstarted batches get typed errors, not silence. *)
    Queue.iter
      (fun (conn, lines) ->
        Transport.Conn.write_lines conn
          (List.map
             (fun line ->
               Json.to_compact_string
                 (plain_error (line_id line) "server is shutting down"))
             lines))
      pending;
    Hashtbl.iter (fun _ c -> Transport.Conn.close c) conns;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    (try Sys.remove path with Sys_error _ -> ());
    finalize_and_exit ~dispatcher ()
  in
  let rec loop () =
    if !drain || !stop then drain_and_exit ();
    let fds =
      listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    let timeout = if Queue.is_empty pending then -1.0 else 0.0 in
    (match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = listener then (
            match Unix.accept listener with
            | cfd, _ -> Hashtbl.replace conns cfd (Transport.Conn.create cfd)
            | exception Unix.Unix_error _ -> ())
          else
            match Hashtbl.find_opt conns fd with
            | None -> ()
            | Some conn ->
              List.iter (admit conn) (Transport.Conn.feed conn);
              if Transport.Conn.closed conn then begin
                Hashtbl.remove conns fd;
                Transport.Conn.close conn
              end)
        readable);
    if (not (Queue.is_empty pending)) && not !drain then begin
      let conn, lines = Queue.pop pending in
      queued := !queued - List.length lines;
      publish_depth ();
      let responses = handle_batch ?deadline_s ~dispatcher stop lines in
      Transport.Conn.write_lines conn responses;
      note_batch_faults ()
    end;
    loop ()
  in
  loop ()

let run (config : config) : 'a =
  (* The daemon IS the telemetry plane: probes record from the first
     request. Span memory stays bounded through the per-batch
     [reset_spans] in [handle_batch]; counters, gauges and histograms
     accumulate for the daemon's life and surface through [metrics].
     Enabled before the worker forks, so shards inherit it. *)
  Obs.Probe.set_enabled true;
  Reqtrace.set_slow_ms config.c_slow_ms;
  Reqtrace.set_slow_sink config.c_slow_log;
  Parallel.set_jobs config.c_jobs;
  Incr.set_budget config.c_budget_bytes;
  let dispatcher =
    if config.c_workers > 0 then begin
      (* Workers each attach one shard directory; the parent only
         routes, so it opens no store and must not spawn domains before
         the forks. The lazy [Parallel] pool guarantees this when [run]
         is the process entry point: the sharded paths never call
         [Parallel.map]. The constraint is unforgiving — OCaml 5 refuses
         [fork] in a process that has EVER spawned a domain, even after
         they are joined — so a hosting process that already fanned out
         cannot start a sharded server; [Supervise.start] will raise,
         loudly, rather than limp. *)
      (match config.c_store with
      | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
      | _ -> ());
      let pool =
        Supervise.start ~workers:config.c_workers
          ?deadline_s:(Option.map (fun d -> d +. 1.0) config.c_deadline_s)
          ~init:(fun ~shard ->
            Incr.set_budget config.c_budget_bytes;
            (match config.c_store with
            | None -> ()
            | Some dir ->
              ignore
                (Incr.open_store
                   (Filename.concat dir (Printf.sprintf "shard-%d" shard))));
            Incr.install ())
          ~finalize:(fun ~shard:_ -> Incr.close_store ())
          ~handler:(handle_one_line ?deadline_s:config.c_deadline_s)
          ()
      in
      Sharded pool
    end
    else begin
      (match config.c_store with
      | None -> ()
      | Some dir ->
        let r = Incr.open_store dir in
        if r.Incr.rs_truncated then
          prerr_endline
            "serve: store tail truncated on load (torn or corrupt entry)";
        Printf.eprintf "serve: restored %d entr%s from %s\n%!"
          r.Incr.rs_restored
          (if r.Incr.rs_restored = 1 then "y" else "ies")
          dir);
      Incr.install ();
      Local
    end
  in
  match config.c_socket with
  | Some path ->
    serve_socket ~dispatcher ?deadline_s:config.c_deadline_s
      ~queue_limit:config.c_queue_limit path
  | None ->
    serve_channels ~dispatcher ?deadline_s:config.c_deadline_s
      ~queue_limit:config.c_queue_limit stdin stdout

(* ------------------------------------------------------------------ *)
(* A scripting client for the socket carrier: forward stdin's batches
   to the daemon, print one response line per request, exit 0. Exists
   so shell tests and CI need no netcat. Requests are counted as they
   are forwarded; responses are read after stdin closes (fine for the
   small scripted batches this is for — not a streaming proxy). *)

let client ~(socket : string) : 'a =
  let fd = Transport.connect_unix socket in
  let sock_ic = Unix.in_channel_of_descr fd in
  let sock_oc = Unix.out_channel_of_descr fd in
  let expected = ref 0 in
  (try
     while true do
       let line = input_line stdin in
       output_string sock_oc line;
       output_char sock_oc '\n';
       if line <> "" then incr expected
     done
   with End_of_file -> ());
  (* Close the final batch whether or not the input did. *)
  output_char sock_oc '\n';
  flush sock_oc;
  let rec read_replies n =
    if n > 0 then
      match input_line sock_ic with
      | exception End_of_file ->
        prerr_endline "serve client: daemon closed the connection early";
        exit 1
      | line ->
        print_endline line;
        read_replies (n - 1)
  in
  read_replies !expected;
  exit 0
