(* Type checker and name resolver for the C subset.

   Produces side tables keyed by AST node ids:
   - the (decayed) type of every expression,
   - the resolution of every identifier (local slot, global, function,
     builtin, enum constant),
   - the local-slot index of every block-scope declaration.

   Locals are flattened per function: every declaration (params included,
   shadowing respected) gets a distinct slot, so downstream passes never
   deal with scopes again. Block-scope statics are lifted to mangled
   globals. *)

exception Error of string * Token.pos

let errorf pos fmt = Printf.ksprintf (fun s -> raise (Error (s, pos))) fmt

type resolution =
  | Rlocal of int          (* slot in the enclosing function's locals *)
  | Rglobal of string      (* global variable (possibly lifted static) *)
  | Rfun of string         (* user-defined or prototyped function *)
  | Rbuiltin of string     (* interpreter builtin *)
  | Renum of int           (* enum constant value *)

type local_info = { l_name : string; l_ty : Ctypes.ty; l_param : bool }

type fun_info = {
  fi_def : Ast.fundef;
  fi_ty : Ctypes.fun_ty;
  fi_locals : local_info array;  (* params first, then block locals *)
}

type t = {
  tunit : Ast.tunit;
  types : (Ast.node_id, Ctypes.ty) Hashtbl.t;
  resolutions : (Ast.node_id, resolution) Hashtbl.t;
  decl_slots : (Ast.node_id, int) Hashtbl.t;
  funs : (string, fun_info) Hashtbl.t;
  fun_order : string list;                  (* definition order *)
  globals : (string, Ast.decl) Hashtbl.t;
  global_order : string list;               (* includes lifted statics *)
  enum_values : (string, int) Hashtbl.t;
}

(* Builtin functions provided by the interpreter runtime. *)
let builtins : (string * Ctypes.fun_ty) list =
  let open Ctypes in
  let pchar = Tptr Tchar and pvoid = Tptr Tvoid in
  let f ret params = { ret; params; varargs = false } in
  [ ("printf", { ret = Tint; params = [ pchar ]; varargs = true });
    ("sprintf", { ret = Tint; params = [ pchar; pchar ]; varargs = true });
    ("putchar", f Tint [ Tint ]);
    ("puts", f Tint [ pchar ]);
    ("getchar", f Tint []);
    ("malloc", f pvoid [ Tint ]);
    ("calloc", f pvoid [ Tint; Tint ]);
    ("realloc", f pvoid [ pvoid; Tint ]);
    ("free", f Tvoid [ pvoid ]);
    ("strlen", f Tint [ pchar ]);
    ("strcmp", f Tint [ pchar; pchar ]);
    ("strncmp", f Tint [ pchar; pchar; Tint ]);
    ("strcpy", f pchar [ pchar; pchar ]);
    ("strncpy", f pchar [ pchar; pchar; Tint ]);
    ("strcat", f pchar [ pchar; pchar ]);
    ("strchr", f pchar [ pchar; Tint ]);
    ("memset", f pvoid [ pvoid; Tint; Tint ]);
    ("memcpy", f pvoid [ pvoid; pvoid; Tint ]);
    ("atoi", f Tint [ pchar ]);
    ("abs", f Tint [ Tint ]);
    ("exit", f Tvoid [ Tint ]);
    ("abort", f Tvoid []);
    ("assert", f Tvoid [ Tint ]);
    ("rand", f Tint []);
    ("srand", f Tvoid [ Tint ]);
    ("clock", f Tint []);
    ("sqrt", f Tdouble [ Tdouble ]);
    ("fabs", f Tdouble [ Tdouble ]);
    ("sin", f Tdouble [ Tdouble ]);
    ("cos", f Tdouble [ Tdouble ]);
    ("exp", f Tdouble [ Tdouble ]);
    ("log", f Tdouble [ Tdouble ]);
    ("pow", f Tdouble [ Tdouble; Tdouble ]);
    ("floor", f Tdouble [ Tdouble ]);
    ("ceil", f Tdouble [ Tdouble ]) ]

let is_builtin name = List.mem_assoc name builtins

(* Names whose call marks the enclosing conditional arm as an error path
   (paper: "Errors (calling abort or exit) are unlikely"). *)
let error_call_names = [ "exit"; "abort"; "assert" ]

type ctx = {
  result : t;
  reg : Ctypes.registry;
  (* Scope stack for the function being checked: innermost first. *)
  mutable scopes : (string, resolution) Hashtbl.t list;
  mutable locals : local_info list; (* reverse order *)
  mutable n_locals : int;
  mutable current_fun : Ast.fundef option;
  mutable lifted : (string * Ast.decl) list; (* lifted statics, reverse *)
  mutable static_counter : int;
}

let push_scope ctx = ctx.scopes <- Hashtbl.create 8 :: ctx.scopes
let pop_scope ctx =
  match ctx.scopes with
  | _ :: rest -> ctx.scopes <- rest
  | [] -> invalid_arg "pop_scope"

let lookup ctx name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some r -> Some r
      | None -> go rest)
  in
  go ctx.scopes

let bind ctx name r =
  match ctx.scopes with
  | scope :: _ -> Hashtbl.replace scope name r
  | [] -> invalid_arg "bind: no scope"

let add_local ctx name ty ~param =
  let slot = ctx.n_locals in
  ctx.locals <- { l_name = name; l_ty = ty; l_param = param } :: ctx.locals;
  ctx.n_locals <- slot + 1;
  bind ctx name (Rlocal slot);
  slot

let set_type ctx id ty = Hashtbl.replace ctx.result.types id ty
let set_resolution ctx id r = Hashtbl.replace ctx.result.resolutions id r

(* ------------------------------------------------------------------ *)
(* Type compatibility (deliberately lenient, like a pre-ANSI compiler): we
   accept any arithmetic mix, any pointer/pointer mix, and pointer/integer
   mixes; we reject struct/scalar confusion and calls to non-functions. *)

let compatible a b =
  let open Ctypes in
  let a = decay a and b = decay b in
  match (a, b) with
  | x, y when equal x y -> true
  | x, y when is_arith x && is_arith y -> true
  | Tptr _, Tptr _ -> true
  | Tptr _, (Tint | Tchar) | (Tint | Tchar), Tptr _ -> true
  | Tvoid, _ | _, Tvoid -> false
  | _ -> false

let check_assignable pos target value =
  if not (compatible target value) then
    errorf pos "cannot assign %s to %s" (Ctypes.to_string value)
      (Ctypes.to_string target)

(* The usual arithmetic conversions, collapsed to our three arith types. *)
let usual_arith pos a b =
  let open Ctypes in
  match (a, b) with
  | Tdouble, _ | _, Tdouble -> Tdouble
  | (Tint | Tchar), (Tint | Tchar) -> Tint
  | _ -> errorf pos "expected arithmetic operands, got %s and %s"
           (to_string a) (to_string b)

(* ------------------------------------------------------------------ *)
(* Expressions. Returns the decayed value type, recording it in the table.
   [check_lvalue] validates that an expression designates an object. *)

let is_lvalue (e : Ast.expr) =
  match e.enode with
  | Ast.Ident _ | Ast.Unop (Ast.Uderef, _) | Ast.Index _ | Ast.Field _
  | Ast.Arrow _ ->
    true
  | _ -> false

let rec check_expr ctx (e : Ast.expr) : Ctypes.ty =
  let ty = infer_expr ctx e in
  set_type ctx e.eid ty;
  ty

and infer_expr ctx (e : Ast.expr) : Ctypes.ty =
  let open Ctypes in
  let pos = e.epos in
  match e.enode with
  | Ast.IntLit _ -> Tint
  | Ast.CharLit _ -> Tint (* character constants have type int in C *)
  | Ast.FloatLit _ -> Tdouble
  | Ast.StringLit _ -> Tptr Tchar
  | Ast.Ident name -> begin
    match lookup ctx name with
    | Some (Rlocal slot as r) ->
      set_resolution ctx e.eid r;
      let info = List.nth ctx.locals (ctx.n_locals - 1 - slot) in
      decay info.l_ty
    | Some (Rglobal gname as r) ->
      set_resolution ctx e.eid r;
      let d = Hashtbl.find ctx.result.globals gname in
      decay d.Ast.d_ty
    | Some (Rfun fname as r) ->
      set_resolution ctx e.eid r;
      let fi = Hashtbl.find ctx.result.funs fname in
      Tptr (Tfun fi.fi_ty)
    | Some (Renum v as r) ->
      set_resolution ctx e.eid r;
      ignore v;
      Tint
    | Some (Rbuiltin _ as r) ->
      set_resolution ctx e.eid r;
      let fty = List.assoc name builtins in
      Tptr (Tfun fty)
    | None ->
      if is_builtin name then begin
        set_resolution ctx e.eid (Rbuiltin name);
        Tptr (Tfun (List.assoc name builtins))
      end
      else errorf pos "undeclared identifier %s" name
  end
  | Ast.Unop (op, a) -> begin
    let ta = check_expr ctx a in
    match op with
    | Ast.Uneg | Ast.Uplus ->
      if not (is_arith ta) then errorf pos "unary +/- needs arithmetic";
      if equal ta Tchar then Tint else ta
    | Ast.Unot ->
      if not (is_scalar ta) then errorf pos "! needs a scalar";
      Tint
    | Ast.Ubnot ->
      if not (is_integer ta) then errorf pos "~ needs an integer";
      Tint
    | Ast.Uderef -> begin
      match ta with
      | Tptr (Tfun _ as f) -> Tptr f (* *f on a function pointer is a no-op *)
      | Tptr t when equal t Tvoid -> errorf pos "cannot dereference void*"
      | Tptr t -> decay t
      | _ -> errorf pos "cannot dereference %s" (to_string ta)
    end
    | Ast.Uaddr -> begin
      match a.enode with
      | Ast.Ident _ when (match ta with Tptr (Tfun _) -> true | _ -> false)
        ->
        ta (* &f where f is a function: already a function pointer *)
      | _ ->
        if not (is_lvalue a) then errorf pos "& needs an lvalue";
        (* The operand type before decay: recompute for arrays. *)
        Tptr (undecayed_ty ctx a)
    end
  end
  | Ast.Binop (op, a, b) -> begin
    let ta = check_expr ctx a and tb = check_expr ctx b in
    match op with
    | Ast.Badd -> begin
      match (ta, tb) with
      | Tptr t, i when is_integer i -> ignore t; ta
      | i, Tptr _ when is_integer i -> tb
      | _ -> usual_arith pos ta tb
    end
    | Ast.Bsub -> begin
      match (ta, tb) with
      | Tptr _, i when is_integer i -> ta
      | Tptr _, Tptr _ -> Tint
      | _ -> usual_arith pos ta tb
    end
    | Ast.Bmul | Ast.Bdiv -> usual_arith pos ta tb
    | Ast.Bmod | Ast.Bshl | Ast.Bshr | Ast.Bband | Ast.Bbor | Ast.Bbxor ->
      if not (is_integer ta && is_integer tb) then
        errorf pos "integer operator applied to %s and %s" (to_string ta)
          (to_string tb);
      Tint
    | Ast.Blt | Ast.Bgt | Ast.Ble | Ast.Bge | Ast.Beq | Ast.Bne ->
      if not (compatible ta tb) then
        errorf pos "comparison of %s and %s" (to_string ta) (to_string tb);
      Tint
    | Ast.Bland | Ast.Blor ->
      if not (is_scalar ta && is_scalar tb) then
        errorf pos "&&/|| need scalar operands";
      Tint
  end
  | Ast.Assign (op, lhs, rhs) ->
    if not (is_lvalue lhs) then errorf pos "assignment needs an lvalue";
    let tl = check_expr ctx lhs in
    let tr = check_expr ctx rhs in
    (match Ast.binop_of_assign op with
    | None -> check_assignable pos tl tr
    | Some bop -> begin
      (* e.g. p += n is pointer arithmetic; others are arithmetic/integer *)
      match (bop, tl) with
      | (Ast.Badd | Ast.Bsub), Tptr _ ->
        if not (is_integer tr) then errorf pos "pointer += needs an integer"
      | _ ->
        if not (is_arith tl && is_arith tr) then
          errorf pos "compound assignment needs arithmetic operands"
    end);
    tl
  | Ast.Cond (c, a, b) ->
    let tc = check_expr ctx c in
    if not (is_scalar tc) then errorf pos "?: condition must be scalar";
    let ta = check_expr ctx a and tb = check_expr ctx b in
    if is_arith ta && is_arith tb then usual_arith pos ta tb
    else if compatible ta tb then
      (match (ta, tb) with
      | Tptr Tvoid, t | t, Tptr Tvoid -> t
      | _ -> ta)
    else errorf pos "?: branches disagree: %s vs %s" (to_string ta)
           (to_string tb)
  | Ast.Call (fn, args) -> begin
    let tf = check_expr ctx fn in
    let fty =
      match tf with
      | Tptr (Tfun f) | Tfun f -> f
      | _ -> errorf pos "calling a non-function (%s)" (to_string tf)
    in
    let nparams = List.length fty.params in
    let nargs = List.length args in
    if nargs < nparams || ((not fty.varargs) && nargs > nparams) then
      errorf pos "wrong number of arguments (%d for %d)" nargs nparams;
    List.iteri
      (fun i arg ->
        let targ = check_expr ctx arg in
        if i < nparams then begin
          let tparam = List.nth fty.params i in
          if not (compatible tparam targ) then
            errorf arg.Ast.epos "argument %d: cannot pass %s as %s" (i + 1)
              (to_string targ) (to_string tparam)
        end)
      args;
    decay fty.ret
  end
  | Ast.Cast (ty, a) ->
    let ta = check_expr ctx a in
    if not (equal ty Tvoid) && not (is_scalar (decay ty)) then
      errorf pos "cast to non-scalar type %s" (to_string ty);
    if (not (equal ty Tvoid)) && not (compatible (decay ty) ta) then
      errorf pos "cannot cast %s to %s" (to_string ta) (to_string ty);
    decay ty
  | Ast.Index (a, i) -> begin
    let ta = check_expr ctx a in
    let ti = check_expr ctx i in
    match (ta, ti) with
    | Tptr t, idx when is_integer idx ->
      if equal t Tvoid then errorf pos "cannot index void*";
      decay t
    | idx, Tptr t when is_integer idx -> decay t (* i[a] *)
    | _ -> errorf pos "cannot index %s with %s" (to_string ta) (to_string ti)
  end
  | Ast.Field (a, fname) -> begin
    let ta = undecayed_ty_checked ctx a in
    match ta with
    | Tstruct si ->
      let fld =
        try Ctypes.find_field ctx.reg si fname
        with Ctypes.Type_error m -> errorf pos "%s" m
      in
      decay fld.fld_ty
    | _ -> errorf pos ".%s on non-struct %s" fname (to_string ta)
  end
  | Ast.Arrow (a, fname) -> begin
    let ta = check_expr ctx a in
    match ta with
    | Tptr (Tstruct si) ->
      let fld =
        try Ctypes.find_field ctx.reg si fname
        with Ctypes.Type_error m -> errorf pos "%s" m
      in
      decay fld.fld_ty
    | _ -> errorf pos "->%s on %s" fname (to_string ta)
  end
  | Ast.SizeofT ty ->
    (try ignore (Ctypes.size_of ctx.reg ty)
     with Ctypes.Type_error m -> errorf pos "%s" m);
    Tint
  | Ast.SizeofE a ->
    ignore (undecayed_ty_checked ctx a);
    Tint
  | Ast.PreIncr a | Ast.PreDecr a | Ast.PostIncr a | Ast.PostDecr a ->
    if not (is_lvalue a) then errorf pos "++/-- need an lvalue";
    let ta = check_expr ctx a in
    if not (is_arith ta || is_pointer ta) then
      errorf pos "++/-- on %s" (to_string ta);
    ta
  | Ast.Comma (a, b) ->
    ignore (check_expr ctx a);
    check_expr ctx b

(* The type of [e] before array decay (for & and sizeof and field access on
   struct values). Also records types for sub-expressions. *)
and undecayed_ty ctx (e : Ast.expr) : Ctypes.ty =
  match e.enode with
  | Ast.Ident name -> begin
    match lookup ctx name with
    | Some (Rlocal slot as r) ->
      set_resolution ctx e.eid r;
      (List.nth ctx.locals (ctx.n_locals - 1 - slot)).l_ty
    | Some (Rglobal g as r) ->
      set_resolution ctx e.eid r;
      (Hashtbl.find ctx.result.globals g).Ast.d_ty
    | _ -> check_expr ctx e
  end
  | Ast.Index (a, i) -> begin
    ignore (check_expr ctx i);
    match undecayed_ty_checked ctx a with
    | Ctypes.Tarray (t, _) -> t
    | Ctypes.Tptr t -> t
    | t -> errorf e.epos "cannot index %s" (Ctypes.to_string t)
  end
  | Ast.Unop (Ast.Uderef, a) -> begin
    match check_expr ctx a with
    | Ctypes.Tptr t -> t
    | t -> errorf e.epos "cannot dereference %s" (Ctypes.to_string t)
  end
  | Ast.Field (a, fname) -> begin
    match undecayed_ty_checked ctx a with
    | Ctypes.Tstruct si -> (Ctypes.find_field ctx.reg si fname).fld_ty
    | t -> errorf e.epos ".%s on %s" fname (Ctypes.to_string t)
  end
  | Ast.Arrow (a, fname) -> begin
    match check_expr ctx a with
    | Ctypes.Tptr (Ctypes.Tstruct si) ->
      (Ctypes.find_field ctx.reg si fname).fld_ty
    | t -> errorf e.epos "->%s on %s" fname (Ctypes.to_string t)
  end
  | _ -> check_expr ctx e

and undecayed_ty_checked ctx e =
  let t = undecayed_ty ctx e in
  (* make sure the expression's value type is also recorded *)
  if not (Hashtbl.mem ctx.result.types e.eid) then
    set_type ctx e.eid (Ctypes.decay t);
  t

(* ------------------------------------------------------------------ *)
(* Initializers *)

let rec check_init ctx pos (ty : Ctypes.ty) (init : Ast.init) =
  let open Ctypes in
  match (ty, init) with
  | _, Ast.Iexpr e when is_scalar (decay ty) ->
    let te = check_expr ctx e in
    check_assignable pos (decay ty) te
  | Tarray (Tchar, _), Ast.Iexpr e -> begin
    match e.enode with
    | Ast.StringLit _ -> ignore (check_expr ctx e)
    | _ -> errorf pos "char array initializer must be a string literal"
  end
  | Tarray (t, n), Ast.Ilist items ->
    (match n with
    | Some n when List.length items > n ->
      errorf pos "too many initializers (%d for %d)" (List.length items) n
    | _ -> ());
    List.iter (fun i -> check_init ctx pos t i) items
  | Tstruct si, Ast.Ilist items ->
    let flds = Ctypes.fields ctx.reg si in
    if List.length items > List.length flds then
      errorf pos "too many struct initializers";
    List.iteri
      (fun i item ->
        let fld = List.nth flds i in
        check_init ctx pos fld.fld_ty item)
      items
  | _, Ast.Ilist [ item ] -> check_init ctx pos ty item
  | _ -> errorf pos "invalid initializer for %s" (to_string ty)

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec check_stmt ctx (s : Ast.stmt) =
  match s.snode with
  | Ast.Sexpr e -> ignore (check_expr ctx e)
  | Ast.Sblock items ->
    push_scope ctx;
    List.iter
      (function
        | Ast.Bstmt s -> check_stmt ctx s
        | Ast.Bdecl d -> check_local_decl ctx d)
      items;
    pop_scope ctx
  | Ast.Sif (c, t, f) ->
    check_scalar ctx c;
    check_stmt ctx t;
    Option.iter (check_stmt ctx) f
  | Ast.Swhile (c, b) ->
    check_scalar ctx c;
    check_stmt ctx b
  | Ast.Sdo (b, c) ->
    check_stmt ctx b;
    check_scalar ctx c
  | Ast.Sfor (init, cond, step, b) ->
    push_scope ctx;
    (match init with
    | Ast.Fnone -> ()
    | Ast.Fexpr e -> ignore (check_expr ctx e)
    | Ast.Fdecl ds -> List.iter (check_local_decl ctx) ds);
    Option.iter (check_scalar ctx) cond;
    Option.iter (fun e -> ignore (check_expr ctx e)) step;
    check_stmt ctx b;
    pop_scope ctx
  | Ast.Sswitch (e, b) ->
    let t = check_expr ctx e in
    if not (Ctypes.is_integer t) then
      errorf s.spos "switch needs an integer, got %s" (Ctypes.to_string t);
    check_stmt ctx b
  | Ast.Scase (e, b) ->
    ignore (check_expr ctx e);
    check_stmt ctx b
  | Ast.Sdefault b | Ast.Slabel (_, b) -> check_stmt ctx b
  | Ast.Sbreak | Ast.Scontinue | Ast.Sgoto _ | Ast.Snull -> ()
  | Ast.Sreturn eo -> begin
    let f = Option.get ctx.current_fun in
    match (eo, f.Ast.f_ret) with
    | None, Ctypes.Tvoid -> ()
    | None, _ -> errorf s.spos "missing return value in %s" f.Ast.f_name
    | Some e, ret ->
      let te = check_expr ctx e in
      if Ctypes.equal ret Ctypes.Tvoid then
        errorf s.spos "returning a value from void %s" f.Ast.f_name;
      check_assignable s.spos (Ctypes.decay ret) te
  end

and check_scalar ctx e =
  let t = check_expr ctx e in
  if not (Ctypes.is_scalar t) then
    errorf e.Ast.epos "condition must be scalar, got %s" (Ctypes.to_string t)

and check_local_decl ctx (d : Ast.decl) =
  (try ignore (Ctypes.size_of ctx.reg d.d_ty)
   with Ctypes.Type_error m -> errorf d.d_pos "%s: %s" d.d_name m);
  if d.d_static then begin
    (* Lift to a mangled global; initializer must be constant (checked at
       interpretation time like other global initializers). *)
    let f = Option.get ctx.current_fun in
    let mangled =
      Printf.sprintf "%s.%s.%d" f.Ast.f_name d.d_name ctx.static_counter
    in
    ctx.static_counter <- ctx.static_counter + 1;
    let lifted = { d with Ast.d_name = mangled } in
    Hashtbl.replace ctx.result.globals mangled lifted;
    ctx.lifted <- (mangled, lifted) :: ctx.lifted;
    Option.iter (fun i -> check_init ctx d.d_pos d.d_ty i) d.d_init;
    bind ctx d.d_name (Rglobal mangled);
    Hashtbl.replace ctx.result.decl_slots d.d_id (-1)
  end
  else begin
    Option.iter (fun i -> check_init ctx d.d_pos d.d_ty i) d.d_init;
    (* note: init is checked in the outer scope, then the name is bound *)
    let slot = add_local ctx d.d_name d.d_ty ~param:false in
    Hashtbl.replace ctx.result.decl_slots d.d_id slot
  end

(* ------------------------------------------------------------------ *)
(* Top level *)

let check_fundef ctx (f : Ast.fundef) =
  ctx.current_fun <- Some f;
  ctx.locals <- [];
  ctx.n_locals <- 0;
  push_scope ctx;
  List.iter
    (fun (name, ty) ->
      (try ignore (Ctypes.size_of ctx.reg ty)
       with Ctypes.Type_error m -> errorf f.f_pos "%s: %s" name m);
      ignore (add_local ctx name ty ~param:true))
    f.f_params;
  (* The body is an Sblock; check it without pushing another scope so that
     parameters share the outermost block scope (close enough to C). *)
  (match f.f_body.snode with
  | Ast.Sblock items ->
    push_scope ctx;
    List.iter
      (function
        | Ast.Bstmt s -> check_stmt ctx s
        | Ast.Bdecl d -> check_local_decl ctx d)
      items;
    pop_scope ctx
  | _ -> check_stmt ctx f.f_body);
  pop_scope ctx;
  let locals = Array.of_list (List.rev ctx.locals) in
  let fi =
    { fi_def = f;
      fi_ty =
        { Ctypes.ret = f.f_ret; params = List.map snd f.f_params;
          varargs = f.f_varargs };
      fi_locals = locals }
  in
  Hashtbl.replace ctx.result.funs f.f_name fi;
  ctx.current_fun <- None

(* Check a whole translation unit. Two passes over globals so that
   functions can call functions defined later without prototypes. *)
let check (tunit : Ast.tunit) : t =
  let result =
    { tunit; types = Hashtbl.create 256; resolutions = Hashtbl.create 256;
      decl_slots = Hashtbl.create 64; funs = Hashtbl.create 32;
      fun_order = []; globals = Hashtbl.create 32; global_order = [];
      enum_values = Hashtbl.create 16 }
  in
  let ctx =
    { result; reg = tunit.structs; scopes = []; locals = []; n_locals = 0;
      current_fun = None; lifted = []; static_counter = 0 }
  in
  push_scope ctx; (* file scope *)
  List.iter
    (fun (name, v) ->
      Hashtbl.replace result.enum_values name v;
      bind ctx name (Renum v))
    tunit.enum_consts;
  (* Pass 1: declare all globals and functions. A prototype may precede
     its definition; only a second *definition* is an error. *)
  let defined_fns = Hashtbl.create 16 in
  let fun_order = ref [] and global_order = ref [] in
  List.iter
    (function
      | Ast.Gfun f ->
        if Hashtbl.mem defined_fns f.Ast.f_name then
          errorf f.Ast.f_pos "function %s redefined" f.Ast.f_name;
        Hashtbl.replace defined_fns f.Ast.f_name ();
        let fi =
          { fi_def = f;
            fi_ty =
              { Ctypes.ret = f.Ast.f_ret;
                params = List.map snd f.Ast.f_params;
                varargs = f.Ast.f_varargs };
            fi_locals = [||] }
        in
        Hashtbl.replace result.funs f.Ast.f_name fi;
        fun_order := f.Ast.f_name :: !fun_order;
        bind ctx f.Ast.f_name (Rfun f.Ast.f_name)
      | Ast.Gfundecl d -> begin
        match d.Ast.d_ty with
        | Ctypes.Tfun fty ->
          if not (Hashtbl.mem result.funs d.Ast.d_name) then begin
            (* A prototype without definition: allowed only for builtins
               (where it just restates the signature) or if a definition
               follows; checked after pass 2. *)
            bind ctx d.Ast.d_name (Rfun d.Ast.d_name);
            Hashtbl.replace result.funs d.Ast.d_name
              { fi_def =
                  { f_id = d.Ast.d_id; f_pos = d.Ast.d_pos;
                    f_name = d.Ast.d_name; f_ret = fty.Ctypes.ret;
                    f_params =
                      List.mapi
                        (fun i t -> (Printf.sprintf "arg%d" i, t))
                        fty.Ctypes.params;
                    f_varargs = fty.Ctypes.varargs; f_static = false;
                    f_body =
                      { sid = -1; spos = d.Ast.d_pos;
                        snode = Ast.Sblock [] } };
                fi_ty = fty; fi_locals = [||] }
          end
        | _ -> errorf d.Ast.d_pos "bad prototype for %s" d.Ast.d_name
      end
      | Ast.Gvar d ->
        if Ctypes.is_function d.Ast.d_ty then
          errorf d.Ast.d_pos "variable %s has function type" d.Ast.d_name;
        (try ignore (Ctypes.size_of tunit.structs d.Ast.d_ty)
         with Ctypes.Type_error m -> errorf d.Ast.d_pos "%s" m);
        Hashtbl.replace result.globals d.Ast.d_name d;
        global_order := d.Ast.d_name :: !global_order;
        bind ctx d.Ast.d_name (Rglobal d.Ast.d_name))
    tunit.globals;
  (* Pass 2: check global initializers and function bodies. *)
  List.iter
    (function
      | Ast.Gvar d ->
        Option.iter (fun i -> check_init ctx d.Ast.d_pos d.Ast.d_ty i) d.d_init
      | Ast.Gfun f -> check_fundef ctx f
      | Ast.Gfundecl _ -> ())
    tunit.globals;
  (* Prototypes that never get a definition are only an error if actually
     called; the interpreter reports that precisely. *)
  let defined = List.rev !fun_order in
  { result with
    fun_order = defined;
    global_order = List.rev !global_order @ List.rev_map fst ctx.lifted }

(* Look up the recorded type of an expression node. *)
let type_of t (e : Ast.expr) : Ctypes.ty =
  match Hashtbl.find_opt t.types e.Ast.eid with
  | Some ty -> ty
  | None -> raise (Error ("expression was not typechecked", e.Ast.epos))

let resolution_of t (e : Ast.expr) : resolution option =
  Hashtbl.find_opt t.resolutions e.Ast.eid

let fun_info t name : fun_info option = Hashtbl.find_opt t.funs name
