(* Weight-matching metric tests: the paper's worked example, fractional
   cutoffs, degenerate inputs, and qcheck properties (perfect estimates
   score 1, scores are scale-invariant and bounded). *)

module WM = Core.Weight_matching

let score = WM.score

let test_paper_example () =
  (* Table 2: actual (while 3, if 3, return1 2, incr 1, return2 0),
     estimate (5, 4, 0.8, 4, 1). 20% of 5 blocks = 1 block: hit -> 100%.
     60% = 3 blocks: estimate picks {while, if, incr}, actual top-3 is
     {while, if, return1}: 7/8 = 87.5%. *)
  let actual = [| 3.0; 3.0; 2.0; 1.0; 0.0 |] in
  let estimate = [| 5.0; 4.0; 0.8; 4.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "20% cutoff" 1.0
    (score ~estimate ~actual ~cutoff:0.2);
  Alcotest.(check (float 1e-9)) "60% cutoff" 0.875
    (score ~estimate ~actual ~cutoff:0.6)

let test_perfect () =
  let actual = [| 5.0; 1.0; 9.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "self-match" 1.0
    (score ~estimate:actual ~actual ~cutoff:0.5)

let test_worst_case () =
  (* estimate inverts the ranking; top-25% of 4 = 1 item *)
  let actual = [| 10.0; 1.0; 1.0; 1.0 |] in
  let estimate = [| 0.0; 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "picks a cold block" (1.0 /. 10.0)
    (score ~estimate ~actual ~cutoff:0.25)

let test_fractional_boundary () =
  (* 30% of 5 items = 1.5: one full item plus half of the second *)
  let actual = [| 10.0; 8.0; 6.0; 4.0; 2.0 |] in
  let estimate = [| 10.0; 6.0; 8.0; 4.0; 2.0 |] in
  (* denominator: 10 + 0.5*8 = 14; numerator: estimate ranks 0,2,...:
     10 + 0.5*actual(2)=3 -> 13 *)
  Alcotest.(check (float 1e-9)) "fractional item" (13.0 /. 14.0)
    (score ~estimate ~actual ~cutoff:0.3)

let test_tie_handling () =
  (* equal actual values at the boundary: any permutation scores 1 *)
  let actual = [| 5.0; 5.0; 1.0 |] in
  let estimate = [| 1.0; 2.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "ties at boundary" 1.0
    (score ~estimate ~actual ~cutoff:0.34)

let test_all_zero_actual () =
  let actual = [| 0.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "zero denominator" 1.0
    (score ~estimate:[| 1.0; 2.0 |] ~actual ~cutoff:0.5)

let test_empty () =
  Alcotest.(check (float 1e-9)) "no entities" 1.0
    (score ~estimate:[||] ~actual:[||] ~cutoff:0.5)

let test_full_cutoff () =
  let actual = [| 4.0; 3.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "100% cutoff always scores 1" 1.0
    (score ~estimate:[| 0.0; 1.0; 2.0 |] ~actual ~cutoff:1.0)

let test_invalid_args () =
  (match score ~estimate:[| 1.0 |] ~actual:[| 1.0; 2.0 |] ~cutoff:0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted");
  match score ~estimate:[| 1.0 |] ~actual:[| 1.0 |] ~cutoff:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero cutoff accepted"

let test_weighted_mean () =
  Alcotest.(check (float 1e-9)) "weighted mean" 0.75
    (WM.weighted_mean [ (1.0, 1.0); (0.5, 1.0) ]);
  Alcotest.(check (float 1e-9)) "weights matter" 0.9
    (WM.weighted_mean [ (1.0, 8.0); (0.5, 2.0) ]);
  Alcotest.(check (float 1e-9)) "empty is 0" 0.0 (WM.weighted_mean [])

let test_boundary_snap () =
  (* 0.3 * 10 = 2.999...96 in floats; the quantile must still take three
     whole items, not two-and-a-fractional-one. *)
  let full, frac = WM.boundary ~n:10 ~cutoff:0.3 in
  Alcotest.(check int) "0.3 of 10: whole items" 3 full;
  Alcotest.(check (float 0.0)) "0.3 of 10: no fraction" 0.0 frac;
  (* and just above an integer: 0.7 * 10 = 7.000...01 must not leak an
     eighth item with infinitesimal weight *)
  let full, frac = WM.boundary ~n:10 ~cutoff:0.7 in
  Alcotest.(check int) "0.7 of 10: whole items" 7 full;
  Alcotest.(check (float 0.0)) "0.7 of 10: no fraction" 0.0 frac;
  (* a genuinely fractional boundary is untouched *)
  let full, frac = WM.boundary ~n:5 ~cutoff:0.3 in
  Alcotest.(check int) "0.3 of 5: whole items" 1 full;
  Alcotest.(check (float 1e-12)) "0.3 of 5: half an item" 0.5 frac

(* Every boundary on the grid q = i/20 (i = 1..20), n = 1..40 against
   rational arithmetic: exactly (i*n) div 20 whole items and
   ((i*n) mod 20) / 20 of the next. *)
let test_boundary_grid_oracle () =
  for i = 1 to 20 do
    for n = 1 to 40 do
      let cutoff = float_of_int i /. 20.0 in
      let full, frac = WM.boundary ~n ~cutoff in
      let label what = Printf.sprintf "q=%d/20 n=%d %s" i n what in
      Alcotest.(check int) (label "full") (i * n / 20) full;
      Alcotest.(check (float 1e-9))
        (label "frac")
        (float_of_int (i * n mod 20) /. 20.0)
        frac
    done
  done

(* --- properties ------------------------------------------------------ *)

let gen_pair : (float array * float array * float) QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    int_range 1 30 >>= fun n ->
    let vals = array_size (return n) (float_bound_inclusive 100.0) in
    vals >>= fun actual ->
    vals >>= fun estimate ->
    float_range 0.05 1.0 >|= fun cutoff -> (actual, estimate, cutoff)
  in
  QCheck.make gen ~print:(fun (a, e, c) ->
      Printf.sprintf "actual=[%s] estimate=[%s] cutoff=%.3f"
        (String.concat ";" (Array.to_list (Array.map string_of_float a)))
        (String.concat ";" (Array.to_list (Array.map string_of_float e)))
        c)

let prop_bounded =
  QCheck.Test.make ~name:"scores lie in [0, 1] (up to fp noise)" ~count:500
    gen_pair (fun (actual, estimate, cutoff) ->
      let s = score ~estimate ~actual ~cutoff in
      s >= -1e-9 && s <= 1.0 +. 1e-9)

let prop_self_is_one =
  QCheck.Test.make ~name:"an estimate equal to the actuals scores 1"
    ~count:500 gen_pair (fun (actual, _, cutoff) ->
      abs_float (score ~estimate:actual ~actual ~cutoff -. 1.0) < 1e-9)

let prop_scale_invariant =
  QCheck.Test.make ~name:"scaling the estimate does not change the score"
    ~count:500 gen_pair (fun (actual, estimate, cutoff) ->
      let scaled = Array.map (fun v -> v *. 37.5) estimate in
      abs_float
        (score ~estimate ~actual ~cutoff
        -. score ~estimate:scaled ~actual ~cutoff)
      < 1e-9)

let prop_monotone_rank_only =
  QCheck.Test.make
    ~name:"any rank-preserving transform of the estimate scores the same"
    ~count:500 gen_pair (fun (actual, estimate, cutoff) ->
      (* x -> x^3 preserves order of non-negative values *)
      let transformed = Array.map (fun v -> v ** 3.0) estimate in
      abs_float
        (score ~estimate ~actual ~cutoff
        -. score ~estimate:transformed ~actual ~cutoff)
      < 1e-9)

(* A perfect estimator scores 1.0 at *every* q-threshold, not just a
   sampled one. *)
let prop_perfect_at_every_q =
  QCheck.Test.make ~name:"a perfect estimate scores 1 at every q-threshold"
    ~count:200 gen_pair (fun (actual, _, _) ->
      List.for_all
        (fun q ->
          abs_float (score ~estimate:actual ~actual ~cutoff:q -. 1.0) < 1e-9)
        [ 0.05; 0.1; 0.2; 0.25; 0.4; 0.5; 0.6; 0.75; 0.8; 1.0 ])

(* Scores are a function of the (estimate, actual) pairing, not of the
   entity numbering: permuting both arrays with the same permutation
   leaves the score unchanged. The estimate values are kept distinct so
   the selected quantile set is the same set of entities either way
   (with tied estimates the metric legitimately breaks ties by index). *)
let gen_permutation_case :
    (float array * float array * int array * float) QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    int_range 1 30 >>= fun n ->
    array_size (return n) (float_bound_inclusive 100.0) >>= fun actual ->
    (* distinct estimate values: a random ranking of 1..n *)
    array_size (return n) (float_bound_inclusive 1.0) >>= fun est_keys ->
    array_size (return n) (float_bound_inclusive 1.0) >>= fun perm_keys ->
    float_range 0.05 1.0 >|= fun cutoff ->
    let order_of keys =
      let idx = Array.init n Fun.id in
      Array.sort
        (fun a b ->
          match compare keys.(a) keys.(b) with 0 -> compare a b | c -> c)
        idx;
      idx
    in
    let estimate = Array.make n 0.0 in
    Array.iteri (fun rank i -> estimate.(i) <- float_of_int (rank + 1))
      (order_of est_keys);
    (actual, estimate, order_of perm_keys, cutoff)
  in
  QCheck.make gen ~print:(fun (a, e, p, c) ->
      Printf.sprintf "actual=[%s] estimate=[%s] perm=[%s] cutoff=%.3f"
        (String.concat ";" (Array.to_list (Array.map string_of_float a)))
        (String.concat ";" (Array.to_list (Array.map string_of_float e)))
        (String.concat ";" (Array.to_list (Array.map string_of_int p)))
        c)

let prop_permutation_invariant =
  QCheck.Test.make
    ~name:"scores are invariant under entity permutation" ~count:500
    gen_permutation_case (fun (actual, estimate, perm, cutoff) ->
      let apply xs = Array.map (fun i -> xs.(i)) perm in
      abs_float
        (score ~estimate ~actual ~cutoff
        -. score ~estimate:(apply estimate) ~actual:(apply actual) ~cutoff)
      < 1e-9)

let suite =
  [ Alcotest.test_case "paper example" `Quick test_paper_example;
    Alcotest.test_case "perfect estimate" `Quick test_perfect;
    Alcotest.test_case "worst case" `Quick test_worst_case;
    Alcotest.test_case "fractional boundary" `Quick test_fractional_boundary;
    Alcotest.test_case "ties" `Quick test_tie_handling;
    Alcotest.test_case "all-zero actual" `Quick test_all_zero_actual;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "full cutoff" `Quick test_full_cutoff;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
    Alcotest.test_case "boundary snapping" `Quick test_boundary_snap;
    Alcotest.test_case "boundary grid vs rational oracle" `Quick
      test_boundary_grid_oracle;
    QCheck_alcotest.to_alcotest prop_bounded;
    QCheck_alcotest.to_alcotest prop_self_is_one;
    QCheck_alcotest.to_alcotest prop_scale_invariant;
    QCheck_alcotest.to_alcotest prop_monotone_rank_only;
    QCheck_alcotest.to_alcotest prop_perfect_at_every_q;
    QCheck_alcotest.to_alcotest prop_permutation_invariant ]
