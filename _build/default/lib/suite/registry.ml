(* The benchmark suite: 16 programs mirroring the paper's Table 1 (its 14
   workload classes, plus explicit analogues for the two personalities it
   highlights: alvinn's pure loop nests and gs's massive indirect
   dispatch). *)

let all : Bench_prog.t list =
  [ Prog_alvinn.program;
    Prog_compress.program;
    Prog_lisp.program;
    Prog_eqntott.program;
    Prog_espresso.program;
    Prog_sort.program;
    Prog_cholesky.program;
    Prog_water.program;
    Prog_awk.program;
    Prog_bison.program;
    Prog_tree.program;
    Prog_strlib.program;
    Prog_queens.program;
    Prog_hash.program;
    Prog_life.program;
    Prog_gs.program ]

let find (name : string) : Bench_prog.t option =
  List.find_opt (fun p -> p.Bench_prog.name = name) all

let names () = List.map (fun p -> p.Bench_prog.name) all
