(** Deterministic work-queue scheduler on OCaml 5 domains.

    A single process-wide pool of worker domains drains a shared task
    queue; {!map} fans a list of independent computations out across the
    pool and merges the results back in input order, so the output of a
    parallel map is byte-identical to [List.map] whenever the tasks
    themselves are deterministic and independent. The parallelism level
    is a process-wide setting ([--jobs] on the command line):

    - [jobs <= 1] runs everything inline in the calling domain — the
      sequential reference path that the differential tests compare
      against;
    - [jobs = n > 1] keeps [n - 1] worker domains and lets the calling
      domain drain the queue too while it waits, so [n] tasks run
      concurrently.

    Nested {!map} calls (a task that itself maps) run inline in the
    domain that is executing the task: the pool never deadlocks waiting
    on itself, and nesting cannot change results.

    Error handling: every slot always runs — one failing task never
    short-circuits the rest, at any jobs setting — and every failure is
    collected with its input index and raw backtrace. {!map} re-raises:
    a single failure re-raises the original exception with its original
    backtrace; several raise {!Worker_errors} ordered by input index.
    {!map_results} returns the per-slot outcomes instead, for callers
    (the suite cache) that degrade per item rather than abort.

    Every slot also passes the ["worker"] fault-injection point
    ({!Obs.Inject}, key = input index as a string) before its task body,
    on the sequential and pooled paths alike, so chaos runs kill the
    same tasks at every jobs setting. *)

exception Worker_errors of (int * exn * Printexc.raw_backtrace) list
(** Raised by {!map} when more than one task failed: every failure, with
    its input index and the raw backtrace captured where it was thrown,
    in input-index order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default parallelism. *)

val jobs : unit -> int
(** The current process-wide parallelism level (>= 1). *)

val set_jobs : int -> unit
(** Set the parallelism level (clamped to >= 1). If a pool of a
    different size is running it is retired (its workers join) and the
    next {!map} spawns a fresh one — so the level may be resized
    between fan-outs at any point in a process's life (the serve
    daemon does, between request batches). Raises [Invalid_argument]
    when called from inside a {!map} task: retiring the pool would
    join the very domain making the call, deadlocking it. *)

val pool_size : unit -> int option
(** Size of the live worker pool, or [None] when none is running
    (before the first fan-out, or after {!shutdown}/a pending resize —
    pools are created lazily by the next {!map}). Observational only;
    [serve stats] reports it. *)

val map_results :
  ('a -> 'b) -> 'a list -> ('b, exn * Printexc.raw_backtrace) result list
(** [map_results f xs] runs every [f x] (up to [jobs ()] concurrently)
    and returns each slot's outcome in input order, never raising
    itself. *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element of [xs], running up to
    [jobs ()] applications concurrently, and returns the results in
    input order. On failure, re-raises (see the error-handling notes
    above). *)

val run : (unit -> 'a) list -> 'a list
(** [run thunks] executes the thunks across the pool and returns their
    results in input order — [map] for heterogeneous stage lists. *)

val shutdown : unit -> unit
(** Retire the pool, joining all worker domains. The next {!map} call
    respawns it; useful around benchmarks that must not see idle
    workers from an earlier configuration. Registered [at_exit].
    Raises [Invalid_argument] from inside a {!map} task, like
    {!set_jobs}. *)
