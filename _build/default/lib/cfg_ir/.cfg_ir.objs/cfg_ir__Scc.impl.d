lib/cfg_ir/scc.ml: Array List
