lib/cfront/const_fold.ml: Ast Ctypes Typecheck
