(* Corpus evaluation: N seeded shaped programs per workload class, each
   run through compile → profile (compiled backend, fuel-budgeted) →
   every estimator, with weight-matching scores aggregated into
   per-class/per-estimator distributions (mean/median/p10/p90).

   Every distribution cell is emitted as a typed [Score] record
   (experiment "corpus", program = the class name, estimator =
   "<estimator>/<statistic>"), so drift-gating, [bin record]/[bin diff]
   and the HTML report cover corpus results exactly as they cover the
   16-program suite — and because the suite experiments never emit
   under the "corpus" experiment id, corpus scores are purely additive
   to a run record, never perturbing baseline scores.

   Determinism: generation is a pure function of (seed, class, size,
   index); per-program evaluation fans out through [Parallel.map],
   which merges in input order; aggregation is a sequential fold over
   that merged order.  The records are therefore bit-identical at any
   jobs setting.  Deliberately *not* in the record's meta: the jobs
   count.

   Fault tolerance mirrors [Context]: a degenerate generated program
   degrades its own row (compile/profile stage captures, the PR-4
   taxonomy) instead of killing the run, and a run that exhausts its
   fuel budget keeps the partial profile, is counted as divergent, and
   leaves a Profile-stage fault on the record. *)

module Pipeline = Core.Pipeline
module Profile = Cinterp.Profile
module Eval = Cinterp.Eval
module Inter_simple = Core.Inter_simple
module Weight_matching = Core.Weight_matching
module Shape = Corpus.Shape
module Genprog = Corpus.Genprog

type spec = {
  c_seed : int;
  c_per_class : int;
  c_size : Shape.size;
  c_classes : Shape.workload_class list;
}

let default_spec =
  { c_seed = 1; c_per_class = 10; c_size = Shape.medium;
    c_classes = Shape.all_classes }

type outcome = {
  o_rendered : string;                  (* the per-class tables *)
  o_programs : int;                     (* generated rows, all classes *)
  o_degraded : (string * string) list;  (* program name, stage — for the record *)
  o_divergent : int;                    (* rows with a budget-exhausted run *)
}

let exp_id = "corpus"

(* Termination of generated programs is by construction; this budget is
   the safety net that turns a generator bug into a degraded/divergent
   row instead of a hang.  The largest corpus shapes execute well under
   10^5 block steps, so the headroom is ~20x. *)
let corpus_fuel = 2_000_000

let intra_cutoff = 0.05
let inter_cutoff = 0.25

let intra_kinds =
  [ Pipeline.Iloop; Pipeline.Ismart; Pipeline.Imarkov; Pipeline.Istructural;
    Pipeline.Icombined ]

let inter_kinds =
  List.map (fun k -> Pipeline.Isimple k) Inter_simple.all_kinds
  @ [ Pipeline.Imarkov_inter ]

(* The fixed estimator column order of every per-class table. *)
let estimator_labels : string list =
  List.map
    (fun k -> "intra." ^ Pipeline.intra_kind_to_string k)
    intra_kinds
  @ List.map (fun k -> "inter." ^ Pipeline.inter_kind_to_string k) inter_kinds

(* ------------------------------------------------------------------ *)
(* Per-program pipeline stages — the [Context] stage structure, minus
   the memo table (corpus programs are evaluated exactly once). *)

let drop_recovery = "program dropped from corpus (degraded row)"

(* estimator label, metric, cutoff, score *)
type cell = string * Score.metric * float * float

type row = {
  p_bench : Suite.Bench_prog.t;
  p_cls : Shape.workload_class;
  p_cells : (cell list, Fault.t) result;
  p_divergent : bool;
}

let bench_of (spec : spec) (cls : Shape.workload_class) (index : int) :
    Suite.Bench_prog.t =
  Suite.Bench_prog.synthetic
    ~name:(Genprog.name cls index)
    ~description:(Shape.class_description cls)
    ~source:
      (Genprog.generate ~seed:spec.c_seed ~cls ~size:spec.c_size ~index)
    ~runs:
      (List.map
         (fun (argv, input) -> Suite.Bench_prog.run ~argv ~input ())
         Genprog.runs)

let compile_stage (bench : Suite.Bench_prog.t) : Pipeline.compiled =
  let name = bench.Suite.Bench_prog.name in
  Obs.Inject.fire "compile" ~key:name;
  let c = Pipeline.compile ~name bench.Suite.Bench_prog.source in
  if !Pipeline.default_backend = Pipeline.Compiled then
    ignore (Pipeline.closure_exe c);
  c

(* One profiling run.  Returns the (possibly partial) profile and
   whether the budget ran out — the divergence marker the attempt log
   tracks per class. *)
let profile_stage (compiled : Pipeline.compiled) (run_index : int)
    (r : Suite.Bench_prog.run) : Profile.t * bool =
  let name = compiled.Pipeline.name in
  Obs.Inject.fire "profile" ~key:name;
  let fuel =
    if Obs.Inject.should_fire "profile.fuel" ~key:name then 10
    else corpus_fuel
  in
  let run =
    { Pipeline.argv = r.Suite.Bench_prog.r_argv;
      input = r.Suite.Bench_prog.r_input }
  in
  match Pipeline.run_once ~fuel ~deadline_s:300.0 compiled run with
  | o -> (o.Eval.profile, false)
  | exception Eval.Budget_exhausted (stop, outcome) ->
    Obs.Probe.count "corpus.partial_profile";
    Fault.record
      { Fault.f_stage = Fault.Profile; f_subject = name;
        f_detail =
          Printf.sprintf "run %d: %s budget exhausted" run_index
            (Eval.budget_stop_to_string stop);
        f_exn = ""; f_backtrace = "";
        f_recovery = "kept partial profile" };
    (outcome.Eval.profile, true)

let estimate_stage (compiled : Pipeline.compiled)
    (profiles : Profile.t list) : cell list =
  let intra_cells =
    List.map
      (fun kind ->
        let estimate = Pipeline.intra_provider compiled kind in
        let v =
          Pipeline.mean_over_profiles profiles (fun p ->
              Pipeline.intra_score compiled ~estimate p ~cutoff:intra_cutoff)
        in
        ( "intra." ^ Pipeline.intra_kind_to_string kind, Score.Wm_intra,
          intra_cutoff, v ))
      intra_kinds
  in
  (* as in the paper, every inter estimator builds on the smart intra *)
  let smart = Pipeline.intra_provider compiled Pipeline.Ismart in
  let inter_cells =
    List.map
      (fun kind ->
        let estimate = Pipeline.inter_estimate compiled ~intra:smart kind in
        let v =
          Pipeline.mean_over_profiles profiles (fun p ->
              Weight_matching.score ~estimate
                ~actual:(Pipeline.inter_actual compiled p)
                ~cutoff:inter_cutoff)
        in
        ( "inter." ^ Pipeline.inter_kind_to_string kind, Score.Wm_inter,
          inter_cutoff, v ))
      inter_kinds
  in
  intra_cells @ inter_cells

let eval_one (spec : spec) ((cls : Shape.workload_class), (index : int)) : row
    =
  let bench = bench_of spec cls index in
  let name = bench.Suite.Bench_prog.name in
  let divergent = ref false in
  let cells =
    match
      Fault.capture ~stage:Fault.Compile ~subject:name
        ~recovery:drop_recovery (fun () -> compile_stage bench)
    with
    | Error f -> Error f
    | Ok compiled -> (
      match
        Fault.capture ~stage:Fault.Profile ~subject:name
          ~recovery:drop_recovery (fun () ->
            List.mapi
              (fun i r ->
                let p, d = profile_stage compiled i r in
                if d then divergent := true;
                p)
              bench.Suite.Bench_prog.runs)
      with
      | Error f -> Error f
      | Ok profiles ->
        Fault.capture ~stage:Fault.Estimate ~subject:name
          ~recovery:drop_recovery (fun () ->
            estimate_stage compiled profiles))
  in
  { p_bench = bench; p_cls = cls; p_cells = cells; p_divergent = !divergent }

(* ------------------------------------------------------------------ *)
(* Aggregation: a sequential fold over the order-merged rows. *)

let stat_names = [ "mean"; "median"; "p10"; "p90" ]

let stat_value ~(subject : string) (name : string) (xs : float list) : float =
  match name with
  | "mean" -> Stats.mean ~subject xs
  | "median" -> Stats.quantile ~subject 0.5 xs
  | "p10" -> Stats.quantile ~subject 0.1 xs
  | "p90" -> Stats.quantile ~subject 0.9 xs
  | _ -> invalid_arg "Corpus_eval.stat_value"

let emit_score ~(program : string) ~(estimator : string)
    (metric : Score.metric) ~(param : float) (value : float) : unit =
  Score.emit
    { Score.s_experiment = exp_id; s_program = program;
      s_estimator = estimator; s_metric = metric; s_param = param;
      s_value = value }

let aggregate_class (cls : Shape.workload_class)
    (rows : row list) : string =
  let class_name = Shape.class_to_string cls in
  let healthy =
    List.filter_map
      (fun r -> match r.p_cells with Ok cs -> Some cs | Error _ -> None)
      rows
  in
  let n_degraded = List.length rows - List.length healthy in
  let n_divergent =
    List.length (List.filter (fun r -> r.p_divergent) rows)
  in
  let mean_loc =
    match rows with
    | [] -> 0.0
    | _ ->
      float_of_int
        (List.fold_left
           (fun acc r -> acc + Suite.Bench_prog.loc r.p_bench)
           0 rows)
      /. float_of_int (List.length rows)
  in
  let table_rows =
    List.map
      (fun label ->
        let metric, param, values =
          List.fold_left
            (fun (m, p, acc) cells ->
              match
                List.find_opt (fun (l, _, _, _) -> l = label) cells
              with
              | Some (_, metric, param, v) -> (metric, param, v :: acc)
              | None -> (m, p, acc))
            ((if String.length label > 5 && String.sub label 0 5 = "intra"
              then Score.Wm_intra
              else Score.Wm_inter),
             (if String.length label > 5 && String.sub label 0 5 = "intra"
              then intra_cutoff
              else inter_cutoff),
             [])
            healthy
        in
        let values = List.rev values in
        label
        :: List.map
             (fun stat ->
               let v =
                 stat_value ~subject:(class_name ^ "." ^ label) stat values
               in
               emit_score ~program:class_name
                 ~estimator:(label ^ "/" ^ stat) metric ~param v;
               Text_table.pct v)
             stat_names)
      estimator_labels
  in
  List.iter
    (fun (est, v) ->
      emit_score ~program:class_name ~estimator:est Score.Count ~param:0.0
        (float_of_int v))
    [ ("programs", List.length rows); ("degraded", n_degraded);
      ("divergent", n_divergent) ];
  Printf.sprintf
    "class %s (%d programs, %d degraded, %d divergent, ~%.0f LoC each)\n%s\n%s"
    class_name (List.length rows) n_degraded n_divergent mean_loc
    (Shape.class_description cls)
    (Text_table.render
       ~aligns:[ Text_table.Left ]
       ("estimator" :: stat_names)
       table_rows)

(* ------------------------------------------------------------------ *)

let evaluate (spec : spec) : outcome =
  let tasks =
    List.concat_map
      (fun cls -> List.init spec.c_per_class (fun i -> (cls, i)))
      spec.c_classes
  in
  (* Worker-level task deaths (the ["worker"] injection point, or
     anything thrown outside the stage captures) degrade the one row
     they belong to, exactly like the suite driver's warm-up. *)
  let rows =
    List.map2
      (fun ((cls : Shape.workload_class), index) slot ->
        match slot with
        | Ok row -> row
        | Error (e, bt) ->
          let name = Genprog.name cls index in
          let fault =
            Fault.absorb ~stage:Fault.Worker ~subject:name
              ~recovery:drop_recovery e bt
          in
          { p_bench = bench_of spec cls index; p_cls = cls;
            p_cells = Error fault; p_divergent = false })
      tasks
      (Parallel.map_results (eval_one spec) tasks)
  in
  let tables =
    List.map
      (fun cls ->
        aggregate_class cls
          (List.filter (fun r -> r.p_cls = cls) rows))
      spec.c_classes
  in
  let degraded =
    List.filter_map
      (fun r ->
        match r.p_cells with
        | Ok _ -> None
        | Error f ->
          Some
            ( r.p_bench.Suite.Bench_prog.name,
              Fault.stage_to_string f.Fault.f_stage ))
      rows
  in
  let n_divergent =
    List.length (List.filter (fun r -> r.p_divergent) rows)
  in
  let header =
    Printf.sprintf
      "Corpus: %d classes x %d programs (seed %d, size %s; intra cutoff \
       %g%%, inter cutoff %g%%)\n\n"
      (List.length spec.c_classes)
      spec.c_per_class spec.c_seed
      (Shape.size_to_string spec.c_size)
      (100.0 *. intra_cutoff) (100.0 *. inter_cutoff)
  in
  { o_rendered = header ^ String.concat "\n" tables;
    o_programs = List.length rows;
    o_degraded = degraded;
    o_divergent = n_divergent }
