(* Self-contained splitmix64 stream.

   Corpus generation must be a pure function of (seed, class, size,
   index): byte-identical sources on every run, every machine, every
   jobs setting.  OCaml's [Random] gives no cross-version stability
   guarantee and its state is awkward to fork deterministically, so we
   carry our own 20-line generator.  splitmix64 is the usual choice for
   this job: a counter-mode mixer, so deriving an independent substream
   for program #k of class c is just hashing the path (seed, c, k) —
   no sequential dependence between programs, which is what lets the
   parallel driver evaluate them in any order. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix64 (z : int64) : int64 =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_raw (t : t) : int64 =
  t.state <- Int64.add t.state golden;
  mix64 t.state

(* Fold a derivation path into an initial state: each component is
   absorbed with one full mix round, so (seed=1, index=2) and
   (seed=2, index=1) land in unrelated streams. *)
let of_path (path : int list) : t =
  let state =
    List.fold_left
      (fun acc component -> mix64 (Int64.add (Int64.mul acc golden) (Int64.of_int component)))
      0x5851F42D4C957F2DL path
  in
  { state }

let create (seed : int) : t = of_path [ seed ]

(* Uniform-ish int in [0, bound).  The modulo bias at 63 bits over
   bounds < 2^10 is far below anything the corpus shapes can observe,
   and keeping it branch-free keeps the stream consumption rate fixed
   per call — one draw, always. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.shift_right_logical (next_raw t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let range (t : t) (lo : int) (hi : int) : int =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool (t : t) : bool = int t 2 = 0

(* true with probability num/den — used for rare-path shaping. *)
let chance (t : t) (num : int) (den : int) : bool = int t den < num

let choose (t : t) (xs : 'a array) : 'a =
  if Array.length xs = 0 then invalid_arg "Rng.choose: empty array";
  xs.(int t (Array.length xs))

let pick (t : t) (xs : 'a list) : 'a = choose t (Array.of_list xs)
