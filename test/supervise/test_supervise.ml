(* The supervised worker pool, exercised with real forked children:
   routing is stable, a murdered worker is restarted and its in-flight
   request replayed once, a request that kills its worker twice comes
   back as a typed [Lost] instead of hanging, a silent worker is
   SIGKILLed at the deadline, chaos kills are a pure function of
   (seed, point, key) so the doomed set is predictable from the parent,
   and a crash-looping shard trips the circuit breaker instead of
   fork-bombing.

   This suite runs as its own executable, apart from [test_main]: OCaml 5
   refuses [Unix.fork] in any process that has ever spawned a domain —
   joining the domains does not lift the ban — and the main runner's
   earlier suites fan out on [Driver.Parallel]. The same constraint is
   why [serve --workers] forks before its first fan-out. Nothing in this
   process may call [Parallel.map] before a pool starts. *)

module Supervise = Driver.Supervise

let nop_finalize ~shard:_ = ()

let with_pool ?deadline_s ?max_consecutive_crashes ~workers ?(init = fun ~shard:_ -> ())
    handler (f : Supervise.t -> 'a) : 'a =
  let pool =
    Supervise.start ~workers ?deadline_s ?max_consecutive_crashes ~init
      ~finalize:nop_finalize ~handler ()
  in
  Fun.protect ~finally:(fun () -> Supervise.stop pool) (fun () -> f pool)

let reply_exn = function
  | Supervise.Reply s -> s
  | Supervise.Deadline d -> Alcotest.failf "unexpected Deadline %g" d
  | Supervise.Lost msg -> Alcotest.failf "unexpected Lost: %s" msg

(* --- plumbing ---------------------------------------------------------- *)

let test_echo_roundtrip () =
  with_pool ~workers:3 (fun line -> "echo:" ^ line) (fun pool ->
      Alcotest.(check int) "pool size" 3 (Supervise.size pool);
      Alcotest.(check int) "all workers alive" 3 (Supervise.alive pool);
      Alcotest.(check string) "single request" "echo:hello"
        (reply_exn (Supervise.request pool ~key:"k1" "hello"));
      let reqs = List.init 20 (fun i -> (i, Printf.sprintf "key-%d" i,
                                         Printf.sprintf "msg-%d" i)) in
      let replies = Supervise.request_many pool reqs in
      Alcotest.(check int) "every slot answered" 20 (List.length replies);
      List.iter
        (fun (slot, outcome) ->
          Alcotest.(check string)
            (Printf.sprintf "slot %d" slot)
            (Printf.sprintf "echo:msg-%d" slot)
            (reply_exn outcome))
        replies;
      Alcotest.(check int) "no restarts in a clean run" 0
        (Supervise.restarts pool))

let test_broadcast () =
  (* each child learns its shard in [init]; the closure mutation happens
     after fork, so every worker sees only its own value *)
  let my_shard = ref (-1) in
  with_pool ~workers:3 ~init:(fun ~shard -> my_shard := shard)
    (fun line -> Printf.sprintf "%d:%s" !my_shard line)
    (fun pool ->
      let replies = Supervise.broadcast pool "ping" in
      Alcotest.(check int) "one reply per shard" 3 (List.length replies);
      List.iter
        (fun (shard, outcome) ->
          Alcotest.(check string)
            (Printf.sprintf "shard %d" shard)
            (Printf.sprintf "%d:ping" shard)
            (reply_exn outcome))
        replies)

let test_routing_is_stable () =
  with_pool ~workers:4 (fun line -> line) (fun pool ->
      List.iter
        (fun key ->
          let a = Supervise.shard_of pool key in
          let b = Supervise.shard_of pool key in
          Alcotest.(check int) ("routing of " ^ key) a b;
          Alcotest.(check bool) "in range" true (a >= 0 && a < 4))
        [ "alpha"; "beta"; "gamma"; "delta"; "" ])

(* --- crash recovery ---------------------------------------------------- *)

let test_external_kill_replays () =
  with_pool ~workers:2 (fun line -> "ok:" ^ line) (fun pool ->
      let key = "victim-key" in
      let shard = Supervise.shard_of pool key in
      let pid = List.nth (Supervise.pids pool) shard in
      Unix.kill pid Sys.sigkill;
      (* the next request on that shard hits a dead worker: the pool
         must notice, restart, replay, and still answer *)
      Alcotest.(check string) "request survives an external SIGKILL"
        ("ok:" ^ key)
        (reply_exn (Supervise.request pool ~key key));
      Alcotest.(check bool) "a restart was recorded" true
        (Supervise.restarts pool >= 1);
      Alcotest.(check int) "pool is whole again" 2 (Supervise.alive pool))

let suicide_handler line =
  if String.length line >= 3 && String.sub line 0 3 = "die" then
    Unix.kill (Unix.getpid ()) Sys.sigkill;
  "ok:" ^ line

let test_poison_request_is_lost () =
  with_pool ~workers:2 ~max_consecutive_crashes:10 suicide_handler
    (fun pool ->
      (match Supervise.request pool ~key:"die-1" "die-1" with
      | Supervise.Lost _ -> ()
      | Supervise.Reply r -> Alcotest.failf "poison request replied %S" r
      | Supervise.Deadline _ -> Alcotest.fail "poison request hit deadline");
      Alcotest.(check int) "exactly one lost request" 1
        (Supervise.lost pool);
      Alcotest.(check bool) "kill + replay-kill = two restarts" true
        (Supervise.restarts pool >= 2);
      (* the pool is not poisoned: ordinary traffic still flows,
         including on the shard the poison request crashed *)
      List.iter
        (fun key ->
          Alcotest.(check string) key ("ok:" ^ key)
            (reply_exn (Supervise.request pool ~key key)))
        [ "a"; "b"; "c"; "d" ])

let test_deadline_kills_silent_worker () =
  let handler line =
    if line = "stall" then Unix.sleepf 30.0;
    "ok:" ^ line
  in
  with_pool ~workers:1 ~deadline_s:0.3 handler (fun pool ->
      (match Supervise.request pool ~key:"slow" "stall" with
      | Supervise.Deadline d ->
        Alcotest.(check bool) "deadline value is the configured one" true
          (d >= 0.25 && d < 5.0)
      | Supervise.Reply r -> Alcotest.failf "stalled request replied %S" r
      | Supervise.Lost msg -> Alcotest.failf "stalled request lost: %s" msg);
      (* a deadline kill is not a crash: the worker is respawned and the
         shard keeps serving *)
      Alcotest.(check string) "shard recovered after the deadline kill"
        "ok:after"
        (reply_exn (Supervise.request pool ~key:"next" "after")))

let test_circuit_breaker () =
  let always_die _line = Unix.kill (Unix.getpid ()) Sys.sigkill; "" in
  with_pool ~workers:1 ~max_consecutive_crashes:2 always_die (fun pool ->
      (match Supervise.request pool ~key:"k" "boom" with
      | Supervise.Lost _ -> ()
      | _ -> Alcotest.fail "crash-looping request must be Lost");
      let restarts_after_trip = Supervise.restarts pool in
      (* breaker is open: further requests fail fast, no more forks *)
      (match Supervise.request pool ~key:"k2" "boom" with
      | Supervise.Lost _ -> ()
      | _ -> Alcotest.fail "open breaker must fail fast");
      Alcotest.(check int) "no restarts once the breaker is open"
        restarts_after_trip (Supervise.restarts pool);
      Alcotest.(check int) "the shard is marked dead" 0
        (Supervise.alive pool))

(* --- chaos determinism -------------------------------------------------- *)

let chaos_point = "test.supervise-kill"

let test_chaos_doom_set_is_deterministic () =
  Obs.Inject.register chaos_point;
  let keys = List.init 10 (fun i -> Printf.sprintf "prog-%c" (Char.chr (97 + i))) in
  let handler line =
    (* the child inherited the armed registry at fork: the decision is a
       pure hash of (seed, point, key), so a replayed doomed request is
       doomed again *)
    if Obs.Inject.should_fire chaos_point ~key:line then
      Unix.kill (Unix.getpid ()) Sys.sigkill;
    "ok:" ^ line
  in
  let run_pool () =
    with_pool ~workers:2 ~max_consecutive_crashes:100 handler (fun pool ->
        List.filter_map
          (fun key ->
            match Supervise.request pool ~key key with
            | Supervise.Lost _ -> Some key
            | Supervise.Reply _ -> None
            | Supervise.Deadline _ ->
              Alcotest.failf "unexpected deadline on %s" key)
          keys)
  in
  Fun.protect ~finally:Obs.Inject.disarm_all (fun () ->
      Obs.Inject.arm_chaos ~seed:42 ();
      (* the parent can predict the doomed set without forking anything:
         should_fire is pure under chaos arming *)
      let expected =
        List.filter (fun k -> Obs.Inject.should_fire chaos_point ~key:k) keys
      in
      Alcotest.(check bool) "seed 42 dooms at least one key" true
        (expected <> []);
      Alcotest.(check bool) "seed 42 spares at least one key" true
        (List.length expected < List.length keys);
      let first = run_pool () in
      let second = run_pool () in
      Alcotest.(check (list string))
        "lost set matches the parent's prediction" expected first;
      Alcotest.(check (list string))
        "two pools under one seed lose the same keys" first second)

(* --- registration ------------------------------------------------------- *)

let suite =
  [ Alcotest.test_case "echo roundtrip across shards" `Quick
      test_echo_roundtrip;
    Alcotest.test_case "broadcast reaches every shard" `Quick test_broadcast;
    Alcotest.test_case "routing is stable" `Quick test_routing_is_stable;
    Alcotest.test_case "external SIGKILL: restart + replay" `Quick
      test_external_kill_replays;
    Alcotest.test_case "poison request becomes a typed Lost" `Quick
      test_poison_request_is_lost;
    Alcotest.test_case "deadline SIGKILLs a silent worker" `Slow
      test_deadline_kills_silent_worker;
    Alcotest.test_case "crash loop trips the circuit breaker" `Slow
      test_circuit_breaker;
    Alcotest.test_case "chaos doom set is deterministic" `Slow
      test_chaos_doom_set_is_deterministic ]

let () =
  Alcotest.run "static-estimators-supervise" [ ("supervise", suite) ]
