lib/suite/prog_hash.ml: Bench_prog Buffer List Printf String
