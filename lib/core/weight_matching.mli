(** Wall's weight-matching metric (paper section 3).

    Given an estimate and a measurement for the same entities and a cutoff
    fraction [q], select the top [q]-quantile by estimate and by actual
    value; the score is the actual weight captured by the estimated
    quantile divided by the actual weight of the actual quantile. When
    [q * n] is not an integer, the boundary item is weighted fractionally
    (paper footnote 2). *)

(** An index paired with its value, as produced by {!rank}. *)
type ranked = { index : int; value : float }

(** [rank values] returns the indices sorted by value descending; equal
    values keep index order, making every score deterministic. *)
val rank : float array -> ranked array

(** [boundary ~n ~cutoff] is where the top [cutoff] quantile of [n]
    items ends: the number of items taken whole and the fractional
    weight of the next item. The float product [cutoff * n] is snapped
    to the nearest integer when within relative rounding error of it,
    so cutoffs that are exact in rational arithmetic (0.3 of 10 items =
    3) never lose a whole item to a last-bit float error. *)
val boundary : n:int -> cutoff:float -> int * float

(** [quantile_weight order actual cutoff] sums [actual] over the top
    [cutoff] fraction of [order], weighting the boundary item
    fractionally. *)
val quantile_weight : ranked array -> float array -> float -> float

(** [score ~estimate ~actual ~cutoff] is the weight-matching score in
    [0, 1]. A perfect estimate (or one that only differs within ties of
    [actual]) scores [1.0]; an empty entity set or an all-zero [actual]
    scores [1.0] by convention.

    @raise Invalid_argument if the arrays differ in length or [cutoff] is
    outside [(0, 1]]. *)
val score : estimate:float array -> actual:float array -> cutoff:float -> float

(** [weighted_mean pairs] averages [(score, weight)] pairs, e.g.
    per-function scores weighted by dynamic invocation counts (paper
    section 4.2). Returns [0.0] when the total weight is zero. *)
val weighted_mean : (float * float) list -> float
