(* water_mini: a velocity-Verlet N-body simulation with a Lennard-Jones
   style pair force and periodic boundaries — the analogue of the SPEC
   "water" molecular-dynamics code. Double-precision inner loops over all
   pairs, plus an energy check each step. *)

let source = {|
#define MAX_P 64

double pos_x[MAX_P]; double pos_y[MAX_P]; double pos_z[MAX_P];
double vel_x[MAX_P]; double vel_y[MAX_P]; double vel_z[MAX_P];
double frc_x[MAX_P]; double frc_y[MAX_P]; double frc_z[MAX_P];
int n_particles;
double box_size;

double wrap_coord(double x) {
  while (x >= box_size) x -= box_size;
  while (x < 0.0) x += box_size;
  return x;
}

double min_image(double d) {
  if (d > box_size * 0.5) return d - box_size;
  if (d < -box_size * 0.5) return d + box_size;
  return d;
}

void init_particles(int seed) {
  int i, state = seed;
  for (i = 0; i < n_particles; i++) {
    state = (state * 1103515245 + 12345) & 0x7fffffff;
    pos_x[i] = (double)(state % 1000) * box_size / 1000.0;
    state = (state * 1103515245 + 12345) & 0x7fffffff;
    pos_y[i] = (double)(state % 1000) * box_size / 1000.0;
    state = (state * 1103515245 + 12345) & 0x7fffffff;
    pos_z[i] = (double)(state % 1000) * box_size / 1000.0;
    vel_x[i] = 0.0;
    vel_y[i] = 0.0;
    vel_z[i] = 0.0;
  }
}

void zero_forces(void) {
  int i;
  for (i = 0; i < n_particles; i++) {
    frc_x[i] = 0.0;
    frc_y[i] = 0.0;
    frc_z[i] = 0.0;
  }
}

/* Pairwise force accumulation; the O(n^2) hot loop. */
double compute_forces(void) {
  int i, j;
  double dx, dy, dz, r2, inv2, inv6, f, pot = 0.0;
  zero_forces();
  for (i = 0; i < n_particles; i++) {
    for (j = i + 1; j < n_particles; j++) {
      dx = min_image(pos_x[i] - pos_x[j]);
      dy = min_image(pos_y[i] - pos_y[j]);
      dz = min_image(pos_z[i] - pos_z[j]);
      r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < 0.81) r2 = 0.81;  /* soft-core clamp keeps the integrator stable */
      if (r2 < 6.25) {
        inv2 = 1.0 / r2;
        inv6 = inv2 * inv2 * inv2;
        f = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
        pot += 4.0 * inv6 * (inv6 - 1.0);
        frc_x[i] += f * dx; frc_x[j] -= f * dx;
        frc_y[i] += f * dy; frc_y[j] -= f * dy;
        frc_z[i] += f * dz; frc_z[j] -= f * dz;
      }
    }
  }
  return pot;
}

void integrate(double dt) {
  int i;
  for (i = 0; i < n_particles; i++) {
    vel_x[i] += frc_x[i] * dt;
    vel_y[i] += frc_y[i] * dt;
    vel_z[i] += frc_z[i] * dt;
    pos_x[i] = wrap_coord(pos_x[i] + vel_x[i] * dt);
    pos_y[i] = wrap_coord(pos_y[i] + vel_y[i] * dt);
    pos_z[i] = wrap_coord(pos_z[i] + vel_z[i] * dt);
  }
}

double kinetic_energy(void) {
  int i;
  double ke = 0.0;
  for (i = 0; i < n_particles; i++)
    ke += vel_x[i] * vel_x[i] + vel_y[i] * vel_y[i] + vel_z[i] * vel_z[i];
  return ke * 0.5;
}

int main(int argc, char **argv) {
  int steps = 40, step, n = 32;
  double pot = 0.0, dt = 0.001;
  if (argc > 1) n = atoi(argv[1]);
  if (argc > 2) steps = atoi(argv[2]);
  if (n > MAX_P) n = MAX_P;
  n_particles = n;
  box_size = 8.0;
  init_particles(7);
  for (step = 0; step < steps; step++) {
    pot = compute_forces();
    integrate(dt);
  }
  printf("n=%d steps=%d ke=%.4f pot=%.4f x0=%.4f\n", n_particles, steps,
         kinetic_energy(), pot, pos_x[0]);
  return 0;
}
|}

let program : Bench_prog.t =
  { Bench_prog.name = "water_mini";
    description = "Lennard-Jones N-body dynamics (velocity Verlet)";
    analogue = "water";
    source;
    runs =
      [ Bench_prog.run ~argv:[ "32"; "40" ] ();
        Bench_prog.run ~argv:[ "48"; "25" ] ();
        Bench_prog.run ~argv:[ "16"; "80" ] ();
        Bench_prog.run ~argv:[ "64"; "15" ] () ] }
