(* Crash-safe persistence for the incremental store: an append-only
   journal plus periodic atomic snapshots, both in one store directory.

   The contract is the one a long-lived estimator daemon needs: a
   process killed at *any* instruction — mid-append, mid-snapshot,
   mid-rename — must restart into a store that is a prefix of what it
   had, never a corrupt one. Three mechanisms carry that:

   - every entry is length-prefixed and carries an MD5 of its body;
     loading stops at the first entry whose length or digest does not
     check out and truncates the file there, so a torn tail write
     costs exactly the torn entries, nothing before them;
   - snapshots are written to a temp file in the same directory,
     fsynced, then renamed over the live snapshot — readers only ever
     see the old complete snapshot or the new complete one;
   - both files open with a magic + format-version header, so a format
     bump self-invalidates old stores (the loader starts cold instead
     of misreading bytes).

   What is persisted: only [Intra] payloads — plain float arrays keyed
   by content hashes that already fold in the config fingerprint and
   solver mode (Driver.Incr), so a restored entry can never be stale
   relative to the knobs of the process reading it. Compiled programs
   and profiles hold closures and interpreter state; they are cheap to
   rebuild relative to the Markov solves and are deliberately not
   written to disk.

   Concurrency: callers (Driver.Incr) serialize all calls under their
   own store mutex; this module keeps no lock of its own. Each journal
   append is a single [Unix.write] of a fully built buffer, which
   minimizes the torn-write window without needing fsync per entry
   (fsync guards against OS crashes; the threat model here is process
   death, where OS-buffered writes survive).

   Fault injection: the ["persist.append"] and ["persist.snapshot"]
   points fire here so chaos runs exercise persistence failures;
   callers absorb them as [Persist]-stage faults — a failed append
   loses one entry's durability, never the daemon. *)

let magic = "ESTSTORE"
let version = 1

let journal_name = "journal.bin"
let snapshot_name = "snapshot.bin"

let default_snapshot_threshold = 4 * 1024 * 1024

type t = {
  dir : string;
  snapshot_threshold : int;
  mutable jfd : Unix.file_descr option;
  mutable journal_bytes : int;   (* payload bytes past the header *)
  mutable journal_entries : int;
  mutable snapshots : int;       (* snapshots taken by this handle *)
}

(* ------------------------------------------------------------------ *)
(* Little-endian primitive writers into a Buffer. *)

let add_u32 buf (n : int) =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let add_f64 buf (v : float) =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let get_u32 (s : string) (off : int) : int =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let get_f64 (s : string) (off : int) : float =
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits := Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code s.[off + i]))
  done;
  Int64.float_of_bits !bits

(* ------------------------------------------------------------------ *)
(* Entry encoding: [u32 body_len][body][16-byte MD5(body)], where
   body = [u32 key_len][key]['I'][u32 n][n × f64]. The tag byte leaves
   room for future payload kinds without a version bump. *)

let digest_len = 16

let encode_entry ~(key : string) (values : float array) : string =
  let body = Buffer.create (String.length key + (8 * Array.length values) + 16) in
  add_u32 body (String.length key);
  Buffer.add_string body key;
  Buffer.add_char body 'I';
  add_u32 body (Array.length values);
  Array.iter (fun v -> add_f64 body v) values;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + 4 + digest_len) in
  add_u32 out (String.length body);
  Buffer.add_string out body;
  Buffer.add_string out (Digest.string body);
  Buffer.contents out

(* Decode the entry starting at [off]; [None] on any inconsistency
   (short length, digest mismatch, bad tag, truncated body). *)
let decode_entry (s : string) (off : int) :
    ((string * float array) * int) option =
  let len = String.length s in
  if off + 4 > len then None
  else
    let body_len = get_u32 s off in
    if body_len < 9 || off + 4 + body_len + digest_len > len then None
    else
      let body = String.sub s (off + 4) body_len in
      let digest = String.sub s (off + 4 + body_len) digest_len in
      if Digest.string body <> digest then None
      else
        let key_len = get_u32 body 0 in
        if key_len < 0 || 4 + key_len + 5 > body_len then None
        else
          let key = String.sub body 4 key_len in
          if body.[4 + key_len] <> 'I' then None
          else
            let n = get_u32 body (5 + key_len) in
            if 9 + key_len + (8 * n) <> body_len then None
            else
              let values =
                Array.init n (fun i -> get_f64 body (9 + key_len + (8 * i)))
              in
              Some ((key, values), off + 4 + body_len + digest_len)

let header : string =
  let buf = Buffer.create 12 in
  Buffer.add_string buf magic;
  add_u32 buf version;
  Buffer.contents buf

let header_len = String.length header

(* ------------------------------------------------------------------ *)
(* Reading a store file: entries up to the first corrupt/torn one. The
   file is truncated at the corruption point so the next writer appends
   after valid bytes only. Returns [] (and truncates to nothing) on a
   bad or missing header — a format bump reads as corruption at byte 0
   and self-invalidates the whole file. *)

type load = {
  l_entries : (string * float array) list;
  l_valid_bytes : int;      (* file size after truncation *)
  l_truncated : bool;       (* a torn/corrupt tail was cut off *)
}

let read_whole_file (path : string) : string option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let truncate_file (path : string) (size : int) : unit =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd size)

let load_file (path : string) : load =
  match read_whole_file path with
  | None -> { l_entries = []; l_valid_bytes = 0; l_truncated = false }
  | Some s ->
    let len = String.length s in
    if len < header_len || String.sub s 0 header_len <> header then begin
      (* unknown format or torn header: the whole file is invalid *)
      if len > 0 then truncate_file path 0;
      { l_entries = []; l_valid_bytes = 0; l_truncated = len > 0 }
    end
    else begin
      let rec go acc off =
        if off >= len then (List.rev acc, off)
        else
          match decode_entry s off with
          | Some (entry, next) -> go (entry :: acc) next
          | None -> (List.rev acc, off)
      in
      let entries, valid = go [] header_len in
      if valid < len then truncate_file path valid;
      { l_entries = entries; l_valid_bytes = valid; l_truncated = valid < len }
    end

(* ------------------------------------------------------------------ *)
(* The store handle. *)

let journal_path t = Filename.concat t.dir journal_name
let snapshot_path t = Filename.concat t.dir snapshot_name

let dir t = t.dir
let journal_bytes t = t.journal_bytes
let journal_entries t = t.journal_entries
let snapshots t = t.snapshots

let needs_snapshot t = t.journal_bytes >= t.snapshot_threshold

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

(* Open (creating if absent) the journal for appending; writes the
   header on an empty file. *)
let open_journal t =
  let fd =
    Unix.openfile (journal_path t)
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
      0o644
  in
  let size = (Unix.fstat fd).Unix.st_size in
  if size = 0 then write_all fd header;
  t.jfd <- Some fd

(* Best-effort directory fsync so a rename survives an OS crash too;
   ignored where directories cannot be opened for reading. *)
let fsync_dir (dir : string) : unit =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

(* [open_store dir] loads snapshot then journal (journal wins on a
   shared key — same content anyway for content-addressed keys), each
   truncated at its first invalid entry, and leaves the journal open
   for appends. *)
let open_store ?(snapshot_threshold = default_snapshot_threshold)
    (dir : string) : t * (string * float array) list * bool =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let t =
    { dir; snapshot_threshold; jfd = None; journal_bytes = 0;
      journal_entries = 0; snapshots = 0 }
  in
  (* A crash between writing snapshot.tmp and renaming it leaves the
     tmp file behind; it is unreferenced garbage — remove it. *)
  let tmp = snapshot_path t ^ ".tmp" in
  if Sys.file_exists tmp then (try Sys.remove tmp with Sys_error _ -> ());
  let snap = load_file (snapshot_path t) in
  let jour = load_file (journal_path t) in
  let merged : (string, float array) Hashtbl.t = Hashtbl.create 256 in
  let order : string list ref = ref [] in
  List.iter
    (fun (k, v) ->
      if not (Hashtbl.mem merged k) then order := k :: !order;
      Hashtbl.replace merged k v)
    (snap.l_entries @ jour.l_entries);
  let entries =
    List.rev_map (fun k -> (k, Hashtbl.find merged k)) !order
  in
  t.journal_bytes <- max 0 (jour.l_valid_bytes - header_len);
  t.journal_entries <- List.length jour.l_entries;
  open_journal t;
  (t, entries, snap.l_truncated || jour.l_truncated)

(* Append one entry to the journal: one [write] of the whole framed
   entry. Raises on injection or I/O failure; callers absorb. *)
let append t ~(key : string) (values : float array) : unit =
  Obs.Inject.fire "persist.append" ~key;
  match t.jfd with
  | None -> ()
  | Some fd ->
    let entry = encode_entry ~key values in
    write_all fd entry;
    t.journal_bytes <- t.journal_bytes + String.length entry;
    t.journal_entries <- t.journal_entries + 1

(* Atomically replace the snapshot with [entries] and reset the
   journal. Crash windows: before the rename, the old snapshot + full
   journal still load; between rename and journal truncation, entries
   appear in both files — the load path dedups. *)
let snapshot t (entries : (string * float array) list) : unit =
  Obs.Inject.fire "persist.snapshot" ~key:"snapshot";
  let tmp = snapshot_path t ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let buf = Buffer.create (64 * 1024) in
      Buffer.add_string buf header;
      List.iter
        (fun (key, values) ->
          Buffer.add_string buf (encode_entry ~key values))
        entries;
      write_all fd (Buffer.contents buf);
      Unix.fsync fd);
  Unix.rename tmp (snapshot_path t);
  fsync_dir t.dir;
  (* Reset the journal: close, truncate to a fresh header, reopen. *)
  (match t.jfd with Some fd -> Unix.close fd | None -> ());
  t.jfd <- None;
  truncate_file (journal_path t) 0;
  t.journal_bytes <- 0;
  t.journal_entries <- 0;
  t.snapshots <- t.snapshots + 1;
  open_journal t

let close t : unit =
  (match t.jfd with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  t.jfd <- None
