(* Abstract syntax for the C subset.

   Every expression and statement carries a unique node id (per translation
   unit); the type checker, CFG builder, estimators and interpreter all key
   side tables by these ids, so the AST itself stays immutable. *)

type node_id = int

type unop =
  | Uneg            (* -e *)
  | Uplus           (* +e *)
  | Unot            (* !e *)
  | Ubnot           (* ~e *)
  | Uderef          (* *e *)
  | Uaddr           (* &e *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Bshl | Bshr
  | Blt | Bgt | Ble | Bge | Beq | Bne
  | Bband | Bbor | Bbxor
  | Bland | Blor            (* short-circuit && and || *)

type assign_op =
  | Aplain
  | Aadd | Asub | Amul | Adiv | Amod
  | Aband | Abor | Abxor | Ashl | Ashr

type expr = { eid : node_id; epos : Token.pos; enode : expr_node }

and expr_node =
  | IntLit of int
  | FloatLit of float
  | CharLit of int
  | StringLit of string
  | Ident of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of assign_op * expr * expr
  | Cond of expr * expr * expr          (* c ? a : b *)
  | Call of expr * expr list
  | Cast of Ctypes.ty * expr
  | Index of expr * expr                (* a[i] *)
  | Field of expr * string              (* a.f *)
  | Arrow of expr * string              (* a->f *)
  | SizeofT of Ctypes.ty
  | SizeofE of expr
  | PreIncr of expr | PreDecr of expr
  | PostIncr of expr | PostDecr of expr
  | Comma of expr * expr

type init = Iexpr of expr | Ilist of init list

type decl = {
  d_id : node_id;
  d_pos : Token.pos;
  d_name : string;
  d_ty : Ctypes.ty;
  d_init : init option;
  d_static : bool;          (* file- or block-scope [static] *)
  d_extern : bool;
}

type stmt = { sid : node_id; spos : Token.pos; snode : stmt_node }

and stmt_node =
  | Sexpr of expr
  | Sblock of block_item list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of for_init * expr option * expr option * stmt
  | Sswitch of expr * stmt
  | Scase of expr * stmt
  | Sdefault of stmt
  | Sbreak
  | Scontinue
  | Sgoto of string
  | Slabel of string * stmt
  | Sreturn of expr option
  | Snull

and for_init =
  | Fnone
  | Fexpr of expr
  | Fdecl of decl list

and block_item = Bstmt of stmt | Bdecl of decl

type fundef = {
  f_id : node_id;
  f_pos : Token.pos;
  f_name : string;
  f_ret : Ctypes.ty;
  f_params : (string * Ctypes.ty) list;
  f_varargs : bool;
  f_static : bool;
  f_body : stmt;
}

type global =
  | Gfun of fundef
  | Gvar of decl
  | Gfundecl of decl        (* function prototype, no body *)

type tunit = {
  globals : global list;
  structs : Ctypes.registry;
  enum_consts : (string * int) list;   (* enum constants, values resolved *)
  node_count : int;                    (* node ids are in [0, node_count) *)
  file : string;
}

(* Helpers used by heuristics and pretty printers. *)

let is_comparison = function
  | Blt | Bgt | Ble | Bge | Beq | Bne -> true
  | _ -> false

let unop_to_string = function
  | Uneg -> "-" | Uplus -> "+" | Unot -> "!" | Ubnot -> "~"
  | Uderef -> "*" | Uaddr -> "&"

let binop_to_string = function
  | Badd -> "+" | Bsub -> "-" | Bmul -> "*" | Bdiv -> "/" | Bmod -> "%"
  | Bshl -> "<<" | Bshr -> ">>"
  | Blt -> "<" | Bgt -> ">" | Ble -> "<=" | Bge -> ">=" | Beq -> "=="
  | Bne -> "!="
  | Bband -> "&" | Bbor -> "|" | Bbxor -> "^"
  | Bland -> "&&" | Blor -> "||"

let assign_op_to_string = function
  | Aplain -> "=" | Aadd -> "+=" | Asub -> "-=" | Amul -> "*=" | Adiv -> "/="
  | Amod -> "%=" | Aband -> "&=" | Abor -> "|=" | Abxor -> "^="
  | Ashl -> "<<=" | Ashr -> ">>="

(* The arithmetic binop corresponding to a compound assignment. *)
let binop_of_assign = function
  | Aplain -> None
  | Aadd -> Some Badd | Asub -> Some Bsub | Amul -> Some Bmul
  | Adiv -> Some Bdiv | Amod -> Some Bmod
  | Aband -> Some Bband | Abor -> Some Bbor | Abxor -> Some Bbxor
  | Ashl -> Some Bshl | Ashr -> Some Bshr

(* Count the top-level short-circuit && conjuncts of a condition, looking
   through parentheses (which the parser already drops). Used by the
   multi-AND branch heuristic. *)
let rec count_conjuncts e =
  match e.enode with
  | Binop (Bland, a, b) -> count_conjuncts a + count_conjuncts b
  | _ -> 1

(* Iterate over all sub-expressions of [e], including [e] itself. *)
let rec iter_expr f e =
  f e;
  match e.enode with
  | IntLit _ | FloatLit _ | CharLit _ | StringLit _ | Ident _ | SizeofT _ -> ()
  | Unop (_, a) | Cast (_, a) | SizeofE a
  | PreIncr a | PreDecr a | PostIncr a | PostDecr a
  | Field (a, _) | Arrow (a, _) ->
    iter_expr f a
  | Binop (_, a, b) | Assign (_, a, b) | Index (a, b) | Comma (a, b) ->
    iter_expr f a; iter_expr f b
  | Cond (a, b, c) -> iter_expr f a; iter_expr f b; iter_expr f c
  | Call (fn, args) -> iter_expr f fn; List.iter (iter_expr f) args

(* Iterate over all statements of [s] (including [s]) and all expressions
   they contain. [on_stmt] runs before descending. *)
let rec iter_stmt ~on_stmt ~on_expr s =
  on_stmt s;
  let e = iter_expr on_expr in
  match s.snode with
  | Sexpr x -> e x
  | Sblock items ->
    List.iter
      (function
        | Bstmt s -> iter_stmt ~on_stmt ~on_expr s
        | Bdecl d -> iter_init ~on_expr d.d_init)
      items
  | Sif (c, t, f) ->
    e c;
    iter_stmt ~on_stmt ~on_expr t;
    Option.iter (iter_stmt ~on_stmt ~on_expr) f
  | Swhile (c, b) -> e c; iter_stmt ~on_stmt ~on_expr b
  | Sdo (b, c) -> iter_stmt ~on_stmt ~on_expr b; e c
  | Sfor (init, cond, step, b) ->
    (match init with
     | Fnone -> ()
     | Fexpr x -> e x
     | Fdecl ds -> List.iter (fun d -> iter_init ~on_expr d.d_init) ds);
    Option.iter e cond;
    Option.iter e step;
    iter_stmt ~on_stmt ~on_expr b
  | Sswitch (c, b) -> e c; iter_stmt ~on_stmt ~on_expr b
  | Scase (c, b) -> e c; iter_stmt ~on_stmt ~on_expr b
  | Sdefault b | Slabel (_, b) -> iter_stmt ~on_stmt ~on_expr b
  | Sreturn (Some x) -> e x
  | Sbreak | Scontinue | Sgoto _ | Sreturn None | Snull -> ()

and iter_init ~on_expr = function
  | None -> ()
  | Some (Iexpr e) -> iter_expr on_expr e
  | Some (Ilist l) -> List.iter (fun i -> iter_init ~on_expr (Some i)) l

let fundefs tunit =
  List.filter_map (function Gfun f -> Some f | _ -> None) tunit.globals
