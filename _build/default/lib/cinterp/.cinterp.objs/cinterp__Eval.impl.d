lib/cinterp/eval.ml: Array Builtins Cfg_ir Cfront Format Hashtbl List Memory Option Profile String Value
