test/test_const_fold.ml: Alcotest Ast Cfront Const_fold List Parser Printf Typecheck
