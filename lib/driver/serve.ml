(* The estimator server: a long-running daemon speaking newline-
   delimited JSON over a channel pair (bin serve wires it to
   stdin/stdout), answering from the warm incremental store.

   Framing. One request per line; a *blank line* (or EOF) closes a
   batch. All [analyze] requests that are adjacent within a batch fan
   out together through [Parallel.map]; the control operations
   ([scores], [invalidate], [stats], [resize], [shutdown]) are
   sequential barriers between fan-outs. Responses are written one per
   line, in request order, after the whole batch has been processed,
   then flushed — so a client that writes N lines and a blank line
   reads exactly N lines back.

   Requests:   {"id": .., "op": "analyze", "name": s, "source": s,
                "kinds": [s..]?, "runs": [{"argv": [s..], "input": s}..]?}
               {"id": .., "op": "scores", "name": s}
               {"id": .., "op": "invalidate", "name": s?}
               {"id": .., "op": "stats"}
               {"id": .., "op": "resize", "jobs": n}
               {"id": .., "op": "shutdown"}
   Responses:  {"id": .., "ok": true, ...}    (per-op payload below)
             | {"id": .., "ok": false, "error": {"stage": s,
                "subject": s, "detail": s, "exn": s, "recovery": s}}

   The [id] is echoed verbatim (any JSON value; [null] when the
   request had none or did not parse).

   Fault isolation. Each request body runs under [Fault.capture] with
   the PR-4 taxonomy: a bad source degrades exactly one response —
   carrying the fault's stage/exn detail — and never the daemon. The
   fault log is reset after every batch so a long-running daemon's
   memory stays bounded; clients that care read [stats.faults] (the
   count for the current batch's log) before it resets. A [shutdown]
   answers [ok] and stops after its batch; requests queued *behind* it
   in the same batch get an error response rather than silence. *)

module Json = Obs.Json

type request = { rq_id : Json.t; rq_op : string; rq_body : Json.t }

(* ------------------------------------------------------------------ *)
(* Parsing. *)

let member_str (name : string) (j : Json.t) : string option =
  Option.bind (Json.member name j) Json.to_str

let parse_request (line : string) : (request, Json.t * string) result =
  match Json.parse line with
  | Error msg -> Error (Json.Null, "request is not valid JSON: " ^ msg)
  | Ok j ->
    let id = Option.value ~default:Json.Null (Json.member "id" j) in
    (match member_str "op" j with
    | None -> Error (id, "request has no \"op\" field")
    | Some op -> Ok { rq_id = id; rq_op = op; rq_body = j })

let parse_kinds (j : Json.t) :
    (Core.Pipeline.intra_kind list option, string) result =
  match Json.member "kinds" j with
  | None -> Ok None
  | Some ks ->
    (match Json.to_list ks with
    | None -> Error "\"kinds\" is not an array"
    | Some items ->
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | item :: rest ->
          (match Option.bind (Json.to_str item) Core.Pipeline.intra_kind_of_string with
          | Some k -> go (k :: acc) rest
          | None ->
            Error
              (Printf.sprintf "unknown intra kind %s"
                 (Json.to_compact_string item)))
      in
      go [] items)

let parse_runs (j : Json.t) :
    (Core.Pipeline.run list, string) result =
  match Json.member "runs" j with
  | None -> Ok []
  | Some rs ->
    (match Json.to_list rs with
    | None -> Error "\"runs\" is not an array"
    | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
          let argv =
            match Option.bind (Json.member "argv" item) Json.to_list with
            | None -> Some []
            | Some l ->
              let strs = List.filter_map Json.to_str l in
              if List.length strs = List.length l then Some strs else None
          in
          let input =
            match Json.member "input" item with
            | None -> Some ""
            | Some v -> Json.to_str v
          in
          (match (argv, input) with
          | Some argv, Some input ->
            go ({ Core.Pipeline.argv; input } :: acc) rest
          | _ -> Error "each run is {\"argv\": [str..], \"input\": str}")
      in
      go [] items)

(* ------------------------------------------------------------------ *)
(* Responses. *)

let ok_response (id : Json.t) (fields : (string * Json.t) list) : Json.t =
  Json.Obj (("id", id) :: ("ok", Json.Bool true) :: fields)

let fault_error (id : Json.t) (f : Fault.t) : Json.t =
  Json.Obj
    [ ("id", id); ("ok", Json.Bool false);
      ("error",
       Json.Obj
         [ ("stage", Json.Str (Fault.stage_to_string f.Fault.f_stage));
           ("subject", Json.Str f.Fault.f_subject);
           ("detail", Json.Str f.Fault.f_detail);
           ("exn", Json.Str f.Fault.f_exn);
           ("recovery", Json.Str f.Fault.f_recovery) ])
    ]

let plain_error (id : Json.t) (detail : string) : Json.t =
  fault_error id
    { Fault.f_stage = Fault.Experiment; f_subject = "serve";
      f_detail = detail; f_exn = ""; f_backtrace = "";
      f_recovery = "request rejected; daemon keeps serving" }

(* ------------------------------------------------------------------ *)
(* Per-request handlers. *)

(* Last successful analysis per program name, so [scores] can answer
   without re-running anything. Written only from the sequential merge
   path of [handle_batch]; bounded by the number of distinct names. *)
let last_scores : (string, Score.t list) Hashtbl.t = Hashtbl.create 64

let scores_json (scores : Score.t list) : Json.t =
  Json.Arr (List.map Run_record.score_to_json scores)

let analysis_response (id : Json.t) (a : Incr.analysis) : Json.t =
  ok_response id
    [ ("name", Json.Str a.Incr.an_name);
      ("program_hit", Json.Bool a.Incr.an_program_hit);
      ("profile_hit",
       match a.Incr.an_profile_hit with
       | None -> Json.Null
       | Some h -> Json.Bool h);
      ("fn_hits", Json.Num (float_of_int a.Incr.an_fn_hits));
      ("fn_misses", Json.Num (float_of_int a.Incr.an_fn_misses));
      ("fn_hashes",
       Json.Obj
         (List.map (fun (fn, h) -> (fn, Json.Str h)) a.Incr.an_fn_hashes));
      ("scores", scores_json a.Incr.an_scores) ]

(* The parallel part of [analyze]: everything except the response-cache
   write, which the merge path does sequentially. *)
let run_analyze (rq : request) : (Incr.analysis, Json.t) result =
  match member_str "name" rq.rq_body with
  | None -> Error (plain_error rq.rq_id "analyze needs a \"name\" field")
  | Some name ->
    (match member_str "source" rq.rq_body with
    | None -> Error (plain_error rq.rq_id "analyze needs a \"source\" field")
    | Some source ->
      (match parse_kinds rq.rq_body with
      | Error msg -> Error (plain_error rq.rq_id msg)
      | Ok kinds ->
        (match parse_runs rq.rq_body with
        | Error msg -> Error (plain_error rq.rq_id msg)
        | Ok runs ->
          (match
             Fault.capture ~stage:Fault.Experiment ~subject:name
               ~detail:"serve analyze"
               ~recovery:"request answered with an error response"
               (fun () -> Incr.analyze ?kinds ~runs ~name source)
           with
          | Ok a -> Ok a
          | Error f -> Error (fault_error rq.rq_id f)))))

let handle_control (stop : bool ref) (rq : request) : Json.t =
  match rq.rq_op with
  | "scores" ->
    (match member_str "name" rq.rq_body with
    | None -> plain_error rq.rq_id "scores needs a \"name\" field"
    | Some name ->
      (match Hashtbl.find_opt last_scores name with
      | None ->
        plain_error rq.rq_id
          (Printf.sprintf "no analysis on record for %S" name)
      | Some scores ->
        ok_response rq.rq_id
          [ ("name", Json.Str name); ("scores", scores_json scores) ]))
  | "invalidate" ->
    (match member_str "name" rq.rq_body with
    | Some name ->
      let dropped = Incr.invalidate ~name in
      Hashtbl.remove last_scores name;
      ok_response rq.rq_id
        [ ("name", Json.Str name);
          ("dropped", Json.Num (float_of_int dropped)) ]
    | None ->
      Incr.clear ();
      Hashtbl.reset last_scores;
      ok_response rq.rq_id [ ("cleared", Json.Bool true) ])
  | "stats" ->
    let st = Incr.stats () in
    let num i = Json.Num (float_of_int i) in
    ok_response rq.rq_id
      [ ("entries", num st.Incr.st_entries);
        ("bytes", num st.Incr.st_bytes);
        ("budget", num st.Incr.st_budget);
        ("hits", num st.Incr.st_hits);
        ("misses", num st.Incr.st_misses);
        ("evictions", num st.Incr.st_evictions);
        ("bypasses", num st.Incr.st_bypasses);
        ("jobs", num (Parallel.jobs ()));
        ("pool_size",
         match Parallel.pool_size () with
         | None -> Json.Null
         | Some s -> num s);
        ("faults", num (Fault.count ()));
        (* Re-read per request — a long-running daemon must report the
           repository's rev as it is *now*, not at startup. *)
        ("git_rev", Json.Str (Obs.Envmeta.git_rev ())) ]
  | "resize" ->
    (match Option.bind (Json.member "jobs" rq.rq_body) Json.to_num with
    | None -> plain_error rq.rq_id "resize needs a numeric \"jobs\" field"
    | Some n ->
      Parallel.set_jobs (int_of_float n);
      ok_response rq.rq_id [ ("jobs", Json.Num (float_of_int (Parallel.jobs ()))) ])
  | "shutdown" ->
    stop := true;
    ok_response rq.rq_id [ ("stopping", Json.Bool true) ]
  | op -> plain_error rq.rq_id (Printf.sprintf "unknown op %S" op)

(* ------------------------------------------------------------------ *)
(* Batch execution. *)

(* Split a batch into maximal runs of adjacent analyzes (parallel) and
   single control requests (barriers), preserving order. *)
type group =
  | Analyzes of (int * request) list  (* original indices *)
  | Control of int * request
  | Malformed of int * Json.t  (* ready-made error response *)

let group_requests (lines : string list) : group list =
  let parsed =
    List.mapi (fun i line -> (i, parse_request line)) lines
  in
  let flush_run acc run =
    match run with [] -> acc | run -> Analyzes (List.rev run) :: acc
  in
  let rec go acc run = function
    | [] -> List.rev (flush_run acc run)
    | (i, Error (id, msg)) :: rest ->
      go (Malformed (i, plain_error id msg) :: flush_run acc run) [] rest
    | (i, Ok rq) :: rest when rq.rq_op = "analyze" ->
      go acc ((i, rq) :: run) rest
    | (i, Ok rq) :: rest ->
      go (Control (i, rq) :: flush_run acc run) [] rest
  in
  go [] [] parsed

let handle_batch (stop : bool ref) (lines : string list) : Json.t list =
  let n = List.length lines in
  let responses = Array.make n Json.Null in
  List.iter
    (fun group ->
      match group with
      | Malformed (i, resp) -> responses.(i) <- resp
      | _ when !stop ->
        let reject i (rq : request) =
          responses.(i) <-
            plain_error rq.rq_id "server is shutting down"
        in
        (match group with
        | Analyzes rqs -> List.iter (fun (i, rq) -> reject i rq) rqs
        | Control (i, rq) -> reject i rq
        | Malformed _ -> ())
      | Control (i, rq) -> responses.(i) <- handle_control stop rq
      | Analyzes rqs ->
        let outcomes =
          Parallel.map (fun (_, rq) -> run_analyze rq) rqs
        in
        List.iter2
          (fun (i, rq) outcome ->
            match outcome with
            | Ok a ->
              ignore rq;
              Hashtbl.replace last_scores a.Incr.an_name a.Incr.an_scores;
              responses.(i) <- analysis_response rq.rq_id a
            | Error resp -> responses.(i) <- resp)
          rqs outcomes)
    (group_requests lines);
  Array.to_list responses

(* ------------------------------------------------------------------ *)
(* The daemon loop. *)

let serve (ic : in_channel) (oc : out_channel) : unit =
  Incr.install ();
  Fun.protect
    ~finally:(fun () -> Incr.uninstall ())
    (fun () ->
      let stop = ref false in
      let read_batch () =
        let rec go acc =
          match input_line ic with
          | exception End_of_file ->
            if acc = [] then None else Some (List.rev acc)
          | "" -> if acc = [] then go [] else Some (List.rev acc)
          | line -> go (line :: acc)
        in
        go []
      in
      let rec loop () =
        if not !stop then
          match read_batch () with
          | None -> ()
          | Some lines ->
            let responses = handle_batch stop lines in
            List.iter
              (fun r ->
                output_string oc (Json.to_compact_string r);
                output_char oc '\n')
              responses;
            flush oc;
            (* Bound the daemon's memory: the fault log only ever holds
               the current batch's faults. *)
            Fault.reset ();
            loop ()
      in
      loop ())
