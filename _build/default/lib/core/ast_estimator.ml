(* The AST-based intra-procedural estimators (paper section 4.2).

   A single top-down walk assigns each statement an execution frequency
   relative to one entry of the function (entry = 1): loop bodies get the
   standard 5-iteration treatment, conditional arms split the incoming
   frequency. The [Loop] mode splits branches 50/50; [Smart] applies the
   branch-prediction heuristics with probability 0.8 for the predicted
   arm. Switch arms are weighted by their number of case labels. As in
   the paper, the walk ignores break/continue/goto/return.

   Frequencies are then mapped onto CFG basic blocks through the "first
   statement lowered into the block" link recorded by the CFG builder. *)

module Ast = Cfront.Ast
module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Cfg = Cfg_ir.Cfg

type mode = Loop | Smart

let mode_to_string = function Loop -> "loop" | Smart -> "smart"

(* Count the case labels of a switch body without entering nested
   switches. The implicit fall-past-every-case path counts as one extra
   arm when there is no default. *)
let count_labels (body : Ast.stmt) : int * bool =
  let labels = ref 0 in
  let has_default = ref false in
  let rec go (s : Ast.stmt) =
    match s.Ast.snode with
    | Ast.Scase (_, b) ->
      incr labels;
      go b
    | Ast.Sdefault b ->
      has_default := true;
      incr labels;
      go b
    | Ast.Sblock items ->
      List.iter (function Ast.Bstmt s -> go s | Ast.Bdecl _ -> ()) items
    | Ast.Sif (_, t, f) ->
      go t;
      Option.iter go f
    | Ast.Swhile (_, b) | Ast.Sdo (b, _) | Ast.Sfor (_, _, _, b)
    | Ast.Slabel (_, b) ->
      go b
    | Ast.Sswitch _ -> () (* nested switch owns its labels *)
    | Ast.Sexpr _ | Ast.Sbreak | Ast.Scontinue | Ast.Sgoto _ | Ast.Sreturn _
    | Ast.Snull ->
      ()
  in
  go body;
  (!labels, !has_default)

(* How many case labels directly mark statement [s] (case a: case b: s). *)
let rec marker_count (s : Ast.stmt) : int =
  match s.Ast.snode with
  | Ast.Scase (_, b) | Ast.Sdefault b -> 1 + marker_count b
  | _ -> 0

type ctx = {
  tc : Typecheck.t;
  usage : Usage.t;
  mode : mode;
  freqs : (Ast.node_id, float) Hashtbl.t;
}

let record ctx (s : Ast.stmt) f = Hashtbl.replace ctx.freqs s.Ast.sid f

(* Probability that an if-condition is true. *)
let if_probability ctx (s : Ast.stmt) cond then_arm else_arm : float =
  match ctx.mode with
  | Loop -> 0.5
  | Smart -> begin
    match
      Branch_predictor.predict_if ctx.tc ctx.usage s cond
        ~then_arm:(Some then_arm) ~else_arm
    with
    | Branch_predictor.Taken, _ -> Branch_predictor.taken_probability ()
    | Branch_predictor.NotTaken, _ ->
      1.0 -. Branch_predictor.taken_probability ()
  end

let rec walk ctx ~(f : float) (s : Ast.stmt) : unit =
  record ctx s f;
  match s.Ast.snode with
  | Ast.Sexpr _ | Ast.Sbreak | Ast.Scontinue | Ast.Sgoto _ | Ast.Sreturn _
  | Ast.Snull ->
    ()
  | Ast.Sblock items ->
    List.iter
      (function Ast.Bstmt s -> walk ctx ~f s | Ast.Bdecl _ -> ())
      items
  | Ast.Sif (cond, then_s, else_s) ->
    let p = if_probability ctx s cond then_s else_s in
    walk ctx ~f:(f *. p) then_s;
    Option.iter (walk ctx ~f:(f *. (1.0 -. p))) else_s
  | Ast.Swhile (_, body) ->
    (* the node itself carries the test count *)
    record ctx s (f *. Loop_model.test_executions ());
    walk ctx ~f:(f *. Loop_model.body_executions ()) body
  | Ast.Sdo (body, _) ->
    record ctx s (f *. Loop_model.do_body_executions ());
    walk ctx ~f:(f *. Loop_model.do_body_executions ()) body
  | Ast.Sfor (_, _, _, body) ->
    record ctx s (f *. Loop_model.test_executions ());
    walk ctx ~f:(f *. Loop_model.body_executions ()) body
  | Ast.Sswitch (_, body) ->
    let labels, has_default = count_labels body in
    let arms = labels + if has_default then 0 else 1 in
    let share = if arms = 0 then f else f /. float_of_int arms in
    walk_switch_body ctx ~share body
  | Ast.Scase (_, body) | Ast.Sdefault body ->
    (* A case marker outside a switch body context (e.g. buried under an
       if inside the switch): give its body the same frequency. *)
    walk ctx ~f body
  | Ast.Slabel (_, body) -> walk ctx ~f body

(* The immediate body of a switch: usually a block whose items alternate
   between case-marked statements and their continuations. The "current"
   frequency starts at 0 (statements before any label are unreachable)
   and is reset at each marker to (number of markers) * share. *)
and walk_switch_body ctx ~(share : float) (body : Ast.stmt) : unit =
  match body.Ast.snode with
  | Ast.Sblock items ->
    record ctx body share;
    let by_labels = Config.current.Config.switch_by_labels in
    let current = ref 0.0 in
    List.iter
      (function
        | Ast.Bstmt s ->
          let markers = marker_count s in
          if markers > 0 then
            current :=
              (if by_labels then float_of_int markers else 1.0) *. share;
          walk ctx ~f:!current s
        | Ast.Bdecl _ -> ())
      items
  | _ ->
    (* switch with a single (possibly case-marked) statement *)
    walk ctx ~f:(float_of_int (max 1 (marker_count body)) *. share) body

(* Per-statement frequencies for one function, entry = 1. *)
let stmt_freqs (tc : Typecheck.t) (fundef : Ast.fundef) (mode : mode) :
    (Ast.node_id, float) Hashtbl.t =
  let ctx =
    { tc; usage = Usage.of_fun tc fundef; mode; freqs = Hashtbl.create 64 }
  in
  walk ctx ~f:1.0 fundef.Ast.f_body;
  ctx.freqs

(* Map statement frequencies onto the CFG's basic blocks. Blocks that no
   statement maps to (rare empty join blocks) default to the entry
   frequency 1. *)
let block_freqs (tc : Typecheck.t) (fn : Cfg.fn) (mode : mode) : float array
    =
  let freqs = stmt_freqs tc fn.Cfg.fn_def mode in
  Array.map
    (fun (b : Cfg.block) ->
      match b.Cfg.b_src with
      | Some sid -> Option.value ~default:1.0 (Hashtbl.find_opt freqs sid)
      | None -> 1.0)
    fn.Cfg.fn_blocks
