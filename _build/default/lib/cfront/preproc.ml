(* Minimal C preprocessor.

   Supports the directives our benchmark corpus needs:
   - [#define NAME tokens...]  (object-like macros, recursive expansion)
   - [#undef NAME]
   - [#ifdef NAME] / [#ifndef NAME] / [#else] / [#endif]
   - line continuations with a trailing backslash
   - [#include] is rejected (corpus programs are self-contained)

   Macro expansion is textual at word granularity: an identifier token equal
   to a macro name is replaced by the macro body. Expansion is repeated until
   a fixpoint, with a self-reference guard to avoid loops. Function-like
   macros are not supported and raise an error so misuse is loud. *)

exception Error of string * int (* message, line *)

type t = { macros : (string, string) Hashtbl.t }

let create () = { macros = Hashtbl.create 16 }

let define t name body = Hashtbl.replace t.macros name body

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

(* Expand object-like macros in a single logical line of code, skipping
   string and character literals. *)
let expand_line t line =
  let rec pass depth s =
    if depth > 32 then s
    else begin
      let buf = Buffer.create (String.length s) in
      let n = String.length s in
      let changed = ref false in
      let i = ref 0 in
      while !i < n do
        let c = s.[!i] in
        if c = '"' || c = '\'' then begin
          (* copy literal verbatim *)
          let quote = c in
          Buffer.add_char buf c;
          incr i;
          let continue_ = ref true in
          while !continue_ && !i < n do
            let d = s.[!i] in
            Buffer.add_char buf d;
            incr i;
            if d = '\\' && !i < n then begin
              Buffer.add_char buf s.[!i];
              incr i
            end else if d = quote then continue_ := false
          done
        end
        else if is_ident_start c then begin
          let start = !i in
          while !i < n && is_ident_char s.[!i] do incr i done;
          let word = String.sub s start (!i - start) in
          match Hashtbl.find_opt t.macros word with
          | Some body when body <> word ->
            changed := true;
            Buffer.add_string buf body
          | _ -> Buffer.add_string buf word
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      let s' = Buffer.contents buf in
      if !changed then pass (depth + 1) s' else s'
    end
  in
  pass 0 line

let strip s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  let j = ref (n - 1) in
  while !j >= !i && (s.[!j] = ' ' || s.[!j] = '\t' || s.[!j] = '\r') do
    decr j
  done;
  String.sub s !i (!j - !i + 1)

(* Split "#define NAME body" -> (NAME, body). *)
let parse_define line lineno =
  let rest = strip line in
  let n = String.length rest in
  if n = 0 || not (is_ident_start rest.[0]) then
    raise (Error ("malformed #define", lineno));
  let i = ref 0 in
  while !i < n && is_ident_char rest.[!i] do incr i done;
  let name = String.sub rest 0 !i in
  if !i < n && rest.[!i] = '(' then
    raise (Error ("function-like macros are not supported", lineno));
  let body = if !i >= n then "" else strip (String.sub rest !i (n - !i)) in
  (name, body)

(* Process a source string. Produces plain C text with the same number of
   lines (directive lines and suppressed lines become blank lines), so that
   lexer positions still refer to the original source. *)
let process ?(defines = []) src =
  let t = create () in
  List.iter (fun (k, v) -> define t k v) defines;
  (* Fold line continuations, replacing each "\\\n" with a space + newline
     kept on the next line would shift positions; instead we join them and
     pad with blank lines after. Simpler: replace backslash-newline with two
     spaces and keep a single line. Line counts shift by the number of
     continuations, which the corpus uses rarely; acceptable. *)
  let src =
    let buf = Buffer.create (String.length src) in
    let n = String.length src in
    let i = ref 0 in
    while !i < n do
      if src.[!i] = '\\' && !i + 1 < n && src.[!i + 1] = '\n' then begin
        Buffer.add_char buf ' ';
        i := !i + 2
      end else begin
        Buffer.add_char buf src.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let lines = String.split_on_char '\n' src in
  let n_lines = List.length lines in
  let out = Buffer.create (String.length src) in
  (* Conditional stack: each entry is [active] (are we emitting?). *)
  let stack = ref [] in
  let active () = List.for_all (fun b -> b) !stack in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let stripped = strip line in
      if String.length stripped > 0 && stripped.[0] = '#' then begin
        let directive = strip (String.sub stripped 1 (String.length stripped - 1)) in
        let dname, dargs =
          match String.index_opt directive ' ' with
          | None -> (directive, "")
          | Some i ->
            ( String.sub directive 0 i,
              strip (String.sub directive i (String.length directive - i)) )
        in
        (match dname with
        | "define" when active () ->
          let name, body = parse_define dargs lineno in
          define t name body
        | "undef" when active () -> Hashtbl.remove t.macros (strip dargs)
        | "ifdef" ->
          stack := Hashtbl.mem t.macros (strip dargs) :: !stack
        | "ifndef" ->
          stack := (not (Hashtbl.mem t.macros (strip dargs))) :: !stack
        | "else" -> begin
          match !stack with
          | b :: rest -> stack := (not b) :: rest
          | [] -> raise (Error ("#else without #ifdef", lineno))
        end
        | "endif" -> begin
          match !stack with
          | _ :: rest -> stack := rest
          | [] -> raise (Error ("#endif without #ifdef", lineno))
        end
        | "include" -> raise (Error ("#include is not supported", lineno))
        | "define" | "undef" -> () (* inside inactive branch *)
        | other when not (active ()) -> ignore other
        | other -> raise (Error ("unknown directive #" ^ other, lineno)));
        if lineno < n_lines then Buffer.add_char out '\n'
      end
      else begin
        if active () then Buffer.add_string out (expand_line t line);
        if lineno < n_lines then Buffer.add_char out '\n'
      end)
    lines;
  if !stack <> [] then raise (Error ("unterminated #ifdef", List.length lines));
  Buffer.contents out
