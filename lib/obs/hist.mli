(** Mergeable log-bucketed latency histograms with bounded memory.

    HDR-style log-linear bucketing over non-negative integer values
    (the telemetry plane records monotonic-clock nanoseconds): values
    below {!sub_count} land in exact unit buckets; above, each power of
    two is split into {!sub_count} linear sub-buckets, so the relative
    quantization error is bounded by [1/sub_count] (≈ 3.1%) at every
    magnitude while the whole bucket array stays under two kilowords.
    Bucketing is pure integer arithmetic — a value exactly on a bucket
    edge lands in the bucket whose {e lower} edge it is, on every
    platform, deterministically (pinned by test/test_hist.ml).

    Snapshots are plain data: {!merge} sums bucket counts (associative
    and commutative, so per-shard histograms merge in any order to the
    same result — the serve daemon's [metrics] verb relies on this),
    and {!quantile} extracts exact-count quantiles by rank walk: the
    returned value is the lower edge of the bucket holding the ranked
    observation, so quantiles are monotone in [q] and reproducible for
    a given multiset of observations regardless of recording order.

    The named registry mirrors {!Probe}'s discipline: recording is
    gated on the probe master switch (one atomic load when disabled)
    and each histogram carries its own mutex, so concurrent domains
    recording into different metric domains never contend. *)

type t
(** A mutable histogram. *)

val sub_count : int
(** Sub-buckets per power of two (32). *)

val bucket_count : int
(** Total number of buckets (bounded memory: the dense count array). *)

val bucket_of_value : int -> int
(** The bucket index of a value (negative values clamp to 0). *)

val bucket_lower : int -> int
(** The smallest value landing in a bucket — the representative
    {!quantile} reports. [bucket_lower (bucket_of_value v) <= v]. *)

val create : unit -> t
val record : t -> int -> unit
(** Unconditional recording into a standalone histogram (no probe
    gate); negative values clamp to 0. *)

(** {1 Snapshots} *)

(** An immutable view: total count, exact sum/min/max of the recorded
    values, and the sparse non-empty buckets in ascending index order. *)
type snapshot = {
  h_count : int;
  h_sum : float;
  h_min : int;             (** meaningless when [h_count = 0] *)
  h_max : int;
  h_buckets : (int * int) list;  (** (bucket index, count), ascending *)
}

val empty : snapshot
val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Associative, commutative, with {!empty} as identity. *)

val quantile : snapshot -> float -> float
(** [quantile s q] is the value at rank [ceil (q * count)] (clamped to
    [1, count]): the lower edge of the bucket holding that observation.
    [nan] on an empty snapshot. Monotone in [q]. *)

val to_json : snapshot -> Json.t
(** [{"count", "sum", "min", "max", "buckets": [[i, n], ...]}] — the
    wire format workers ship to the supervising parent for merging. *)

val of_json : Json.t -> snapshot option

val summary_json : snapshot -> Json.t
(** {!to_json} extended with ["p50"], ["p90"], ["p99"], ["p999"] fields
    (raw recorded units) — what the [metrics] verb publishes. *)

(** {1 Named registry}

    Shares {!Probe}'s master switch: when probes are disabled every
    call is one atomic load and a branch. *)

val set_enabled : bool -> unit
(** Switch histogram recording off (or back on) independently of the
    probe master switch — counters and spans keep flowing. Recording
    requires both switches; the default is on. *)

val enabled : unit -> bool
(** [Probe.enabled () && the histogram switch]. *)

val observe : string -> int -> unit
(** Record a value into the named histogram (created on first use). *)

val time : string -> (unit -> 'a) -> 'a
(** Run the thunk, recording its monotonic-clock duration in
    nanoseconds into the named histogram when probes are enabled. *)

val all : unit -> (string * snapshot) list
(** Every named histogram with at least one recording, sorted by
    name. *)

val reset : unit -> unit
(** Drop every named histogram (tests; {!Probe.reset} does NOT touch
    histograms — serve's cumulative latency distributions survive the
    per-batch span reset). *)
