lib/suite/prog_awk.ml: Bench_prog Buffer List Printf
