(* Self-contained HTML report for a drift comparison: one file, inline
   CSS and inline SVG only (it is uploaded as a CI artifact and opened
   from disk — no external assets, no scripts). Shows the run metadata,
   a per-program drift bar chart, the findings table and the full score
   tables of the current run. *)

let esc (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
         max-width: 60em; color: #1a1a2e; padding: 0 1em; }
  h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 2em; }
  table { border-collapse: collapse; margin: 0.8em 0; }
  th, td { padding: 0.25em 0.7em; text-align: right;
           border-bottom: 1px solid #e0e0e8; }
  th { background: #f4f4f8; } td.l, th.l { text-align: left; }
  .ok { color: #1a7f37; } .bad { color: #b42318; font-weight: 600; }
  .warn { color: #b25e09; }
  .meta td { font-family: ui-monospace, monospace; font-size: 0.92em; }
  .flag { background: #fdf0ef; }
  svg text { font: 11px system-ui, sans-serif; }
  details summary { cursor: pointer; color: #444; margin: 0.6em 0; }
|}

(* ------------------------------------------------------------------ *)
(* Per-program drift bars *)

type prog_stat = {
  p_name : string;
  p_total : int;       (* baseline records for this program *)
  p_drifted : int;     (* of those, how many appear in a finding *)
  p_stage : string option;  (* Some stage when degraded in the current run *)
}

let program_stats (baseline : Run_record.t) (report : Drift.report) :
    prog_stat list =
  let programs =
    List.sort_uniq compare
      (List.map (fun (s : Score.t) -> s.Score.s_program)
         baseline.Run_record.r_scores)
  in
  let drifted_of program =
    List.length
      (List.filter
         (fun f ->
           match f with
           | Drift.Changed (s, _) | Drift.Missing s
           | Drift.Degraded_program (s, _) ->
             s.Score.s_program = program
           | Drift.Added s -> s.Score.s_program = program
           | Drift.Timing_out_of_band _ -> false)
         report.Drift.findings)
  in
  List.map
    (fun p ->
      { p_name = p;
        p_total =
          List.length
            (List.filter
               (fun (s : Score.t) -> s.Score.s_program = p)
               baseline.Run_record.r_scores);
        p_drifted = drifted_of p;
        p_stage = List.assoc_opt p report.Drift.degraded_programs })
    programs

let drift_svg (stats : prog_stat list) : string =
  let row_h = 22 and label_w = 150 and bar_w = 420 and pad = 4 in
  let height = (List.length stats * row_h) + (2 * pad) in
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" \
     role=\"img\" aria-label=\"per-program drift\">\n"
    (label_w + bar_w + 120) height (label_w + bar_w + 120) height;
  List.iteri
    (fun i st ->
      let y = pad + (i * row_h) in
      let frac =
        if st.p_total = 0 then 0.0
        else float_of_int st.p_drifted /. float_of_int st.p_total
      in
      let w = int_of_float (frac *. float_of_int bar_w) in
      let w = if st.p_drifted > 0 && w < 3 then 3 else w in
      let color =
        if st.p_stage <> None then "#b42318"
        else if st.p_drifted > 0 then "#b25e09"
        else "#1a7f37"
      in
      Printf.bprintf buf
        "  <text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>\n"
        (label_w - 8) (y + 15) (esc st.p_name);
      Printf.bprintf buf
        "  <rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
         fill=\"#eceef2\"/>\n"
        label_w (y + 3) bar_w (row_h - 8);
      if w > 0 then
        Printf.bprintf buf
          "  <rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
           fill=\"%s\"/>\n"
          label_w (y + 3) w (row_h - 8) color;
      Printf.bprintf buf
        "  <text x=\"%d\" y=\"%d\" fill=\"%s\">%s</text>\n"
        (label_w + bar_w + 8) (y + 15) color
        (match st.p_stage with
        | Some stage ->
          esc (Printf.sprintf "DEGRADED (%s)" stage)
        | None ->
          if st.p_drifted = 0 then "ok"
          else esc (Printf.sprintf "%d/%d" st.p_drifted st.p_total)))
    stats;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let meta_table (r : Run_record.t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<table class=\"meta\">\n";
  List.iter
    (fun (k, v) ->
      Printf.bprintf buf
        "<tr><td class=\"l\">%s</td><td class=\"l\">%s</td></tr>\n" (esc k)
        (esc v))
    r.Run_record.r_meta;
  Buffer.add_string buf "</table>\n";
  buf |> Buffer.contents

let findings_table (report : Drift.report) : string =
  if report.Drift.findings = [] then
    "<p class=\"ok\">No drift: every baseline score matched exactly.</p>\n"
  else begin
    let buf = Buffer.create 1024 in
    Printf.bprintf buf
      "<p class=\"bad\">%d findings.</p>\n<table>\n\
       <tr><th class=\"l\">kind</th><th class=\"l\">score</th>\
       <th>baseline</th><th>current</th><th>delta</th></tr>\n"
      (List.length report.Drift.findings);
    List.iter
      (fun f ->
        match Drift.finding_row f with
        | [ kind; key; b; c; d ] ->
          Printf.bprintf buf
            "<tr%s><td class=\"l\">%s</td><td class=\"l\">%s</td>\
             <td>%s</td><td>%s</td><td>%s</td></tr>\n"
            (match f with
            | Drift.Degraded_program _ -> " class=\"flag\""
            | _ -> "")
            (esc kind) (esc key) (esc b) (esc c) (esc d)
        | _ -> ())
      report.Drift.findings;
    Buffer.add_string buf "</table>\n";
    Buffer.contents buf
  end

(* The current run's scores, one collapsible table per experiment. *)
let score_tables (current : Run_record.t) : string =
  let by_exp = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (s : Score.t) ->
      let e = s.Score.s_experiment in
      if not (Hashtbl.mem by_exp e) then begin
        Hashtbl.add by_exp e (ref []);
        order := e :: !order
      end;
      let cell = Hashtbl.find by_exp e in
      cell := s :: !cell)
    current.Run_record.r_scores;
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      let scores = List.rev !(Hashtbl.find by_exp e) in
      Printf.bprintf buf
        "<details><summary>%s (%d records)</summary>\n<table>\n\
         <tr><th class=\"l\">program</th><th class=\"l\">estimator</th>\
         <th class=\"l\">metric</th><th>param</th><th>value</th></tr>\n"
        (esc e) (List.length scores);
      List.iter
        (fun (s : Score.t) ->
          Printf.bprintf buf
            "<tr><td class=\"l\">%s</td><td class=\"l\">%s</td>\
             <td class=\"l\">%s</td><td>%g</td><td>%s</td></tr>\n"
            (esc s.Score.s_program) (esc s.Score.s_estimator)
            (esc (Score.metric_to_string s.Score.s_metric))
            s.Score.s_param
            (esc (Drift.fmt_value s.Score.s_value)))
        scores;
      Buffer.add_string buf "</table></details>\n")
    (List.sort compare !order);
  Buffer.contents buf

let html ~(baseline : Run_record.t) ~(current : Run_record.t)
    (report : Drift.report) : string =
  let buf = Buffer.create 16384 in
  let verdict_class, verdict =
    if report.Drift.degraded_programs <> [] then
      ("bad", "DEGRADED — some programs did not produce scores")
    else if Drift.has_drift report then ("bad", "DRIFT DETECTED")
    else ("ok", "CLEAN — matches the committed baseline")
  in
  Printf.bprintf buf
    "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
     <title>score drift report</title>\n<style>%s</style></head>\n<body>\n\
     <h1>Score drift report</h1>\n\
     <p>Status: <span class=\"%s\">%s</span> — %d baseline scores matched \
     exactly.</p>\n"
    style verdict_class (esc verdict) report.Drift.compared;
  Printf.bprintf buf "<h2>Run metadata</h2>\n%s" (meta_table current);
  (match List.assoc_opt "git_rev" baseline.Run_record.r_meta with
  | Some rev ->
    Printf.bprintf buf
      "<p>Baseline recorded at <code>%s</code>.</p>\n" (esc rev)
  | None -> ());
  Printf.bprintf buf "<h2>Per-program drift</h2>\n%s"
    (drift_svg (program_stats baseline report));
  Printf.bprintf buf "<h2>Findings</h2>\n%s" (findings_table report);
  Printf.bprintf buf "<h2>Scores (current run)</h2>\n%s"
    (score_tables current);
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
