(* The canonical metric-name registry.

   Every counter, gauge and histogram the tree emits through Probe/Hist
   is declared here with its kind and meaning; the DESIGN.md telemetry
   table is generated from the same data, and a test walks a full chaos
   suite run asserting every emitted name resolves against this table —
   a silent metric rename breaks the build the same way a score drift
   does. Names with a dynamic tail (per-domain task tallies, per-stage
   fault counts) register as prefixes. *)

type kind = Counter | Gauge | Hist

type entry = {
  e_name : string;      (* exact name, or the prefix when e_prefix *)
  e_prefix : bool;      (* true: matches every name starting with e_name *)
  e_kind : kind;
  e_meaning : string;
}

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Hist -> "hist"

let exact name kind meaning =
  { e_name = name; e_prefix = false; e_kind = kind; e_meaning = meaning }

let prefix name kind meaning =
  { e_name = name; e_prefix = true; e_kind = kind; e_meaning = meaning }

let entries : entry list =
  [ (* serve daemon *)
    exact "serve.request.ns" Hist
      "end-to-end latency of each client request line, recorded once \
       per request at the answering parent (units: ns)";
    exact "serve.handle.ns" Hist
      "worker-side handling latency of one forwarded request (units: ns)";
    exact "serve.shed" Counter
      "requests rejected with the overloaded marker by the admission gate";
    exact "serve.slow" Counter
      "requests slower than --slow-ms appended to the slow-request log";
    exact "serve.queue_depth" Gauge
      "pending request lines queued behind the admission gate (socket \
       carrier)";
    exact "serve.worker_death" Counter "supervised worker processes that died";
    exact "serve.worker_restart" Counter
      "supervised worker processes respawned after a death";
    exact "serve.worker_lost" Counter
      "requests answered with the worker_lost marker after replay failed";
    exact "serve.deadline_kill" Counter
      "workers killed for overrunning the per-request deadline";
    (* analysis context / session cache *)
    exact "context.cache_hit" Counter "session program-cache hits";
    exact "context.cache_miss" Counter "session program-cache misses";
    exact "context.cache_wait" Counter
      "lookups that blocked on another task filling the same slot";
    exact "context.partial_profile" Counter
      "profiles accepted with missing functions backfilled";
    (* parallel runner *)
    exact "parallel.task" Counter "tasks executed by Parallel.map";
    exact "parallel.task.ns" Hist
      "per-task dispatch-to-completion latency in Parallel.map (units: ns)";
    prefix "parallel.tasks.d" Counter
      "tasks executed per worker domain (suffix: domain id)";
    (* fault containment *)
    prefix "fault." Counter
      "captured faults per stage (suffix: compile/profile/solve/estimate/\
       experiment/worker/persist)";
    (* incremental store *)
    exact "incr.hit" Counter "incremental store hits";
    exact "incr.miss" Counter "incremental store misses";
    exact "incr.evict" Counter "entries evicted to stay under the byte budget";
    exact "incr.snapshot" Counter "store snapshots persisted to disk";
    exact "incr.bypass" Counter
      "lookups bypassed because deadline pressure disabled the store";
    exact "incr.bytes" Counter
      "byte level of the store at each update (observe history of the gauge)";
    exact "incr.bytes" Gauge "current resident bytes of the incremental store";
    exact "incr.restored" Counter "entries restored from a persisted snapshot";
    exact "incr.analyze.ns" Hist
      "latency of one Incr.analyze call, cache hits included (units: ns)";
    exact "corpus.partial_profile" Counter
      "corpus programs profiled with partial coverage";
    (* linear solvers *)
    exact "linsolve.solve" Counter "dense LU solves";
    exact "linsolve.solve.ns" Hist
      "latency of one linear solve, dense or sparse (units: ns)";
    exact "linsolve.singular" Counter "solves that hit a singular system";
    exact "linsolve.pivot" Counter "smallest pivot magnitude per dense solve";
    exact "linsolve.sparse.solve" Counter "sparse iterative solves";
    exact "linsolve.fallback.power" Counter
      "sparse solves that fell back to power iteration";
    exact "linsolve.fallback.dense" Counter
      "sparse solves that fell back to dense LU";
    exact "linsolve.gs.diverged" Counter "Gauss-Seidel divergence bailouts";
    exact "linsolve.gs.sweeps" Counter "Gauss-Seidel sweeps per solve";
    exact "linsolve.gs.relaxations" Counter
      "Gauss-Seidel relaxation steps per solve";
    exact "linsolve.gs.sccs" Counter
      "strongly connected components per Gauss-Seidel solve";
    exact "linsolve.gs.residual" Counter
      "final Gauss-Seidel residual per solve";
    exact "linsolve.power.iters" Counter "power-iteration rounds per solve";
    exact "linsolve.power.residual" Counter
      "final power-iteration residual per solve";
    exact "linsolve.power.diverged" Counter "power-iteration divergences";
    exact "scratch.grow" Counter "scratch arena reallocations";
    (* markov estimators *)
    exact "markov_intra.solve_n" Counter
      "system size per intraprocedural Markov solve";
    exact "markov_intra.damping_retry" Counter
      "intra solves retried with damping";
    exact "markov_intra.fallback_estimate" Counter
      "intra solves replaced by the heuristic estimate";
    exact "markov_intra.flat_fallback" Counter
      "intra solves replaced by flat frequencies";
    exact "markov_inter.self_arc_clamp" Counter
      "self-recursion arcs clamped per interprocedural solve";
    exact "markov_inter.invalid_solve" Counter
      "interprocedural solves rejected as invalid";
    exact "markov_inter.scc_scale_step" Counter
      "SCC rescaling steps in the interprocedural solver";
    exact "markov_inter.scc_repaired" Counter
      "SCCs repaired by rescaling";
    exact "markov_inter.call_site_fallback" Counter
      "call sites estimated by the fallback split";
    exact "markov_inter.flat_fallback" Counter
      "interprocedural solves replaced by flat frequencies";
    exact "markov_inter.damp_round" Counter
      "interprocedural damping rounds";
    (* interpreter *)
    exact "interp.dispatch.tree" Counter "profiles run by the tree walker";
    exact "interp.dispatch.compiled" Counter
      "profiles run by the compiled (closure) backend" ]

let lookup kind name =
  List.find_opt
    (fun e ->
      e.e_kind = kind
      && (if e.e_prefix then
            String.length name > String.length e.e_name
            && String.sub name 0 (String.length e.e_name) = e.e_name
          else e.e_name = name))
    entries

let registered kind name = lookup kind name <> None
