lib/core/config.mli:
