(* Benchmark harness.

   Two parts:
   1. Reproduction: prints every table and figure of the paper's
      evaluation (the same rows/series, from the 14-program suite).
   2. Bechamel micro-benchmarks: one Test.make per table/figure, timing
      the analysis machinery that experiment exercises (the paper's claim
      that estimation runs at "conventional optimization" speed).

   Run everything:        dune exec bench/main.exe
   Only the timings:      dune exec bench/main.exe -- --bench-only
   Only the experiments:  dune exec bench/main.exe -- --repro-only *)

open Bechamel

module Pipeline = Core.Pipeline
module Cfg = Cfg_ir.Cfg

let compile_bench name =
  let p = Option.get (Suite.Registry.find name) in
  Pipeline.compile ~name p.Suite.Bench_prog.source

(* Pre-compiled inputs for the staged benchmark functions. *)
let lisp = lazy (compile_bench "lisp_mini")
let compress = lazy (compile_bench "compress_mini")
let bison = lazy (compile_bench "bison_mini")
let cholesky = lazy (compile_bench "cholesky_mini")
let tree = lazy (compile_bench "tree_mini")

let lisp_source =
  lazy (Option.get (Suite.Registry.find "lisp_mini")).Suite.Bench_prog.source

let compress_profile =
  lazy
    (let c = Lazy.force compress in
     let p = Option.get (Suite.Registry.find "compress_mini") in
     let r = List.hd p.Suite.Bench_prog.runs in
     (Pipeline.run_once c
        { Pipeline.argv = r.Suite.Bench_prog.r_argv;
          input = r.Suite.Bench_prog.r_input })
       .Cinterp.Eval.profile)

let strchr_arrays =
  (* the Table 2 vectors *)
  ([| 5.0; 4.0; 0.8; 4.0; 1.0 |], [| 3.0; 3.0; 2.0; 1.0; 0.0 |])

let tests : Test.t list =
  [ Test.make ~name:"table1:front-end (lisp_mini parse+check+cfg)"
      (Staged.stage (fun () ->
           ignore (Pipeline.compile ~name:"lisp" (Lazy.force lisp_source))));
    Test.make ~name:"table2:weight-matching score"
      (Staged.stage (fun () ->
           let estimate, actual = strchr_arrays in
           ignore (Core.Weight_matching.score ~estimate ~actual ~cutoff:0.6)));
    Test.make ~name:"fig2:miss-rate tally (compress_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force compress in
           let prof = Lazy.force compress_profile in
           ignore
             (Core.Missrate.rate c.Pipeline.prog prof
                (Core.Missrate.smart_predictor c.Pipeline.prog))));
    Test.make ~name:"fig3:smart AST estimate (lisp_mini, all functions)"
      (Staged.stage (fun () ->
           let c = Lazy.force lisp in
           ignore (Pipeline.intra_table c Pipeline.Ismart)));
    Test.make ~name:"fig4:loop+smart+markov intra (bison_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force bison in
           ignore (Pipeline.intra_table c Pipeline.Iloop);
           ignore (Pipeline.intra_table c Pipeline.Ismart);
           ignore (Pipeline.intra_table c Pipeline.Imarkov)));
    Test.make ~name:"fig5a:simple inter estimators (lisp_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force lisp in
           let intra = Pipeline.intra_provider c Pipeline.Ismart in
           List.iter
             (fun k ->
               ignore (Core.Inter_simple.estimate c.Pipeline.graph ~intra k))
             Core.Inter_simple.all_kinds));
    Test.make ~name:"fig5bc:markov call-graph solve (lisp_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force lisp in
           let intra = Pipeline.intra_provider c Pipeline.Ismart in
           ignore (Core.Markov_inter.estimate c.Pipeline.graph ~intra)));
    Test.make ~name:"fig6_7:markov intra solve (cholesky_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force cholesky in
           ignore (Pipeline.intra_table c Pipeline.Imarkov)));
    Test.make ~name:"fig8:recursion repair (tree_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force tree in
           let intra = Pipeline.intra_provider c Pipeline.Ismart in
           ignore (Core.Markov_inter.estimate c.Pipeline.graph ~intra)));
    Test.make ~name:"fig9:call-site ranking (compress_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force compress in
           let intra = Pipeline.intra_provider c Pipeline.Ismart in
           ignore (Pipeline.callsite_estimate c ~intra Pipeline.Imarkov_inter)));
    Test.make ~name:"fig10:cost model (compress_mini)"
      (Staged.stage (fun () ->
           let c = Lazy.force compress in
           let prof = Lazy.force compress_profile in
           ignore
             (Pipeline.modelled_time c prof ~optimized:[ "hash_probe" ])))
  ]

let run_benchmarks () =
  print_endline "=== Bechamel micro-benchmarks (analysis machinery) ===\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            if ns > 1_000_000.0 then
              Printf.printf "  %-55s %10.3f ms/run\n%!" name (ns /. 1e6)
            else
              Printf.printf "  %-55s %10.1f us/run\n%!" name (ns /. 1e3)
          | _ -> Printf.printf "  %-55s (no estimate)\n%!" name)
        stats)
    tests

let () =
  let args = Array.to_list Sys.argv in
  let bench_only = List.mem "--bench-only" args in
  let repro_only = List.mem "--repro-only" args in
  if not bench_only then begin
    print_endline
      "=== Reproduction of every table and figure (PLDI 1994) ===\n";
    print_string (Driver.Experiments.run_all ());
    print_newline ()
  end;
  if not repro_only then run_benchmarks ()
