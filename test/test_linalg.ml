(* Linear algebra tests: Gaussian elimination against known systems,
   qcheck residual properties on random diagonally-dominant systems, and
   the Markov frequency formulation. *)

module Matrix = Linalg.Matrix
module Linsolve = Linalg.Linsolve

let check_vec name expected got =
  Alcotest.(check (list (float 1e-9))) name expected (Array.to_list got)

let test_identity () =
  let a = Matrix.identity 3 in
  let x = Linsolve.solve a [| 4.0; 5.0; 6.0 |] in
  check_vec "identity solve" [ 4.0; 5.0; 6.0 ] x

let test_known_system () =
  (* 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3 *)
  let a = Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linsolve.solve a [| 5.0; 10.0 |] in
  check_vec "2x2 system" [ 1.0; 3.0 ] x

let test_pivoting_required () =
  (* zero on the initial pivot position forces a row swap *)
  let a = Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Linsolve.solve a [| 7.0; 9.0 |] in
  check_vec "pivot swap" [ 9.0; 7.0 ] x

let test_singular_detected () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Linsolve.solve a [| 1.0; 2.0 |] with
  | exception Linsolve.Singular _ -> ()
  | _ -> Alcotest.fail "singular matrix not detected"

let test_tiny_scale_solvable () =
  (* Uniformly tiny but well-conditioned: every entry is below the old
     absolute 1e-12 pivot cutoff, which mis-reported this system as
     singular. The threshold is relative to the matrix scale now. *)
  let s = 1e-9 in
  let a =
    Matrix.of_rows
      [| [| 2e-4 *. s; 1e-4 *. s |]; [| 1e-4 *. s; 3e-4 *. s |] |]
  in
  (* b = A * [1; 3] *)
  let b = [| (2e-4 *. s) +. (3e-4 *. s); (1e-4 *. s) +. (9e-4 *. s) |] in
  let x = Linsolve.solve a b in
  Alcotest.(check (float 1e-6)) "tiny x0" 1.0 x.(0);
  Alcotest.(check (float 1e-6)) "tiny x1" 3.0 x.(1)

let test_huge_scale_singular () =
  (* Numerically rank-deficient at scale 1e14: the second row is twice
     the first up to one unit, leaving a pivot of 1.0 — far above any
     absolute epsilon but meaningless relative to the entries. *)
  let a =
    Matrix.of_rows [| [| 1e14; 2e14 |]; [| 2e14; 4e14 +. 1.0 |] |]
  in
  match Linsolve.solve a [| 1.0; 2.0 |] with
  | exception Linsolve.Singular _ -> ()
  | _ -> Alcotest.fail "near-singular huge-scale matrix not detected"

let test_matrix_ops () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  Alcotest.(check (float 1e-12)) "mul 00" 19.0 (Matrix.get c 0 0);
  Alcotest.(check (float 1e-12)) "mul 01" 22.0 (Matrix.get c 0 1);
  Alcotest.(check (float 1e-12)) "mul 10" 43.0 (Matrix.get c 1 0);
  Alcotest.(check (float 1e-12)) "mul 11" 50.0 (Matrix.get c 1 1);
  let t = Matrix.transpose a in
  Alcotest.(check (float 1e-12)) "transpose" 3.0 (Matrix.get t 0 1);
  let v = Matrix.mul_vec a [| 1.0; 1.0 |] in
  check_vec "mul_vec" [ 3.0; 7.0 ] v

(* The paper's Figure 7 system, solved directly. *)
let test_paper_figure7 () =
  (* nodes: entry(0) while(1) if(2) return1(3) incr(4) return2(5) *)
  let arcs =
    [ (0, 1, 1.0); (1, 2, 0.8); (1, 5, 0.2); (2, 3, 0.2); (2, 4, 0.8);
      (4, 1, 1.0) ]
  in
  let x = Linsolve.markov_frequencies ~n:6 ~source:0 arcs in
  let expect = [| 1.0; 2.7777777; 2.2222222; 0.4444444; 1.7777777; 0.5555555 |] in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-5)) (Printf.sprintf "x%d" i) expect.(i) v)
    x

let test_markov_unreachable_zero () =
  let x =
    Linsolve.markov_frequencies ~n:3 ~source:0 [ (0, 1, 1.0) ]
  in
  Alcotest.(check (float 1e-12)) "unreachable node" 0.0 x.(2)

let test_markov_source_with_back_edge () =
  (* source is also a loop header: x0 = 1 + x1, x1 = 0.5 x0 -> x0 = 2 *)
  let x =
    Linsolve.markov_frequencies ~n:2 ~source:0
      [ (0, 1, 0.5); (1, 0, 1.0) ]
  in
  Alcotest.(check (float 1e-9)) "looping source" 2.0 x.(0);
  Alcotest.(check (float 1e-9)) "body" 1.0 x.(1)

(* qcheck: random diagonally-dominant systems solve with small residual. *)
let gen_system : (float array array * float array) QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    int_range 1 8 >>= fun n ->
    let cell = float_range (-10.0) 10.0 in
    array_size (return n) (array_size (return n) cell) >>= fun rows ->
    array_size (return n) cell >|= fun b ->
    (* make it diagonally dominant so it is well-conditioned *)
    Array.iteri
      (fun i row ->
        let sum = Array.fold_left (fun acc v -> acc +. abs_float v) 0.0 row in
        row.(i) <- (if row.(i) >= 0.0 then sum +. 1.0 else -.sum -. 1.0))
      rows;
    (rows, b)
  in
  QCheck.make gen ~print:(fun (rows, b) ->
      Printf.sprintf "A=%s b=%s"
        (String.concat ";"
           (Array.to_list
              (Array.map
                 (fun r ->
                   String.concat ","
                     (Array.to_list (Array.map string_of_float r)))
                 rows)))
        (String.concat "," (Array.to_list (Array.map string_of_float b))))

let prop_residual =
  QCheck.Test.make ~name:"Ax - b residual is tiny" ~count:200 gen_system
    (fun (rows, b) ->
      let a = Matrix.of_rows rows in
      let x = Linsolve.solve a b in
      let ax = Matrix.mul_vec a x in
      Array.for_all2 (fun p q -> abs_float (p -. q) < 1e-6) ax b)

let prop_markov_conservation =
  (* On a probability chain (outgoing probabilities sum to <= 1 with all
     flow reaching sinks), total inflow at a node equals its frequency. *)
  QCheck.Test.make ~name:"markov frequencies satisfy their equations"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         int_range 2 7 >>= fun n ->
         (* random forward-edge DAG with probability split 0.5/0.5 *)
         let arcs = ref [] in
         let rec build i acc =
           if i >= n - 1 then return acc
           else
             int_range (i + 1) (n - 1) >>= fun t1 ->
             int_range (i + 1) (n - 1) >>= fun t2 ->
             build (i + 1) ((i, t1, 0.5) :: (i, t2, 0.5) :: acc)
         in
         build 0 !arcs >|= fun arcs -> (n, arcs))
       ~print:(fun (n, arcs) ->
         Printf.sprintf "n=%d arcs=[%s]" n
           (String.concat ";"
              (List.map (fun (a, b, p) -> Printf.sprintf "%d->%d@%.1f" a b p)
                 arcs))))
    (fun (n, arcs) ->
      let x = Linsolve.markov_frequencies ~n ~source:0 arcs in
      (* check each equation *)
      let ok = ref (abs_float (x.(0) -. 1.0) < 1e-9) in
      for i = 1 to n - 1 do
        let inflow =
          List.fold_left
            (fun acc (s, d, p) -> if d = i then acc +. (p *. x.(s)) else acc)
            0.0 arcs
        in
        if abs_float (inflow -. x.(i)) > 1e-9 then ok := false
      done;
      !ok)

(* solve must not mutate its inputs (solve_inplace exists for callers
   that are allowed to), and the two must agree bit-for-bit. *)
let test_solve_preserves_inputs () =
  let a =
    Matrix.of_rows
      [| [| 4.0; 1.0; 0.0 |]; [| 1.0; 3.0; 1.0 |]; [| 0.0; 1.0; 2.0 |] |]
  in
  let b = [| 1.0; 2.0; 3.0 |] in
  let a_before = Array.copy a.Matrix.data in
  let b_before = Array.copy b in
  let x = Linsolve.solve a b in
  Alcotest.(check bool) "matrix untouched" true (a.Matrix.data = a_before);
  Alcotest.(check bool) "rhs untouched" true (b = b_before);
  let x' = Linsolve.solve_inplace (Matrix.copy a) (Array.copy b) in
  Alcotest.(check bool) "solve = solve_inplace, bitwise" true (x = x')

(* The ?scale damping path must be bit-identical to pre-scaling the arc
   list by hand (this pins the Markov damping-retry refactor). *)
let test_markov_scale_matches_prescaled () =
  let arcs = [ (0, 1, 0.8); (0, 2, 0.2); (1, 0, 1.0); (2, 1, 0.45) ] in
  List.iter
    (fun scale ->
      let via_scale =
        Linsolve.markov_frequencies ~scale ~n:3 ~source:0 arcs
      in
      let via_map =
        Linsolve.markov_frequencies ~n:3 ~source:0
          (List.map (fun (s, d, p) -> (s, d, p *. scale)) arcs)
      in
      Alcotest.(check bool)
        (Printf.sprintf "scale %.4f bit-identical" scale)
        true (via_scale = via_map))
    [ 1.0; 0.95; 0.95 *. 0.95; 0.5 ]

(* --- CSR and the iterative solvers ------------------------------------ *)

module Csr = Linalg.Csr
module Iterative = Linalg.Iterative

let iter_of_list arcs f = List.iter (fun (s, d, p) -> f s d p) arcs

(* Layout contract: self-arcs (and duplicates of them) fold into the
   separately-stored diagonal; off-diagonal duplicates stay as separate
   entries and sum under mul_vec exactly like a merged entry would. *)
let test_csr_layout () =
  let arcs =
    [ (0, 1, 0.5); (1, 1, 0.25); (1, 1, 0.25); (2, 0, 1.0); (2, 1, 0.1);
      (2, 1, 0.1) ]
  in
  let a = Csr.of_markov_arcs ~n:3 (iter_of_list arcs) in
  Alcotest.(check int) "n" 3 a.Csr.n;
  Alcotest.(check int) "off-diagonal entries" 4 a.Csr.nnz;
  Alcotest.(check (float 0.0)) "self-arcs folded into diag" 0.5
    a.Csr.diag.(1);
  Alcotest.(check (float 0.0)) "untouched diag rows stay 1" 1.0
    a.Csr.diag.(0);
  (* A x against the dense build of the same system *)
  let x = [| 1.0; 2.0; 3.0 |] in
  let y = Array.make 3 0.0 in
  Csr.mul_vec a x y;
  (* row 0: x0 - 1.0*x2 ; row 1: 0.5*x1 - 0.5*x0 - 0.2*x2 ; row 2: x2 *)
  check_vec "mul_vec matches dense semantics"
    [ 1.0 -. 3.0; (0.5 *. 2.0) -. (0.5 *. 1.0) -. (0.2 *. 3.0); 3.0 ]
    y

let check_invalid name expected_msg f =
  match f () with
  | exception Invalid_argument msg ->
    Alcotest.(check string) name expected_msg msg
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

(* Malformed graphs surface as typed Invalid_argument at the boundary,
   not an index error inside a sweep (regression: arc endpoints used to
   flow unvalidated into Matrix.set). *)
let test_arc_validation () =
  check_invalid "csr build rejects bad dst"
    "Csr.of_markov_arcs: arc (0 -> 5) outside [0, 3)" (fun () ->
      Csr.of_markov_arcs ~n:3 (iter_of_list [ (0, 5, 1.0) ]));
  check_invalid "dense markov path rejects bad dst"
    "Linsolve.markov_frequencies: arc (0 -> 5) outside [0, 3)" (fun () ->
      Linsolve.markov_frequencies ~n:3 ~source:0 [ (0, 5, 1.0) ]);
  check_invalid "markov path rejects negative src"
    "Linsolve.markov_frequencies: arc (-1 -> 0) outside [0, 2)" (fun () ->
      Linsolve.markov_frequencies ~n:2 ~source:0 [ (-1, 0, 1.0) ])

(* Regression: an out-of-range source used to become b.(source) <- 1.0
   and die as an untyped Index_out_of_bounds (or worse, silently write
   into oversized scratch). *)
let test_source_validation () =
  check_invalid "source past n"
    "Linsolve.markov_frequencies: source 3 outside [0, 3)" (fun () ->
      Linsolve.markov_frequencies ~n:3 ~source:3 [ (0, 1, 1.0) ]);
  check_invalid "negative source"
    "Linsolve.markov_frequencies: source -1 outside [0, 3)" (fun () ->
      Linsolve.markov_frequencies ~n:3 ~source:(-1) [ (0, 1, 1.0) ])

(* A probability-0.9 self-loop chain: x0 = 1 + 0.9 x1, x1 = x0, so
   x = (10, 10). Both iterative solvers must hit it to solver epsilon. *)
let loop_system () =
  let a = Csr.of_markov_arcs ~n:2 (iter_of_list [ (0, 1, 1.0); (1, 0, 0.9) ]) in
  let b = [| 1.0; 0.0 |] in
  (a, b)

let test_gauss_seidel_converges () =
  let a, b = loop_system () in
  let x = Array.make 2 0.0 in
  (match Iterative.gauss_seidel ~epsilon:1e-12 a b x with
  | Iterative.Converged _ -> ()
  | Iterative.Diverged -> Alcotest.fail "gauss_seidel diverged");
  check_vec "loop frequencies" [ 10.0; 10.0 ] x;
  Alcotest.(check bool) "residual at solver epsilon" true
    (Iterative.residual a b x < 1e-9)

let test_power_converges () =
  let a, b = loop_system () in
  let x = Array.make 2 0.0 in
  (match Iterative.power ~epsilon:1e-12 a b x with
  | Iterative.Converged _ -> ()
  | Iterative.Diverged -> Alcotest.fail "power iteration diverged");
  check_vec "loop frequencies" [ 10.0; 10.0 ] x

(* Scratch buffers only grow: after a large solve, the small system must
   neither read stale big-system state nor lose determinism. *)
let test_scratch_reuse_across_sizes () =
  let saved = !Linsolve.solver_mode in
  Linsolve.solver_mode := Linsolve.Sparse;
  Fun.protect
    ~finally:(fun () -> Linsolve.solver_mode := saved)
    (fun () ->
      let big =
        List.init 299 (fun i -> (i, i + 1, 0.9))
        @ [ (299, 0, 0.5) ]
      in
      let small = [ (0, 1, 0.8); (0, 2, 0.2); (1, 0, 1.0); (2, 1, 0.45) ] in
      let small_solve () =
        Linsolve.markov_frequencies ~n:3 ~source:0 small
      in
      let fresh = small_solve () in
      ignore (Linsolve.markov_frequencies ~n:300 ~source:0 big);
      let reused = small_solve () in
      Alcotest.(check bool)
        "small solve bit-identical before/after a big solve" true
        (fresh = reused);
      Linsolve.solver_mode := Linsolve.Dense;
      let dense = small_solve () in
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "sparse tracks dense at %d" i)
            v reused.(i))
        dense)

let suite =
  [ Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "csr layout" `Quick test_csr_layout;
    Alcotest.test_case "arc validation" `Quick test_arc_validation;
    Alcotest.test_case "source validation" `Quick test_source_validation;
    Alcotest.test_case "gauss-seidel on a loop" `Quick
      test_gauss_seidel_converges;
    Alcotest.test_case "power iteration on a loop" `Quick
      test_power_converges;
    Alcotest.test_case "scratch reuse across sizes" `Quick
      test_scratch_reuse_across_sizes;
    Alcotest.test_case "solve preserves inputs" `Quick
      test_solve_preserves_inputs;
    Alcotest.test_case "markov scale = prescaled arcs" `Quick
      test_markov_scale_matches_prescaled;
    Alcotest.test_case "known 2x2" `Quick test_known_system;
    Alcotest.test_case "pivoting" `Quick test_pivoting_required;
    Alcotest.test_case "singular detection" `Quick test_singular_detected;
    Alcotest.test_case "tiny-scale system solvable" `Quick
      test_tiny_scale_solvable;
    Alcotest.test_case "huge-scale near-singular detected" `Quick
      test_huge_scale_singular;
    Alcotest.test_case "matrix operations" `Quick test_matrix_ops;
    Alcotest.test_case "paper figure 7" `Quick test_paper_figure7;
    Alcotest.test_case "unreachable nodes" `Quick test_markov_unreachable_zero;
    Alcotest.test_case "source with back edge" `Quick
      test_markov_source_with_back_edge;
    QCheck_alcotest.to_alcotest prop_residual;
    QCheck_alcotest.to_alcotest prop_markov_conservation ]
