test/test_config.ml: Alcotest Array Cfg_ir Cfront Core List Option Parser Typecheck Usage
