(* Score-drift detection: compare a run record against the committed
   baseline and classify every difference.

   Scores are deterministic IEEE-754 doubles (the differential harness
   pins jobs-invariance), so they are compared *exactly* — any bit
   difference is drift. Timings are machine-dependent, so they only
   drift when outside a wide multiplicative tolerance band. A program
   that degraded in the current run is reported as degraded (with its
   stage), never as a score regression: its baseline scores are
   missing, not wrong.

   One carve-out: when the run used the iterative (sparse) solver, the
   scores that pass through the linear solver are only reproducible to
   the solver's convergence tolerance, not to the bit. [diff] therefore
   accepts an optional [solver_band]: *solver-derived* scores (see
   [solver_derived]) within the relative band count as matches, every
   other score still compares exactly. The default band is 0 — the
   committed BASELINE.json stays authoritative, bit-for-bit, for the
   dense path. *)

type finding =
  | Changed of Score.t * float
    (* baseline record; the current run's differing value *)
  | Missing of Score.t
    (* baseline record with no counterpart in the current run *)
  | Added of Score.t
    (* current-run record with no counterpart in the baseline *)
  | Degraded_program of Score.t * string
    (* baseline record whose program degraded in the current run; the
       stage it degraded at *)
  | Timing_out_of_band of string * float * float
    (* label, baseline total ms, current total ms *)

type report = {
  findings : finding list;     (* deterministic order: kind within key *)
  compared : int;              (* baseline scores that matched *)
  banded : int;                (* of [compared]: matched via the solver
                                  epsilon band, not bit-for-bit *)
  degraded_programs : (string * string) list;  (* current run: program, stage *)
}

let default_timing_factor = 50.0

(* Timings below this total are noise — a sub-millisecond experiment
   span can jitter by more than any sane factor between two runs. *)
let timing_floor_ms = 5.0

let finding_key = function
  | Changed (s, _) | Missing s | Added s | Degraded_program (s, _) ->
    Some (Score.key s)
  | Timing_out_of_band _ -> None

(* Exact equality that treats nan as equal to itself (a degraded mean
   must not drift against itself). The *polymorphic* compare is the
   point, not an oversight: unlike [(=)] it gives nan = nan, and unlike
   [Float.compare]'s total order it keeps -0.0 = 0.0, which is the IEEE
   notion of "same value" the bit-stable baseline was recorded under.
   Do not "fix" this to [Float.compare]. *)
let same_value (a : float) (b : float) : bool = compare a b = 0

(* ------------------------------------------------------------------ *)
(* The solver epsilon band *)

(* Default relative band for solver-derived scores under an iterative
   solver. The convergence tolerance is ~1e-12 per solve, but the
   weight-matching metrics *quantize* solver noise: they compare sets of
   blocks ranked by frequency, and where the dense solver produces exact
   ties the iterative one lands an ulp off, flipping a block across the
   cutoff and moving the score by a discrete ~1/(total weight) step —
   observed up to 4e-5 on the 16-program suite (tree_mini). 1e-4 absorbs
   those tie flips; any real estimator regression moves scores by orders
   of magnitude more. *)
let default_solver_band = 1e-4

let contains_sub (hay : string) (needle : string) : bool =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Does this score's value pass through [Linsolve.markov_frequencies]?
   Everything whose estimator column is a Markov variant (fig4/fig5
   columns, the Wu-Larus "markov_wl", ablation cells, corpus stats), the
   fig6/7 worked example (solved block frequencies), fig8 (recursion
   repair: naive/repaired frequencies and the repair diagnostics), and
   fig10's modelled speedups, which rank functions by Markov inter
   frequencies. Purely syntactic estimators (loop, AST walks, call-site
   counts) and static inventories stay exact under any solver. *)
let solver_derived (s : Score.t) : bool =
  contains_sub s.Score.s_estimator "markov"
  || s.Score.s_experiment = "fig6_7"
  || s.Score.s_experiment = "fig8"
  || (s.Score.s_experiment = "fig10" && s.Score.s_estimator = "estimate")

(* |a - b| <= band * max(1, |a|, |b|) — relative with an absolute floor
   so near-zero frequencies don't demand absurd relative precision. *)
let within_band ~(band : float) (a : float) (b : float) : bool =
  Float.abs (a -. b)
  <= band *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let diff ?(timing_factor = default_timing_factor) ?(solver_band = 0.0)
    ~(baseline : Run_record.t) ~(current : Run_record.t) () : report =
  let index (r : Run_record.t) : (Score.key, Score.t) Hashtbl.t =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun (s : Score.t) -> Hashtbl.replace tbl (Score.key s) s)
      r.Run_record.r_scores;
    tbl
  in
  let cur_by_key = index current in
  let base_by_key = index baseline in
  let degraded_stage program =
    List.assoc_opt program current.Run_record.r_degraded
  in
  let compared = ref 0 in
  let banded = ref 0 in
  let score_findings =
    List.filter_map
      (fun (b : Score.t) ->
        match Hashtbl.find_opt cur_by_key (Score.key b) with
        | Some c ->
          if same_value b.Score.s_value c.Score.s_value then begin
            incr compared;
            None
          end
          else if
            solver_band > 0.0 && solver_derived b
            && within_band ~band:solver_band b.Score.s_value
                 c.Score.s_value
          then begin
            incr compared;
            incr banded;
            None
          end
          else Some (Changed (b, c.Score.s_value))
        | None -> (
          match degraded_stage b.Score.s_program with
          | Some stage -> Some (Degraded_program (b, stage))
          | None -> Some (Missing b)))
      baseline.Run_record.r_scores
    @ List.filter_map
        (fun (c : Score.t) ->
          if Hashtbl.mem base_by_key (Score.key c) then None
          else Some (Added c))
        current.Run_record.r_scores
  in
  let timing_findings =
    List.filter_map
      (fun (b : Run_record.timing) ->
        let label = b.Run_record.t_label in
        match
          List.find_opt
            (fun (c : Run_record.timing) -> c.Run_record.t_label = label)
            current.Run_record.r_timings
        with
        | None -> None
        | Some c ->
          let bms = b.Run_record.t_total_ms
          and cms = c.Run_record.t_total_ms in
          if bms < timing_floor_ms || cms < timing_floor_ms then None
          else if cms > bms *. timing_factor || cms < bms /. timing_factor
          then Some (Timing_out_of_band (label, bms, cms))
          else None)
      baseline.Run_record.r_timings
  in
  let rank = function
    | Changed _ -> 0
    | Missing _ -> 1
    | Degraded_program _ -> 2
    | Added _ -> 3
    | Timing_out_of_band _ -> 4
  in
  let sort_key f =
    ( rank f,
      (match finding_key f with Some k -> Score.key_to_string k | None -> ""),
      match f with Timing_out_of_band (l, _, _) -> l | _ -> "" )
  in
  { findings =
      List.sort
        (fun a b -> compare (sort_key a) (sort_key b))
        (score_findings @ timing_findings);
    compared = !compared;
    banded = !banded;
    degraded_programs = current.Run_record.r_degraded }

let has_drift (r : report) : bool = r.findings <> []

(* ------------------------------------------------------------------ *)
(* Rendering *)

let fmt_value (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let finding_row = function
  | Changed (s, cur) ->
    [ "changed"; Score.key_to_string (Score.key s);
      fmt_value s.Score.s_value; fmt_value cur;
      Printf.sprintf "%+.6g" (cur -. s.Score.s_value) ]
  | Missing s ->
    [ "missing"; Score.key_to_string (Score.key s);
      fmt_value s.Score.s_value; "—"; "" ]
  | Added s ->
    [ "added"; Score.key_to_string (Score.key s); "—";
      fmt_value s.Score.s_value; "" ]
  | Degraded_program (s, stage) ->
    [ "degraded"; Score.key_to_string (Score.key s);
      fmt_value s.Score.s_value; "— (" ^ stage ^ ")"; "" ]
  | Timing_out_of_band (label, bms, cms) ->
    [ "timing"; label; Printf.sprintf "%.1fms" bms;
      Printf.sprintf "%.1fms" cms;
      Printf.sprintf "%.1fx" (cms /. bms) ]

let render (r : report) : string =
  let header =
    if r.banded = 0 then
      Printf.sprintf "%d baseline scores matched exactly" r.compared
    else
      Printf.sprintf
        "%d baseline scores matched (%d exactly, %d within the solver band)"
        r.compared (r.compared - r.banded) r.banded
  in
  if r.findings = [] then
    header ^ "; no drift.\n"
  else
    Printf.sprintf "%s; %d findings:\n\n" header (List.length r.findings)
    ^ Text_table.render
        ~aligns:[ Text_table.Left; Text_table.Left ]
        [ "kind"; "score"; "baseline"; "current"; "delta" ]
        (List.map finding_row r.findings)
