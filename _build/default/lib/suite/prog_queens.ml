(* queens_mini: N-queens backtracking with solution counting and a first
   solution printer — deep recursion with data-dependent pruning, the
   classic "alvinn-like deep loop nest" counterpoint: here almost all
   branches are pruning tests. *)

let source = {|
#define MAX_N 14

int col_of[MAX_N];
int n_size;
int solutions;
int nodes_visited;
int prunes;

int safe(int row, int col) {
  int r;
  for (r = 0; r < row; r++) {
    if (col_of[r] == col) return 0;
    if (col_of[r] - r == col - row) return 0;
    if (col_of[r] + r == col + row) return 0;
  }
  return 1;
}

void place(int row) {
  int col;
  nodes_visited++;
  if (row == n_size) {
    solutions++;
    return;
  }
  for (col = 0; col < n_size; col++) {
    if (safe(row, col)) {
      col_of[row] = col;
      place(row + 1);
    } else {
      prunes++;
    }
  }
}

/* Find lexicographically first solution; returns 1 on success. */
int first_solution(int row) {
  int col;
  if (row == n_size) return 1;
  for (col = 0; col < n_size; col++) {
    if (safe(row, col)) {
      col_of[row] = col;
      if (first_solution(row + 1)) return 1;
    }
  }
  return 0;
}

void print_solution(void) {
  int r;
  printf("first:");
  for (r = 0; r < n_size; r++) printf(" %d", col_of[r]);
  printf("\n");
}

int main(int argc, char **argv) {
  n_size = 8;
  if (argc > 1) n_size = atoi(argv[1]);
  if (n_size > MAX_N) n_size = MAX_N;
  if (n_size < 1) n_size = 1;
  solutions = 0;
  nodes_visited = 0;
  prunes = 0;
  place(0);
  printf("n=%d solutions=%d nodes=%d prunes=%d\n", n_size, solutions,
         nodes_visited, prunes);
  if (first_solution(0)) print_solution();
  else printf("no solution\n");
  return 0;
}
|}

let program : Bench_prog.t =
  { Bench_prog.name = "queens_mini";
    description = "N-queens backtracking search";
    analogue = "recursive search workload";
    source;
    runs =
      [ Bench_prog.run ~argv:[ "8" ] ();
        Bench_prog.run ~argv:[ "9" ] ();
        Bench_prog.run ~argv:[ "7" ] ();
        Bench_prog.run ~argv:[ "10" ] () ] }
