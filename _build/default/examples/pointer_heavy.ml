(* Function pointers and the pointer node (paper section 5.2.1): the
   lisp_mini interpreter calls all of its builtins through a dispatch
   table. The call graph cannot know which builtin a given indirect call
   reaches, so the Markov model routes that flow through a single pointer
   node and splits it by the static address-of census. The read/eval
   loop is still identified as hot — the paper's xlisp observation.

     dune exec examples/pointer_heavy.exe *)

module Pipeline = Core.Pipeline
module Markov_inter = Core.Markov_inter
module Callgraph = Cfg_ir.Callgraph

let () =
  let bench = Option.get (Suite.Registry.find "lisp_mini") in
  let c = Pipeline.compile ~name:"lisp" bench.Suite.Bench_prog.source in
  let g = c.Pipeline.graph in
  let intra = Pipeline.intra_provider c Pipeline.Ismart in

  Printf.printf "address-taken functions (static census):\n";
  List.iter
    (fun (name, n) -> Printf.printf "  %-12s %d\n" name n)
    (Callgraph.address_taken_list g);

  let result = Markov_inter.estimate g ~intra in
  (match result.Markov_inter.pointer_freq with
  | Some f -> Printf.printf "\npointer node frequency: %.2f\n" f
  | None -> Printf.printf "\n(no pointer node: no indirect calls)\n");

  let top =
    List.sort (fun (_, a) (_, b) -> compare b a) result.Markov_inter.freqs
  in
  Printf.printf "\nestimated hottest functions:\n";
  List.iteri
    (fun i (name, v) ->
      if i < 10 then Printf.printf "  %2d. %-16s %8.2f\n" (i + 1) name v)
    top;

  (* sanity-check against a profile *)
  let run =
    match bench.Suite.Bench_prog.runs with
    | r :: _ ->
      { Pipeline.argv = r.Suite.Bench_prog.r_argv;
        input = r.Suite.Bench_prog.r_input }
    | [] -> { Pipeline.argv = []; input = "" }
  in
  let outcome = Pipeline.run_once c run in
  let actual = Pipeline.inter_actual c outcome.Cinterp.Eval.profile in
  let estimate =
    Array.of_list (List.map snd result.Markov_inter.freqs)
  in
  Printf.printf
    "\ninvocation weight-matching at 25%% despite the indirection: %.0f%%\n"
    (100.0 *. Core.Weight_matching.score ~estimate ~actual ~cutoff:0.25)
