(* Shared, memoized experiment context: each suite program compiled once
   and profiled once per input. Every experiment draws from this cache so
   running all of them costs one pass over the suite. *)

module Pipeline = Core.Pipeline
module Profile = Cinterp.Profile

type prog_data = {
  bench : Suite.Bench_prog.t;
  compiled : Pipeline.compiled;
  profiles : Profile.t list;
}

let cache : (string, prog_data) Hashtbl.t = Hashtbl.create 16

let load (bench : Suite.Bench_prog.t) : prog_data =
  match Hashtbl.find_opt cache bench.Suite.Bench_prog.name with
  | Some d -> d
  | None ->
    let compiled =
      Pipeline.compile ~name:bench.Suite.Bench_prog.name
        bench.Suite.Bench_prog.source
    in
    let runs =
      List.map
        (fun (r : Suite.Bench_prog.run) ->
          { Pipeline.argv = r.Suite.Bench_prog.r_argv;
            input = r.Suite.Bench_prog.r_input })
        bench.Suite.Bench_prog.runs
    in
    let profiles = Pipeline.profile_runs compiled runs in
    let d = { bench; compiled; profiles } in
    Hashtbl.replace cache bench.Suite.Bench_prog.name d;
    d

let all () : prog_data list = List.map load Suite.Registry.all

let by_name (name : string) : prog_data =
  match Suite.Registry.find name with
  | Some bench -> load bench
  | None -> invalid_arg ("unknown suite program " ^ name)
