(* cholesky_mini: dense Cholesky factorization with verification, the
   suite's sparse-cholesky stand-in. Pure numeric triple loops with
   simple control flow — the "numerical programs with simple control
   flow" category for which the paper notes the standard loop count works
   well despite large true iteration counts. *)

let source = {|
#define MAX_N 40

double mat_a[MAX_N][MAX_N];
double mat_l[MAX_N][MAX_N];
int n_dim;

/* Build a symmetric positive-definite matrix A = B * B^T + n*I. */
void build_spd(int seed) {
  int i, j, k;
  double acc;
  double b[MAX_N][MAX_N];
  int state = seed;
  for (i = 0; i < n_dim; i++) {
    for (j = 0; j < n_dim; j++) {
      state = (state * 1103515245 + 12345) & 0x7fffffff;
      b[i][j] = (double)(state % 1000) / 250.0 - 2.0;
    }
  }
  for (i = 0; i < n_dim; i++) {
    for (j = 0; j < n_dim; j++) {
      acc = 0.0;
      for (k = 0; k < n_dim; k++) acc += b[i][k] * b[j][k];
      mat_a[i][j] = acc;
    }
    mat_a[i][i] += (double)n_dim;
  }
}

/* The factorization kernel: A = L * L^T. Hot. */
int factor(void) {
  int i, j, k;
  double sum;
  for (j = 0; j < n_dim; j++) {
    sum = mat_a[j][j];
    for (k = 0; k < j; k++) sum -= mat_l[j][k] * mat_l[j][k];
    if (sum <= 0.0) return 0;
    mat_l[j][j] = sqrt(sum);
    for (i = j + 1; i < n_dim; i++) {
      sum = mat_a[i][j];
      for (k = 0; k < j; k++) sum -= mat_l[i][k] * mat_l[j][k];
      mat_l[i][j] = sum / mat_l[j][j];
    }
  }
  return 1;
}

/* Forward/back substitution solving A x = b via L. */
void solve_system(double *b, double *x) {
  int i, k;
  double sum;
  double y[MAX_N];
  for (i = 0; i < n_dim; i++) {
    sum = b[i];
    for (k = 0; k < i; k++) sum -= mat_l[i][k] * y[k];
    y[i] = sum / mat_l[i][i];
  }
  for (i = n_dim - 1; i >= 0; i--) {
    sum = y[i];
    for (k = i + 1; k < n_dim; k++) sum -= mat_l[k][i] * x[k];
    x[i] = sum / mat_l[i][i];
  }
}

/* Max |A - L L^T| over all entries. */
double residual(void) {
  int i, j, k;
  double acc, err, worst = 0.0;
  for (i = 0; i < n_dim; i++) {
    for (j = 0; j <= i; j++) {
      acc = 0.0;
      for (k = 0; k <= j; k++) acc += mat_l[i][k] * mat_l[j][k];
      err = fabs(acc - mat_a[i][j]);
      if (err > worst) worst = err;
    }
  }
  return worst;
}

double verify_solve(void) {
  int i, k;
  double b[MAX_N];
  double x[MAX_N];
  double acc, err, worst = 0.0;
  for (i = 0; i < n_dim; i++) b[i] = (double)(i + 1);
  solve_system(b, x);
  for (i = 0; i < n_dim; i++) {
    acc = 0.0;
    for (k = 0; k < n_dim; k++) acc += mat_a[i][k] * x[k];
    err = fabs(acc - b[i]);
    if (err > worst) worst = err;
  }
  return worst;
}

int main(int argc, char **argv) {
  int seed = 1, reps, r, ok = 1;
  n_dim = 24;
  reps = 3;
  if (argc > 1) n_dim = atoi(argv[1]);
  if (argc > 2) seed = atoi(argv[2]);
  if (n_dim > MAX_N) n_dim = MAX_N;
  for (r = 0; r < reps; r++) {
    build_spd(seed + r);
    if (!factor()) ok = 0;
  }
  if (!ok) {
    printf("not positive definite\n");
    return 1;
  }
  printf("n=%d residual=%g solve_err=%g l00=%.4f\n", n_dim, residual(),
         verify_solve(), mat_l[0][0]);
  return 0;
}
|}

let program : Bench_prog.t =
  { Bench_prog.name = "cholesky_mini";
    description = "Dense Cholesky factorization + triangular solves";
    analogue = "cholesky";
    source;
    runs =
      [ Bench_prog.run ~argv:[ "24"; "1" ] ();
        Bench_prog.run ~argv:[ "32"; "7" ] ();
        Bench_prog.run ~argv:[ "16"; "3" ] ();
        Bench_prog.run ~argv:[ "38"; "11" ] () ] }
