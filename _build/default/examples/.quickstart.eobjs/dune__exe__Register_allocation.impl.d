examples/register_allocation.ml: Array Cfg_ir Cfront Cinterp Core Fun List Option Printf
