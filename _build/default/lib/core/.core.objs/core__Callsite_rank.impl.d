lib/core/callsite_rank.ml: Array Cfg_ir Cinterp List Printf
