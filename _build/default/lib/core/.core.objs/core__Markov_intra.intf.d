lib/core/markov_intra.mli: Cfg_ir Cfront Linalg
