lib/suite/prog_gs.ml: Bench_prog Buffer Printf
