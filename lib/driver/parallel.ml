(* Work-queue scheduler on OCaml 5 domains.

   One process-wide pool sized by [set_jobs]. Tasks are closures pushed
   onto a mutex-protected queue; [jobs - 1] worker domains plus the
   calling domain drain it. Results land in a per-call array indexed by
   input position, so merge order never depends on scheduling — the
   determinism the differential tests assert.

   Error handling: every slot always runs (a failure in one task never
   short-circuits the others, at any jobs setting, so the set of
   side effects is jobs-independent), and every failure is kept with its
   index and raw backtrace. [map_results] hands the per-slot outcomes to
   callers that degrade per item; [map] re-raises — the original
   exception with its original backtrace for a single failure,
   [Worker_errors] (ordered by input index) for several.

   Each slot passes the ["worker"] injection point (key = input index)
   before its task body, so the chaos harness can kill tasks at the
   pool boundary deterministically; disarmed, the check is one atomic
   load.

   Thread-safety contract with the rest of the tree: tasks must only
   read shared state (the analysis passes are pure per call; the config
   record in [Core.Config] is written strictly between parallel
   regions). The only writes a task performs land in its own slot of
   the per-call result array, under the pool mutex. *)

let default_jobs () = Domain.recommended_domain_count ()

let jobs_setting = Atomic.make (default_jobs ())

let jobs () = Atomic.get jobs_setting

exception Worker_errors of (int * exn * Printexc.raw_backtrace) list

let () =
  Printexc.register_printer (function
    | Worker_errors errors ->
      Some
        (Printf.sprintf "Driver.Parallel.Worker_errors([%s])"
           (String.concat "; "
              (List.map
                 (fun (i, e, _) ->
                   Printf.sprintf "task %d: %s" i (Printexc.to_string e))
                 errors)))
    | _ -> None)

(* Tasks run with this flag set; a nested [map] sees it and runs inline
   rather than re-entering the queue it is being drained from. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type pool = {
  size : int;  (* concurrency level: workers + the calling domain *)
  m : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let run_task_inline task =
  Domain.DLS.set in_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_task false) task

let worker_loop (p : pool) : unit =
  let rec loop () =
    Mutex.lock p.m;
    while Queue.is_empty p.queue && not p.stop do
      Condition.wait p.work_available p.m
    done;
    match Queue.take_opt p.queue with
    | Some task ->
      Mutex.unlock p.m;
      run_task_inline task;
      loop ()
    | None ->
      (* stopped and drained *)
      Mutex.unlock p.m
  in
  loop ()

let create_pool (size : int) : pool =
  let p =
    { size; m = Mutex.create (); work_available = Condition.create ();
      queue = Queue.create (); stop = false; workers = [||] }
  in
  p.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop p));
  p

let retire_pool (p : pool) : unit =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.work_available;
  Mutex.unlock p.m;
  Array.iter Domain.join p.workers;
  p.workers <- [||]

(* The current pool; guarded by [pool_lock]. Only the main domain
   creates, resizes or retires pools. *)
let pool_lock = Mutex.create ()
let current_pool : pool option ref = ref None
let exit_hook_installed = ref false

(* Retiring the pool joins its workers; doing that from a task running
   on one of those workers (or from the calling domain mid-drain) can
   never complete — the domain would be waiting for itself. Fail fast
   instead of deadlocking. *)
let reject_reentrant what =
  if Domain.DLS.get in_task then
    invalid_arg
      (Printf.sprintf
         "Parallel.%s: called from inside a Parallel task; resizing or \
          retiring the pool from a task would deadlock"
         what)

let shutdown () =
  reject_reentrant "shutdown";
  Mutex.lock pool_lock;
  (match !current_pool with
  | Some p -> current_pool := None; Mutex.unlock pool_lock; retire_pool p
  | None -> Mutex.unlock pool_lock)

let set_jobs (n : int) : unit =
  reject_reentrant "set_jobs";
  let n = max 1 n in
  if n <> Atomic.get jobs_setting then begin
    Atomic.set jobs_setting n;
    shutdown ()
  end

(* Size of the live pool, [None] when no pool has been spun up (or the
   last one was retired). Purely observational — [serve stats] reports
   it so a client can see whether a [resize] has taken effect yet
   (pools are created lazily on the next fan-out). *)
let pool_size () : int option =
  Mutex.lock pool_lock;
  let s = Option.map (fun p -> p.size) !current_pool in
  Mutex.unlock pool_lock;
  s

let get_pool () : pool =
  Mutex.lock pool_lock;
  let p =
    match !current_pool with
    | Some p when p.size = jobs () -> p
    | stale ->
      (match stale with Some p -> retire_pool p | None -> ());
      let p = create_pool (jobs ()) in
      current_pool := Some p;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit shutdown
      end;
      p
  in
  Mutex.unlock pool_lock;
  p

(* One slot: the worker injection gate, then the task body. Identical on
   the sequential and pooled paths — the chaos harness's jobs-
   independence depends on that. *)
let run_one (f : 'a -> 'b) (x : 'a) (i : int) :
    ('b, exn * Printexc.raw_backtrace) result =
  Obs.Hist.time "parallel.task.ns" (fun () ->
      match
        Obs.Inject.fire "worker" ~key:(string_of_int i);
        f x
      with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ()))

(* One fan-out/merge cycle yielding per-slot outcomes. The caller seeds
   the queue, then alternates between draining tasks itself and sleeping
   on [all_done] until every slot is filled. *)
let map_results (f : 'a -> 'b) (xs : 'a list) :
    ('b, exn * Printexc.raw_backtrace) result list =
  let n = List.length xs in
  if jobs () <= 1 || n <= 1 || Domain.DLS.get in_task then
    List.mapi (fun i x -> run_one f x i) xs
  else begin
    let p = get_pool () in
    let input = Array.of_list xs in
    let results : ('b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let remaining = ref n in
    let all_done = Condition.create () in
    (* Spans opened inside tasks attach below the span that scheduled
       the fan-out, whichever domain runs them. *)
    let parent = Obs.Probe.current_span () in
    let run_slot i =
      let outcome =
        Obs.Probe.with_parent parent (fun () ->
            if Obs.Probe.enabled () then begin
              Obs.Probe.count "parallel.task";
              Obs.Probe.count
                (Printf.sprintf "parallel.tasks.d%d"
                   (Domain.self () :> int))
            end;
            run_one f input.(i) i)
      in
      Mutex.lock p.m;
      results.(i) <- Some outcome;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock p.m
    in
    Mutex.lock p.m;
    for i = 0 to n - 1 do
      Queue.push (fun () -> run_slot i) p.queue
    done;
    Condition.broadcast p.work_available;
    let rec drain () =
      if !remaining > 0 then
        match Queue.take_opt p.queue with
        | Some task ->
          Mutex.unlock p.m;
          run_task_inline task;
          Mutex.lock p.m;
          drain ()
        | None ->
          (* queue empty but tasks still in flight on workers *)
          Condition.wait all_done p.m;
          drain ()
    in
    drain ();
    Mutex.unlock p.m;
    List.init n (fun i -> Option.get results.(i))
  end

let map (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let slots = map_results f xs in
  let errors =
    List.concat
      (List.mapi
         (fun i -> function Error (e, bt) -> [ (i, e, bt) ] | Ok _ -> [])
         slots)
  in
  match errors with
  | [] ->
    List.map (function Ok v -> v | Error _ -> assert false) slots
  | [ (_, e, bt) ] -> Printexc.raise_with_backtrace e bt
  | errors -> raise (Worker_errors errors)

let run (thunks : (unit -> 'a) list) : 'a list = map (fun t -> t ()) thunks
