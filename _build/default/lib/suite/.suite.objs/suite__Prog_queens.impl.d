lib/suite/prog_queens.ml: Bench_prog
