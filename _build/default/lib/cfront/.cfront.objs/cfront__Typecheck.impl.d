lib/cfront/typecheck.ml: Array Ast Ctypes Hashtbl List Option Printf Token
