#!/bin/sh
# End-to-end smoke test for the serve daemon, runnable locally and in
# CI: a scripted newline-delimited session (analyze -> warm re-analyze
# -> one-function edit -> revert -> stats -> shutdown) piped through
# `bin serve`, asserting the incremental store's contract from the
# outside: the warm pass is a program cache hit that recomputes
# nothing, the edit pass recomputes only the new function, and the
# reverted pass returns scores bit-identical to the cold pass.
set -eu

BIN="${1:-./_build/default/bin/main.exe}"
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

cat > "$dir/session" <<'EOF'
{"id":1,"op":"analyze","name":"smoke","source":"int f(int x) { return x + 1; }\nint main() { return f(3); }\n"}

{"id":2,"op":"analyze","name":"smoke","source":"int f(int x) { return x + 1; }\nint main() { return f(3); }\n"}

{"id":3,"op":"analyze","name":"smoke","source":"int f(int x) { return x + 1; }\nint main() { return f(3); }\nint __probe(int x) { return x * 7; }\n"}

{"id":4,"op":"analyze","name":"smoke","source":"int f(int x) { return x + 1; }\nint main() { return f(3); }\n"}

{"id":5,"op":"stats"}

{"id":6,"op":"shutdown"}
EOF

"$BIN" serve --jobs 2 < "$dir/session" > "$dir/out"

line () { sed -n "${1}p" "$dir/out"; }
field () { line "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p"; }
scores () { line "$1" | sed 's/.*"scores"://'; }

fail () { echo "serve_smoke: FAIL: $1" >&2; exit 1; }

[ "$(wc -l < "$dir/out")" -eq 6 ] || fail "expected 6 response lines"

# 1: cold analyze — a real computation, no program hit.
line 1 | grep -q '"ok":true'            || fail "cold analyze not ok"
line 1 | grep -q '"program_hit":false'  || fail "cold analyze claims a hit"
cold_misses="$(field 1 fn_misses)"
[ "$cold_misses" -gt 0 ]                || fail "cold analyze recomputed nothing"

# 2: warm re-analyze — program hit, zero recomputation, identical scores.
line 2 | grep -q '"program_hit":true'   || fail "warm analyze missed the program cache"
[ "$(field 2 fn_misses)" -eq 0 ]        || fail "warm analyze recomputed functions"
[ "$(scores 1)" = "$(scores 2)" ]       || fail "warm scores differ from cold"

# 3: one appended function — reparse, but only the new function solves.
line 3 | grep -q '"program_hit":false'  || fail "edited source hit the program cache"
edit_misses="$(field 3 fn_misses)"
[ "$edit_misses" -gt 0 ]                || fail "edit pass recomputed nothing"
[ "$edit_misses" -lt "$cold_misses" ]   || fail "edit pass recomputed more than the edit"
[ "$(field 3 fn_hits)" -eq "$cold_misses" ] || fail "unchanged functions were not all served warm"

# 4: revert — bit-identical to the cold pass, nothing recomputed.
[ "$(field 4 fn_misses)" -eq 0 ]        || fail "reverted source recomputed functions"
[ "$(scores 1)" = "$(scores 4)" ]       || fail "reverted scores differ from cold"

# 5: stats — the store saw the hits, and the daemon stayed healthy.
line 5 | grep -q '"ok":true'            || fail "stats not ok"
[ "$(field 5 hits)" -gt 0 ]             || fail "stats reports no cache hits"
[ "$(field 5 faults)" -eq 0 ]           || fail "stats reports faults"

# 6: clean shutdown.
line 6 | grep -q '"stopping":true'      || fail "shutdown not acknowledged"

# --- graceful drain on SIGTERM ---------------------------------------
# A healthy idle daemon drains with exit 0; one that recorded a fault
# drains with the degraded exit code 3. Driven through a fifo so the
# daemon is genuinely idle (blocked reading) when the signal lands.

wait_lines () { # file count
  _i=0
  while [ "$(wc -l < "$1")" -lt "$2" ]; do
    _i=$((_i + 1))
    [ "$_i" -lt 100 ] || fail "timed out waiting for $2 line(s) in $1"
    sleep 0.1
  done
}

mkfifo "$dir/clean.fifo"
"$BIN" serve < "$dir/clean.fifo" > "$dir/clean.out" &
srv=$!
exec 9> "$dir/clean.fifo"
printf '{"id":1,"op":"analyze","name":"drain","source":"int main() { return 0; }\\n"}\n\n' >&9
wait_lines "$dir/clean.out" 1
kill -TERM "$srv"
rc=0; wait "$srv" || rc=$?
exec 9>&-
[ "$rc" -eq 0 ] || fail "clean drain exited $rc (want 0)"

mkfifo "$dir/degraded.fifo"
"$BIN" serve < "$dir/degraded.fifo" > "$dir/degraded.out" 2>/dev/null &
srv=$!
exec 9> "$dir/degraded.fifo"
printf '{"id":1,"op":"analyze","name":"broken","source":"int main( {"}\n\n' >&9
wait_lines "$dir/degraded.out" 1
line () { sed -n "${1}p" "$dir/degraded.out"; }
line 1 | grep -q '"ok":false'           || fail "broken program did not fault"
kill -TERM "$srv"
rc=0; wait "$srv" || rc=$?
exec 9>&-
[ "$rc" -eq 3 ] || fail "degraded drain exited $rc (want 3)"

# --- backpressure: a batch past --queue-limit is shed -----------------
cat > "$dir/shed.session" <<'EOF'
{"id":1,"op":"analyze","name":"s1","source":"int main() { return 1; }\n"}
{"id":2,"op":"analyze","name":"s2","source":"int main() { return 2; }\n"}
{"id":3,"op":"analyze","name":"s3","source":"int main() { return 3; }\n"}

{"id":4,"op":"analyze","name":"s4","source":"int main() { return 4; }\n"}

{"id":5,"op":"shutdown"}
EOF

"$BIN" serve --queue-limit 2 < "$dir/shed.session" > "$dir/shed.out"
line () { sed -n "${1}p" "$dir/shed.out"; }
[ "$(wc -l < "$dir/shed.out")" -eq 5 ]  || fail "shed session: expected 5 responses"
for i in 1 2 3; do
  line "$i" | grep -q '"overloaded":true' || fail "request $i was not shed"
  line "$i" | grep -q "\"id\":$i"         || fail "shed response $i lost its id"
done
line 4 | grep -q '"ok":true'            || fail "undersized batch was shed too"
line 5 | grep -q '"stopping":true'      || fail "shed session: shutdown not acknowledged"

# --- live metrics plane: `bin watch` against a socket daemon ----------
sock="$dir/watch.sock"
"$BIN" serve --socket "$sock" > /dev/null 2> "$dir/watch.err" &
srv=$!
_i=0
while [ ! -S "$sock" ]; do
  _i=$((_i + 1))
  [ "$_i" -lt 100 ] || fail "watch daemon socket never appeared"
  sleep 0.1
done

printf '{"id":1,"op":"analyze","name":"watched","source":"int main() { return 0; }\\n"}\n\n' \
  | "$BIN" serve --connect "$sock" > /dev/null

"$BIN" watch --connect "$sock" --polls 2 --interval-ms 100 --no-clear \
  > "$dir/watch.out"
grep -q 'estimator daemon' "$dir/watch.out" || fail "watch printed no header"
grep -q 'requests'         "$dir/watch.out" || fail "watch printed no throughput line"
grep -q 'latency'          "$dir/watch.out" || fail "watch printed no latency line"
grep -q 'cache'            "$dir/watch.out" || fail "watch printed no cache line"

kill -TERM "$srv"
rc=0; wait "$srv" || rc=$?
[ "$rc" -eq 0 ] || fail "watch daemon drained with exit $rc (want 0)"

echo "serve_smoke: OK (cold misses=$cold_misses, edit misses=$edit_misses)"
