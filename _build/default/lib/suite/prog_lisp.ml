(* lisp_mini: a small Lisp interpreter, the analogue of xlisp. All
   built-in functions are reached through a table of function pointers,
   exactly the structure that forces the call-graph Markov model to route
   flow through its pointer node (paper section 5.2.1). Like xlisp, the
   program still spends its time in the read/eval/print loop, which the
   model identifies despite the indirection. *)

let source = {|
#define TAG_NUM 0
#define TAG_SYM 1
#define TAG_CONS 2
#define TAG_NIL 3

struct obj {
  int tag;
  int ival;
  char name[16];
  struct obj *car;
  struct obj *cdr;
};

struct obj *nil_obj;
struct obj *global_env;
int eval_count;
int alloc_count;

/* ---- constructors ---- */

struct obj *new_obj(int tag) {
  struct obj *o = (struct obj *)malloc(sizeof(struct obj));
  if (o == NULL) { printf("out of memory\n"); exit(1); }
  o->tag = tag;
  o->ival = 0;
  o->name[0] = 0;
  o->car = NULL;
  o->cdr = NULL;
  alloc_count++;
  return o;
}

struct obj *make_num(int v) {
  struct obj *o = new_obj(TAG_NUM);
  o->ival = v;
  return o;
}

struct obj *make_sym(char *s) {
  struct obj *o = new_obj(TAG_SYM);
  strncpy(o->name, s, 15);
  return o;
}

struct obj *cons(struct obj *a, struct obj *d) {
  struct obj *o = new_obj(TAG_CONS);
  o->car = a;
  o->cdr = d;
  return o;
}

int is_nil(struct obj *o) { return o == NULL || o->tag == TAG_NIL; }

int list_length(struct obj *o) {
  int n = 0;
  while (!is_nil(o)) { n++; o = o->cdr; }
  return n;
}

struct obj *nth(struct obj *o, int i) {
  while (i > 0 && !is_nil(o)) { o = o->cdr; i--; }
  if (is_nil(o)) return nil_obj;
  return o->car;
}

int num_val(struct obj *o) {
  if (o == NULL || o->tag != TAG_NUM) return 0;
  return o->ival;
}

/* ---- builtins, all called through the dispatch table ---- */

struct obj *bi_add(struct obj *args) {
  int acc = 0;
  while (!is_nil(args)) { acc += num_val(args->car); args = args->cdr; }
  return make_num(acc);
}

struct obj *bi_sub(struct obj *args) {
  int acc;
  if (is_nil(args)) return make_num(0);
  acc = num_val(args->car);
  args = args->cdr;
  if (is_nil(args)) return make_num(-acc);
  while (!is_nil(args)) { acc -= num_val(args->car); args = args->cdr; }
  return make_num(acc);
}

struct obj *bi_mul(struct obj *args) {
  int acc = 1;
  while (!is_nil(args)) { acc *= num_val(args->car); args = args->cdr; }
  return make_num(acc);
}

struct obj *bi_div(struct obj *args) {
  int acc, d;
  if (is_nil(args)) return make_num(0);
  acc = num_val(args->car);
  args = args->cdr;
  while (!is_nil(args)) {
    d = num_val(args->car);
    if (d == 0) return make_num(0);
    acc /= d;
    args = args->cdr;
  }
  return make_num(acc);
}

struct obj *bi_mod(struct obj *args) {
  int a = num_val(nth(args, 0));
  int b = num_val(nth(args, 1));
  if (b == 0) return make_num(0);
  return make_num(a % b);
}

struct obj *bi_lt(struct obj *args) {
  return make_num(num_val(nth(args, 0)) < num_val(nth(args, 1)));
}

struct obj *bi_gt(struct obj *args) {
  return make_num(num_val(nth(args, 0)) > num_val(nth(args, 1)));
}

struct obj *bi_eq(struct obj *args) {
  return make_num(num_val(nth(args, 0)) == num_val(nth(args, 1)));
}

struct obj *bi_not(struct obj *args) {
  return make_num(num_val(nth(args, 0)) == 0);
}

struct obj *bi_max(struct obj *args) {
  int best, v;
  if (is_nil(args)) return make_num(0);
  best = num_val(args->car);
  args = args->cdr;
  while (!is_nil(args)) {
    v = num_val(args->car);
    if (v > best) best = v;
    args = args->cdr;
  }
  return make_num(best);
}

struct obj *bi_min(struct obj *args) {
  int best, v;
  if (is_nil(args)) return make_num(0);
  best = num_val(args->car);
  args = args->cdr;
  while (!is_nil(args)) {
    v = num_val(args->car);
    if (v < best) best = v;
    args = args->cdr;
  }
  return make_num(best);
}

struct obj *bi_abs(struct obj *args) {
  int v = num_val(nth(args, 0));
  if (v < 0) v = -v;
  return make_num(v);
}

struct obj *bi_car(struct obj *args) {
  struct obj *l = nth(args, 0);
  if (l != NULL && l->tag == TAG_CONS) return l->car;
  return nil_obj;
}

struct obj *bi_cdr(struct obj *args) {
  struct obj *l = nth(args, 0);
  if (l != NULL && l->tag == TAG_CONS && l->cdr != NULL) return l->cdr;
  return nil_obj;
}

struct obj *bi_cons(struct obj *args) {
  return cons(nth(args, 0), nth(args, 1));
}

struct obj *bi_list(struct obj *args) { return args; }

struct obj *bi_len(struct obj *args) {
  return make_num(list_length(nth(args, 0)));
}

struct obj *bi_nullp(struct obj *args) {
  return make_num(is_nil(nth(args, 0)));
}

struct obj *bi_sum_to(struct obj *args) {
  int n = num_val(nth(args, 0));
  int i, acc = 0;
  for (i = 1; i <= n; i++) acc += i;
  return make_num(acc);
}

struct builtin {
  char name[8];
  struct obj *(*fn)(struct obj *args);
};

struct builtin builtins[19] = {
  { "+", bi_add }, { "-", bi_sub }, { "*", bi_mul }, { "/", bi_div },
  { "mod", bi_mod }, { "<", bi_lt }, { ">", bi_gt }, { "=", bi_eq },
  { "not", bi_not }, { "max", bi_max }, { "min", bi_min },
  { "abs", bi_abs }, { "car", bi_car }, { "cdr", bi_cdr },
  { "cons", bi_cons }, { "list", bi_list }, { "len", bi_len },
  { "null", bi_nullp }, { "sumto", bi_sum_to }
};

/* ---- reader ---- */

int peeked;
int have_peek;

int peek_ch(void) {
  if (!have_peek) { peeked = getchar(); have_peek = 1; }
  return peeked;
}

int next_ch(void) {
  int c = peek_ch();
  have_peek = 0;
  return c;
}

void skip_space(void) {
  int c;
  while (1) {
    c = peek_ch();
    if (c == ' ' || c == '\n' || c == '\t' || c == '\r') next_ch();
    else if (c == ';') {
      while (c != '\n' && c != EOF) c = next_ch();
    }
    else break;
  }
}

int is_digit_ch(int c) { return c >= '0' && c <= '9'; }

int is_sym_ch(int c) {
  if (c == '(' || c == ')' || c == ' ' || c == '\n' || c == '\t') return 0;
  if (c == EOF || c == '\r' || c == ';') return 0;
  return 1;
}

struct obj *read_expr(void);

struct obj *read_list(void) {
  struct obj *head = NULL, *tail = NULL, *node;
  skip_space();
  while (peek_ch() != ')' && peek_ch() != EOF) {
    node = cons(read_expr(), NULL);
    if (head == NULL) head = node;
    else tail->cdr = node;
    tail = node;
    skip_space();
  }
  if (peek_ch() == ')') next_ch();
  if (head == NULL) return nil_obj;
  return head;
}

struct obj *read_expr(void) {
  int c, v, neg;
  char buf[16];
  int n;
  skip_space();
  c = peek_ch();
  if (c == EOF) return NULL;
  if (c == '(') {
    next_ch();
    return read_list();
  }
  if (is_digit_ch(c) || c == '-') {
    neg = 0;
    if (c == '-') {
      next_ch();
      if (!is_digit_ch(peek_ch())) {
        /* a lone "-" is the subtraction symbol */
        buf[0] = '-';
        buf[1] = 0;
        return make_sym(buf);
      }
      neg = 1;
    }
    v = 0;
    while (is_digit_ch(peek_ch())) v = v * 10 + (next_ch() - '0');
    if (neg) v = -v;
    return make_num(v);
  }
  n = 0;
  while (is_sym_ch(peek_ch()) && n < 15) { buf[n] = next_ch(); n++; }
  buf[n] = 0;
  return make_sym(buf);
}

/* ---- environment (assoc list of (sym . value) pairs) ---- */

struct obj *env_lookup(char *name) {
  struct obj *e = global_env, *pair;
  while (!is_nil(e)) {
    pair = e->car;
    if (strcmp(pair->car->name, name) == 0) return pair->cdr;
    e = e->cdr;
  }
  return NULL;
}

void env_define(char *name, struct obj *value) {
  struct obj *pair = cons(make_sym(name), value);
  global_env = cons(pair, global_env);
}

/* ---- evaluator ---- */

struct obj *eval(struct obj *e);

struct obj *eval_args(struct obj *args) {
  struct obj *head = NULL, *tail = NULL, *node;
  while (!is_nil(args)) {
    node = cons(eval(args->car), NULL);
    if (head == NULL) head = node;
    else tail->cdr = node;
    tail = node;
    args = args->cdr;
  }
  if (head == NULL) return nil_obj;
  return head;
}

struct obj *apply_builtin(char *name, struct obj *args) {
  int i;
  for (i = 0; i < 19; i++) {
    if (strcmp(builtins[i].name, name) == 0)
      return builtins[i].fn(args);
  }
  printf("unknown function: %s\n", name);
  return nil_obj;
}

struct obj *eval(struct obj *e) {
  struct obj *head, *v;
  eval_count++;
  if (e == NULL) return nil_obj;
  if (e->tag == TAG_NUM || e->tag == TAG_NIL) return e;
  if (e->tag == TAG_SYM) {
    v = env_lookup(e->name);
    if (v != NULL) return v;
    return e;
  }
  /* a list: special forms first */
  head = e->car;
  if (head != NULL && head->tag == TAG_SYM) {
    if (strcmp(head->name, "quote") == 0) return nth(e, 1);
    if (strcmp(head->name, "if") == 0) {
      if (num_val(eval(nth(e, 1))) != 0) return eval(nth(e, 2));
      return eval(nth(e, 3));
    }
    if (strcmp(head->name, "define") == 0) {
      v = eval(nth(e, 2));
      env_define(nth(e, 1)->name, v);
      return v;
    }
    return apply_builtin(head->name, eval_args(e->cdr));
  }
  return nil_obj;
}

/* ---- printer ---- */

void print_obj(struct obj *o) {
  int first;
  if (is_nil(o)) { printf("()"); return; }
  if (o->tag == TAG_NUM) { printf("%d", o->ival); return; }
  if (o->tag == TAG_SYM) { printf("%s", o->name); return; }
  printf("(");
  first = 1;
  while (!is_nil(o)) {
    if (!first) printf(" ");
    print_obj(o->car);
    first = 0;
    o = o->cdr;
  }
  printf(")");
}

int main(void) {
  struct obj *e, *v;
  nil_obj = new_obj(TAG_NIL);
  global_env = nil_obj;
  have_peek = 0;
  while (1) {
    skip_space();
    if (peek_ch() == EOF) break;
    e = read_expr();
    if (e == NULL) break;
    v = eval(e);
    print_obj(v);
    printf("\n");
  }
  printf("; evals=%d allocs=%d\n", eval_count, alloc_count);
  return 0;
}
|}

(* Four programs exercising different builtin mixes. *)
let input_arith =
  String.concat "\n"
    [ "(+ 1 2 3 4 5)";
      "(* (+ 1 2) (- 10 4) (max 2 3 1))";
      "(define x 10)";
      "(define y (* x x))";
      "(+ x y (min 5 2 9))";
      "(if (< x y) (sumto 50) (sumto 5))";
      "(mod (sumto 100) 97)";
      "(abs (- 3 42))" ]

let input_lists =
  String.concat "\n"
    [ "(define l (list 1 2 3 4 5 6 7 8))";
      "(len l)";
      "(car (cdr (cdr l)))";
      "(cons 0 l)";
      "(null (quote ()))";
      "(len (cons 9 (cons 8 (list 1 2 3))))";
      "(list (car l) (len l) (null l))" ]

let input_recursive_arith =
  let exprs = ref [] in
  for i = 1 to 30 do
    exprs :=
      Printf.sprintf "(if (> (mod %d 3) 0) (sumto %d) (* %d %d))" i (i * 7) i i
      :: !exprs
  done;
  String.concat "\n" (List.rev !exprs)

let input_mixed =
  String.concat "\n"
    [ "(define a 7)";
      "(define b (sumto a))";
      "(define l (list a b (+ a b)))";
      "(if (null l) 0 (len l))";
      "(max (car l) (sumto 20) (* a a))";
      "(= (mod b a) (mod (sumto 14) a))";
      "(list (min 1 2) (max 1 2) (abs (- 1 2)))";
      "(sumto (len (list 1 2 3 4 5 6 7 8 9 10)))" ]

let program : Bench_prog.t =
  { Bench_prog.name = "lisp_mini";
    description = "Lisp interpreter; builtins via function pointers";
    analogue = "xlisp";
    source;
    runs =
      [ Bench_prog.run ~input:input_arith ();
        Bench_prog.run ~input:input_lists ();
        Bench_prog.run ~input:input_recursive_arith ();
        Bench_prog.run ~input:input_mixed () ] }
