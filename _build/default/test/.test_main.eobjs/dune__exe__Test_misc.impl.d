test/test_misc.ml: Alcotest Ast Cfg_ir Cfront Cinterp List Option Parser Pretty Printf String Typecheck Usage
