lib/core/markov_inter.mli: Cfg_ir
