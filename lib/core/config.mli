(** Estimator configuration knobs.

    The paper fixes these constants (loops iterate 5 times, predicted arms
    get probability 0.8, switch arms weighted by case labels, all
    heuristics enabled) but discusses each choice; the ablation
    experiments vary one knob at a time through this module. All
    estimators read {!current} at use time. *)

type t = {
  mutable loop_iterations : float;
      (** The standard loop count: test executions per loop entry. *)
  mutable branch_probability : float;
      (** Probability given to the predicted arm of a binary branch. *)
  mutable switch_by_labels : bool;
      (** Weight switch arms by label count (true) or equally (false). *)
  mutable heuristic_pointer : bool;
  mutable heuristic_error_call : bool;
  mutable heuristic_opcode : bool;
  mutable heuristic_multi_and : bool;
  mutable heuristic_store : bool;
  mutable heuristic_return : bool;
}

(** A fresh configuration with the paper's values. *)
val defaults : unit -> t

(** The live configuration every estimator consults. *)
val current : t

(** Restore {!current} to the paper's values. *)
val reset : unit -> unit

(** [with_settings set f] applies [set] to {!current}, runs [f], and
    restores the defaults afterwards — even if [f] raises. *)
val with_settings : (t -> unit) -> (unit -> 'a) -> 'a

(** A compact canonical rendering of {!current}, suitable for cache
    keys: distinct configurations produce distinct fingerprints. *)
val fingerprint : unit -> string
