(* tree_mini: binary search tree workload. Contains the paper's Figure 8
   function [count_nodes] verbatim — the NULL-test branch that the
   pointer heuristic mispredicts (a binary tree always has more empty
   child slots than filled ones), giving the recursive call-graph arc an
   impossible weight and exercising the Markov repair machinery. *)

let source = {|
struct tree_node {
  int key;
  int count;
  struct tree_node *left;
  struct tree_node *right;
};

struct tree_node *root;
int insert_count;
int lookup_hits;
int lookup_misses;

struct tree_node *new_node(int key) {
  struct tree_node *n = (struct tree_node *)malloc(sizeof(struct tree_node));
  if (n == NULL) { printf("oom\n"); exit(1); }
  n->key = key;
  n->count = 1;
  n->left = NULL;
  n->right = NULL;
  return n;
}

struct tree_node *insert(struct tree_node *node, int key) {
  if (node == NULL) {
    insert_count++;
    return new_node(key);
  }
  if (key < node->key) node->left = insert(node->left, key);
  else if (key > node->key) node->right = insert(node->right, key);
  else node->count++;
  return node;
}

struct tree_node *find(struct tree_node *node, int key) {
  while (node != NULL) {
    if (key == node->key) return node;
    if (key < node->key) node = node->left;
    else node = node->right;
  }
  return NULL;
}

/* Count the number of nodes in a binary tree (paper Figure 8). */
int count_nodes(struct tree_node *node) {
  if (node == NULL)
    return 0;
  else
    return count_nodes(node->left) + count_nodes(node->right) + 1;
}

int tree_height(struct tree_node *node) {
  int lh, rh;
  if (node == NULL) return 0;
  lh = tree_height(node->left);
  rh = tree_height(node->right);
  if (lh > rh) return lh + 1;
  return rh + 1;
}

int sum_keys(struct tree_node *node) {
  if (node == NULL) return 0;
  return sum_keys(node->left) + sum_keys(node->right)
       + node->key * node->count;
}

/* In-order minimum. */
struct tree_node *tree_min(struct tree_node *node) {
  if (node == NULL) return NULL;
  while (node->left != NULL) node = node->left;
  return node;
}

struct tree_node *delete_key(struct tree_node *node, int key) {
  struct tree_node *successor;
  if (node == NULL) return NULL;
  if (key < node->key) {
    node->left = delete_key(node->left, key);
    return node;
  }
  if (key > node->key) {
    node->right = delete_key(node->right, key);
    return node;
  }
  if (node->left == NULL) return node->right;
  if (node->right == NULL) return node->left;
  successor = tree_min(node->right);
  node->key = successor->key;
  node->count = successor->count;
  successor->count = 1;
  node->right = delete_key(node->right, successor->key);
  return node;
}

int next_rand(int *state) {
  *state = (*state * 1103515245 + 12345) & 0x7fffffff;
  return *state;
}

int main(int argc, char **argv) {
  int n = 400, i, k, state = 99, dels;
  if (argc > 1) n = atoi(argv[1]);
  if (argc > 2) state = atoi(argv[2]);
  root = NULL;
  for (i = 0; i < n; i++) {
    k = next_rand(&state) % (n * 2);
    root = insert(root, k);
  }
  lookup_hits = 0;
  lookup_misses = 0;
  for (i = 0; i < n * 3; i++) {
    k = next_rand(&state) % (n * 2);
    if (find(root, k) != NULL) lookup_hits++;
    else lookup_misses++;
  }
  dels = n / 4;
  for (i = 0; i < dels; i++) {
    k = next_rand(&state) % (n * 2);
    root = delete_key(root, k);
  }
  printf("inserted=%d nodes=%d height=%d hits=%d misses=%d sum=%d\n",
         insert_count, count_nodes(root), tree_height(root), lookup_hits,
         lookup_misses, sum_keys(root) & 0xffffff);
  return 0;
}
|}

let program : Bench_prog.t =
  { Bench_prog.name = "tree_mini";
    description = "Binary search tree (insert/find/delete/count)";
    analogue = "paper Figure 8 workload";
    source;
    runs =
      [ Bench_prog.run ~argv:[ "400"; "99" ] ();
        Bench_prog.run ~argv:[ "900"; "5" ] ();
        Bench_prog.run ~argv:[ "150"; "42" ] ();
        Bench_prog.run ~argv:[ "600"; "1234" ] () ] }
