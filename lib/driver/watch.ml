(* [bin watch --connect PATH]: a polling client for the daemon's
   [metrics] verb, rendering a refreshing text dashboard — rolling
   throughput, latency quantiles, cache hit rate, queue depth, slow
   count and per-shard supervision state.

   The rendering is a pure function of (previous snapshot, current
   snapshot, elapsed seconds) so tests drive it on canned JSON; the
   polling loop owns the socket, the clock and the escape codes. *)

module Json = Obs.Json

let fnum path j =
  let rec walk j = function
    | [] -> Json.to_num j
    | k :: rest -> Option.bind (Json.member k j) (fun j -> walk j rest)
  in
  walk j path

let fmt_ms (ns : float) : string =
  let ms = ns /. 1e6 in
  if ms >= 100.0 then Printf.sprintf "%.0fms" ms
  else if ms >= 1.0 then Printf.sprintf "%.1fms" ms
  else Printf.sprintf "%.2fms" ms

let fmt_bytes (b : float) : string =
  if b >= 1048576.0 then Printf.sprintf "%.1fMB" (b /. 1048576.0)
  else if b >= 1024.0 then Printf.sprintf "%.1fKB" (b /. 1024.0)
  else Printf.sprintf "%.0fB" b

(* [prev] is the previous poll's (elapsed-seconds-ago, snapshot);
   throughput needs two points. *)
let render ?(prev : (float * Json.t) option) (j : Json.t) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let opt path = fnum path j in
  let get path = Option.value ~default:0.0 (opt path) in
  let rev =
    Option.value ~default:"?"
      (Option.bind (Json.member "git_rev" j) Json.to_str)
  in
  let requests = get [ "hists"; "serve.request.ns"; "count" ] in
  let rate =
    match prev with
    | Some (dt, p) when dt > 0.0 ->
      let before =
        Option.value ~default:0.0
          (fnum [ "hists"; "serve.request.ns"; "count" ] p)
      in
      Printf.sprintf "%.1f req/s" ((requests -. before) /. dt)
    | _ -> "- req/s"
  in
  line "estimator daemon  rev %s  schema %.0f" rev (get [ "schema" ]);
  line "requests  %.0f total   %s" requests rate;
  (match Json.member "serve.request.ns" (Option.value ~default:Json.Null (Json.member "hists" j)) with
  | None -> line "latency   (no serve.request.ns histogram yet)"
  | Some h ->
    let q k = Option.value ~default:0.0 (Option.bind (Json.member k h) Json.to_num) in
    line "latency   p50 %s  p90 %s  p99 %s  p999 %s  max %s"
      (fmt_ms (q "p50")) (fmt_ms (q "p90")) (fmt_ms (q "p99"))
      (fmt_ms (q "p999")) (fmt_ms (q "max")));
  let hits = get [ "counters"; "incr.hit"; "hits" ] in
  let misses = get [ "counters"; "incr.miss"; "hits" ] in
  let lookups = hits +. misses in
  let hit_rate =
    if lookups > 0.0 then Printf.sprintf "%.1f%%" (100.0 *. hits /. lookups)
    else "-"
  in
  let bytes =
    match opt [ "gauges"; "incr.bytes"; "value" ] with
    | Some v -> fmt_bytes v
    | None -> "-"
  in
  line "cache     hit rate %s (%.0f/%.0f)   store %s" hit_rate hits lookups
    bytes;
  let depth =
    match opt [ "gauges"; "serve.queue_depth"; "value" ] with
    | Some v -> Printf.sprintf "%.0f" v
    | None -> "-"
  in
  let slow_count = get [ "slow"; "count" ] in
  let threshold =
    match opt [ "slow"; "threshold_ms" ] with
    | Some t -> Printf.sprintf " (>%.0fms)" t
    | None -> ""
  in
  line "queue     depth %s   slow %.0f%s" depth slow_count threshold;
  let workers = get [ "workers" ] in
  if workers > 0.0 then begin
    line "workers   %.0f/%.0f alive   restarts %.0f   lost %.0f"
      (get [ "workers_alive" ]) workers
      (get [ "worker_restarts" ])
      (get [ "worker_lost" ]);
    match Json.member "shards" j with
    | Some (Json.Arr shards) ->
      List.iter
        (fun s ->
          let g k = Option.value ~default:0.0 (Option.bind (Json.member k s) Json.to_num) in
          let flag k =
            match Json.member k s with Some (Json.Bool b) -> b | _ -> false
          in
          line "  shard %.0f  %s  crashes %.0f  restarts %.0f%s" (g "shard")
            (if flag "alive" then "alive" else "down")
            (g "crashes") (g "restarts")
            (if flag "broken" then "  BREAKER OPEN" else ""))
        shards
    | _ -> ()
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The polling loop. [polls = 0] runs until the daemon goes away.
   Exit 0 after the requested polls; exit 1 if the daemon cannot be
   reached or stops answering. *)

let run ~(socket : string) ~(interval_ms : int) ~(polls : int)
    ~(clear : bool) () : 'a =
  let fd =
    try Transport.connect_unix socket
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "watch: cannot connect to %s: %s\n%!" socket
        (Unix.error_message e);
      exit 1
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let prev : (float * Json.t) option ref = ref None in
  let rec loop (remaining : int) =
    if remaining = 0 then exit 0;
    output_string oc "{\"id\":\"watch\",\"op\":\"metrics\"}\n\n";
    flush oc;
    let t_sent = Unix.gettimeofday () in
    (match input_line ic with
    | exception End_of_file ->
      prerr_endline "watch: daemon closed the connection";
      exit (if !prev = None then 1 else 0)
    | line ->
      (match Json.parse line with
      | Error msg ->
        Printf.eprintf "watch: bad metrics snapshot: %s\n%!" msg;
        exit 1
      | Ok j ->
        let dashboard =
          render
            ?prev:
              (Option.map (fun (t, p) -> (t_sent -. t, p)) !prev)
            j
        in
        if clear then print_string "\027[2J\027[H";
        print_string dashboard;
        flush Stdlib.stdout;
        prev := Some (t_sent, j)));
    if remaining <> 1 then
      Unix.sleepf (float_of_int interval_ms /. 1000.0);
    loop (remaining - 1)
  in
  loop (if polls <= 0 then -1 else polls)
