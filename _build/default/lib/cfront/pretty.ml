(* Pretty-printers: C-like rendering of expressions, and an indented AST
   tree view with a per-node annotation hook (used to render the paper's
   Figure 3, the estimated-count-annotated AST of strchr). *)

let rec expr_to_string (e : Ast.expr) : string =
  let s = expr_to_string in
  match e.enode with
  | Ast.IntLit n -> string_of_int n
  | Ast.FloatLit f -> Printf.sprintf "%g" f
  | Ast.CharLit c ->
    if c >= 32 && c < 127 then Printf.sprintf "'%c'" (Char.chr c)
    else Printf.sprintf "'\\x%02x'" (c land 0xff)
  | Ast.StringLit str -> Printf.sprintf "%S" str
  | Ast.Ident name -> name
  | Ast.Unop (op, a) -> Printf.sprintf "%s%s" (Ast.unop_to_string op) (atom a)
  | Ast.Binop (op, a, b) ->
    Printf.sprintf "%s %s %s" (atom a) (Ast.binop_to_string op) (atom b)
  | Ast.Assign (op, l, r) ->
    Printf.sprintf "%s %s %s" (s l) (Ast.assign_op_to_string op) (s r)
  | Ast.Cond (c, a, b) -> Printf.sprintf "%s ? %s : %s" (atom c) (s a) (s b)
  | Ast.Call (f, args) ->
    Printf.sprintf "%s(%s)" (atom f) (String.concat ", " (List.map s args))
  | Ast.Cast (ty, a) ->
    Printf.sprintf "(%s)%s" (Ctypes.to_string ty) (atom a)
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" (atom a) (s i)
  | Ast.Field (a, f) -> Printf.sprintf "%s.%s" (atom a) f
  | Ast.Arrow (a, f) -> Printf.sprintf "%s->%s" (atom a) f
  | Ast.SizeofT ty -> Printf.sprintf "sizeof(%s)" (Ctypes.to_string ty)
  | Ast.SizeofE a -> Printf.sprintf "sizeof %s" (atom a)
  | Ast.PreIncr a -> Printf.sprintf "++%s" (atom a)
  | Ast.PreDecr a -> Printf.sprintf "--%s" (atom a)
  | Ast.PostIncr a -> Printf.sprintf "%s++" (atom a)
  | Ast.PostDecr a -> Printf.sprintf "%s--" (atom a)
  | Ast.Comma (a, b) -> Printf.sprintf "%s, %s" (s a) (s b)

(* Parenthesize anything compound when used as a sub-operand. *)
and atom (e : Ast.expr) : string =
  match e.enode with
  | Ast.IntLit _ | Ast.FloatLit _ | Ast.CharLit _ | Ast.StringLit _
  | Ast.Ident _ | Ast.Call _ | Ast.Index _ | Ast.Field _ | Ast.Arrow _
  | Ast.PostIncr _ | Ast.PostDecr _ ->
    expr_to_string e
  | _ -> "(" ^ expr_to_string e ^ ")"

(* One-line description of a statement head (not its sub-statements). *)
let stmt_head (s : Ast.stmt) : string =
  match s.snode with
  | Ast.Sexpr e -> expr_to_string e ^ ";"
  | Ast.Sblock _ -> "{...}"
  | Ast.Sif (c, _, _) -> Printf.sprintf "if (%s)" (expr_to_string c)
  | Ast.Swhile (c, _) -> Printf.sprintf "while (%s)" (expr_to_string c)
  | Ast.Sdo (_, c) -> Printf.sprintf "do ... while (%s)" (expr_to_string c)
  | Ast.Sfor (_, c, _, _) ->
    Printf.sprintf "for (...; %s; ...)"
      (Option.fold ~none:"" ~some:expr_to_string c)
  | Ast.Sswitch (e, _) -> Printf.sprintf "switch (%s)" (expr_to_string e)
  | Ast.Scase (e, _) -> Printf.sprintf "case %s:" (expr_to_string e)
  | Ast.Sdefault _ -> "default:"
  | Ast.Sbreak -> "break;"
  | Ast.Scontinue -> "continue;"
  | Ast.Sgoto l -> Printf.sprintf "goto %s;" l
  | Ast.Slabel (l, _) -> l ^ ":"
  | Ast.Sreturn (Some e) -> Printf.sprintf "return %s;" (expr_to_string e)
  | Ast.Sreturn None -> "return;"
  | Ast.Snull -> ";"

(* Render a statement tree with indentation. [annot] supplies a prefix for
   each statement node (e.g. an estimated frequency), like the per-node
   counts in the paper's Figure 3. *)
let stmt_tree ?(annot = fun (_ : Ast.stmt) -> "") (root : Ast.stmt) : string =
  let buf = Buffer.create 256 in
  let rec go indent s =
    let prefix = annot s in
    let prefix = if prefix = "" then "" else "[" ^ prefix ^ "] " in
    Buffer.add_string buf
      (Printf.sprintf "%s%s%s\n" (String.make indent ' ') prefix (stmt_head s));
    let child = go (indent + 2) in
    match s.Ast.snode with
    | Ast.Sblock items ->
      List.iter
        (function
          | Ast.Bstmt s -> child s
          | Ast.Bdecl d ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s;\n"
                 (String.make (indent + 2) ' ')
                 (Ctypes.to_string d.Ast.d_ty) d.Ast.d_name))
        items
    | Ast.Sif (_, t, f) ->
      child t;
      Option.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "%selse\n" (String.make indent ' '));
          child f)
        f
    | Ast.Swhile (_, b) | Ast.Sdo (b, _) | Ast.Sfor (_, _, _, b)
    | Ast.Sswitch (_, b) | Ast.Scase (_, b) | Ast.Sdefault b
    | Ast.Slabel (_, b) ->
      child b
    | Ast.Sexpr _ | Ast.Sbreak | Ast.Scontinue | Ast.Sgoto _ | Ast.Sreturn _
    | Ast.Snull ->
      ()
  in
  go 0 root;
  Buffer.contents buf

let fundef_tree ?annot (f : Ast.fundef) : string =
  Printf.sprintf "%s %s(%s)\n%s"
    (Ctypes.to_string f.Ast.f_ret)
    f.Ast.f_name
    (String.concat ", "
       (List.map
          (fun (n, t) -> Ctypes.to_string t ^ " " ^ n)
          f.Ast.f_params))
    (stmt_tree ?annot f.Ast.f_body)
