(* awk_mini: a line-oriented pattern scanner — glob-style matching with
   '*' and '?', field splitting, and per-pattern action counters. The
   analogue of awk: string-heavy control flow, recursion in the matcher,
   and early exits. Patterns arrive via argv; text via stdin. *)

let source = {|
#define MAX_LINE 256
#define MAX_FIELDS 32

char line_buf[MAX_LINE];
int line_count;
int match_count;
int field_total;
long char_total;

/* Recursive glob matcher: '*' any run, '?' any one char. */
int glob_match(char *pat, char *txt) {
  if (*pat == 0) return *txt == 0;
  if (*pat == '*') {
    while (*(pat + 1) == '*') pat++;
    if (*(pat + 1) == 0) return 1;
    while (*txt) {
      if (glob_match(pat + 1, txt)) return 1;
      txt++;
    }
    return glob_match(pat + 1, txt);
  }
  if (*txt == 0) return 0;
  if (*pat == '?' || *pat == *txt) return glob_match(pat + 1, txt + 1);
  return 0;
}

/* Does the pattern match anywhere in the line (unanchored)? */
int search_line(char *pat, char *txt) {
  if (glob_match(pat, txt)) return 1;
  while (*txt) {
    if (glob_match(pat, txt)) return 1;
    txt++;
  }
  return 0;
}

int read_line(void) {
  int c, n = 0;
  c = getchar();
  if (c == EOF) return -1;
  while (c != '\n' && c != EOF) {
    if (n < MAX_LINE - 1) {
      line_buf[n] = c;
      n++;
    }
    c = getchar();
  }
  line_buf[n] = 0;
  return n;
}

int is_space_ch(int c) { return c == ' ' || c == '\t'; }

/* Split the line into whitespace-separated fields; returns the count and
   fills starts[] with field offsets. */
int split_fields(int *starts) {
  int i = 0, n = 0;
  while (line_buf[i]) {
    while (line_buf[i] && is_space_ch(line_buf[i])) i++;
    if (!line_buf[i]) break;
    if (n < MAX_FIELDS) {
      starts[n] = i;
      n++;
    }
    while (line_buf[i] && !is_space_ch(line_buf[i])) i++;
  }
  return n;
}

int line_length(void) {
  int n = 0;
  while (line_buf[n]) n++;
  return n;
}

int main(int argc, char **argv) {
  int starts[MAX_FIELDS];
  int len, p, nf;
  int per_pattern[8];
  for (p = 0; p < 8; p++) per_pattern[p] = 0;
  line_count = 0;
  match_count = 0;
  field_total = 0;
  char_total = 0;
  while ((len = read_line()) >= 0) {
    line_count++;
    char_total += len;
    nf = split_fields(starts);
    field_total += nf;
    for (p = 1; p < argc && p < 9; p++) {
      if (search_line(argv[p], line_buf)) {
        match_count++;
        per_pattern[p - 1]++;
      }
    }
  }
  printf("lines=%d fields=%d chars=%d matches=%d", line_count, field_total,
         (int)char_total, match_count);
  for (p = 1; p < argc && p < 9; p++)
    printf(" p%d=%d", p, per_pattern[p - 1]);
  printf("\n");
  return 0;
}
|}

let text_corpus =
  let lines =
    [ "the quick brown fox jumps over the lazy dog";
      "pack my box with five dozen liquor jugs";
      "how vexingly quick daft zebras jump";
      "sphinx of black quartz judge my vow";
      "errors should never pass silently";
      "in the face of ambiguity refuse the temptation to guess";
      "now is better than never although never is often better";
      "special cases are not special enough to break the rules";
      "although practicality beats purity";
      "simple is better than complex and complex is better than complicated" ]
  in
  let buf = Buffer.create 4096 in
  for i = 0 to 60 do
    Buffer.add_string buf (List.nth lines (i mod List.length lines));
    Buffer.add_string buf (Printf.sprintf " line%d\n" i)
  done;
  Buffer.contents buf

let program : Bench_prog.t =
  { Bench_prog.name = "awk_mini";
    description = "Glob pattern scanner with field splitting";
    analogue = "awk";
    source;
    runs =
      [ Bench_prog.run ~argv:[ "*quick*"; "*jum??*" ] ~input:text_corpus ();
        Bench_prog.run ~argv:[ "*better*"; "*the*"; "*z*" ] ~input:text_corpus ();
        Bench_prog.run ~argv:[ "line1*" ] ~input:text_corpus ();
        Bench_prog.run ~argv:[ "*never*"; "*box*"; "*qu*"; "*xyz*" ]
          ~input:text_corpus () ] }
