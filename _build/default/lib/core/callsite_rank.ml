(* Global call-site frequency estimation (paper section 5.3).

   The estimated absolute frequency of a call site is its local block
   frequency (per one invocation of the containing function) multiplied
   by the estimated invocation count of that function. Calls through
   pointers are omitted, as they cannot be inlined. *)

module Cfg = Cfg_ir.Cfg

(* [inter] gives the estimated invocation count per function name. *)
let estimate (p : Cfg.program) ~(intra : string -> float array)
    ~(inter : string -> float) : (Cfg.call_site * float) list =
  Cfg.direct_sites p
  |> List.map (fun (cs : Cfg.call_site) ->
       let local = (intra cs.Cfg.cs_fun).(cs.Cfg.cs_block) in
       (cs, local *. inter cs.Cfg.cs_fun))

(* Actual call-site counts from a profile, aligned with [direct_sites]. *)
let actual (p : Cfg.program) (profile : Cinterp.Profile.t) :
    (Cfg.call_site * float) list =
  Cfg.direct_sites p
  |> List.map (fun (cs : Cfg.call_site) ->
       (cs, profile.Cinterp.Profile.site_counts.(cs.Cfg.cs_id)))

(* Human-readable label for a call site. *)
let describe (cs : Cfg.call_site) : string =
  let callee =
    match cs.Cfg.cs_callee with
    | Cfg.Direct f -> f
    | Cfg.Builtin f -> f
    | Cfg.Indirect -> "<indirect>"
  in
  Printf.sprintf "%s->%s@B%d" cs.Cfg.cs_fun callee cs.Cfg.cs_block
