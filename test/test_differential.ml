(* Statement-level differential testing: random structured mini-programs
   (int variables, assignments, arithmetic, if/while) are rendered to C
   and interpreted, and the printed final state is compared against an
   OCaml reference interpreter with Int32 semantics. This exercises the
   whole stack — preprocessor, parser, type checker, CFG construction and
   interpreter — against an independent executable specification.

   The mini language, its C renderer, the reference interpreter and the
   generator live in [Corpus.Mini] (promoted there so corpus tooling can
   reuse them); this file owns only the properties. *)

module Pipeline = Core.Pipeline
open Corpus.Mini

let prop_differential =
  QCheck.Test.make ~name:"whole pipeline matches the reference interpreter"
    ~count:200 gen_stmts (fun stmts ->
      let src = render_program stmts in
      let c = Pipeline.compile ~name:"diff" src in
      let o = Pipeline.run_once c { Pipeline.argv = []; input = "" } in
      let expected = ref_run stmts in
      if o.Cinterp.Eval.stdout_text <> expected then
        QCheck.Test.fail_reportf "interpreter: %s\nreference:  %s"
          o.Cinterp.Eval.stdout_text expected
      else true)

(* A couple of fixed regression programs through the same machinery. *)
let test_fixed_cases () =
  let cases =
    [ [ Assign (0, Bin ('*', Var 0, Const 1000000l));
        Assign (0, Bin ('*', Var 0, Var 0)) ];
      [ While (Var 1, [ Assign (1, Bin ('-', Var 1, Const 1l)) ]) ];
      [ If (Bin ('&', Var 2, Const 1l), [ Assign (3, Const (-7l)) ],
            [ Assign (3, Const 7l) ]) ] ]
  in
  List.iter
    (fun stmts ->
      let src = render_program stmts in
      let c = Pipeline.compile ~name:"diff" src in
      let o = Pipeline.run_once c { Pipeline.argv = []; input = "" } in
      Alcotest.(check string) "fixed case" (ref_run stmts)
        o.Cinterp.Eval.stdout_text)
    cases

let suite =
  [ Alcotest.test_case "fixed cases" `Quick test_fixed_cases;
    QCheck_alcotest.to_alcotest prop_differential ]
