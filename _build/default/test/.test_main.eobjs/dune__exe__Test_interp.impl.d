test/test_interp.ml: Alcotest Array Cfg_ir Cinterp Core Int32 List Option Printf QCheck QCheck_alcotest
