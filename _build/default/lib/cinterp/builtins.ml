(* Runtime library for interpreted C programs.

   Implements the libc subset the benchmark corpus uses: stdio on an
   in-memory buffer (stdin is a configurable string, stdout a Buffer),
   malloc/free over the block store, string.h, a deterministic LCG for
   rand(), and math.h. Everything is deterministic so profiles reproduce
   bit-for-bit. *)

exception Exit_program of int

type ctx = {
  mem : Memory.t;
  out : Buffer.t;
  input : string;
  mutable input_pos : int;
  mutable rng : int;
}

let create_ctx ?(input = "") (mem : Memory.t) : ctx =
  { mem; out = Buffer.create 256; input; input_pos = 0; rng = 12345 }

let output (c : ctx) : string = Buffer.contents c.out

(* ------------------------------------------------------------------ *)
(* printf-style formatting. Supports flags [-0], width, precision, and
   the conversions  d i u c s x X o f e g %  — enough for the corpus. *)

let format_value (spec : string) (conv : char) (v : Value.value) : string =
  (* [spec] is the directive without the leading % and without the
     conversion char, e.g. "-8" or "02" or ".3". *)
  let parse_spec () =
    let minus = String.contains spec '-' in
    let zero = String.length spec > 0 && String.contains spec '0'
               && (spec.[0] = '0' || (minus && String.length spec > 1 && spec.[1] = '0')) in
    let digits s =
      let b = Buffer.create 4 in
      String.iter (fun c -> if c >= '0' && c <= '9' then Buffer.add_char b c) s;
      Buffer.contents b
    in
    let width, prec =
      match String.index_opt spec '.' with
      | Some i ->
        let w = digits (String.sub spec 0 i) in
        let p = digits (String.sub spec (i + 1) (String.length spec - i - 1)) in
        ( (if w = "" then None else Some (int_of_string w)),
          if p = "" then Some 0 else Some (int_of_string p) )
      | None ->
        let w = digits spec in
        let w = if zero && w <> "" then String.sub w 1 (String.length w - 1) else w in
        ((if w = "" then None else Some (int_of_string w)), None)
    in
    (minus, zero, width, prec)
  in
  let minus, zero, width, prec = parse_spec () in
  let pad s =
    match width with
    | None -> s
    | Some w when String.length s >= w -> s
    | Some w ->
      let fill = String.make (w - String.length s) (if zero && not minus then '0' else ' ') in
      if minus then s ^ String.make (w - String.length s) ' '
      else if zero && String.length s > 0 && (s.[0] = '-') then
        "-" ^ String.make (w - String.length s) '0'
        ^ String.sub s 1 (String.length s - 1)
      else fill ^ s
  in
  let body =
    match conv with
    | 'd' | 'i' | 'u' -> string_of_int (Value.int_of v)
    | 'x' -> Printf.sprintf "%x" (Value.int_of v land 0xFFFFFFFF)
    | 'X' -> Printf.sprintf "%X" (Value.int_of v land 0xFFFFFFFF)
    | 'o' -> Printf.sprintf "%o" (Value.int_of v land 0xFFFFFFFF)
    | 'c' -> String.make 1 (Char.chr (Value.int_of v land 0xff))
    | 'f' ->
      let p = Option.value ~default:6 prec in
      Printf.sprintf "%.*f" p (Value.float_of v)
    | 'e' ->
      let p = Option.value ~default:6 prec in
      Printf.sprintf "%.*e" p (Value.float_of v)
    | 'g' -> Printf.sprintf "%g" (Value.float_of v)
    | c -> Value.error "printf: unsupported conversion %%%c" c
  in
  pad body

(* Render a format string with arguments; [get_string] reads a C string
   behind a pointer argument. *)
let render_format (c : ctx) (fmt : string) (args : Value.value list) : string
    =
  let buf = Buffer.create (String.length fmt + 32) in
  let args = ref args in
  let next_arg () =
    match !args with
    | a :: rest ->
      args := rest;
      a
    | [] -> Value.error "printf: not enough arguments"
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let ch = fmt.[!i] in
    if ch <> '%' then begin
      Buffer.add_char buf ch;
      incr i
    end
    else if !i + 1 < n && fmt.[!i + 1] = '%' then begin
      Buffer.add_char buf '%';
      i := !i + 2
    end
    else begin
      (* scan to the conversion character *)
      let j = ref (!i + 1) in
      while
        !j < n
        && (match fmt.[!j] with
           | '-' | '+' | ' ' | '#' | '.' | '0' .. '9' | 'l' | 'h' -> true
           | _ -> false)
      do
        incr j
      done;
      if !j >= n then Value.error "printf: truncated format";
      let conv = fmt.[!j] in
      let spec =
        (* drop length modifiers (l, h) from the spec *)
        String.concat ""
          (List.filter_map
             (fun ch ->
               match ch with
               | 'l' | 'h' -> None
               | c -> Some (String.make 1 c))
             (List.init (!j - !i - 1) (fun k -> fmt.[!i + 1 + k])))
      in
      (match conv with
      | 's' ->
        let v = next_arg () in
        let s =
          match v with
          | Value.Vptr p -> Memory.read_cstring c.mem p
          | Value.Vint 0 -> "(null)"
          | v -> Value.error "printf: %%s needs a string, got %s" (Value.to_string v)
        in
        (* apply width via format_value-style padding *)
        let minus = String.contains spec '-' in
        let width =
          let b = Buffer.create 4 in
          String.iter (fun c -> if c >= '0' && c <= '9' then Buffer.add_char b c) spec;
          if Buffer.length b = 0 then 0 else int_of_string (Buffer.contents b)
        in
        let padded =
          if String.length s >= width then s
          else if minus then s ^ String.make (width - String.length s) ' '
          else String.make (width - String.length s) ' ' ^ s
        in
        Buffer.add_string buf padded
      | conv -> Buffer.add_string buf (format_value spec conv (next_arg ())));
      i := !j + 1
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The builtin dispatch table. *)

let getchar (c : ctx) : int =
  if c.input_pos >= String.length c.input then -1
  else begin
    let ch = Char.code c.input.[c.input_pos] in
    c.input_pos <- c.input_pos + 1;
    ch
  end

let rand_next (c : ctx) : int =
  (* glibc-style LCG, deterministic across runs *)
  c.rng <- ((c.rng * 1103515245) + 12345) land 0x7FFFFFFF;
  c.rng

let as_ptr name = function
  | Value.Vptr p -> p
  | v -> Value.error "%s: expected pointer, got %s" name (Value.to_string v)

let as_str (c : ctx) name v = Memory.read_cstring c.mem (as_ptr name v)

let call (c : ctx) (name : string) (args : Value.value list) : Value.value =
  let int1 f =
    match args with
    | [ v ] -> Value.Vint (f (Value.int_of v))
    | _ -> Value.error "%s: arity" name
  in
  let float1 f =
    match args with
    | [ v ] -> Value.Vfloat (f (Value.float_of v))
    | _ -> Value.error "%s: arity" name
  in
  match (name, args) with
  | "printf", fmt :: rest ->
    let s = render_format c (as_str c "printf" fmt) rest in
    Buffer.add_string c.out s;
    Value.Vint (String.length s)
  | "sprintf", dst :: fmt :: rest ->
    let s = render_format c (as_str c "sprintf" fmt) rest in
    Memory.write_cstring c.mem (as_ptr "sprintf" dst) s;
    Value.Vint (String.length s)
  | "putchar", [ v ] ->
    let n = Value.int_of v in
    Buffer.add_char c.out (Char.chr (n land 0xff));
    Value.Vint n
  | "puts", [ v ] ->
    Buffer.add_string c.out (as_str c "puts" v);
    Buffer.add_char c.out '\n';
    Value.Vint 0
  | "getchar", [] -> Value.Vint (getchar c)
  | "malloc", [ v ] ->
    let n = Value.int_of v in
    if n <= 0 then Value.Vint 0
    else Value.Vptr (Memory.alloc c.mem n ~tag:"malloc")
  | "calloc", [ a; b ] ->
    let n = Value.int_of a * Value.int_of b in
    if n <= 0 then Value.Vint 0
    else Value.Vptr (Memory.alloc c.mem n ~tag:"calloc")
  | "realloc", [ p; v ] -> begin
    let n = Value.int_of v in
    match p with
    | Value.Vint 0 ->
      if n <= 0 then Value.Vint 0
      else Value.Vptr (Memory.alloc c.mem n ~tag:"realloc")
    | Value.Vptr old ->
      let fresh = Memory.alloc c.mem n ~tag:"realloc" in
      let old_size = Memory.size_of_block c.mem old in
      Memory.blit c.mem ~src:old ~dst:fresh (min n old_size);
      Memory.free c.mem old;
      Value.Vptr fresh
    | v -> Value.error "realloc: bad pointer %s" (Value.to_string v)
  end
  | "free", [ Value.Vint 0 ] -> Value.Vint 0
  | "free", [ v ] ->
    Memory.free c.mem (as_ptr "free" v);
    Value.Vint 0
  | "strlen", [ v ] -> Value.Vint (String.length (as_str c "strlen" v))
  | "strcmp", [ a; b ] ->
    Value.Vint (compare (as_str c "strcmp" a) (as_str c "strcmp" b))
  | "strncmp", [ a; b; n ] ->
    let n = Value.int_of n in
    let cut s = if String.length s <= n then s else String.sub s 0 n in
    Value.Vint
      (compare (cut (as_str c "strncmp" a)) (cut (as_str c "strncmp" b)))
  | "strcpy", [ dst; src ] ->
    let p = as_ptr "strcpy" dst in
    Memory.write_cstring c.mem p (as_str c "strcpy" src);
    dst
  | "strncpy", [ dst; src; n ] ->
    let p = as_ptr "strncpy" dst in
    let n = Value.int_of n in
    let s = as_str c "strncpy" src in
    for i = 0 to n - 1 do
      let v = if i < String.length s then Char.code s.[i] else 0 in
      Memory.store c.mem (Memory.offset p i) (Value.Vint v)
    done;
    dst
  | "strcat", [ dst; src ] ->
    let p = as_ptr "strcat" dst in
    let existing = Memory.read_cstring c.mem p in
    Memory.write_cstring c.mem
      (Memory.offset p (String.length existing))
      (as_str c "strcat" src);
    dst
  | "strchr", [ sp; ch ] -> begin
    let p = as_ptr "strchr" sp in
    let target = Value.int_of ch land 0xff in
    let rec go i =
      match Memory.load c.mem (Memory.offset p i) with
      | Value.Vint 0 ->
        if target = 0 then Value.Vptr (Memory.offset p i) else Value.Vint 0
      | Value.Vint x when x land 0xff = target ->
        Value.Vptr (Memory.offset p i)
      | Value.Vint _ -> go (i + 1)
      | v -> Value.error "strchr: bad cell %s" (Value.to_string v)
    in
    go 0
  end
  | "memset", [ dst; v; n ] ->
    let p = as_ptr "memset" dst in
    Memory.fill c.mem ~dst:p (Value.int_of n) (Value.Vint (Value.wrap8 (Value.int_of v)));
    dst
  | "memcpy", [ dst; src; n ] ->
    Memory.blit c.mem ~src:(as_ptr "memcpy" src) ~dst:(as_ptr "memcpy" dst)
      (Value.int_of n);
    dst
  | "atoi", [ v ] -> begin
    let s = String.trim (as_str c "atoi" v) in
    let s =
      (* take the leading integer prefix *)
      let n = String.length s in
      let stop = ref 0 in
      if !stop < n && (s.[0] = '-' || s.[0] = '+') then incr stop;
      while !stop < n && s.[!stop] >= '0' && s.[!stop] <= '9' do
        incr stop
      done;
      String.sub s 0 !stop
    in
    match int_of_string_opt s with
    | Some n -> Value.Vint (Value.wrap32 n)
    | None -> Value.Vint 0
  end
  | "abs", _ -> int1 abs
  | "exit", [ v ] -> raise (Exit_program (Value.int_of v))
  | "abort", [] -> raise (Exit_program 134)
  | "assert", [ v ] ->
    if not (Value.to_bool v) then Value.error "assertion failed";
    Value.Vint 0
  | "rand", [] -> Value.Vint (rand_next c)
  | "srand", [ v ] ->
    c.rng <- Value.int_of v land 0x7FFFFFFF;
    Value.Vint 0
  | "clock", [] -> Value.Vint 0 (* cost is tracked by the harness *)
  | "sqrt", _ -> float1 sqrt
  | "fabs", _ -> float1 abs_float
  | "sin", _ -> float1 sin
  | "cos", _ -> float1 cos
  | "exp", _ -> float1 exp
  | "log", _ -> float1 log
  | "floor", _ -> float1 floor
  | "ceil", _ -> float1 ceil
  | "pow", [ a; b ] ->
    Value.Vfloat (Float.pow (Value.float_of a) (Value.float_of b))
  | _ ->
    Value.error "builtin %s: bad call with %d argument(s)" name
      (List.length args)
