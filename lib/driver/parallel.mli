(** Deterministic work-queue scheduler on OCaml 5 domains.

    A single process-wide pool of worker domains drains a shared task
    queue; {!map} fans a list of independent computations out across the
    pool and merges the results back in input order, so the output of a
    parallel map is byte-identical to [List.map] whenever the tasks
    themselves are deterministic and independent. The parallelism level
    is a process-wide setting ([--jobs] on the command line):

    - [jobs <= 1] runs everything inline in the calling domain — the
      sequential reference path that the differential tests compare
      against;
    - [jobs = n > 1] keeps [n - 1] worker domains and lets the calling
      domain drain the queue too while it waits, so [n] tasks run
      concurrently.

    Nested {!map} calls (a task that itself maps) run inline in the
    domain that is executing the task: the pool never deadlocks waiting
    on itself, and nesting cannot change results. Exceptions raised by
    tasks are re-raised in the caller; when several tasks fail, the one
    with the lowest input index wins, mirroring where [List.map] would
    have stopped. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default parallelism. *)

val jobs : unit -> int
(** The current process-wide parallelism level (>= 1). *)

val set_jobs : int -> unit
(** Set the parallelism level (clamped to >= 1). If a pool of a
    different size is running it is retired (its workers join) and the
    next {!map} spawns a fresh one. Raises [Invalid_argument] when
    called from inside a {!map} task: retiring the pool would join the
    very domain making the call, deadlocking it. *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element of [xs], running up to
    [jobs ()] applications concurrently, and returns the results in
    input order. *)

val run : (unit -> 'a) list -> 'a list
(** [run thunks] executes the thunks across the pool and returns their
    results in input order — [map] for heterogeneous stage lists. *)

val shutdown : unit -> unit
(** Retire the pool, joining all worker domains. The next {!map} call
    respawns it; useful around benchmarks that must not see idle
    workers from an earlier configuration. Registered [at_exit].
    Raises [Invalid_argument] from inside a {!map} task, like
    {!set_jobs}. *)
