(** The paper's "smart" static branch predictor (section 4.1).

    Operates on the abstract syntax and the C type system. Heuristics fire
    in a fixed priority order — constant, pointer, error-call, opcode,
    multi-AND, store, return — with a "taken" default; loop back edges are
    always predicted taken. Each heuristic can be disabled through
    {!Config} for the ablation experiments.

    Also provides the Wu-Larus probability-combining extension answering
    the paper's closing open question. *)

module Ast = Cfront.Ast
module Ctypes = Cfront.Ctypes
module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Const_fold = Cfront.Const_fold
module Cfg = Cfg_ir.Cfg

(** A predicted branch direction; [Taken] means the condition is true. *)
type prediction = Taken | NotTaken

(** Which heuristic decided the prediction. *)
type reason =
  | Hconstant   (** condition folds to a constant *)
  | Hloop       (** loop back edge *)
  | Hpointer    (** NULL test / pointer comparison *)
  | Herror_call (** arm calls exit/abort/assert *)
  | Hopcode     (** comparison shape: x < 0, x == y, ... *)
  | Hmulti_and  (** several && conjuncts *)
  | Hstore      (** arm writes a variable read elsewhere *)
  | Hreturn     (** arm returns early *)
  | Hdefault

val reason_to_string : reason -> string

(** Probability of the predicted arm (paper footnote 5; default 0.8),
    read from {!Config}. *)
val taken_probability : unit -> float

val negate : prediction -> prediction

(** Predict an if-branch at the AST level: [predict_if tc usage if_stmt
    cond ~then_arm ~else_arm]. *)
val predict_if :
  Typecheck.t ->
  Usage.t ->
  Ast.stmt ->
  Ast.expr ->
  then_arm:Ast.stmt option ->
  else_arm:Ast.stmt option ->
  prediction * reason

(** Predict a CFG branch: loop branches are taken; if-branches go through
    the heuristic chain. *)
val predict : Typecheck.t -> Usage.t -> Cfg.branch -> prediction * reason

(** The Dempster-Shafer combination of two probabilities (Wu-Larus). *)
val dempster_shafer : float -> float -> float

(** The calibrated taken-probability a heuristic carries in the Wu-Larus
    combination, if it participates. *)
val heuristic_probability : reason -> float option

(** P(condition true) by combining the evidence of every applicable
    heuristic with {!dempster_shafer} — the probability-generating
    predictor of the paper's closing open question. *)
val probability_true_combined :
  Typecheck.t ->
  Usage.t ->
  Ast.stmt ->
  Ast.expr ->
  then_arm:Ast.stmt option ->
  else_arm:Ast.stmt option ->
  float

(** P(condition true) under the paper's model: the loop continue
    probability for loop branches, the 0.8/0.2 rule for ifs. *)
val probability_true : Typecheck.t -> Usage.t -> Cfg.branch -> float

(** The naive model used by the [loop] estimator: loops keep the standard
    count, everything else is 50/50. *)
val probability_true_naive : Cfg.branch -> float
