examples/callsite_ranking.ml: Array Cfg_ir Cinterp Core Option Printf Suite
