(* CFG-level interpreter for the C subset, with built-in profiling.

   Executing the same CFG the estimators analyse gives exact basic-block,
   branch-outcome and call-site counts — the role played by gcc's
   instrumentation in the paper. Expressions are evaluated directly from
   the typed AST carried in block instructions. *)

module Ast = Cfront.Ast
module Cfg = Cfg_ir.Cfg
module Ctypes = Cfront.Ctypes
module Typecheck = Cfront.Typecheck

exception Error = Value.Runtime_error

(* Budget stops: raised mid-execution when the run exceeds its fuel or
   wall-clock budget, and converted by [run] into [Budget_exhausted]
   carrying the *partial* outcome — a divergent or runaway profile run
   yields the profile it accumulated, never a hang or a bare crash. The
   compiled back end ([Compile]) raises these same constructors so the
   two back ends stay observationally identical under exhaustion. *)
exception Out_of_fuel
exception Out_of_wall_clock

(* How many blocks run between wall-clock reads when a deadline is set:
   one [Unix.gettimeofday] per ~50k blocks keeps the check off the hot
   path. Without a deadline the tick starts at [max_int] and the check
   never triggers. *)
let clock_check_interval = 50_000

type genv = {
  prog : Cfg.program;
  tc : Typecheck.t;
  reg : Ctypes.registry;
  mem : Memory.t;
  bctx : Builtins.ctx;
  globals : (string, Value.ptr) Hashtbl.t;
  strings : (string, Value.ptr) Hashtbl.t;
  site_of_expr : (Ast.node_id, int) Hashtbl.t; (* call expr -> cs_id *)
  profile : Profile.t;
  mutable fuel : int;
  deadline : float; (* absolute gettimeofday seconds; [infinity] = none *)
  mutable clock_tick : int; (* blocks until the next wall-clock read *)
}

type frame = { fn : Cfg.fn; locals : Value.ptr array }

(* A frame for evaluating global initializers (no locals). *)
let null_frame (g : genv) : frame =
  match g.prog.Cfg.prog_fns with
  | fn :: _ -> { fn; locals = [||] }
  | [] -> Value.error "program has no functions"

let ty_of (g : genv) (e : Ast.expr) : Ctypes.ty = Typecheck.type_of g.tc e

let size_of (g : genv) (t : Ctypes.ty) : int =
  try Ctypes.size_of g.reg t
  with Ctypes.Type_error m -> Value.error "%s" m

let elem_size (g : genv) (e : Ast.expr) : int =
  match ty_of g e with
  | Ctypes.Tptr t -> size_of g t
  | t -> Value.error "expected pointer type, got %s" (Ctypes.to_string t)

let intern_string (g : genv) (s : string) : Value.ptr =
  match Hashtbl.find_opt g.strings s with
  | Some p -> p
  | None ->
    let p = Memory.alloc g.mem (String.length s + 1) ~tag:"string literal" in
    Memory.write_cstring g.mem p s;
    Hashtbl.replace g.strings s p;
    p

(* Coerce a value for storage into an object of type [ty]. *)
let coerce (ty : Ctypes.ty) (v : Value.value) : Value.value =
  match (ty, v) with
  | Ctypes.Tint, Value.Vint n -> Value.Vint (Value.wrap32 n)
  | Ctypes.Tint, Value.Vfloat f -> Value.Vint (Value.wrap32 (int_of_float f))
  | Ctypes.Tchar, Value.Vint n -> Value.Vint (Value.wrap8 n)
  | Ctypes.Tchar, Value.Vfloat f -> Value.Vint (Value.wrap8 (int_of_float f))
  | Ctypes.Tdouble, (Value.Vint _ | Value.Vfloat _) ->
    Value.Vfloat (Value.float_of v)
  | Ctypes.Tptr _, (Value.Vptr _ | Value.Vfun _) -> v
  | Ctypes.Tptr _, Value.Vint 0 -> Value.Vint 0
  | Ctypes.Tptr _, Value.Vint n ->
    Value.error "storing non-null integer %d into a pointer" n
  | (Ctypes.Tint | Ctypes.Tchar), Value.Vptr _ ->
    Value.error "storing a pointer into an integer object"
  | Ctypes.Tvoid, _ -> Value.Vint 0
  | (Ctypes.Tstruct _ | Ctypes.Tarray _ | Ctypes.Tfun _), _ -> v
  | t, v ->
    Value.error "cannot store %s into %s" (Value.to_string v)
      (Ctypes.to_string t)

let truthy = Value.to_bool

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let rec eval_expr (g : genv) (fr : frame) (e : Ast.expr) : Value.value =
  match e.Ast.enode with
  | Ast.IntLit n -> Value.Vint (Value.wrap32 n)
  | Ast.CharLit c -> Value.Vint c
  | Ast.FloatLit f -> Value.Vfloat f
  | Ast.StringLit s -> Value.Vptr (intern_string g s)
  | Ast.Ident _ -> begin
    match Typecheck.resolution_of g.tc e with
    | Some (Typecheck.Renum v) -> Value.Vint v
    | Some (Typecheck.Rfun name) -> Value.Vfun (Value.Fuser name)
    | Some (Typecheck.Rbuiltin name) -> Value.Vfun (Value.Fbuiltin name)
    | Some (Typecheck.Rlocal slot) ->
      let declared =
        fr.fn.Cfg.fn_info.Typecheck.fi_locals.(slot).Typecheck.l_ty
      in
      load_object g declared fr.locals.(slot)
    | Some (Typecheck.Rglobal gname) ->
      let d = Hashtbl.find g.tc.Typecheck.globals gname in
      let loc = eval_lvalue g fr e in
      load_object g d.Ast.d_ty loc
    | None -> Value.error "unresolved identifier at %s"
                (Format.asprintf "%a" Cfront.Token.pp_pos e.Ast.epos)
  end
  | Ast.Unop (op, a) -> eval_unop g fr e op a
  | Ast.Binop (op, a, b) -> eval_binop g fr e op a b
  | Ast.Assign (op, lhs, rhs) -> eval_assign g fr op lhs rhs
  | Ast.Cond (c, a, b) ->
    if truthy (eval_expr g fr c) then eval_expr g fr a else eval_expr g fr b
  | Ast.Call (fn, args) -> eval_call g fr e fn args
  | Ast.Cast (ty, a) -> begin
    let v = eval_expr g fr a in
    match ty with
    | Ctypes.Tvoid -> Value.Vint 0
    | Ctypes.Tptr _ when Value.is_null v -> Value.Vint 0
    | Ctypes.Tptr _ -> v (* pointer casts are free in the cell model *)
    | _ -> coerce ty v
  end
  | Ast.Index _ | Ast.Field _ | Ast.Arrow _ ->
    let loc = eval_lvalue g fr e in
    load_object g (designated_ty g e) loc
  | Ast.SizeofT ty -> Value.Vint (size_of g ty)
  | Ast.SizeofE a -> Value.Vint (size_of g (ty_of g a))
  | Ast.PreIncr a -> incr_decr g fr a ~delta:1 ~pre:true
  | Ast.PreDecr a -> incr_decr g fr a ~delta:(-1) ~pre:true
  | Ast.PostIncr a -> incr_decr g fr a ~delta:1 ~pre:false
  | Ast.PostDecr a -> incr_decr g fr a ~delta:(-1) ~pre:false
  | Ast.Comma (a, b) ->
    ignore (eval_expr g fr a);
    eval_expr g fr b

(* Load a value of declared type [ty] from [loc]; aggregates evaluate to
   their address (array decay / struct designator). *)
and load_object (g : genv) (ty : Ctypes.ty) (loc : Value.ptr) : Value.value =
  match ty with
  | Ctypes.Tstruct _ | Ctypes.Tarray _ -> Value.Vptr loc
  | _ -> Memory.load g.mem loc

and eval_lvalue (g : genv) (fr : frame) (e : Ast.expr) : Value.ptr =
  match e.Ast.enode with
  | Ast.Ident name -> begin
    match Typecheck.resolution_of g.tc e with
    | Some (Typecheck.Rlocal slot) -> fr.locals.(slot)
    | Some (Typecheck.Rglobal gname) -> begin
      match Hashtbl.find_opt g.globals gname with
      | Some p -> p
      | None -> Value.error "global %s has no storage" gname
    end
    | _ -> Value.error "%s is not an object" name
  end
  | Ast.Unop (Ast.Uderef, a) -> expect_ptr g fr a
  | Ast.Index (a, i) ->
    let base, scale =
      match ty_of g a with
      | Ctypes.Tptr t -> (expect_ptr g fr a, size_of g t)
      | _ -> (expect_ptr g fr i, size_of g (Option.get (pointee g i)))
    in
    let idx =
      match ty_of g a with
      | Ctypes.Tptr _ -> Value.int_of (eval_expr g fr i)
      | _ -> Value.int_of (eval_expr g fr a)
    in
    Memory.offset base (idx * scale)
  | Ast.Field (a, fname) -> begin
    match ty_of g a with
    | Ctypes.Tstruct si ->
      let fld = Ctypes.find_field g.reg si fname in
      Memory.offset (eval_lvalue g fr a) fld.Ctypes.fld_offset
    | t -> Value.error ".%s on %s" fname (Ctypes.to_string t)
  end
  | Ast.Arrow (a, fname) -> begin
    match ty_of g a with
    | Ctypes.Tptr (Ctypes.Tstruct si) ->
      let fld = Ctypes.find_field g.reg si fname in
      Memory.offset (expect_ptr g fr a) fld.Ctypes.fld_offset
    | t -> Value.error "->%s on %s" fname (Ctypes.to_string t)
  end
  | _ -> Value.error "expression is not an lvalue"

and pointee (g : genv) (e : Ast.expr) : Ctypes.ty option =
  match ty_of g e with Ctypes.Tptr t -> Some t | _ -> None

(* The undecayed type of the object designated by an Index/Field/Arrow
   lvalue, so nested arrays evaluate to addresses rather than cell loads. *)
and designated_ty (g : genv) (e : Ast.expr) : Ctypes.ty =
  match e.Ast.enode with
  | Ast.Index (a, i) -> begin
    match (ty_of g a, ty_of g i) with
    | Ctypes.Tptr t, _ -> t
    | _, Ctypes.Tptr t -> t
    | t, _ -> Value.error "indexing %s" (Ctypes.to_string t)
  end
  | Ast.Field (a, fname) -> begin
    match ty_of g a with
    | Ctypes.Tstruct si -> (Ctypes.find_field g.reg si fname).Ctypes.fld_ty
    | t -> Value.error ".%s on %s" fname (Ctypes.to_string t)
  end
  | Ast.Arrow (a, fname) -> begin
    match ty_of g a with
    | Ctypes.Tptr (Ctypes.Tstruct si) ->
      (Ctypes.find_field g.reg si fname).Ctypes.fld_ty
    | t -> Value.error "->%s on %s" fname (Ctypes.to_string t)
  end
  | _ -> ty_of g e

and expect_ptr (g : genv) (fr : frame) (e : Ast.expr) : Value.ptr =
  match eval_expr g fr e with
  | Value.Vptr p -> p
  | Value.Vint 0 -> Value.error "null pointer dereference"
  | v -> Value.error "expected a pointer, got %s" (Value.to_string v)

and eval_unop g fr (e : Ast.expr) op a : Value.value =
  match op with
  | Ast.Uplus -> eval_expr g fr a
  | Ast.Uneg -> begin
    match eval_expr g fr a with
    | Value.Vint n -> Value.Vint (Value.wrap32 (-n))
    | Value.Vfloat f -> Value.Vfloat (-.f)
    | v -> Value.error "cannot negate %s" (Value.to_string v)
  end
  | Ast.Unot -> Value.Vint (if truthy (eval_expr g fr a) then 0 else 1)
  | Ast.Ubnot -> Value.Vint (Value.wrap32 (lnot (Value.int_of (eval_expr g fr a))))
  | Ast.Uderef -> begin
    match ty_of g a with
    | Ctypes.Tptr (Ctypes.Tfun _) -> eval_expr g fr a
    | Ctypes.Tptr t ->
      let p = expect_ptr g fr a in
      (match t with
      | Ctypes.Tarray _ | Ctypes.Tstruct _ -> Value.Vptr p
      | _ -> Memory.load g.mem p)
    | t -> Value.error "dereferencing %s" (Ctypes.to_string t)
  end
  | Ast.Uaddr -> begin
    match a.Ast.enode with
    | Ast.Ident _
      when (match Typecheck.resolution_of g.tc a with
           | Some (Typecheck.Rfun _ | Typecheck.Rbuiltin _) -> true
           | _ -> false) ->
      eval_expr g fr a
    | _ ->
      ignore e;
      Value.Vptr (eval_lvalue g fr a)
  end

and eval_binop g fr (e : Ast.expr) op a b : Value.value =
  match op with
  | Ast.Bland ->
    if not (truthy (eval_expr g fr a)) then Value.Vint 0
    else Value.Vint (if truthy (eval_expr g fr b) then 1 else 0)
  | Ast.Blor ->
    if truthy (eval_expr g fr a) then Value.Vint 1
    else Value.Vint (if truthy (eval_expr g fr b) then 1 else 0)
  | _ ->
    let va = eval_expr g fr a in
    let vb = eval_expr g fr b in
    apply_binop g ~ta:(ty_of g a) ~tb:(ty_of g b) op va vb
      ~pos:e.Ast.epos

and apply_binop g ~(ta : Ctypes.ty) ~(tb : Ctypes.ty) op va vb ~pos :
    Value.value =
  ignore pos;
  let int_op f =
    Value.Vint (Value.wrap32 (f (Value.int_of va) (Value.int_of vb)))
  in
  let float_ctx = ta = Ctypes.Tdouble || tb = Ctypes.Tdouble in
  let arith fint ffloat =
    if float_ctx then
      Value.Vfloat (ffloat (Value.float_of va) (Value.float_of vb))
    else int_op fint
  in
  let cmp result = Value.Vint (if result then 1 else 0) in
  let compare_values lt =
    match (va, vb) with
    | Value.Vptr p, Value.Vptr q ->
      if p.Value.blk <> q.Value.blk then
        lt (compare p.Value.blk q.Value.blk) 0
      else lt (compare p.Value.off q.Value.off) 0
    | Value.Vptr _, Value.Vint 0 -> lt 1 0
    | Value.Vint 0, Value.Vptr _ -> lt (-1) 0
    | _ ->
      if float_ctx then lt (compare (Value.float_of va) (Value.float_of vb)) 0
      else lt (compare (Value.int_of va) (Value.int_of vb)) 0
  in
  match op with
  | Ast.Badd -> begin
    match (ta, tb) with
    | Ctypes.Tptr t, _ ->
      let p = expect_ptr_value va in
      Value.Vptr (Memory.offset p (Value.int_of vb * size_of g t))
    | _, Ctypes.Tptr t ->
      let p = expect_ptr_value vb in
      Value.Vptr (Memory.offset p (Value.int_of va * size_of g t))
    | _ -> arith ( + ) ( +. )
  end
  | Ast.Bsub -> begin
    match (ta, tb) with
    | Ctypes.Tptr t, Ctypes.Tptr _ -> begin
      match (va, vb) with
      | Value.Vptr p, Value.Vptr q when p.Value.blk = q.Value.blk ->
        Value.Vint ((p.Value.off - q.Value.off) / size_of g t)
      | Value.Vptr _, Value.Vptr _ ->
        Value.error "subtracting pointers into different objects"
      | _ -> Value.error "pointer subtraction on non-pointers"
    end
    | Ctypes.Tptr t, _ ->
      let p = expect_ptr_value va in
      Value.Vptr (Memory.offset p (-Value.int_of vb * size_of g t))
    | _ -> arith ( - ) ( -. )
  end
  | Ast.Bmul -> arith ( * ) ( *. )
  | Ast.Bdiv ->
    if float_ctx then begin
      let d = Value.float_of vb in
      if d = 0.0 then Value.error "floating division by zero";
      Value.Vfloat (Value.float_of va /. d)
    end
    else begin
      let d = Value.int_of vb in
      if d = 0 then Value.error "division by zero";
      Value.Vint (Value.wrap32 (Value.int_of va / d))
    end
  | Ast.Bmod ->
    let d = Value.int_of vb in
    if d = 0 then Value.error "modulo by zero";
    Value.Vint (Value.wrap32 (Value.int_of va mod d))
  | Ast.Bshl -> int_op (fun x y -> x lsl (y land 31))
  | Ast.Bshr -> int_op (fun x y -> x asr (y land 31))
  | Ast.Bband -> int_op ( land )
  | Ast.Bbor -> int_op ( lor )
  | Ast.Bbxor -> int_op ( lxor )
  | Ast.Blt -> cmp (compare_values (fun c z -> c < z))
  | Ast.Bgt -> cmp (compare_values (fun c z -> c > z))
  | Ast.Ble -> cmp (compare_values (fun c z -> c <= z))
  | Ast.Bge -> cmp (compare_values (fun c z -> c >= z))
  | Ast.Beq -> cmp (Value.equal_values va vb)
  | Ast.Bne -> cmp (not (Value.equal_values va vb))
  | Ast.Bland | Ast.Blor -> assert false (* handled by eval_binop *)

and expect_ptr_value = function
  | Value.Vptr p -> p
  | Value.Vint 0 -> Value.error "arithmetic on a null pointer"
  | v -> Value.error "expected pointer, got %s" (Value.to_string v)

and eval_assign g fr op lhs rhs : Value.value =
  let tl = ty_of g lhs in
  match (op, tl) with
  | Ast.Aplain, Ctypes.Tstruct si ->
    (* struct assignment: copy all cells *)
    let dst = eval_lvalue g fr lhs in
    let src =
      match eval_expr g fr rhs with
      | Value.Vptr p -> p
      | v -> Value.error "struct assignment from %s" (Value.to_string v)
    in
    let size = (Ctypes.find g.reg si).Ctypes.str_size in
    Memory.blit g.mem ~src ~dst size;
    Value.Vptr dst
  | Ast.Aplain, _ ->
    let loc = eval_lvalue g fr lhs in
    let v = coerce tl (eval_expr g fr rhs) in
    Memory.store g.mem loc v;
    v
  | _, _ ->
    let bop = Option.get (Ast.binop_of_assign op) in
    let loc = eval_lvalue g fr lhs in
    let old = Memory.load g.mem loc in
    let vr = eval_expr g fr rhs in
    let result =
      apply_binop g ~ta:tl ~tb:(ty_of g rhs) bop old vr ~pos:lhs.Ast.epos
    in
    let v = coerce tl result in
    Memory.store g.mem loc v;
    v

and incr_decr g fr (a : Ast.expr) ~delta ~pre : Value.value =
  let loc = eval_lvalue g fr a in
  let old = Memory.load g.mem loc in
  let ty = ty_of g a in
  let fresh =
    match (ty, old) with
    | Ctypes.Tptr t, Value.Vptr p ->
      Value.Vptr (Memory.offset p (delta * size_of g t))
    | Ctypes.Tptr _, Value.Vint 0 ->
      Value.error "arithmetic on a null pointer"
    | Ctypes.Tdouble, _ ->
      Value.Vfloat (Value.float_of old +. float_of_int delta)
    | _, _ -> coerce ty (Value.Vint (Value.int_of old + delta))
  in
  Memory.store g.mem loc fresh;
  if pre then fresh else old

(* ------------------------------------------------------------------ *)
(* Calls and function execution *)

and eval_call g fr (e : Ast.expr) (fn_expr : Ast.expr) (args : Ast.expr list)
    : Value.value =
  (* call-site profiling *)
  (match Hashtbl.find_opt g.site_of_expr e.Ast.eid with
  | Some cs_id ->
    g.profile.Profile.site_counts.(cs_id) <-
      g.profile.Profile.site_counts.(cs_id) +. 1.0
  | None -> ());
  let callee = eval_expr g fr fn_expr in
  let arg_values =
    List.map
      (fun (a : Ast.expr) ->
        match ty_of g a with
        | Ctypes.Tstruct _ -> Value.Vptr (eval_lvalue g fr a)
        | _ -> eval_expr g fr a)
      args
  in
  match callee with
  | Value.Vfun (Value.Fbuiltin name) -> Builtins.call g.bctx name arg_values
  | Value.Vfun (Value.Fuser name) -> begin
    match Cfg.find_fn g.prog name with
    | Some fn -> exec_fn g fn arg_values
    | None -> Value.error "call to undefined function %s" name
  end
  | v -> Value.error "calling a non-function value %s" (Value.to_string v)

and exec_fn (g : genv) (fn : Cfg.fn) (args : Value.value list) : Value.value
    =
  let fi = fn.Cfg.fn_info in
  let locals =
    Array.map
      (fun (li : Typecheck.local_info) ->
        Memory.alloc g.mem
          (size_of g li.Typecheck.l_ty)
          ~tag:(fn.Cfg.fn_name ^ "." ^ li.Typecheck.l_name))
      fi.Typecheck.fi_locals
  in
  let fr = { fn; locals } in
  (* bind parameters *)
  List.iteri
    (fun i v ->
      let li = fi.Typecheck.fi_locals.(i) in
      match li.Typecheck.l_ty with
      | Ctypes.Tstruct si -> begin
        match v with
        | Value.Vptr src ->
          Memory.blit g.mem ~src ~dst:locals.(i)
            (Ctypes.find g.reg si).Ctypes.str_size
        | v -> Value.error "struct argument is %s" (Value.to_string v)
      end
      | ty -> Memory.store g.mem locals.(i) (coerce ty v))
    args;
  let counters = Profile.fn_counters g.profile fn.Cfg.fn_name in
  let result = exec_blocks g fr counters fn.Cfg.fn_entry in
  Array.iter (fun p -> Memory.kill g.mem p) locals;
  coerce fn.Cfg.fn_def.Ast.f_ret result

and exec_blocks g fr (counters : Profile.fn_counters) (start : int) :
    Value.value =
  let blocks = fr.fn.Cfg.fn_blocks in
  let rec run bid : Value.value =
    if g.fuel <= 0 then raise Out_of_fuel;
    g.clock_tick <- g.clock_tick - 1;
    if g.clock_tick <= 0 then begin
      g.clock_tick <- clock_check_interval;
      if Unix.gettimeofday () >= g.deadline then raise Out_of_wall_clock
    end;
    let blk = blocks.(bid) in
    counters.Profile.block_counts.(bid) <-
      counters.Profile.block_counts.(bid) +. 1.0;
    g.fuel <- g.fuel - 1 - List.length blk.Cfg.b_instrs;
    g.profile.Profile.work <-
      g.profile.Profile.work +. 1.0 +. float_of_int (List.length blk.Cfg.b_instrs);
    List.iter (exec_instr g fr) blk.Cfg.b_instrs;
    match blk.Cfg.b_term with
    | Cfg.Tjump next -> run next
    | Cfg.Tbranch (br, t, f) ->
      let v = truthy (eval_expr g fr br.Cfg.br_cond) in
      if v then
        counters.Profile.branch_taken.(bid) <-
          counters.Profile.branch_taken.(bid) +. 1.0
      else
        counters.Profile.branch_not_taken.(bid) <-
          counters.Profile.branch_not_taken.(bid) +. 1.0;
      run (if v then t else f)
    | Cfg.Tswitch (scrutinee, cases, default) ->
      let v = Value.int_of (eval_expr g fr scrutinee) in
      let target =
        match List.assoc_opt v cases with Some t -> t | None -> default
      in
      run target
    | Cfg.Treturn (Some e) -> eval_expr g fr e
    | Cfg.Treturn None -> Value.Vint 0
  in
  run start

and exec_instr g fr = function
  | Cfg.Iexpr e -> ignore (eval_expr g fr e)
  | Cfg.Ilocal_init (slot, d) -> begin
    match d.Ast.d_init with
    | Some init -> write_init g fr fr.locals.(slot) d.Ast.d_ty init
    | None -> ()
  end

(* Write an initializer into the object at [loc]. *)
and write_init g fr (loc : Value.ptr) (ty : Ctypes.ty) (init : Ast.init) :
    unit =
  match (ty, init) with
  | Ctypes.Tarray (Ctypes.Tchar, _), Ast.Iexpr { Ast.enode = Ast.StringLit s; _ }
    ->
    Memory.write_cstring g.mem loc s
  | _, Ast.Iexpr e when Ctypes.is_scalar (Ctypes.decay ty) ->
    Memory.store g.mem loc (coerce ty (eval_expr g fr e))
  | Ctypes.Tstruct si, Ast.Iexpr e -> begin
    (* struct copy initialization *)
    match eval_expr g fr e with
    | Value.Vptr src ->
      Memory.blit g.mem ~src ~dst:loc (Ctypes.find g.reg si).Ctypes.str_size
    | v -> Value.error "struct initializer is %s" (Value.to_string v)
  end
  | Ctypes.Tarray (t, _), Ast.Ilist items ->
    let sz = size_of g t in
    List.iteri
      (fun i item -> write_init g fr (Memory.offset loc (i * sz)) t item)
      items
  | Ctypes.Tstruct si, Ast.Ilist items ->
    let flds = Ctypes.fields g.reg si in
    List.iteri
      (fun i item ->
        let fld = List.nth flds i in
        write_init g fr
          (Memory.offset loc fld.Ctypes.fld_offset)
          fld.Ctypes.fld_ty item)
      items
  | _, Ast.Ilist [ item ] -> write_init g fr loc ty item
  | _ -> Value.error "unsupported initializer for %s" (Ctypes.to_string ty)

(* ------------------------------------------------------------------ *)
(* Program setup and entry *)

let init_globals (g : genv) : unit =
  let tc = g.tc in
  (* allocate storage *)
  List.iter
    (fun name ->
      let d = Hashtbl.find tc.Typecheck.globals name in
      let size = size_of g d.Ast.d_ty in
      let p = Memory.alloc g.mem size ~tag:("global " ^ name) in
      Hashtbl.replace g.globals name p)
    tc.Typecheck.global_order;
  (* run initializers (in declaration order) *)
  let fr = null_frame g in
  List.iter
    (fun name ->
      let d = Hashtbl.find tc.Typecheck.globals name in
      match d.Ast.d_init with
      | Some init -> write_init g fr (Hashtbl.find g.globals name) d.Ast.d_ty init
      | None -> ())
    tc.Typecheck.global_order

type outcome = {
  exit_code : int;
  stdout_text : string;
  profile : Profile.t;
  work : float; (* executed instruction units *)
}

(* Which budget ran out. *)
type budget_stop = Fuel | Wall_clock

let budget_stop_to_string = function
  | Fuel -> "fuel"
  | Wall_clock -> "wall-clock"

(* The typed partial-profile fault: the carried outcome holds everything
   the run produced before the budget ran out (exit code [-1] marks it
   partial). The driver records a fault and may keep the partial
   profile; a hang is never an option. *)
exception Budget_exhausted of budget_stop * outcome

let () =
  Printexc.register_printer (function
    | Budget_exhausted (stop, o) ->
      Some
        (Printf.sprintf
           "Cinterp.Eval.Budget_exhausted(%s, %.0f work units done)"
           (budget_stop_to_string stop) o.work)
    | _ -> None)

let default_fuel = 100_000_000

(* Run a program's main function. [argv] are the C-level arguments
   (argv[0] is synthesized); [input] feeds getchar(). *)
let run ?(fuel = default_fuel) ?deadline_s ?(argv = []) ?(input = "")
    (prog : Cfg.program) : outcome =
  let deadline, clock_tick =
    match deadline_s with
    | None -> (infinity, max_int)
    | Some s -> (Unix.gettimeofday () +. s, clock_check_interval)
  in
  let tc = prog.Cfg.prog_tc in
  let mem = Memory.create () in
  let site_of_expr = Hashtbl.create 64 in
  Array.iter
    (fun cs ->
      Hashtbl.replace site_of_expr cs.Cfg.cs_expr.Ast.eid cs.Cfg.cs_id)
    prog.Cfg.prog_sites;
  let g =
    { prog; tc; reg = tc.Typecheck.tunit.Ast.structs; mem;
      bctx = Builtins.create_ctx ~input mem; globals = Hashtbl.create 32;
      strings = Hashtbl.create 32; site_of_expr;
      profile = Profile.create prog; fuel; deadline; clock_tick }
  in
  let finish code =
    { exit_code = code; stdout_text = Builtins.output g.bctx;
      profile = g.profile; work = g.profile.Profile.work }
  in
  match Cfg.find_fn prog "main" with
  | None -> Value.error "program has no main function"
  | Some main_fn -> begin
    try
      init_globals g;
      let args =
        match main_fn.Cfg.fn_def.Ast.f_params with
        | [] -> []
        | [ _; _ ] ->
          let all = "prog" :: argv in
          let argc = List.length all in
          let arr = Memory.alloc mem (argc + 1) ~tag:"argv" in
          List.iteri
            (fun i s ->
              let sp = intern_string g s in
              Memory.store mem (Memory.offset arr i) (Value.Vptr sp))
            all;
          Memory.store mem (Memory.offset arr argc) (Value.Vint 0);
          [ Value.Vint argc; Value.Vptr arr ]
        | _ -> Value.error "main must take () or (int, char **)"
      in
      let result = exec_fn g main_fn args in
      finish (match result with Value.Vint n -> n | _ -> 0)
    with
    | Builtins.Exit_program code -> finish code
    | Out_of_fuel -> raise (Budget_exhausted (Fuel, finish (-1)))
    | Out_of_wall_clock -> raise (Budget_exhausted (Wall_clock, finish (-1)))
  end
