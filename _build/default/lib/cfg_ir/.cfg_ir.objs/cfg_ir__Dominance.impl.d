lib/cfg_ir/dominance.ml: Array Cfg Hashtbl List
