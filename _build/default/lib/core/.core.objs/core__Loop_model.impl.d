lib/core/loop_model.ml: Config
