examples/callsite_ranking.mli:
