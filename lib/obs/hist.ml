(* Log-linear (HDR-style) histograms. See hist.mli for the contract.

   Bucket layout, with [sub_bits = 5] and [sub_count = 32]:
   - values 0..31 get exact unit buckets 0..31;
   - a value v >= 32 with most-significant bit m (so 2^m <= v < 2^(m+1))
     lands in bucket [sub_count + (m - sub_bits) * sub_count + offset]
     where [offset = (v lsr (m - sub_bits)) - sub_count] keeps the top
     six bits of v. Each octave above 31 contributes 32 buckets, and
     with m <= 62 on 63-bit ints the whole table is 1856 entries. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits
let max_exp = 62
let bucket_count = sub_count + (max_exp - sub_bits) * sub_count

let msb v =
  (* index of the most significant set bit; v > 0 *)
  let m = ref 0 in
  let v = ref v in
  let step k =
    if !v lsr k <> 0 then begin
      v := !v lsr k;
      m := !m + k
    end
  in
  step 32; step 16; step 8; step 4; step 2; step 1;
  !m

let bucket_of_value v =
  let v = if v < 0 then 0 else v in
  if v < sub_count then v
  else begin
    let m = msb v in
    let offset = (v lsr (m - sub_bits)) - sub_count in
    sub_count + ((m - sub_bits) * sub_count) + offset
  end

let bucket_lower b =
  if b < sub_count then b
  else begin
    let octave = (b - sub_count) / sub_count in
    let offset = (b - sub_count) mod sub_count in
    (sub_count + offset) lsl octave
  end

type t = {
  lock : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable vmin : int;
  mutable vmax : int;
  counts : int array;
}

let create () =
  { lock = Mutex.create ();
    count = 0;
    sum = 0.0;
    vmin = max_int;
    vmax = min_int;
    counts = Array.make bucket_count 0 }

let record h v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of_value v in
  Mutex.lock h.lock;
  h.count <- h.count + 1;
  h.sum <- h.sum +. float_of_int v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  h.counts.(b) <- h.counts.(b) + 1;
  Mutex.unlock h.lock

type snapshot = {
  h_count : int;
  h_sum : float;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

let empty = { h_count = 0; h_sum = 0.0; h_min = 0; h_max = 0; h_buckets = [] }

let snapshot h =
  Mutex.lock h.lock;
  let buckets = ref [] in
  for b = bucket_count - 1 downto 0 do
    if h.counts.(b) > 0 then buckets := (b, h.counts.(b)) :: !buckets
  done;
  let s =
    if h.count = 0 then empty
    else
      { h_count = h.count;
        h_sum = h.sum;
        h_min = h.vmin;
        h_max = h.vmax;
        h_buckets = !buckets }
  in
  Mutex.unlock h.lock;
  s

let merge a b =
  if a.h_count = 0 then b
  else if b.h_count = 0 then a
  else begin
    (* merge two ascending sparse lists, summing counts on equal index *)
    let rec go xs ys =
      match (xs, ys) with
      | [], rest | rest, [] -> rest
      | (ix, cx) :: xs', (iy, cy) :: ys' ->
          if ix < iy then (ix, cx) :: go xs' ys
          else if iy < ix then (iy, cy) :: go xs ys'
          else (ix, cx + cy) :: go xs' ys'
    in
    { h_count = a.h_count + b.h_count;
      h_sum = a.h_sum +. b.h_sum;
      h_min = min a.h_min b.h_min;
      h_max = max a.h_max b.h_max;
      h_buckets = go a.h_buckets b.h_buckets }
  end

let quantile s q =
  if s.h_count = 0 then nan
  else begin
    let rank = int_of_float (ceil (q *. float_of_int s.h_count)) in
    let rank = if rank < 1 then 1 else if rank > s.h_count then s.h_count else rank in
    let rec walk cum = function
      | [] -> float_of_int s.h_max (* unreachable: counts sum to h_count *)
      | (b, c) :: rest ->
          let cum = cum + c in
          if cum >= rank then float_of_int (bucket_lower b) else walk cum rest
    in
    walk 0 s.h_buckets
  end

let to_json s =
  Json.Obj
    [ ("count", Json.Num (float_of_int s.h_count));
      ("sum", Json.Num s.h_sum);
      ("min", Json.Num (float_of_int s.h_min));
      ("max", Json.Num (float_of_int s.h_max));
      ( "buckets",
        Json.Arr
          (List.map
             (fun (b, c) ->
               Json.Arr [ Json.Num (float_of_int b); Json.Num (float_of_int c) ])
             s.h_buckets) ) ]

let of_json j =
  match
    ( Json.member "count" j,
      Json.member "sum" j,
      Json.member "min" j,
      Json.member "max" j,
      Json.member "buckets" j )
  with
  | Some count, Some sum, Some vmin, Some vmax, Some (Json.Arr bs) -> (
      try
        let pair = function
          | Json.Arr [ Json.Num b; Json.Num c ] ->
              (int_of_float b, int_of_float c)
          | _ -> raise Exit
        in
        let num x = match Json.to_num x with Some f -> f | None -> raise Exit in
        let buckets = List.map pair bs in
        (* reject malformed sparse lists: indices must ascend *)
        let rec ascending = function
          | (a, _) :: ((b, _) :: _ as rest) -> a < b && ascending rest
          | _ -> true
        in
        if not (ascending buckets) then None
        else
          Some
            { h_count = int_of_float (num count);
              h_sum = num sum;
              h_min = int_of_float (num vmin);
              h_max = int_of_float (num vmax);
              h_buckets = buckets }
      with Exit -> None)
  | _ -> None

let summary_json s =
  let base =
    match to_json s with Json.Obj fields -> fields | _ -> assert false
  in
  let p q = Json.Num (if s.h_count = 0 then 0.0 else quantile s q) in
  Json.Obj
    (base
    @ [ ("p50", p 0.50); ("p90", p 0.90); ("p99", p 0.99); ("p999", p 0.999) ])

(* ---- named registry -------------------------------------------------- *)

let registry_lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let find_or_create name =
  Mutex.lock registry_lock;
  let h =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h = create () in
        Hashtbl.add registry name h;
        h
  in
  Mutex.unlock registry_lock;
  h

(* Histograms can be switched off independently of the probe master
   switch (the --probe-overhead bench measures the three resulting
   configurations); recording requires both. *)
let hist_enabled = Atomic.make true
let set_enabled b = Atomic.set hist_enabled b
let enabled () = Probe.enabled () && Atomic.get hist_enabled

let observe name v = if enabled () then record (find_or_create name) v

let time name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Probe.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Int64.sub (Probe.now_ns ()) t0 in
        record (find_or_create name) (Int64.to_int dt))
      f
  end

let all () =
  Mutex.lock registry_lock;
  let pairs = Hashtbl.fold (fun name h acc -> (name, h) :: acc) registry [] in
  Mutex.unlock registry_lock;
  pairs
  |> List.map (fun (name, h) -> (name, snapshot h))
  |> List.filter (fun (_, s) -> s.h_count > 0)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.reset registry;
  Mutex.unlock registry_lock
