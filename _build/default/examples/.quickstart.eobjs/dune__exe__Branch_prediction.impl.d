examples/branch_prediction.ml: Array Cfg_ir Cfront Cinterp Core List Option Printf
