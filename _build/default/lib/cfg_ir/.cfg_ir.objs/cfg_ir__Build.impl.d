lib/cfg_ir/build.ml: Array Cfg Cfront Hashtbl List Option
