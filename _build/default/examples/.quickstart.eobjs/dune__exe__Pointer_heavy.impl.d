examples/pointer_heavy.ml: Array Cfg_ir Cinterp Core List Option Printf Suite
