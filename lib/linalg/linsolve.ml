(* Gaussian elimination with partial pivoting.

   The Markov models translate a CFG or call graph into the linear system
   (I - P^T) x = e (paper Figure 7); the systems are small (n = number of
   blocks or functions), dense solving is entirely adequate, and partial
   pivoting keeps the elimination stable. Singular systems are reported
   with the offending column so callers can diagnose structurally dead
   nodes. *)

exception Singular of int (* pivot column with no usable pivot *)

let epsilon = 1e-12

(* Solve A x = b, destroying [m] and [x]; returns [x]. Callers that
   build a throwaway system (the Markov estimators) use this directly to
   skip the defensive O(n²) copy in [solve]. *)
let solve_inplace (m : Matrix.t) (x : float array) : float array =
  let n = m.Matrix.rows in
  if m.Matrix.cols <> n then invalid_arg "Linsolve.solve: not square";
  if Array.length x <> n then invalid_arg "Linsolve.solve: bad rhs";
  Obs.Probe.count "linsolve.solve";
  Obs.Probe.with_span "linsolve" @@ fun () ->
  let data = m.Matrix.data in
  let idx i j = (i * n) + j in
  (* Singularity is judged relative to the matrix scale (largest |entry|
     of the input): an absolute cutoff misclassifies well-conditioned
     systems whose entries are uniformly tiny and accepts numerically
     meaningless pivots on huge ones. All-zero matrices fall back to the
     absolute epsilon, which rejects their zero pivots. *)
  let scale = ref 0.0 in
  Array.iter
    (fun v ->
      let v = abs_float v in
      if v > !scale then scale := v)
    data;
  let threshold = epsilon *. if !scale > 0.0 then !scale else 1.0 in
  for col = 0 to n - 1 do
    (* partial pivot: largest |value| in this column at or below [col] *)
    let pivot_row = ref col in
    for r = col + 1 to n - 1 do
      if abs_float data.(idx r col) > abs_float data.(idx !pivot_row col)
      then pivot_row := r
    done;
    let pivot = data.(idx !pivot_row col) in
    if abs_float pivot < threshold then begin
      Obs.Probe.count "linsolve.singular";
      raise (Singular col)
    end;
    Obs.Probe.observe "linsolve.pivot" (abs_float pivot);
    if !pivot_row <> col then begin
      for j = 0 to n - 1 do
        let tmp = data.(idx col j) in
        data.(idx col j) <- data.(idx !pivot_row j);
        data.(idx !pivot_row j) <- tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot_row);
      x.(!pivot_row) <- tmp
    end;
    (* eliminate below *)
    for r = col + 1 to n - 1 do
      let factor = data.(idx r col) /. data.(idx col col) in
      if factor <> 0.0 then begin
        data.(idx r col) <- 0.0;
        for j = col + 1 to n - 1 do
          data.(idx r j) <- data.(idx r j) -. (factor *. data.(idx col j))
        done;
        x.(r) <- x.(r) -. (factor *. x.(col))
      end
    done
  done;
  (* back substitution *)
  for row = n - 1 downto 0 do
    let s = ref x.(row) in
    for j = row + 1 to n - 1 do
      s := !s -. (data.(idx row j) *. x.(j))
    done;
    x.(row) <- !s /. data.(idx row row)
  done;
  x

(* Solve A x = b on copies; [a] and [b] are left untouched. *)
let solve (a : Matrix.t) (b : float array) : float array =
  solve_inplace (Matrix.copy a) (Array.copy b)

(* Solve the Markov frequency system:
     x_source = 1 + sum over arcs (j -> source, p) of p * x_j
     x_i      =     sum over arcs (j -> i, p)      of p * x_j
   [arcs] lists weighted arcs (from, to, p). The source gets one unit of
   external flow (the function entry / the invocation of main); incoming
   arcs still contribute, which matters when the entry block is also a
   loop header or main is called recursively. Nodes unreachable from the
   source get frequency 0.

   [scale] multiplies every arc probability before it enters the system;
   the Markov estimators use it to damp near-singular systems without
   rebuilding the arc list. [scale = 1.0] is exact identity: [p *. 1.0]
   is [p] bitwise, so the default changes nothing. *)
let markov_frequencies ?(scale = 1.0) ~(n : int) ~(source : int)
    (arcs : (int * int * float) list) : float array =
  if n = 0 then [||]
  else begin
    let a = Matrix.create n n in
    (* x_i - sum_j p_ji x_j = [i = source] *)
    for i = 0 to n - 1 do
      Matrix.set a i i 1.0
    done;
    let b = Array.make n 0.0 in
    b.(source) <- 1.0;
    List.iter
      (fun (src, dst, p) -> Matrix.add_to a dst src (-.(p *. scale)))
      arcs;
    (* The system was built fresh above; eliminate in place. *)
    solve_inplace a b
  end
