(* Pipeline and protocol tests: profile aggregation, cross-validation,
   intra scoring weights, the cost model, and the experiment registry. *)

module Pipeline = Core.Pipeline
module Profile = Cinterp.Profile
module Cfg = Cfg_ir.Cfg

let simple_src =
  {|
int hot(int n) { int i, s = 0; for (i = 0; i < n; i++) s += i; return s; }
int cold(int n) { return n * 2; }
int main(int argc, char **argv) {
  int reps = atoi(argv[1]), i, s = 0;
  for (i = 0; i < reps; i++) s += hot(20);
  s += cold(1);
  printf("%d", s);
  return 0;
}
|}

let compiled = lazy (Pipeline.compile ~name:"t" simple_src)

let profile reps =
  (Pipeline.run_once (Lazy.force compiled)
     { Pipeline.argv = [ string_of_int reps ]; input = "" })
    .Cinterp.Eval.profile

let test_aggregate_normalizes () =
  let c = Lazy.force compiled in
  let p1 = profile 2 and p2 = profile 20 in
  let agg = Profile.aggregate c.Pipeline.prog [ p1; p2 ] in
  (* the aggregate total is the mean of the input totals, times 2 inputs *)
  let t1 = Profile.total_blocks p1 and t2 = Profile.total_blocks p2 in
  let target = (t1 +. t2) /. 2.0 in
  Alcotest.(check (float 1.0)) "aggregate total" (2.0 *. target)
    (Profile.total_blocks agg);
  (* normalization: the small profile contributes as much as the large
     one, so the aggregate ratio hot/cold sits between the two runs' *)
  let hot = Option.get (Cfg.find_fn c.Pipeline.prog "hot") in
  let r1 = Profile.invocations p1 hot /. t1 in
  let r2 = Profile.invocations p2 hot /. t2 in
  let ra = Profile.invocations agg hot /. Profile.total_blocks agg in
  Alcotest.(check bool) "between" true
    (ra >= min r1 r2 -. 1e-9 && ra <= max r1 r2 +. 1e-9)

let test_mean_over_profiles () =
  let c = Lazy.force compiled in
  let profiles = [ profile 2; profile 5 ] in
  let calls = ref 0 in
  let v =
    Pipeline.mean_over_profiles profiles (fun _ ->
        incr calls;
        float_of_int !calls)
  in
  ignore c;
  Alcotest.(check int) "visits each profile" 2 !calls;
  Alcotest.(check (float 1e-9)) "mean" 1.5 v

let test_cross_profile_protocol () =
  let c = Lazy.force compiled in
  let profiles = [ profile 2; profile 5; profile 9 ] in
  let seen = ref [] in
  let _ =
    Pipeline.cross_profile_mean c profiles (fun ~train ~eval_p ->
        (* the training aggregate must not be the eval profile *)
        Alcotest.(check bool) "train <> eval" true (train != eval_p);
        seen := Profile.total_blocks eval_p :: !seen;
        1.0)
  in
  Alcotest.(check int) "each profile evaluated once" 3 (List.length !seen)

let test_intra_score_weighting () =
  (* a function never invoked must not affect the score *)
  let c = Lazy.force compiled in
  let p = profile 3 in
  let perfect name = Profile.block_counts p name in
  let s = Pipeline.intra_score c ~estimate:perfect p ~cutoff:0.25 in
  Alcotest.(check (float 1e-9)) "self-estimate scores 1" 1.0 s

let test_inter_actual_order () =
  let c = Lazy.force compiled in
  let p = profile 4 in
  let actual = Pipeline.inter_actual c p in
  let names = c.Pipeline.graph.Cfg_ir.Callgraph.names in
  let find name =
    let rec go i = if names.(i) = name then actual.(i) else go (i + 1) in
    go 0
  in
  Alcotest.(check (float 1e-9)) "main once" 1.0 (find "main");
  Alcotest.(check (float 1e-9)) "hot 4x" 4.0 (find "hot");
  Alcotest.(check (float 1e-9)) "cold once" 1.0 (find "cold")

let test_modelled_time () =
  let c = Lazy.force compiled in
  let p = profile 5 in
  let base = Pipeline.modelled_time c p ~optimized:[] in
  let all =
    List.map (fun fn -> fn.Cfg.fn_name) c.Pipeline.prog.Cfg.prog_fns
  in
  let full = Pipeline.modelled_time c p ~optimized:all in
  Alcotest.(check (float 1e-6)) "halving everything halves the time"
    (base /. 2.0) full;
  (* optimizing a subset lands strictly in between *)
  let some = Pipeline.modelled_time c p ~optimized:[ "hot" ] in
  Alcotest.(check bool) "monotone" true (full < some && some < base);
  (* optimizing the hot function beats optimizing the cold one *)
  let cold = Pipeline.modelled_time c p ~optimized:[ "cold" ] in
  Alcotest.(check bool) "hot is the better pick" true (some < cold)

let test_experiment_registry () =
  Alcotest.(check int) "seventeen experiments" 17
    (List.length Driver.Experiments.all);
  List.iter
    (fun (id, _, _) ->
      Alcotest.(check bool)
        (id ^ " resolvable") true
        (Driver.Experiments.find id <> None))
    Driver.Experiments.all;
  Alcotest.(check bool) "unknown id" true
    (Driver.Experiments.find "fig99" = None)

let test_worked_example_experiments () =
  (* the three experiments that do not need the whole suite *)
  List.iter
    (fun id ->
      let f = Option.get (Driver.Experiments.find id) in
      let text = f () in
      Alcotest.(check bool) (id ^ " non-empty") true (String.length text > 100))
    [ "table2"; "fig3"; "fig6_7" ]

let suite =
  [ Alcotest.test_case "aggregate normalizes" `Quick test_aggregate_normalizes;
    Alcotest.test_case "mean over profiles" `Quick test_mean_over_profiles;
    Alcotest.test_case "cross-validation protocol" `Quick
      test_cross_profile_protocol;
    Alcotest.test_case "intra score weighting" `Quick
      test_intra_score_weighting;
    Alcotest.test_case "inter actuals" `Quick test_inter_actual_order;
    Alcotest.test_case "modelled time" `Quick test_modelled_time;
    Alcotest.test_case "experiment registry" `Quick test_experiment_registry;
    Alcotest.test_case "worked-example experiments" `Quick
      test_worked_example_experiments ]
