(* Deterministic, seeded fault injection.

   Call sites name an *injection point* and a stable *key* (usually the
   program or function being processed) and ask whether to fail there:

     if Obs.Inject.should_fire "solve.intra" ~key:fn_name then ...
     Obs.Inject.fire "compile" ~key:prog_name   (* raises [Injected] *)

   Nothing fires unless a test or the [--chaos] mode armed the registry,
   and the disarmed fast path is a single atomic load — instrumented
   code costs nothing in normal runs and output stays byte-identical.

   Two arming modes:

   - [arm point ?key ?count]: targeted — fire at [point] (for one key or
     all keys), at most [count] times. Tests use this to force a
     specific recovery path, including fail-once-then-succeed.

   - [arm_chaos ~seed ?rate]: every point armed at once; a given
     (point, key) pair fires iff a hash of (seed, point, key) lands
     under [rate]. The decision depends only on the seed and the stable
     key — never on call order or scheduling — so a chaos run is
     reproducible at any [--jobs] setting. *)

exception Injected of string * string (* point, key *)

let () =
  Printexc.register_printer (function
    | Injected (point, key) ->
      Some (Printf.sprintf "Obs.Inject.Injected(%s, %s)" point key)
    | _ -> None)

type arming = {
  a_point : string;
  a_key : string option;      (* None = every key *)
  mutable a_remaining : int;  (* max_int = unlimited *)
}

type chaos = { c_seed : int; c_rate : float }

let m = Mutex.create ()
let armings : arming list ref = ref []
let chaos : chaos option ref = ref None

(* Disarmed fast path: one atomic load. *)
let active = Atomic.make false

(* Known injection points, in registration order. The driver registers
   its static list at startup; [should_fire] also registers points
   lazily so dynamically-discovered sites still show up. *)
let points : string list ref = ref []

let register (point : string) : unit =
  Mutex.lock m;
  if not (List.mem point !points) then points := !points @ [ point ];
  Mutex.unlock m

let registered () : string list =
  Mutex.lock m;
  let ps = !points in
  Mutex.unlock m;
  ps

let disarm_all () : unit =
  Mutex.lock m;
  armings := [];
  chaos := None;
  Atomic.set active false;
  Mutex.unlock m

let arm ?key ?(count = max_int) (point : string) : unit =
  register point;
  Mutex.lock m;
  armings := { a_point = point; a_key = key; a_remaining = count } :: !armings;
  Atomic.set active true;
  Mutex.unlock m

let arm_chaos ~(seed : int) ?(rate = 0.3) () : unit =
  Mutex.lock m;
  chaos := Some { c_seed = seed; c_rate = rate };
  Atomic.set active true;
  Mutex.unlock m

let chaos_seed () : int option =
  Mutex.lock m;
  let s = Option.map (fun c -> c.c_seed) !chaos in
  Mutex.unlock m;
  s

let armed () : bool = Atomic.get active

(* Deterministic hash of (seed, point, key) to [0, 1): the first eight
   hex digits of an MD5. Stable across runs, OCaml versions and domain
   scheduling — the property the chaos tests rely on. *)
let chaos_draw (seed : int) (point : string) (key : string) : float =
  let h =
    Digest.to_hex
      (Digest.string (Printf.sprintf "%d|%s|%s" seed point key))
  in
  float_of_string ("0x" ^ String.sub h 0 8) /. 4294967296.0

let should_fire (point : string) ~(key : string) : bool =
  if not (Atomic.get active) then false
  else begin
    Mutex.lock m;
    if not (List.mem point !points) then points := !points @ [ point ];
    let hit =
      match
        List.find_opt
          (fun a ->
            a.a_point = point && a.a_remaining > 0
            && match a.a_key with None -> true | Some k -> k = key)
          !armings
      with
      | Some a ->
        if a.a_remaining < max_int then a.a_remaining <- a.a_remaining - 1;
        true
      | None -> (
        match !chaos with
        | Some c -> chaos_draw c.c_seed point key < c.c_rate
        | None -> false)
    in
    Mutex.unlock m;
    hit
  end

let fire (point : string) ~(key : string) : unit =
  if should_fire point ~key then raise (Injected (point, key))
