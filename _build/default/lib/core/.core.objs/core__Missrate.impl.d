lib/core/missrate.ml: Array Branch_predictor Cfg_ir Cfront Cinterp Hashtbl List
