(* Call-site ranking for inliner guidance (paper section 5.3): combine
   the smart intra-procedural estimate with the Markov call-graph model
   to rank every direct call site in a program, then compare the top of
   the list against measured counts.

     dune exec examples/callsite_ranking.exe *)

module Pipeline = Core.Pipeline
module Callsite_rank = Core.Callsite_rank
module Cfg = Cfg_ir.Cfg

let () =
  let bench = Option.get (Suite.Registry.find "tree_mini") in
  let c = Pipeline.compile ~name:"tree" bench.Suite.Bench_prog.source in
  let intra = Pipeline.intra_provider c Pipeline.Ismart in
  let estimate = Pipeline.callsite_estimate c ~intra Pipeline.Imarkov_inter in

  let run =
    match bench.Suite.Bench_prog.runs with
    | r :: _ ->
      { Pipeline.argv = r.Suite.Bench_prog.r_argv;
        input = r.Suite.Bench_prog.r_input }
    | [] -> { Pipeline.argv = []; input = "" }
  in
  let outcome = Pipeline.run_once c run in
  let actual = Pipeline.callsite_actual c outcome.Cinterp.Eval.profile in

  let sites = Array.of_list (Cfg.direct_sites c.Pipeline.prog) in
  let order = Array.init (Array.length sites) (fun i -> i) in
  Array.sort (fun a b -> compare estimate.(b) estimate.(a)) order;

  Printf.printf "%-34s %12s %10s\n" "call site (estimated rank order)"
    "estimate" "actual";
  Array.iteri
    (fun rank i ->
      if rank < 12 then
        Printf.printf "%-34s %12.2f %10.0f\n"
          (Callsite_rank.describe sites.(i))
          estimate.(i) actual.(i))
    order;

  let score =
    Core.Weight_matching.score ~estimate ~actual ~cutoff:0.25
  in
  Printf.printf
    "\nweight-matching at the 25%% cutoff (paper Figure 9): %.0f%%\n"
    (100.0 *. score)
