lib/suite/prog_life.ml: Bench_prog
