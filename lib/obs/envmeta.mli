(** Best-effort environment metadata for persisted observability
    documents (run records, bench JSON): which machine and toolchain
    produced the numbers. Dependency-free and total — a field that
    cannot be determined is ["unknown"], never an exception. *)

val git_rev : unit -> string
(** The HEAD commit hash, read directly from the nearest enclosing
    [.git] (loose refs, packed-refs and worktree pointer files are all
    handled; no subprocess). ["unknown"] outside a repository.

    Freshness contract: the files are re-read on {e every} call — there
    is deliberately no per-process memo, so a long-running consumer
    (the serve daemon's [stats], each [Driver.Run_record.collect])
    reports the rev as of the call, not of process start. A rebase or
    commit under a live daemon shows up on the next request.
    Regression-tested in test/test_record.ml. *)

val ocaml_version : string

val cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val common : unit -> (string * string) list
(** The standard metadata block: [git_rev], [ocaml_version], [cores],
    [os], [word_size]. Callers append run-specific fields (jobs, seed,
    backend, timestamp). *)
