lib/cfront/usage.ml: Ast Ctypes Hashtbl List Option Typecheck
