(* Semantic types for the C subset, with layout measured in abstract cells.

   The interpreter's memory model gives every scalar (int, char, double,
   pointer) exactly one cell. Aggregates are laid out contiguously: an array
   of n T occupies n * sizeof(T) cells, a struct occupies the sum of its
   field sizes with fields at increasing offsets. This keeps layout trivial
   while preserving all control-flow-relevant behaviour. *)

type ty =
  | Tvoid
  | Tint                     (* int, long, short, enum *)
  | Tchar
  | Tdouble                  (* float and double *)
  | Tptr of ty
  | Tarray of ty * int option
  | Tfun of fun_ty
  | Tstruct of int           (* index into the struct registry *)

and fun_ty = { ret : ty; params : ty list; varargs : bool }

type field = { fld_name : string; fld_ty : ty; fld_offset : int }

type struct_def = {
  str_tag : string option;
  mutable str_fields : field list option; (* None while only forward-declared *)
  mutable str_size : int;
}

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

(* Registry of struct definitions for one translation unit. *)
type registry = { mutable items : struct_def array; mutable count : int }

let create_registry () = { items = [||]; count = 0 }

let register reg def =
  if reg.count = Array.length reg.items then begin
    let cap = max 8 (2 * reg.count) in
    let items = Array.make cap def in
    Array.blit reg.items 0 items 0 reg.count;
    reg.items <- items
  end;
  reg.items.(reg.count) <- def;
  reg.count <- reg.count + 1;
  reg.count - 1

let find reg i =
  if i < 0 || i >= reg.count then type_error "unknown struct #%d" i;
  reg.items.(i)

let fields reg i =
  match (find reg i).str_fields with
  | Some fs -> fs
  | None -> type_error "struct %s used before its definition"
              (Option.value ~default:"<anon>" (find reg i).str_tag)

let find_field reg i name =
  match List.find_opt (fun f -> f.fld_name = name) (fields reg i) with
  | Some f -> f
  | None -> type_error "struct has no field %s" name

let rec equal a b =
  match (a, b) with
  | Tvoid, Tvoid | Tint, Tint | Tchar, Tchar | Tdouble, Tdouble -> true
  | Tptr a, Tptr b -> equal a b
  | Tarray (a, n), Tarray (b, m) -> equal a b && n = m
  | Tstruct i, Tstruct j -> i = j
  | Tfun f, Tfun g ->
    equal f.ret g.ret
    && List.length f.params = List.length g.params
    && List.for_all2 equal f.params g.params
    && f.varargs = g.varargs
  | (Tvoid | Tint | Tchar | Tdouble | Tptr _ | Tarray _ | Tfun _ | Tstruct _), _
    -> false

let is_integer = function Tint | Tchar -> true | _ -> false
let is_arith = function Tint | Tchar | Tdouble -> true | _ -> false
let is_pointer = function Tptr _ | Tarray _ -> true | _ -> false
let is_scalar t = is_arith t || is_pointer t
let is_function = function Tfun _ -> true | _ -> false

(* Array-to-pointer and function-to-pointer decay for rvalue contexts. *)
let decay = function
  | Tarray (t, _) -> Tptr t
  | Tfun _ as f -> Tptr f
  | t -> t

(* Size in cells. Scalars are one cell. *)
let rec size_of reg = function
  | Tvoid -> type_error "sizeof(void)"
  | Tint | Tchar | Tdouble | Tptr _ -> 1
  | Tfun _ -> type_error "sizeof(function)"
  | Tarray (t, Some n) -> n * size_of reg t
  | Tarray (_, None) -> type_error "sizeof(incomplete array)"
  | Tstruct i ->
    let d = find reg i in
    if d.str_fields = None then
      type_error "sizeof(incomplete struct %s)"
        (Option.value ~default:"<anon>" d.str_tag);
    d.str_size

(* Lay out [raw_fields] (name, ty) pairs, computing offsets and total size.
   Mutates the registered definition in place. *)
let define_struct reg idx raw_fields =
  let d = find reg idx in
  if d.str_fields <> None then
    type_error "struct %s redefined"
      (Option.value ~default:"<anon>" d.str_tag);
  let offset = ref 0 in
  let fs =
    List.map
      (fun (name, ty) ->
        let f = { fld_name = name; fld_ty = ty; fld_offset = !offset } in
        offset := !offset + size_of reg ty;
        f)
      raw_fields
  in
  if fs = [] then type_error "empty struct";
  d.str_fields <- Some fs;
  d.str_size <- !offset

let rec to_string = function
  | Tvoid -> "void"
  | Tint -> "int"
  | Tchar -> "char"
  | Tdouble -> "double"
  | Tptr t -> to_string t ^ "*"
  | Tarray (t, Some n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Tarray (t, None) -> to_string t ^ "[]"
  | Tstruct i -> Printf.sprintf "struct#%d" i
  | Tfun f ->
    Printf.sprintf "%s(%s%s)" (to_string f.ret)
      (String.concat ", " (List.map to_string f.params))
      (if f.varargs then ", ..." else "")

let to_string_with reg = function
  | Tstruct i ->
    let d = find reg i in
    Printf.sprintf "struct %s" (Option.value ~default:"<anon>" d.str_tag)
  | t -> to_string t
