lib/core/weight_matching.mli:
