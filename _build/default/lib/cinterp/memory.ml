(* Block-structured store.

   Every object (global, local, malloc'd region, string literal) lives in
   its own block of cells, so out-of-bounds accesses and use-after-free
   are detected rather than silently corrupting unrelated objects — an
   interpreter-grade substitute for the paper's native execution. *)

type block = {
  mutable cells : Value.value array;
  mutable live : bool;
  tag : string; (* description for diagnostics *)
}

type t = { mutable blocks : block array; mutable count : int }

let create () = { blocks = [||]; count = 0 }

let n_blocks m = m.count

let alloc (m : t) (size : int) ~(tag : string) : Value.ptr =
  if size < 0 then Value.error "allocation of negative size (%s)" tag;
  let blk = { cells = Array.make (max size 0) (Value.Vint 0); live = true; tag } in
  if m.count = Array.length m.blocks then begin
    let cap = max 64 (2 * m.count) in
    let blocks =
      Array.make cap { cells = [||]; live = false; tag = "<hole>" }
    in
    Array.blit m.blocks 0 blocks 0 m.count;
    m.blocks <- blocks
  end;
  m.blocks.(m.count) <- blk;
  m.count <- m.count + 1;
  { Value.blk = m.count - 1; off = 0 }

let lookup (m : t) (p : Value.ptr) : block =
  if p.Value.blk < 0 || p.Value.blk >= m.count then
    Value.error "invalid pointer (block %d)" p.Value.blk;
  let b = m.blocks.(p.Value.blk) in
  if not b.live then
    Value.error "use of freed or dead object (%s)" b.tag;
  b

let load (m : t) (p : Value.ptr) : Value.value =
  let b = lookup m p in
  if p.Value.off < 0 || p.Value.off >= Array.length b.cells then
    Value.error "load out of bounds (%s, offset %d of %d)" b.tag p.Value.off
      (Array.length b.cells);
  b.cells.(p.Value.off)

let store (m : t) (p : Value.ptr) (v : Value.value) : unit =
  let b = lookup m p in
  if p.Value.off < 0 || p.Value.off >= Array.length b.cells then
    Value.error "store out of bounds (%s, offset %d of %d)" b.tag p.Value.off
      (Array.length b.cells);
  b.cells.(p.Value.off) <- v

let free (m : t) (p : Value.ptr) : unit =
  if p.Value.off <> 0 then Value.error "free of interior pointer";
  let b = lookup m p in
  b.live <- false

(* Kill a block (locals going out of scope): later access is an error. *)
let kill (m : t) (p : Value.ptr) : unit =
  let b = lookup m p in
  b.live <- false

let size_of_block (m : t) (p : Value.ptr) : int =
  Array.length (lookup m p).cells

(* Pointer arithmetic stays within the address space of its block; bounds
   are only enforced on access (one-past-the-end is legal C). *)
let offset (p : Value.ptr) (delta : int) : Value.ptr =
  { p with Value.off = p.Value.off + delta }

(* Copy [n] cells from [src] to [dst] (struct assignment, memcpy). *)
let blit (m : t) ~(src : Value.ptr) ~(dst : Value.ptr) (n : int) : unit =
  for i = 0 to n - 1 do
    store m (offset dst i) (load m (offset src i))
  done

(* Fill [n] cells at [dst]. *)
let fill (m : t) ~(dst : Value.ptr) (n : int) (v : Value.value) : unit =
  for i = 0 to n - 1 do
    store m (offset dst i) v
  done

(* Read a NUL-terminated C string starting at [p]. *)
let read_cstring (m : t) (p : Value.ptr) : string =
  let buf = Buffer.create 16 in
  let rec go i =
    match load m (offset p i) with
    | Value.Vint 0 -> Buffer.contents buf
    | Value.Vint c ->
      Buffer.add_char buf (Char.chr (c land 0xff));
      go (i + 1)
    | v -> Value.error "non-character %s in string" (Value.to_string v)
  in
  go 0

(* Write string [s] plus NUL at [p]. *)
let write_cstring (m : t) (p : Value.ptr) (s : string) : unit =
  String.iteri
    (fun i c -> store m (offset p i) (Value.Vint (Char.code c)))
    s;
  store m (offset p (String.length s)) (Value.Vint 0)
