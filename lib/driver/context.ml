(* Shared, memoized experiment context: each suite program compiled once
   and profiled once per input. Every experiment — and the bench harness —
   draws from this cache, so running all of them costs one pass over the
   suite no matter how many consumers ask.

   The cache is content-keyed (program name + digest of source and run
   set): re-registering a program with different source or inputs
   recomputes instead of serving stale data, and entries surviving a
   [clear] race are still correct by construction.

   Concurrency: the table is a mutex-protected memo with in-flight
   markers. A loader that finds no entry claims the key, computes
   outside the lock, publishes, and broadcasts; concurrent loaders of
   the same key block on the condition instead of duplicating the
   compile. [warm] fans the per-program pipeline stages (compile, then
   every profiling run) across the [Parallel] pool and merges in
   registry order, which is what makes [all] deterministic regardless
   of the jobs setting. *)

module Pipeline = Core.Pipeline
module Profile = Cinterp.Profile

type prog_data = {
  bench : Suite.Bench_prog.t;
  compiled : Pipeline.compiled;
  profiles : Profile.t list;
}

(* ------------------------------------------------------------------ *)
(* Content keys. *)

let key (bench : Suite.Bench_prog.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf bench.Suite.Bench_prog.source;
  List.iter
    (fun (r : Suite.Bench_prog.run) ->
      Buffer.add_char buf '\x00';
      List.iter
        (fun a ->
          Buffer.add_string buf a;
          Buffer.add_char buf '\x01')
        r.Suite.Bench_prog.r_argv;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf r.Suite.Bench_prog.r_input)
    bench.Suite.Bench_prog.runs;
  bench.Suite.Bench_prog.name ^ ":"
  ^ Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* The memo table. *)

type cell =
  | Computing  (* claimed by a loader; wait on [cell_changed] *)
  | Ready of prog_data

let m = Mutex.create ()
let cell_changed = Condition.create ()
let cache : (string, cell) Hashtbl.t = Hashtbl.create 16

let clear () =
  Mutex.lock m;
  Hashtbl.reset cache;
  Condition.broadcast cell_changed;
  Mutex.unlock m

let publish k d =
  Mutex.lock m;
  Hashtbl.replace cache k (Ready d);
  Condition.broadcast cell_changed;
  Mutex.unlock m

let abandon k =
  Mutex.lock m;
  (match Hashtbl.find_opt cache k with
  | Some Computing -> Hashtbl.remove cache k
  | _ -> ());
  Condition.broadcast cell_changed;
  Mutex.unlock m

(* ------------------------------------------------------------------ *)
(* The per-program pipeline stages. *)

let compile_stage (bench : Suite.Bench_prog.t) : Pipeline.compiled =
  let c =
    Pipeline.compile ~name:bench.Suite.Bench_prog.name
      bench.Suite.Bench_prog.source
  in
  (* Lower to closures as part of the (parallel) compile stage, so the
     one-time cost is off the profiling path and spread across the
     domain pool during warm-up. *)
  if !Pipeline.default_backend = Pipeline.Compiled then
    ignore (Pipeline.closure_exe c);
  c

let profile_stage (compiled : Pipeline.compiled)
    (r : Suite.Bench_prog.run) : Profile.t =
  let run =
    { Pipeline.argv = r.Suite.Bench_prog.r_argv;
      input = r.Suite.Bench_prog.r_input }
  in
  (Pipeline.run_once compiled run).Cinterp.Eval.profile

let compute (bench : Suite.Bench_prog.t) : prog_data =
  let compiled = compile_stage bench in
  let profiles =
    List.map (profile_stage compiled) bench.Suite.Bench_prog.runs
  in
  { bench; compiled; profiles }

let load (bench : Suite.Bench_prog.t) : prog_data =
  let k = key bench in
  Mutex.lock m;
  let rec get () =
    match Hashtbl.find_opt cache k with
    | Some (Ready d) ->
      Mutex.unlock m;
      Obs.Probe.count "context.cache_hit";
      d
    | Some Computing ->
      Obs.Probe.count "context.cache_wait";
      Condition.wait cell_changed m;
      get ()
    | None ->
      Hashtbl.replace cache k Computing;
      Mutex.unlock m;
      Obs.Probe.count "context.cache_miss";
      (match compute bench with
      | d -> publish k d; d
      | exception e -> abandon k; raise e)
  in
  get ()

(* ------------------------------------------------------------------ *)
(* Parallel warm-up: claim every missing program, fan the compile stage
   out per program, then the profile stage per (program, run) pair, and
   publish assembled results. Pure fan-out/merge: stage outputs are
   indexed by input position, never by completion order. *)

let warm () : unit =
  Obs.Probe.with_span "context.warm" @@ fun () ->
  Mutex.lock m;
  let missing =
    List.filter
      (fun b ->
        let k = key b in
        match Hashtbl.find_opt cache k with
        | Some _ -> false
        | None ->
          Hashtbl.replace cache k Computing;
          Obs.Probe.count "context.cache_miss";
          true)
      Suite.Registry.all
  in
  Mutex.unlock m;
  if missing <> [] then begin
    match
      let compiled = Parallel.map compile_stage missing in
      let runs_of (b : Suite.Bench_prog.t) c =
        List.map (fun r -> (c, r)) b.Suite.Bench_prog.runs
      in
      let flat_runs = List.concat (List.map2 runs_of missing compiled) in
      let flat_profiles =
        Parallel.map (fun (c, r) -> profile_stage c r) flat_runs
      in
      (* Reassemble the flat profile list program by program, in run
         order, and publish each entry. *)
      let rec split n = function
        | rest when n = 0 -> ([], rest)
        | p :: rest ->
          let taken, rest = split (n - 1) rest in
          (p :: taken, rest)
        | [] -> invalid_arg "Context.warm: profile count mismatch"
      in
      let leftover =
        List.fold_left2
          (fun profiles b c ->
            let mine, rest =
              split (List.length b.Suite.Bench_prog.runs) profiles
            in
            publish (key b) { bench = b; compiled = c; profiles = mine };
            rest)
          flat_profiles missing compiled
      in
      assert (leftover = [])
    with
    | () -> ()
    | exception e ->
      List.iter (fun b -> abandon (key b)) missing;
      raise e
  end

let all () : prog_data list =
  warm ();
  List.map load Suite.Registry.all

let by_name (name : string) : prog_data =
  match Suite.Registry.find name with
  | Some bench -> load bench
  | None -> invalid_arg ("unknown suite program " ^ name)
