(* Request-scoped tracing for the serve daemon.

   [Trace] renders whole-run span trees for one-shot batch commands;
   this module does the per-request slice a long-running daemon needs:
   open a root span around one request, extract just that request's
   subtree from the probe buffers, and — because span ids are
   per-process counters that collide across the [Supervise] fork
   boundary — ship the subtree as a *tree of labels and durations*, not
   raw ids. A worker embeds its tree in the response envelope; the
   parent grafts it under its own request span, so one merged tree
   holds spans from both processes.

   Requests slower than the configured threshold land in a bounded
   ring buffer (newest [slow_capacity] entries, readable through the
   [metrics] verb) and, when a sink file is configured, are appended
   to it as one NDJSON line each. *)

module Json = Obs.Json
module Probe = Obs.Probe

(* ------------------------------------------------------------------ *)
(* Span trees. *)

type tree = {
  t_label : string;
  t_count : int;       (* same-label siblings merged; how many *)
  t_ns : int64;        (* summed duration *)
  t_kids : tree list;
}

(* Group a list of sibling spans by label (first-appearance order),
   merging each group into one node whose kids are the merged kids of
   the whole group — the same aggregation [Trace] renders, rebuilt
   here over raw spans so it also works on trees parsed from JSON. *)
let rec nodes_of_spans (children : (int, Probe.span list) Hashtbl.t)
    (sibs : Probe.span list) : tree list =
  let order : string list ref = ref [] in
  let groups : (string, Probe.span list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Probe.span) ->
      (match Hashtbl.find_opt groups s.Probe.label with
      | None -> order := s.Probe.label :: !order
      | Some _ -> ());
      Hashtbl.replace groups s.Probe.label
        (s :: (try Hashtbl.find groups s.Probe.label with Not_found -> [])))
    sibs;
  List.rev_map
    (fun label ->
      let members = List.rev (Hashtbl.find groups label) in
      let ns =
        List.fold_left
          (fun acc (s : Probe.span) ->
            Int64.add acc (Int64.sub s.Probe.stop_ns s.Probe.start_ns))
          0L members
      in
      let kids =
        List.concat_map
          (fun (s : Probe.span) ->
            List.rev
              (try Hashtbl.find children s.Probe.id with Not_found -> []))
          members
      in
      { t_label = label;
        t_count = List.length members;
        t_ns = ns;
        t_kids = nodes_of_spans children kids })
    !order

(* The subtree rooted at span [root] within a full span dump. O(spans)
   per call — callers extract after the batch, once per request root,
   sharing one [Probe.spans ()] dump. *)
let tree_of_root (root : int) (spans : Probe.span list) : tree option =
  match List.find_opt (fun (s : Probe.span) -> s.Probe.id = root) spans with
  | None -> None
  | Some root_span ->
    let children : (int, Probe.span list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (s : Probe.span) ->
        Hashtbl.replace children s.Probe.parent
          (s
          :: (try Hashtbl.find children s.Probe.parent with Not_found -> [])))
      spans;
    match nodes_of_spans children [ root_span ] with
    | [ t ] -> Some t
    | _ -> None

(* [with_root f] runs [f] under a fresh "request" span and returns the
   span's id alongside the result, so the caller can extract the
   subtree later (after the parallel region — [Probe.spans] snapshots
   are only safe between fan-outs). [-1] when probes are off. *)
let with_root (f : unit -> 'a) : 'a * int =
  if not (Probe.enabled ()) then (f (), -1)
  else begin
    let root = ref (-1) in
    let v =
      Probe.with_span "request" (fun () ->
          root := Probe.current_span ();
          f ())
    in
    (v, !root)
  end

let ms_of_ns (ns : int64) : float = Int64.to_float ns /. 1e6

let rec tree_to_json (t : tree) : Json.t =
  Json.Obj
    [ ("label", Json.Str t.t_label);
      ("count", Json.Num (float_of_int t.t_count));
      ("ms", Json.Num (ms_of_ns t.t_ns));
      ("kids", Json.Arr (List.map tree_to_json t.t_kids)) ]

let rec tree_of_json (j : Json.t) : tree option =
  match
    ( Option.bind (Json.member "label" j) Json.to_str,
      Option.bind (Json.member "count" j) Json.to_num,
      Option.bind (Json.member "ms" j) Json.to_num,
      Json.member "kids" j )
  with
  | Some label, Some count, Some ms, Some (Json.Arr kids) ->
    let kids = List.filter_map tree_of_json kids in
    Some
      { t_label = label;
        t_count = int_of_float count;
        t_ns = Int64.of_float (ms *. 1e6);
        t_kids = kids }
  | _ -> None

(* Graft a worker's shipped tree under a parent-side node covering the
   round trip: the result shows the dispatch envelope ("request", timed
   by the parent) with the worker's own subtree labelled by its shard. *)
let graft ~(shard : int) ~(roundtrip_ns : int64) (worker : tree option) : tree
    =
  let kids =
    match worker with
    | None -> []
    | Some w -> [ { w with t_label = Printf.sprintf "worker:%d" shard } ]
  in
  { t_label = "request"; t_count = 1; t_ns = roundtrip_ns; t_kids = kids }

(* ------------------------------------------------------------------ *)
(* Slow-request log. *)

type slow_entry = {
  se_seq : int;            (* daemon-assigned request sequence number *)
  se_id : Json.t;          (* the client's request id, echoed *)
  se_op : string;
  se_name : string;        (* program name, or "" *)
  se_ms : float;
  se_tree : tree option;
}

let slow_capacity = 64

(* Threshold and sink are daemon-lifetime configuration; the ring and
   its cursor are the bounded in-memory log. One lock for all of it —
   slow requests are rare by definition. *)
let slow_lock = Mutex.create ()
let slow_ms_ref : float option ref = ref None
let slow_ring : slow_entry option array = Array.make slow_capacity None
let slow_seq = ref 0      (* total slow entries ever logged *)
let sink : out_channel option ref = ref None

let set_slow_ms (ms : float option) : unit =
  Mutex.lock slow_lock;
  slow_ms_ref := ms;
  Mutex.unlock slow_lock

let slow_ms () : float option =
  Mutex.lock slow_lock;
  let v = !slow_ms_ref in
  Mutex.unlock slow_lock;
  v

let set_slow_sink (path : string option) : unit =
  Mutex.lock slow_lock;
  (match !sink with Some oc -> close_out_noerr oc | None -> ());
  sink :=
    (match path with
    | None -> None
    | Some p -> Some (open_out_gen [ Open_append; Open_creat ] 0o644 p));
  Mutex.unlock slow_lock

let slow_entry_to_json (e : slow_entry) : Json.t =
  Json.Obj
    [ ("seq", Json.Num (float_of_int e.se_seq));
      ("id", e.se_id);
      ("op", Json.Str e.se_op);
      ("name", Json.Str e.se_name);
      ("ms", Json.Num e.se_ms);
      ("tree",
       match e.se_tree with None -> Json.Null | Some t -> tree_to_json t) ]

let note_slow ~(id : Json.t) ~(op : string) ~(name : string) ~(ms : float)
    (tree : tree option) : unit =
  Mutex.lock slow_lock;
  let e =
    { se_seq = !slow_seq; se_id = id; se_op = op; se_name = name;
      se_ms = ms; se_tree = tree }
  in
  slow_ring.(!slow_seq mod slow_capacity) <- Some e;
  incr slow_seq;
  (match !sink with
  | None -> ()
  | Some oc ->
    output_string oc (Json.to_compact_string (slow_entry_to_json e));
    output_char oc '\n';
    flush oc);
  Mutex.unlock slow_lock;
  Probe.count "serve.slow"

let slow_count () : int =
  Mutex.lock slow_lock;
  let n = !slow_seq in
  Mutex.unlock slow_lock;
  n

(* Logged entries, oldest first (at most [slow_capacity] retained). *)
let slow_entries () : slow_entry list =
  Mutex.lock slow_lock;
  let n = !slow_seq in
  let first = max 0 (n - slow_capacity) in
  let entries =
    List.filter_map
      (fun i -> slow_ring.(i mod slow_capacity))
      (List.init (n - first) (fun k -> first + k))
  in
  Mutex.unlock slow_lock;
  entries

(* Tests: forget everything, close the sink. *)
let reset_slow () : unit =
  Mutex.lock slow_lock;
  Array.fill slow_ring 0 slow_capacity None;
  slow_seq := 0;
  slow_ms_ref := None;
  (match !sink with Some oc -> close_out_noerr oc | None -> ());
  sink := None;
  Mutex.unlock slow_lock
