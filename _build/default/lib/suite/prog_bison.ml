(* bison_mini: a table-driven shift-reduce expression parser — the
   analogue of an LALR parser generator's generated automaton. A small
   "grammar compilation" phase fills the precedence/associativity tables;
   the runtime loop shifts tokens and reduces by table lookup, evaluating
   as it goes. Deeply stack-driven control flow like a yacc skeleton. *)

let source = {|
#define T_NUM 0
#define T_PLUS 1
#define T_MINUS 2
#define T_STAR 3
#define T_SLASH 4
#define T_PCT 5
#define T_LPAR 6
#define T_RPAR 7
#define T_NEG 8
#define T_EOF 9
#define N_TOKENS 10

#define MAX_STACK 128

int prec_table[N_TOKENS];
int right_assoc[N_TOKENS];

int op_stack[MAX_STACK];
int val_stack[MAX_STACK];
int op_top;
int val_top;

int shift_count;
int reduce_count;
int expr_count;
int error_count;

/* ---- "parser generation": fill the tables from the grammar ---- */

void compile_grammar(void) {
  int t;
  for (t = 0; t < N_TOKENS; t++) {
    prec_table[t] = 0;
    right_assoc[t] = 0;
  }
  prec_table[T_PLUS] = 1;
  prec_table[T_MINUS] = 1;
  prec_table[T_STAR] = 2;
  prec_table[T_SLASH] = 2;
  prec_table[T_PCT] = 2;
  prec_table[T_NEG] = 3;
  right_assoc[T_NEG] = 1;
}

/* ---- lexer ---- */

int peeked;
int have_peek;
int tok_value;

int peek_ch(void) {
  if (!have_peek) { peeked = getchar(); have_peek = 1; }
  return peeked;
}

int next_ch(void) {
  int c = peek_ch();
  have_peek = 0;
  return c;
}

/* Returns the next token type; numbers set tok_value. Newline and EOF
   both end an expression. */
int next_token(void) {
  int c;
  while (peek_ch() == ' ' || peek_ch() == '\t') next_ch();
  c = peek_ch();
  if (c == EOF || c == '\n') return T_EOF;
  if (c >= '0' && c <= '9') {
    tok_value = 0;
    while (peek_ch() >= '0' && peek_ch() <= '9')
      tok_value = tok_value * 10 + (next_ch() - '0');
    return T_NUM;
  }
  next_ch();
  switch (c) {
  case '+': return T_PLUS;
  case '-': return T_MINUS;
  case '*': return T_STAR;
  case '/': return T_SLASH;
  case '%': return T_PCT;
  case '(': return T_LPAR;
  case ')': return T_RPAR;
  default: error_count++; return T_EOF;
  }
}

/* ---- the automaton ---- */

void push_op(int op) {
  if (op_top < MAX_STACK) { op_stack[op_top] = op; op_top++; }
  shift_count++;
}

void push_val(int v) {
  if (val_top < MAX_STACK) { val_stack[val_top] = v; val_top++; }
}

int pop_val(void) {
  if (val_top <= 0) { error_count++; return 0; }
  val_top--;
  return val_stack[val_top];
}

/* Apply the operator on top of the stack to the value stack. */
void reduce_once(void) {
  int op, a, b;
  if (op_top <= 0) { error_count++; return; }
  op_top--;
  op = op_stack[op_top];
  reduce_count++;
  if (op == T_NEG) {
    a = pop_val();
    push_val(-a);
    return;
  }
  b = pop_val();
  a = pop_val();
  if (op == T_PLUS) push_val(a + b);
  else if (op == T_MINUS) push_val(a - b);
  else if (op == T_STAR) push_val(a * b);
  else if (op == T_SLASH) push_val(b == 0 ? 0 : a / b);
  else if (op == T_PCT) push_val(b == 0 ? 0 : a % b);
  else error_count++;
}

/* Reduce while the stack-top operator has precedence >= the incoming
   token (taking associativity into account). */
void reduce_for(int tok) {
  int top;
  while (op_top > 0) {
    top = op_stack[op_top - 1];
    if (top == T_LPAR) return;
    if (prec_table[top] > prec_table[tok]
        || (prec_table[top] == prec_table[tok] && !right_assoc[tok]))
      reduce_once();
    else
      return;
  }
}

/* Parse and evaluate one expression; returns its value. *ok reports
   whether the line was well-formed. */
int parse_expr(int *ok) {
  int tok, expecting_operand = 1;
  op_top = 0;
  val_top = 0;
  *ok = 1;
  while (1) {
    tok = next_token();
    if (tok == T_EOF) break;
    if (tok == T_NUM) {
      if (!expecting_operand) *ok = 0;
      push_val(tok_value);
      expecting_operand = 0;
    } else if (tok == T_LPAR) {
      push_op(T_LPAR);
      expecting_operand = 1;
    } else if (tok == T_RPAR) {
      while (op_top > 0 && op_stack[op_top - 1] != T_LPAR) reduce_once();
      if (op_top > 0) op_top--;
      else *ok = 0;
      expecting_operand = 0;
    } else if (tok == T_MINUS && expecting_operand) {
      reduce_for(T_NEG);
      push_op(T_NEG);
    } else {
      if (expecting_operand) *ok = 0;
      reduce_for(tok);
      push_op(tok);
      expecting_operand = 1;
    }
  }
  while (op_top > 0) {
    if (op_stack[op_top - 1] == T_LPAR) { op_top--; *ok = 0; }
    else reduce_once();
  }
  if (val_top != 1) *ok = 0;
  return pop_val();
}

int main(void) {
  int v, ok, checksum = 0;
  compile_grammar();
  while (1) {
    /* skip blank lines and stop at EOF */
    while (peek_ch() == '\n') next_ch();
    if (peek_ch() == EOF) break;
    v = parse_expr(&ok);
    expr_count++;
    if (ok) {
      printf("= %d\n", v);
      checksum = (checksum * 31 + v) & 0xffffff;
    } else {
      printf("syntax error\n");
    }
    if (peek_ch() == '\n') next_ch();
  }
  printf("exprs=%d shifts=%d reduces=%d errors=%d sum=%x\n", expr_count,
         shift_count, reduce_count, error_count, checksum);
  return 0;
}
|}

let input_basic =
  String.concat "\n"
    [ "1 + 2 * 3"; "(1 + 2) * 3"; "10 - 4 - 3"; "100 / 7 % 5";
      "-5 + - - 3"; "2 * (3 + (4 * (5 + 6)))" ]

let input_deep =
  let rec nest n = if n = 0 then "1" else "(" ^ nest (n - 1) ^ " + 2)" in
  String.concat "\n" [ nest 30; nest 15 ^ " * " ^ nest 10; "-" ^ nest 20 ]

let input_long =
  let buf = Buffer.create 1024 in
  for i = 1 to 120 do
    Buffer.add_string buf (string_of_int i);
    if i < 120 then
      Buffer.add_string buf (match i mod 4 with 0 -> " + " | 1 -> " * " | 2 -> " - " | _ -> " % ")
  done;
  Buffer.add_char buf '\n';
  for i = 1 to 40 do
    Buffer.add_string buf (Printf.sprintf "%d * %d + " i (i + 1))
  done;
  Buffer.add_string buf "0\n";
  Buffer.contents buf

let input_errors =
  String.concat "\n"
    [ "1 + + 2"; "(1 + 2"; "3 * 4)"; "5 5"; "7 + 8"; ""; "9 * (2 + 1)" ]

let program : Bench_prog.t =
  { Bench_prog.name = "bison_mini";
    description = "Table-driven shift-reduce expression parser";
    analogue = "bison";
    source;
    runs =
      [ Bench_prog.run ~input:input_basic ();
        Bench_prog.run ~input:input_deep ();
        Bench_prog.run ~input:input_long ();
        Bench_prog.run ~input:input_errors () ] }
