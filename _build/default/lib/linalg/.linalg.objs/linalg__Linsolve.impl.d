lib/linalg/linsolve.ml: Array List Matrix
