(* Shaped-program generation: (seed, class, size, index) -> C source.

   Every program terminates *by construction*, not by luck: loop-nest
   programs use counting loops with literal trip counts, branchy
   programs are loop-free below main, the pointer-table interpreter
   walks a monotone pc over a fixed-length code array, and every
   recursive call passes a strictly smaller depth argument.  The fuel
   budget in the corpus driver is a safety net, not the termination
   argument — a generated program that trips it is a generator bug and
   is surfaced as a degraded row.

   Determinism: the only source of randomness is the splitmix64 stream
   derived from the full parameter path in [generate]; no wall clock,
   no [Random], no hashing of OCaml values.  Two calls with equal
   parameters return byte-identical strings. *)

module Shape = Shape

let class_tag = function
  | Shape.Loop_nest -> 1
  | Shape.Branchy -> 2
  | Shape.Pointer_table -> 3
  | Shape.Recursive -> 4

let name (cls : Shape.workload_class) (index : int) : string =
  Printf.sprintf "corpus.%s.%03d" (Shape.class_to_string cls) index

let bput buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let header buf ~seed ~cls ~size ~index =
  bput buf "/* corpus %s #%d (seed %d, size %s) -- generated, do not edit */\n"
    (Shape.class_to_string cls) index seed (Shape.size_to_string size)

(* ------------------------------------------------------------------ *)
(* Loop_nest: nested counting loops over double arrays, leaf-helper
   calls from the innermost body, kernels driven from main.  The
   alvinn_mini personality: high trip-count inner blocks, few branches,
   loop heuristics should dominate. *)

let gen_loop_nest buf rng (size : Shape.size) =
  let n_leaves = max 1 size.s_fanout in
  let n_kerns = max 1 size.s_functions in
  bput buf "double va[32];\ndouble vb[32];\ndouble acc;\nint g;\n\n";
  for l = 0 to n_leaves - 1 do
    let c1 = Rng.pick rng [ "0.25"; "0.5"; "0.75"; "1.5" ] in
    let c2 = Rng.pick rng [ "1.0"; "0.125"; "2.0"; "0.375" ] in
    bput buf "double leaf%d(double x) { return x * %s + %s; }\n" l c1 c2
  done;
  Buffer.add_string buf "\n";
  for k = 0 to n_kerns - 1 do
    let depth = Rng.range rng 1 (max 1 size.s_loop_depth) in
    (* A third of the trip counts depend on the argument ((n & 3) + K,
       still bounded): the static estimators can't see those, which is
       what gives the class a score *distribution* instead of a flat
       100%. *)
    let trips =
      Array.init depth (fun _ ->
          if Rng.chance rng 1 3 then
            Printf.sprintf "(n & 3) + %d" (Rng.range rng 2 4)
          else string_of_int (Rng.range rng 3 6))
    in
    bput buf "double kern%d(int n) {\n  double s = 0.0;\n" k;
    for i = 0 to depth - 1 do
      bput buf "  int i%d;\n" i
    done;
    for i = 0 to depth - 1 do
      bput buf "%sfor (i%d = 0; i%d < %s; i%d++) {\n"
        (String.make ((i + 1) * 2) ' ')
        i i trips.(i) i
    done;
    let pad = String.make ((depth + 1) * 2) ' ' in
    let ivar () = Printf.sprintf "i%d" (Rng.int rng depth) in
    let n_stmts = Rng.range rng 2 (max 2 size.s_stmts) in
    for _ = 1 to n_stmts do
      (match Rng.int rng 6 with
      | 0 ->
        bput buf "%ss = s + va[(%s * %d + %d) & 31] * vb[(%s + %d) & 31];\n"
          pad (ivar ()) (Rng.range rng 1 5) (Rng.int rng 8) (ivar ())
          (Rng.int rng 8)
      | 1 ->
        bput buf "%sva[(%s + %d) & 31] = s * %s + vb[%s & 31];\n" pad
          (ivar ()) (Rng.int rng 8)
          (Rng.pick rng [ "0.5"; "0.25"; "0.75" ])
          (ivar ())
      | 2 when Rng.bool rng ->
        (* data-dependent guarded call: invocation counts the inter
           estimators must guess, not read off the nest structure *)
        bput buf "%sif (s > %s) { s = s + leaf%d(s + (double) %s); }\n" pad
          (Rng.pick rng [ "1.0"; "4.0"; "16.0" ])
          (Rng.int rng n_leaves) (ivar ())
      | 2 ->
        bput buf "%ss = s + leaf%d(s + (double) %s);\n" pad
          (Rng.int rng n_leaves) (ivar ())
      | 3 -> bput buf "%sacc = acc + s * %s;\n" pad (Rng.pick rng [ "0.125"; "0.0625" ])
      | 4 -> bput buf "%sg = g + ((%s + %d) & 7);\n" pad (ivar ()) (Rng.int rng 8)
      | _ ->
        bput buf "%sif (%s > %d) { s = s - %s; }\n" pad (ivar ())
          (Rng.range rng 1 4)
          (Rng.pick rng [ "0.5"; "1.0" ]))
    done;
    for i = depth - 1 downto 0 do
      Buffer.add_string buf (String.make ((i + 1) * 2) ' ');
      Buffer.add_string buf "}\n"
    done;
    if Rng.bool rng then bput buf "  if (n > 2) { acc = acc * 0.875; }\n";
    bput buf "  return s + (double) g * 0.001;\n}\n\n"
  done;
  bput buf "int main(int argc, char **argv) {\n";
  bput buf "  int rep = %d; int i;\n" (Rng.range rng 1 3);
  bput buf "  if (argc > 1) { rep = atoi(argv[1]) & 7; }\n";
  bput buf
    "  for (i = 0; i < 32; i++) { va[i] = (double) (i %% 7) * 0.25; vb[i] = \
     (double) ((i * 3) %% 11) * 0.125; }\n";
  bput buf "  for (i = 0; i < rep + 2; i++) {\n";
  for k = 0 to n_kerns - 1 do
    bput buf "    acc = acc + kern%d(i + %d);\n" k (Rng.int rng 3)
  done;
  bput buf "  }\n  printf(\"%%g %%d\\n\", acc, g);\n  return g & 7;\n}\n"

(* ------------------------------------------------------------------ *)
(* Branchy: loop-free classifier chains with comparison ladders,
   switches, table updates and a rare error path — the shape the
   paper's branch heuristics (opcode, guard, error-call) were fit on.
   Only main loops; classifiers may call earlier classifiers. *)

let gen_branchy buf rng (size : Shape.size) =
  let n_fns = max 1 size.s_functions in
  bput buf "int counts[8];\nint ga;\nint gb;\nint err;\n\n";
  bput buf "void fail(int code) { err = err + code; }\n\n";
  for k = 0 to n_fns - 1 do
    bput buf "int class%d(int x) {\n  int r = 0;\n  int t;\n" k;
    let calls_left = ref (min size.s_fanout 3) in
    let n_stmts = Rng.range rng 3 (max 3 size.s_stmts) in
    for _ = 1 to n_stmts do
      match Rng.int rng 7 with
      | 0 ->
        bput buf "  if ((x & %d) == %d) { r = r + %d; } else { r = r - %d; }\n"
          (Rng.pick rng [ 1; 3; 7; 15 ])
          (Rng.int rng 2) (Rng.range rng 1 9) (Rng.range rng 1 4)
      | 1 ->
        bput buf
          "  if (x > %d) { r = r + %d; } else { if (x > %d) { r = r ^ %d; } \
           else { r = r + %d; } }\n"
          (Rng.range rng 20 60) (Rng.range rng 1 9)
          (Rng.range rng (-10) 10)
          (Rng.range rng 1 15) (Rng.range rng 1 5)
      | 2 ->
        let cases = Rng.range rng 3 5 in
        bput buf "  switch ((x + r) %% %d) {\n" cases;
        for c = 0 to cases - 1 do
          bput buf "  case %d: r = r %s %d; break;\n" c
            (Rng.pick rng [ "+"; "-"; "^" ])
            (Rng.range rng 1 9)
        done;
        bput buf "  default: r = r + 1;\n  }\n"
      | 3 ->
        bput buf "  t = (x >> %d) & 7;\n  counts[t] = counts[t] + 1;\n"
          (Rng.range rng 0 3)
      | 4 ->
        (* fires on ~1/128 of inputs: the error-path shape the
           error-call heuristic keys on *)
        bput buf "  if (((x * %d) & 127) == 0) { fail(%d); return -r; }\n"
          (Rng.pick rng [ 13; 29; 37; 53 ])
          (Rng.range rng 1 7)
      | 5 when k > 0 && !calls_left > 0 ->
        decr calls_left;
        bput buf "  r = r + class%d(x - %d);\n" (Rng.int rng k)
          (Rng.range rng 1 9)
      | _ -> bput buf "  ga = ga + (r & 15);\n"
    done;
    bput buf "  counts[x & 7] = counts[x & 7] + 1;\n  return r;\n}\n\n"
  done;
  bput buf "int main(int argc, char **argv) {\n";
  bput buf "  int rep = %d; int i; int v;\n" (Rng.range rng 1 3);
  bput buf "  if (argc > 1) { rep = atoi(argv[1]) & 7; }\n";
  bput buf "  for (i = 0; i < 60 + rep * 30; i++) {\n";
  bput buf "    v = ((i * 37) + 11) %% 211 - 40;\n";
  let top = min n_fns 4 in
  for k = n_fns - top to n_fns - 1 do
    bput buf "    %s = %s %s class%d(v + %d);\n"
      (if k land 1 = 0 then "ga" else "gb")
      (if k land 1 = 0 then "ga" else "gb")
      (Rng.pick rng [ "+"; "^" ])
      k (Rng.int rng 5)
  done;
  bput buf "  }\n";
  bput buf "  printf(\"%%d %%d %%d %%d\\n\", ga, gb, err, counts[3]);\n";
  bput buf "  return err & 7;\n}\n"

(* ------------------------------------------------------------------ *)
(* Pointer_table: a tiny stack machine.  Opcode bodies are generated,
   dispatch goes through a struct-wrapped function-pointer table (the
   gs_mini idiom), and the fetch loop walks a monotone pc over a code
   array filled by a linear-congruential formula — so execution length
   is exactly the code length, every time. *)

let gen_pointer_table buf rng (size : Shape.size) =
  let n_ops = max 4 (size.s_functions + 2) in
  let code_len = 32 + (size.s_stmts * 8) in
  let lit_base = 16 in
  bput buf "int stack[64];\nint sp;\nint mem[16];\nint err;\n\n";
  bput buf
    "void push(int v) { if (sp < 64) { stack[sp] = v; sp = sp + 1; } else { \
     err = err + 1; } }\n";
  bput buf
    "int pop(void) { if (sp > 0) { sp = sp - 1; return stack[sp]; } err = err \
     + 1; return 0; }\n\n";
  for k = 0 to n_ops - 1 do
    bput buf "void op%d(void) {\n  int a;\n  int b;\n" k;
    let n_stmts = Rng.range rng 1 3 in
    for _ = 1 to n_stmts do
      match Rng.int rng 8 with
      | 0 -> bput buf "  push(pop() + pop());\n"
      | 1 -> bput buf "  b = pop();\n  a = pop();\n  push(a - b);\n"
      | 2 -> bput buf "  push(pop() * %d);\n" (Rng.range rng 2 5)
      | 3 -> bput buf "  a = pop();\n  mem[a & 15] = pop();\n"
      | 4 -> bput buf "  push(mem[pop() & 15]);\n"
      | 5 ->
        bput buf
          "  a = pop();\n  if (a > 0) { push(a - 1); push(1); } else { \
           push(0); }\n"
      | 6 -> bput buf "  push(pop() ^ %d);\n" (Rng.range rng 1 31)
      | _ when k > 0 && Rng.chance rng size.s_fanout 4 ->
        bput buf "  op%d();\n" (Rng.int rng k)
      | _ -> bput buf "  a = pop();\n  push(a);\n  push(a);\n"
    done;
    bput buf "  b = 0;\n}\n"
  done;
  bput buf "\nstruct opdef { int weight; void (*fn)(void); };\n";
  bput buf "struct opdef ops[%d] = {\n" n_ops;
  for k = 0 to n_ops - 1 do
    bput buf "  { %d, op%d }%s\n" (Rng.range rng 1 9) k
      (if k < n_ops - 1 then "," else "")
  done;
  bput buf "};\n\nint code[%d];\n\n" code_len;
  let p = Rng.pick rng [ 7; 11; 13; 17 ] in
  let q = Rng.pick rng [ 3; 5; 19; 23 ] in
  bput buf "void load(int key) {\n  int k;\n";
  bput buf
    "  for (k = 0; k < %d; k++) { code[k] = (k * %d + key * %d) %% %d; }\n"
    code_len p q (lit_base + 8);
  bput buf "}\n\n";
  bput buf "int main(int argc, char **argv) {\n";
  bput buf "  int rep = %d; int n; int pc; int b;\n" (Rng.range rng 1 2);
  bput buf "  if (argc > 1) { rep = atoi(argv[1]) & 3; }\n";
  bput buf "  for (n = 0; n <= rep; n++) {\n";
  bput buf "    load(n);\n    sp = 0;\n    push(n + 1);\n    push(3);\n";
  bput buf "    for (pc = 0; pc < %d; pc++) {\n" code_len;
  bput buf "      b = code[pc];\n";
  bput buf "      if (b >= %d) { push(b - %d); } else { ops[b %% %d].fn(); }\n"
    lit_base lit_base n_ops;
  bput buf "    }\n  }\n";
  bput buf
    "  printf(\"%%d %%d %%d %%d\\n\", sp, (sp > 0 ? stack[sp - 1] : -1), \
     mem[5], err);\n";
  bput buf "  return err & 7;\n}\n"

(* ------------------------------------------------------------------ *)
(* Recursive: a ring of mutually recursive walkers, each call passing
   d - 1 (the termination measure), plus a fixed backtracking
   subset-sum search.  Recursion depth scales with s_loop_depth; the
   per-body call count is capped at 3 so the call tree stays under
   3^depth. *)

let gen_recursive buf rng (size : Shape.size) =
  let n_walks = max 2 size.s_functions in
  let n_leaves = max 1 (min size.s_fanout 3) in
  let dmax = min 7 (size.s_loop_depth + 3) in
  bput buf "int calls;\nint best;\nint weights[8];\n\n";
  for l = 0 to n_leaves - 1 do
    bput buf "int combine%d(int a, int b) { return ((a * %d) + (b << %d)) & 1023; }\n"
      l (Rng.pick rng [ 3; 5; 7 ]) (Rng.range rng 1 2)
  done;
  Buffer.add_string buf "\n";
  (* forward declarations: the walker ring is mutually recursive *)
  for k = 0 to n_walks - 1 do
    bput buf "int walk%d(int d, int x);\n" k
  done;
  Buffer.add_string buf "\n";
  for k = 0 to n_walks - 1 do
    bput buf "int walk%d(int d, int x) {\n  int r;\n" k;
    bput buf "  r = x & 7;\n  calls = calls + 1;\n";
    bput buf "  if (d <= 0) { return r + 1; }\n";
    let n_calls = Rng.range rng 1 (min 3 (max 1 size.s_fanout)) in
    for _ = 1 to n_calls do
      let target = (k + 1 + Rng.int rng (n_walks - 1)) mod n_walks in
      let target = if Rng.chance rng 1 3 then k else target in
      match Rng.int rng 3 with
      | 0 ->
        bput buf "  if ((x & %d) == %d) { r = r + walk%d(d - 1, x / 2 + %d); }\n"
          (Rng.pick rng [ 1; 3 ])
          (Rng.int rng 2) target (Rng.range rng 1 5)
      | 1 ->
        bput buf "  r = combine%d(r, walk%d(d - 1, x + %d));\n"
          (Rng.int rng n_leaves) target (Rng.range rng 1 7)
      | _ -> bput buf "  r = r ^ walk%d(d - 1, x - %d);\n" target (Rng.range rng 1 4)
    done;
    if Rng.bool rng then
      bput buf "  if (r > %d) { r = r - %d; }\n" (Rng.range rng 100 800)
        (Rng.range rng 10 90);
    bput buf "  return r & 1023;\n}\n\n"
  done;
  bput buf "int search(int i, int target, int sum) {\n  int r;\n";
  bput buf "  calls = calls + 1;\n";
  bput buf "  if (sum == target) { return 1; }\n";
  bput buf "  if (i >= 8) { return 0; }\n";
  bput buf "  if (sum > target) { return 0; }\n";
  bput buf "  r = search(i + 1, target, sum + weights[i]);\n";
  bput buf "  if (r == 0) { r = search(i + 1, target, sum); }\n";
  bput buf "  return r;\n}\n\n";
  bput buf "int main(int argc, char **argv) {\n";
  bput buf "  int rep = %d; int d; int total; int i;\n" (Rng.range rng 1 2);
  bput buf "  total = 0;\n";
  bput buf "  if (argc > 1) { rep = atoi(argv[1]) & 3; }\n";
  bput buf "  for (i = 0; i < 8; i++) { weights[i] = (i * 7 + 3) %% 13 + 1; }\n";
  bput buf "  for (d = 1; d <= %d + (rep & 1); d++) { total = total + walk%d(d, d * 3 + 1); }\n"
    dmax (Rng.int rng n_walks);
  bput buf "  best = search(0, %d, 0);\n" (Rng.range rng 9 30);
  bput buf "  printf(\"%%d %%d %%d\\n\", total, calls, best);\n";
  bput buf "  return total & 7;\n}\n"

(* ------------------------------------------------------------------ *)

let generate ~(seed : int) ~(cls : Shape.workload_class) ~(size : Shape.size)
    ~(index : int) : string =
  let rng =
    Rng.of_path
      [ seed; class_tag cls; index; size.Shape.s_functions;
        size.Shape.s_stmts; size.Shape.s_loop_depth; size.Shape.s_fanout ]
  in
  let buf = Buffer.create 4096 in
  header buf ~seed ~cls ~size ~index;
  (match cls with
  | Shape.Loop_nest -> gen_loop_nest buf rng size
  | Shape.Branchy -> gen_branchy buf rng size
  | Shape.Pointer_table -> gen_pointer_table buf rng size
  | Shape.Recursive -> gen_recursive buf rng size);
  Buffer.contents buf

(* Each corpus program is profiled on two inputs: the bare run and one
   that bumps the argv-controlled repetition knob — enough to exercise
   the cross-profile averaging the estimators are scored under. *)
let runs : (string list * string) list = [ ([], ""); ([ "7" ], "") ]
