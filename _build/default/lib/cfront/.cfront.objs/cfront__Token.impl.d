lib/cfront/token.ml: Char Format List Printf
