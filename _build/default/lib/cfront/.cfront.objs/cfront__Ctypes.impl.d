lib/cfront/ctypes.ml: Array List Option Printf String
