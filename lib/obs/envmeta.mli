(** Best-effort environment metadata for persisted observability
    documents (run records, bench JSON): which machine and toolchain
    produced the numbers. Dependency-free and total — a field that
    cannot be determined is ["unknown"], never an exception. *)

val git_rev : unit -> string
(** The HEAD commit hash, read directly from the nearest enclosing
    [.git] (loose refs, packed-refs and worktree pointer files are all
    handled; no subprocess). ["unknown"] outside a repository. *)

val ocaml_version : string

val cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val common : unit -> (string * string) list
(** The standard metadata block: [git_rev], [ocaml_version], [cores],
    [os], [word_size]. Callers append run-specific fields (jobs, seed,
    backend, timestamp). *)
