test/test_cfg.ml: Alcotest Array Cfg_ir Cfront Fun List Option Parser Printf QCheck QCheck_alcotest String Suite Typecheck
