(* Graphviz output for CFGs and call graphs (debugging / documentation). *)

module Pretty = Cfront.Pretty

let escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let block_label (b : Cfg.block) : string =
  let instrs =
    List.map
      (function
        | Cfg.Iexpr e -> Pretty.expr_to_string e ^ ";"
        | Cfg.Ilocal_init (_, d) ->
          Printf.sprintf "%s = <init>;" d.Cfg.Ast.d_name)
      b.Cfg.b_instrs
  in
  let term =
    match b.Cfg.b_term with
    | Cfg.Tjump t -> Printf.sprintf "goto B%d" t
    | Cfg.Tbranch (br, a, f) ->
      Printf.sprintf "if (%s) B%d else B%d"
        (Pretty.expr_to_string br.Cfg.br_cond)
        a f
    | Cfg.Tswitch (e, cases, d) ->
      Printf.sprintf "switch (%s) [%s] default B%d"
        (Pretty.expr_to_string e)
        (String.concat " "
           (List.map (fun (v, t) -> Printf.sprintf "%d->B%d" v t) cases))
        d
    | Cfg.Treturn (Some e) ->
      Printf.sprintf "return %s" (Pretty.expr_to_string e)
    | Cfg.Treturn None -> "return"
  in
  String.concat "\\l" (List.map escape (instrs @ [ term ])) ^ "\\l"

let fn_to_dot (f : Cfg.fn) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n  node [shape=box fontname=monospace];\n"
       (escape f.Cfg.fn_name));
  Array.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "  B%d [label=\"B%d:\\l%s\"];\n" b.Cfg.b_id
           b.Cfg.b_id (block_label b));
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  B%d -> B%d;\n" b.Cfg.b_id s))
        (Cfg.successors b.Cfg.b_term))
    f.Cfg.fn_blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let callgraph_to_dot (g : Callgraph.t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph callgraph {\n  node [shape=ellipse];\n";
  Array.iter
    (fun name ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" (escape name)))
    g.Callgraph.names;
  Hashtbl.iter
    (fun (caller, callee) sites ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%d\"];\n"
           (escape g.Callgraph.names.(caller))
           (escape g.Callgraph.names.(callee))
           (List.length sites)))
    g.Callgraph.direct_arcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
