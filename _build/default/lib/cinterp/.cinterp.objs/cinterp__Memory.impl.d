lib/cinterp/memory.ml: Array Buffer Char String Value
