(* The paper's "smart" static branch predictor (section 4.1).

   Works at the level of the abstract syntax and the C type system, in the
   spirit of Ball and Larus but inside the compiler. Heuristics fire in a
   fixed priority order; the first applicable one decides. The paper's
   listed heuristics:

     - pointers are unlikely to be NULL,
     - errors (calling abort or exit) are unlikely,
     - an arm that writes variables read elsewhere is more likely,
     - multiple logical ANDs make a condition less likely,

   plus the structural loop heuristic (back edges are taken) and a
   Ball/Larus-style opcode heuristic on comparisons with zero or equality
   tests, with a "taken" default. Loops use the standard count of 5, i.e.
   a continue probability of [Loop_model.continue_probability]. *)

module Ast = Cfront.Ast
module Ctypes = Cfront.Ctypes
module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Const_fold = Cfront.Const_fold
module Cfg = Cfg_ir.Cfg

type prediction = Taken | NotTaken

type reason =
  | Hconstant   (* condition folds to a constant *)
  | Hloop       (* loop back edge *)
  | Hpointer    (* NULL test / pointer comparison *)
  | Herror_call (* arm calls exit/abort/assert *)
  | Hopcode     (* comparison shape: x < 0, x == y, ... *)
  | Hmulti_and  (* several && conjuncts *)
  | Hstore      (* arm writes a variable read elsewhere *)
  | Hreturn     (* arm returns early *)
  | Hdefault

let reason_to_string = function
  | Hconstant -> "constant"
  | Hloop -> "loop"
  | Hpointer -> "pointer"
  | Herror_call -> "error-call"
  | Hopcode -> "opcode"
  | Hmulti_and -> "multi-and"
  | Hstore -> "store"
  | Hreturn -> "return"
  | Hdefault -> "default"

(* Probability assigned to the predicted arm of a binary branch (paper
   footnote 5: "We chose 0.8 for the predicted arm"); read from the
   configuration so the sensitivity ablation can vary it. *)
let taken_probability () = Config.current.Config.branch_probability

let negate = function Taken -> NotTaken | NotTaken -> Taken

(* --- individual heuristics; each returns None when inapplicable ------- *)

let constant_heuristic tc (cond : Ast.expr) : prediction option =
  match Const_fold.eval tc cond with
  | Some v -> Some (if Const_fold.is_true v then Taken else NotTaken)
  | None -> None

let is_pointer_ty tc (e : Ast.expr) =
  match Typecheck.type_of tc e with
  | Ctypes.Tptr _ -> true
  | _ -> false

let is_null_const tc (e : Ast.expr) =
  match Const_fold.eval tc e with
  | Some v -> not (Const_fold.is_true v)
  | None -> false

(* Pointers are unlikely to be NULL; pointer equality is unlikely. *)
let rec pointer_heuristic tc (cond : Ast.expr) : prediction option =
  match cond.Ast.enode with
  | Ast.Binop (Ast.Beq, a, b)
    when (is_pointer_ty tc a && is_null_const tc b)
         || (is_pointer_ty tc b && is_null_const tc a) ->
    Some NotTaken
  | Ast.Binop (Ast.Bne, a, b)
    when (is_pointer_ty tc a && is_null_const tc b)
         || (is_pointer_ty tc b && is_null_const tc a) ->
    Some Taken
  | Ast.Binop (Ast.Beq, a, b) when is_pointer_ty tc a && is_pointer_ty tc b
    ->
    Some NotTaken
  | Ast.Binop (Ast.Bne, a, b) when is_pointer_ty tc a && is_pointer_ty tc b
    ->
    Some Taken
  | Ast.Unop (Ast.Unot, a) ->
    Option.map negate (pointer_heuristic tc a)
  | _ when is_pointer_ty tc cond -> Some Taken (* if (p) ... *)
  | _ -> None

(* Does [s] (shallowly, without entering nested function scopes — there
   are none in C) contain a call to an error-exit routine? *)
let calls_error tc (s : Ast.stmt) : bool =
  let found = ref false in
  Ast.iter_stmt s
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun (e : Ast.expr) ->
      match e.Ast.enode with
      | Ast.Call ({ Ast.enode = Ast.Ident name; _ } as fn, _) -> begin
        match Typecheck.resolution_of tc fn with
        | Some (Typecheck.Rbuiltin b)
          when List.mem b Typecheck.error_call_names ->
          found := true
        | _ -> if List.mem name [ "error"; "fatal"; "panic"; "die" ] then
                 found := true
      end
      | _ -> ());
  !found

let error_call_heuristic tc ~(then_arm : Ast.stmt option)
    ~(else_arm : Ast.stmt option) : prediction option =
  let then_err = Option.fold ~none:false ~some:(calls_error tc) then_arm in
  let else_err = Option.fold ~none:false ~some:(calls_error tc) else_arm in
  match (then_err, else_err) with
  | true, false -> Some NotTaken
  | false, true -> Some Taken
  | _ -> None

(* Ball/Larus-style opcode heuristic: integer < 0 / <= 0 and equality
   comparisons are unlikely to succeed. Only fires on comparisons whose
   shape is informative. *)
let opcode_heuristic tc (cond : Ast.expr) : prediction option =
  let is_zero e = is_null_const tc e in
  match cond.Ast.enode with
  | Ast.Binop (Ast.Blt, _, z) when is_zero z -> Some NotTaken
  | Ast.Binop (Ast.Ble, _, z) when is_zero z -> Some NotTaken
  | Ast.Binop (Ast.Bge, _, z) when is_zero z -> Some Taken
  | Ast.Binop (Ast.Bgt, z, _) when is_zero z -> Some NotTaken
  | Ast.Binop (Ast.Beq, _, _) -> Some NotTaken
  | Ast.Binop (Ast.Bne, _, _) -> Some Taken
  | _ -> None

(* Multiple logical ANDs make a condition less likely. *)
let multi_and_heuristic (cond : Ast.expr) : prediction option =
  if Ast.count_conjuncts cond >= 2 then Some NotTaken else None

(* An arm that stores to a variable read elsewhere is more likely. *)
let store_heuristic tc (usage : Usage.t) (if_stmt : Ast.stmt)
    ~(then_arm : Ast.stmt option) ~(else_arm : Ast.stmt option) :
    prediction option =
  let arm_stores arm =
    match arm with
    | None -> false
    | Some s ->
      Usage.any_write_read_outside usage if_stmt (Usage.writes_of_stmt tc s)
  in
  match (arm_stores then_arm, arm_stores else_arm) with
  | true, false -> Some Taken
  | false, true -> Some NotTaken
  | _ -> None

(* An arm that returns early is less likely. *)
let return_heuristic ~(then_arm : Ast.stmt option)
    ~(else_arm : Ast.stmt option) : prediction option =
  let returns arm =
    match arm with
    | None -> false
    | Some s ->
      let found = ref false in
      Ast.iter_stmt s
        ~on_stmt:(fun (x : Ast.stmt) ->
          match x.Ast.snode with
          | Ast.Sreturn _ -> found := true
          | _ -> ())
        ~on_expr:(fun _ -> ());
      !found
  in
  match (returns then_arm, returns else_arm) with
  | true, false -> Some NotTaken
  | false, true -> Some Taken
  | _ -> None

(* --- the combined predictor ------------------------------------------ *)

(* Predict an if-branch at the AST level. Each heuristic fires only when
   enabled in the configuration (the ablation experiments switch them off
   one at a time). *)
let predict_if tc (usage : Usage.t) (if_stmt : Ast.stmt) (cond : Ast.expr)
    ~(then_arm : Ast.stmt option) ~(else_arm : Ast.stmt option) :
    prediction * reason =
  let cfg = Config.current in
  let when_ enabled f = if enabled then f () else None in
  let chain =
    [ (fun () -> Option.map (fun p -> (p, Hconstant)) (constant_heuristic tc cond));
      (fun () ->
        when_ cfg.Config.heuristic_pointer (fun () -> pointer_heuristic tc cond)
        |> Option.map (fun p -> (p, Hpointer)));
      (fun () ->
        when_ cfg.Config.heuristic_error_call (fun () ->
            error_call_heuristic tc ~then_arm ~else_arm)
        |> Option.map (fun p -> (p, Herror_call)));
      (fun () ->
        when_ cfg.Config.heuristic_opcode (fun () -> opcode_heuristic tc cond)
        |> Option.map (fun p -> (p, Hopcode)));
      (fun () ->
        when_ cfg.Config.heuristic_multi_and (fun () -> multi_and_heuristic cond)
        |> Option.map (fun p -> (p, Hmulti_and)));
      (fun () ->
        when_ cfg.Config.heuristic_store (fun () ->
            store_heuristic tc usage if_stmt ~then_arm ~else_arm)
        |> Option.map (fun p -> (p, Hstore)));
      (fun () ->
        when_ cfg.Config.heuristic_return (fun () ->
            return_heuristic ~then_arm ~else_arm)
        |> Option.map (fun p -> (p, Hreturn))) ]
  in
  let rec first = function
    | [] -> (Taken, Hdefault)
    | f :: rest -> ( match f () with Some r -> r | None -> first rest)
  in
  first chain

(* Predict a CFG branch: loop branches are predicted taken (the loop
   continues); if-branches go through the heuristic chain. *)
let predict tc (usage : Usage.t) (br : Cfg.branch) : prediction * reason =
  match br.Cfg.br_kind with
  | Cfg.Kwhile | Cfg.Kdo | Cfg.Kfor -> begin
    match constant_heuristic tc br.Cfg.br_cond with
    | Some p -> (p, Hconstant)
    | None -> (Taken, Hloop)
  end
  | Cfg.Kif | Cfg.Kcond ->
    predict_if tc usage br.Cfg.br_stmt br.Cfg.br_cond
      ~then_arm:br.Cfg.br_then_arm ~else_arm:br.Cfg.br_else_arm

(* ------------------------------------------------------------------ *)
(* Probability-generating prediction (the paper's closing open question:
   "whether static branch prediction can be accurate enough to make good
   use of the intra-procedural Markov model (for example, by using a
   static predictor that generates probabilities directly, rather than a
   true/false guess)"). Following Wu and Larus (MICRO-27, 1994), each
   heuristic carries an empirically calibrated taken-probability and all
   applicable heuristics are combined with the Dempster-Shafer rule:

     combine p1 p2 = p1*p2 / (p1*p2 + (1-p1)*(1-p2))

   The per-heuristic probabilities below are the Ball/Larus-measured hit
   rates Wu and Larus used. *)

let heuristic_probability : reason -> float option = function
  | Hpointer -> Some 0.60
  | Herror_call -> Some 0.78 (* the Ball/Larus call heuristic *)
  | Hopcode -> Some 0.84
  | Hmulti_and -> Some 0.55 (* weak evidence, like the store heuristic *)
  | Hstore -> Some 0.55
  | Hreturn -> Some 0.72
  | Hconstant | Hloop | Hdefault -> None

let dempster_shafer p1 p2 =
  let num = p1 *. p2 in
  num /. (num +. ((1.0 -. p1) *. (1.0 -. p2)))

(* The probability that an if-condition is true, combining the evidence
   of every applicable heuristic. Heuristics vote with their calibrated
   probability oriented by their predicted direction. *)
let probability_true_combined tc (usage : Usage.t) (if_stmt : Ast.stmt)
    (cond : Ast.expr) ~(then_arm : Ast.stmt option)
    ~(else_arm : Ast.stmt option) : float =
  match constant_heuristic tc cond with
  | Some Taken -> 1.0
  | Some NotTaken -> 0.0
  | None ->
    let cfg = Config.current in
    let votes =
      List.filter_map
        (fun (enabled, reason, result) ->
          if not enabled then None
          else
            match result with
            | Some direction ->
              Option.map
                (fun p ->
                  match direction with Taken -> p | NotTaken -> 1.0 -. p)
                (heuristic_probability reason)
            | None -> None)
        [ (cfg.Config.heuristic_pointer, Hpointer, pointer_heuristic tc cond);
          (cfg.Config.heuristic_error_call, Herror_call,
           error_call_heuristic tc ~then_arm ~else_arm);
          (cfg.Config.heuristic_opcode, Hopcode, opcode_heuristic tc cond);
          (cfg.Config.heuristic_multi_and, Hmulti_and,
           multi_and_heuristic cond);
          (cfg.Config.heuristic_store, Hstore,
           store_heuristic tc usage if_stmt ~then_arm ~else_arm);
          (cfg.Config.heuristic_return, Hreturn,
           return_heuristic ~then_arm ~else_arm) ]
    in
    List.fold_left dempster_shafer 0.5 votes

(* The probability that the branch condition is true. Loop branches use
   the loop model's continue probability; ifs the predicted-arm rule. *)
let probability_true tc (usage : Usage.t) (br : Cfg.branch) : float =
  match br.Cfg.br_kind with
  | Cfg.Kwhile | Cfg.Kdo | Cfg.Kfor -> begin
    match predict tc usage br with
    | Taken, _ -> Loop_model.continue_probability ()
    | NotTaken, _ -> 1.0 -. Loop_model.continue_probability ()
  end
  | Cfg.Kif | Cfg.Kcond -> begin
    match predict tc usage br with
    | Taken, _ -> taken_probability ()
    | NotTaken, _ -> 1.0 -. taken_probability ()
  end

(* The naive 50/50 probability used by the "loop" estimator: loops still
   get the standard count, everything else is an even split. *)
let probability_true_naive (br : Cfg.branch) : float =
  match br.Cfg.br_kind with
  | Cfg.Kwhile | Cfg.Kdo | Cfg.Kfor -> Loop_model.continue_probability ()
  | Cfg.Kif | Cfg.Kcond -> 0.5
