lib/suite/prog_alvinn.ml: Bench_prog
