test/test_typecheck.ml: Alcotest Array Ast Cfront Ctypes Hashtbl List Option Parser String Typecheck
