(* The differential-testing mini language, promoted from
   test/test_differential.ml so other consumers (and future corpus
   classes) can reuse it: int variables, assignments, arithmetic,
   if/while — rendered to C on one side and executed by an Int32
   reference interpreter on the other.  The semantics here are the
   *specification*; the C pipeline is the implementation under test. *)

type aexpr =
  | Var of int              (* variable index 0..n_vars-1 *)
  | Const of int32
  | Bin of char * aexpr * aexpr  (* + - * & | ^ *)

type mstmt =
  | Assign of int * aexpr
  | If of aexpr * mstmt list * mstmt list
  | While of aexpr * mstmt list  (* guarded: decrements a counter *)

let n_vars = 4
let var_name i = Printf.sprintf "v%d" i

(* --- rendering to C --------------------------------------------------- *)

let rec render_expr = function
  | Var i -> var_name i
  | Const n ->
    if Int32.compare n 0l < 0 then Printf.sprintf "(%ld)" n
    else Int32.to_string n
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %c %s)" (render_expr a) op (render_expr b)

let rec render_stmt buf indent s =
  let pad = String.make indent ' ' in
  match s with
  | Assign (v, e) ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s = %s;\n" pad (var_name v) (render_expr e))
  | If (c, t, f) ->
    Buffer.add_string buf
      (Printf.sprintf "%sif (%s) {\n" pad (render_expr c));
    List.iter (render_stmt buf (indent + 2)) t;
    Buffer.add_string buf (Printf.sprintf "%s} else {\n" pad);
    List.iter (render_stmt buf (indent + 2)) f;
    Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
  | While (c, body) ->
    (* guard via a fuel counter so both sides terminate identically *)
    Buffer.add_string buf
      (Printf.sprintf "%swhile ((%s) && fuel > 0) {\n%s  fuel--;\n" pad
         (render_expr c) pad);
    List.iter (render_stmt buf (indent + 2)) body;
    Buffer.add_string buf (Printf.sprintf "%s}\n" pad)

let render_program (stmts : mstmt list) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "int main(void) {\n  int fuel = 50;\n";
  for i = 0 to n_vars - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  int %s = %d;\n" (var_name i) (i + 1))
  done;
  List.iter (render_stmt buf 2) stmts;
  Buffer.add_string buf "  printf(\"";
  for _ = 0 to n_vars - 1 do
    Buffer.add_string buf "%d "
  done;
  Buffer.add_string buf "\"";
  for i = 0 to n_vars - 1 do
    Buffer.add_string buf (Printf.sprintf ", %s" (var_name i))
  done;
  Buffer.add_string buf ");\n  return 0;\n}\n";
  Buffer.contents buf

(* --- reference interpreter ------------------------------------------- *)

type state = { vars : int32 array; mutable fuel : int }

let rec ref_expr st = function
  | Var i -> st.vars.(i)
  | Const n -> n
  | Bin (op, a, b) ->
    let x = ref_expr st a and y = ref_expr st b in
    (match op with
    | '+' -> Int32.add x y
    | '-' -> Int32.sub x y
    | '*' -> Int32.mul x y
    | '&' -> Int32.logand x y
    | '|' -> Int32.logor x y
    | '^' -> Int32.logxor x y
    | _ -> assert false)

let rec ref_stmt st = function
  | Assign (v, e) -> st.vars.(v) <- ref_expr st e
  | If (c, t, f) ->
    if ref_expr st c <> 0l then List.iter (ref_stmt st) t
    else List.iter (ref_stmt st) f
  | While (c, body) ->
    while ref_expr st c <> 0l && st.fuel > 0 do
      st.fuel <- st.fuel - 1;
      List.iter (ref_stmt st) body
    done

let ref_run (stmts : mstmt list) : string =
  let st = { vars = Array.init n_vars (fun i -> Int32.of_int (i + 1)); fuel = 50 } in
  List.iter (ref_stmt st) stmts;
  String.concat ""
    (List.init n_vars (fun i -> Printf.sprintf "%ld " st.vars.(i)))

(* --- generator -------------------------------------------------------- *)

let gen_stmts : mstmt list QCheck.arbitrary =
  let open QCheck.Gen in
  let gen_var = int_bound (n_vars - 1) in
  let rec gen_expr depth =
    if depth <= 0 then
      oneof
        [ map (fun i -> Var i) gen_var;
          map (fun n -> Const (Int32.of_int n)) (int_range (-50) 50) ]
    else
      frequency
        [ (1, map (fun i -> Var i) gen_var);
          (1, map (fun n -> Const (Int32.of_int n)) (int_range (-50) 50));
          (3,
           oneofl [ '+'; '-'; '*'; '&'; '|'; '^' ] >>= fun op ->
           map2 (fun a b -> Bin (op, a, b)) (gen_expr (depth - 1))
             (gen_expr (depth - 1))) ]
  in
  let rec gen_stmt depth =
    if depth <= 0 then
      map2 (fun v e -> Assign (v, e)) gen_var (gen_expr 2)
    else
      frequency
        [ (3, map2 (fun v e -> Assign (v, e)) gen_var (gen_expr 2));
          (1,
           gen_expr 1 >>= fun c ->
           list_size (int_range 1 3) (gen_stmt (depth - 1)) >>= fun t ->
           list_size (int_range 0 2) (gen_stmt (depth - 1)) >|= fun f ->
           If (c, t, f));
          (1,
           gen_expr 1 >>= fun c ->
           list_size (int_range 1 3) (gen_stmt (depth - 1)) >|= fun body ->
           While (c, body)) ]
  in
  QCheck.make
    (QCheck.Gen.list_size (int_range 1 8) (gen_stmt 2))
    ~print:(fun stmts -> render_program stmts)
