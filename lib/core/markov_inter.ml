(* Markov model over the call graph (paper section 5.2).

   Functions are states; the arc from caller to callee carries the
   estimated number of calls per invocation of the caller (the sum of the
   call sites' local block frequencies, arcs between the same pair
   merged). main is pinned at 1 and the chain is solved like the
   intra-procedural one.

   Two complications from the paper are handled explicitly:

   - Function pointers (5.2.1): a distinguished *pointer node* receives
     all indirect-call flow and redistributes it to address-taken
     functions in proportion to their static address-of counts.

   - Recursion (5.2.2): mis-predicted branches can give a recursive arc
     an impossible weight (> 1 expected calls to itself per invocation),
     making the solution negative. Direct self-arcs over 1 are clamped to
     0.8; if the global solve is still invalid, each cyclic SCC is
     re-solved in isolation under an artificial main distributing the
     external inflow m/n, with a solution ceiling of 5, scaling the
     SCC-internal arc weights down until the subproblem passes. *)

module Cfg = Cfg_ir.Cfg
module Callgraph = Cfg_ir.Callgraph
module Scc = Cfg_ir.Scc
module Linsolve = Linalg.Linsolve

type arcs = (int * int, float) Hashtbl.t (* (src, dst) -> weight *)

type diag = {
  clamped_self_arcs : (int * float) list; (* node, original weight *)
  repaired_sccs : int;        (* how many SCC subproblems were re-scaled *)
  scale_iterations : int;     (* total scale-down steps across SCCs *)
}

type result = {
  freqs : (string * float) list; (* defined functions, node order *)
  pointer_freq : float option;   (* frequency of the pointer node, if any *)
  diag : diag;
}

let arc_list (arcs : arcs) : (int * int * float) list =
  Hashtbl.fold (fun (s, d) w acc -> (s, d, w) :: acc) arcs []

(* Hand the table to the solver as a re-runnable iterator — no list
   materialization per solve attempt (the SCC-repair and damping loops
   used to rebuild the full arc list on every retry). (src, dst) keys
   are unique, so each arc lands in its own matrix cell and table
   traversal order cannot change the assembled system. *)
let arc_iter (arcs : arcs) : Linalg.Csr.arcs_iter =
 fun f -> Hashtbl.iter (fun (s, d) w -> f s d w) arcs

(* Build the weighted call-graph arcs, including the pointer node (index
   [n]) when the program makes indirect calls. Returns (arcs, n_nodes,
   has_pointer_node). *)
let build_arcs (g : Callgraph.t) ~(intra : string -> float array) :
    arcs * int * bool =
  let n = Callgraph.n_nodes g in
  let arcs : arcs = Hashtbl.create 64 in
  let add src dst w =
    if w > 0.0 then
      Hashtbl.replace arcs (src, dst)
        (w +. Option.value ~default:0.0 (Hashtbl.find_opt arcs (src, dst)))
  in
  let site_weight (cs : Cfg.call_site) =
    (intra cs.Cfg.cs_fun).(cs.Cfg.cs_block)
  in
  Hashtbl.iter
    (fun (caller, callee) sites ->
      List.iter (fun cs -> add caller callee (site_weight cs)) sites)
    g.Callgraph.direct_arcs;
  let total_addr = float_of_int (Callgraph.total_address_taken g) in
  let has_indirect = Hashtbl.length g.Callgraph.indirect_by_caller > 0 in
  let use_pointer_node = has_indirect && total_addr > 0.0 in
  if use_pointer_node then begin
    let pnode = n in
    Hashtbl.iter
      (fun caller sites ->
        List.iter (fun cs -> add caller pnode (site_weight cs)) sites)
      g.Callgraph.indirect_by_caller;
    Hashtbl.iter
      (fun name count ->
        match Callgraph.node_of_name g name with
        | Some i -> add pnode i (float_of_int count /. total_addr)
        | None -> ())
      g.Callgraph.address_taken
  end;
  (arcs, (if use_pointer_node then n + 1 else n), use_pointer_node)

let is_valid (x : float array) : bool =
  Array.for_all (fun v -> Float.is_finite v && v >= -1e-9) x

let solve ~n ~source (arcs : arcs) : float array option =
  match
    Linsolve.markov_frequencies_iter ~n ~source (arc_iter arcs)
  with
  | x -> if is_valid x then Some x else None
  | exception Linsolve.Singular _ -> None

(* Solve ignoring validity (used to demonstrate the recursion failure of
   Figure 8). *)
let solve_raw ~n ~source (arcs : arcs) : float array option =
  match
    Linsolve.markov_frequencies_iter ~n ~source (arc_iter arcs)
  with
  | x -> Some x
  | exception Linsolve.Singular _ -> None

(* Re-solve one SCC in isolation: members + an artificial main that calls
   member m with probability (external inflow of m) / (total external
   inflow of the SCC). Succeeds when the solution is non-negative and
   bounded by the ceiling.

   Membership is a hash set and the inflows accumulate in one pass over
   the arc table — the old per-member fold made the check quadratic in
   the table size. Per-member additions still happen in table traversal
   order, so the inflow sums are bit-identical to the folded ones. *)
let scc_subproblem_ok (arcs : arcs) (members : int list) : bool =
  let k = List.length members in
  let index = Hashtbl.create 8 in
  List.iteri (fun i m -> Hashtbl.replace index m i) members;
  let inside m = Hashtbl.mem index m in
  let inflow = Array.make k 0.0 in
  let sub : arcs = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (s, d) w ->
      match Hashtbl.find_opt index d with
      | Some i ->
        if inside s then
          Hashtbl.replace sub (Hashtbl.find index s, i) w
        else inflow.(i) <- inflow.(i) +. w
      | None -> ())
    arcs;
  let total = Array.fold_left ( +. ) 0.0 inflow in
  (* artificial main is node k *)
  Array.iteri
    (fun i flow ->
      let p = if total > 0.0 then flow /. total else 1.0 /. float_of_int k in
      if p > 0.0 then Hashtbl.replace sub (k, i) p)
    inflow;
  match solve ~n:(k + 1) ~source:k sub with
  | Some x ->
    Array.for_all (fun v -> v <= Loop_model.scc_solution_ceiling +. 1e-9) x
  | None -> false

(* Scale all arcs internal to [members] by [factor]. *)
let scale_scc (arcs : arcs) (members : int list) (factor : float) : unit =
  let index = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace index m ()) members;
  let inside m = Hashtbl.mem index m in
  let updates =
    Hashtbl.fold
      (fun (s, d) w acc ->
        if inside s && inside d then ((s, d), w *. factor) :: acc else acc)
      arcs []
  in
  List.iter (fun (k, w) -> Hashtbl.replace arcs k w) updates

let scale_step = 0.8

(* Estimate invocation frequencies for all defined functions.

   Degradation chain: global markov solve → SCC repair → 50 damping
   rounds → the [call_site] simple estimate (an estimator that cannot
   fail; the paper's point that an imperfect estimate beats none) →
   flat. Reaching the simple-estimate fallback records an
   [Obs.Faultlog] entry alongside the probe counter, because a healthy
   suite never gets past the repair stages. [?inject_key] names this
   solve for the ["solve.inter"] injection point (the pipeline passes
   the program); when armed it makes every global/damped solve report
   singular, driving the chain to its end deterministically. *)
let estimate ?(inject_key = "") (g : Callgraph.t)
    ~(intra : string -> float array) : result =
  let solve ~n ~source arcs =
    if Obs.Inject.should_fire "solve.inter" ~key:inject_key then None
    else solve ~n ~source arcs
  in
  let arcs, n, has_pointer = build_arcs g ~intra in
  let source = Option.value ~default:0 g.Callgraph.main_index in
  (* Step 1: clamp impossible direct-recursion arcs. *)
  let clamped = ref [] in
  for i = 0 to n - 1 do
    match Hashtbl.find_opt arcs (i, i) with
    | Some w when w > 1.0 ->
      clamped := (i, w) :: !clamped;
      Obs.Probe.observe "markov_inter.self_arc_clamp" w;
      Hashtbl.replace arcs (i, i) Loop_model.recursive_arc_probability
    | _ -> ()
  done;
  (* Step 2: global solve; on failure, repair cyclic SCCs. *)
  let repaired = ref 0 and iterations = ref 0 in
  let solution =
    match solve ~n ~source arcs with
    | Some x -> x
    | None ->
      Obs.Probe.count "markov_inter.invalid_solve";
      let succs i =
        Hashtbl.fold
          (fun (s, d) _ acc -> if s = i then d :: acc else acc)
          arcs []
      in
      let sccs = Scc.compute n succs in
      Array.iter
        (fun members ->
          let cyclic =
            match members with
            | [ m ] -> Hashtbl.mem arcs (m, m)
            | _ :: _ :: _ -> true
            | _ -> false
          in
          if cyclic then begin
            let budget = ref 60 in
            let touched = ref false in
            while (not (scc_subproblem_ok arcs members)) && !budget > 0 do
              scale_scc arcs members scale_step;
              Obs.Probe.count "markov_inter.scc_scale_step";
              touched := true;
              incr iterations;
              decr budget
            done;
            if !touched then begin
              incr repaired;
              Obs.Probe.count "markov_inter.scc_repaired"
            end
          end)
        sccs.Scc.components;
      (match solve ~n ~source arcs with
      | Some x -> x
      | None ->
        (* last resort: damp everything until solvable *)
        let rec damp k =
          if k = 0 then begin
            (* Damping exhausted: degrade to the call_site simple
               estimate, which combines the same intra frequencies with
               the static call graph and cannot fail; flat only if even
               that raises. The pointer-node slot (absent from the
               simple estimate) keeps the neutral weight 1. *)
            let recovery, x =
              match
                Inter_simple.estimate g ~intra Inter_simple.Call_site
              with
              | assoc ->
                Obs.Probe.count "markov_inter.call_site_fallback";
                let x = Array.make n 1.0 in
                List.iteri (fun i (_, v) -> x.(i) <- v) assoc;
                ("fallback to call_site estimate", x)
              | exception _ ->
                Obs.Probe.count "markov_inter.flat_fallback";
                ("flat estimate", Array.make n 1.0)
            in
            Obs.Faultlog.record ~stage:"solve" ~subject:inject_key
              ~detail:"markov_inter: SCC repair and damping exhausted"
              ~exn_text:"system stayed singular or invalid" recovery;
            x
          end
          else begin
            let all = Hashtbl.fold (fun key _ acc -> key :: acc) arcs [] in
            List.iter
              (fun key ->
                Hashtbl.replace arcs key (Hashtbl.find arcs key *. 0.9))
              all;
            Obs.Probe.count "markov_inter.damp_round";
            incr iterations;
            match solve ~n ~source arcs with
            | Some x -> x
            | None -> damp (k - 1)
          end
        in
        damp 50)
  in
  let nfun = Callgraph.n_nodes g in
  { freqs =
      List.init nfun (fun i -> (g.Callgraph.names.(i), solution.(i)));
    pointer_freq = (if has_pointer then Some solution.(nfun) else None);
    diag =
      { clamped_self_arcs = List.rev !clamped; repaired_sccs = !repaired;
        scale_iterations = !iterations } }

(* The raw (unclamped, unrepaired) solution — demonstrates the invalid
   negative frequencies of Figure 8. *)
let estimate_raw (g : Callgraph.t) ~(intra : string -> float array) :
    (string * float) list option =
  let arcs, n, _ = build_arcs g ~intra in
  let source = Option.value ~default:0 g.Callgraph.main_index in
  Option.map
    (fun x ->
      List.init (Callgraph.n_nodes g) (fun i -> (g.Callgraph.names.(i), x.(i))))
    (solve_raw ~n ~source arcs)

(* The merged arc weights, for presentation. *)
let arc_weights (g : Callgraph.t) ~(intra : string -> float array) :
    (string * string * float) list =
  let arcs, _, has_pointer = build_arcs g ~intra in
  let name i =
    if i < Callgraph.n_nodes g then g.Callgraph.names.(i)
    else if has_pointer then "<pointer>"
    else "?"
  in
  arc_list arcs
  |> List.map (fun (s, d, w) -> (name s, name d, w))
  |> List.sort compare
