(* strlib_mini: hand-written string-library routines plus a driver. The
   [my_strchr] function is the paper's running example (Figure 1); having
   it here means every experiment table includes the exact function the
   paper dissects. *)

let source = {|
/* Find first occurrence of a character in a string (paper Figure 1). */
char *my_strchr(char *str, int c) {
  while (*str) {
    if (*str == c) return str;
    str++;
  }
  return NULL;
}

int my_strlen(char *s) {
  int n = 0;
  while (s[n]) n++;
  return n;
}

int my_strcmp(char *a, char *b) {
  while (*a && *a == *b) {
    a++;
    b++;
  }
  return (*a & 0xff) - (*b & 0xff);
}

char *my_strstr(char *hay, char *needle) {
  char *h, *n;
  if (*needle == 0) return hay;
  while (*hay) {
    h = hay;
    n = needle;
    while (*h && *n && *h == *n) {
      h++;
      n++;
    }
    if (*n == 0) return hay;
    hay++;
  }
  return NULL;
}

void my_strrev(char *s) {
  int i = 0, j = my_strlen(s) - 1, t;
  while (i < j) {
    t = s[i];
    s[i] = s[j];
    s[j] = t;
    i++;
    j--;
  }
}

int to_lower_ch(int c) {
  if (c >= 'A' && c <= 'Z') return c + 32;
  return c;
}

/* Character classification with a many-label switch arm: ten case
   labels share the "vowel" target, so the label-count weighting of
   switch arms (paper footnote 3) has something to chew on. */
int is_vowel_ch(int c) {
  switch (c) {
  case 'a': case 'e': case 'i': case 'o': case 'u':
  case 'A': case 'E': case 'I': case 'O': case 'U':
    return 1;
  default:
    return 0;
  }
}

int count_vowels(char *s) {
  int n = 0;
  while (*s) {
    if (is_vowel_ch(*s)) n++;
    s++;
  }
  return n;
}

int is_palindrome(char *s) {
  int i = 0, j = my_strlen(s) - 1;
  while (i < j) {
    if (to_lower_ch(s[i]) != to_lower_ch(s[j])) return 0;
    i++;
    j--;
  }
  return 1;
}

/* Simple word tokenizer over the input; applies all routines per word. */
char word_buf[64];

int read_word(void) {
  int c, n = 0;
  c = getchar();
  while (c == ' ' || c == '\n' || c == '\t' || c == '\r') c = getchar();
  if (c == EOF) return 0;
  while (c != ' ' && c != '\n' && c != '\t' && c != '\r' && c != EOF) {
    if (n < 63) {
      word_buf[n] = c;
      n++;
    }
    c = getchar();
  }
  word_buf[n] = 0;
  return 1;
}

int main(void) {
  int words = 0, vowels = 0, pals = 0, found = 0, cmp_sum = 0;
  char prev[64];
  char rev[64];
  int i, len;
  prev[0] = 0;
  while (read_word()) {
    words++;
    vowels += count_vowels(word_buf);
    if (is_palindrome(word_buf)) pals++;
    if (my_strchr(word_buf, 'e') != NULL) found++;
    if (my_strstr(word_buf, "th") != NULL) found++;
    cmp_sum += my_strcmp(word_buf, prev) > 0 ? 1 : 0;
    /* copy into prev and build a reversed copy */
    len = my_strlen(word_buf);
    for (i = 0; i <= len; i++) {
      prev[i] = word_buf[i];
      rev[i] = word_buf[i];
    }
    my_strrev(rev);
    if (my_strcmp(rev, word_buf) == 0 && len > 2) pals++;
  }
  printf("words=%d vowels=%d pals=%d found=%d ascending=%d\n", words,
         vowels, pals, found, cmp_sum);
  return 0;
}
|}

let text_a =
  "madam the level civic radar was rotator noon kayak deified a \
   rotor redder stats tenet wow racecar abba otto anna"

let text_b =
  "the quick brown fox jumps over the lazy dog while the cat naps \
   in the warm sun near the old oak tree all afternoon"

let text_c =
  String.concat " "
    (List.init 120 (fun i -> Printf.sprintf "word%d them%d" i (i mod 7)))

let text_d =
  "a bb ccc dddd eeeee ffffff ggggggg hhhhhhhh the that this those \
   these there then than thy three through threw"

let program : Bench_prog.t =
  { Bench_prog.name = "strlib_mini";
    description = "String library (contains the paper's strchr)";
    analogue = "paper Figure 1 running example";
    source;
    runs =
      [ Bench_prog.run ~input:text_a ();
        Bench_prog.run ~input:text_b ();
        Bench_prog.run ~input:text_c ();
        Bench_prog.run ~input:text_d () ] }
