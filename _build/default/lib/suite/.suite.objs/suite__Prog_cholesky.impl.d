lib/suite/prog_cholesky.ml: Bench_prog
