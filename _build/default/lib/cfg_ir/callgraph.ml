(* Static call graph over the defined functions of a program.

   Nodes are defined functions. Besides the direct-call arcs, the graph
   records everything the paper's inter-procedural models need:
   - the call sites grouped by (caller, callee),
   - indirect call sites (calls through function pointers), and
   - the address-taken census: the number of *static* address-of
     operations per function name, which weights the arcs out of the
     "pointer node" (paper section 5.2.1). *)

module Ast = Cfront.Ast
module Typecheck = Cfront.Typecheck

type t = {
  program : Cfg.program;
  names : string array;                 (* node index -> function name *)
  index : (string, int) Hashtbl.t;      (* function name -> node index *)
  direct_arcs : (int * int, Cfg.call_site list) Hashtbl.t;
      (* (caller, callee) -> the sites realizing the arc *)
  indirect_by_caller : (int, Cfg.call_site list) Hashtbl.t;
  address_taken : (string, int) Hashtbl.t;
      (* defined function name -> static address-of count *)
  main_index : int option;
}

let n_nodes (g : t) = Array.length g.names

let node_of_name (g : t) name = Hashtbl.find_opt g.index name

let succs (g : t) (i : int) : int list =
  Hashtbl.fold
    (fun (caller, callee) _ acc -> if caller = i then callee :: acc else acc)
    g.direct_arcs []
  |> List.sort_uniq compare

(* Count static address-of operations on each *defined* function: any
   occurrence of a function name outside direct-call position, plus
   explicit address-of. The typechecker resolves both to [Rfun]. *)
let address_census (p : Cfg.program) : (string, int) Hashtbl.t =
  let tc = p.Cfg.prog_tc in
  let counts = Hashtbl.create 16 in
  let defined name = List.mem name tc.Typecheck.fun_order in
  let bump name =
    if defined name then
      Hashtbl.replace counts name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  let rec scan_expr ~in_call (e : Ast.expr) =
    match e.Ast.enode with
    | Ast.Ident _ -> begin
      if not in_call then
        match Typecheck.resolution_of tc e with
        | Some (Typecheck.Rfun name) -> bump name
        | _ -> ()
    end
    | Ast.Call (fn, args) ->
      (* The callee position is a use, not an address-of — unless it is
         itself an arbitrary expression. *)
      (match fn.Ast.enode with
      | Ast.Ident _ -> ()
      | _ -> scan_expr ~in_call:false fn);
      List.iter (scan_expr ~in_call:false) args
    | Ast.Unop (Ast.Uaddr, ({ Ast.enode = Ast.Ident _; _ } as f)) -> begin
      match Typecheck.resolution_of tc f with
      | Some (Typecheck.Rfun name) -> bump name
      | _ -> ()
    end
    | Ast.Unop (_, a) | Ast.Cast (_, a) | Ast.SizeofE a | Ast.PreIncr a
    | Ast.PreDecr a | Ast.PostIncr a | Ast.PostDecr a | Ast.Field (a, _)
    | Ast.Arrow (a, _) ->
      scan_expr ~in_call:false a
    | Ast.Binop (_, a, b) | Ast.Assign (_, a, b) | Ast.Index (a, b)
    | Ast.Comma (a, b) ->
      scan_expr ~in_call:false a;
      scan_expr ~in_call:false b
    | Ast.Cond (a, b, c) ->
      scan_expr ~in_call:false a;
      scan_expr ~in_call:false b;
      scan_expr ~in_call:false c
    | Ast.IntLit _ | Ast.FloatLit _ | Ast.CharLit _ | Ast.StringLit _
    | Ast.SizeofT _ ->
      ()
  in
  let scan_init init =
    Ast.iter_init
      ~on_expr:(fun e ->
        (* inside initializers, scan top-level idents too *)
        match e.Ast.enode with
        | Ast.Ident _ -> begin
          match Typecheck.resolution_of tc e with
          | Some (Typecheck.Rfun name) -> bump name
          | _ -> ()
        end
        | _ -> ())
      init
  in
  List.iter
    (function
      | Ast.Gfun f ->
        (* iter_stmt fires on_expr for every sub-expression; scan each
           maximal expression once by marking visited subtrees. *)
        let seen = Hashtbl.create 16 in
        Ast.iter_stmt f.Ast.f_body
          ~on_stmt:(fun _ -> ())
          ~on_expr:(fun e ->
            if not (Hashtbl.mem seen e.Ast.eid) then begin
              (* mark the whole subtree as seen, then scan it *)
              Ast.iter_expr (fun x -> Hashtbl.replace seen x.Ast.eid ()) e;
              scan_expr ~in_call:false e
            end)
      | Ast.Gvar d -> scan_init d.Ast.d_init
      | Ast.Gfundecl _ -> ())
    tc.Typecheck.tunit.Ast.globals;
  counts

let build (p : Cfg.program) : t =
  let names = Array.of_list (Cfg.fn_names p) in
  let index = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.replace index n i) names;
  let direct_arcs = Hashtbl.create 64 in
  let indirect_by_caller = Hashtbl.create 16 in
  List.iter
    (fun fn ->
      let caller = Hashtbl.find index fn.Cfg.fn_name in
      List.iter
        (fun cs ->
          match cs.Cfg.cs_callee with
          | Cfg.Direct callee -> begin
            match Hashtbl.find_opt index callee with
            | Some callee_idx ->
              let key = (caller, callee_idx) in
              let old =
                Option.value ~default:[] (Hashtbl.find_opt direct_arcs key)
              in
              Hashtbl.replace direct_arcs key (cs :: old)
            | None -> () (* prototype without definition: dropped *)
          end
          | Cfg.Indirect ->
            let old =
              Option.value ~default:[]
                (Hashtbl.find_opt indirect_by_caller caller)
            in
            Hashtbl.replace indirect_by_caller caller (cs :: old)
          | Cfg.Builtin _ -> ())
        fn.Cfg.fn_call_sites)
    p.Cfg.prog_fns;
  { program = p; names; index; direct_arcs; indirect_by_caller;
    address_taken = address_census p;
    main_index = Hashtbl.find_opt index "main" }

(* All functions whose address is taken, with their census counts. *)
let address_taken_list (g : t) : (string * int) list =
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) g.address_taken []
  |> List.sort compare

let total_address_taken (g : t) : int =
  Hashtbl.fold (fun _ n acc -> acc + n) g.address_taken 0

(* Direct-recursion check used by the [direct] simple estimator. *)
let directly_recursive (g : t) (i : int) : bool =
  Hashtbl.mem g.direct_arcs (i, i)

(* SCC analysis of the direct-call graph. *)
let sccs (g : t) : Scc.result = Scc.compute (n_nodes g) (succs g)

let in_recursion (g : t) : bool array =
  let r = sccs g in
  Array.init (n_nodes g) (fun i -> Scc.in_cycle r (succs g) i)
