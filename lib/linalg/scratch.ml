(* Per-domain scratch buffers for the solver paths — the allocate-once,
   grow-on-demand discipline from the AMSS-NCKU optimization series.

   Every Markov solve used to allocate its whole working set afresh: an
   n*n dense matrix per solve, and (with the sparse path) the CSR arrays
   and iteration vectors. Over a corpus run or a damping-retry chain
   that is thousands of short-lived multi-kilobyte (or, at bench sizes,
   multi-hundred-megabyte) allocations whose only purpose is to be
   thrown away. Instead each domain owns one [t] of growable buffers,
   reused across every solve on that domain; a buffer only grows (never
   shrinks), doubling so repeated near-equal sizes settle immediately.

   Safety: buffers hand out *oversized* arrays — callers must index
   strictly by their own [n]/[nnz] bounds and must not assume fresh
   zeroing beyond what they wrote. Solves never nest (a solver fallback
   re-enters through the same entry point sequentially, and the
   degradation fallbacks are AST estimators, not solves), so one set of
   named slots per domain is enough. Domain-local storage means no
   locking and no cross-domain sharing: the parallel suite pipeline
   keeps its jobs-invariance.

   The returned solution vector is always freshly allocated by the
   caller (it escapes); only the transient working set lives here. *)

type t = {
  mutable dense : float array;     (* n*n dense system *)
  mutable diag : float array;      (* CSR diagonal, length >= n *)
  mutable vals : float array;      (* CSR off-diagonal values, >= nnz *)
  mutable aux : float array;       (* iteration vector, length >= n *)
  mutable rhs : float array;       (* right-hand side, length >= n *)
  mutable cols : int array;        (* CSR column indices, >= nnz *)
  mutable row_start : int array;   (* CSR row offsets, >= n+1 *)
  mutable index : int array;       (* Tarjan discovery index, >= n *)
  mutable lowlink : int array;     (* Tarjan lowlink, >= n *)
  mutable stack : int array;       (* Tarjan DFS node stack, >= n *)
  mutable cursor : int array;      (* per-node DFS edge cursor, >= n *)
  mutable queue : int array;       (* Tarjan SCC stack, >= n *)
  mutable order : int array;       (* SCC-completion node order, >= n *)
  mutable bounds : int array;      (* SCC boundary offsets, >= n+1 *)
  mutable fill : int array;        (* build cursors / on-stack flags, >= n *)
}

let create () =
  { dense = [||]; diag = [||]; vals = [||]; aux = [||]; rhs = [||];
    cols = [||]; row_start = [||]; index = [||]; lowlink = [||];
    stack = [||]; cursor = [||]; queue = [||]; order = [||]; bounds = [||];
    fill = [||] }

let key : t Domain.DLS.key = Domain.DLS.new_key create

let get () : t = Domain.DLS.get key

(* Growth helpers: return a buffer of length >= [len], reusing the old
   one when large enough. Contents of a grown buffer are unspecified;
   callers initialize the prefix they use. *)

let grow_floats (a : float array) (len : int) : float array =
  if Array.length a >= len then a
  else begin
    Obs.Probe.count "scratch.grow";
    Array.make (max len (2 * Array.length a)) 0.0
  end

let grow_ints (a : int array) (len : int) : int array =
  if Array.length a >= len then a
  else begin
    Obs.Probe.count "scratch.grow";
    Array.make (max len (2 * Array.length a)) 0
  end

let dense (s : t) (len : int) : float array =
  s.dense <- grow_floats s.dense len;
  s.dense

let diag (s : t) (len : int) : float array =
  s.diag <- grow_floats s.diag len;
  s.diag

let vals (s : t) (len : int) : float array =
  s.vals <- grow_floats s.vals len;
  s.vals

let aux (s : t) (len : int) : float array =
  s.aux <- grow_floats s.aux len;
  s.aux

let rhs (s : t) (len : int) : float array =
  s.rhs <- grow_floats s.rhs len;
  s.rhs

let cols (s : t) (len : int) : int array =
  s.cols <- grow_ints s.cols len;
  s.cols

let row_start (s : t) (len : int) : int array =
  s.row_start <- grow_ints s.row_start len;
  s.row_start

let index (s : t) (len : int) : int array =
  s.index <- grow_ints s.index len;
  s.index

let lowlink (s : t) (len : int) : int array =
  s.lowlink <- grow_ints s.lowlink len;
  s.lowlink

let stack (s : t) (len : int) : int array =
  s.stack <- grow_ints s.stack len;
  s.stack

let cursor (s : t) (len : int) : int array =
  s.cursor <- grow_ints s.cursor len;
  s.cursor

let queue (s : t) (len : int) : int array =
  s.queue <- grow_ints s.queue len;
  s.queue

let order (s : t) (len : int) : int array =
  s.order <- grow_ints s.order len;
  s.order

let bounds (s : t) (len : int) : int array =
  s.bounds <- grow_ints s.bounds len;
  s.bounds

let fill (s : t) (len : int) : int array =
  s.fill <- grow_ints s.fill len;
  s.fill
