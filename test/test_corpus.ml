(* The corpus engine:

   - [Driver.Stats.quantile] edge cases, pinned: empty series records an
     Estimate-stage fault and renders as —, a single element is every
     quantile of itself, NaN inputs propagate silently, p50 is exact on
     odd and even lengths;
   - generation is a pure function of (seed, class, size, index):
     byte-identical sources on repeated calls, different streams for
     different seeds;
   - every class generates programs that compile and terminate within
     the corpus fuel budget, and each class keeps its structural
     personality markers;
   - evaluation determinism: the same spec yields bit-identical
     aggregate [Score] records, rendered tables and degradation lists
     at jobs 1 and jobs 4 — and under chaos the fault set is
     jobs-independent (the [test_fault] guarantee extended to the
     corpus driver). *)

module Shape = Corpus.Shape
module Genprog = Corpus.Genprog
module Stats = Driver.Stats
module Corpus_eval = Driver.Corpus_eval
module Fault = Driver.Fault
module Parallel = Driver.Parallel
module Score = Driver.Score
module Inject = Obs.Inject
module Pipeline = Core.Pipeline

let contains (haystack : string) (needle : string) : bool =
  let h = String.length haystack and n = String.length needle in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* Same discipline as [test_fault]: every test starts from and restores
   an idle process — no arming, no recorded faults or scores, jobs 1. *)
let pristine () =
  Inject.disarm_all ();
  Fault.reset ();
  Fault.set_strict false;
  Score.reset ();
  Parallel.set_jobs 1

let shielded (f : unit -> unit) () =
  pristine ();
  Fun.protect ~finally:pristine f

let exact = Alcotest.(check (float 0.0))
let close = Alcotest.(check (float 1e-9))

(* --- quantile ---------------------------------------------------------- *)

let test_quantile_empty () =
  let v = Stats.quantile 0.5 [] in
  Alcotest.(check bool) "empty series is NaN" true (Float.is_nan v);
  Alcotest.(check int) "one fault recorded" 1 (Fault.count ());
  (match Fault.sorted () with
  | [ f ] ->
    Alcotest.(check string) "estimate stage" "estimate"
      (Fault.stage_to_string f.Fault.f_stage);
    Alcotest.(check string) "default subject" "quantile" f.Fault.f_subject
  | fs -> Alcotest.failf "expected exactly one fault, got %d" (List.length fs));
  Alcotest.(check string) "renders as the marker" "—"
    (Driver.Text_table.pct v);
  (* the mean keeps the same convention (and its historical subject) *)
  Alcotest.(check bool) "empty mean is NaN" true
    (Float.is_nan (Stats.mean []));
  Alcotest.(check int) "mean recorded its own fault" 2 (Fault.count ())

let test_quantile_single () =
  List.iter
    (fun q -> exact (Printf.sprintf "p%g of singleton" q) 42.0
        (Stats.quantile q [ 42.0 ]))
    [ 0.0; 0.1; 0.5; 0.9; 1.0 ];
  Alcotest.(check int) "no faults" 0 (Fault.count ())

let test_quantile_nan_propagation () =
  let v = Stats.quantile 0.5 [ 1.0; Float.nan; 3.0 ] in
  Alcotest.(check bool) "NaN input propagates" true (Float.is_nan v);
  (* silent: the producing site already recorded the fault *)
  Alcotest.(check int) "no additional fault" 0 (Fault.count ())

let test_quantile_p50 () =
  exact "odd length: the middle element" 2.0
    (Stats.quantile 0.5 [ 3.0; 1.0; 2.0 ]);
  exact "even length: midpoint of the central pair" 2.5
    (Stats.quantile 0.5 [ 4.0; 1.0; 3.0; 2.0 ])

let test_quantile_bounds () =
  let xs = List.init 10 (fun i -> float_of_int (i + 1)) in
  exact "p0 is the minimum" 1.0 (Stats.quantile 0.0 xs);
  exact "p100 is the maximum" 10.0 (Stats.quantile 1.0 xs);
  close "p10 interpolates" 1.9 (Stats.quantile 0.1 xs);
  close "p90 interpolates" 9.1 (Stats.quantile 0.9 xs);
  exact "q below 0 clamps" 1.0 (Stats.quantile (-0.5) xs);
  exact "q above 1 clamps" 10.0 (Stats.quantile 1.5 xs)

(* Regression: an out-of-range q on an *empty* series used to format the
   fault from the unclamped value — "p150 quantile of empty series" for
   a request that quantile_opt would have evaluated as p100. The message
   must name the clamped quantile actually computed. *)
let test_quantile_empty_clamped_message () =
  let v = Stats.quantile 1.5 [] in
  Alcotest.(check bool) "still NaN" true (Float.is_nan v);
  (match Fault.sorted () with
  | [ f ] ->
    Alcotest.(check string) "clamped fault message"
      "p100 quantile of empty series" f.Fault.f_detail
  | fs -> Alcotest.failf "expected exactly one fault, got %d" (List.length fs));
  Fault.reset ();
  ignore (Stats.quantile (-3.0) []);
  match Fault.sorted () with
  | [ f ] ->
    Alcotest.(check string) "negative q clamps to p0"
      "p0 quantile of empty series" f.Fault.f_detail
  | fs -> Alcotest.failf "expected exactly one fault, got %d" (List.length fs)

(* Regression: the sort inside quantile_opt used polymorphic compare,
   under which -0.0 = 0.0 — so the sorted order of a signed-zero pair
   depended on *input* order, and a quantile landing on it could flip
   sign bit between runs. Float.compare's total order (-0.0 < 0.0)
   makes the result a pure function of the multiset. *)
let test_quantile_signed_zero_order_independent () =
  let a = Stats.quantile 0.0 [ -0.0; 0.0 ] in
  let b = Stats.quantile 0.0 [ 0.0; -0.0 ] in
  Alcotest.(check bool) "p0 identical (sign bit included) across orders"
    true (Float.sign_bit a = Float.sign_bit b);
  Alcotest.(check bool) "p0 of a signed-zero pair is -0.0" true
    (a = 0.0 && Float.sign_bit a);
  let hi = Stats.quantile 1.0 [ 0.0; -0.0 ] in
  Alcotest.(check bool) "p100 of a signed-zero pair is +0.0" true
    (hi = 0.0 && not (Float.sign_bit hi));
  (* subnormals sort by magnitude like any other float *)
  let tiny = Float.min_float *. epsilon_float in
  let xs = [ 0.0; tiny; -.tiny; -0.0 ] in
  Alcotest.(check bool) "p0 is the negative subnormal" true
    (compare (Stats.quantile 0.0 xs) (-.tiny) = 0);
  Alcotest.(check bool) "p100 is the positive subnormal" true
    (compare (Stats.quantile 1.0 xs) tiny = 0);
  Alcotest.(check int) "no faults" 0 (Fault.count ())

(* --- generation determinism ------------------------------------------- *)

let test_generation_deterministic () =
  List.iter
    (fun cls ->
      for index = 0 to 3 do
        let gen seed =
          Genprog.generate ~seed ~cls ~size:Shape.medium ~index
        in
        Alcotest.(check string)
          (Printf.sprintf "%s #%d reproducible"
             (Shape.class_to_string cls) index)
          (gen 1) (gen 1);
        Alcotest.(check bool)
          (Printf.sprintf "%s #%d differs across seeds"
             (Shape.class_to_string cls) index)
          true
          (gen 1 <> gen 2)
      done)
    Shape.all_classes

let test_generated_programs_terminate () =
  List.iter
    (fun cls ->
      for index = 0 to 4 do
        let name = Genprog.name cls index in
        let src =
          Genprog.generate ~seed:3 ~cls ~size:Shape.medium ~index
        in
        let c = Pipeline.compile ~name src in
        List.iter
          (fun (argv, input) ->
            let o =
              Pipeline.run_once ~fuel:Corpus_eval.corpus_fuel c
                { Pipeline.argv; input }
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s produced output" name)
              true
              (String.length o.Cinterp.Eval.stdout_text > 0))
          Genprog.runs
      done)
    Shape.all_classes

let test_class_personalities () =
  let src cls = Genprog.generate ~seed:1 ~cls ~size:Shape.medium ~index:0 in
  let expect cls marker =
    Alcotest.(check bool)
      (Printf.sprintf "%s contains %S" (Shape.class_to_string cls) marker)
      true
      (contains (src cls) marker)
  in
  expect Shape.Loop_nest "for (i0";
  expect Shape.Loop_nest "double";
  expect Shape.Branchy "switch";
  expect Shape.Branchy "fail(";
  expect Shape.Pointer_table "struct opdef";
  expect Shape.Pointer_table ".fn();";
  expect Shape.Recursive "walk0(";
  expect Shape.Recursive "int search(int i, int target, int sum)"

(* --- evaluation determinism across jobs -------------------------------- *)

let spec =
  { Corpus_eval.c_seed = 7; c_per_class = 3; c_size = Shape.small;
    c_classes = Shape.all_classes }

(* Evaluate from a pristine store and snapshot everything observable:
   the encoded score records (bit-exact via the JSON encoding), the
   rendered tables, and the degradation summary. *)
let snapshot (jobs : int) :
    string list * string * (string * string) list * int =
  pristine ();
  Parallel.set_jobs jobs;
  let r = Corpus_eval.evaluate spec in
  let scores =
    List.map
      (fun s -> Obs.Json.to_string (Driver.Run_record.score_to_json s))
      (Score.all ())
  in
  ( scores, r.Corpus_eval.o_rendered, r.Corpus_eval.o_degraded,
    r.Corpus_eval.o_divergent )

let test_jobs_invariance () =
  let s1, t1, d1, v1 = snapshot 1 in
  let s4, t4, d4, v4 = snapshot 4 in
  Alcotest.(check (list string)) "bit-identical score records" s1 s4;
  Alcotest.(check string) "identical rendered tables" t1 t4;
  Alcotest.(check (list (pair string string))) "identical degraded" d1 d4;
  Alcotest.(check int) "identical divergent count" v1 v4;
  (* 4 classes x (10 estimators x 4 statistics + 3 counters) *)
  Alcotest.(check int) "full distribution grid" 172 (List.length s1);
  List.iter
    (fun (s : Score.t) ->
      Alcotest.(check string) "corpus scores stay in their own experiment"
        "corpus" s.Score.s_experiment)
    (Score.all ())

let chaos_snapshot (jobs : int) (seed : int) :
    (string * string * string) list * (string * string) list * string =
  pristine ();
  Parallel.set_jobs jobs;
  Fault.arm_chaos ~seed ();
  let r = Corpus_eval.evaluate spec in
  let faults =
    List.map
      (fun (f : Fault.t) ->
        (Fault.stage_to_string f.Fault.f_stage, f.Fault.f_subject,
         f.Fault.f_detail))
      (Fault.sorted ())
  in
  Inject.disarm_all ();
  (faults, r.Corpus_eval.o_degraded, r.Corpus_eval.o_rendered)

let test_chaos_jobs_independent () =
  let seed = 424242 in
  let f1, d1, t1 = chaos_snapshot 1 seed in
  let f4, d4, t4 = chaos_snapshot 4 seed in
  Alcotest.(check (list (triple string string string)))
    "same seed, same fault set at jobs 1 and 4" f1 f4;
  Alcotest.(check (list (pair string string)))
    "same degraded rows" d1 d4;
  Alcotest.(check string) "same rendered tables" t1 t4;
  Alcotest.(check bool) "the chaos run recorded faults" true (f1 <> [])

let suite =
  [ Alcotest.test_case "quantile: empty series faults and renders —" `Quick
      (shielded test_quantile_empty);
    Alcotest.test_case "quantile: singleton" `Quick
      (shielded test_quantile_single);
    Alcotest.test_case "quantile: NaN propagation" `Quick
      (shielded test_quantile_nan_propagation);
    Alcotest.test_case "quantile: exact p50, odd and even" `Quick
      (shielded test_quantile_p50);
    Alcotest.test_case "quantile: bounds and interpolation" `Quick
      (shielded test_quantile_bounds);
    Alcotest.test_case "quantile: empty-series fault names the clamped q"
      `Quick (shielded test_quantile_empty_clamped_message);
    Alcotest.test_case "quantile: signed zeros and subnormals sort totally"
      `Quick (shielded test_quantile_signed_zero_order_independent);
    Alcotest.test_case "generation is a pure function of its parameters"
      `Quick test_generation_deterministic;
    Alcotest.test_case "every class compiles and terminates under fuel"
      `Slow test_generated_programs_terminate;
    Alcotest.test_case "class personality markers" `Quick
      test_class_personalities;
    Alcotest.test_case "aggregate records bit-identical at jobs 1 and 4"
      `Slow (shielded test_jobs_invariance);
    Alcotest.test_case "chaos fault set is jobs-independent" `Slow
      (shielded test_chaos_jobs_independent) ]
