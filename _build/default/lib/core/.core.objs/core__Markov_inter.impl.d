lib/core/markov_inter.ml: Array Cfg_ir Float Hashtbl Linalg List Loop_model Option
