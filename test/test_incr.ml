(* The incremental store's one non-negotiable: caching may change
   timings, never results. Evidence, in rough order of strength:

   1. unit facts about the content hashes — deterministic across pool
      sizes, invariant under whitespace/comment-only edits, and a
      one-function edit changes exactly that function's hash;
   2. counter-level facts — a whitespace edit re-solves nothing, a
      one-function edit re-solves exactly [kinds x 1] entries, name
      invalidation drops program-granularity entries but leaves the
      content-shared function entries warm;
   3. eviction under a starvation budget thrashes (evictions > 0) yet
      produces bit-identical scores;
   4. a differential sweep — suite + 50 corpus programs, dense and
      sparse solver legs, each given a randomized single-function edit:
      warm incremental re-analysis must be bit-identical to a
      from-scratch analysis of the same edited source. *)

module Incr = Driver.Incr
module Parallel = Driver.Parallel
module Score = Driver.Score

let with_jobs (n : int) (f : unit -> 'a) : 'a =
  Parallel.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.set_jobs 1) f

(* Every test starts from an empty store and leaves the default budget
   behind, so ordering inside the alcotest binary cannot matter. *)
let fresh (f : unit -> 'a) : 'a =
  Incr.clear ();
  Incr.reset_stats ();
  Incr.set_budget Incr.default_budget;
  Fun.protect
    ~finally:(fun () ->
      Incr.clear ();
      Incr.set_budget Incr.default_budget)
    f

let three_fns =
  {|
int leaf(int x) { return x * 3 + 1; }
int mid(int x) {
  int i; int acc;
  acc = 0;
  for (i = 0; i < x; i = i + 1) acc = acc + leaf(i);
  return acc;
}
int main() { return mid(10); }
|}

(* Same token stream as [three_fns]: only layout and comments differ. *)
let three_fns_ws =
  {|/* comment-only edit: the token stream is untouched */
int leaf(int x) { return x * 3 + 1; }

int mid(int x) {
  int i;   int acc;
  acc = 0; /* reset */
  for (i = 0; i < x; i = i + 1)
    acc = acc + leaf(i);
  return acc;
}
int main() {
  return mid(10);
}
|}

(* [leaf]'s body changes (3 -> 4); [mid] and [main] are untouched. *)
let three_fns_edited =
  {|
int leaf(int x) { return x * 4 + 1; }
int mid(int x) {
  int i; int acc;
  acc = 0;
  for (i = 0; i < x; i = i + 1) acc = acc + leaf(i);
  return acc;
}
int main() { return mid(10); }
|}

let n_kinds = List.length Core.Pipeline.all_intra_kinds

let check_scores_equal what (a : Score.t list) (b : Score.t list) =
  Alcotest.(check int) (what ^ ": same score count") (List.length a)
    (List.length b);
  List.iter2
    (fun (x : Score.t) (y : Score.t) ->
      if compare x y <> 0 then
        Alcotest.failf "%s: score diverged: %s/%s %.17g vs %.17g" what
          x.Score.s_estimator
          (Score.metric_to_string x.Score.s_metric)
          x.Score.s_value y.Score.s_value)
    a b

(* --- 1. hash facts --------------------------------------------------- *)

let test_hash_deterministic_across_jobs () =
  let hashes_at jobs =
    with_jobs jobs (fun () ->
        fresh (fun () ->
            (Incr.analyze ~name:"det" three_fns).Incr.an_fn_hashes))
  in
  let h1 = hashes_at 1 and h4 = hashes_at 4 in
  Alcotest.(check (list (pair string string)))
    "fn hashes identical at --jobs 1 and --jobs 4" h1 h4

let test_hash_whitespace_invariant () =
  fresh (fun () ->
      let a = Incr.analyze ~name:"ws" three_fns in
      let b = Incr.analyze ~name:"ws" three_fns_ws in
      Alcotest.(check (list (pair string string)))
        "whitespace/comment-only edit keeps every fn hash"
        a.Incr.an_fn_hashes b.Incr.an_fn_hashes;
      (* The source digest differs, so the compiled program is rebuilt
         (a program-granularity miss) — but nothing is re-solved. *)
      Alcotest.(check bool) "reparse, not a program cache hit" false
        b.Incr.an_program_hit;
      Alcotest.(check int) "zero intra recomputations" 0 b.Incr.an_fn_misses;
      Alcotest.(check int) "every fn x kind served from the store"
        (n_kinds * List.length a.Incr.an_fn_hashes)
        b.Incr.an_fn_hits;
      check_scores_equal "whitespace edit" a.Incr.an_scores
        b.Incr.an_scores)

let test_single_edit_changes_one_hash () =
  fresh (fun () ->
      let a = Incr.analyze ~name:"edit" three_fns in
      let b = Incr.analyze ~name:"edit" three_fns_edited in
      let changed =
        List.filter
          (fun (fn, h) -> List.assoc_opt fn a.Incr.an_fn_hashes <> Some h)
          b.Incr.an_fn_hashes
      in
      Alcotest.(check (list string))
        "exactly the edited function re-hashes" [ "leaf" ]
        (List.map fst changed);
      (* Callers of [leaf] keep their hashes: a callee's *body* is not
         part of the caller's key (only its type signature is), and the
         inter-procedural fixpoint is recomputed every analysis. *)
      Alcotest.(check int) "one fn x every kind recomputed" n_kinds
        b.Incr.an_fn_misses;
      Alcotest.(check int) "the other two fns hit"
        (n_kinds * 2) b.Incr.an_fn_hits)

(* --- 2. invalidation semantics --------------------------------------- *)

let test_invalidate_name_scope () =
  fresh (fun () ->
      let _ = Incr.analyze ~name:"inv" three_fns in
      let dropped = Incr.invalidate ~name:"inv" in
      Alcotest.(check bool) "invalidate drops program-granularity entries"
        true (dropped > 0);
      let b = Incr.analyze ~name:"inv" three_fns in
      Alcotest.(check bool) "compiled program was dropped" false
        b.Incr.an_program_hit;
      Alcotest.(check int)
        "content-shared fn entries survive name invalidation" 0
        b.Incr.an_fn_misses)

(* --- 3. eviction under starvation ------------------------------------ *)

let test_eviction_never_changes_scores () =
  let programs =
    List.init 6 (fun i ->
        ( Printf.sprintf "evict_%d" i,
          Corpus.Genprog.generate ~seed:7 ~cls:Corpus.Shape.Branchy
            ~size:Corpus.Shape.small ~index:i ))
  in
  let reference =
    fresh (fun () ->
        List.map
          (fun (name, src) -> (Incr.analyze ~name src).Incr.an_scores)
          programs)
  in
  fresh (fun () ->
      (* A budget far below one program's footprint: every insert evicts
         something, and warm passes keep missing. *)
      Incr.set_budget 2048;
      let starved =
        List.concat_map
          (fun _ ->
            List.map
              (fun (name, src) -> (Incr.analyze ~name src).Incr.an_scores)
              programs)
          [ (); () ]
      in
      let st = Incr.stats () in
      Alcotest.(check bool) "the starved store actually evicted" true
        (st.Incr.st_evictions > 0);
      Alcotest.(check bool) "bytes stay under the starvation budget" true
        (st.Incr.st_bytes <= 2048);
      List.iteri
        (fun i scores ->
          check_scores_equal
            (Printf.sprintf "starved pass, program %d" (i mod 6))
            (List.nth reference (i mod 6))
            scores)
        starved)

(* --- 4. differential: incremental == from-scratch -------------------- *)

(* A randomized single-function edit that is textually safe for any
   program in the supported subset: append a fresh probe function whose
   body depends on the draw. The edited source is analyzed twice — warm
   (incrementally, over a store primed with the original) and cold
   (from scratch) — and must agree bit-for-bit. *)
let probe_edit rng source =
  let k = 1 + Random.State.int rng 1000 in
  source
  ^ Printf.sprintf "\nint __incr_probe(int x) { return x * %d + %d; }\n" k
      (Random.State.int rng 100)

let differential_leg (mode : Linalg.Linsolve.mode) () =
  let saved = !Linalg.Linsolve.solver_mode in
  Linalg.Linsolve.solver_mode := mode;
  Fun.protect
    ~finally:(fun () -> Linalg.Linsolve.solver_mode := saved)
    (fun () ->
      let rng = Random.State.make [| 0x1CC; 42 |] in
      let corpus =
        List.concat_map
          (fun cls ->
            List.init 13 (fun index ->
                ( Printf.sprintf "diff_%s_%02d"
                    (Corpus.Shape.class_to_string cls)
                    index,
                  Corpus.Genprog.generate ~seed:3 ~cls
                    ~size:Corpus.Shape.small ~index )))
          Corpus.Shape.all_classes
      in
      let suite =
        List.map
          (fun (p : Suite.Bench_prog.t) ->
            (p.Suite.Bench_prog.name, p.Suite.Bench_prog.source))
          Suite.Registry.all
      in
      (* 16 suite + 4 x 13 = 52 corpus programs. *)
      List.iter
        (fun (name, source) ->
          let edited = probe_edit rng source in
          let incremental =
            fresh (fun () ->
                let _ = Incr.analyze ~name source in
                Incr.analyze ~name edited)
          in
          let scratch = fresh (fun () -> Incr.analyze ~name edited) in
          Alcotest.(check bool)
            (name ^ ": warm pass reused at least the unchanged fns") true
            (incremental.Incr.an_fn_hits > 0);
          check_scores_equal
            (Printf.sprintf "%s (%s solver)" name
               (Linalg.Linsolve.mode_to_string mode))
            incremental.Incr.an_scores scratch.Incr.an_scores)
        (suite @ corpus))

(* --- 5. the incr.bytes gauge tracks resident bytes ------------------- *)

(* Every path that mutates the store's byte count — insert, invalidate,
   budget shrink (eviction), clear, crash, disk restore — must leave the
   [incr.bytes] gauge equal to [stats ()].st_bytes, or dashboards built
   on the probe silently drift from reality. *)
let check_gauge what =
  let st = Incr.stats () in
  match Obs.Probe.gauge "incr.bytes" with
  | None -> Alcotest.failf "%s: incr.bytes gauge never published" what
  | Some g ->
    Alcotest.(check (float 0.0))
      (what ^ ": incr.bytes gauge == stats bytes")
      (float_of_int st.Incr.st_bytes)
      g

let test_bytes_gauge_pinned () =
  let was_enabled = Obs.Probe.enabled () in
  Obs.Probe.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Incr.close_store ();
      Obs.Probe.set_enabled was_enabled;
      Obs.Probe.reset ())
    (fun () ->
      fresh (fun () ->
          let _ = Incr.analyze ~name:"gauge-a" three_fns in
          check_gauge "after insert";
          let _ = Incr.analyze ~name:"gauge-b" three_fns_edited in
          check_gauge "after second insert";
          ignore (Incr.invalidate ~name:"gauge-a");
          check_gauge "after invalidate";
          (* shrink the budget below residency: eviction must fire and
             the gauge must follow the bytes down *)
          let before = (Incr.stats ()).Incr.st_bytes in
          Incr.set_budget (before / 4);
          check_gauge "after budget shrink";
          Alcotest.(check bool) "the shrink actually evicted" true
            ((Incr.stats ()).Incr.st_bytes < before);
          Incr.clear ();
          check_gauge "after clear";
          (* a disk restore publishes the restored residency *)
          let dir =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "test_incr_gauge_%d" (Unix.getpid ()))
          in
          ignore (Incr.open_store dir);
          let _ = Incr.analyze ~name:"gauge-a" three_fns in
          Incr.crash_store ();
          check_gauge "after crash";
          ignore (Incr.open_store dir);
          check_gauge "after restore";
          Alcotest.(check bool) "the restore repopulated bytes" true
            ((Incr.stats ()).Incr.st_bytes > 0);
          Incr.close_store ();
          Array.iter
            (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
            (Sys.readdir dir);
          (try Unix.rmdir dir with _ -> ())))

let suite =
  [ Alcotest.test_case "fn hashes are pool-size independent" `Quick
      test_hash_deterministic_across_jobs;
    Alcotest.test_case "whitespace/comment edits re-solve nothing" `Quick
      test_hash_whitespace_invariant;
    Alcotest.test_case "a one-function edit re-solves one function" `Quick
      test_single_edit_changes_one_hash;
    Alcotest.test_case "invalidate is name-scoped, fn entries survive"
      `Quick test_invalidate_name_scope;
    Alcotest.test_case "eviction under starvation never changes scores"
      `Quick test_eviction_never_changes_scores;
    Alcotest.test_case "incr.bytes gauge tracks every mutation" `Quick
      test_bytes_gauge_pinned;
    Alcotest.test_case "incremental == scratch after random edit (dense)"
      `Slow
      (differential_leg Linalg.Linsolve.Dense);
    Alcotest.test_case "incremental == scratch after random edit (sparse)"
      `Slow
      (differential_leg Linalg.Linsolve.Sparse) ]
