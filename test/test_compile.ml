(* Differential tests for the closure-compiled interpreter back end.

   The contract under test: [Cinterp.Compile] and the reference tree
   walker [Cinterp.Eval] are observationally identical — bit-identical
   profiles (block counts, branch taken/not-taken, call-site counts,
   work units; compared through the %.17g [Profile.save] text), the same
   stdout, the same exit codes, the same [Runtime_error] diagnostics
   (out-of-bounds, use-after-free, division by zero), and the same
   [Budget_exhausted] stops with bit-identical partial profiles when a
   fuel or wall-clock budget runs out mid-execution.

   Coverage: the whole 16-program suite on every registered input, a
   qcheck property over generated programs (arrays, pointers, helper
   calls, doubles, switch/loops, printf), and pinned regressions for the
   fuel limit and each diagnostic class. *)

module Pipeline = Core.Pipeline
module Profile = Cinterp.Profile
module Eval = Cinterp.Eval
module Value = Cinterp.Value
module Cfg = Cfg_ir.Cfg

let compile src = Pipeline.compile ~name:"t" src

let run_with backend ?fuel ?deadline_s ?(argv = []) ?(input = "") c =
  Pipeline.run_once ?fuel ?deadline_s ~backend c { Pipeline.argv; input }

(* Compare every observable of one run under both back ends. *)
let check_identical name ?fuel ?argv ?input c =
  let t = run_with Pipeline.Tree ?fuel ?argv ?input c in
  let k = run_with Pipeline.Compiled ?fuel ?argv ?input c in
  Alcotest.(check int) (name ^ ": exit code") t.Eval.exit_code k.Eval.exit_code;
  Alcotest.(check string)
    (name ^ ": stdout") t.Eval.stdout_text k.Eval.stdout_text;
  Alcotest.(check string)
    (name ^ ": profile bits")
    (Profile.save t.Eval.profile)
    (Profile.save k.Eval.profile)

(* ------------------------------------------------------------------ *)
(* The whole suite, every input: profiles must agree to the last bit. *)

let test_suite_differential () =
  List.iter
    (fun (p : Suite.Bench_prog.t) ->
      let c =
        Pipeline.compile ~name:p.Suite.Bench_prog.name
          p.Suite.Bench_prog.source
      in
      List.iteri
        (fun i (r : Suite.Bench_prog.run) ->
          check_identical
            (Printf.sprintf "%s input %d" p.Suite.Bench_prog.name i)
            ~argv:r.Suite.Bench_prog.r_argv ~input:r.Suite.Bench_prog.r_input
            c)
        p.Suite.Bench_prog.runs)
    Suite.Registry.all

(* ------------------------------------------------------------------ *)
(* argv interning and getchar share runtime paths with string literals;
   exercise them against a program that consumes both. *)

let test_argv_and_stdin () =
  let c =
    compile
      {|
int main(int argc, char **argv) {
  int ch; int n = 0; int i;
  while ((ch = getchar()) != -1) { n = n + ch; }
  for (i = 0; i < argc; i++) { puts(argv[i]); }
  printf("argc=%d sum=%d %s\n", argc, n, "prog");
  return argc;
}|}
  in
  check_identical "argv+getchar" ~argv:[ "alpha"; "prog" ] ~input:"hi\n" c;
  check_identical "no argv" ~argv:[] ~input:"" c

(* ------------------------------------------------------------------ *)
(* Diagnostics: both back ends must raise Runtime_error with the same
   message, at the same point in execution (stdout up to the fault is
   part of the comparison). *)

let observe backend ?fuel ?deadline_s c =
  match run_with backend ?fuel ?deadline_s c with
  | o -> Ok (o.Eval.exit_code, o.Eval.stdout_text)
  | exception Value.Runtime_error m -> Error m
  | exception Eval.Budget_exhausted (stop, o) ->
    (* fold the stop kind and the partial observables into the compared
       value: both back ends must stop at the same point *)
    Error
      (Printf.sprintf "budget:%s:%s:%s"
         (Eval.budget_stop_to_string stop)
         o.Eval.stdout_text
         (Profile.save o.Eval.profile))

let outcome_t =
  Alcotest.(result (pair int string) string)

let check_same_error name ?fuel ?(expect : string option) src =
  let c = compile src in
  let t = observe Pipeline.Tree ?fuel c in
  let k = observe Pipeline.Compiled ?fuel c in
  Alcotest.(check outcome_t) (name ^ ": same outcome") t k;
  match expect with
  | None ->
    Alcotest.(check bool) (name ^ ": raised") true (Result.is_error t)
  | Some m -> Alcotest.(check outcome_t) (name ^ ": message") (Error m) t

let test_diagnostics () =
  check_same_error "array store out of bounds"
    ~expect:"store out of bounds (main.a, offset 5 of 3)"
    "int main(void) { int a[3]; a[5] = 1; return 0; }";
  check_same_error "array load out of bounds"
    "int main(void) { int a[3]; return a[7]; }";
  check_same_error "use after free"
    {|int main(void) {
        int *p = (int *) malloc(2 * sizeof(int));
        p[0] = 1;
        free(p);
        return p[0];
      }|};
  check_same_error "dead local"
    {|int *leak(void) { int x = 3; return &x; }
      int main(void) { int *p = leak(); return *p; }|};
  check_same_error "division by zero" ~expect:"division by zero"
    "int main(void) { int x = 0; return 1 / x; }";
  check_same_error "modulo by zero" ~expect:"modulo by zero"
    "int main(void) { int x = 0; return 1 % x; }";
  check_same_error "null deref" ~expect:"null pointer dereference"
    "int main(void) { int *p = 0; return *p; }";
  check_same_error "undefined function"
    ~expect:"call to undefined function ghost"
    "int ghost(int);\nint main(void) { return ghost(1); }"

let test_fuel_limit () =
  (* Fuel exhaustion is no longer a fatal [Runtime_error]: both back
     ends raise [Budget_exhausted (Fuel, outcome)] carrying the partial
     profile accumulated so far, and those partials are bit-identical
     (the per-block decrement order is the same). *)
  let c = compile "int main(void) { while (1) { } return 0; }" in
  let partial backend =
    match run_with backend ~fuel:1000 c with
    | _ -> Alcotest.fail "expected fuel exhaustion"
    | exception Eval.Budget_exhausted (Eval.Fuel, o) ->
      (o.Eval.stdout_text, Profile.save o.Eval.profile)
  in
  let t_out, t_prof = partial Pipeline.Tree in
  let k_out, k_prof = partial Pipeline.Compiled in
  Alcotest.(check string) "partial stdout identical" t_out k_out;
  Alcotest.(check string) "partial profile bits identical" t_prof k_prof;
  Alcotest.(check bool) "partial profile is non-empty" true
    (String.length t_prof > 0);
  (* A program that finishes exactly within its budget behaves the same
     under both back ends. *)
  let c = compile "int main(void) { int i; for (i = 0; i < 10; i++) { } return i; }" in
  check_identical "tight fuel" ~fuel:100 c

let test_wall_clock_limit () =
  (* An already-expired deadline stops the runaway loop at the first
     clock check — a fixed number of blocks in — so the partial profiles
     are still bit-identical across back ends. *)
  let c = compile "int main(void) { while (1) { } return 0; }" in
  let partial backend =
    match run_with backend ~deadline_s:0.0 c with
    | _ -> Alcotest.fail "expected wall-clock exhaustion"
    | exception Eval.Budget_exhausted (Eval.Wall_clock, o) ->
      Profile.save o.Eval.profile
  in
  Alcotest.(check string) "partial profile bits identical"
    (partial Pipeline.Tree) (partial Pipeline.Compiled)

(* ------------------------------------------------------------------ *)
(* Shared-state memos on the compiled record. *)

let test_memoization () =
  let c = compile "int f(void) { return 1; } int main(void) { return f(); }" in
  Alcotest.(check bool)
    "closure_exe memoized" true
    (Pipeline.closure_exe c == Pipeline.closure_exe c);
  let fn = List.hd c.Pipeline.prog.Cfg.prog_fns in
  Alcotest.(check bool)
    "usage_of memoized" true
    (Pipeline.usage_of c fn == Pipeline.usage_of c fn)

(* ------------------------------------------------------------------ *)
(* qcheck: generated programs agree under both back ends. The generator
   ([Corpus.Qgen], promoted from this file) leans into the
   pre-resolution surface: array indexing, pointer arguments, helper
   calls (profiled call sites), doubles, globals, string output, switch
   and every loop form — with all divisions guarded so no generated
   program faults. *)

let gen_program = Corpus.Qgen.gen_program

(* Generated loops may diverge ([while (x > 0) { x--; x++; }]); a small
   fuel budget turns those into a [Budget_exhausted] stop whose partial
   observables must also be identical across back ends. *)
let prop_backends_identical =
  QCheck.Test.make
    ~name:"compiled back end is observationally identical to the tree walker"
    ~count:150 gen_program (fun src ->
      let c = compile src in
      let obs backend =
        match run_with backend ~fuel:200_000 c with
        | o ->
          Ok (o.Eval.exit_code, o.Eval.stdout_text, Profile.save o.Eval.profile)
        | exception Value.Runtime_error m -> Error m
        | exception Eval.Budget_exhausted (stop, o) ->
          Error
            (Printf.sprintf "budget:%s:%s:%s"
               (Eval.budget_stop_to_string stop)
               o.Eval.stdout_text
               (Profile.save o.Eval.profile))
      in
      obs Pipeline.Tree = obs Pipeline.Compiled)

let suite =
  [ Alcotest.test_case "suite-wide profile bit-identity" `Slow
      test_suite_differential;
    Alcotest.test_case "argv and stdin" `Quick test_argv_and_stdin;
    Alcotest.test_case "identical diagnostics" `Quick test_diagnostics;
    Alcotest.test_case "fuel limit" `Quick test_fuel_limit;
    Alcotest.test_case "wall-clock limit" `Quick test_wall_clock_limit;
    Alcotest.test_case "memoized shared state" `Quick test_memoization;
    QCheck_alcotest.to_alcotest prop_backends_identical ]
