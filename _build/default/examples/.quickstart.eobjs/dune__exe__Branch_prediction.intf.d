examples/branch_prediction.mli:
