test/test_missrate.ml: Alcotest Cfg_ir Core List
