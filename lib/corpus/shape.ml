(* Workload classes and size knobs for shaped-program generation.

   The four classes mirror the personality axes the paper isolates with
   its hand-written mini programs: alvinn_mini's numeric loop nests,
   the branchy scalar codes the heuristics were fit on, gs_mini's
   function-pointer dispatch, and the recursive/backtracking programs
   that stress the interprocedural estimators.  A corpus row is always
   (class, size, seed, index) — nothing else feeds the generator. *)

type workload_class =
  | Loop_nest      (* nested bounded counting loops over double arrays *)
  | Branchy        (* loop-free classifier chains: if/else, switch, rare error calls *)
  | Pointer_table  (* bytecode interpreter: fetch loop + function-pointer dispatch *)
  | Recursive      (* depth-bounded mutual recursion + backtracking search *)

let all_classes = [ Loop_nest; Branchy; Pointer_table; Recursive ]

let class_to_string = function
  | Loop_nest -> "loop_nest"
  | Branchy -> "branchy"
  | Pointer_table -> "pointer_table"
  | Recursive -> "recursive"

let class_of_string = function
  | "loop_nest" -> Some Loop_nest
  | "branchy" -> Some Branchy
  | "pointer_table" -> Some Pointer_table
  | "recursive" -> Some Recursive
  | _ -> None

let class_description = function
  | Loop_nest -> "nested numeric loops over double arrays (alvinn_mini axis)"
  | Branchy -> "loop-free integer classifiers with rare error paths"
  | Pointer_table -> "bytecode fetch loop with function-pointer dispatch (gs_mini axis)"
  | Recursive -> "depth-bounded mutual recursion and backtracking search"

(* Size knobs.  Every knob bounds a *structural* dimension; none of
   them can make a program diverge — termination is by construction
   (counting loops, monotone pc, strictly decreasing recursion depth). *)
type size = {
  s_functions : int;  (* generated functions besides main and fixed helpers *)
  s_stmts : int;      (* statement budget per generated function body *)
  s_loop_depth : int; (* max loop-nest depth / recursion depth scale *)
  s_fanout : int;     (* call-graph fanout: callees reachable per function *)
}

let small = { s_functions = 3; s_stmts = 6; s_loop_depth = 2; s_fanout = 2 }
let medium = { s_functions = 5; s_stmts = 10; s_loop_depth = 3; s_fanout = 3 }
let large = { s_functions = 8; s_stmts = 14; s_loop_depth = 4; s_fanout = 4 }

let size_presets = [ ("small", small); ("medium", medium); ("large", large) ]

let size_of_string name = List.assoc_opt name size_presets

let size_to_string s =
  match List.find_opt (fun (_, v) -> v = s) size_presets with
  | Some (name, _) -> name
  | None ->
    Printf.sprintf "custom(f=%d,s=%d,d=%d,w=%d)" s.s_functions s.s_stmts
      s.s_loop_depth s.s_fanout
