(* Branch prediction walkthrough: show which heuristic fires on each
   branch of a function and compare against measured outcomes.

     dune exec examples/branch_prediction.exe *)

module Pipeline = Core.Pipeline
module Branch_predictor = Core.Branch_predictor
module Cfg = Cfg_ir.Cfg
module Profile = Cinterp.Profile
module Pretty = Cfront.Pretty

let source = {|
int process(int *items, int n, int *out) {
  int i, written = 0, errors = 0;
  for (i = 0; i < n; i++) {
    if (items == NULL) {                 /* pointer heuristic */
      errors++;
      continue;
    }
    if (items[i] < 0) {                  /* opcode heuristic: < 0 */
      errors++;
      continue;
    }
    if (items[i] > 50 && items[i] % 2 == 0 && i % 3 != 0) {  /* multi-AND */
      out[written] = items[i];
      written++;                          /* store heuristic territory */
    }
  }
  if (errors > n / 2) abort();           /* error-call heuristic */
  return written;
}

int main(void) {
  int data[200];
  int sink[200];
  int i;
  for (i = 0; i < 200; i++) data[i] = (i * 13) % 120 - 10;
  printf("%d\n", process(data, 200, sink));
  return 0;
}
|}

let () =
  let c = Pipeline.compile ~name:"branches" source in
  let tc = c.Pipeline.tc in
  let fn = Option.get (Cfg.find_fn c.Pipeline.prog "process") in
  let usage =
    Cfront.Usage.of_fun tc fn.Cfg.fn_def
  in
  let outcome = Pipeline.run_once c { Pipeline.argv = []; input = "" } in
  let counters =
    Profile.fn_counters outcome.Cinterp.Eval.profile "process"
  in
  Printf.printf "%-45s %-10s %-10s %8s %8s %5s\n" "condition" "prediction"
    "heuristic" "taken" "not" "hit?";
  List.iter
    (fun (bid, (br : Cfg.branch)) ->
      let prediction, reason = Branch_predictor.predict tc usage br in
      let taken = counters.Profile.branch_taken.(bid) in
      let not_taken = counters.Profile.branch_not_taken.(bid) in
      let majority =
        if taken >= not_taken then Branch_predictor.Taken
        else Branch_predictor.NotTaken
      in
      Printf.printf "%-45s %-10s %-10s %8.0f %8.0f %5s\n"
        (Pretty.expr_to_string br.Cfg.br_cond)
        (match prediction with
         | Branch_predictor.Taken -> "taken"
         | Branch_predictor.NotTaken -> "not-taken")
        (Branch_predictor.reason_to_string reason)
        taken not_taken
        (if taken +. not_taken = 0.0 then "-"
         else if majority = prediction then "yes"
         else "NO")
    )
    (Cfg.branches fn);
  (* overall miss rate *)
  let smart = Core.Missrate.smart_predictor c.Pipeline.prog in
  Printf.printf "\ndynamic miss rate: %.1f%%\n"
    (100.0 *. Core.Missrate.rate c.Pipeline.prog outcome.Cinterp.Eval.profile smart)
