lib/cinterp/value.ml: Printf
