test/test_preproc.ml: Alcotest Cfront List Preproc String
