(* A minimal JSON validity checker shared by the observability tests
   (promoted out of test_trace.ml once the run-record tests needed it
   too). This is deliberately *not* Obs.Json: the production documents
   are written by one hand-rolled printer and read back by Obs.Json's
   parser, so the tests want an independently written syntax check that
   cannot share a bug with either side. It validates strict JSON and
   returns nothing — structural assertions belong to the caller. *)

exception Bad_json of string

let parse_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal lit =
    String.iter expect lit
  in
  let string_body () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let start = !pos in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !pos = start then fail "expected digits"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          string_body ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
      end
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"
