(* Intra-procedural estimator tests: the AST walk (loop and smart modes,
   loop nesting, switch weighting) and the Markov model (paper values,
   consistency with measured profiles on loop-free code). *)

open Cfront
module Cfg = Cfg_ir.Cfg
module AE = Core.Ast_estimator
module MI = Core.Markov_intra
module Pipeline = Core.Pipeline

let compile src =
  let tu = Parser.parse_string ~file:"t.c" src in
  let tc = Typecheck.check tu in
  (tc, Cfg_ir.Build.build tc)

let fn_of prog name = Option.get (Cfg.find_fn prog name)

(* The frequency of the block whose first statement matches the AST
   statement printing as [head]. *)
let freq_of_head tc fn mode head =
  let freqs = AE.block_freqs tc fn mode in
  let found = ref None in
  Array.iteri
    (fun i (b : Cfg.block) ->
      match b.Cfg.b_src with
      | Some _ ->
        let label =
          match b.Cfg.b_instrs with
          | Cfg.Iexpr e :: _ -> Pretty.expr_to_string e
          | _ -> ""
        in
        if label = head && !found = None then found := Some freqs.(i)
      | None -> ())
    fn.Cfg.fn_blocks;
  match !found with
  | Some f -> f
  | None -> Alcotest.failf "no block starting with %s" head

let strchr_src =
  {|
char *f(char *str, int c) {
  while (*str) {
    if (*str == c) return str;
    str++;
  }
  return NULL;
}
|}

let test_strchr_smart_values () =
  let tc, prog = compile strchr_src in
  let fn = fn_of prog "f" in
  let freqs = AE.block_freqs tc fn AE.Smart in
  (* paper figure 3: while 5, if 4, return str 0.8, str++ 4, return NULL 1 *)
  let sorted = Array.copy freqs in
  Array.sort compare sorted;
  Alcotest.(check (list (float 1e-9)))
    "multiset of block frequencies"
    [ 0.8; 1.0; 4.0; 4.0; 5.0 ]
    (Array.to_list sorted)

let test_strchr_markov_values () =
  let tc, prog = compile strchr_src in
  let fn = fn_of prog "f" in
  let freqs = MI.block_freqs tc fn in
  let sorted = Array.copy freqs in
  Array.sort compare sorted;
  (* paper figure 7 (entry merged into while header): 2.78 2.22 1.78 .56 .44 *)
  List.iter2
    (fun expected got ->
      Alcotest.(check (float 0.01)) "markov value" expected got)
    [ 0.444; 0.555; 1.777; 2.222; 2.777 ]
    (Array.to_list sorted)

let test_loop_vs_smart () =
  (* loop mode splits the if 50/50; smart predicts the NULL test false *)
  let src =
    "int f(int *p, int n) { if (p == NULL) return -1; return n; }"
  in
  let tc, prog = compile src in
  let fn = fn_of prog "f" in
  let loop = AE.block_freqs tc fn AE.Loop in
  let smart = AE.block_freqs tc fn AE.Smart in
  let sl = Array.copy loop and ss = Array.copy smart in
  Array.sort compare sl;
  Array.sort compare ss;
  (* blocks: entry 1.0, then-arm, and the fall-through return (which the
     AST model leaves at the parent frequency 1.0) *)
  Alcotest.(check (list (float 1e-9))) "loop 50/50" [ 0.5; 1.0; 1.0 ]
    (Array.to_list sl);
  Alcotest.(check (list (float 1e-9))) "smart 80/20" [ 0.2; 1.0; 1.0 ]
    (Array.to_list ss)

let test_nested_loops_multiply () =
  let src =
    "int f(int n) { int i, j, s = 0;\n\
     for (i = 0; i < n; i++) { for (j = 0; j < n; j++) { s += i * j; } }\n\
     return s; }"
  in
  let tc, prog = compile src in
  let fn = fn_of prog "f" in
  (* the innermost body must run 4 * 4 = 16 per entry *)
  Alcotest.(check (float 1e-9)) "inner body 16x" 16.0
    (freq_of_head tc fn AE.Smart "s += i * j")

let test_do_while_body () =
  let src = "int f(int n) { do { n--; } while (n > 0); return n; }" in
  let tc, prog = compile src in
  let fn = fn_of prog "f" in
  Alcotest.(check (float 1e-9)) "do body runs 5x" 5.0
    (freq_of_head tc fn AE.Smart "n--")

let test_switch_label_weighting () =
  let src =
    {|
int f(int x) {
  int r = 0;
  switch (x) {
  case 1: r = 10; break;
  case 2:
  case 3: r = 20; break;
  default: r = 30; break;
  }
  return r;
}
|}
  in
  let tc, prog = compile src in
  let fn = fn_of prog "f" in
  (* 4 labels: case1 1/4, case2+3 arm 2/4, default 1/4 *)
  Alcotest.(check (float 1e-9)) "single-label arm" 0.25
    (freq_of_head tc fn AE.Smart "r = 10");
  Alcotest.(check (float 1e-9)) "double-label arm" 0.5
    (freq_of_head tc fn AE.Smart "r = 20");
  Alcotest.(check (float 1e-9)) "default arm" 0.25
    (freq_of_head tc fn AE.Smart "r = 30")

let test_ast_ignores_return () =
  (* statements after a guarded return keep the parent frequency *)
  let src =
    "int f(int x) { if (x == 0) return 0; x++; return x; }"
  in
  let tc, prog = compile src in
  let fn = fn_of prog "f" in
  Alcotest.(check (float 1e-9)) "sibling after if unchanged" 1.0
    (freq_of_head tc fn AE.Smart "x++")

let test_markov_sees_return () =
  (* same function: Markov knows x++ only runs when the return is not
     taken, i.e. 0.8 of the time (== predicted false for x == 0) *)
  let src = "int f(int x) { if (x == 0) return 0; x++; return x; }" in
  let tc, prog = compile src in
  let fn = fn_of prog "f" in
  let freqs = MI.block_freqs tc fn in
  let smart = AE.block_freqs tc fn AE.Smart in
  (* find the x++ block *)
  Array.iteri
    (fun i (b : Cfg.block) ->
      match b.Cfg.b_instrs with
      | Cfg.Iexpr e :: _ when Pretty.expr_to_string e = "x++" ->
        Alcotest.(check (float 1e-9)) "markov x++ 0.8" 0.8 freqs.(i);
        Alcotest.(check (float 1e-9)) "ast x++ 1.0" 1.0 smart.(i)
      | _ -> ())
    fn.Cfg.fn_blocks

let test_markov_matches_profile_on_two_sided_if () =
  (* On loop-free code with known branch ratios the Markov estimate is a
     probability; relative ordering must match a profile where the branch
     behaves like its prediction. *)
  let src =
    {|
int f(int *p) { if (p != NULL) return 1; return 0; }
int main(void) {
  int x, n = 0, i;
  for (i = 0; i < 10; i++) n += f(&x);
  n += f(NULL);
  printf("%d", n);
  return 0;
}
|}
  in
  let tc, prog = compile src in
  let fn = fn_of prog "f" in
  let est = MI.block_freqs tc fn in
  let outcome = Cinterp.Eval.run prog in
  let actual = Cinterp.Profile.block_counts outcome.Cinterp.Eval.profile "f" in
  Alcotest.(check (float 1e-6)) "ranking agrees" 1.0
    (Core.Weight_matching.score ~estimate:est ~actual ~cutoff:0.34)

let test_entry_is_one () =
  List.iter
    (fun (p : Suite.Bench_prog.t) ->
      let c = Pipeline.compile ~name:p.Suite.Bench_prog.name p.Suite.Bench_prog.source in
      List.iter
        (fun fn ->
          let smart = Pipeline.intra_provider c Pipeline.Ismart fn.Cfg.fn_name in
          (* the AST estimate of the entry block is >= 1 (entry may be a
             merged loop header) and every frequency is non-negative *)
          Array.iter
            (fun v ->
              if v < 0.0 then
                Alcotest.failf "negative AST frequency in %s" fn.Cfg.fn_name)
            smart;
          let markov = Pipeline.intra_provider c Pipeline.Imarkov fn.Cfg.fn_name in
          Array.iter
            (fun v ->
              if Float.is_nan v || v < -1e-9 then
                Alcotest.failf "bad markov frequency in %s.%s"
                  p.Suite.Bench_prog.name fn.Cfg.fn_name)
            markov)
        c.Pipeline.prog.Cfg.prog_fns)
    Suite.Registry.all

(* qcheck: Markov intra solutions on random structured programs are
   non-negative everywhere, and the entry block sits at exactly the one
   external entry when nothing loops back into it (when the entry is
   also a loop header it accumulates the back-edge flow on top). *)
let gen_markov_program : string QCheck.arbitrary =
  let open QCheck.Gen in
  let rec stmt depth =
    if depth <= 0 then oneofl [ "x++;"; "y += x;"; "x = y - 1;"; "return x;" ]
    else
      frequency
        [ (3, oneofl [ "x++;"; "y = y + x;"; "x = y % 7;" ]);
          (2, map2 (Printf.sprintf "if (x > %d) { %s }") (int_bound 9)
                 (stmt (depth - 1)));
          (1, map2 (Printf.sprintf "if (y < %d) { %s } else { y++; }")
                 (int_bound 9) (stmt (depth - 1)));
          (1, map (Printf.sprintf "while (x > 0) { x--; %s }")
                 (stmt (depth - 1)));
          (1, map (Printf.sprintf "do { y--; %s } while (y > 0);")
                 (stmt (depth - 1)));
          (1, map (Printf.sprintf "for (x = 0; x < 3; x++) { %s }")
                 (stmt (depth - 1)));
          (1, map
                 (Printf.sprintf
                    "switch (x & 3) { case 0: %s break; case 1: y++; default: y--; }")
                 (stmt (depth - 1))) ]
  in
  let body =
    list_size (int_range 1 8) (stmt 3) >|= fun stmts ->
    Printf.sprintf
      "int f(int x) { int y = 0; %s return x + y; }\n\
       int main(void) { return f(3); }"
      (String.concat " " stmts)
  in
  QCheck.make body ~print:(fun s -> s)

let prop_markov_non_negative =
  QCheck.Test.make
    ~name:"markov intra: non-negative, entry pinned at one external entry"
    ~count:150 gen_markov_program (fun src ->
      let tc, prog = compile src in
      List.for_all
        (fun (fn : Cfg.fn) ->
          let freqs = MI.block_freqs tc fn in
          let entry = fn.Cfg.fn_entry in
          let entry_has_preds =
            Array.exists
              (fun (b : Cfg.block) ->
                List.mem entry (Cfg.successors b.Cfg.b_term))
              fn.Cfg.fn_blocks
          in
          Array.for_all (fun v -> v >= -1e-9) freqs
          && freqs.(entry) >= 1.0 -. 1e-6
          && (entry_has_preds || abs_float (freqs.(entry) -. 1.0) < 1e-9))
        prog.Cfg_ir.Cfg.prog_fns)

let suite =
  [ Alcotest.test_case "strchr smart values" `Quick test_strchr_smart_values;
    Alcotest.test_case "strchr markov values" `Quick test_strchr_markov_values;
    Alcotest.test_case "loop vs smart" `Quick test_loop_vs_smart;
    Alcotest.test_case "nested loops" `Quick test_nested_loops_multiply;
    Alcotest.test_case "do-while body" `Quick test_do_while_body;
    Alcotest.test_case "switch label weighting" `Quick
      test_switch_label_weighting;
    Alcotest.test_case "AST ignores return" `Quick test_ast_ignores_return;
    Alcotest.test_case "markov sees return" `Quick test_markov_sees_return;
    Alcotest.test_case "markov matches profile" `Quick
      test_markov_matches_profile_on_two_sided_if;
    Alcotest.test_case "sane frequencies on the suite" `Slow
      test_entry_is_one;
    QCheck_alcotest.to_alcotest prop_markov_non_negative ]
