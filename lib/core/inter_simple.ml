(* The simple function-invocation estimators (paper section 4.3).

   All four combine per-function intra-procedural block frequencies
   (normalized to one entry) with the static call graph, without solving
   a global flow problem:

   - [Call_site]: a function's invocation count is the sum of the basic
     block counts of its call sites.
   - [Direct]: [Call_site], with directly-recursive functions multiplied
     by the standard factor 5.
   - [All_rec]: functions involved in *any* recursion multiplied by 5.
   - [All_rec2]: use the [All_rec] counts to scale callers' block counts,
     then reapply the algorithm.

   Indirect call-site counts are summed and divided among address-taken
   functions in proportion to their static address-of counts. *)

module Cfg = Cfg_ir.Cfg
module Callgraph = Cfg_ir.Callgraph

type kind = Call_site | Direct | All_rec | All_rec2

let kind_to_string = function
  | Call_site -> "call_site"
  | Direct -> "direct"
  | All_rec -> "all_rec"
  | All_rec2 -> "all_rec2"

let all_kinds = [ Call_site; Direct; All_rec; All_rec2 ]

(* One accumulation pass: every call site contributes its local block
   frequency scaled by [scale caller]. *)
let accumulate (g : Callgraph.t) ~(intra : string -> float array)
    ~(scale : string -> float) : float array =
  let n = Callgraph.n_nodes g in
  let inv = Array.make n 0.0 in
  let site_weight (cs : Cfg.call_site) =
    scale cs.Cfg.cs_fun *. (intra cs.Cfg.cs_fun).(cs.Cfg.cs_block)
  in
  (* direct arcs *)
  Hashtbl.iter
    (fun (_, callee) sites ->
      List.iter
        (fun cs -> inv.(callee) <- inv.(callee) +. site_weight cs)
        sites)
    g.Callgraph.direct_arcs;
  (* indirect pool, apportioned by the address-taken census *)
  let pool =
    Hashtbl.fold
      (fun _ sites acc ->
        List.fold_left (fun acc cs -> acc +. site_weight cs) acc sites)
      g.Callgraph.indirect_by_caller 0.0
  in
  let total_addr = float_of_int (Callgraph.total_address_taken g) in
  if pool > 0.0 && total_addr > 0.0 then
    Hashtbl.iter
      (fun name count ->
        match Callgraph.node_of_name g name with
        | Some i ->
          inv.(i) <- inv.(i) +. (pool *. float_of_int count /. total_addr)
        | None -> ())
      g.Callgraph.address_taken;
  (* the external invocation of main *)
  Option.iter (fun m -> inv.(m) <- inv.(m) +. 1.0) g.Callgraph.main_index;
  inv

let apply_recursion_multiplier (g : Callgraph.t) (inv : float array)
    ~(recursive : int -> bool) : unit =
  for i = 0 to Array.length inv - 1 do
    if recursive i then inv.(i) <- inv.(i) *. Loop_model.recursion_multiplier ()
  done;
  ignore g

(* Estimated invocation counts under the given model, in call-graph node
   order. *)
let estimate (g : Callgraph.t) ~(intra : string -> float array)
    (kind : kind) : (string * float) list =
  let ones _ = 1.0 in
  let in_rec = lazy (Callgraph.in_recursion g) in
  let base = accumulate g ~intra ~scale:ones in
  let inv =
    match kind with
    | Call_site -> base
    | Direct ->
      apply_recursion_multiplier g base ~recursive:(fun i ->
          Callgraph.directly_recursive g i);
      base
    | All_rec ->
      apply_recursion_multiplier g base ~recursive:(fun i ->
          (Lazy.force in_rec).(i));
      base
    | All_rec2 ->
      (* first round: all_rec *)
      apply_recursion_multiplier g base ~recursive:(fun i ->
          (Lazy.force in_rec).(i));
      (* Second round: scale callers by the first-round counts. [base]
         at this point deliberately includes the recursion multiplier —
         the paper says to reapply the algorithm using "the All_rec
         counts", i.e. the multiplied ones — so a recursive caller's
         sites weigh 5x more in round two, and the multiplier applied
         again below compounds on top of that inherited scale. The
         test suite pins this reading on a mutual-recursion example. *)
      let scale name =
        match Callgraph.node_of_name g name with
        | Some i -> base.(i)
        | None -> 1.0
      in
      let second = accumulate g ~intra ~scale in
      apply_recursion_multiplier g second ~recursive:(fun i ->
          (Lazy.force in_rec).(i));
      second
  in
  Array.to_list (Array.mapi (fun i v -> (g.Callgraph.names.(i), v)) inv)
