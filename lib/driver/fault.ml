(* The driver's fault-tolerance layer: a typed taxonomy over the raw
   [Obs.Faultlog] record store, the capture combinator every degradable
   stage runs under, the process-wide strict/degrade policy, and the
   deterministic summary renderings the CLI and the metrics document
   emit.

   Layering: the *recording* half ([Obs.Faultlog]) and the *injection*
   half ([Obs.Inject]) live at the dependency-free bottom of the tree so
   the Markov solvers and the interpreters can use them; this module is
   the driver-facing policy on top. *)

(* ------------------------------------------------------------------ *)
(* Taxonomy. *)

type stage =
  | Compile      (* front end: preprocess/parse/typecheck/CFG *)
  | Profile      (* interpreting one (program, input) pair *)
  | Solve        (* a Markov linear-system solve *)
  | Estimate     (* building an estimator table *)
  | Experiment   (* rendering one table/figure *)
  | Worker       (* a Parallel pool task died outside any inner capture *)
  | Persist      (* the durable store: journal append, snapshot, restore *)

let stage_to_string = function
  | Compile -> "compile"
  | Profile -> "profile"
  | Solve -> "solve"
  | Estimate -> "estimate"
  | Experiment -> "experiment"
  | Worker -> "worker"
  | Persist -> "persist"

let stage_of_string = function
  | "compile" -> Some Compile
  | "profile" -> Some Profile
  | "solve" -> Some Solve
  | "estimate" -> Some Estimate
  | "experiment" -> Some Experiment
  | "worker" -> Some Worker
  | "persist" -> Some Persist
  | _ -> None

type t = {
  f_stage : stage;
  f_subject : string;   (* program / function / experiment id *)
  f_detail : string;    (* free-form context, e.g. "run 2" *)
  f_exn : string;       (* printed exception; "" for non-exception faults *)
  f_backtrace : string; (* backtrace text; "" when not captured *)
  f_recovery : string;  (* what the system did instead of crashing *)
}

exception Degraded of t

let () =
  Printexc.register_printer (function
    | Degraded f ->
      Some
        (Printf.sprintf "Driver.Fault.Degraded(%s, %s: %s)"
           (stage_to_string f.f_stage) f.f_subject f.f_exn)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Policy: degrade (default) or fail fast ([--strict]). *)

let strict_flag = Atomic.make false
let set_strict b = Atomic.set strict_flag b
let strict () = Atomic.get strict_flag

(* ------------------------------------------------------------------ *)
(* The injection registry: every named point the pipeline exposes, in
   pipeline order. [--chaos SEED] arms them all at once; tests arm one
   at a time. *)

let injection_points =
  [ "compile";       (* Context: the per-program compile stage *)
    "profile";       (* Context: one (program, run) interpretation *)
    "profile.fuel";  (* Context: shrink the run's fuel budget *)
    "solve.intra";   (* Markov_intra: every linear solve reports singular *)
    "solve.inter";   (* Markov_inter: every global/damped solve fails *)
    "estimate";      (* Pipeline: building an estimator table *)
    "worker";        (* Parallel: a pool task dies at its boundary *)
    "persist.append";   (* Persist: one journal append fails *)
    "persist.snapshot"; (* Persist: a snapshot write fails mid-flight *)
    "serve.worker-kill" (* Supervise: a serve worker process dies (SIGKILL) *)
  ]

let register_points () = List.iter Obs.Inject.register injection_points
let () = register_points ()

let arm_chaos ~seed ?rate () =
  register_points ();
  Obs.Inject.arm_chaos ~seed ?rate ()

(* ------------------------------------------------------------------ *)
(* Recording: typed records pass through the [Obs.Faultlog] store, so
   faults recorded below the driver (solver fallbacks, budget
   exhaustion) and faults captured here share one counter. *)

let record (f : t) : unit =
  Obs.Faultlog.record ~subject:f.f_subject ~detail:f.f_detail
    ~exn_text:f.f_exn ~backtrace:f.f_backtrace
    ~stage:(stage_to_string f.f_stage) f.f_recovery

let of_log (l : Obs.Faultlog.t) : t =
  { f_stage =
      Option.value ~default:Worker (stage_of_string l.Obs.Faultlog.stage);
    f_subject = l.Obs.Faultlog.subject;
    f_detail = l.Obs.Faultlog.detail;
    f_exn = l.Obs.Faultlog.exn_text;
    f_backtrace = l.Obs.Faultlog.backtrace;
    f_recovery = l.Obs.Faultlog.recovery }

let count () = Obs.Faultlog.count ()
let reset () = Obs.Faultlog.reset ()

(* Cross-domain record order depends on scheduling; every consumer
   (summary, JSON, tests) reads this sorted view instead. *)
let sorted () : t list =
  List.map of_log (Obs.Faultlog.all ())
  |> List.sort (fun a b ->
       compare
         (stage_to_string a.f_stage, a.f_subject, a.f_detail, a.f_exn)
         (stage_to_string b.f_stage, b.f_subject, b.f_detail, b.f_exn))

(* ------------------------------------------------------------------ *)
(* Capture. *)

(* Turn a caught exception into a recorded fault — or re-raise it with
   its original backtrace when the process is strict. *)
let absorb ~(stage : stage) ~(subject : string) ?(detail = "")
    ~(recovery : string) (e : exn) (bt : Printexc.raw_backtrace) : t =
  if strict () then Printexc.raise_with_backtrace e bt;
  let f =
    { f_stage = stage; f_subject = subject; f_detail = detail;
      f_exn = Printexc.to_string e;
      f_backtrace = Printexc.raw_backtrace_to_string bt;
      f_recovery = recovery }
  in
  record f;
  Obs.Probe.count ("fault." ^ stage_to_string stage);
  f

let capture ~(stage : stage) ~(subject : string) ?detail
    ~(recovery : string) (f : unit -> 'a) : ('a, t) result =
  match f () with
  | v -> Ok v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Error (absorb ~stage ~subject ?detail ~recovery e bt)

(* ------------------------------------------------------------------ *)
(* Reporting. *)

(* 0 = healthy; 3 = the run completed but at least one stage degraded.
   (1/2 stay free for usage errors and crashes, 124/125 for cmdliner.) *)
let degraded_exit_code = 3
let exit_code () = if count () > 0 then degraded_exit_code else 0

let summary () : string =
  match sorted () with
  | [] -> ""
  | faults ->
    let buf = Buffer.create 256 in
    Printf.bprintf buf "fault summary: %d fault(s), run degraded\n"
      (List.length faults);
    List.iter
      (fun f ->
        Printf.bprintf buf "  [%-10s] %-16s %s-> %s%s\n"
          (stage_to_string f.f_stage)
          f.f_subject
          (if f.f_detail = "" then "" else f.f_detail ^ " ")
          f.f_recovery
          (if f.f_exn = "" then "" else " (" ^ f.f_exn ^ ")"))
      faults;
    Buffer.contents buf
