(* Closure-compiled back end for the profiling interpreter.

   [Eval] walks the typed AST for every executed instruction, re-querying
   the typechecker's side tables ([Typecheck.type_of], resolutions), the
   struct registry ([Ctypes.size_of], field offsets) and the call-site
   hashtable on each visit. Profiling is this reproduction's substitute
   for the paper's gcc instrumentation runs, so that walk dominates suite
   wall time.

   This module lowers each CFG block once into OCaml closures with
   everything resolvable at compile time pre-resolved:

   - expression types, element sizes and field offsets are baked into the
     closures (no side-table lookups at run time);
   - locals are addressed by pre-computed slot index, with the
     aggregate-vs-scalar load decision made once;
   - globals are addressed by a dense index into a per-run pointer array
     instead of a name hashtable;
   - string literals get a per-literal cache slot (still allocated lazily,
     in first-execution order, so the block store evolves exactly as under
     [Eval]);
   - direct call targets and builtin dispatch are looked up ahead of time,
     and each call site carries its profile counter index;
   - branch and switch terminators are specialized, so the profiling hot
     loop is closure application plus counter bumps.

   The contract with [Eval] is strict: identical evaluation order,
   identical diagnostics (the [Value.Runtime_error] messages are the
   same), identical memory-block allocation order (block ids are
   observable through pointer comparisons), and therefore bit-identical
   [Profile.t] counters. [test/test_compile.ml] enforces this
   differentially over the whole suite. *)

module Ast = Cfront.Ast
module Cfg = Cfg_ir.Cfg
module Ctypes = Cfront.Ctypes
module Typecheck = Cfront.Typecheck

exception Error = Value.Runtime_error

(* ------------------------------------------------------------------ *)
(* Per-run state. Everything here is created by [run]; the compiled
   closures are shared across runs (and domains) and never mutated. *)

type state = {
  mem : Memory.t;
  bctx : Builtins.ctx;
  globals : Value.ptr array;            (* by [global_order] position *)
  string_cache : Value.ptr option array;(* by literal index: fast path *)
  strings : (string, Value.ptr) Hashtbl.t;
      (* content-keyed intern table, shared with argv strings so literal
         and argv interning interleave exactly as under [Eval] *)
  fcounters : Profile.fn_counters array;(* by [cfn.c_index] *)
  profile : Profile.t;
  mutable fuel : int;
  deadline : float; (* absolute gettimeofday seconds; [infinity] = none *)
  mutable clock_tick : int; (* blocks until the next wall-clock read *)
}

type frame = { locals : Value.ptr array }

type ev = state -> frame -> Value.value   (* compiled expression *)
type lv = state -> frame -> Value.ptr     (* compiled lvalue *)

(* ------------------------------------------------------------------ *)
(* Compiled program representation. *)

type cterm =
  | Cjump of int
  | Cbranch of ev * int * int
  | Cswitch of ev * (int, int) Hashtbl.t * int
  | Creturn of ev

type cblock = {
  cb_instrs : (state -> frame -> unit) array;
  cb_cost : int;            (* 1 + number of instructions (fuel units) *)
  cb_costf : float;         (* same, as the work-counter increment *)
  cb_term : cterm;
}

type cfn = {
  c_name : string;
  c_index : int;                        (* position in [prog_fns] *)
  c_entry : int;
  mutable c_blocks : cblock array;      (* patched in phase 2 *)
  c_local_sizes : int array;
  c_local_tags : string array;
  c_bind_params : (state -> frame -> Value.value -> unit) array;
  c_coerce_ret : Value.value -> Value.value;
}

type prog = {
  p_src : Cfg.program;
  p_fns : (string, cfn) Hashtbl.t;
  p_fn_list : cfn array;                (* [prog_fns] order *)
  p_main : cfn option;
  p_main_arity : int;                   (* 0, 2, or -1 (unsupported) *)
  p_global_sizes : int array;
  p_global_tags : string array;
  p_global_inits : (int * (state -> frame -> Value.ptr -> unit)) list;
      (* (global index, initializer writer), declaration order *)
  p_n_strings : int;
}

(* ------------------------------------------------------------------ *)
(* Runtime helpers shared by the compiled closures. *)

let intern_rt (st : state) (s : string) : Value.ptr =
  match Hashtbl.find_opt st.strings s with
  | Some p -> p
  | None ->
    let p = Memory.alloc st.mem (String.length s + 1) ~tag:"string literal" in
    Memory.write_cstring st.mem p s;
    Hashtbl.replace st.strings s p;
    p

let truthy = Value.to_bool

(* The profiling hot loop: closure application plus counter bumps. *)
let rec exec_blocks (st : state) (fr : frame) (cf : cfn)
    (counters : Profile.fn_counters) (start : int) : Value.value =
  let blocks = cf.c_blocks in
  let bc = counters.Profile.block_counts in
  let bt = counters.Profile.branch_taken in
  let bnt = counters.Profile.branch_not_taken in
  let profile = st.profile in
  let rec run bid : Value.value =
    if st.fuel <= 0 then raise Eval.Out_of_fuel;
    st.clock_tick <- st.clock_tick - 1;
    if st.clock_tick <= 0 then begin
      st.clock_tick <- Eval.clock_check_interval;
      if Unix.gettimeofday () >= st.deadline then
        raise Eval.Out_of_wall_clock
    end;
    let blk = blocks.(bid) in
    bc.(bid) <- bc.(bid) +. 1.0;
    st.fuel <- st.fuel - blk.cb_cost;
    profile.Profile.work <- profile.Profile.work +. blk.cb_costf;
    let instrs = blk.cb_instrs in
    for i = 0 to Array.length instrs - 1 do
      instrs.(i) st fr
    done;
    match blk.cb_term with
    | Cjump next -> run next
    | Cbranch (cond, t, f) ->
      if truthy (cond st fr) then begin
        bt.(bid) <- bt.(bid) +. 1.0;
        run t
      end
      else begin
        bnt.(bid) <- bnt.(bid) +. 1.0;
        run f
      end
    | Cswitch (scrutinee, table, default) ->
      let v = Value.int_of (scrutinee st fr) in
      run
        (match Hashtbl.find_opt table v with
        | Some t -> t
        | None -> default)
    | Creturn e -> e st fr
  in
  run start

(* Mirror of [Eval.exec_fn]: allocate locals (same order, same tags),
   bind parameters, run the blocks, kill the locals, coerce the result. *)
and call_fn (st : state) (cf : cfn) (args : Value.value list) : Value.value =
  let n = Array.length cf.c_local_sizes in
  let locals = Array.make n { Value.blk = -1; off = 0 } in
  for i = 0 to n - 1 do
    locals.(i) <-
      Memory.alloc st.mem cf.c_local_sizes.(i) ~tag:cf.c_local_tags.(i)
  done;
  let fr = { locals } in
  List.iteri (fun i v -> cf.c_bind_params.(i) st fr v) args;
  let counters = st.fcounters.(cf.c_index) in
  let result = exec_blocks st fr cf counters cf.c_entry in
  Array.iter (fun p -> Memory.kill st.mem p) locals;
  cf.c_coerce_ret result

(* ------------------------------------------------------------------ *)
(* Compile-time environment. *)

type cenv = {
  tc : Typecheck.t;
  reg : Ctypes.registry;
  site_of_expr : (Ast.node_id, int) Hashtbl.t;
  fns : (string, cfn) Hashtbl.t;
  global_index : (string, int) Hashtbl.t;
  string_index : (string, int) Hashtbl.t;
  mutable n_strings : int;
  mutable fn_info : Typecheck.fun_info option; (* function being compiled *)
}

let ty_of (env : cenv) (e : Ast.expr) : Ctypes.ty =
  Typecheck.type_of env.tc e

let size_of (env : cenv) (t : Ctypes.ty) : int =
  try Ctypes.size_of env.reg t
  with Ctypes.Type_error m -> Value.error "%s" m

let pointee (env : cenv) (e : Ast.expr) : Ctypes.ty option =
  match ty_of env e with Ctypes.Tptr t -> Some t | _ -> None

let local_ty (env : cenv) (slot : int) : Ctypes.ty =
  match env.fn_info with
  | Some fi -> fi.Typecheck.fi_locals.(slot).Typecheck.l_ty
  | None -> Value.error "local reference outside a function"

let string_idx (env : cenv) (s : string) : int =
  match Hashtbl.find_opt env.string_index s with
  | Some i -> i
  | None ->
    let i = env.n_strings in
    Hashtbl.replace env.string_index s i;
    env.n_strings <- i + 1;
    i

(* The undecayed type of the object designated by an Index/Field/Arrow
   lvalue (compile-time mirror of [Eval.designated_ty]). *)
let designated_ty (env : cenv) (e : Ast.expr) : Ctypes.ty =
  match e.Ast.enode with
  | Ast.Index (a, i) -> begin
    match (ty_of env a, ty_of env i) with
    | Ctypes.Tptr t, _ -> t
    | _, Ctypes.Tptr t -> t
    | t, _ -> Value.error "indexing %s" (Ctypes.to_string t)
  end
  | Ast.Field (a, fname) -> begin
    match ty_of env a with
    | Ctypes.Tstruct si -> (Ctypes.find_field env.reg si fname).Ctypes.fld_ty
    | t -> Value.error ".%s on %s" fname (Ctypes.to_string t)
  end
  | Ast.Arrow (a, fname) -> begin
    match ty_of env a with
    | Ctypes.Tptr (Ctypes.Tstruct si) ->
      (Ctypes.find_field env.reg si fname).Ctypes.fld_ty
    | t -> Value.error "->%s on %s" fname (Ctypes.to_string t)
  end
  | _ -> ty_of env e

(* ------------------------------------------------------------------ *)
(* Expression compilation. Each function returns a closure; all matches
   on types/resolutions happen here, once. *)

let rec compile_expr (env : cenv) (e : Ast.expr) : ev =
  match e.Ast.enode with
  | Ast.IntLit n ->
    let v = Value.Vint (Value.wrap32 n) in
    fun _ _ -> v
  | Ast.CharLit c ->
    let v = Value.Vint c in
    fun _ _ -> v
  | Ast.FloatLit f ->
    let v = Value.Vfloat f in
    fun _ _ -> v
  | Ast.StringLit s ->
    let idx = string_idx env s in
    fun st _ -> begin
      match st.string_cache.(idx) with
      | Some p -> Value.Vptr p
      | None ->
        let p = intern_rt st s in
        st.string_cache.(idx) <- Some p;
        Value.Vptr p
    end
  | Ast.Ident _ -> compile_ident env e
  | Ast.Unop (op, a) -> compile_unop env op a
  | Ast.Binop (op, a, b) -> compile_binop env op a b
  | Ast.Assign (op, lhs, rhs) -> compile_assign env op lhs rhs
  | Ast.Cond (c, a, b) ->
    let cc = compile_expr env c in
    let ca = compile_expr env a in
    let cb = compile_expr env b in
    fun st fr -> if truthy (cc st fr) then ca st fr else cb st fr
  | Ast.Call (fn, args) -> compile_call env e fn args
  | Ast.Cast (ty, a) -> begin
    let ca = compile_expr env a in
    match ty with
    | Ctypes.Tvoid ->
      fun st fr ->
        ignore (ca st fr);
        Value.Vint 0
    | Ctypes.Tptr _ ->
      fun st fr ->
        let v = ca st fr in
        if Value.is_null v then Value.Vint 0 else v
    | _ -> fun st fr -> Eval.coerce ty (ca st fr)
  end
  | Ast.Index _ | Ast.Field _ | Ast.Arrow _ ->
    let loc = compile_lvalue env e in
    compile_load (designated_ty env e) loc
  | Ast.SizeofT ty ->
    let v = Value.Vint (size_of env ty) in
    fun _ _ -> v
  | Ast.SizeofE a ->
    let v = Value.Vint (size_of env (ty_of env a)) in
    fun _ _ -> v
  | Ast.PreIncr a -> compile_incr_decr env a ~delta:1 ~pre:true
  | Ast.PreDecr a -> compile_incr_decr env a ~delta:(-1) ~pre:true
  | Ast.PostIncr a -> compile_incr_decr env a ~delta:1 ~pre:false
  | Ast.PostDecr a -> compile_incr_decr env a ~delta:(-1) ~pre:false
  | Ast.Comma (a, b) ->
    let ca = compile_expr env a in
    let cb = compile_expr env b in
    fun st fr ->
      ignore (ca st fr);
      cb st fr

(* Load through a pre-resolved declared type: aggregates evaluate to their
   address, scalars to the stored cell. *)
and compile_load (ty : Ctypes.ty) (loc : lv) : ev =
  match ty with
  | Ctypes.Tstruct _ | Ctypes.Tarray _ -> fun st fr -> Value.Vptr (loc st fr)
  | _ -> fun st fr -> Memory.load st.mem (loc st fr)

and compile_ident (env : cenv) (e : Ast.expr) : ev =
  match Typecheck.resolution_of env.tc e with
  | Some (Typecheck.Renum v) ->
    let v = Value.Vint v in
    fun _ _ -> v
  | Some (Typecheck.Rfun name) ->
    let v = Value.Vfun (Value.Fuser name) in
    fun _ _ -> v
  | Some (Typecheck.Rbuiltin name) ->
    let v = Value.Vfun (Value.Fbuiltin name) in
    fun _ _ -> v
  | Some (Typecheck.Rlocal slot) -> begin
    match local_ty env slot with
    | Ctypes.Tstruct _ | Ctypes.Tarray _ ->
      fun _ fr -> Value.Vptr fr.locals.(slot)
    | _ -> fun st fr -> Memory.load st.mem fr.locals.(slot)
  end
  | Some (Typecheck.Rglobal gname) -> begin
    let d = Hashtbl.find env.tc.Typecheck.globals gname in
    match Hashtbl.find_opt env.global_index gname with
    | None -> fun _ _ -> Value.error "global %s has no storage" gname
    | Some gi -> begin
      match d.Ast.d_ty with
      | Ctypes.Tstruct _ | Ctypes.Tarray _ ->
        fun st _ -> Value.Vptr st.globals.(gi)
      | _ -> fun st _ -> Memory.load st.mem st.globals.(gi)
    end
  end
  | None ->
    let msg =
      Printf.sprintf "unresolved identifier at %s"
        (Format.asprintf "%a" Cfront.Token.pp_pos e.Ast.epos)
    in
    fun _ _ -> raise (Error msg)

and compile_lvalue (env : cenv) (e : Ast.expr) : lv =
  match e.Ast.enode with
  | Ast.Ident name -> begin
    match Typecheck.resolution_of env.tc e with
    | Some (Typecheck.Rlocal slot) -> fun _ fr -> fr.locals.(slot)
    | Some (Typecheck.Rglobal gname) -> begin
      match Hashtbl.find_opt env.global_index gname with
      | Some gi -> fun st _ -> st.globals.(gi)
      | None -> fun _ _ -> Value.error "global %s has no storage" gname
    end
    | _ -> fun _ _ -> Value.error "%s is not an object" name
  end
  | Ast.Unop (Ast.Uderef, a) -> compile_expect_ptr env a
  | Ast.Index (a, i) -> begin
    (* Mirror [Eval.eval_lvalue]: when [a] is the pointer, evaluate the
       base from [a] and the index from [i]; otherwise the reversed
       [i[a]] form evaluates the base from [i] first. *)
    match ty_of env a with
    | Ctypes.Tptr t ->
      let base = compile_expect_ptr env a in
      let scale = size_of env t in
      let idx = compile_expr env i in
      fun st fr ->
        let b = base st fr in
        let ix = Value.int_of (idx st fr) in
        Memory.offset b (ix * scale)
    | _ ->
      let base = compile_expect_ptr env i in
      let scale = size_of env (Option.get (pointee env i)) in
      let idx = compile_expr env a in
      fun st fr ->
        let b = base st fr in
        let ix = Value.int_of (idx st fr) in
        Memory.offset b (ix * scale)
  end
  | Ast.Field (a, fname) -> begin
    match ty_of env a with
    | Ctypes.Tstruct si ->
      let off = (Ctypes.find_field env.reg si fname).Ctypes.fld_offset in
      let base = compile_lvalue env a in
      fun st fr -> Memory.offset (base st fr) off
    | t ->
      let msg =
        Printf.sprintf ".%s on %s" fname (Ctypes.to_string t)
      in
      fun _ _ -> raise (Error msg)
  end
  | Ast.Arrow (a, fname) -> begin
    match ty_of env a with
    | Ctypes.Tptr (Ctypes.Tstruct si) ->
      let off = (Ctypes.find_field env.reg si fname).Ctypes.fld_offset in
      let base = compile_expect_ptr env a in
      fun st fr -> Memory.offset (base st fr) off
    | t ->
      let msg =
        Printf.sprintf "->%s on %s" fname (Ctypes.to_string t)
      in
      fun _ _ -> raise (Error msg)
  end
  | _ -> fun _ _ -> Value.error "expression is not an lvalue"

and compile_expect_ptr (env : cenv) (e : Ast.expr) : lv =
  let ce = compile_expr env e in
  fun st fr ->
    match ce st fr with
    | Value.Vptr p -> p
    | Value.Vint 0 -> Value.error "null pointer dereference"
    | v -> Value.error "expected a pointer, got %s" (Value.to_string v)

and compile_unop (env : cenv) (op : Ast.unop) (a : Ast.expr) : ev =
  match op with
  | Ast.Uplus -> compile_expr env a
  | Ast.Uneg ->
    let ca = compile_expr env a in
    fun st fr -> begin
      match ca st fr with
      | Value.Vint n -> Value.Vint (Value.wrap32 (-n))
      | Value.Vfloat f -> Value.Vfloat (-.f)
      | v -> Value.error "cannot negate %s" (Value.to_string v)
    end
  | Ast.Unot ->
    let ca = compile_expr env a in
    fun st fr -> Value.Vint (if truthy (ca st fr) then 0 else 1)
  | Ast.Ubnot ->
    let ca = compile_expr env a in
    fun st fr -> Value.Vint (Value.wrap32 (lnot (Value.int_of (ca st fr))))
  | Ast.Uderef -> begin
    match ty_of env a with
    | Ctypes.Tptr (Ctypes.Tfun _) -> compile_expr env a
    | Ctypes.Tptr t -> begin
      let p = compile_expect_ptr env a in
      match t with
      | Ctypes.Tarray _ | Ctypes.Tstruct _ ->
        fun st fr -> Value.Vptr (p st fr)
      | _ -> fun st fr -> Memory.load st.mem (p st fr)
    end
    | t ->
      let msg = Printf.sprintf "dereferencing %s" (Ctypes.to_string t) in
      fun _ _ -> raise (Error msg)
  end
  | Ast.Uaddr -> begin
    match a.Ast.enode with
    | Ast.Ident _
      when (match Typecheck.resolution_of env.tc a with
           | Some (Typecheck.Rfun _ | Typecheck.Rbuiltin _) -> true
           | _ -> false) ->
      compile_expr env a
    | _ ->
      let loc = compile_lvalue env a in
      fun st fr -> Value.Vptr (loc st fr)
  end

and compile_binop (env : cenv) (op : Ast.binop) (a : Ast.expr) (b : Ast.expr)
    : ev =
  match op with
  | Ast.Bland ->
    let ca = compile_expr env a in
    let cb = compile_expr env b in
    fun st fr ->
      if not (truthy (ca st fr)) then Value.Vint 0
      else Value.Vint (if truthy (cb st fr) then 1 else 0)
  | Ast.Blor ->
    let ca = compile_expr env a in
    let cb = compile_expr env b in
    fun st fr ->
      if truthy (ca st fr) then Value.Vint 1
      else Value.Vint (if truthy (cb st fr) then 1 else 0)
  | _ ->
    let ca = compile_expr env a in
    let cb = compile_expr env b in
    let app = compile_apply_binop env ~ta:(ty_of env a) ~tb:(ty_of env b) op in
    fun st fr ->
      let va = ca st fr in
      let vb = cb st fr in
      app va vb

(* Specialized [Eval.apply_binop]: the type dispatch, element sizes and
   float-context decision happen at compile time. *)
and compile_apply_binop (env : cenv) ~(ta : Ctypes.ty) ~(tb : Ctypes.ty)
    (op : Ast.binop) : Value.value -> Value.value -> Value.value =
  let int_op f va vb =
    Value.Vint (Value.wrap32 (f (Value.int_of va) (Value.int_of vb)))
  in
  let float_ctx = ta = Ctypes.Tdouble || tb = Ctypes.Tdouble in
  let arith fint ffloat =
    if float_ctx then fun va vb ->
      Value.Vfloat (ffloat (Value.float_of va) (Value.float_of vb))
    else int_op fint
  in
  let compare_with lt va vb =
    let result =
      match (va, vb) with
      | Value.Vptr p, Value.Vptr q ->
        if p.Value.blk <> q.Value.blk then
          lt (compare p.Value.blk q.Value.blk) 0
        else lt (compare p.Value.off q.Value.off) 0
      | Value.Vptr _, Value.Vint 0 -> lt 1 0
      | Value.Vint 0, Value.Vptr _ -> lt (-1) 0
      | _ ->
        if float_ctx then
          lt (compare (Value.float_of va) (Value.float_of vb)) 0
        else lt (compare (Value.int_of va) (Value.int_of vb)) 0
    in
    Value.Vint (if result then 1 else 0)
  in
  match op with
  | Ast.Badd -> begin
    match (ta, tb) with
    | Ctypes.Tptr t, _ ->
      let sz = size_of env t in
      fun va vb ->
        let p = Eval.expect_ptr_value va in
        Value.Vptr (Memory.offset p (Value.int_of vb * sz))
    | _, Ctypes.Tptr t ->
      let sz = size_of env t in
      fun va vb ->
        let p = Eval.expect_ptr_value vb in
        Value.Vptr (Memory.offset p (Value.int_of va * sz))
    | _ -> arith ( + ) ( +. )
  end
  | Ast.Bsub -> begin
    match (ta, tb) with
    | Ctypes.Tptr t, Ctypes.Tptr _ ->
      let sz = size_of env t in
      fun va vb -> begin
        match (va, vb) with
        | Value.Vptr p, Value.Vptr q when p.Value.blk = q.Value.blk ->
          Value.Vint ((p.Value.off - q.Value.off) / sz)
        | Value.Vptr _, Value.Vptr _ ->
          Value.error "subtracting pointers into different objects"
        | _ -> Value.error "pointer subtraction on non-pointers"
      end
    | Ctypes.Tptr t, _ ->
      let sz = size_of env t in
      fun va vb ->
        let p = Eval.expect_ptr_value va in
        Value.Vptr (Memory.offset p (-Value.int_of vb * sz))
    | _ -> arith ( - ) ( -. )
  end
  | Ast.Bmul -> arith ( * ) ( *. )
  | Ast.Bdiv ->
    if float_ctx then fun va vb -> begin
      let d = Value.float_of vb in
      if d = 0.0 then Value.error "floating division by zero";
      Value.Vfloat (Value.float_of va /. d)
    end
    else fun va vb -> begin
      let d = Value.int_of vb in
      if d = 0 then Value.error "division by zero";
      Value.Vint (Value.wrap32 (Value.int_of va / d))
    end
  | Ast.Bmod ->
    fun va vb ->
      let d = Value.int_of vb in
      if d = 0 then Value.error "modulo by zero";
      Value.Vint (Value.wrap32 (Value.int_of va mod d))
  | Ast.Bshl -> int_op (fun x y -> x lsl (y land 31))
  | Ast.Bshr -> int_op (fun x y -> x asr (y land 31))
  | Ast.Bband -> int_op ( land )
  | Ast.Bbor -> int_op ( lor )
  | Ast.Bbxor -> int_op ( lxor )
  | Ast.Blt -> compare_with (fun c z -> c < z)
  | Ast.Bgt -> compare_with (fun c z -> c > z)
  | Ast.Ble -> compare_with (fun c z -> c <= z)
  | Ast.Bge -> compare_with (fun c z -> c >= z)
  | Ast.Beq ->
    fun va vb -> Value.Vint (if Value.equal_values va vb then 1 else 0)
  | Ast.Bne ->
    fun va vb -> Value.Vint (if Value.equal_values va vb then 0 else 1)
  | Ast.Bland | Ast.Blor -> assert false (* handled by compile_binop *)

and compile_assign (env : cenv) (op : Ast.assign_op) (lhs : Ast.expr)
    (rhs : Ast.expr) : ev =
  let tl = ty_of env lhs in
  match (op, tl) with
  | Ast.Aplain, Ctypes.Tstruct si ->
    let dst = compile_lvalue env lhs in
    let src = compile_expr env rhs in
    let size = (Ctypes.find env.reg si).Ctypes.str_size in
    fun st fr ->
      let d = dst st fr in
      let s =
        match src st fr with
        | Value.Vptr p -> p
        | v -> Value.error "struct assignment from %s" (Value.to_string v)
      in
      Memory.blit st.mem ~src:s ~dst:d size;
      Value.Vptr d
  | Ast.Aplain, _ ->
    let loc = compile_lvalue env lhs in
    let crhs = compile_expr env rhs in
    fun st fr ->
      let l = loc st fr in
      let v = Eval.coerce tl (crhs st fr) in
      Memory.store st.mem l v;
      v
  | _, _ ->
    let bop = Option.get (Ast.binop_of_assign op) in
    let loc = compile_lvalue env lhs in
    let crhs = compile_expr env rhs in
    let app = compile_apply_binop env ~ta:tl ~tb:(ty_of env rhs) bop in
    fun st fr ->
      let l = loc st fr in
      let old = Memory.load st.mem l in
      let vr = crhs st fr in
      let v = Eval.coerce tl (app old vr) in
      Memory.store st.mem l v;
      v

and compile_incr_decr (env : cenv) (a : Ast.expr) ~(delta : int)
    ~(pre : bool) : ev =
  let loc = compile_lvalue env a in
  let ty = ty_of env a in
  let fresh_of : state -> Value.value -> Value.value =
    match ty with
    | Ctypes.Tptr t ->
      let d = delta * size_of env t in
      fun _ old -> begin
        match old with
        | Value.Vptr p -> Value.Vptr (Memory.offset p d)
        | Value.Vint 0 -> Value.error "arithmetic on a null pointer"
        | _ -> Eval.coerce ty (Value.Vint (Value.int_of old + delta))
      end
    | Ctypes.Tdouble ->
      let d = float_of_int delta in
      fun _ old -> Value.Vfloat (Value.float_of old +. d)
    | _ -> fun _ old -> Eval.coerce ty (Value.Vint (Value.int_of old + delta))
  in
  fun st fr ->
    let l = loc st fr in
    let old = Memory.load st.mem l in
    let fresh = fresh_of st old in
    Memory.store st.mem l fresh;
    if pre then fresh else old

(* Calls: the site counter index, argument passing convention and callee
   dispatch are all resolved at compile time. *)
and compile_call (env : cenv) (e : Ast.expr) (fn_expr : Ast.expr)
    (args : Ast.expr list) : ev =
  let site = Hashtbl.find_opt env.site_of_expr e.Ast.eid in
  let cargs =
    List.map
      (fun (a : Ast.expr) ->
        match ty_of env a with
        | Ctypes.Tstruct _ ->
          let loc = compile_lvalue env a in
          fun st fr -> Value.Vptr (loc st fr)
        | _ -> compile_expr env a)
      args
  in
  let bump : state -> unit =
    match site with
    | Some cs_id ->
      fun st ->
        st.profile.Profile.site_counts.(cs_id) <-
          st.profile.Profile.site_counts.(cs_id) +. 1.0
    | None -> fun _ -> ()
  in
  let direct_resolution =
    match fn_expr.Ast.enode with
    | Ast.Ident _ -> Typecheck.resolution_of env.tc fn_expr
    | _ -> None
  in
  match direct_resolution with
  | Some (Typecheck.Rbuiltin name) ->
    fun st fr ->
      bump st;
      let argv = List.map (fun f -> f st fr) cargs in
      Builtins.call st.bctx name argv
  | Some (Typecheck.Rfun name) -> begin
    match Hashtbl.find_opt env.fns name with
    | Some target ->
      fun st fr ->
        bump st;
        let argv = List.map (fun f -> f st fr) cargs in
        call_fn st target argv
    | None ->
      (* Prototype without definition: [Eval] still evaluates the
         arguments before failing the lookup. *)
      fun st fr ->
        bump st;
        let _argv = List.map (fun f -> f st fr) cargs in
        Value.error "call to undefined function %s" name
  end
  | _ ->
    let callee = compile_expr env fn_expr in
    let fns = env.fns in
    fun st fr -> begin
      bump st;
      let v = callee st fr in
      let argv = List.map (fun f -> f st fr) cargs in
      match v with
      | Value.Vfun (Value.Fbuiltin name) -> Builtins.call st.bctx name argv
      | Value.Vfun (Value.Fuser name) -> begin
        match Hashtbl.find_opt fns name with
        | Some target -> call_fn st target argv
        | None -> Value.error "call to undefined function %s" name
      end
      | v -> Value.error "calling a non-function value %s" (Value.to_string v)
    end

(* Initializer writers (compile-time mirror of [Eval.write_init]). *)
and compile_write_init (env : cenv) (ty : Ctypes.ty) (init : Ast.init) :
    state -> frame -> Value.ptr -> unit =
  match (ty, init) with
  | ( Ctypes.Tarray (Ctypes.Tchar, _),
      Ast.Iexpr { Ast.enode = Ast.StringLit s; _ } ) ->
    fun st _ loc -> Memory.write_cstring st.mem loc s
  | _, Ast.Iexpr e when Ctypes.is_scalar (Ctypes.decay ty) ->
    let ce = compile_expr env e in
    fun st fr loc -> Memory.store st.mem loc (Eval.coerce ty (ce st fr))
  | Ctypes.Tstruct si, Ast.Iexpr e ->
    let ce = compile_expr env e in
    let size = (Ctypes.find env.reg si).Ctypes.str_size in
    fun st fr loc -> begin
      match ce st fr with
      | Value.Vptr src -> Memory.blit st.mem ~src ~dst:loc size
      | v -> Value.error "struct initializer is %s" (Value.to_string v)
    end
  | Ctypes.Tarray (t, _), Ast.Ilist items ->
    let sz = size_of env t in
    let writers =
      List.mapi (fun i item -> (i * sz, compile_write_init env t item)) items
    in
    fun st fr loc ->
      List.iter
        (fun (off, w) -> w st fr (Memory.offset loc off))
        writers
  | Ctypes.Tstruct si, Ast.Ilist items ->
    let flds = Ctypes.fields env.reg si in
    let writers =
      List.mapi
        (fun i item ->
          let fld = List.nth flds i in
          (fld.Ctypes.fld_offset, compile_write_init env fld.Ctypes.fld_ty item))
        items
    in
    fun st fr loc ->
      List.iter
        (fun (off, w) -> w st fr (Memory.offset loc off))
        writers
  | _, Ast.Ilist [ item ] -> compile_write_init env ty item
  | _ ->
    let msg =
      Printf.sprintf "unsupported initializer for %s" (Ctypes.to_string ty)
    in
    fun _ _ _ -> raise (Error msg)

(* ------------------------------------------------------------------ *)
(* Block / function / program compilation. *)

let compile_instr (env : cenv) : Cfg.instr -> state -> frame -> unit =
  function
  | Cfg.Iexpr e ->
    let ce = compile_expr env e in
    fun st fr -> ignore (ce st fr)
  | Cfg.Ilocal_init (slot, d) -> begin
    match d.Ast.d_init with
    | Some init ->
      let w = compile_write_init env d.Ast.d_ty init in
      fun st fr -> w st fr fr.locals.(slot)
    | None -> fun _ _ -> ()
  end

let compile_term (env : cenv) : Cfg.terminator -> cterm = function
  | Cfg.Tjump next -> Cjump next
  | Cfg.Tbranch (br, t, f) -> Cbranch (compile_expr env br.Cfg.br_cond, t, f)
  | Cfg.Tswitch (scrutinee, cases, default) ->
    (* First match wins under [List.assoc_opt]; preserve that. *)
    let table = Hashtbl.create (List.length cases) in
    List.iter
      (fun (v, t) -> if not (Hashtbl.mem table v) then Hashtbl.add table v t)
      cases;
    Cswitch (compile_expr env scrutinee, table, default)
  | Cfg.Treturn (Some e) -> Creturn (compile_expr env e)
  | Cfg.Treturn None -> Creturn (fun _ _ -> Value.Vint 0)

let compile_block (env : cenv) (b : Cfg.block) : cblock =
  let n_instrs = List.length b.Cfg.b_instrs in
  { cb_instrs =
      Array.of_list (List.map (compile_instr env) b.Cfg.b_instrs);
    cb_cost = 1 + n_instrs;
    cb_costf = 1.0 +. float_of_int n_instrs;
    cb_term = compile_term env b.Cfg.b_term }

let bind_param (env : cenv) (li : Typecheck.local_info) (i : int) :
    state -> frame -> Value.value -> unit =
  match li.Typecheck.l_ty with
  | Ctypes.Tstruct si ->
    let size = (Ctypes.find env.reg si).Ctypes.str_size in
    fun st fr v -> begin
      match v with
      | Value.Vptr src -> Memory.blit st.mem ~src ~dst:fr.locals.(i) size
      | v -> Value.error "struct argument is %s" (Value.to_string v)
    end
  | ty -> fun st fr v -> Memory.store st.mem fr.locals.(i) (Eval.coerce ty v)

let compile (src : Cfg.program) : prog =
  let tc = src.Cfg.prog_tc in
  let site_of_expr = Hashtbl.create 64 in
  Array.iter
    (fun cs ->
      Hashtbl.replace site_of_expr cs.Cfg.cs_expr.Ast.eid cs.Cfg.cs_id)
    src.Cfg.prog_sites;
  let env =
    { tc; reg = tc.Typecheck.tunit.Ast.structs; site_of_expr;
      fns = Hashtbl.create 32; global_index = Hashtbl.create 32;
      string_index = Hashtbl.create 64; n_strings = 0; fn_info = None }
  in
  List.iteri
    (fun i name -> Hashtbl.replace env.global_index name i)
    tc.Typecheck.global_order;
  (* Phase 1: create every function's record so direct-call closures can
     capture their targets even across forward/mutual recursion. *)
  let fn_list =
    List.mapi
      (fun i (fn : Cfg.fn) ->
        let fi = fn.Cfg.fn_info in
        let cf =
          { c_name = fn.Cfg.fn_name; c_index = i; c_entry = fn.Cfg.fn_entry;
            c_blocks = [||];
            c_local_sizes =
              Array.map
                (fun (li : Typecheck.local_info) ->
                  size_of env li.Typecheck.l_ty)
                fi.Typecheck.fi_locals;
            c_local_tags =
              Array.map
                (fun (li : Typecheck.local_info) ->
                  fn.Cfg.fn_name ^ "." ^ li.Typecheck.l_name)
                fi.Typecheck.fi_locals;
            c_bind_params =
              Array.mapi
                (fun i li -> bind_param env li i)
                fi.Typecheck.fi_locals;
            c_coerce_ret = Eval.coerce fn.Cfg.fn_def.Ast.f_ret }
        in
        Hashtbl.replace env.fns fn.Cfg.fn_name cf;
        cf)
      src.Cfg.prog_fns
  in
  (* Phase 2: compile bodies against the complete function table. *)
  List.iter2
    (fun (fn : Cfg.fn) cf ->
      env.fn_info <- Some fn.Cfg.fn_info;
      cf.c_blocks <- Array.map (compile_block env) fn.Cfg.fn_blocks)
    src.Cfg.prog_fns fn_list;
  env.fn_info <- None;
  (* Global initializers, compiled in declaration order. *)
  let global_inits =
    List.filter_map
      (fun name ->
        let d = Hashtbl.find tc.Typecheck.globals name in
        match d.Ast.d_init with
        | Some init ->
          Some
            ( Hashtbl.find env.global_index name,
              compile_write_init env d.Ast.d_ty init )
        | None -> None)
      tc.Typecheck.global_order
  in
  let main = Hashtbl.find_opt env.fns "main" in
  let main_arity =
    match Cfg.find_fn src "main" with
    | None -> -1
    | Some fn -> begin
      match fn.Cfg.fn_def.Ast.f_params with
      | [] -> 0
      | [ _; _ ] -> 2
      | _ -> -1
    end
  in
  { p_src = src;
    p_fns = env.fns;
    p_fn_list = Array.of_list fn_list;
    p_main = main;
    p_main_arity = main_arity;
    p_global_sizes =
      Array.of_list
        (List.map
           (fun name ->
             size_of env (Hashtbl.find tc.Typecheck.globals name).Ast.d_ty)
           tc.Typecheck.global_order);
    p_global_tags =
      Array.of_list
        (List.map (fun name -> "global " ^ name) tc.Typecheck.global_order);
    p_global_inits = global_inits;
    p_n_strings = env.n_strings }

(* ------------------------------------------------------------------ *)
(* Entry point: mirror of [Eval.run]. *)

let run ?(fuel = Eval.default_fuel) ?deadline_s ?(argv = []) ?(input = "")
    (p : prog) : Eval.outcome =
  let deadline, clock_tick =
    match deadline_s with
    | None -> (infinity, max_int)
    | Some s -> (Unix.gettimeofday () +. s, Eval.clock_check_interval)
  in
  let mem = Memory.create () in
  let profile = Profile.create p.p_src in
  let st =
    { mem; bctx = Builtins.create_ctx ~input mem;
      globals =
        Array.make (Array.length p.p_global_sizes) { Value.blk = -1; off = 0 };
      string_cache = Array.make (max p.p_n_strings 1) None;
      strings = Hashtbl.create 32;
      fcounters =
        Array.map
          (fun cf -> Profile.fn_counters profile cf.c_name)
          p.p_fn_list;
      profile; fuel; deadline; clock_tick }
  in
  let finish code =
    { Eval.exit_code = code; stdout_text = Builtins.output st.bctx;
      profile = st.profile; work = st.profile.Profile.work }
  in
  match p.p_main with
  | None -> Value.error "program has no main function"
  | Some main_cf -> begin
    try
      (* Globals: allocate all storage in declaration order, then run the
         initializers — the same two passes as [Eval.init_globals]. *)
      let dummy = { locals = [||] } in
      Array.iteri
        (fun i size ->
          st.globals.(i) <-
            Memory.alloc mem size ~tag:p.p_global_tags.(i))
        p.p_global_sizes;
      List.iter
        (fun (gi, w) -> w st dummy st.globals.(gi))
        p.p_global_inits;
      let args =
        match p.p_main_arity with
        | 0 -> []
        | 2 ->
          let all = "prog" :: argv in
          let argc = List.length all in
          let arr = Memory.alloc mem (argc + 1) ~tag:"argv" in
          List.iteri
            (fun i s ->
              let sp = intern_rt st s in
              Memory.store mem (Memory.offset arr i) (Value.Vptr sp))
            all;
          Memory.store mem (Memory.offset arr argc) (Value.Vint 0);
          [ Value.Vint argc; Value.Vptr arr ]
        | _ -> Value.error "main must take () or (int, char **)"
      in
      let result = call_fn st main_cf args in
      finish (match result with Value.Vint n -> n | _ -> 0)
    with
    | Builtins.Exit_program code -> finish code
    | Eval.Out_of_fuel ->
      raise (Eval.Budget_exhausted (Eval.Fuel, finish (-1)))
    | Eval.Out_of_wall_clock ->
      raise (Eval.Budget_exhausted (Eval.Wall_clock, finish (-1)))
  end
