test/test_suite_programs.ml: Alcotest Cfg_ir Cinterp Core List Option Printf String Suite
