(* Def/use summaries feeding the paper's "store" branch heuristic:

     "When one arm of a conditional construct writes to variables read
      elsewhere, that arm is more likely."

   We identify variables by their resolution (local slot or global name),
   count reads per function, and expose (a) the variables directly written
   by a statement subtree and (b) whether a variable is read outside a
   given subtree. *)

type var_key = Vlocal of int | Vglobal of string

let var_key_of tc (e : Ast.expr) : var_key option =
  match e.Ast.enode with
  | Ast.Ident _ -> begin
    match Typecheck.resolution_of tc e with
    | Some (Typecheck.Rlocal slot) -> Some (Vlocal slot)
    | Some (Typecheck.Rglobal g) -> Some (Vglobal g)
    | _ -> None
  end
  | _ -> None

(* The root variable of an lvalue expression: [x] and [x.f] write [x];
   [arr[i]] writes [arr] when [arr] is declared as an array; writes
   through pointers ([*p], [p->f], [p[i]] for pointer p) hit an unknown
   object and are ignored. Local array declarations cannot be identified
   without the enclosing function's slot table, so they are conservatively
   treated like pointers — the heuristic only loses a little recall. *)
let rec lvalue_root tc (e : Ast.expr) : var_key option =
  match e.Ast.enode with
  | Ast.Ident _ -> var_key_of tc e
  | Ast.Field (a, _) -> lvalue_root tc a
  | Ast.Index (a, _) -> begin
    match a.Ast.enode with
    | Ast.Ident _ -> begin
      match Typecheck.resolution_of tc a with
      | Some (Typecheck.Rglobal g) -> begin
        match (Hashtbl.find tc.Typecheck.globals g).Ast.d_ty with
        | Ctypes.Tarray _ -> Some (Vglobal g)
        | _ -> None
      end
      | _ -> None
    end
    | _ -> None
  end
  | _ -> None

(* Variables directly written anywhere inside expression [e]. *)
let writes_of_expr tc (e : Ast.expr) : var_key list =
  let acc = ref [] in
  let visit (x : Ast.expr) =
    match x.Ast.enode with
    | Ast.Assign (_, lhs, _) | Ast.PreIncr lhs | Ast.PreDecr lhs
    | Ast.PostIncr lhs | Ast.PostDecr lhs -> begin
      match lvalue_root tc lhs with
      | Some k -> acc := k :: !acc
      | None -> ()
    end
    | _ -> ()
  in
  Ast.iter_expr visit e;
  !acc

(* Variables directly written anywhere inside statement [s]. *)
let writes_of_stmt tc (s : Ast.stmt) : var_key list =
  let acc = ref [] in
  Ast.iter_stmt s
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun (x : Ast.expr) ->
      match x.Ast.enode with
      | Ast.Assign (_, lhs, _) | Ast.PreIncr lhs | Ast.PreDecr lhs
      | Ast.PostIncr lhs | Ast.PostDecr lhs -> begin
        match lvalue_root tc lhs with
        | Some k -> acc := k :: !acc
        | None -> ()
      end
      | _ -> ());
  !acc

type t = {
  tc : Typecheck.t;
  fun_reads : (var_key, int) Hashtbl.t; (* read counts over the function *)
}

let count tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let reads_into tc tbl (root : Ast.stmt) =
  Ast.iter_stmt root
    ~on_stmt:(fun _ -> ())
    ~on_expr:(fun (x : Ast.expr) ->
      (* Every identifier occurrence counts as a read. Pure-store LHS
         identifiers are also counted; the heuristic tolerates this
         over-approximation. *)
      match var_key_of tc x with
      | Some k -> count tbl k
      | None -> ())

let of_fun (tc : Typecheck.t) (f : Ast.fundef) : t =
  let fun_reads = Hashtbl.create 32 in
  reads_into tc fun_reads f.Ast.f_body;
  { tc; fun_reads }

(* Is [k] read outside the statement subtree [s]? Computed by subtracting
   the subtree's read counts from the function's. *)
let read_outside (u : t) (s : Ast.stmt) (k : var_key) : bool =
  let inside = Hashtbl.create 8 in
  reads_into u.tc inside s;
  let total = Option.value ~default:0 (Hashtbl.find_opt u.fun_reads k) in
  let within = Option.value ~default:0 (Hashtbl.find_opt inside k) in
  total - within > 0

(* Does any variable in [writes] satisfy [read_outside]? *)
let any_write_read_outside (u : t) (s : Ast.stmt) (writes : var_key list) =
  List.exists (read_outside u s) writes
