(** Minimal dependency-free JSON: value type, strict parser, printer.

    The repository deliberately has no JSON library dependency. The
    observability layer hand-rolls its *writers* per schema (they are
    flat and simple); this module exists because the run-record /
    baseline-drift machinery also has to {e read} those documents back,
    and so do the tests. It sits at the bottom of the tree so both the
    driver and the test binary can use the same reader.

    The parser is strict RFC-8259 syntax (no trailing commas, no
    comments, a single top-level value). Object fields keep document
    order; duplicate keys are kept (first one wins in {!member}). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result

val parse_exn : string -> t
(** Like {!parse}; raises {!Parse_error}. *)

val to_string : t -> string
(** Pretty-print with two-space indentation and a trailing newline.
    Finite numbers round-trip bit-exactly through {!parse}; non-finite
    numbers are emitted as strings (nan, inf, -inf) — see {!to_num}. *)

val to_compact_string : t -> string
(** Single-line print: no indentation, no interior or trailing newline.
    The encoding used by newline-delimited protocols ([Driver.Serve]),
    where the framing layer owns the newline. Numbers print exactly as
    in {!to_string}. *)

val escape : string -> string
(** The string-body escaper, shared with the hand-rolled writers. *)

val float_repr : float -> string
(** Shortest decimal representation of a finite float that parses back
    to the same bits. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_list : t -> t list option
val to_str : t -> string option

val to_num : t -> float option
(** [Num f] as [f]; also accepts the [Str] encoding of non-finite
    floats (nan, inf, …) that {!to_string} produces. *)
