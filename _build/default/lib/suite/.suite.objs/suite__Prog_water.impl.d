lib/suite/prog_water.ml: Bench_prog
