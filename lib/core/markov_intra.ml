(* Markov model of control flow within one function (paper section 5.1).

   The CFG becomes a Markov chain: states are basic blocks, transition
   probabilities come from the branch predictor (0.8/0.2 on predicted
   branches, the standard loop count on back edges, case-label weighting
   on switches). The relative block frequencies are the solution of the
   linear system of Figure 7, with the entry block pinned at 1.

   Unlike the AST walk, this model sees break/continue/goto/return edges:
   in strchr the return inside the loop reduces the solved test count
   from 5 to 2.78 exactly as in the paper. *)

module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Cfg = Cfg_ir.Cfg
module Linsolve = Linalg.Linsolve

(* Outgoing arc probabilities of a block. [branch_prob] supplies the
   P(condition true) model: the default is the paper's first-match 0.8/0.2
   rule; the Wu-Larus extension combines heuristic evidence instead. *)
let arc_probs ?branch_prob tc (usage : Usage.t) (b : Cfg.block) :
    (int * float) list =
  let branch_prob =
    match branch_prob with
    | Some f -> f
    | None -> Branch_predictor.probability_true tc usage
  in
  match b.Cfg.b_term with
  | Cfg.Tjump t -> [ (t, 1.0) ]
  | Cfg.Tbranch (br, t, f) ->
    if t = f then [ (t, 1.0) ]
    else begin
      let p = branch_prob br in
      [ (t, p); (f, 1.0 -. p) ]
    end
  | Cfg.Tswitch (_, cases, default) ->
    (* By default, weight each target by its number of case values, with
       the default path counting as one more (the variant the paper found
       slightly better, footnote 3). The ablation configuration can
       switch to equal weighting per distinct target instead. *)
    let tally = Hashtbl.create 8 in
    let bump t w =
      Hashtbl.replace tally t (w +. Option.value ~default:0.0 (Hashtbl.find_opt tally t))
    in
    if Config.current.Config.switch_by_labels then begin
      List.iter (fun (_, t) -> bump t 1.0) cases;
      bump default 1.0;
      let total = float_of_int (List.length cases + 1) in
      Hashtbl.fold (fun t w acc -> (t, w /. total) :: acc) tally []
      |> List.sort compare
    end
    else begin
      let targets =
        List.sort_uniq compare (default :: List.map snd cases)
      in
      let p = 1.0 /. float_of_int (List.length targets) in
      List.map (fun t -> (t, p)) targets
    end
  | Cfg.Treturn _ -> []

(* All weighted arcs of a function under a given probability model. *)
let arcs_of_fn ?branch_prob tc (usage : Usage.t) (fn : Cfg.fn) :
    (int * int * float) list =
  Array.to_list fn.Cfg.fn_blocks
  |> List.concat_map (fun (b : Cfg.block) ->
       List.map
         (fun (t, p) -> (b.Cfg.b_id, t, p))
         (arc_probs ?branch_prob tc usage b))

(* Solve the chain. If a probability-1 cycle (e.g. an infinite goto loop)
   makes the system singular, damp all probabilities and retry — the
   paper notes such loops did not occur in its suite; we keep the solver
   total anyway. Damping is passed as a scale factor into the solver so
   the retry path never re-allocates the arc list.

   Degradation chain: markov solve → 20 damped retries → [?fallback]
   (the pipeline passes the loop estimate — "always produce *an*
   estimate") → flat. Exhausting the retries records a fault in
   [Obs.Faultlog] alongside the probe counter, because it never happens
   on a healthy suite. [?inject_key] names this solve for the
   ["solve.intra"] injection point (the pipeline passes the program). *)
let solve_blocks ?(inject_key = "") ?fallback ~(n : int) ~(entry : int)
    (arcs : (int * int * float) list) : float array =
  (* The solver assembles the system in per-domain scratch buffers
     (Linalg.Scratch), so retries and the per-function solve loop reuse
     one working set instead of allocating n*n afresh each attempt. *)
  Obs.Probe.observe "markov_intra.solve_n" (float_of_int n);
  let rec attempt damping tries =
    let retry () =
      if tries > 0 then begin
        Obs.Probe.count "markov_intra.damping_retry";
        attempt (damping *. 0.95) (tries - 1)
      end
      else begin
        let recovery, freqs =
          match fallback with
          | Some (label, f) ->
            Obs.Probe.count "markov_intra.fallback_estimate";
            (("fallback to " ^ label), f ())
          | None ->
            Obs.Probe.count "markov_intra.flat_fallback";
            ("flat estimate", Array.make n 1.0)
        in
        Obs.Faultlog.record ~stage:"solve" ~subject:inject_key
          ~detail:"markov_intra: damped retries exhausted"
          ~exn_text:"system stayed singular or non-finite" recovery;
        freqs
      end
    in
    match
      if Obs.Inject.should_fire "solve.intra" ~key:inject_key then
        raise (Linsolve.Singular (-1));
      Linsolve.markov_frequencies ~scale:damping ~n ~source:entry arcs
    with
    | x when Array.for_all Float.is_finite x -> x
    | _ -> retry ()
    | exception Linsolve.Singular _ -> retry ()
  in
  attempt 1.0 20

(* [?usage] lets callers that sweep several estimators over one function
   (the pipeline's per-program context) share a single [Usage.of_fun]
   walk; when absent we compute it locally as before. *)
let usage_for ?usage tc (fn : Cfg.fn) : Usage.t =
  match usage with
  | Some u -> u
  | None -> Usage.of_fun tc fn.Cfg.fn_def

(* Estimated relative block frequencies (entry = 1). *)
let block_freqs ?usage ?inject_key ?fallback (tc : Typecheck.t)
    (fn : Cfg.fn) : float array =
  let usage = usage_for ?usage tc fn in
  let arcs = arcs_of_fn tc usage fn in
  solve_blocks ?inject_key ?fallback ~n:(Cfg.n_blocks fn)
    ~entry:fn.Cfg.fn_entry arcs

(* The Wu-Larus variant: if-branch probabilities from combined heuristic
   evidence instead of the binary 0.8/0.2 guess. *)
let block_freqs_combined ?usage ?inject_key ?fallback (tc : Typecheck.t)
    (fn : Cfg.fn) : float array =
  let usage = usage_for ?usage tc fn in
  let branch_prob (br : Cfg.branch) =
    match br.Cfg.br_kind with
    | Cfg.Kwhile | Cfg.Kdo | Cfg.Kfor ->
      Branch_predictor.probability_true tc usage br
    | Cfg.Kif | Cfg.Kcond ->
      Branch_predictor.probability_true_combined tc usage br.Cfg.br_stmt
        br.Cfg.br_cond ~then_arm:br.Cfg.br_then_arm
        ~else_arm:br.Cfg.br_else_arm
  in
  let arcs = arcs_of_fn ~branch_prob tc usage fn in
  solve_blocks ?inject_key ?fallback ~n:(Cfg.n_blocks fn)
    ~entry:fn.Cfg.fn_entry arcs

(* The system in presentable form (paper Figures 6-7): for each block, the
   equation x_b = sum p_i * x_pred_i, plus the solution vector. *)
type presented = {
  equations : (int * (int * float) list) list; (* block, weighted preds *)
  solution : float array;
}

let present ?usage (tc : Typecheck.t) (fn : Cfg.fn) : presented =
  let usage = usage_for ?usage tc fn in
  let arcs = arcs_of_fn tc usage fn in
  let incoming = Hashtbl.create 16 in
  List.iter
    (fun (s, d, p) ->
      Hashtbl.replace incoming d
        ((s, p) :: Option.value ~default:[] (Hashtbl.find_opt incoming d)))
    arcs;
  let equations =
    Array.to_list fn.Cfg.fn_blocks
    |> List.map (fun (b : Cfg.block) ->
         ( b.Cfg.b_id,
           List.rev
             (Option.value ~default:[] (Hashtbl.find_opt incoming b.Cfg.b_id))
         ))
  in
  { equations;
    solution = solve_blocks ~n:(Cfg.n_blocks fn) ~entry:fn.Cfg.fn_entry arcs
  }
