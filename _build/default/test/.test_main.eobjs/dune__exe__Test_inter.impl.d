test/test_inter.ml: Alcotest Array Cfg_ir Core Float Hashtbl List Option
