lib/cfront/parser.ml: Array Ast Ctypes Hashtbl Lexer List Preproc Printf String Token
