(* Transports for the NDJSON serve protocol.

   The daemon's framing is carrier-agnostic: requests are lines, a
   blank line (or end of stream) closes a batch, and responses come
   back one line per request after the batch. This module owns that
   framing so [Driver.Serve] can run the same protocol loop over a
   channel pair (the legacy stdin/stdout daemon), a Unix-domain-socket
   connection, or a test harness, without re-implementing line
   splitting anywhere.

   Two shapes:

   - [t] is the blocking pull interface ([read_batch] / [write_lines])
     the single-client loop uses;
   - [Conn] is the incremental push interface the multiplexed socket
     listener uses: bytes arrive whenever [select] says the fd is
     readable, [feed] turns them into zero or more completed batches,
     and partial lines/batches wait in the connection's buffer. *)

type t = {
  read_batch : unit -> string list option;
      (* next non-empty batch, [None] at end of stream; a final
         unterminated batch before EOF is returned like a closed one *)
  write_lines : string list -> unit;  (* one response per line + flush *)
  close : unit -> unit;
}

let of_channels (ic : in_channel) (oc : out_channel) : t =
  let read_batch () =
    let rec go acc =
      match input_line ic with
      | exception End_of_file ->
        if acc = [] then None else Some (List.rev acc)
      | "" -> if acc = [] then go [] else Some (List.rev acc)
      | line -> go (line :: acc)
    in
    go []
  in
  let write_lines lines =
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      lines;
    flush oc
  in
  { read_batch; write_lines; close = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* Multiplexed connections (the socket listener). *)

module Conn = struct
  type conn = {
    fd : Unix.file_descr;
    raw : Buffer.t;                (* bytes read but not yet split *)
    mutable batch_acc : string list;  (* current batch, reversed *)
    mutable closed : bool;
  }

  let create (fd : Unix.file_descr) : conn =
    { fd; raw = Buffer.create 4096; batch_acc = []; closed = false }

  let fd (c : conn) = c.fd

  let closed (c : conn) = c.closed

  (* Split every complete line out of [raw], keeping the partial tail. *)
  let drain_lines (c : conn) : string list =
    let s = Buffer.contents c.raw in
    let lines = ref [] in
    let start = ref 0 in
    String.iteri
      (fun i ch ->
        if ch = '\n' then begin
          lines := String.sub s !start (i - !start) :: !lines;
          start := i + 1
        end)
      s;
    Buffer.clear c.raw;
    Buffer.add_substring c.raw s !start (String.length s - !start);
    List.rev !lines

  (* Consume readable bytes from the fd; returns the batches the new
     bytes completed, in arrival order. A read of zero bytes is EOF:
     the connection is marked closed and a pending unterminated batch
     is flushed out, mirroring the channel transport. *)
  let feed (c : conn) : string list list =
    let chunk = Bytes.create 65536 in
    let n =
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | n -> n
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
    in
    if n = 0 then begin
      c.closed <- true;
      let final =
        match (drain_lines c, c.batch_acc) with
        | [], [] -> []
        | lines, acc ->
          (* any complete lines still buffered, then the open batch *)
          let batches = ref [] in
          let acc = ref acc in
          List.iter
            (fun line ->
              if line = "" then begin
                if !acc <> [] then batches := List.rev !acc :: !batches;
                acc := []
              end
              else acc := line :: !acc)
            lines;
          if !acc <> [] then batches := List.rev !acc :: !batches;
          List.rev !batches
      in
      c.batch_acc <- [];
      final
    end
    else begin
      Buffer.add_subbytes c.raw chunk 0 n;
      let batches = ref [] in
      List.iter
        (fun line ->
          if line = "" then begin
            if c.batch_acc <> [] then
              batches := List.rev c.batch_acc :: !batches;
            c.batch_acc <- []
          end
          else c.batch_acc <- line :: c.batch_acc)
        (drain_lines c);
      List.rev !batches
    end

  (* Blocking full write; a client that vanished mid-write is treated
     as closed and the remaining responses are dropped (they have no
     reader). *)
  let write_lines (c : conn) (lines : string list) : unit =
    if not c.closed then begin
      let buf = Buffer.create 1024 in
      List.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        lines;
      let b = Buffer.to_bytes buf in
      let len = Bytes.length b in
      let rec go off =
        if off < len then
          match Unix.write c.fd b off (len - off) with
          | n -> go (off + n)
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
            ->
            c.closed <- true
      in
      go 0
    end

  let close (c : conn) : unit =
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
end

(* ------------------------------------------------------------------ *)
(* Unix-domain listeners. *)

let listen_unix (path : string) : Unix.file_descr =
  (* Bind under a temp name and rename into place only once [listen]
     has run: clients poll for the path's existence, and a connect
     landing between bind and listen would be refused. The rename makes
     "the file exists" imply "the daemon accepts". *)
  let tmp = path ^ ".tmp" in
  if Sys.file_exists tmp then Sys.remove tmp;
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX tmp);
  Unix.listen fd 16;
  Unix.rename tmp path;
  fd

let connect_unix (path : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd
