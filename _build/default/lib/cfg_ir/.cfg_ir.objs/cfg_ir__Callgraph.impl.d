lib/cfg_ir/callgraph.ml: Array Cfg Cfront Hashtbl List Option Scc
