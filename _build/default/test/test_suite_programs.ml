(* Benchmark-suite integration tests: every program compiles, runs on all
   of its inputs with exit code 0, and produces the expected output where
   the result is independently known (queens counts, sort validity,
   cholesky residuals, lisp arithmetic, parser values, ...). *)

module Pipeline = Core.Pipeline
module Profile = Cinterp.Profile
module Cfg = Cfg_ir.Cfg

let load name =
  let bench = Option.get (Suite.Registry.find name) in
  let c = Pipeline.compile ~name bench.Suite.Bench_prog.source in
  (bench, c)

let run_nth (bench, c) i =
  let r = List.nth bench.Suite.Bench_prog.runs i in
  Pipeline.run_once c
    { Pipeline.argv = r.Suite.Bench_prog.r_argv;
      input = r.Suite.Bench_prog.r_input }

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_registry_shape () =
  Alcotest.(check int) "sixteen programs" 16 (List.length Suite.Registry.all);
  List.iter
    (fun (p : Suite.Bench_prog.t) ->
      Alcotest.(check bool)
        (p.Suite.Bench_prog.name ^ " has >= 4 inputs")
        true
        (Suite.Bench_prog.n_runs p >= 4);
      Alcotest.(check bool)
        (p.Suite.Bench_prog.name ^ " nontrivial")
        true
        (Suite.Bench_prog.loc p >= 50))
    Suite.Registry.all;
  (* names are unique *)
  let names = Suite.Registry.names () in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_all_programs_run () =
  List.iter
    (fun (bench : Suite.Bench_prog.t) ->
      let c =
        Pipeline.compile ~name:bench.Suite.Bench_prog.name
          bench.Suite.Bench_prog.source
      in
      List.iteri
        (fun i (r : Suite.Bench_prog.run) ->
          let o =
            Pipeline.run_once c
              { Pipeline.argv = r.Suite.Bench_prog.r_argv;
                input = r.Suite.Bench_prog.r_input }
          in
          Alcotest.(check int)
            (Printf.sprintf "%s run %d exits 0" bench.Suite.Bench_prog.name i)
            0 o.Cinterp.Eval.exit_code;
          Alcotest.(check bool)
            (Printf.sprintf "%s run %d prints" bench.Suite.Bench_prog.name i)
            true
            (String.length o.Cinterp.Eval.stdout_text > 0))
        bench.Suite.Bench_prog.runs)
    Suite.Registry.all

let test_queens_known_counts () =
  let prog = load "queens_mini" in
  (* 8 queens: 92 solutions; 9: 352; 7: 40; 10: 724 (classic values) *)
  let expect = [ (0, "solutions=92"); (1, "solutions=352");
                 (2, "solutions=40"); (3, "solutions=724") ] in
  List.iter
    (fun (i, needle) ->
      let o = run_nth prog i in
      Alcotest.(check bool) needle true
        (contains ~needle o.Cinterp.Eval.stdout_text))
    expect

let test_sort_always_sorted () =
  let prog = load "sort_bench" in
  for i = 0 to 4 do
    let o = run_nth prog i in
    Alcotest.(check bool) "all three algorithms sorted" true
      (contains ~needle:"ok=111" o.Cinterp.Eval.stdout_text)
  done

let test_cholesky_residual_small () =
  let prog = load "cholesky_mini" in
  for i = 0 to 3 do
    let o = run_nth prog i in
    let out = o.Cinterp.Eval.stdout_text in
    (* residual=...e-14 style output; just require e-1x exponents *)
    Alcotest.(check bool) "tiny residual" true
      (contains ~needle:"residual=" out
       && (contains ~needle:"e-1" out || contains ~needle:"residual=0" out))
  done

let test_lisp_arithmetic () =
  let _, c = load "lisp_mini" in
  let o =
    Pipeline.run_once c
      { Pipeline.argv = [];
        input = "(+ 1 2 3)\n(* 6 7)\n(if (< 1 2) 111 222)\n(sumto 10)" }
  in
  Alcotest.(check bool) "sums" true
    (contains ~needle:"6\n42\n111\n55" o.Cinterp.Eval.stdout_text)

let test_bison_values () =
  let _, c = load "bison_mini" in
  let o =
    Pipeline.run_once c
      { Pipeline.argv = []; input = "2 + 3 * 4\n(2 + 3) * 4\n- 5 + 1" }
  in
  Alcotest.(check bool) "parser computes correctly" true
    (contains ~needle:"= 14\n= 20\n= -4" o.Cinterp.Eval.stdout_text)

let test_eqntott_truth_tables () =
  let _, c = load "eqntott_mini" in
  let o =
    Pipeline.run_once c { Pipeline.argv = []; input = "a & b\na | b\na ^ a" }
  in
  let out = o.Cinterp.Eval.stdout_text in
  Alcotest.(check bool) "and has 1 one" true (contains ~needle:"ones=1" out);
  Alcotest.(check bool) "or has 3 ones" true (contains ~needle:"ones=3" out);
  Alcotest.(check bool) "a^a has 0 ones" true (contains ~needle:"ones=0" out)

let test_awk_counts () =
  let _, c = load "awk_mini" in
  let o =
    Pipeline.run_once c
      { Pipeline.argv = [ "*cat*"; "?og" ];
        input = "the cat sat\ndog\nfog\ncatalog\n" }
  in
  (* *cat* matches lines 1 and 4; ?og matches "dog" and "fog" (and
     "catalog" unanchored contains "log" -> ?og matches "log"? "?og"
     needs exactly 3 chars at some position: yes, "log" in catalog) *)
  Alcotest.(check bool) "line count" true
    (contains ~needle:"lines=4" o.Cinterp.Eval.stdout_text);
  Alcotest.(check bool) "cat pattern" true
    (contains ~needle:"p1=2" o.Cinterp.Eval.stdout_text)

let test_hash_distinct_counts () =
  let _, c = load "hash_mini" in
  let o =
    Pipeline.run_once c
      { Pipeline.argv = []; input = "a b c a b a x y z x" }
  in
  let out = o.Cinterp.Eval.stdout_text in
  Alcotest.(check bool) "words" true (contains ~needle:"words=10" out);
  Alcotest.(check bool) "distinct" true (contains ~needle:"distinct=6" out);
  Alcotest.(check bool) "top" true (contains ~needle:"top=3" out)

let test_compress_roundtrip_stats () =
  let _, c = load "compress_mini" in
  let o =
    Pipeline.run_once c
      { Pipeline.argv = [];
        input = String.concat "" (List.init 100 (fun _ -> "abcabc")) }
  in
  let out = o.Cinterp.Eval.stdout_text in
  Alcotest.(check bool) "reads everything" true (contains ~needle:"in=600" out);
  (* highly repetitive input compresses well: out < in *)
  Alcotest.(check bool) "compresses" true
    (contains ~needle:"ratio=" out && not (contains ~needle:"ratio=100%" out))

let test_strlib_palindromes () =
  let _, c = load "strlib_mini" in
  let o =
    Pipeline.run_once c
      { Pipeline.argv = []; input = "racecar hello noon" }
  in
  Alcotest.(check bool) "counts palindromes" true
    (contains ~needle:"pals=4" o.Cinterp.Eval.stdout_text)
  (* racecar and noon are palindromes; each also counts via the reversed-
     copy check (len > 2), so 2 + 2 = 4 *)

let test_tree_count_matches () =
  let _, c = load "tree_mini" in
  let o = Pipeline.run_once c { Pipeline.argv = [ "50"; "3" ]; input = "" } in
  (* the printed node count must equal inserted minus deleted; we only
     check internal consistency markers exist *)
  let out = o.Cinterp.Eval.stdout_text in
  Alcotest.(check bool) "has stats" true
    (contains ~needle:"inserted=" out && contains ~needle:"height=" out)

let test_life_conserves_grid () =
  let _, c = load "life_mini" in
  let o = Pipeline.run_once c { Pipeline.argv = [ "5"; "11"; "30" ]; input = "" } in
  Alcotest.(check bool) "five generations" true
    (contains ~needle:"gens=5" o.Cinterp.Eval.stdout_text)

let test_alvinn_is_loop_only () =
  (* paper: "values for alvinn are uniformly low ... because its only
     branches are for loops that iterate many times" *)
  let bench, c = load "alvinn_mini" in
  let r = List.hd bench.Suite.Bench_prog.runs in
  let o =
    Pipeline.run_once c
      { Pipeline.argv = r.Suite.Bench_prog.r_argv;
        input = r.Suite.Bench_prog.r_input }
  in
  let prog = c.Pipeline.prog in
  let rate =
    Core.Missrate.rate prog o.Cinterp.Eval.profile
      (Core.Missrate.smart_predictor prog)
  in
  Alcotest.(check bool) "miss rate under 5%" true (rate < 0.05);
  (* and the predictor equals the PSP: every branch is a loop branch *)
  let psp = Core.Missrate.psp_rate prog o.Cinterp.Eval.profile in
  Alcotest.(check (float 1e-9)) "predictor achieves the PSP floor" psp rate

let test_gs_indirection () =
  (* paper: about half of gs's functions are referenced indirectly *)
  let _, c = load "gs_mini" in
  let g = c.Pipeline.graph in
  let taken = List.length (Cfg_ir.Callgraph.address_taken_list g) in
  let total = Cfg_ir.Callgraph.n_nodes g in
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d functions address-taken" taken total)
    true
    (float_of_int taken >= 0.6 *. float_of_int total);
  (* the Markov model is forced to make the operators nearly
     equiprobable: the spread of estimates across ops is tiny *)
  let intra = Pipeline.intra_provider c Pipeline.Ismart in
  let result = Core.Markov_inter.estimate g ~intra in
  let op_values =
    List.filter_map
      (fun (name, v) ->
        if String.length name > 3 && String.sub name 0 3 = "op_" then Some v
        else None)
      result.Core.Markov_inter.freqs
  in
  let mn = List.fold_left min infinity op_values in
  let mx = List.fold_left max 0.0 op_values in
  (* op_dup/op_clear appear twice in the dispatch table, so their census
     weight (and thus their share) doubles; every other spread would need
     real knowledge the model cannot have *)
  Alcotest.(check bool) "ops nearly equiprobable" true (mx /. mn <= 2.0 +. 1e-6)

let test_determinism () =
  (* identical runs produce identical output and identical profiles *)
  let prog = load "espresso_mini" in
  let o1 = run_nth prog 0 and o2 = run_nth prog 0 in
  Alcotest.(check string) "same output" o1.Cinterp.Eval.stdout_text
    o2.Cinterp.Eval.stdout_text;
  Alcotest.(check (float 0.0)) "same work" o1.Cinterp.Eval.work
    o2.Cinterp.Eval.work

let test_profiles_differ_across_inputs () =
  (* the whole methodology needs inputs that exercise different paths *)
  let bench, c = load "sort_bench" in
  let profiles =
    List.map
      (fun (r : Suite.Bench_prog.run) ->
        (Pipeline.run_once c
           { Pipeline.argv = r.Suite.Bench_prog.r_argv;
             input = r.Suite.Bench_prog.r_input })
          .Cinterp.Eval.profile)
      bench.Suite.Bench_prog.runs
  in
  let totals = List.map Profile.total_blocks profiles in
  Alcotest.(check bool) "totals differ" true
    (List.length (List.sort_uniq compare totals) > 1)

let suite =
  [ Alcotest.test_case "registry shape" `Quick test_registry_shape;
    Alcotest.test_case "all programs run" `Slow test_all_programs_run;
    Alcotest.test_case "queens counts" `Slow test_queens_known_counts;
    Alcotest.test_case "sorts are sorted" `Slow test_sort_always_sorted;
    Alcotest.test_case "cholesky residual" `Quick test_cholesky_residual_small;
    Alcotest.test_case "lisp arithmetic" `Quick test_lisp_arithmetic;
    Alcotest.test_case "parser values" `Quick test_bison_values;
    Alcotest.test_case "truth tables" `Quick test_eqntott_truth_tables;
    Alcotest.test_case "awk counts" `Quick test_awk_counts;
    Alcotest.test_case "hash counts" `Quick test_hash_distinct_counts;
    Alcotest.test_case "compress stats" `Quick test_compress_roundtrip_stats;
    Alcotest.test_case "strlib palindromes" `Quick test_strlib_palindromes;
    Alcotest.test_case "tree stats" `Quick test_tree_count_matches;
    Alcotest.test_case "life generations" `Quick test_life_conserves_grid;
    Alcotest.test_case "alvinn is loop-only" `Quick test_alvinn_is_loop_only;
    Alcotest.test_case "gs indirection" `Quick test_gs_indirection;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "profiles differ" `Quick test_profiles_differ_across_inputs ]
