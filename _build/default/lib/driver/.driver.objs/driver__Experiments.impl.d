lib/driver/experiments.ml: Array Buffer Cfg_ir Cfront Cinterp Context Core Hashtbl List Option Printf String Suite Text_table
