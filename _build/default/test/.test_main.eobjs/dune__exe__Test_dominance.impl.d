test/test_dominance.ml: Alcotest Array Cfg_ir Cfront Cinterp Core Float Hashtbl List Option Parser Printf Suite Typecheck
