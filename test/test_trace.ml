(* Observability subsystem tests: span recording and nesting in
   [Obs.Probe], parent propagation across the [Parallel] pool, counter
   accumulation, and the [Driver.Trace] renderers — including JSON
   validity checked by a small hand-rolled parser (the repository has no
   JSON dependency). Tracing must also be purely observational: the
   differential suites elsewhere in this binary run with it disabled and
   their byte-identity guarantees are unaffected by this module. *)

module Probe = Obs.Probe
module Trace = Driver.Trace
module Parallel = Driver.Parallel

(* Each test starts and ends with a clean, disabled recorder so the rest
   of the alcotest binary never sees probe state. *)
let with_recording (f : unit -> 'a) : 'a =
  Probe.reset ();
  Probe.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Probe.set_enabled false;
      Probe.reset ())
    f

(* --- probe layer ------------------------------------------------------ *)

let test_span_nesting () =
  with_recording (fun () ->
      Probe.with_span "outer" (fun () ->
          Probe.with_span "inner" (fun () -> ());
          Probe.with_span "inner" (fun () -> ()));
      let spans = Probe.spans () in
      Alcotest.(check int) "three spans" 3 (List.length spans);
      let outer =
        List.find (fun s -> s.Probe.label = "outer") spans
      in
      Alcotest.(check int) "outer is a root" (-1) outer.Probe.parent;
      List.iter
        (fun s ->
          if s.Probe.label = "inner" then begin
            Alcotest.(check int) "inner nests under outer" outer.Probe.id
              s.Probe.parent;
            Alcotest.(check bool) "stop after start" true
              (Int64.compare s.Probe.stop_ns s.Probe.start_ns >= 0)
          end)
        spans)

let test_span_closes_on_exception () =
  with_recording (fun () ->
      (try Probe.with_span "boom" (fun () -> failwith "x")
       with Failure _ -> ());
      match Probe.spans () with
      | [ s ] -> Alcotest.(check string) "span recorded" "boom" s.Probe.label
      | l -> Alcotest.failf "expected one span, got %d" (List.length l))

let test_disabled_records_nothing () =
  Probe.reset ();
  Probe.set_enabled false;
  Probe.with_span "ghost" (fun () -> Probe.count "ghost.counter");
  Alcotest.(check int) "no spans" 0 (List.length (Probe.spans ()));
  Alcotest.(check int) "no counters" 0 (List.length (Probe.counters ()))

let test_counters () =
  with_recording (fun () ->
      Probe.observe "pivot" 3.0;
      Probe.observe "pivot" 1.0;
      Probe.observe "pivot" 2.0;
      Probe.count "events";
      match Probe.counters () with
      | [ ("events", e); ("pivot", p) ] ->
        Alcotest.(check int) "event hits" 1 e.Probe.hits;
        Alcotest.(check int) "pivot hits" 3 p.Probe.hits;
        Alcotest.(check (float 1e-12)) "pivot total" 6.0 p.Probe.total;
        Alcotest.(check (float 1e-12)) "pivot min" 1.0 p.Probe.vmin;
        Alcotest.(check (float 1e-12)) "pivot max" 3.0 p.Probe.vmax
      | l -> Alcotest.failf "unexpected counter set (%d)" (List.length l))

let test_reset () =
  with_recording (fun () ->
      Probe.with_span "s" (fun () -> Probe.count "c");
      Probe.reset ();
      Alcotest.(check int) "spans cleared" 0 (List.length (Probe.spans ()));
      Alcotest.(check int) "counters cleared" 0
        (List.length (Probe.counters ())))

(* Spans opened by pool tasks attach below the span that scheduled the
   fan-out, whichever domain ran them. *)
let test_parent_across_domains () =
  with_recording (fun () ->
      Parallel.set_jobs 4;
      Fun.protect
        ~finally:(fun () -> Parallel.set_jobs 1)
        (fun () ->
          Probe.with_span "fanout" (fun () ->
              ignore
                (Parallel.map
                   (fun i -> Probe.with_span "task" (fun () -> i * i))
                   (List.init 16 Fun.id)));
          let spans = Probe.spans () in
          let fanout =
            List.find (fun s -> s.Probe.label = "fanout") spans
          in
          let tasks =
            List.filter (fun s -> s.Probe.label = "task") spans
          in
          Alcotest.(check int) "all task spans recorded" 16
            (List.length tasks);
          List.iter
            (fun s ->
              Alcotest.(check int) "task parent is the fanout span"
                fanout.Probe.id s.Probe.parent)
            tasks))

let contains (haystack : string) (needle : string) : bool =
  let h = String.length haystack and n = String.length needle in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* --- the shared JSON validity checker --------------------------------- *)

(* The checker itself lives in [Json_check] so the run-record tests can
   use it too; keep its self-test next to its original consumers. *)
let parse_json = Json_check.parse_json

let test_json_checker_self_test () =
  List.iter parse_json
    [ "{}"; "[]"; {|{"a": [1, -2.5e3, "x\n", true, null]}|}; "3.14" ];
  List.iter
    (fun bad ->
      match parse_json bad with
      | exception Json_check.Bad_json _ -> ()
      | () -> Alcotest.failf "accepted invalid JSON %S" bad)
    [ "{"; {|{"a" 1}|}; "[1,]"; "nul"; "1 2"; {|"unterminated|} ]

(* --- trace rendering -------------------------------------------------- *)

(* Record a realistic little workload: a solver call under a pipeline
   stage, plus counters, including values JSON cannot represent. *)
let record_sample () =
  Probe.with_span "stage" (fun () ->
      let a = Linalg.Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
      ignore (Linalg.Linsolve.solve a [| 5.0; 10.0 |]));
  Probe.observe "weird \"name\"\n" infinity;
  Probe.observe "weird \"name\"\n" nan

let test_render_tree () =
  with_recording (fun () ->
      record_sample ();
      let tree = Trace.render_tree () in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "tree mentions %S" needle)
            true (contains tree needle))
        [ "stage"; "linsolve"; "linsolve.solve"; "linsolve.pivot" ])

let test_metrics_json_valid () =
  with_recording (fun () ->
      record_sample ();
      let json = Trace.metrics_json () in
      (match parse_json json with
      | () -> ()
      | exception Json_check.Bad_json msg ->
        Alcotest.failf "invalid metrics JSON (%s):\n%s" msg json);
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "document mentions %S" needle)
            true (contains json needle))
        [ {|"jobs"|}; {|"spans"|}; {|"counters"|}; "stage/linsolve";
          "linsolve.pivot" ])

(* The documented end-to-end entry point: reporting runs even when the
   traced computation raises, and the JSON lands on disk. *)
let test_with_reporting_on_failure () =
  Probe.reset ();
  let path = Filename.temp_file "metrics" ".json" in
  (try
     Trace.with_reporting ~trace:false ~metrics_out:(Some path) (fun () ->
         failwith "boom")
   with Failure _ -> ());
  Probe.set_enabled false;
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Probe.reset ();
  (match parse_json contents with
  | () -> ()
  | exception Json_check.Bad_json msg ->
    Alcotest.failf "invalid metrics JSON after failure (%s)" msg);
  Alcotest.(check bool) "root run span present" true
    (contains contents {|"path": "run"|})

let suite =
  [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span closes on exception" `Quick
      test_span_closes_on_exception;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "counters accumulate" `Quick test_counters;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "parent crosses domains" `Quick
      test_parent_across_domains;
    Alcotest.test_case "json checker self-test" `Quick
      test_json_checker_self_test;
    Alcotest.test_case "render tree" `Quick test_render_tree;
    Alcotest.test_case "metrics json is valid" `Quick test_metrics_json_valid;
    Alcotest.test_case "reporting survives failure" `Quick
      test_with_reporting_on_failure ]
