lib/core/pipeline.ml: Array Ast_estimator Callsite_rank Cfg_ir Cfront Cinterp Hashtbl Inter_simple List Markov_inter Markov_intra Option Structural_estimator Weight_matching
