lib/cfront/pretty.ml: Ast Buffer Char Ctypes List Option Printf String
