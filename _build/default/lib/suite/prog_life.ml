(* life_mini: Conway's game of life on a torus with generation hashing —
   the mpeg-like "frame loop over a 2D grid" workload: regular nested
   loops, neighbor stencils, and a per-frame summary. *)

let source = {|
#define MAX_W 48
#define MAX_H 48

char grid_a[MAX_H][MAX_W];
char grid_b[MAX_H][MAX_W];
int width;
int height;
int generation;
int births;
int deaths;

int wrap(int v, int limit) {
  if (v < 0) return v + limit;
  if (v >= limit) return v - limit;
  return v;
}

int neighbors(char src[MAX_H][MAX_W], int y, int x) {
  int dy, dx, n = 0, yy, xx;
  for (dy = -1; dy <= 1; dy++) {
    for (dx = -1; dx <= 1; dx++) {
      if (dy == 0 && dx == 0) continue;
      yy = wrap(y + dy, height);
      xx = wrap(x + dx, width);
      if (src[yy][xx]) n++;
    }
  }
  return n;
}

/* One generation from src into dst; returns live count. Hot. */
int step(char src[MAX_H][MAX_W], char dst[MAX_H][MAX_W]) {
  int y, x, n, alive = 0, cell;
  for (y = 0; y < height; y++) {
    for (x = 0; x < width; x++) {
      n = neighbors(src, y, x);
      cell = src[y][x];
      if (cell) {
        if (n == 2 || n == 3) dst[y][x] = 1;
        else { dst[y][x] = 0; deaths++; }
      } else {
        if (n == 3) { dst[y][x] = 1; births++; }
        else dst[y][x] = 0;
      }
      if (dst[y][x]) alive++;
    }
  }
  return alive;
}

int grid_hash(char g[MAX_H][MAX_W]) {
  int y, x, h = 17;
  for (y = 0; y < height; y++)
    for (x = 0; x < width; x++)
      h = ((h * 31) + g[y][x]) & 0xffffff;
  return h;
}

void seed_grid(int seed, int density) {
  int y, x, state = seed;
  for (y = 0; y < height; y++) {
    for (x = 0; x < width; x++) {
      state = (state * 1103515245 + 12345) & 0x7fffffff;
      grid_a[y][x] = (state % 100) < density ? 1 : 0;
    }
  }
}

int main(int argc, char **argv) {
  int gens = 30, g, alive = 0, seed = 11, density = 35;
  width = 36;
  height = 36;
  if (argc > 1) gens = atoi(argv[1]);
  if (argc > 2) seed = atoi(argv[2]);
  if (argc > 3) density = atoi(argv[3]);
  seed_grid(seed, density);
  births = 0;
  deaths = 0;
  for (g = 0; g < gens; g++) {
    if (g % 2 == 0) alive = step(grid_a, grid_b);
    else alive = step(grid_b, grid_a);
    generation++;
  }
  printf("gens=%d alive=%d births=%d deaths=%d hash=%x\n", generation,
         alive, births, deaths,
         gens % 2 == 0 ? grid_hash(grid_a) : grid_hash(grid_b));
  return 0;
}
|}

let program : Bench_prog.t =
  { Bench_prog.name = "life_mini";
    description = "Game of life on a torus (2D stencil frames)";
    analogue = "mpeg";
    source;
    runs =
      [ Bench_prog.run ~argv:[ "30"; "11"; "35" ] ();
        Bench_prog.run ~argv:[ "50"; "3"; "20" ] ();
        Bench_prog.run ~argv:[ "15"; "77"; "60" ] ();
        Bench_prog.run ~argv:[ "40"; "123"; "45" ] () ] }
