(* compress_mini: an LZW-style compressor, the suite's analogue of the
   SPEC92 "compress" utility. Deliberately written with exactly 16
   functions so the selective-optimization experiment (paper Figure 10:
   "The run time of the program is dominated by 4 of its 16 functions")
   can be reproduced one-for-one. The hot four are the hash probe, the
   code emitter, the main compression loop and the output byte sink. *)

let source = {|
#define TABLE_SIZE 4096
#define HASH_SIZE 5003
#define MAX_CODE 4095
#define FIRST_FREE 256

int hash_head[HASH_SIZE];
int hash_next[TABLE_SIZE];
int tab_prefix[TABLE_SIZE];
int tab_suffix[TABLE_SIZE];
int next_code;

char in_buf[20000];
int in_len;
char out_buf[30000];
int out_len;

int bit_acc;
int bit_cnt;
int codes_emitted;
int literals_seen;

/* ---- table management ---- */

void reset_table(void) {
  int i;
  for (i = 0; i < HASH_SIZE; i++) hash_head[i] = -1;
  next_code = FIRST_FREE;
}

void init_table(void) {
  int i;
  for (i = 0; i < TABLE_SIZE; i++) {
    hash_next[i] = -1;
    tab_prefix[i] = -1;
    tab_suffix[i] = -1;
  }
  reset_table();
}

int hash_key(int prefix, int suffix) {
  int h = (prefix << 8) ^ suffix;
  h = h % HASH_SIZE;
  if (h < 0) h = h + HASH_SIZE;
  return h;
}

/* Walk the chain looking for (prefix, suffix); hot function. */
int hash_probe(int prefix, int suffix) {
  int h = hash_key(prefix, suffix);
  int node = hash_head[h];
  while (node != -1) {
    if (tab_prefix[node] == prefix && tab_suffix[node] == suffix)
      return node;
    node = hash_next[node];
  }
  return -1;
}

int table_full(void) {
  return next_code > MAX_CODE;
}

void add_code(int prefix, int suffix) {
  int h, code;
  if (table_full()) return;
  code = next_code;
  next_code++;
  tab_prefix[code] = prefix;
  tab_suffix[code] = suffix;
  h = hash_key(prefix, suffix);
  hash_next[code] = hash_head[h];
  hash_head[h] = code;
}

/* ---- bit-packed output ---- */

void out_byte(int b) {
  if (out_len < 30000) {
    out_buf[out_len] = b & 0xff;
    out_len++;
  }
}

void emit_code(int code) {
  bit_acc = (bit_acc << 12) | (code & 0xfff);
  bit_cnt = bit_cnt + 12;
  codes_emitted++;
  while (bit_cnt >= 8) {
    bit_cnt = bit_cnt - 8;
    out_byte((bit_acc >> bit_cnt) & 0xff);
  }
}

void flush_bits(void) {
  if (bit_cnt > 0) {
    out_byte((bit_acc << (8 - bit_cnt)) & 0xff);
    bit_cnt = 0;
  }
  bit_acc = 0;
}

/* ---- driver ---- */

/* Fetch one input byte into the buffer; returns it or -1. */
int next_byte(int n) {
  int c = getchar();
  if (c == EOF) return -1;
  if (n < 20000) in_buf[n] = c;
  return c & 0xff;
}

int read_all(void) {
  int n = 0;
  while (next_byte(n) >= 0) n++;
  if (n > 20000) n = 20000;
  return n;
}

/* Extend the current prefix by one byte; returns the new prefix code.
   The per-byte heart of the algorithm — hot function. */
int process_byte(int prefix, int suffix) {
  int node;
  literals_seen++;
  node = hash_probe(prefix, suffix);
  if (node != -1) return node;
  emit_code(prefix);
  add_code(prefix, suffix);
  if (table_full()) reset_table();
  return suffix;
}

/* The main LZW loop. */
void compress_buf(void) {
  int i, prefix;
  if (in_len == 0) return;
  prefix = in_buf[0] & 0xff;
  literals_seen++;
  for (i = 1; i < in_len; i++)
    prefix = process_byte(prefix, in_buf[i] & 0xff);
  emit_code(prefix);
}

int checksum(void) {
  int i, h = 5381;
  for (i = 0; i < out_len; i++) {
    h = ((h << 5) + h) ^ (out_buf[i] & 0xff);
    h = h & 0x7fffffff;
  }
  return h;
}

void report(void) {
  int ratio = in_len == 0 ? 100 : (out_len * 100) / in_len;
  printf("in=%d out=%d ratio=%d%% codes=%d lits=%d sum=%d\n",
         in_len, out_len, ratio, codes_emitted,
         literals_seen, checksum());
}

int main(void) {
  init_table();
  bit_acc = 0;
  bit_cnt = 0;
  out_len = 0;
  codes_emitted = 0;
  literals_seen = 0;
  in_len = read_all();
  compress_buf();
  flush_bits();
  report();
  return 0;
}
|}

(* Inputs with different redundancy profiles (highly repetitive, English
   text, binary-ish, alternating) exercise different table behaviours. *)
let make_input kind n =
  let buf = Buffer.create n in
  (match kind with
  | `Repeat ->
    while Buffer.length buf < n do
      Buffer.add_string buf "abababcdcdcd"
    done
  | `Text ->
    while Buffer.length buf < n do
      Buffer.add_string buf
        "the quick brown fox jumps over the lazy dog and the cat sat on the mat. "
    done
  | `Counter ->
    let i = ref 0 in
    while Buffer.length buf < n do
      Buffer.add_string buf (string_of_int !i);
      Buffer.add_char buf ' ';
      incr i
    done
  | `Mixed ->
    let i = ref 0 in
    while Buffer.length buf < n do
      Buffer.add_string buf (if !i mod 3 = 0 then "xyzzy " else "hello world ");
      incr i
    done
  | `Random ->
    (* low-redundancy bytes: the table misses constantly, so the output
       path (emit_code/out_byte) dominates, as with pre-compressed data *)
    let state = ref 123457 in
    while Buffer.length buf < n do
      state := (!state * 1103515245 + 12345) land 0x7FFFFFFF;
      Buffer.add_char buf (Char.chr (32 + (!state mod 95)))
    done);
  Buffer.sub buf 0 n

let program : Bench_prog.t =
  { Bench_prog.name = "compress_mini";
    description = "LZW compression utility (16 functions)";
    analogue = "compress";
    source;
    runs =
      [ Bench_prog.run ~input:(make_input `Repeat 6000) ();
        Bench_prog.run ~input:(make_input `Text 8000) ();
        Bench_prog.run ~input:(make_input `Counter 7000) ();
        Bench_prog.run ~input:(make_input `Mixed 9000) ();
        Bench_prog.run ~input:(make_input `Random 8000) () ] }
