(* Iterative solvers over the CSR Markov system.

   Both solvers target A x = b with A = I - scale*P^T. For the damped
   systems the retry chains produce, A is (weakly) diagonally dominant
   with spectral radius of (I - A) below one, so relaxation converges
   geometrically and each step is O(row) — the asymptotic win over the
   dense O(n^3) elimination. Undamped systems at the edge of validity
   (total outgoing probability >= 1 somewhere) can defeat Gauss-Seidel;
   power iteration on the Neumann series x <- b + (I - A) x is the
   second line of attack, and a genuinely divergent or singular system
   falls through to the dense solver, whose exact (possibly negative)
   solution the estimators' repair logic needs to see.

   [gauss_seidel] is *SCC-ordered*, not plain full sweeps. Row i's
   equation reads exactly the columns in row i, so the dependency graph
   of the system is the CSR itself, and for a CFG or call graph its
   strongly connected components are the loops / recursion cycles — small
   — while the component DAG is everything acyclic. Tarjan's algorithm
   emits SCCs in dependency-completion order (every component a row
   reads from is emitted before it), so solving components in emission
   order means each one relaxes against *final* upstream values:
   singleton components are exact in one relaxation, and a k-node loop
   needs only its own geometric decay, independent of everything
   downstream. Plain sweeps on the same graphs are quadratic — the
   convergence transient grows with the *number* of chained loops
   (measured: sweeps ~ 0.17n on the loop-cascade bench, 19 s at n=10^5)
   because each loop keeps re-exciting every loop after it; SCC
   ordering makes total work O(nnz * per-loop decay), linear in n
   (~20 ms at n=10^5 on the same graph).

   Convergence tolerance: a component is done when no row of it moves
   by more than [epsilon * max(1, ||x||_inf)] in a sweep — the same
   relative-scale epsilon the dense solver uses for its pivot
   threshold, so "converged" here and "non-singular" there mean the
   same tolerance. A non-finite iterate, a solution norm past 1e150
   (geometric blow-up), or a component exhausting its sweep budget all
   abort as [Diverged]. *)

(* Sweep budget per strongly connected component. A graph that is one
   big SCC degrades to classic full-sweep Gauss-Seidel with this cap;
   convergent loops use a tiny fraction (decay 0.9 per sweep needs ~260
   sweeps to reach 1e-12). The cap exists so singular-but-bounded
   components (rho = 1) eventually give up and fall through the solver
   chain. *)
let max_scc_sweeps = 1000

let max_power_iterations = 2000

(* Solution values past this are a geometric blow-up, not a frequency:
   give up before hitting inf/nan so divergence is detected early. *)
let blowup_limit = 1e150

type outcome =
  | Converged of int        (* equivalent full sweeps (row updates / n) *)
  | Diverged                (* blow-up, sweep budget, or bad diagonal *)

let step_small ~epsilon ~delta ~norm = delta <= epsilon *. Float.max 1.0 norm

(* max_i |(A x - b)_i| — one sparse matvec, recorded as a probe so a
   trace shows how tight the accepted solution actually is. *)
let residual (a : Csr.t) (b : float array) (x : float array) : float =
  let r = ref 0.0 in
  for i = 0 to a.Csr.n - 1 do
    let s = ref (a.Csr.diag.(i) *. x.(i)) in
    for k = a.Csr.row_start.(i) to a.Csr.row_start.(i + 1) - 1 do
      s := !s +. (a.Csr.vals.(k) *. x.(a.Csr.cols.(k)))
    done;
    let d = Float.abs (!s -. b.(i)) in
    if d > !r then r := d
  done;
  !r

(* Iterative Tarjan over the row-dependency graph (row i -> each column
   of row i). Writes the nodes into [order] grouped by SCC, components
   in dependency-completion order, with component c occupying
   [order.(bounds.(c)), order.(bounds.(c+1))); returns the component
   count. All state lives in per-domain scratch; the explicit DFS stack
   replaces recursion (a 10^5-block CFG would blow the OCaml stack). *)
let scc_order (a : Csr.t) ~(index : int array) ~(lowlink : int array)
    ~(stack : int array) ~(cursor : int array) ~(queue : int array)
    ~(onstack : int array) ~(order : int array) ~(bounds : int array) : int
    =
  let n = a.Csr.n in
  Array.fill index 0 n (-1);
  Array.fill onstack 0 n 0;
  let next_index = ref 0 in
  let sp = ref 0 in (* DFS stack top (stack/cursor) *)
  let qp = ref 0 in (* Tarjan SCC stack top (queue) *)
  let op = ref 0 in (* next free slot in order *)
  let nscc = ref 0 in
  bounds.(0) <- 0;
  let push v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    queue.(!qp) <- v;
    incr qp;
    onstack.(v) <- 1;
    stack.(!sp) <- v;
    cursor.(v) <- a.Csr.row_start.(v);
    incr sp
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      push root;
      while !sp > 0 do
        let v = stack.(!sp - 1) in
        if cursor.(v) < a.Csr.row_start.(v + 1) then begin
          let w = a.Csr.cols.(cursor.(v)) in
          cursor.(v) <- cursor.(v) + 1;
          if index.(w) = -1 then push w
          else if onstack.(w) = 1 && index.(w) < lowlink.(v) then
            lowlink.(v) <- index.(w)
        end
        else begin
          decr sp;
          if !sp > 0 then begin
            let parent = stack.(!sp - 1) in
            if lowlink.(v) < lowlink.(parent) then
              lowlink.(parent) <- lowlink.(v)
          end;
          if lowlink.(v) = index.(v) then begin
            (* v is an SCC root: everything above it on the SCC stack
               is its component *)
            let w = ref (-1) in
            while !w <> v do
              decr qp;
              w := queue.(!qp);
              onstack.(!w) <- 0;
              order.(!op) <- !w;
              incr op
            done;
            incr nscc;
            bounds.(!nscc) <- !op
          end
        end
      done
    end
  done;
  !nscc

(* SCC-ordered Gauss-Seidel, writing the solution into [x]. Rejects
   systems whose diagonal falls under the dense solver's relative pivot
   threshold — the relaxation division would amplify noise, and the
   dense path handles such systems with pivoting. *)
let gauss_seidel ~(epsilon : float) (a : Csr.t) (b : float array)
    (x : float array) : outcome =
  let n = a.Csr.n in
  if n = 0 then Converged 0
  else begin
    let pivot_floor = epsilon *. Csr.scale_of a in
    let diag_ok = ref true in
    for i = 0 to n - 1 do
      if Float.abs a.Csr.diag.(i) <= pivot_floor then diag_ok := false
    done;
    if not !diag_ok then Diverged
    else begin
      let s = Scratch.get () in
      let order = Scratch.order s n in
      let bounds = Scratch.bounds s (n + 1) in
      let nscc =
        scc_order a ~index:(Scratch.index s n) ~lowlink:(Scratch.lowlink s n)
          ~stack:(Scratch.stack s n) ~cursor:(Scratch.cursor s n)
          ~queue:(Scratch.queue s n) ~onstack:(Scratch.fill s n) ~order
          ~bounds
      in
      Array.fill x 0 n 0.0;
      let norm = ref 0.0 in
      let updates = ref 0 in
      let diverged = ref false in
      (* Relax one row in place against current x; returns the step. *)
      let relax row =
        let sum = ref b.(row) in
        for k = a.Csr.row_start.(row) to a.Csr.row_start.(row + 1) - 1 do
          sum := !sum -. (a.Csr.vals.(k) *. x.(a.Csr.cols.(k)))
        done;
        let xi = !sum /. a.Csr.diag.(row) in
        incr updates;
        if not (Float.is_finite xi) then begin
          diverged := true;
          0.0
        end
        else begin
          let d = Float.abs (xi -. x.(row)) in
          x.(row) <- xi;
          let m = Float.abs xi in
          if m > !norm then norm := m;
          d
        end
      in
      let c = ref 0 in
      while (not !diverged) && !c < nscc do
        let lo = bounds.(!c) and hi = bounds.(!c + 1) in
        if hi - lo = 1 then
          (* acyclic node: all inputs are final, one relaxation is the
             exact solution of this row *)
          ignore (relax order.(lo))
        else begin
          (* a loop / recursion cycle: sweep just this component until
             it is a fixed point; its inputs are already final *)
          let sweeps = ref 0 in
          let settled = ref false in
          while (not !diverged) && (not !settled) && !sweeps < max_scc_sweeps
          do
            incr sweeps;
            let delta = ref 0.0 in
            let i = ref lo in
            while (not !diverged) && !i < hi do
              let d = relax order.(!i) in
              if d > !delta then delta := d;
              incr i
            done;
            if not !diverged then
              if !norm > blowup_limit then diverged := true
              else if step_small ~epsilon ~delta:!delta ~norm:!norm then
                settled := true
          done;
          if not !settled then diverged := true
        end;
        incr c
      done;
      if !diverged then begin
        Obs.Probe.count "linsolve.gs.diverged";
        Diverged
      end
      else begin
        let sweeps = (!updates + n - 1) / n in
        Obs.Probe.observe "linsolve.gs.sweeps" (float_of_int sweeps);
        Obs.Probe.observe "linsolve.gs.relaxations" (float_of_int !updates);
        Obs.Probe.observe "linsolve.gs.sccs" (float_of_int nscc);
        Obs.Probe.observe "linsolve.gs.residual" (residual a b x);
        Converged sweeps
      end
    end
  end

(* Power iteration on the Neumann series: x <- b + (I - A) x, i.e.
   x'_i = b_i + (1 - a_ii) x_i - sum_k vals_k x_{cols_k}. Jacobi-style,
   so it needs the previous iterate intact: the new one is built in the
   per-domain [aux] buffer and blitted back. Converges whenever
   rho(I - A) < 1 even where Gauss-Seidel's diagonal test balks. *)
let power ~(epsilon : float) (a : Csr.t) (b : float array) (x : float array)
    : outcome =
  let n = a.Csr.n in
  let aux = Scratch.aux (Scratch.get ()) n in
  Array.fill x 0 n 0.0;
  let iters = ref 0 in
  let finished = ref None in
  while !finished = None && !iters < max_power_iterations do
    incr iters;
    let delta = ref 0.0 and norm = ref 0.0 in
    let i = ref 0 in
    while !finished = None && !i < n do
      let row = !i in
      let s = ref (b.(row) +. ((1.0 -. a.Csr.diag.(row)) *. x.(row))) in
      for k = a.Csr.row_start.(row) to a.Csr.row_start.(row + 1) - 1 do
        s := !s -. (a.Csr.vals.(k) *. x.(a.Csr.cols.(k)))
      done;
      let xi = !s in
      if not (Float.is_finite xi) then finished := Some Diverged
      else begin
        let d = Float.abs (xi -. x.(row)) in
        if d > !delta then delta := d;
        let m = Float.abs xi in
        if m > !norm then norm := m;
        aux.(row) <- xi
      end;
      incr i
    done;
    if !finished = None then begin
      Array.blit aux 0 x 0 n;
      if !norm > blowup_limit then finished := Some Diverged
      else if step_small ~epsilon ~delta:!delta ~norm:!norm then
        finished := Some (Converged !iters)
    end
  done;
  let out = match !finished with Some o -> o | None -> Diverged in
  (match out with
  | Converged iters ->
      Obs.Probe.observe "linsolve.power.iters" (float_of_int iters);
      Obs.Probe.observe "linsolve.power.residual" (residual a b x)
  | Diverged -> Obs.Probe.count "linsolve.power.diverged");
  out
