(* Branch-prediction miss rates against a measured profile (Figure 2).

   The rate is the fraction of *dynamic* branch executions whose direction
   was mispredicted. Following the paper (section 2), branches whose
   condition constant-folds are predicted but excluded from the score, and
   switch statements are excluded entirely (they are not Tbranch
   terminators, so that exclusion is structural).

   Three predictors are scored:
   - the static "smart" predictor,
   - profiling: the majority direction per branch in a training profile
     (an aggregate of the *other* inputs),
   - the perfect static predictor (PSP): the majority direction in the
     *evaluation* profile itself — the floor for any static scheme. *)

module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Const_fold = Cfront.Const_fold
module Cfg = Cfg_ir.Cfg
module Profile = Cinterp.Profile

type predictor = fn:Cfg.fn -> block:int -> Cfg.branch -> Branch_predictor.prediction

(* Dynamic (mispredicted, total) over all non-constant branches. *)
let tally (p : Cfg.program) (eval_profile : Profile.t)
    (predict : predictor) : float * float =
  let tc = p.Cfg.prog_tc in
  let missed = ref 0.0 and total = ref 0.0 in
  List.iter
    (fun fn ->
      let counters = Profile.fn_counters eval_profile fn.Cfg.fn_name in
      List.iter
        (fun (bid, br) ->
          if not (Const_fold.is_constant_condition tc br.Cfg.br_cond) then begin
            let taken = counters.Profile.branch_taken.(bid) in
            let not_taken = counters.Profile.branch_not_taken.(bid) in
            let executions = taken +. not_taken in
            if executions > 0.0 then begin
              let wrong =
                match predict ~fn ~block:bid br with
                | Branch_predictor.Taken -> not_taken
                | Branch_predictor.NotTaken -> taken
              in
              missed := !missed +. wrong;
              total := !total +. executions
            end
          end)
        (Cfg.branches fn))
    p.Cfg.prog_fns;
  (!missed, !total)

let rate (p : Cfg.program) (eval_profile : Profile.t) (predict : predictor)
    : float =
  let missed, total = tally p eval_profile predict in
  if total = 0.0 then 0.0 else missed /. total

(* The static heuristic predictor. *)
let smart_predictor (p : Cfg.program) : predictor =
  let tc = p.Cfg.prog_tc in
  let usages = Hashtbl.create 16 in
  List.iter
    (fun fn ->
      Hashtbl.replace usages fn.Cfg.fn_name
        (Usage.of_fun tc fn.Cfg.fn_def))
    p.Cfg.prog_fns;
  fun ~fn ~block:_ br ->
    fst (Branch_predictor.predict tc (Hashtbl.find usages fn.Cfg.fn_name) br)

(* Majority direction per branch in a training profile. Branches never
   executed in training fall back to "taken". *)
let majority_predictor (training : Profile.t) : predictor =
 fun ~fn ~block br ->
  ignore br;
  let counters = Profile.fn_counters training fn.Cfg.fn_name in
  let taken = counters.Profile.branch_taken.(block) in
  let not_taken = counters.Profile.branch_not_taken.(block) in
  if taken >= not_taken then Branch_predictor.Taken
  else Branch_predictor.NotTaken

(* Perfect static predictor: majority direction in the evaluation profile
   itself (paper footnote 4: the upper bound on static prediction). *)
let psp_rate (p : Cfg.program) (eval_profile : Profile.t) : float =
  rate p eval_profile (majority_predictor eval_profile)
