lib/suite/prog_sort.ml: Bench_prog
