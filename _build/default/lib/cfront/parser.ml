(* Recursive-descent parser for the C subset.

   Full C89 declarator syntax (including function pointers and abstract
   declarators), the complete expression precedence ladder, and all
   statement forms. Typedef names are tracked during parsing to resolve the
   declaration/expression ambiguity, as in every C compiler. *)

exception Error of string * Token.pos

type state = {
  toks : Lexer.located array;
  mutable idx : int;
  mutable next_id : int;
  typedefs : (string, Ctypes.ty) Hashtbl.t;
  struct_tags : (string, int) Hashtbl.t;
  registry : Ctypes.registry;
  enum_consts : (string, int) Hashtbl.t;
  mutable enum_order : (string * int) list; (* reverse order of definition *)
  file : string;
}

let error st msg =
  let pos =
    if st.idx < Array.length st.toks then st.toks.(st.idx).Lexer.pos
    else Token.dummy_pos
  in
  raise (Error (msg, pos))

let errorf st fmt = Printf.ksprintf (error st) fmt

let peek st = st.toks.(st.idx).Lexer.tok
let peek_pos st = st.toks.(st.idx).Lexer.pos

let peek_ahead st n =
  let i = st.idx + n in
  if i < Array.length st.toks then st.toks.(i).Lexer.tok else Token.EOF

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let accept st tok =
  if peek st = tok then begin advance st; true end else false

let expect st tok =
  if not (accept st tok) then
    errorf st "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek st))

let fresh_id st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let mk_expr st pos enode : Ast.expr = { eid = fresh_id st; epos = pos; enode }
let mk_stmt st pos snode : Ast.stmt = { sid = fresh_id st; spos = pos; snode }

let is_typedef_name st = function
  | Token.IDENT s -> Hashtbl.mem st.typedefs s
  | _ -> false

(* Does the current token start a declaration? *)
let starts_decl st =
  match peek st with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_INT | Token.KW_LONG
  | Token.KW_SHORT | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_SIGNED
  | Token.KW_UNSIGNED | Token.KW_STRUCT | Token.KW_UNION | Token.KW_ENUM
  | Token.KW_TYPEDEF | Token.KW_STATIC | Token.KW_EXTERN | Token.KW_AUTO
  | Token.KW_REGISTER | Token.KW_CONST | Token.KW_VOLATILE -> true
  | Token.IDENT _ as t -> is_typedef_name st t
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Constant expression evaluation (array sizes, enum values, case labels
   are folded fully in Const_fold after typechecking; the parser needs a
   small integer evaluator for sizes and enum initializers). *)

let rec eval_const_int (st : state) (e : Ast.expr) : int =
  let open Ast in
  match e.enode with
  | IntLit n -> n
  | CharLit c -> c
  | Ident name -> begin
    match Hashtbl.find_opt st.enum_consts name with
    | Some v -> v
    | None -> raise (Error ("not a constant: " ^ name, e.epos))
  end
  | Unop (Uneg, a) -> -eval_const_int st a
  | Unop (Uplus, a) -> eval_const_int st a
  | Unop (Ubnot, a) -> lnot (eval_const_int st a)
  | Unop (Unot, a) -> if eval_const_int st a = 0 then 1 else 0
  | Binop (op, a, b) -> begin
    let x = eval_const_int st a and y = eval_const_int st b in
    let bool_ v = if v then 1 else 0 in
    match op with
    | Badd -> x + y | Bsub -> x - y | Bmul -> x * y
    | Bdiv ->
      if y = 0 then raise (Error ("division by zero in constant", e.epos))
      else x / y
    | Bmod ->
      if y = 0 then raise (Error ("division by zero in constant", e.epos))
      else x mod y
    | Bshl -> x lsl y | Bshr -> x asr y
    | Blt -> bool_ (x < y) | Bgt -> bool_ (x > y)
    | Ble -> bool_ (x <= y) | Bge -> bool_ (x >= y)
    | Beq -> bool_ (x = y) | Bne -> bool_ (x <> y)
    | Bband -> x land y | Bbor -> x lor y | Bbxor -> x lxor y
    | Bland -> bool_ (x <> 0 && y <> 0)
    | Blor -> bool_ (x <> 0 || y <> 0)
  end
  | Cond (c, a, b) ->
    if eval_const_int st c <> 0 then eval_const_int st a
    else eval_const_int st b
  | Cast (_, a) -> eval_const_int st a
  | SizeofT t -> Ctypes.size_of st.registry t
  | _ -> raise (Error ("expected integer constant expression", e.epos))

(* ------------------------------------------------------------------ *)
(* Binary operators by precedence level, lowest first. *)

let binary_levels : (Token.t * Ast.binop) list array =
  [| [ (Token.OROR, Ast.Blor) ];
     [ (Token.ANDAND, Ast.Bland) ];
     [ (Token.PIPE, Ast.Bbor) ];
     [ (Token.CARET, Ast.Bbxor) ];
     [ (Token.AMP, Ast.Bband) ];
     [ (Token.EQEQ, Ast.Beq); (Token.NEQ, Ast.Bne) ];
     [ (Token.LT, Ast.Blt); (Token.GT, Ast.Bgt); (Token.LE, Ast.Ble);
       (Token.GE, Ast.Bge) ];
     [ (Token.LSHIFT, Ast.Bshl); (Token.RSHIFT, Ast.Bshr) ];
     [ (Token.PLUS, Ast.Badd); (Token.MINUS, Ast.Bsub) ];
     [ (Token.STAR, Ast.Bmul); (Token.SLASH, Ast.Bdiv);
       (Token.PERCENT, Ast.Bmod) ] |]

(* ------------------------------------------------------------------ *)
(* Declaration specifiers and declarators *)

type specs = {
  base : Ctypes.ty;
  is_typedef : bool;
  is_static : bool;
  is_extern : bool;
}

type decl_shape =
  | Dname of string option
  | Dptr of decl_shape
  | Darr of decl_shape * int option
  | Dfun of decl_shape * (string option * Ctypes.ty) list * bool

let rec ty_of_shape base = function
  | Dname _ -> base
  | Dptr d -> ty_of_shape (Ctypes.Tptr base) d
  | Darr (d, n) -> ty_of_shape (Ctypes.Tarray (base, n)) d
  | Dfun (d, params, varargs) ->
    let params = List.map snd params in
    ty_of_shape (Ctypes.Tfun { ret = base; params; varargs }) d

let rec shape_name = function
  | Dname n -> n
  | Dptr d | Darr (d, _) | Dfun (d, _, _) -> shape_name d

(* If the declarator is of the form [name(params)] (possibly under pointer
   return types), return the components: it is a candidate function
   definition head. *)
let rec as_fun_head = function
  | Dptr d -> as_fun_head d
  | Dfun (Dname (Some name), params, varargs) -> Some (name, params, varargs)
  | _ -> None

let rec parse_specs st : specs =
  let is_typedef = ref false
  and is_static = ref false
  and is_extern = ref false in
  (* Collected simple type keywords *)
  let saw_void = ref false and saw_char = ref false and saw_float = ref false
  and saw_double = ref false and saw_int_like = ref false in
  let base = ref None in
  let set_base t =
    if !base <> None then error st "multiple type specifiers";
    base := Some t
  in
  let continue_ = ref true in
  while !continue_ do
    (match peek st with
    | Token.KW_TYPEDEF -> advance st; is_typedef := true
    | Token.KW_STATIC -> advance st; is_static := true
    | Token.KW_EXTERN -> advance st; is_extern := true
    | Token.KW_AUTO | Token.KW_REGISTER | Token.KW_CONST | Token.KW_VOLATILE ->
      advance st
    | Token.KW_VOID -> advance st; saw_void := true
    | Token.KW_CHAR -> advance st; saw_char := true
    | Token.KW_FLOAT -> advance st; saw_float := true
    | Token.KW_DOUBLE -> advance st; saw_double := true
    | Token.KW_INT | Token.KW_LONG | Token.KW_SHORT | Token.KW_SIGNED
    | Token.KW_UNSIGNED ->
      advance st;
      saw_int_like := true
    | Token.KW_STRUCT -> set_base (parse_struct_spec st)
    | Token.KW_UNION -> error st "union is not supported by this C subset"
    | Token.KW_ENUM -> set_base (parse_enum_spec st)
    | Token.IDENT name
      when Hashtbl.mem st.typedefs name
           && !base = None && not (!saw_void || !saw_char || !saw_float
                                   || !saw_double || !saw_int_like) ->
      advance st;
      set_base (Hashtbl.find st.typedefs name)
    | _ -> continue_ := false)
  done;
  let base =
    match !base with
    | Some t ->
      if !saw_void || !saw_char || !saw_float || !saw_double || !saw_int_like
      then error st "conflicting type specifiers";
      t
    | None ->
      if !saw_void then Ctypes.Tvoid
      else if !saw_char then Ctypes.Tchar
      else if !saw_float || !saw_double then Ctypes.Tdouble
      else Ctypes.Tint (* int/long/short/signed/unsigned, or implicit int *)
  in
  { base; is_typedef = !is_typedef; is_static = !is_static;
    is_extern = !is_extern }

and parse_struct_spec st : Ctypes.ty =
  expect st Token.KW_STRUCT;
  let tag =
    match peek st with
    | Token.IDENT s -> advance st; Some s
    | _ -> None
  in
  let idx =
    match tag with
    | Some tag -> begin
      match Hashtbl.find_opt st.struct_tags tag with
      | Some idx -> idx
      | None ->
        let idx =
          Ctypes.register st.registry
            { Ctypes.str_tag = Some tag; str_fields = None; str_size = 0 }
        in
        Hashtbl.add st.struct_tags tag idx;
        idx
    end
    | None ->
      Ctypes.register st.registry
        { Ctypes.str_tag = None; str_fields = None; str_size = 0 }
  in
  if accept st Token.LBRACE then begin
    let fields = ref [] in
    while peek st <> Token.RBRACE do
      let specs = parse_specs st in
      if specs.is_typedef then error st "typedef inside struct";
      let rec field_loop () =
        let shape = parse_declarator st in
        let name =
          match shape_name shape with
          | Some n -> n
          | None -> error st "struct field needs a name"
        in
        let ty = ty_of_shape specs.base shape in
        fields := (name, ty) :: !fields;
        if accept st Token.COMMA then field_loop ()
      in
      field_loop ();
      expect st Token.SEMI
    done;
    expect st Token.RBRACE;
    (try Ctypes.define_struct st.registry idx (List.rev !fields)
     with Ctypes.Type_error m -> error st m)
  end;
  Ctypes.Tstruct idx

and parse_enum_spec st : Ctypes.ty =
  expect st Token.KW_ENUM;
  (match peek st with Token.IDENT _ -> advance st | _ -> ());
  if accept st Token.LBRACE then begin
    let next = ref 0 in
    let rec enum_loop () =
      match peek st with
      | Token.IDENT name ->
        advance st;
        let value =
          if accept st Token.ASSIGN then begin
            let e = parse_conditional st in
            eval_const_int st e
          end
          else !next
        in
        next := value + 1;
        Hashtbl.replace st.enum_consts name value;
        st.enum_order <- (name, value) :: st.enum_order;
        if accept st Token.COMMA then
          if peek st <> Token.RBRACE then enum_loop ()
      | _ -> error st "expected enumerator name"
    in
    enum_loop ();
    expect st Token.RBRACE
  end;
  Ctypes.Tint

(* declarator := "*" qualifiers declarator | direct_declarator *)
and parse_declarator st : decl_shape =
  if accept st Token.STAR then begin
    while accept st Token.KW_CONST || accept st Token.KW_VOLATILE do () done;
    Dptr (parse_declarator st)
  end
  else parse_direct_declarator st

and parse_direct_declarator st : decl_shape =
  let prefix =
    match peek st with
    | Token.IDENT name -> advance st; Dname (Some name)
    | Token.LPAREN ->
      (* Disambiguate a parenthesized declarator from a parameter-list
         suffix of an omitted name, as in the abstract declarator for a
         function-pointer type. *)
      if starts_decl st
         || peek_ahead st 1 = Token.RPAREN
         ||
         (match peek_ahead st 1 with
         | Token.KW_VOID | Token.KW_CHAR | Token.KW_INT | Token.KW_LONG
         | Token.KW_SHORT | Token.KW_FLOAT | Token.KW_DOUBLE
         | Token.KW_SIGNED | Token.KW_UNSIGNED | Token.KW_STRUCT
         | Token.KW_UNION | Token.KW_ENUM | Token.KW_CONST
         | Token.KW_VOLATILE -> true
         | Token.IDENT s -> Hashtbl.mem st.typedefs s
         | _ -> false)
      then Dname None (* leave "(" for the suffix loop *)
      else begin
        advance st;
        let inner = parse_declarator st in
        expect st Token.RPAREN;
        inner
      end
    | _ -> Dname None (* abstract declarator *)
  in
  let rec suffixes shape =
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let n =
        if peek st = Token.RBRACKET then None
        else Some (eval_const_int st (parse_conditional st))
      in
      expect st Token.RBRACKET;
      suffixes (Darr (shape, n))
    | Token.LPAREN ->
      advance st;
      let params, varargs = parse_params st in
      expect st Token.RPAREN;
      suffixes (Dfun (shape, params, varargs))
    | _ -> shape
  in
  suffixes prefix

(* Parameter list (after the opening paren). Handles (void), (), and a
   trailing "...". Parameter arrays and functions decay to pointers. *)
and parse_params st : (string option * Ctypes.ty) list * bool =
  if peek st = Token.RPAREN then ([], false)
  else if peek st = Token.KW_VOID && peek_ahead st 1 = Token.RPAREN then begin
    advance st;
    ([], false)
  end
  else begin
    let params = ref [] in
    let varargs = ref false in
    let rec loop () =
      if accept st Token.ELLIPSIS then varargs := true
      else begin
        let specs = parse_specs st in
        if specs.is_typedef then error st "typedef in parameter list";
        let shape = parse_declarator st in
        let ty = Ctypes.decay (ty_of_shape specs.base shape) in
        params := (shape_name shape, ty) :: !params;
        if accept st Token.COMMA then loop ()
      end
    in
    loop ();
    (List.rev !params, !varargs)
  end

(* type_name := specs abstract_declarator — used in casts and sizeof *)
and parse_type_name st : Ctypes.ty =
  let specs = parse_specs st in
  if specs.is_typedef then error st "typedef in type name";
  let shape = parse_declarator st in
  if shape_name shape <> None then error st "unexpected name in type";
  ty_of_shape specs.base shape

(* ------------------------------------------------------------------ *)
(* Expressions *)

and parse_expr st : Ast.expr =
  let pos = peek_pos st in
  let e = parse_assignment st in
  if peek st = Token.COMMA then begin
    advance st;
    let rest = parse_expr st in
    mk_expr st pos (Ast.Comma (e, rest))
  end
  else e

and parse_assignment st : Ast.expr =
  let pos = peek_pos st in
  let lhs = parse_conditional st in
  let assign op =
    advance st;
    let rhs = parse_assignment st in
    mk_expr st pos (Ast.Assign (op, lhs, rhs))
  in
  match peek st with
  | Token.ASSIGN -> assign Ast.Aplain
  | Token.PLUS_ASSIGN -> assign Ast.Aadd
  | Token.MINUS_ASSIGN -> assign Ast.Asub
  | Token.STAR_ASSIGN -> assign Ast.Amul
  | Token.SLASH_ASSIGN -> assign Ast.Adiv
  | Token.PERCENT_ASSIGN -> assign Ast.Amod
  | Token.AMP_ASSIGN -> assign Ast.Aband
  | Token.PIPE_ASSIGN -> assign Ast.Abor
  | Token.CARET_ASSIGN -> assign Ast.Abxor
  | Token.LSHIFT_ASSIGN -> assign Ast.Ashl
  | Token.RSHIFT_ASSIGN -> assign Ast.Ashr
  | _ -> lhs

and parse_conditional st : Ast.expr =
  let pos = peek_pos st in
  let c = parse_binary st 0 in
  if accept st Token.QUESTION then begin
    let a = parse_expr st in
    expect st Token.COLON;
    let b = parse_conditional st in
    mk_expr st pos (Ast.Cond (c, a, b))
  end
  else c

(* Binary operators by precedence level, lowest first. *)
and parse_binary st level : Ast.expr =
  if level >= Array.length binary_levels then parse_cast st
  else begin
    let pos = peek_pos st in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue_ = ref true in
    while !continue_ do
      match List.assoc_opt (peek st) binary_levels.(level) with
      | Some op ->
        advance st;
        let rhs = parse_binary st (level + 1) in
        lhs := mk_expr st pos (Ast.Binop (op, !lhs, rhs))
      | None -> continue_ := false
    done;
    !lhs
  end
and parse_cast st : Ast.expr =
  let pos = peek_pos st in
  if peek st = Token.LPAREN
     && (match peek_ahead st 1 with
        | Token.KW_VOID | Token.KW_CHAR | Token.KW_INT | Token.KW_LONG
        | Token.KW_SHORT | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_SIGNED
        | Token.KW_UNSIGNED | Token.KW_STRUCT | Token.KW_UNION | Token.KW_ENUM
        | Token.KW_CONST | Token.KW_VOLATILE -> true
        | Token.IDENT s -> Hashtbl.mem st.typedefs s
        | _ -> false)
  then begin
    advance st;
    let ty = parse_type_name st in
    expect st Token.RPAREN;
    let e = parse_cast st in
    mk_expr st pos (Ast.Cast (ty, e))
  end
  else parse_unary st

and parse_unary st : Ast.expr =
  let pos = peek_pos st in
  let unop u =
    advance st;
    let e = parse_cast st in
    mk_expr st pos (Ast.Unop (u, e))
  in
  match peek st with
  | Token.MINUS -> unop Ast.Uneg
  | Token.PLUS -> unop Ast.Uplus
  | Token.BANG -> unop Ast.Unot
  | Token.TILDE -> unop Ast.Ubnot
  | Token.STAR -> unop Ast.Uderef
  | Token.AMP -> unop Ast.Uaddr
  | Token.PLUSPLUS ->
    advance st;
    let e = parse_unary st in
    mk_expr st pos (Ast.PreIncr e)
  | Token.MINUSMINUS ->
    advance st;
    let e = parse_unary st in
    mk_expr st pos (Ast.PreDecr e)
  | Token.KW_SIZEOF ->
    advance st;
    if peek st = Token.LPAREN
       && (match peek_ahead st 1 with
          | Token.KW_VOID | Token.KW_CHAR | Token.KW_INT | Token.KW_LONG
          | Token.KW_SHORT | Token.KW_FLOAT | Token.KW_DOUBLE
          | Token.KW_SIGNED | Token.KW_UNSIGNED | Token.KW_STRUCT
          | Token.KW_UNION | Token.KW_ENUM | Token.KW_CONST
          | Token.KW_VOLATILE -> true
          | Token.IDENT s -> Hashtbl.mem st.typedefs s
          | _ -> false)
    then begin
      advance st; (* consume "(" *)
      let ty = parse_type_name st in
      expect st Token.RPAREN;
      mk_expr st pos (Ast.SizeofT ty)
    end
    else begin
      let e = parse_unary st in
      mk_expr st pos (Ast.SizeofE e)
    end
  | _ -> parse_postfix st

and parse_postfix st : Ast.expr =
  let pos = peek_pos st in
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      e := mk_expr st pos (Ast.Index (!e, idx))
    | Token.LPAREN ->
      advance st;
      let args = ref [] in
      if peek st <> Token.RPAREN then begin
        let rec loop () =
          args := parse_assignment st :: !args;
          if accept st Token.COMMA then loop ()
        in
        loop ()
      end;
      expect st Token.RPAREN;
      e := mk_expr st pos (Ast.Call (!e, List.rev !args))
    | Token.DOT ->
      advance st;
      (match peek st with
      | Token.IDENT f ->
        advance st;
        e := mk_expr st pos (Ast.Field (!e, f))
      | _ -> error st "expected field name after '.'")
    | Token.ARROW ->
      advance st;
      (match peek st with
      | Token.IDENT f ->
        advance st;
        e := mk_expr st pos (Ast.Arrow (!e, f))
      | _ -> error st "expected field name after '->'")
    | Token.PLUSPLUS ->
      advance st;
      e := mk_expr st pos (Ast.PostIncr !e)
    | Token.MINUSMINUS ->
      advance st;
      e := mk_expr st pos (Ast.PostDecr !e)
    | _ -> continue_ := false
  done;
  !e

and parse_primary st : Ast.expr =
  let pos = peek_pos st in
  match peek st with
  | Token.INT_LIT n -> advance st; mk_expr st pos (Ast.IntLit n)
  | Token.FLOAT_LIT f -> advance st; mk_expr st pos (Ast.FloatLit f)
  | Token.CHAR_LIT c -> advance st; mk_expr st pos (Ast.CharLit c)
  | Token.STRING_LIT s -> advance st; mk_expr st pos (Ast.StringLit s)
  | Token.IDENT name -> advance st; mk_expr st pos (Ast.Ident name)
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | t -> errorf st "unexpected token %s in expression" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec parse_stmt st : Ast.stmt =
  let pos = peek_pos st in
  match peek st with
  | Token.LBRACE -> parse_block st
  | Token.SEMI -> advance st; mk_stmt st pos Ast.Snull
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let then_ = parse_stmt st in
    let else_ = if accept st Token.KW_ELSE then Some (parse_stmt st) else None in
    mk_stmt st pos (Ast.Sif (cond, then_, else_))
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let body = parse_stmt st in
    mk_stmt st pos (Ast.Swhile (cond, body))
  | Token.KW_DO ->
    advance st;
    let body = parse_stmt st in
    expect st Token.KW_WHILE;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    mk_stmt st pos (Ast.Sdo (body, cond))
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if peek st = Token.SEMI then Ast.Fnone
      else if starts_decl st then Ast.Fdecl (parse_decl_list st)
      else Ast.Fexpr (parse_expr st)
    in
    (match init with
    | Ast.Fdecl _ -> () (* decl list consumed its semicolon *)
    | _ -> expect st Token.SEMI);
    let cond = if peek st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    let step = if peek st = Token.RPAREN then None else Some (parse_expr st) in
    expect st Token.RPAREN;
    let body = parse_stmt st in
    mk_stmt st pos (Ast.Sfor (init, cond, step, body))
  | Token.KW_SWITCH ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expr st in
    expect st Token.RPAREN;
    let body = parse_stmt st in
    mk_stmt st pos (Ast.Sswitch (e, body))
  | Token.KW_CASE ->
    advance st;
    let e = parse_conditional st in
    expect st Token.COLON;
    let body = parse_stmt st in
    mk_stmt st pos (Ast.Scase (e, body))
  | Token.KW_DEFAULT ->
    advance st;
    expect st Token.COLON;
    let body = parse_stmt st in
    mk_stmt st pos (Ast.Sdefault body)
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    mk_stmt st pos Ast.Sbreak
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    mk_stmt st pos Ast.Scontinue
  | Token.KW_GOTO ->
    advance st;
    (match peek st with
    | Token.IDENT label ->
      advance st;
      expect st Token.SEMI;
      mk_stmt st pos (Ast.Sgoto label)
    | _ -> error st "expected label after goto")
  | Token.KW_RETURN ->
    advance st;
    let e = if peek st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    mk_stmt st pos (Ast.Sreturn e)
  | Token.IDENT label when peek_ahead st 1 = Token.COLON
                           && not (Hashtbl.mem st.typedefs label) ->
    advance st;
    advance st;
    let body = parse_stmt st in
    mk_stmt st pos (Ast.Slabel (label, body))
  | _ ->
    let e = parse_expr st in
    expect st Token.SEMI;
    mk_stmt st pos (Ast.Sexpr e)

and parse_block st : Ast.stmt =
  let pos = peek_pos st in
  expect st Token.LBRACE;
  let items = ref [] in
  while peek st <> Token.RBRACE do
    if starts_decl st then begin
      let decls = parse_decl_list st in
      List.iter (fun d -> items := Ast.Bdecl d :: !items) decls
    end
    else items := Ast.Bstmt (parse_stmt st) :: !items
  done;
  expect st Token.RBRACE;
  mk_stmt st pos (Ast.Sblock (List.rev !items))

(* Parse a declaration (specs + init declarators + ';'). Typedefs are
   registered and yield an empty list. *)
and parse_decl_list st : Ast.decl list =
  let pos = peek_pos st in
  let specs = parse_specs st in
  if peek st = Token.SEMI then begin
    (* bare "struct s { ... };" or "enum { ... };" *)
    advance st;
    []
  end
  else begin
    let decls = ref [] in
    let rec loop () =
      let dpos = peek_pos st in
      let shape = parse_declarator st in
      let name =
        match shape_name shape with
        | Some n -> n
        | None -> error st "declaration needs a name"
      in
      let ty = ty_of_shape specs.base shape in
      if specs.is_typedef then Hashtbl.replace st.typedefs name ty
      else begin
        let init =
          if accept st Token.ASSIGN then Some (parse_init st) else None
        in
        (* Complete unsized arrays from their initializer length. *)
        let ty =
          match (ty, init) with
          | Ctypes.Tarray (t, None), Some (Ast.Ilist l) ->
            Ctypes.Tarray (t, Some (List.length l))
          | Ctypes.Tarray (Ctypes.Tchar, None), Some (Ast.Iexpr e) -> begin
            match e.Ast.enode with
            | Ast.StringLit s -> Ctypes.Tarray (Ctypes.Tchar, Some (String.length s + 1))
            | _ -> ty
          end
          | _ -> ty
        in
        decls :=
          { Ast.d_id = fresh_id st; d_pos = dpos; d_name = name; d_ty = ty;
            d_init = init; d_static = specs.is_static;
            d_extern = specs.is_extern }
          :: !decls
      end;
      if accept st Token.COMMA then loop ()
    in
    loop ();
    expect st Token.SEMI;
    ignore pos;
    List.rev !decls
  end

and parse_init st : Ast.init =
  if accept st Token.LBRACE then begin
    let items = ref [] in
    if peek st <> Token.RBRACE then begin
      let rec loop () =
        items := parse_init st :: !items;
        if accept st Token.COMMA then
          if peek st <> Token.RBRACE then loop ()
      in
      loop ()
    end;
    expect st Token.RBRACE;
    Ast.Ilist (List.rev !items)
  end
  else Ast.Iexpr (parse_assignment st)

(* ------------------------------------------------------------------ *)
(* Top level *)

let parse_external st : Ast.global list =
  let specs = parse_specs st in
  if peek st = Token.SEMI then begin
    advance st;
    []
  end
  else begin
    let first_pos = peek_pos st in
    let shape = parse_declarator st in
    match as_fun_head shape with
    | Some (name, params, varargs) when peek st = Token.LBRACE ->
      if specs.is_typedef then error st "typedef with function body";
      let ret =
        (* "T *f(...)": the pointers wrapping the Dfun node apply to the
           return type, innermost first. *)
        let rec nptrs acc = function
          | Dptr d -> nptrs (acc + 1) d
          | Dfun (Dname _, _, _) -> acc
          | _ -> error st "unsupported function declarator"
        in
        let rec wrap n t = if n = 0 then t else wrap (n - 1) (Ctypes.Tptr t) in
        wrap (nptrs 0 shape) specs.base
      in
      let params =
        List.map
          (fun (n, t) ->
            match n with
            | Some n -> (n, t)
            | None -> error st "function definition parameter needs a name")
          params
      in
      let body = parse_block st in
      [ Ast.Gfun
          { f_id = fresh_id st; f_pos = first_pos; f_name = name; f_ret = ret;
            f_params = params; f_varargs = varargs;
            f_static = specs.is_static; f_body = body } ]
    | _ ->
      (* A (possibly multi-declarator) global declaration. Reuse the logic
         of parse_decl_list but we already consumed the first declarator. *)
      let globals = ref [] in
      let emit shape dpos =
        let name =
          match shape_name shape with
          | Some n -> n
          | None -> error st "declaration needs a name"
        in
        let ty = ty_of_shape specs.base shape in
        if specs.is_typedef then Hashtbl.replace st.typedefs name ty
        else begin
          let init =
            if accept st Token.ASSIGN then Some (parse_init st) else None
          in
          let ty =
            match (ty, init) with
            | Ctypes.Tarray (t, None), Some (Ast.Ilist l) ->
              Ctypes.Tarray (t, Some (List.length l))
            | Ctypes.Tarray (Ctypes.Tchar, None), Some (Ast.Iexpr e) -> begin
              match e.Ast.enode with
              | Ast.StringLit s ->
                Ctypes.Tarray (Ctypes.Tchar, Some (String.length s + 1))
              | _ -> ty
            end
            | _ -> ty
          in
          let d =
            { Ast.d_id = fresh_id st; d_pos = dpos; d_name = name; d_ty = ty;
              d_init = init; d_static = specs.is_static;
              d_extern = specs.is_extern }
          in
          let g =
            if Ctypes.is_function ty then Ast.Gfundecl d else Ast.Gvar d
          in
          globals := g :: !globals
        end
      in
      emit shape first_pos;
      while accept st Token.COMMA do
        let dpos = peek_pos st in
        let shape = parse_declarator st in
        emit shape dpos
      done;
      expect st Token.SEMI;
      List.rev !globals
  end

(* Parse a complete translation unit from preprocessed source text. *)
let parse_tunit ~file (toks : Lexer.located list) : Ast.tunit =
  let st =
    { toks = Array.of_list toks; idx = 0; next_id = 0;
      typedefs = Hashtbl.create 16; struct_tags = Hashtbl.create 16;
      registry = Ctypes.create_registry (); enum_consts = Hashtbl.create 16;
      enum_order = []; file }
  in
  let globals = ref [] in
  while peek st <> Token.EOF do
    let gs = parse_external st in
    globals := List.rev_append gs !globals
  done;
  { Ast.globals = List.rev !globals; structs = st.registry;
    enum_consts = List.rev st.enum_order; node_count = st.next_id; file }

(* Convenience: preprocess, lex and parse a source string. [defines] are
   seeded into the preprocessor; NULL and EOF are always available. *)
let parse_string ?(defines = []) ~file src : Ast.tunit =
  let defines = [ ("NULL", "0"); ("EOF", "(-1)") ] @ defines in
  let pre = Preproc.process ~defines src in
  let toks = Lexer.tokenize ~file pre in
  parse_tunit ~file toks
