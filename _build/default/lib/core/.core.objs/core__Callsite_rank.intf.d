lib/core/callsite_rank.mli: Cfg_ir Cinterp
