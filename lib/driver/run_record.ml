(* The persisted run record: everything one evaluation run produced, in
   one JSON document — environment metadata, every typed [Score] record,
   which programs degraded (and at which stage), the fault log, and a
   top-level timing summary. [bin record] writes one; [bin diff]
   compares one against the committed BASELINE.json.

   The schema (version 1):

   { "schema": 1, "kind": "run-record",
     "meta":     { "git_rev": "...", "ocaml_version": "...", ... },
     "scores":   [ { "experiment", "program", "estimator",
                     "metric", "param", "value" } ... ],
     "degraded": [ { "program", "stage" } ... ],
     "faults":   [ { "stage", "subject", "detail", "exn",
                     "recovery" } ... ],
     "timings":  [ { "label", "count", "total_ms" } ... ] }

   Scores are sorted by [Score.key]; degraded/faults/timings are in
   their deterministic source orders — the document is byte-stable for
   a given run (modulo meta and timings). Backtraces never go in the
   record: they are machine- and build-specific noise for a document
   meant to be diffed. *)

module Json = Obs.Json

type timing = { t_label : string; t_count : int; t_total_ms : float }

type t = {
  r_meta : (string * string) list;
  r_scores : Score.t list;           (* sorted by [Score.key] *)
  r_degraded : (string * string) list;  (* program, stage *)
  r_faults : Fault.t list;           (* backtraces cleared *)
  r_timings : timing list;
}

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Collection *)

(* Aggregate the probe spans into per-label totals, keeping only the
   run-level labels (the root, context warming, one per experiment):
   the record wants a coarse timing summary, not the solver's
   micro-spans. *)
let timing_summary () : timing list =
  let keep label =
    label = "run" || label = "context.warm"
    || String.length label > 11 && String.sub label 0 11 = "experiment."
  in
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (s : Obs.Probe.span) ->
      if keep s.Obs.Probe.label then begin
        let ms =
          Int64.to_float (Int64.sub s.Obs.Probe.stop_ns s.Obs.Probe.start_ns)
          /. 1e6
        in
        let n, total =
          Option.value ~default:(0, 0.0)
            (Hashtbl.find_opt tbl s.Obs.Probe.label)
        in
        Hashtbl.replace tbl s.Obs.Probe.label (n + 1, total +. ms)
      end)
    (Obs.Probe.spans ());
  Hashtbl.fold
    (fun label (n, total) acc ->
      { t_label = label; t_count = n; t_total_ms = total } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.t_label b.t_label)

let strip_backtrace (f : Fault.t) : Fault.t = { f with Fault.f_backtrace = "" }

(* Snapshot the process-wide observability state into a record. Call
   after the run: the score store, the context fault cells and the
   probe buffers must already hold the run's results. [meta] fields are
   appended to the standard environment block.

   [degraded] overrides the degraded-program list for runs that do not
   go through [Context] (the corpus driver keeps its own); the default
   reads the suite context — note that touches [Context.degraded],
   which warms (compiles + profiles) the whole 16-program suite if the
   caller has not already. *)
let collect ?(degraded : (string * string) list option)
    ~(meta : (string * string) list) () : t =
  { r_meta = Obs.Envmeta.common () @ meta;
    r_scores = Score.all ();
    r_degraded =
      (match degraded with
      | Some d -> d
      | None ->
        List.map
          (fun (name, (f : Fault.t)) ->
            (name, Fault.stage_to_string f.Fault.f_stage))
          (Context.degraded ()));
    r_faults = List.map strip_backtrace (Fault.sorted ());
    r_timings = timing_summary () }

(* ------------------------------------------------------------------ *)
(* Encoding *)

let score_to_json (s : Score.t) : Json.t =
  Json.Obj
    [ ("experiment", Json.Str s.Score.s_experiment);
      ("program", Json.Str s.Score.s_program);
      ("estimator", Json.Str s.Score.s_estimator);
      ("metric", Json.Str (Score.metric_to_string s.Score.s_metric));
      ("param", Json.Num s.Score.s_param);
      ("value", Json.Num s.Score.s_value) ]

let fault_to_json (f : Fault.t) : Json.t =
  Json.Obj
    [ ("stage", Json.Str (Fault.stage_to_string f.Fault.f_stage));
      ("subject", Json.Str f.Fault.f_subject);
      ("detail", Json.Str f.Fault.f_detail);
      ("exn", Json.Str f.Fault.f_exn);
      ("recovery", Json.Str f.Fault.f_recovery) ]

let to_json (r : t) : Json.t =
  Json.Obj
    [ ("schema", Json.Num (float_of_int schema_version));
      ("kind", Json.Str "run-record");
      ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.r_meta));
      ("scores", Json.Arr (List.map score_to_json r.r_scores));
      ("degraded",
       Json.Arr
         (List.map
            (fun (program, stage) ->
              Json.Obj
                [ ("program", Json.Str program); ("stage", Json.Str stage) ])
            r.r_degraded));
      ("faults", Json.Arr (List.map fault_to_json r.r_faults));
      ("timings",
       Json.Arr
         (List.map
            (fun tm ->
              Json.Obj
                [ ("label", Json.Str tm.t_label);
                  ("count", Json.Num (float_of_int tm.t_count));
                  ("total_ms", Json.Num tm.t_total_ms) ])
            r.r_timings)) ]

let encode (r : t) : string = Json.to_string (to_json r)

(* ------------------------------------------------------------------ *)
(* Decoding *)

let ( let* ) = Result.bind

let field (name : string) (j : Json.t) : (Json.t, string) result =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field (name : string) (j : Json.t) : (string, string) result =
  let* v = field name j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" name)

let num_field (name : string) (j : Json.t) : (float, string) result =
  let* v = field name j in
  match Json.to_num v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S is not a number" name)

let list_field (name : string) (j : Json.t) : (Json.t list, string) result =
  let* v = field name j in
  match Json.to_list v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "field %S is not an array" name)

let rec map_result (f : 'a -> ('b, string) result) :
    'a list -> ('b list, string) result = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let score_of_json (j : Json.t) : (Score.t, string) result =
  let* s_experiment = str_field "experiment" j in
  let* s_program = str_field "program" j in
  let* s_estimator = str_field "estimator" j in
  let* metric_s = str_field "metric" j in
  let* s_param = num_field "param" j in
  let* s_value = num_field "value" j in
  match Score.metric_of_string metric_s with
  | None -> Error (Printf.sprintf "unknown metric %S" metric_s)
  | Some s_metric ->
    Ok { Score.s_experiment; s_program; s_estimator; s_metric; s_param;
         s_value }

let fault_of_json (j : Json.t) : (Fault.t, string) result =
  let* stage_s = str_field "stage" j in
  let* f_subject = str_field "subject" j in
  let* f_detail = str_field "detail" j in
  let* f_exn = str_field "exn" j in
  let* f_recovery = str_field "recovery" j in
  match Fault.stage_of_string stage_s with
  | None -> Error (Printf.sprintf "unknown fault stage %S" stage_s)
  | Some f_stage ->
    Ok { Fault.f_stage; f_subject; f_detail; f_exn; f_backtrace = "";
         f_recovery }

let timing_of_json (j : Json.t) : (timing, string) result =
  let* t_label = str_field "label" j in
  let* count = num_field "count" j in
  let* t_total_ms = num_field "total_ms" j in
  Ok { t_label; t_count = int_of_float count; t_total_ms }

let of_json (j : Json.t) : (t, string) result =
  let* schema = num_field "schema" j in
  let* kind = str_field "kind" j in
  if kind <> "run-record" then
    Error (Printf.sprintf "not a run record (kind %S)" kind)
  else if int_of_float schema <> schema_version then
    Error (Printf.sprintf "unsupported schema version %g" schema)
  else
    let* meta_j = field "meta" j in
    let* r_meta =
      match meta_j with
      | Json.Obj fields ->
        map_result
          (fun (k, v) ->
            match Json.to_str v with
            | Some s -> Ok (k, s)
            | None -> Error (Printf.sprintf "meta field %S is not a string" k))
          fields
      | _ -> Error "field \"meta\" is not an object"
    in
    let* scores_j = list_field "scores" j in
    let* r_scores = map_result score_of_json scores_j in
    let* degraded_j = list_field "degraded" j in
    let* r_degraded =
      map_result
        (fun d ->
          let* program = str_field "program" d in
          let* stage = str_field "stage" d in
          Ok (program, stage))
        degraded_j
    in
    let* faults_j = list_field "faults" j in
    let* r_faults = map_result fault_of_json faults_j in
    let* timings_j = list_field "timings" j in
    let* r_timings = map_result timing_of_json timings_j in
    Ok { r_meta; r_scores; r_degraded; r_faults; r_timings }

let decode (s : string) : (t, string) result =
  let* j = Json.parse s in
  of_json j

let read_file (path : string) : (t, string) result =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Result.map_error
      (fun e -> Printf.sprintf "%s: %s" path e)
      (decode contents)

let write_file (path : string) (r : t) : unit =
  let oc = open_out_bin path in
  output_string oc (encode r);
  close_out oc
