(* hash_mini: separate-chaining hash table doing word frequency counting
   over stdin, plus a resize. Pointer chasing, string hashing with
   overflow wraparound, and skewed bucket-chain lengths — the gcc-like
   "symbol table" inner loops. *)

let source = {|
#define INITIAL_BUCKETS 64
#define MAX_WORD 32

struct entry {
  char word[MAX_WORD];
  int count;
  struct entry *next;
};

struct entry **buckets;
int n_buckets;
int n_entries;
int total_words;
int collisions;
int resizes;

int hash_string(char *s) {
  int h = 5381;
  while (*s) {
    h = ((h << 5) + h) ^ *s;
    s++;
  }
  return h & 0x7fffffff;
}

struct entry *bucket_find(struct entry *chain, char *word) {
  while (chain != NULL) {
    if (strcmp(chain->word, word) == 0) return chain;
    collisions++;
    chain = chain->next;
  }
  return NULL;
}

void bucket_push(struct entry **table, int size, struct entry *e) {
  int h = hash_string(e->word) % size;
  e->next = table[h];
  table[h] = e;
}

void resize_table(void) {
  struct entry **fresh;
  struct entry *e, *next;
  int i, new_size = n_buckets * 2;
  fresh = (struct entry **)calloc(new_size, sizeof(struct entry *));
  if (fresh == NULL) { printf("oom\n"); exit(1); }
  for (i = 0; i < n_buckets; i++) {
    e = buckets[i];
    while (e != NULL) {
      next = e->next;
      bucket_push(fresh, new_size, e);
      e = next;
    }
  }
  free(buckets);
  buckets = fresh;
  n_buckets = new_size;
  resizes++;
}

void add_word(char *word) {
  struct entry *e;
  int h = hash_string(word) % n_buckets;
  e = bucket_find(buckets[h], word);
  if (e != NULL) {
    e->count++;
    return;
  }
  e = (struct entry *)malloc(sizeof(struct entry));
  if (e == NULL) { printf("oom\n"); exit(1); }
  strncpy(e->word, word, MAX_WORD - 1);
  e->count = 1;
  e->next = buckets[h];
  buckets[h] = e;
  n_entries++;
  if (n_entries > n_buckets * 2) resize_table();
}

/* Longest chain and the most frequent word. */
int longest_chain(void) {
  int i, len, best = 0;
  struct entry *e;
  for (i = 0; i < n_buckets; i++) {
    len = 0;
    for (e = buckets[i]; e != NULL; e = e->next) len++;
    if (len > best) best = len;
  }
  return best;
}

int max_count(void) {
  int i, best = 0;
  struct entry *e;
  for (i = 0; i < n_buckets; i++) {
    for (e = buckets[i]; e != NULL; e = e->next) {
      if (e->count > best) best = e->count;
    }
  }
  return best;
}

char word_buf[MAX_WORD];

int read_word(void) {
  int c, n = 0;
  c = getchar();
  while (c == ' ' || c == '\n' || c == '\t' || c == '\r') c = getchar();
  if (c == EOF) return 0;
  while (c != ' ' && c != '\n' && c != '\t' && c != '\r' && c != EOF) {
    if (n < MAX_WORD - 1) {
      word_buf[n] = c;
      n++;
    }
    c = getchar();
  }
  word_buf[n] = 0;
  return 1;
}

int main(void) {
  n_buckets = INITIAL_BUCKETS;
  buckets = (struct entry **)calloc(n_buckets, sizeof(struct entry *));
  if (buckets == NULL) { printf("oom\n"); return 1; }
  total_words = 0;
  while (read_word()) {
    total_words++;
    add_word(word_buf);
  }
  printf("words=%d distinct=%d buckets=%d chains<=%d top=%d coll=%d resizes=%d\n",
         total_words, n_entries, n_buckets, longest_chain(), max_count(),
         collisions, resizes);
  return 0;
}
|}

let words_skewed =
  let buf = Buffer.create 4096 in
  for i = 0 to 800 do
    (* Zipf-ish: word k appears ~ 800/k times *)
    let k = 1 + (i mod 40) in
    if i mod k = 0 then Buffer.add_string buf (Printf.sprintf "common%d " k)
    else Buffer.add_string buf (Printf.sprintf "rare%d " i)
  done;
  Buffer.contents buf

let words_uniform =
  String.concat " " (List.init 700 (fun i -> Printf.sprintf "w%d" (i mod 350)))

let words_few =
  String.concat " " (List.init 900 (fun i -> Printf.sprintf "k%d" (i mod 9)))

let words_unique =
  String.concat " " (List.init 500 (fun i -> Printf.sprintf "unique%d" i))

let program : Bench_prog.t =
  { Bench_prog.name = "hash_mini";
    description = "Chained hash table word-frequency counter";
    analogue = "gcc (symbol-table loops)";
    source;
    runs =
      [ Bench_prog.run ~input:words_skewed ();
        Bench_prog.run ~input:words_uniform ();
        Bench_prog.run ~input:words_few ();
        Bench_prog.run ~input:words_unique () ] }
