(* Dominator analysis and natural-loop detection on a function CFG.

   Used by the structural (CFG-only) frequency estimator: the paper's AST
   walk knows loop nesting from the syntax; an executable-level tool in
   the style of Ball and Larus has to recover it from back edges. This
   module computes immediate dominators with the standard iterative
   algorithm, identifies back edges (u -> v with v dominating u), builds
   each back edge's natural loop, and reports per-block loop depth. *)

(* Immediate dominators (entry's idom is itself). Iterative algorithm of
   Cooper, Harvey and Kennedy over a reverse-postorder numbering. *)
let idoms (fn : Cfg.fn) : int array =
  let n = Cfg.n_blocks fn in
  let entry = fn.Cfg.fn_entry in
  (* reverse postorder *)
  let order = Array.make n (-1) in
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (Cfg.successors fn.Cfg.fn_blocks.(b).Cfg.b_term);
      post := b :: !post
    end
  in
  dfs entry;
  let rpo = !post in
  List.iteri (fun i b -> order.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while order.(!a) > order.(!b) do
        a := idom.(!a)
      done;
      while order.(!b) > order.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          let preds =
            List.filter
              (fun p -> idom.(p) >= 0)
              fn.Cfg.fn_blocks.(b).Cfg.b_preds
          in
          match preds with
          | [] -> ()
          | first :: rest ->
            let fresh = List.fold_left intersect first rest in
            if idom.(b) <> fresh then begin
              idom.(b) <- fresh;
              changed := true
            end
        end)
      rpo
  done;
  idom

(* Does [a] dominate [b]? *)
let dominates (idom : int array) (a : int) (b : int) : bool =
  let rec walk b =
    if a = b then true
    else if idom.(b) = b || idom.(b) < 0 then false
    else walk idom.(b)
  in
  walk b

(* Back edges: u -> v where v dominates u. *)
let back_edges (fn : Cfg.fn) (idom : int array) : (int * int) list =
  Array.to_list fn.Cfg.fn_blocks
  |> List.concat_map (fun (b : Cfg.block) ->
       Cfg.successors b.Cfg.b_term
       |> List.filter_map (fun succ ->
            if idom.(succ) >= 0 && dominates idom succ b.Cfg.b_id then
              Some (b.Cfg.b_id, succ)
            else None))

(* The natural loop of back edge (tail, header): header plus every node
   that reaches tail without passing through header. *)
let natural_loop (fn : Cfg.fn) ((tail, header) : int * int) : bool array =
  let n = Cfg.n_blocks fn in
  let in_loop = Array.make n false in
  in_loop.(header) <- true;
  let rec pull b =
    if not in_loop.(b) then begin
      in_loop.(b) <- true;
      List.iter pull fn.Cfg.fn_blocks.(b).Cfg.b_preds
    end
  in
  pull tail;
  in_loop

type loops = {
  idom : int array;
  headers : int list;           (* distinct loop headers *)
  depth : int array;            (* nesting depth per block (0 = no loop) *)
  header_of : int array;        (* innermost header per block, -1 if none *)
}

let analyze (fn : Cfg.fn) : loops =
  let n = Cfg.n_blocks fn in
  let idom = idoms fn in
  let edges = back_edges fn idom in
  (* merge natural loops that share a header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (tail, header) ->
      let body = natural_loop fn (tail, header) in
      match Hashtbl.find_opt by_header header with
      | Some existing ->
        Array.iteri (fun i v -> if v then existing.(i) <- true) body
      | None -> Hashtbl.replace by_header header body)
    edges;
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) by_header [] in
  let headers = List.sort compare headers in
  let depth = Array.make n 0 in
  let header_of = Array.make n (-1) in
  (* depth = number of loops containing the block; innermost header = the
     containing header with the smallest loop (ties broken arbitrarily) *)
  let sizes = Hashtbl.create 8 in
  Hashtbl.iter
    (fun h body ->
      Hashtbl.replace sizes h
        (Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 body))
    by_header;
  for b = 0 to n - 1 do
    let best = ref (-1) in
    Hashtbl.iter
      (fun h body ->
        if body.(b) then begin
          depth.(b) <- depth.(b) + 1;
          match !best with
          | -1 -> best := h
          | cur ->
            if Hashtbl.find sizes h < Hashtbl.find sizes cur then best := h
        end)
      by_header;
    header_of.(b) <- !best
  done;
  { idom; headers; depth; header_of }
