examples/pointer_heavy.mli:
