(* alvinn_mini: a small fully-connected neural network trained by
   back-propagation on synthetic data — the analogue of SPEC's alvinn.
   The paper singles it out: "values for alvinn are uniformly low
   (0.23%), because its only branches are for loops that iterate many
   times". This program has essentially no conditional control flow
   besides its loop nests, so the loop heuristic alone should predict it
   almost perfectly. *)

let source = {|
#define N_IN 48
#define N_HID 24
#define N_OUT 8

double w_ih[N_IN][N_HID];
double w_ho[N_HID][N_OUT];
double hid[N_HID];
double out[N_OUT];
double delta_o[N_OUT];
double delta_h[N_HID];
double inputs[N_IN];
double targets[N_OUT];

/* logistic activation via exp() */
double sigmoid(double x) {
  return 1.0 / (1.0 + exp(-x));
}

void init_weights(int seed) {
  int i, j, state = seed;
  for (i = 0; i < N_IN; i++) {
    for (j = 0; j < N_HID; j++) {
      state = (state * 1103515245 + 12345) & 0x7fffffff;
      w_ih[i][j] = (double)(state % 200 - 100) / 500.0;
    }
  }
  for (i = 0; i < N_HID; i++) {
    for (j = 0; j < N_OUT; j++) {
      state = (state * 1103515245 + 12345) & 0x7fffffff;
      w_ho[i][j] = (double)(state % 200 - 100) / 500.0;
    }
  }
}

/* Synthetic pattern k: a smooth function of the input index. */
void make_pattern(int k) {
  int i;
  for (i = 0; i < N_IN; i++)
    inputs[i] = sigmoid((double)((i + k) % N_IN) / 4.0 - 2.0);
  for (i = 0; i < N_OUT; i++)
    targets[i] = ((k >> i) & 1) ? 0.9 : 0.1;
}

void forward(void) {
  int i, j;
  double acc;
  for (j = 0; j < N_HID; j++) {
    acc = 0.0;
    for (i = 0; i < N_IN; i++) acc += inputs[i] * w_ih[i][j];
    hid[j] = sigmoid(acc);
  }
  for (j = 0; j < N_OUT; j++) {
    acc = 0.0;
    for (i = 0; i < N_HID; i++) acc += hid[i] * w_ho[i][j];
    out[j] = sigmoid(acc);
  }
}

double backward(double rate) {
  int i, j;
  double err = 0.0, diff, acc;
  for (j = 0; j < N_OUT; j++) {
    diff = targets[j] - out[j];
    err += diff * diff;
    delta_o[j] = diff * out[j] * (1.0 - out[j]);
  }
  for (i = 0; i < N_HID; i++) {
    acc = 0.0;
    for (j = 0; j < N_OUT; j++) acc += delta_o[j] * w_ho[i][j];
    delta_h[i] = acc * hid[i] * (1.0 - hid[i]);
  }
  for (j = 0; j < N_OUT; j++)
    for (i = 0; i < N_HID; i++)
      w_ho[i][j] += rate * delta_o[j] * hid[i];
  for (j = 0; j < N_HID; j++)
    for (i = 0; i < N_IN; i++)
      w_ih[i][j] += rate * delta_h[j] * inputs[i];
  return err;
}

int main(int argc, char **argv) {
  int epochs = 20, patterns = 12, e, k, seed = 3;
  double err = 0.0;
  if (argc > 1) epochs = atoi(argv[1]);
  if (argc > 2) seed = atoi(argv[2]);
  init_weights(seed);
  for (e = 0; e < epochs; e++) {
    err = 0.0;
    for (k = 0; k < patterns; k++) {
      make_pattern(k);
      forward();
      err += backward(1.2);
    }
  }
  printf("epochs=%d err=%.5f out0=%.4f\n", epochs, err, out[0]);
  return 0;
}
|}

let program : Bench_prog.t =
  { Bench_prog.name = "alvinn_mini";
    description = "Back-propagation neural network training";
    analogue = "alvinn";
    source;
    runs =
      [ Bench_prog.run ~argv:[ "20"; "3" ] ();
        Bench_prog.run ~argv:[ "30"; "9" ] ();
        Bench_prog.run ~argv:[ "12"; "27" ] ();
        Bench_prog.run ~argv:[ "25"; "1" ] () ] }
