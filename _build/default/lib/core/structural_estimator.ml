(* Structural (CFG-only) frequency estimator — the executable-level
   counterpart the paper contrasts its AST-based techniques with (Ball
   and Larus "identify idioms in executable code"; the paper works "at
   the level of the abstract syntax" instead).

   This estimator sees no syntax at all: it recovers loops from back
   edges via dominators and assigns each block the frequency
   iterations^depth, where depth is its natural-loop nesting depth. It
   is the natural baseline for measuring what the AST adds. *)

module Cfg = Cfg_ir.Cfg
module Dominance = Cfg_ir.Dominance

(* Relative block frequencies from loop nesting alone. *)
let block_freqs (fn : Cfg.fn) : float array =
  let loops = Dominance.analyze fn in
  let k = Loop_model.standard_iterations () in
  Array.map (fun d -> k ** float_of_int d) loops.Dominance.depth

(* Loop headers execute once more than their bodies (the test that
   fails); refine the flat power rule so a header at depth d counts as
   k^(d-1) * (k+... ) — we keep the paper-simple variant: headers get the
   body frequency plus one extra entry per enclosing iteration. *)
let block_freqs_refined (fn : Cfg.fn) : float array =
  let loops = Dominance.analyze fn in
  let k = Loop_model.standard_iterations () in
  Array.mapi
    (fun b depth ->
      let is_header = List.mem b loops.Dominance.headers in
      if is_header then
        (* the test runs once more than the body per entry *)
        (k ** float_of_int (depth - 1)) *. (k +. 1.0) |> max 1.0
      else k ** float_of_int depth)
    loops.Dominance.depth
