lib/cinterp/builtins.ml: Buffer Char Float List Memory Option Printf String Value
