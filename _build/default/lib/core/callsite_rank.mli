(** Global call-site frequency estimation (paper section 5.3): a site's
    estimated absolute frequency is its local block frequency times the
    estimated invocation count of the containing function. Calls through
    pointers are omitted, as they cannot be inlined. *)

module Cfg = Cfg_ir.Cfg

(** [estimate prog ~intra ~inter] pairs every direct call site with its
    estimated absolute frequency, in {!Cfg.direct_sites} order. *)
val estimate :
  Cfg.program ->
  intra:(string -> float array) ->
  inter:(string -> float) ->
  (Cfg.call_site * float) list

(** Measured call-site counts from a profile, same order. *)
val actual :
  Cfg.program -> Cinterp.Profile.t -> (Cfg.call_site * float) list

(** Human-readable label, e.g. ["insert->new_node@B1"]. *)
val describe : Cfg.call_site -> string
