lib/suite/prog_strlib.ml: Bench_prog List Printf String
