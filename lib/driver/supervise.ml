(* The supervised sharded worker pool behind [serve --workers N].

   The parent forks N workers at startup; each worker holds one shard
   of the incremental store and speaks a trivially simple line protocol
   over its socketpair: the parent writes one request line, the worker
   writes back exactly one response line. Requests are routed by a
   stable hash of their key (the program name), so every program's
   cache entries, [scores] history and [invalidate] requests land on
   the same worker for the life of the pool.

   Supervision. A worker death is detected at the two points it can
   manifest — the write of a request (EPIPE) or the read of its reply
   (EOF) — and handled by reaping the corpse, sleeping an exponential
   backoff with deterministic jitter, forking a replacement, and
   replaying the in-flight request exactly once. A request whose replay
   also dies comes back as [Lost]: the caller turns that into a typed
   worker-lost fault response, and the pool keeps serving other keys on
   the fresh worker. Deterministic chaos ([--chaos SEED] arming the
   ["serve.worker-kill"] point) kills by key, so the replay of a
   chaos-killed request dies again and surfaces as exactly one [Lost]
   per doomed key at any worker count — reproducibly.

   Crash-loop circuit breaker: [max_consecutive_crashes] deaths with no
   intervening successful reply mark the shard broken; its requests
   fail fast as [Lost] without burning fork/backoff cycles. A reply
   resets the count. Parent-initiated deadline kills (SIGKILL after
   [deadline_s] of silence) do not count toward the breaker — a slow
   request is not a crash loop.

   Fork safety. [Unix.fork] must not duplicate a running domain pool,
   so [start] must be called before anything triggers [Parallel]'s lazy
   pool creation. The sharded serve path never fans out in-process,
   which guarantees this by construction. *)

type worker = {
  w_shard : int;
  mutable w_pid : int;
  mutable w_fd : Unix.file_descr;  (* parent end of the socketpair *)
  w_buf : Buffer.t;                (* reply bytes, possibly mid-line *)
  mutable w_alive : bool;
  mutable w_crashes : int;         (* consecutive, reset on a reply *)
  mutable w_broken : bool;         (* circuit breaker tripped *)
  mutable w_restarts : int;        (* lifetime respawns of this shard *)
}

type t = {
  p_workers : worker array;
  p_init : shard:int -> unit;
  p_finalize : shard:int -> unit;
  p_handler : string -> string;
  p_deadline_s : float option;     (* hard per-request deadline *)
  p_max_crashes : int;
  mutable p_restarts : int;
  mutable p_lost : int;
}

type outcome =
  | Reply of string        (* the worker's response line *)
  | Deadline of float      (* killed after this many seconds of silence *)
  | Lost of string         (* died twice (or breaker open): detail text *)

let size (t : t) = Array.length t.p_workers
let restarts (t : t) = t.p_restarts
let lost (t : t) = t.p_lost

let alive (t : t) =
  Array.fold_left (fun n w -> if w.w_alive then n + 1 else n) 0 t.p_workers

let pids (t : t) =
  Array.to_list (Array.map (fun w -> w.w_pid) t.p_workers)

(* Per-shard health, for the [metrics] verb: restart and breaker state
   the summed pool counters cannot attribute to a shard. *)
type shard_state = {
  ss_shard : int;
  ss_alive : bool;
  ss_crashes : int;     (* consecutive, toward the breaker *)
  ss_broken : bool;
  ss_restarts : int;
}

let shard_states (t : t) : shard_state list =
  Array.to_list
    (Array.map
       (fun w ->
         { ss_shard = w.w_shard; ss_alive = w.w_alive;
           ss_crashes = w.w_crashes; ss_broken = w.w_broken;
           ss_restarts = w.w_restarts })
       t.p_workers)

(* Stable request routing: depends only on the key string, never on
   pool state, so a restarted daemon shards identically. *)
let shard_of (t : t) (key : string) : int =
  Hashtbl.hash key mod Array.length t.p_workers

(* ------------------------------------------------------------------ *)
(* Worker side. *)

let worker_main (t : t) ~(shard : int) (fd : Unix.file_descr) : 'a =
  (* The parent coordinates shutdown by closing our pipe; terminal
     signals delivered to the whole process group must not beat the
     final snapshot out of us. *)
  Sys.set_signal Sys.sigterm Sys.Signal_ignore;
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try t.p_init ~shard
   with e ->
     prerr_endline
       (Printf.sprintf "serve: worker %d init failed: %s" shard
          (Printexc.to_string e));
     flush stderr;
     (* [_exit], here and below: a forked child must never flush the
        channel buffers it inherited from the parent (duplicated
        output) nor run the parent's at_exit hooks. *)
     Unix._exit 1);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
         let resp = t.p_handler line in
         output_string oc resp;
         output_char oc '\n';
         flush oc;
         loop ()
     in
     loop ()
   with _ -> ());
  (try t.p_finalize ~shard with _ -> ());
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Parent side: lifecycle. *)

let spawn (t : t) (w : worker) : unit =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  match Unix.fork () with
  | 0 ->
    Unix.close parent_fd;
    (* Drop inherited parent-ends of sibling pipes: a copy held here
       would keep a sibling's pipe open after the parent closes it,
       and the sibling would never see EOF at drain. *)
    Array.iter
      (fun (o : worker) ->
        if o.w_shard <> w.w_shard && o.w_alive then
          try Unix.close o.w_fd with Unix.Unix_error _ -> ())
      t.p_workers;
    worker_main t ~shard:w.w_shard child_fd
  | pid ->
    Unix.close child_fd;
    w.w_pid <- pid;
    w.w_fd <- parent_fd;
    w.w_alive <- true;
    Buffer.clear w.w_buf

let reap (w : worker) : unit =
  try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ()

(* Exponential backoff with deterministic jitter: the delay depends
   only on (shard, crash count), so chaos runs reproduce. *)
let backoff_delay (w : worker) : float =
  let n = max 1 w.w_crashes in
  let base = 0.02 *. (2.0 ** float_of_int (min 5 (n - 1))) in
  let jitter =
    float_of_int (Hashtbl.hash (w.w_shard, n) mod 1000) /. 4000.0
  in
  Float.min 1.0 (base *. (1.0 +. jitter))

(* A worker died (crash) or was killed for a deadline ([crash:false]).
   Reap it and either trip the breaker or restart after backoff. *)
let handle_death (t : t) (w : worker) ~(crash : bool) : unit =
  w.w_alive <- false;
  (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
  reap w;
  if crash then begin
    w.w_crashes <- w.w_crashes + 1;
    Obs.Probe.count "serve.worker_death"
  end;
  if crash && w.w_crashes >= t.p_max_crashes then w.w_broken <- true
  else begin
    if crash then Unix.sleepf (backoff_delay w);
    t.p_restarts <- t.p_restarts + 1;
    w.w_restarts <- w.w_restarts + 1;
    Obs.Probe.count "serve.worker_restart";
    spawn t w
  end

let start ~(workers : int) ?(deadline_s : float option)
    ?(max_consecutive_crashes = 5) ~(init : shard:int -> unit)
    ~(finalize : shard:int -> unit) ~(handler : string -> string) () : t =
  if workers < 1 then invalid_arg "Supervise.start: workers < 1";
  (* EPIPE on a dead worker's pipe must surface as an error code, not a
     process-killing signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t =
    { p_workers =
        Array.init workers (fun shard ->
            { w_shard = shard; w_pid = 0; w_fd = Unix.stdin;
              w_buf = Buffer.create 4096; w_alive = false; w_crashes = 0;
              w_broken = false; w_restarts = 0 });
      p_init = init;
      p_finalize = finalize;
      p_handler = handler;
      p_deadline_s = deadline_s;
      p_max_crashes = max_consecutive_crashes;
      p_restarts = 0;
      p_lost = 0 }
  in
  Array.iter (fun w -> spawn t w) t.p_workers;
  t

(* Close every pipe (workers see EOF, finalize their shard and exit)
   and wait for them — the blocking wait IS the journal flush barrier
   of a graceful drain. *)
let stop (t : t) : unit =
  Array.iter
    (fun w ->
      if w.w_alive then begin
        (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
        reap w;
        w.w_alive <- false
      end)
    t.p_workers

(* ------------------------------------------------------------------ *)
(* Parent side: requests. *)

let take_line (buf : Buffer.t) : string option =
  let s = Buffer.contents buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear buf;
    Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let send (w : worker) (line : string) : bool =
  let b = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then true
    else
      match Unix.write w.w_fd b off (len - off) with
      | n -> go (off + n)
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        false
  in
  go 0

type pending = {
  pd_slot : int;
  pd_key : string;
  pd_line : string;
  mutable pd_replayed : bool;
}

let circuit_msg (w : worker) : string =
  Printf.sprintf
    "shard %d circuit breaker open after %d consecutive crashes" w.w_shard
    w.w_crashes

(* Run a set of requests, each pinned to a shard, multiplexing across
   workers: every shard serves its queue in lockstep (one in-flight
   request) while the parent selects over all in-flight pipes, so
   distinct shards make progress concurrently. Returns one outcome per
   slot, in completion order, with the slot's wall-clock seconds from
   fan-out start to completion — queue wait included, which is what the
   client experienced. *)
let run_requests_timed (t : t) (items : (int * int * string * string) list) :
    (int * outcome * float) list =
  let t0 = Unix.gettimeofday () in
  let n = Array.length t.p_workers in
  let queues = Array.make n [] in
  List.iter
    (fun (slot, shard, key, line) ->
      queues.(shard) <-
        { pd_slot = slot; pd_key = key; pd_line = line; pd_replayed = false }
        :: queues.(shard))
    items;
  let queues = Array.map (fun q -> ref (List.rev q)) queues in
  let in_flight : (pending * float) option array = Array.make n None in
  let results = ref [] in
  let outstanding = ref (List.length items) in
  let finish (pd : pending) (o : outcome) : unit =
    results := (pd.pd_slot, o, Unix.gettimeofday () -. t0) :: !results;
    decr outstanding
  in
  let deadline_abs () =
    match t.p_deadline_s with
    | None -> infinity
    | Some d -> Unix.gettimeofday () +. d
  in
  let lost (pd : pending) (detail : string) : unit =
    t.p_lost <- t.p_lost + 1;
    Obs.Probe.count "serve.worker_lost";
    finish pd (Lost detail)
  in
  (* Death of shard [i] while [pd] was (being) sent: restart and replay
     once; a second death is a loss. *)
  let death (i : int) (pd : pending) : unit =
    let w = t.p_workers.(i) in
    in_flight.(i) <- None;
    handle_death t w ~crash:true;
    if w.w_broken then lost pd (circuit_msg w)
    else if pd.pd_replayed then
      lost pd
        (Printf.sprintf "shard %d worker died twice on key %S" i pd.pd_key)
    else begin
      pd.pd_replayed <- true;
      queues.(i) := pd :: !(queues.(i))
    end
  in
  let dispatch () =
    Array.iteri
      (fun i w ->
        if in_flight.(i) = None then
          match !(queues.(i)) with
          | [] -> ()
          | pd :: rest ->
            queues.(i) := rest;
            if w.w_broken then lost pd (circuit_msg w)
            else begin
              if not w.w_alive then spawn t w;
              if send w pd.pd_line then
                in_flight.(i) <- Some (pd, deadline_abs ())
              else death i pd
            end)
      t.p_workers
  in
  let chunk = Bytes.create 65536 in
  while !outstanding > 0 do
    dispatch ();
    let fds =
      Array.to_list
        (Array.map (fun w -> w.w_fd) t.p_workers)
      |> List.filteri (fun i _ -> in_flight.(i) <> None)
    in
    if fds <> [] then begin
      let timeout =
        Array.fold_left
          (fun acc slot ->
            match slot with
            | Some (_, dl) -> Float.min acc dl
            | None -> acc)
          infinity in_flight
      in
      let timeout =
        if timeout = infinity then -1.0
        else Float.max 0.0 (timeout -. Unix.gettimeofday ())
      in
      let readable =
        match Unix.select fds [] [] timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          match
            Array.to_list t.p_workers
            |> List.find_opt (fun w -> w.w_alive && w.w_fd = fd)
          with
          | None -> ()
          | Some w ->
            let i = w.w_shard in
            (match in_flight.(i) with
            | None -> ()
            | Some (pd, _) ->
              let nread =
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | n -> n
                | exception
                    Unix.Unix_error
                      ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                  0
              in
              if nread = 0 then death i pd
              else begin
                Buffer.add_subbytes w.w_buf chunk 0 nread;
                match take_line w.w_buf with
                | None -> ()
                | Some line ->
                  w.w_crashes <- 0;
                  in_flight.(i) <- None;
                  finish pd (Reply line)
              end))
        readable;
      (* Deadline sweep: anything silent past its mark is killed and
         restarted; no replay — the request itself is the suspect. *)
      let now = Unix.gettimeofday () in
      Array.iteri
        (fun i slot ->
          match slot with
          | Some (pd, dl) when now >= dl ->
            let w = t.p_workers.(i) in
            (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
            in_flight.(i) <- None;
            handle_death t w ~crash:false;
            Obs.Probe.count "serve.deadline_kill";
            finish pd
              (Deadline (Option.value ~default:0.0 t.p_deadline_s))
          | _ -> ())
        in_flight
    end
  done;
  !results

let run_requests (t : t) (items : (int * int * string * string) list) :
    (int * outcome) list =
  List.map (fun (slot, o, _) -> (slot, o)) (run_requests_timed t items)

let request_many_timed (t : t) (reqs : (int * string * string) list) :
    (int * outcome * float) list =
  run_requests_timed t
    (List.map (fun (slot, key, line) -> (slot, shard_of t key, key, line)) reqs)

let request_many (t : t) (reqs : (int * string * string) list) :
    (int * outcome) list =
  List.map (fun (slot, o, _) -> (slot, o)) (request_many_timed t reqs)

let request (t : t) ~(key : string) (line : string) : outcome =
  match request_many t [ (0, key, line) ] with
  | [ (_, o) ] -> o
  | _ -> assert false

(* One request to every shard (control ops with no routing key: stats
   aggregation, store-wide invalidate). *)
let broadcast (t : t) (line : string) : (int * outcome) list =
  run_requests t
    (List.init (Array.length t.p_workers) (fun i -> (i, i, "*", line)))
  |> List.sort compare
