lib/core/loop_model.mli:
