(* Coverage for the smaller substrate modules: the memory model, the
   usage (def/use) analysis, the pretty printer, graphviz output, and
   printf-format corner cases in the builtin library. *)

open Cfront
module Memory = Cinterp.Memory
module Value = Cinterp.Value
module Builtins = Cinterp.Builtins

(* --- memory ----------------------------------------------------------- *)

let test_memory_basics () =
  let m = Memory.create () in
  let p = Memory.alloc m 4 ~tag:"quad" in
  Memory.store m p (Value.Vint 11);
  Memory.store m (Memory.offset p 3) (Value.Vint 44);
  Alcotest.(check bool) "load back" true
    (Memory.load m p = Value.Vint 11);
  Alcotest.(check bool) "offset load" true
    (Memory.load m (Memory.offset p 3) = Value.Vint 44);
  Alcotest.(check int) "block size" 4 (Memory.size_of_block m p)

let expect_mem_error f =
  match f () with
  | exception Value.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a memory error"

let test_memory_errors () =
  let m = Memory.create () in
  let p = Memory.alloc m 2 ~tag:"pair" in
  expect_mem_error (fun () -> Memory.load m (Memory.offset p 2));
  expect_mem_error (fun () -> Memory.load m (Memory.offset p (-1)));
  expect_mem_error (fun () -> Memory.store m (Memory.offset p 5) (Value.Vint 0));
  Memory.free m p;
  expect_mem_error (fun () -> Memory.load m p);
  (* double free is also a use of a dead block *)
  expect_mem_error (fun () -> Memory.free m p);
  (* interior free *)
  let q = Memory.alloc m 3 ~tag:"trio" in
  expect_mem_error (fun () -> Memory.free m (Memory.offset q 1))

let test_memory_strings () =
  let m = Memory.create () in
  let p = Memory.alloc m 16 ~tag:"str" in
  Memory.write_cstring m p "hello";
  Alcotest.(check string) "roundtrip" "hello" (Memory.read_cstring m p);
  Alcotest.(check string) "suffix" "llo"
    (Memory.read_cstring m (Memory.offset p 2));
  Memory.fill m ~dst:p 16 (Value.Vint 0);
  Alcotest.(check string) "after fill" "" (Memory.read_cstring m p)

let test_memory_blit () =
  let m = Memory.create () in
  let a = Memory.alloc m 4 ~tag:"a" and b = Memory.alloc m 4 ~tag:"b" in
  for i = 0 to 3 do
    Memory.store m (Memory.offset a i) (Value.Vint (i * i))
  done;
  Memory.blit m ~src:a ~dst:b 4;
  for i = 0 to 3 do
    Alcotest.(check bool) "copied" true
      (Memory.load m (Memory.offset b i) = Value.Vint (i * i))
  done

(* --- value ------------------------------------------------------------ *)

let test_value_wrapping () =
  Alcotest.(check int) "wrap32 positive" (-2147483648)
    (Value.wrap32 2147483648);
  Alcotest.(check int) "wrap32 id" 12345 (Value.wrap32 12345);
  Alcotest.(check int) "wrap8 high" (-1) (Value.wrap8 255);
  Alcotest.(check int) "wrap8 id" 100 (Value.wrap8 100)

let test_value_equality () =
  let p = { Value.blk = 1; off = 2 } in
  Alcotest.(check bool) "ptr self" true
    (Value.equal_values (Value.Vptr p) (Value.Vptr p));
  Alcotest.(check bool) "ptr vs null" false
    (Value.equal_values (Value.Vptr p) (Value.Vint 0));
  Alcotest.(check bool) "null vs null" true
    (Value.equal_values (Value.Vint 0) (Value.Vint 0));
  Alcotest.(check bool) "int float cross" true
    (Value.equal_values (Value.Vint 2) (Value.Vfloat 2.0))

(* --- usage ------------------------------------------------------------ *)

let fundef_of src name =
  let tu = Parser.parse_string ~file:"t.c" src in
  let tc = Typecheck.check tu in
  let f =
    List.find_map
      (function
        | Ast.Gfun f when f.Ast.f_name = name -> Some f
        | _ -> None)
      tu.Ast.globals
    |> Option.get
  in
  (tc, f)

let test_usage_writes () =
  let tc, f =
    fundef_of
      "int g; int f(int x) { int y = 0; y = x; g = 1; x++; return y; }" "f"
  in
  let writes = Usage.writes_of_stmt tc f.Ast.f_body in
  let has k = List.mem k writes in
  Alcotest.(check bool) "writes y" true (has (Usage.Vlocal 1));
  Alcotest.(check bool) "writes g" true (has (Usage.Vglobal "g"));
  Alcotest.(check bool) "writes x via ++" true (has (Usage.Vlocal 0))

let test_usage_pointer_writes_ignored () =
  let tc, f = fundef_of "void f(int *p) { *p = 1; p[2] = 3; }" "f" in
  let writes = Usage.writes_of_stmt tc f.Ast.f_body in
  (* stores through pointers hit unknown objects, and indexing a pointer
     parameter is a store through it — but the paper's heuristic only
     needs direct variable writes, so p itself must not be "written" *)
  Alcotest.(check bool) "p not written" true
    (not (List.mem (Usage.Vlocal 0) writes))

let test_usage_read_outside () =
  let tc, f =
    fundef_of
      "int f(int x) { int r = 0; if (x) { r = 1; } return r; }" "f"
  in
  let usage = Usage.of_fun tc f in
  (* find the if statement *)
  let if_stmt = ref None in
  Ast.iter_stmt f.Ast.f_body
    ~on_stmt:(fun s ->
      match s.Ast.snode with Ast.Sif _ -> if_stmt := Some s | _ -> ())
    ~on_expr:(fun _ -> ());
  let s = Option.get !if_stmt in
  Alcotest.(check bool) "r read outside the if" true
    (Usage.read_outside usage s (Usage.Vlocal 1));
  Alcotest.(check bool) "x not read outside" false
    (Usage.read_outside usage s (Usage.Vlocal 0))

(* --- pretty ------------------------------------------------------------ *)

let test_pretty_roundtrip_structure () =
  let tc, f =
    fundef_of
      "int f(int a, int b) { if (a < b && b > 0) return a * (b + 1); return b; }"
      "f"
  in
  ignore tc;
  let tree = Pretty.fundef_tree f in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and hl = String.length tree in
        let rec go i =
          i + nl <= hl && (String.sub tree i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true found)
    [ "int f(int a, int b)"; "if ("; "return b;"; "&&" ]

let test_pretty_expr_precedence_parens () =
  let tc, f = fundef_of "int f(int a) { return a * (a + 1); }" "f" in
  ignore tc;
  let text = Pretty.fundef_tree f in
  (* the sub-expression must keep its parentheses when printed *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "parenthesized" true (contains "(a + 1)" text)

(* --- dot output -------------------------------------------------------- *)

let test_dot_output () =
  let tu =
    Parser.parse_string ~file:"t.c"
      "int f(int x) { if (x) return 1; return 0; } int main(void) { return f(2); }"
  in
  let tc = Typecheck.check tu in
  let prog = Cfg_ir.Build.build tc in
  let fn = Option.get (Cfg_ir.Cfg.find_fn prog "f") in
  let dot = Cfg_ir.Dot.fn_to_dot fn in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  let g = Cfg_ir.Callgraph.build prog in
  let cg = Cfg_ir.Dot.callgraph_to_dot g in
  Alcotest.(check bool) "callgraph nodes" true (String.length cg > 20)

(* --- builtin formatting corners ---------------------------------------- *)

let run_main body =
  let src = Printf.sprintf "int main(void) { %s }" body in
  let tu = Parser.parse_string ~file:"t.c" src in
  let tc = Typecheck.check tu in
  let prog = Cfg_ir.Build.build tc in
  (Cinterp.Eval.run prog).Cinterp.Eval.stdout_text

let test_printf_corners () =
  Alcotest.(check string) "null %s" "(null)"
    (run_main {|printf("%s", (char *)NULL); return 0;|});
  Alcotest.(check string) "long modifier ignored" "7"
    (run_main {|printf("%ld", 7); return 0;|});
  Alcotest.(check string) "char zero pads" "0041"
    (run_main {|printf("%04x", 65); return 0;|})

let test_string_builtin_corners () =
  Alcotest.(check string) "strncpy pads" "ab|3"
    (run_main
       {|char b[8]; int i, zeros = 0;
         memset(b, 'z', 7); b[7] = 0;
         strncpy(b, "ab", 5);
         for (i = 0; i < 7; i++) if (b[i] == 0) zeros++;
         printf("%s|%d", b, zeros);
         return 0;|});
  Alcotest.(check string) "strchr not found" "no"
    (run_main
       {|if (strchr("abc", 'x') == NULL) printf("no"); else printf("yes");
         return 0;|});
  Alcotest.(check string) "realloc keeps contents" "42"
    (run_main
       {|int *p = (int *)malloc(2); p[0] = 42;
         p = (int *)realloc(p, 8);
         printf("%d", p[0]); return 0;|})

let suite =
  [ Alcotest.test_case "memory basics" `Quick test_memory_basics;
    Alcotest.test_case "memory errors" `Quick test_memory_errors;
    Alcotest.test_case "memory strings" `Quick test_memory_strings;
    Alcotest.test_case "memory blit" `Quick test_memory_blit;
    Alcotest.test_case "value wrapping" `Quick test_value_wrapping;
    Alcotest.test_case "value equality" `Quick test_value_equality;
    Alcotest.test_case "usage writes" `Quick test_usage_writes;
    Alcotest.test_case "pointer writes ignored" `Quick
      test_usage_pointer_writes_ignored;
    Alcotest.test_case "read outside" `Quick test_usage_read_outside;
    Alcotest.test_case "pretty structure" `Quick test_pretty_roundtrip_structure;
    Alcotest.test_case "pretty parens" `Quick test_pretty_expr_precedence_parens;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "printf corners" `Quick test_printf_corners;
    Alcotest.test_case "string builtin corners" `Quick
      test_string_builtin_corners ]
