(** Low-level observability probes: spans and counters.

    This is the dependency-free recording layer every library in the tree
    can link against (the analysis passes cannot depend on [Driver], which
    sits above them). [Driver.Trace] adds rendering, JSON export and the
    command-line integration on top.

    Recording is off by default and every probe is a single atomic load
    plus a branch when disabled, so instrumented hot paths (the linear
    solver, the cache) cost nothing in normal runs.

    Thread model: spans are recorded into per-domain buffers (no
    contention on the hot path) and merged on demand, sorted by span id —
    never by completion order — so the merged stream is stable for a
    given execution structure. Counters live in one mutex-protected
    table; their merges are commutative sums, so recording order cannot
    be observed. Snapshots ({!spans}, {!counters}) and {!reset} are meant
    to be taken between parallel regions, when no task is recording. *)

(** {1 Master switch} *)

val set_enabled : bool -> unit
(** Turn recording on or off (process-wide). *)

val enabled : unit -> bool
(** Whether probes currently record. *)

val reset : unit -> unit
(** Drop all recorded spans and counters. Call between parallel
    regions only. *)

val reset_spans : unit -> unit
(** Drop recorded spans only, keeping counters and gauges. A
    long-running daemon calls this per batch to bound span-buffer
    memory without losing its cumulative counters — the [metrics]
    verb reports since-startup totals. Span ids keep counting up
    (they are not reset), so ids stay unique across batches. *)

val now_ns : unit -> int64
(** The monotonic clock probes time spans with — exposed so other
    telemetry (histograms, the serve request timer) shares one
    timebase. *)

(** {1 Spans} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span label f] runs [f], recording a monotonic-clock timed span
    around it when enabled. Spans nest: a span opened while another is
    running on the same domain records it as its parent. Exceptions
    propagate and still close the span. *)

val current_span : unit -> int
(** The id of the innermost open span on this domain, or [-1]. Used to
    hand a parent to work that executes on another domain. *)

val with_parent : int -> (unit -> 'a) -> 'a
(** [with_parent id f] runs [f] with [id] as the ambient parent span, so
    spans opened by [f] on this domain attach below the span that
    scheduled the work (see [Driver.Parallel]). A no-op when disabled or
    when [id] is [-1]. *)

(** A closed span. Times are monotonic-clock nanoseconds. *)
type span = {
  id : int;             (** allocation order: parents have smaller ids *)
  parent : int;         (** enclosing span id, or [-1] for a root *)
  domain : int;         (** id of the domain that ran the span *)
  label : string;
  start_ns : int64;
  stop_ns : int64;
}

val spans : unit -> span list
(** All closed spans, merged across domains and sorted by id. *)

(** {1 Counters}

    A counter accumulates the number of observations and the sum, min
    and max of the observed values. [count] is [observe 1.0] — a plain
    event tally. *)

val count : string -> unit
val observe : string -> float -> unit

type counter = {
  hits : int;           (** number of observations *)
  total : float;        (** sum of observed values *)
  vmin : float;         (** smallest observed value *)
  vmax : float;         (** largest observed value *)
}

val counters : unit -> (string * counter) list
(** All counters with at least one observation, sorted by name. *)

(** {1 Gauges}

    A gauge holds the {e last} value written — a level, not an event
    tally (bytes resident in a cache, depth of a pending queue). Unlike
    a counter it can go down, and reading it answers "what is the value
    now", which min/max/total summaries of {!observe} cannot. Writers
    typically pair {!set_gauge} with an {!observe} of the same name when
    the update history matters too. *)

val set_gauge : string -> float -> unit
(** Record the current level of a named gauge (last write wins). *)

val gauge : string -> float option
(** Current value of a gauge, or [None] if it was never set (or probes
    were disabled at every write). *)

val gauges : unit -> (string * float) list
(** All gauges with at least one write, sorted by name. *)
