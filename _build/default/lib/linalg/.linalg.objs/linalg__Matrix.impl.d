lib/linalg/matrix.ml: Array Buffer Printf
