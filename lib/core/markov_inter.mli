(** Markov model over the call graph (paper section 5.2).

    Functions are states; arcs carry the estimated calls per invocation of
    the caller (sites merged per caller/callee pair); [main] receives one
    unit of external flow. Function pointers route through a distinguished
    {e pointer node} split by the static address-of census (section
    5.2.1); impossible recursion weights are clamped and, if needed,
    whole SCCs are re-solved in isolation and scaled down until valid
    (section 5.2.2). *)

module Cfg = Cfg_ir.Cfg
module Callgraph = Cfg_ir.Callgraph

(** Diagnostics from the recursion-repair machinery. *)
type diag = {
  clamped_self_arcs : (int * float) list;
      (** node and original weight of each clamped self-arc *)
  repaired_sccs : int;       (** SCC subproblems that needed rescaling *)
  scale_iterations : int;    (** total scale-down steps *)
}

type result = {
  freqs : (string * float) list;  (** defined functions, node order *)
  pointer_freq : float option;    (** the pointer node, when present *)
  diag : diag;
}

(** Estimated invocation frequencies for all defined functions. Total:
    the degradation chain is global solve → clamping/SCC repair → 50
    damping rounds → the [call_site] simple estimate → flat, so a valid
    vector always comes back; falling past the repair stages records an
    [Obs.Faultlog] entry. [?inject_key] names this solve for the
    ["solve.inter"] injection point. *)
val estimate :
  ?inject_key:string -> Callgraph.t -> intra:(string -> float array) -> result

(** The raw (unclamped, unrepaired) solution — demonstrates the invalid
    negative frequencies of the paper's Figure 8. [None] if singular. *)
val estimate_raw :
  Callgraph.t -> intra:(string -> float array) -> (string * float) list option

(** The merged arc weights by function name (the pointer node prints as
    ["<pointer>"]), for presentation and tests. *)
val arc_weights :
  Callgraph.t ->
  intra:(string -> float array) ->
  (string * string * float) list
