(* The incremental-analysis store: content-addressed, LRU-bounded.

   Promotes the per-process [Context] memo (keyed by whole-source
   digests) to *function* granularity: intra-procedural solutions are
   keyed by [Pipeline.fn_hash] — a digest of the function's canonical
   AST, the globals it mentions, its callees' prototypes and the
   translation unit's struct/enum signature — so an edit to one
   function re-solves that function and nothing else. Compiled
   programs (typed AST + CFGs + the lazily built closure-compiled
   executable riding inside [Pipeline.compiled]) and profile sets are
   cached at program granularity, keyed by source digests.

   What is deliberately NOT cached: per-function CFGs across reparses.
   A [Cfg.fn] embeds node-id-keyed side tables of the [Typecheck.t]
   that produced it; grafting one onto a fresh parse would read the
   *old* unit's resolutions through colliding node ids. Lowering is
   linear and measured in microseconds per function — the store only
   holds the superlinear artifacts (Markov solves, closure-compiled
   code, profiles) where the leverage is.

   Cache-key soundness. An intra solution depends on the function's
   content, the live [Core.Config] knobs (the ablations mutate them)
   and the process-wide [Linsolve.solver_mode]; all three are in the
   key, so ablation sweeps and solver-matrix runs through the store
   stay bit-identical to uncached runs — the CI drift gate holds that
   line. Under an armed fault-injection plan ([Obs.Inject.armed]) the
   hook bypasses the store entirely: chaos runs must re-execute every
   estimate to fire the same injection points at the same sites.

   Eviction: least-recently-used by a global tick, with approximate
   byte accounting per entry. Eviction changes timings, never results —
   an evicted entry is recomputed from the same inputs (asserted by
   test/test_incr.ml under a tiny budget).

   Concurrency: one mutex guards the table, byte total and counters.
   Payload computation happens outside the lock; two domains racing on
   the same missing key both compute and the last insert wins — safe
   because payloads are pure values of deterministic computations. *)

module Pipeline = Core.Pipeline
module Cfg = Cfg_ir.Cfg
module Profile = Cinterp.Profile

type payload =
  | Intra of float array
  | Prog of Pipeline.compiled
  | Profiles of Profile.t list

type entry = { payload : payload; bytes : int; mutable tick : int }

type stats = {
  st_entries : int;
  st_bytes : int;
  st_budget : int;
  st_hits : int;
  st_misses : int;
  st_evictions : int;
  st_bypasses : int;
  st_restored : int;        (* entries loaded from disk at last open *)
  st_journal_entries : int; (* entries appended since the last snapshot *)
  st_snapshots : int;       (* snapshots taken by this process *)
  st_persisted : bool;      (* a store directory is attached *)
}

(* ------------------------------------------------------------------ *)
(* Store state. *)

let default_budget = 256 * 1024 * 1024

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 1024
let total_bytes = ref 0
let budget = ref default_budget
let clock = ref 0
let hits = ref 0
let misses = ref 0
let evictions = ref 0
let bypasses = ref 0
let restored = ref 0

(* The attached durable store, when [open_store] was called. All access
   happens under [lock]. *)
let persist : Persist.t option ref = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* The ["incr.bytes"] gauge tracks [total_bytes] through *every*
   mutation — insert, evict, invalidate, clear, budget resize and
   restore-from-disk — so a probe reader always sees the store's
   current footprint, not just its insert-path history. Call with
   [lock] held, after [total_bytes] settles. *)
let publish_bytes () =
  Obs.Probe.set_gauge "incr.bytes" (float_of_int !total_bytes);
  Obs.Probe.observe "incr.bytes" (float_of_int !total_bytes)

(* Re-publish gauge levels from current state. [Probe.reset] wipes the
   gauge table, so a daemon that resets probes per batch would report a
   missing ["incr.bytes"] until the next store mutation — even though
   the store still holds (say) everything restored at [open_store].
   Serve calls this after each per-batch reset; only the gauge is
   rewritten (no [observe]): nothing changed, so the update history
   must not grow. *)
let republish_gauges () : unit =
  locked (fun () ->
      Obs.Probe.set_gauge "incr.bytes" (float_of_int !total_bytes))

(* Approximate heap footprint of a payload, in bytes. Intra arrays are
   exact up to headers; compiled programs and profiles are estimated
   from their source/counter sizes — the accounting only has to make
   the budget meaningful, not audit the heap. *)
let payload_bytes = function
  | Intra a -> (8 * Array.length a) + 96
  | Prog c -> (16 * String.length c.Pipeline.source) + 4096
  | Profiles ps ->
    List.fold_left
      (fun acc (p : Profile.t) ->
        let counters =
          Hashtbl.fold
            (fun _ (c : Profile.fn_counters) n ->
              n + Array.length c.Profile.block_counts)
            p.Profile.fns 0
        in
        acc + (24 * counters) + (8 * Array.length p.Profile.site_counts)
        + 512)
      256 ps

let reset_stats () : unit =
  locked (fun () ->
      hits := 0;
      misses := 0;
      evictions := 0;
      bypasses := 0)

let stats () : stats =
  locked (fun () ->
      { st_entries = Hashtbl.length table;
        st_bytes = !total_bytes;
        st_budget = !budget;
        st_hits = !hits;
        st_misses = !misses;
        st_evictions = !evictions;
        st_bypasses = !bypasses;
        st_restored = !restored;
        st_journal_entries =
          (match !persist with
          | Some p -> Persist.journal_entries p
          | None -> 0);
        st_snapshots =
          (match !persist with Some p -> Persist.snapshots p | None -> 0);
        st_persisted = !persist <> None })

(* ------------------------------------------------------------------ *)
(* Lookup / insert (callers hold no lock). *)

let find (key : string) : payload option =
  locked (fun () ->
      match Hashtbl.find_opt table key with
      | Some e ->
        incr clock;
        e.tick <- !clock;
        incr hits;
        Obs.Probe.count "incr.hit";
        Some e.payload
      | None ->
        incr misses;
        Obs.Probe.count "incr.miss";
        None)

(* Evict least-recently-used entries (never [keep]) until the total is
   within budget. Linear scans per eviction: the store holds at most a
   few thousand entries and eviction is the rare path. *)
let evict_to_budget ?(keep = "") () : unit =
  let rec go () =
    if !total_bytes > !budget && Hashtbl.length table > 1 then begin
      let victim = ref None in
      Hashtbl.iter
        (fun k e ->
          if k <> keep then
            match !victim with
            | Some (_, best) when best.tick <= e.tick -> ()
            | _ -> victim := Some (k, e))
        table;
      match !victim with
      | None -> ()
      | Some (k, e) ->
        Hashtbl.remove table k;
        total_bytes := !total_bytes - e.bytes;
        incr evictions;
        Obs.Probe.count "incr.evict";
        go ()
    end
  in
  go ()

let set_budget (n : int) : unit =
  locked (fun () ->
      budget := max 0 n;
      (* A shrink takes effect immediately, not at the next insert. *)
      evict_to_budget ();
      publish_bytes ())

let clear () : unit =
  locked (fun () ->
      Hashtbl.reset table;
      total_bytes := 0;
      publish_bytes ())

(* Journal an [Intra] insert to the attached store and snapshot when
   the journal has grown past its threshold. A persistence failure
   (chaos injection, disk trouble) is absorbed as a [Persist]-stage
   fault: the entry stays served from memory, it just is not durable —
   the daemon never dies for the disk. Called with [lock] held. *)
let persist_insert (key : string) (payload : payload) : unit =
  match (!persist, payload) with
  | Some p, Intra values ->
    (match
       Fault.capture ~stage:Fault.Persist ~subject:key
         ~detail:"journal append"
         ~recovery:"entry kept in memory only; recomputed after restart"
         (fun () -> Persist.append p ~key values)
     with
    | Ok () -> ()
    | Error _ -> ());
    if Persist.needs_snapshot p then begin
      let entries =
        Hashtbl.fold
          (fun k (e : entry) acc ->
            match e.payload with
            | Intra a -> (k, a) :: acc
            | Prog _ | Profiles _ -> acc)
          table []
      in
      match
        Fault.capture ~stage:Fault.Persist ~subject:"snapshot"
          ~detail:
            (Printf.sprintf "%d entries" (List.length entries))
          ~recovery:"journal kept; snapshot retried past the next threshold"
          (fun () -> Persist.snapshot p entries)
      with
      | Ok () -> Obs.Probe.count "incr.snapshot"
      | Error _ -> ()
    end
  | _ -> ()

let add (key : string) (payload : payload) : unit =
  locked (fun () ->
      (match Hashtbl.find_opt table key with
      | Some old -> total_bytes := !total_bytes - old.bytes
      | None -> ());
      let bytes = payload_bytes payload in
      incr clock;
      Hashtbl.replace table key { payload; bytes; tick = !clock };
      total_bytes := !total_bytes + bytes;
      persist_insert key payload;
      evict_to_budget ~keep:key ();
      publish_bytes ())

(* ------------------------------------------------------------------ *)
(* Keys. *)

let solver_tag () = Linalg.Linsolve.mode_to_string !Linalg.Linsolve.solver_mode

(* Intra keys: content hash of the function plus every process-wide
   input the estimate reads (see the soundness note above). *)
let intra_key (c : Pipeline.compiled) (kind : Pipeline.intra_kind)
    (fn : Cfg.fn) : string =
  String.concat "|"
    [ "intra"; Pipeline.intra_kind_to_string kind; solver_tag ();
      Core.Config.fingerprint (); Pipeline.fn_hash c fn ]

let source_digest ~(name : string) (source : string) : string =
  Digest.to_hex (Digest.string (name ^ "\x00" ^ source))

let prog_key ~(name : string) (source : string) : string =
  "prog|" ^ source_digest ~name source

let runs_digest (runs : Pipeline.run list) : string =
  let buf = Buffer.create 128 in
  List.iter
    (fun (r : Pipeline.run) ->
      List.iter
        (fun a ->
          Buffer.add_string buf (string_of_int (String.length a));
          Buffer.add_char buf ':';
          Buffer.add_string buf a)
        r.Pipeline.argv;
      Buffer.add_char buf '<';
      Buffer.add_string buf (string_of_int (String.length r.Pipeline.input));
      Buffer.add_char buf ':';
      Buffer.add_string buf r.Pipeline.input;
      Buffer.add_char buf '\n')
    runs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let profile_key ~(name : string) (source : string)
    (runs : Pipeline.run list) : string =
  "profile|" ^ source_digest ~name source ^ "|" ^ runs_digest runs

(* ------------------------------------------------------------------ *)
(* The Pipeline hook: every [intra_table] sweep in the process is
   served from the store while installed. *)

let cached_intra (key : string) (compute : unit -> float array) :
    float array * bool =
  match find key with
  | Some (Intra a) -> (a, true)
  | Some _ | None ->
    let a = compute () in
    add key (Intra a);
    (a, false)

let hook (c : Pipeline.compiled) (kind : Pipeline.intra_kind) (fn : Cfg.fn)
    (compute : unit -> float array) : float array =
  if Obs.Inject.armed () then begin
    locked (fun () ->
        incr bypasses;
        Obs.Probe.count "incr.bypass");
    compute ()
  end
  else fst (cached_intra (intra_key c kind fn) compute)

let install () : unit = Pipeline.intra_cache_hook := hook

let uninstall () : unit =
  Pipeline.intra_cache_hook := fun _ _ _ compute -> compute ()

(* ------------------------------------------------------------------ *)
(* Durable store attachment. [open_store dir] restores every valid
   entry from the directory's snapshot + journal into the table (a
   corrupt or torn tail is truncated, never fatal — the daemon starts
   with whatever prefix survived) and journals every [Intra] insert
   from then on. Restored entries are *not* re-journaled: they are
   already on disk. *)

type restore = {
  rs_restored : int;   (* entries loaded into the table *)
  rs_truncated : bool; (* a corrupt/torn tail was cut off on load *)
}

let open_store ?snapshot_threshold (dir : string) : restore =
  let p, entries, truncated =
    Persist.open_store ?snapshot_threshold dir
  in
  locked (fun () ->
      (match !persist with Some old -> Persist.close old | None -> ());
      persist := Some p;
      List.iter
        (fun (key, values) ->
          let payload = Intra values in
          (match Hashtbl.find_opt table key with
          | Some old -> total_bytes := !total_bytes - old.bytes
          | None -> ());
          let bytes = payload_bytes payload in
          incr clock;
          Hashtbl.replace table key { payload; bytes; tick = !clock };
          total_bytes := !total_bytes + bytes)
        entries;
      restored := List.length entries;
      evict_to_budget ();
      publish_bytes ();
      Obs.Probe.observe "incr.restored" (float_of_int !restored);
      { rs_restored = !restored; rs_truncated = truncated })

(* Flush the durable state (final snapshot compacts the journal) and
   detach. The graceful-drain path runs this; after it, a restart
   loads everything from the snapshot alone. *)
let close_store () : unit =
  locked (fun () ->
      match !persist with
      | None -> ()
      | Some p ->
        let entries =
          Hashtbl.fold
            (fun k (e : entry) acc ->
              match e.payload with
              | Intra a -> (k, a) :: acc
              | Prog _ | Profiles _ -> acc)
            table []
        in
        (match
           Fault.capture ~stage:Fault.Persist ~subject:"snapshot"
             ~detail:"final snapshot on close"
             ~recovery:"journal remains authoritative for the next open"
             (fun () -> Persist.snapshot p entries)
         with
        | Ok () -> ()
        | Error _ -> ());
        Persist.close p;
        persist := None)

(* Simulated [kill -9]: drop every in-memory structure and the journal
   fd without flushing or snapshotting — exactly the state a new
   process starts from after a crash. The bench's restart-warm phase
   and the crash-recovery tests reopen the directory afterwards. *)
let crash_store () : unit =
  locked (fun () ->
      (match !persist with Some p -> Persist.close p | None -> ());
      persist := None;
      Hashtbl.reset table;
      total_bytes := 0;
      restored := 0;
      publish_bytes ())

(* ------------------------------------------------------------------ *)
(* Name index: program-granularity keys inserted under each program
   name, so [invalidate] can drop them. Function-granularity entries
   are content-shared across programs and self-invalidating (an edit
   changes the hash, orphaning the old key until eviction), so they
   are never dropped by name. *)

let names_lock = Mutex.create ()
let names : (string, string list) Hashtbl.t = Hashtbl.create 64

let index_key ~(name : string) (key : string) : unit =
  Mutex.lock names_lock;
  let ks = Option.value ~default:[] (Hashtbl.find_opt names name) in
  if not (List.mem key ks) then Hashtbl.replace names name (key :: ks);
  Mutex.unlock names_lock

let invalidate ~(name : string) : int =
  Mutex.lock names_lock;
  let ks = Option.value ~default:[] (Hashtbl.find_opt names name) in
  Hashtbl.remove names name;
  Mutex.unlock names_lock;
  locked (fun () ->
      let dropped =
        List.fold_left
          (fun dropped k ->
            match Hashtbl.find_opt table k with
            | Some e ->
              Hashtbl.remove table k;
              total_bytes := !total_bytes - e.bytes;
              dropped + 1
            | None -> dropped)
          0 ks
      in
      publish_bytes ();
      dropped)

(* ------------------------------------------------------------------ *)
(* Incremental analysis of one source. *)

type analysis = {
  an_name : string;
  an_compiled : Pipeline.compiled;
  an_program_hit : bool;
  an_profile_hit : bool option;  (* [None] when no runs were given *)
  an_fn_hits : int;
  an_fn_misses : int;
  an_fn_hashes : (string * string) list;  (* per function, prog order *)
  an_intra : (Pipeline.intra_kind * (string * float array) list) list;
  an_inter : (string * float) list;  (* markov inter, call-graph order *)
  an_scores : Score.t list;  (* sorted by [Score.key]; not emitted *)
}

let profile_deadline_s = 300.0

(* Cooperative wall-clock deadline for one [analyze] call: checked
   between per-function solves and threaded into the interpreter's
   budget machinery for the profiling leg (the only open-ended stage).
   The serve layer maps the raise to a typed fault response; in
   supervised mode the parent additionally enforces a hard deadline by
   killing the worker process. *)
exception Deadline_exceeded of float

let () =
  Printexc.register_printer (function
    | Deadline_exceeded s ->
      Some (Printf.sprintf "Driver.Incr.Deadline_exceeded(%gs)" s)
    | _ -> None)

(* Modelled per-invocation cost of [fn] under intra estimate [freqs]. *)
let invocation_cost (fn : Cfg.fn) (freqs : float array) : float =
  let costs = Pipeline.block_costs fn in
  let total = ref 0.0 in
  Array.iteri (fun i c -> total := !total +. (c *. freqs.(i))) costs;
  !total

let score ~name ~estimator ~metric ~value : Score.t =
  { Score.s_experiment = "serve"; s_program = name; s_estimator = estimator;
    s_metric = metric; s_param = 0.0; s_value = value }

(* Analyze [source]: compile (or fetch), estimate every requested intra
   kind function-by-function through the store, then re-run the
   inter-procedural Markov fixpoint — the fixpoint is global, so it is
   always recomputed; only its per-function inputs are cached. Raises
   on invalid source (callers isolate; the serve daemon maps the raise
   to an error response). *)
let analyze_body ?(kinds : Pipeline.intra_kind list = Pipeline.all_intra_kinds)
    ?(runs : Pipeline.run list = []) ?(deadline_s : float option)
    ~(name : string) (source : string) : analysis =
  let started = Unix.gettimeofday () in
  let check_deadline () =
    match deadline_s with
    | Some d when Unix.gettimeofday () -. started > d ->
      raise (Deadline_exceeded d)
    | _ -> ()
  in
  let remaining_profile_deadline () =
    match deadline_s with
    | None -> profile_deadline_s
    | Some d ->
      Float.min profile_deadline_s
        (Float.max 0.001 (d -. (Unix.gettimeofday () -. started)))
  in
  let pkey = prog_key ~name source in
  let c, program_hit =
    match find pkey with
    | Some (Prog c) -> (c, true)
    | Some _ | None ->
      let c = Pipeline.compile ~name source in
      add pkey (Prog c);
      index_key ~name pkey;
      (c, false)
  in
  let fn_hits = ref 0 and fn_misses = ref 0 in
  (* The smart estimate always runs: the paper builds every inter
     estimator on it, and the fixpoint below needs it. *)
  let kinds_to_run =
    if List.mem Pipeline.Ismart kinds then kinds
    else kinds @ [ Pipeline.Ismart ]
  in
  let intra_of kind =
    List.map
      (fun fn ->
        check_deadline ();
        let freqs, hit =
          cached_intra (intra_key c kind fn) (fun () ->
              Pipeline.intra_freqs_fn c kind fn)
        in
        if hit then incr fn_hits else incr fn_misses;
        (fn.Cfg.fn_name, freqs))
      c.Pipeline.prog.Cfg.prog_fns
  in
  let tables = List.map (fun k -> (k, intra_of k)) kinds_to_run in
  let an_intra = List.filter (fun (k, _) -> List.mem k kinds) tables in
  let smart = List.assoc Pipeline.Ismart tables in
  check_deadline ();
  let inter =
    (Core.Markov_inter.estimate ~inject_key:name c.Pipeline.graph
       ~intra:(fun fname -> List.assoc fname smart))
      .Core.Markov_inter.freqs
  in
  let profiles, profile_hit =
    match runs with
    | [] -> (None, None)
    | runs ->
      check_deadline ();
      let key = profile_key ~name source runs in
      (match find key with
      | Some (Profiles ps) -> (Some ps, Some true)
      | Some _ | None ->
        let ps =
          Pipeline.profile_runs ~deadline_s:(remaining_profile_deadline ())
            c runs
        in
        add key (Profiles ps);
        index_key ~name key;
        (Some ps, Some false))
  in
  let inv_scores =
    List.map
      (fun (fname, v) ->
        score ~name ~estimator:("invocations/" ^ fname) ~metric:Score.Freq
          ~value:v)
      inter
  in
  let cost_scores =
    List.concat_map
      (fun (kind, tbl) ->
        let tag = Pipeline.intra_kind_to_string kind in
        let per_fn =
          List.map
            (fun fn ->
              let freqs = List.assoc fn.Cfg.fn_name tbl in
              let cost = invocation_cost fn freqs in
              (fn, cost))
            c.Pipeline.prog.Cfg.prog_fns
        in
        let total =
          List.fold_left
            (fun acc (fn, cost) ->
              let inv =
                Option.value ~default:0.0
                  (List.assoc_opt fn.Cfg.fn_name inter)
              in
              acc +. (inv *. cost))
            0.0 per_fn
        in
        score ~name ~estimator:("total_cost/" ^ tag) ~metric:Score.Count
          ~value:total
        :: List.map
             (fun (fn, cost) ->
               score ~name
                 ~estimator:("cost/" ^ tag ^ "/" ^ fn.Cfg.fn_name)
                 ~metric:Score.Count ~value:cost)
             per_fn)
      an_intra
  in
  let actual_scores =
    match profiles with
    | None -> []
    | Some ps ->
      let n = float_of_int (max 1 (List.length ps)) in
      List.map
        (fun fn ->
          let mean =
            List.fold_left
              (fun acc p -> acc +. Profile.invocations p fn)
              0.0 ps
            /. n
          in
          score ~name
            ~estimator:("actual_invocations/" ^ fn.Cfg.fn_name)
            ~metric:Score.Count ~value:mean)
        c.Pipeline.prog.Cfg.prog_fns
  in
  let an_scores =
    List.sort
      (fun a b -> compare (Score.key a) (Score.key b))
      (inv_scores @ cost_scores @ actual_scores)
  in
  { an_name = name;
    an_compiled = c;
    an_program_hit = program_hit;
    an_profile_hit = profile_hit;
    an_fn_hits = !fn_hits;
    an_fn_misses = !fn_misses;
    an_fn_hashes =
      List.map
        (fun fn -> (fn.Cfg.fn_name, Pipeline.fn_hash c fn))
        c.Pipeline.prog.Cfg.prog_fns;
    an_intra;
    an_inter = inter;
    an_scores }

let analyze ?kinds ?runs ?deadline_s ~(name : string) (source : string) :
    analysis =
  Obs.Hist.time "incr.analyze.ns" (fun () ->
      analyze_body ?kinds ?runs ?deadline_s ~name source)
