examples/quickstart.ml: Array Cfg_ir Cinterp Core Option Printf
