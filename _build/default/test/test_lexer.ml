(* Lexer unit tests: token classification, literals, escapes, comments,
   adjacent string concatenation, and error reporting. *)

open Cfront

let tokens_of src =
  List.map (fun (l : Lexer.located) -> l.Lexer.tok) (Lexer.tokenize ~file:"t" src)

let check_tokens name src expected =
  Alcotest.(check (list string))
    name
    (expected @ [ "<eof>" ])
    (List.map Token.to_string (tokens_of src))

let test_idents_keywords () =
  check_tokens "keywords vs identifiers" "int intx if iffy while whiled"
    [ "int"; "intx"; "if"; "iffy"; "while"; "whiled" ]

let test_integer_literals () =
  let toks = tokens_of "0 42 0x1F 017 123456789 42u 42L 0xffUL" in
  let ints =
    List.filter_map (function Token.INT_LIT n -> Some n | _ -> None) toks
  in
  Alcotest.(check (list int))
    "integer literal values"
    [ 0; 42; 31; 17; 123456789; 42; 42; 255 ]
    ints

let test_octal_like () =
  (* we accept a leading 0 as decimal-style unless int_of_string says
     otherwise; "017" lexes via int_of_string "017" = 17 *)
  match tokens_of "017" with
  | [ Token.INT_LIT 17; Token.EOF ] -> ()
  | _ -> Alcotest.fail "017"

let test_float_literals () =
  let toks = tokens_of "1.5 0.25 1e3 2.5e-2 .5" in
  let floats =
    List.filter_map (function Token.FLOAT_LIT f -> Some f | _ -> None) toks
  in
  Alcotest.(check (list (float 1e-9)))
    "float literal values"
    [ 1.5; 0.25; 1000.0; 0.025; 0.5 ]
    floats

let test_exponent_backtrack () =
  (* "1e" is not a float: the lexer must back off to INT 1, IDENT e *)
  match tokens_of "1e" with
  | [ Token.INT_LIT 1; Token.IDENT "e"; Token.EOF ] -> ()
  | ts ->
    Alcotest.failf "1e lexed as %s"
      (String.concat " " (List.map Token.to_string ts))

let test_char_literals () =
  let toks = tokens_of {|'a' '\n' '\t' '\0' '\\' '\'' '\x41' '\101'|} in
  let chars =
    List.filter_map (function Token.CHAR_LIT c -> Some c | _ -> None) toks
  in
  Alcotest.(check (list int))
    "char literal values"
    [ 97; 10; 9; 0; 92; 39; 65; 65 ]
    chars

let test_string_escapes () =
  match tokens_of {|"a\nb\t\"q\""|} with
  | [ Token.STRING_LIT s; Token.EOF ] ->
    Alcotest.(check string) "string value" "a\nb\t\"q\"" s
  | _ -> Alcotest.fail "string literal"

let test_string_concatenation () =
  match tokens_of {|"foo" "bar" "baz"|} with
  | [ Token.STRING_LIT s; Token.EOF ] ->
    Alcotest.(check string) "adjacent strings merge" "foobarbaz" s
  | _ -> Alcotest.fail "concatenation"

let test_comments () =
  check_tokens "block and line comments" "a /* x */ b // rest\nc /*\n*/ d"
    [ "a"; "b"; "c"; "d" ]

let test_nested_star_comment () =
  check_tokens "stars inside comment" "x /* ** * /* sort of */ y" [ "x"; "y" ]

let test_operators_maximal_munch () =
  check_tokens "maximal munch"
    "a<<=b >>= ++ -- -> <= >= == != && || += << >> < > ! ~ ^ ..."
    [ "a"; "<<="; "b"; ">>="; "++"; "--"; "->"; "<="; ">="; "=="; "!=";
      "&&"; "||"; "+="; "<<"; ">>"; "<"; ">"; "!"; "~"; "^"; "..." ]

let test_positions () =
  let toks = Lexer.tokenize ~file:"pos.c" "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "a line" 1 a.Lexer.pos.Token.line;
    Alcotest.(check int) "a col" 1 a.Lexer.pos.Token.col;
    Alcotest.(check int) "b line" 2 b.Lexer.pos.Token.line;
    Alcotest.(check int) "b col" 3 b.Lexer.pos.Token.col
  | _ -> Alcotest.fail "token count"

let expect_error name src =
  match tokens_of src with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a lexer error" name

let test_errors () =
  expect_error "unterminated comment" "a /* b";
  expect_error "unterminated string" "\"abc";
  expect_error "unterminated char" "'a";
  expect_error "empty char" "''";
  expect_error "bad escape" {|'\q'|};
  expect_error "stray character" "a $ b";
  expect_error "newline in string" "\"ab\ncd\""

let test_eof_only () =
  match tokens_of "" with
  | [ Token.EOF ] -> ()
  | _ -> Alcotest.fail "empty input"

let suite =
  [ Alcotest.test_case "idents vs keywords" `Quick test_idents_keywords;
    Alcotest.test_case "integer literals" `Quick test_integer_literals;
    Alcotest.test_case "leading-zero literal" `Quick test_octal_like;
    Alcotest.test_case "float literals" `Quick test_float_literals;
    Alcotest.test_case "exponent backtracking" `Quick test_exponent_backtrack;
    Alcotest.test_case "char literals" `Quick test_char_literals;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "string concatenation" `Quick test_string_concatenation;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "stars in comments" `Quick test_nested_star_comment;
    Alcotest.test_case "maximal munch" `Quick test_operators_maximal_munch;
    Alcotest.test_case "source positions" `Quick test_positions;
    Alcotest.test_case "lexical errors" `Quick test_errors;
    Alcotest.test_case "empty input" `Quick test_eof_only ]
