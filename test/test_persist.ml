(* Crash safety of the durable store, from the file format up:

   1. format facts — entries round-trip bit-exactly (including
      non-finite floats), snapshot + journal merge with the journal
      winning, a leftover snapshot.tmp is garbage-collected, and a
      version bump self-invalidates the file instead of misreading it;
   2. the torn-tail contract — for *any* byte-length truncation of a
      valid journal, loading succeeds, yields exactly the longest
      decodable prefix of entries, and leaves the file appendable;
   3. the recovery contract one level up — populate a store through
      [Incr.analyze], crash it ([Incr.crash_store] drops every
      in-memory structure like kill -9 would), mutilate the journal at
      a random offset, reopen and re-analyze: scores must be
      bit-identical to a cold run, on the dense and sparse solver legs
      both — restored entries may only ever save work, never change
      results;
   4. a kill -9 mid-snapshot smoke test: a half-written snapshot.tmp
      next to live files is ignored and removed. *)

module Persist = Driver.Persist
module Incr = Driver.Incr

let dir_counter = ref 0

let with_store_dir (f : string -> 'a) : 'a =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "test_persist_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let float_bits_eq a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* polymorphic [=] is useless here: NaN <> NaN *)
let entries_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (k1, v1) (k2, v2) ->
         String.equal k1 k2
         && Array.length v1 = Array.length v2
         && Array.for_all2 float_bits_eq v1 v2)
       a b

let entry_testable =
  Alcotest.testable
    (fun fmt (k, vs) ->
      Format.fprintf fmt "%s:[%s]" k
        (String.concat ";"
           (Array.to_list (Array.map string_of_float vs))))
    (fun (k1, v1) (k2, v2) ->
      String.equal k1 k2
      && Array.length v1 = Array.length v2
      && Array.for_all2 float_bits_eq v1 v2)

let sample_entries =
  [ ("alpha", [| 1.5; -2.25; 0.0 |]);
    ("beta/with|separators", [| Float.infinity; Float.neg_infinity; Float.nan |]);
    ("gamma", [||]);
    ("delta", Array.init 64 (fun i -> float_of_int i *. 0.125)) ]

(* --- 1. format facts ------------------------------------------------- *)

let test_roundtrip () =
  with_store_dir (fun dir ->
      let t, loaded, truncated = Persist.open_store dir in
      Alcotest.(check bool) "fresh store loads empty" true (loaded = []);
      Alcotest.(check bool) "fresh store is not truncated" false truncated;
      List.iter (fun (k, vs) -> Persist.append t ~key:k vs) sample_entries;
      Persist.close t;
      let t2, loaded2, truncated2 = Persist.open_store dir in
      Persist.close t2;
      Alcotest.(check bool) "reload is not truncated" false truncated2;
      Alcotest.(check (list entry_testable))
        "entries round-trip bit-exactly (incl. nan/inf)" sample_entries
        loaded2)

let test_snapshot_merge () =
  with_store_dir (fun dir ->
      let t, _, _ = Persist.open_store dir in
      Persist.append t ~key:"old" [| 1.0 |];
      Persist.append t ~key:"both" [| 2.0 |];
      Persist.snapshot t [ ("old", [| 1.0 |]); ("both", [| 2.0 |]) ];
      Alcotest.(check int) "snapshot resets the journal" 0
        (Persist.journal_entries t);
      Persist.append t ~key:"both" [| 3.0 |];
      Persist.append t ~key:"new" [| 4.0 |];
      Persist.close t;
      let t2, loaded, truncated = Persist.open_store dir in
      Persist.close t2;
      Alcotest.(check bool) "merge is not truncated" false truncated;
      let find k = List.assoc k loaded in
      Alcotest.(check int) "three distinct keys survive" 3
        (List.length loaded);
      Alcotest.(check (float 0.0)) "snapshot-only key" 1.0 (find "old").(0);
      Alcotest.(check (float 0.0)) "journal wins a shared key" 3.0
        (find "both").(0);
      Alcotest.(check (float 0.0)) "journal-only key" 4.0 (find "new").(0))

let test_stale_tmp_ignored () =
  with_store_dir (fun dir ->
      let t, _, _ = Persist.open_store dir in
      Persist.append t ~key:"k" [| 7.0 |];
      Persist.close t;
      (* kill -9 mid-snapshot: a half-written temp file survives *)
      let tmp = Filename.concat dir "snapshot.bin.tmp" in
      let oc = open_out_bin tmp in
      output_string oc "ESTSTOREgarbage-that-is-not-a-valid-snapshot";
      close_out oc;
      let t2, loaded, truncated = Persist.open_store dir in
      Persist.close t2;
      Alcotest.(check bool) "load is clean despite the tmp file" false
        truncated;
      Alcotest.(check (list entry_testable))
        "journal entries load" [ ("k", [| 7.0 |]) ] loaded;
      Alcotest.(check bool) "the stale tmp file was removed" false
        (Sys.file_exists tmp))

let patch_byte (path : string) (off : int) (f : char -> char) : unit =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string s in
  Bytes.set b off (f (Bytes.get b off));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_version_bump_self_invalidates () =
  with_store_dir (fun dir ->
      let t, _, _ = Persist.open_store dir in
      List.iter (fun (k, vs) -> Persist.append t ~key:k vs) sample_entries;
      Persist.close t;
      (* bump the format version byte in the header (magic is 8 bytes,
         the little-endian u32 version follows) *)
      patch_byte (Filename.concat dir "journal.bin") 8 (fun c ->
          Char.chr ((Char.code c + 1) land 0xff));
      let t2, loaded, truncated = Persist.open_store dir in
      Alcotest.(check bool) "future-format file reads as empty" true
        (loaded = []);
      Alcotest.(check bool) "and reports truncation" true truncated;
      (* the loader reset the file: the handle must be appendable and
         the next load round-trips at the current version *)
      Persist.append t2 ~key:"fresh" [| 9.0 |];
      Persist.close t2;
      let t3, loaded3, _ = Persist.open_store dir in
      Persist.close t3;
      Alcotest.(check (list entry_testable))
        "store restarts cold at the current version"
        [ ("fresh", [| 9.0 |]) ]
        loaded3)

let test_corrupt_middle_truncates () =
  with_store_dir (fun dir ->
      let t, _, _ = Persist.open_store dir in
      List.iter (fun (k, vs) -> Persist.append t ~key:k vs) sample_entries;
      Persist.close t;
      let path = Filename.concat dir "journal.bin" in
      (* Flip a byte inside the *second* entry's body: the first entry
         must survive, everything from the flip on is cut. The first
         entry spans 4 + (9 + 5 + 3*8) + 16 bytes after the 12-byte
         header; land safely inside entry two. *)
      patch_byte path 80 (fun c -> Char.chr (Char.code c lxor 0x40));
      let t2, loaded, truncated = Persist.open_store dir in
      Persist.close t2;
      Alcotest.(check bool) "corruption reports truncation" true truncated;
      Alcotest.(check (list entry_testable))
        "the prefix before the corruption survives"
        [ List.hd sample_entries ]
        loaded)

(* --- 2. any prefix-truncation of a valid journal loads ---------------- *)

(* The byte length of one encoded entry: u32 frame + body + md5, where
   body = u32 key_len + key + tag + u32 count + 8 bytes per value. *)
let encoded_len (key, values) =
  4 + (9 + String.length key + (8 * Array.length values)) + 16

let header_len = 12

let test_any_truncation_loads () =
  let full = sample_entries @ sample_entries in
  let total =
    header_len + List.fold_left (fun a e -> a + encoded_len e) 0 full
  in
  (* For a cut at [len], the expected survivors are the longest run of
     whole entries that fit under the cut (a cut inside the header
     drops everything), deduped the way the loader dedups: first
     occurrence keeps its slot, the last value wins. *)
  let expected_at len =
    if len < header_len then []
    else
      let rec go acc off = function
        | [] -> List.rev acc
        | e :: rest ->
          if off + encoded_len e <= len then
            go (e :: acc) (off + encoded_len e) rest
          else List.rev acc
      in
      List.fold_left
        (fun acc (k, v) ->
          if List.mem_assoc k acc then
            List.map (fun (k', v') -> if k' = k then (k', v) else (k', v')) acc
          else acc @ [ (k, v) ])
        [] (go [] header_len full)
  in
  let arb = QCheck.int_range 0 total in
  let prop len =
    with_store_dir (fun dir ->
        let t, _, _ = Persist.open_store dir in
        List.iter (fun (k, vs) -> Persist.append t ~key:k vs) full;
        Persist.close t;
        let path = Filename.concat dir "journal.bin" in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd len;
        Unix.close fd;
        let t2, loaded, truncated = Persist.open_store dir in
        (* whatever survived, the journal must accept new entries *)
        Persist.append t2 ~key:"appended-after-recovery" [| 42.0 |];
        Persist.close t2;
        let t3, reloaded, _ = Persist.open_store dir in
        Persist.close t3;
        ignore truncated;
        let expected = expected_at len in
        let survivors_ok = entries_equal loaded expected in
        let append_ok =
          List.exists
            (fun (k, _) -> k = "appended-after-recovery")
            reloaded
        in
        if not survivors_ok then
          QCheck.Test.fail_reportf
            "cut at %d: loaded %d entries, expected %d" len
            (List.length loaded) (List.length expected);
        if not append_ok then
          QCheck.Test.fail_reportf
            "cut at %d: journal not appendable after recovery" len;
        true)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:60 ~name:"any truncation loads a clean prefix"
       arb prop)

(* --- 3. crash recovery through Incr, dense and sparse ----------------- *)

let crash_program =
  {|
int helper(int x) { return x * 3 + 1; }
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 20; i = i + 1) acc = acc + helper(i);
  return acc;
}
|}

let check_scores_equal what (a : Driver.Score.t list)
    (b : Driver.Score.t list) =
  Alcotest.(check int) (what ^ ": same score count") (List.length a)
    (List.length b);
  List.iter2
    (fun (x : Driver.Score.t) (y : Driver.Score.t) ->
      if compare x y <> 0 then
        Alcotest.failf "%s: score diverged on %s" what
          x.Driver.Score.s_estimator)
    a b

let recovery_leg (mode : Linalg.Linsolve.mode) () =
  let saved = !Linalg.Linsolve.solver_mode in
  Linalg.Linsolve.solver_mode := mode;
  let tag = Linalg.Linsolve.mode_to_string mode in
  Fun.protect
    ~finally:(fun () ->
      Linalg.Linsolve.solver_mode := saved;
      Incr.close_store ();
      Incr.clear ())
    (fun () ->
      (* cold reference: no store attached *)
      Incr.clear ();
      let reference = (Incr.analyze ~name:"crash" crash_program).Incr.an_scores in
      Incr.clear ();
      let rng = Random.State.make [| 0xC0A5; 7 |] in
      with_store_dir (fun dir ->
          (* populate the store once to learn its on-disk size *)
          ignore (Incr.open_store dir);
          ignore (Incr.analyze ~name:"crash" crash_program);
          Incr.crash_store ();
          let jpath = Filename.concat dir "journal.bin" in
          let jsize = (Unix.stat jpath).Unix.st_size in
          for _ = 1 to 12 do
            (* mutilate the journal at a random length, restart, and
               demand bit-identical scores from whatever survived *)
            let cut = Random.State.int rng (jsize + 1) in
            let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 in
            Unix.ftruncate fd cut;
            Unix.close fd;
            let restore = Incr.open_store dir in
            Alcotest.(check bool)
              (Printf.sprintf "%s: restored a prefix at cut %d" tag cut)
              true
              (restore.Incr.rs_restored >= 0);
            let a = Incr.analyze ~name:"crash" crash_program in
            check_scores_equal
              (Printf.sprintf "%s solver, journal cut at %d" tag cut)
              reference a.Incr.an_scores;
            (* the re-analysis healed the store: everything is back on
               disk for the next round *)
            Incr.crash_store ()
          done))

(* --- registration ----------------------------------------------------- *)

let suite =
  [ Alcotest.test_case "entries round-trip bit-exactly" `Quick test_roundtrip;
    Alcotest.test_case "snapshot + journal merge, journal wins" `Quick
      test_snapshot_merge;
    Alcotest.test_case "a kill -9 mid-snapshot leaves no poison" `Quick
      test_stale_tmp_ignored;
    Alcotest.test_case "a format version bump self-invalidates" `Quick
      test_version_bump_self_invalidates;
    Alcotest.test_case "corruption truncates to the valid prefix" `Quick
      test_corrupt_middle_truncates;
    Alcotest.test_case "any byte-truncation loads a clean prefix" `Slow
      test_any_truncation_loads;
    Alcotest.test_case "crash recovery is bit-identical (dense)" `Slow
      (recovery_leg Linalg.Linsolve.Dense);
    Alcotest.test_case "crash recovery is bit-identical (sparse)" `Slow
      (recovery_leg Linalg.Linsolve.Sparse) ]
