(* Score-drift detection: compare a run record against the committed
   baseline and classify every difference.

   Scores are deterministic IEEE-754 doubles (the differential harness
   pins jobs-invariance), so they are compared *exactly* — any bit
   difference is drift. Timings are machine-dependent, so they only
   drift when outside a wide multiplicative tolerance band. A program
   that degraded in the current run is reported as degraded (with its
   stage), never as a score regression: its baseline scores are
   missing, not wrong. *)

type finding =
  | Changed of Score.t * float
    (* baseline record; the current run's differing value *)
  | Missing of Score.t
    (* baseline record with no counterpart in the current run *)
  | Added of Score.t
    (* current-run record with no counterpart in the baseline *)
  | Degraded_program of Score.t * string
    (* baseline record whose program degraded in the current run; the
       stage it degraded at *)
  | Timing_out_of_band of string * float * float
    (* label, baseline total ms, current total ms *)

type report = {
  findings : finding list;     (* deterministic order: kind within key *)
  compared : int;              (* baseline scores with an exact match *)
  degraded_programs : (string * string) list;  (* current run: program, stage *)
}

let default_timing_factor = 50.0

(* Timings below this total are noise — a sub-millisecond experiment
   span can jitter by more than any sane factor between two runs. *)
let timing_floor_ms = 5.0

let finding_key = function
  | Changed (s, _) | Missing s | Added s | Degraded_program (s, _) ->
    Some (Score.key s)
  | Timing_out_of_band _ -> None

(* Exact equality that treats nan as equal to itself (a degraded mean
   must not drift against itself). *)
let same_value (a : float) (b : float) : bool = compare a b = 0

let diff ?(timing_factor = default_timing_factor)
    ~(baseline : Run_record.t) ~(current : Run_record.t) () : report =
  let index (r : Run_record.t) : (Score.key, Score.t) Hashtbl.t =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun (s : Score.t) -> Hashtbl.replace tbl (Score.key s) s)
      r.Run_record.r_scores;
    tbl
  in
  let cur_by_key = index current in
  let base_by_key = index baseline in
  let degraded_stage program =
    List.assoc_opt program current.Run_record.r_degraded
  in
  let compared = ref 0 in
  let score_findings =
    List.filter_map
      (fun (b : Score.t) ->
        match Hashtbl.find_opt cur_by_key (Score.key b) with
        | Some c ->
          if same_value b.Score.s_value c.Score.s_value then begin
            incr compared;
            None
          end
          else Some (Changed (b, c.Score.s_value))
        | None -> (
          match degraded_stage b.Score.s_program with
          | Some stage -> Some (Degraded_program (b, stage))
          | None -> Some (Missing b)))
      baseline.Run_record.r_scores
    @ List.filter_map
        (fun (c : Score.t) ->
          if Hashtbl.mem base_by_key (Score.key c) then None
          else Some (Added c))
        current.Run_record.r_scores
  in
  let timing_findings =
    List.filter_map
      (fun (b : Run_record.timing) ->
        let label = b.Run_record.t_label in
        match
          List.find_opt
            (fun (c : Run_record.timing) -> c.Run_record.t_label = label)
            current.Run_record.r_timings
        with
        | None -> None
        | Some c ->
          let bms = b.Run_record.t_total_ms
          and cms = c.Run_record.t_total_ms in
          if bms < timing_floor_ms || cms < timing_floor_ms then None
          else if cms > bms *. timing_factor || cms < bms /. timing_factor
          then Some (Timing_out_of_band (label, bms, cms))
          else None)
      baseline.Run_record.r_timings
  in
  let rank = function
    | Changed _ -> 0
    | Missing _ -> 1
    | Degraded_program _ -> 2
    | Added _ -> 3
    | Timing_out_of_band _ -> 4
  in
  let sort_key f =
    ( rank f,
      (match finding_key f with Some k -> Score.key_to_string k | None -> ""),
      match f with Timing_out_of_band (l, _, _) -> l | _ -> "" )
  in
  { findings =
      List.sort
        (fun a b -> compare (sort_key a) (sort_key b))
        (score_findings @ timing_findings);
    compared = !compared;
    degraded_programs = current.Run_record.r_degraded }

let has_drift (r : report) : bool = r.findings <> []

(* ------------------------------------------------------------------ *)
(* Rendering *)

let fmt_value (v : float) : string =
  if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let finding_row = function
  | Changed (s, cur) ->
    [ "changed"; Score.key_to_string (Score.key s);
      fmt_value s.Score.s_value; fmt_value cur;
      Printf.sprintf "%+.6g" (cur -. s.Score.s_value) ]
  | Missing s ->
    [ "missing"; Score.key_to_string (Score.key s);
      fmt_value s.Score.s_value; "—"; "" ]
  | Added s ->
    [ "added"; Score.key_to_string (Score.key s); "—";
      fmt_value s.Score.s_value; "" ]
  | Degraded_program (s, stage) ->
    [ "degraded"; Score.key_to_string (Score.key s);
      fmt_value s.Score.s_value; "— (" ^ stage ^ ")"; "" ]
  | Timing_out_of_band (label, bms, cms) ->
    [ "timing"; label; Printf.sprintf "%.1fms" bms;
      Printf.sprintf "%.1fms" cms;
      Printf.sprintf "%.1fx" (cms /. bms) ]

let render (r : report) : string =
  let header =
    Printf.sprintf "%d baseline scores matched exactly" r.compared
  in
  if r.findings = [] then
    header ^ "; no drift.\n"
  else
    Printf.sprintf "%s; %d findings:\n\n" header (List.length r.findings)
    ^ Text_table.render
        ~aligns:[ Text_table.Left; Text_table.Left ]
        [ "kind"; "score"; "baseline"; "current"; "delta" ]
        (List.map finding_row r.findings)
