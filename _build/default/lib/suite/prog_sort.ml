(* sort_bench: three sorting algorithms (quicksort, heapsort, insertion
   sort) raced on the same data, standing in for sc's compute kernels —
   recursion (quicksort), tight loops with data-dependent branches
   (insertion), and index arithmetic (heap sift). *)

let source = {|
#define MAX_N 4000

int data_a[MAX_N];
int data_b[MAX_N];
int data_c[MAX_N];
int n_elems;

int cmp_count;
int swap_count;

void swap_elems(int *arr, int i, int j) {
  int t = arr[i];
  arr[i] = arr[j];
  arr[j] = t;
  swap_count++;
}

int less_than(int a, int b) {
  cmp_count++;
  return a < b;
}

/* ---- quicksort with median-of-three ---- */

int median3(int *arr, int lo, int hi) {
  int mid = (lo + hi) / 2;
  if (less_than(arr[mid], arr[lo])) swap_elems(arr, lo, mid);
  if (less_than(arr[hi], arr[lo])) swap_elems(arr, lo, hi);
  if (less_than(arr[hi], arr[mid])) swap_elems(arr, mid, hi);
  return arr[mid];
}

void insertion_range(int *arr, int lo, int hi) {
  int i, j, key;
  for (i = lo + 1; i <= hi; i++) {
    key = arr[i];
    j = i - 1;
    while (j >= lo && less_than(key, arr[j])) {
      arr[j + 1] = arr[j];
      j--;
    }
    arr[j + 1] = key;
  }
}

void quicksort(int *arr, int lo, int hi) {
  int pivot, i, j;
  if (hi - lo < 12) {
    insertion_range(arr, lo, hi);
    return;
  }
  pivot = median3(arr, lo, hi);
  i = lo;
  j = hi;
  while (i <= j) {
    while (less_than(arr[i], pivot)) i++;
    while (less_than(pivot, arr[j])) j--;
    if (i <= j) {
      swap_elems(arr, i, j);
      i++;
      j--;
    }
  }
  if (lo < j) quicksort(arr, lo, j);
  if (i < hi) quicksort(arr, i, hi);
}

/* ---- heapsort ---- */

void sift_down(int *arr, int start, int end) {
  int root = start, child;
  while (root * 2 + 1 <= end) {
    child = root * 2 + 1;
    if (child + 1 <= end && less_than(arr[child], arr[child + 1]))
      child = child + 1;
    if (less_than(arr[root], arr[child])) {
      swap_elems(arr, root, child);
      root = child;
    } else {
      return;
    }
  }
}

void heapsort(int *arr, int n) {
  int start, end;
  for (start = (n - 2) / 2; start >= 0; start--)
    sift_down(arr, start, n - 1);
  for (end = n - 1; end > 0; end--) {
    swap_elems(arr, 0, end);
    sift_down(arr, 0, end - 1);
  }
}

/* ---- verification ---- */

int is_sorted(int *arr, int n) {
  int i;
  for (i = 1; i < n; i++)
    if (arr[i - 1] > arr[i]) return 0;
  return 1;
}

int sum_mod(int *arr, int n) {
  int i, s = 0;
  for (i = 0; i < n; i++) s = (s + arr[i]) & 0xffffff;
  return s;
}

/* ---- data generation: argv[1] selects the pattern ---- */

int next_rand(int *state) {
  *state = (*state * 1103515245 + 12345) & 0x7fffffff;
  return *state;
}

void generate(int pattern, int n) {
  int i, state = 42;
  for (i = 0; i < n; i++) {
    if (pattern == 0) data_a[i] = next_rand(&state) % 10000;
    else if (pattern == 1) data_a[i] = i;                 /* sorted */
    else if (pattern == 2) data_a[i] = n - i;             /* reversed */
    else data_a[i] = next_rand(&state) % 8;               /* few values */
  }
  for (i = 0; i < n; i++) {
    data_b[i] = data_a[i];
    data_c[i] = data_a[i];
  }
}

int main(int argc, char **argv) {
  int pattern = 0, n = 2000;
  if (argc > 1) pattern = atoi(argv[1]);
  if (argc > 2) n = atoi(argv[2]);
  if (n > MAX_N) n = MAX_N;
  n_elems = n;
  generate(pattern, n);
  cmp_count = 0;
  swap_count = 0;
  quicksort(data_a, 0, n - 1);
  heapsort(data_b, n);
  insertion_range(data_c, 0, n - 1);
  printf("n=%d ok=%d%d%d cmp=%d swap=%d sum=%d\n", n,
         is_sorted(data_a, n), is_sorted(data_b, n), is_sorted(data_c, n),
         cmp_count, swap_count, sum_mod(data_a, n));
  return 0;
}
|}

let program : Bench_prog.t =
  { Bench_prog.name = "sort_bench";
    description = "Quicksort / heapsort / insertion sort race";
    analogue = "sc (compute kernels)";
    source;
    runs =
      [ Bench_prog.run ~argv:[ "0"; "2000" ] ();
        Bench_prog.run ~argv:[ "1"; "1500" ] ();
        Bench_prog.run ~argv:[ "2"; "1200" ] ();
        Bench_prog.run ~argv:[ "3"; "2500" ] ();
        Bench_prog.run ~argv:[ "0"; "800" ] () ] }
