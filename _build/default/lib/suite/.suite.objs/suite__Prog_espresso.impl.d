lib/suite/prog_espresso.ml: Bench_prog List String
