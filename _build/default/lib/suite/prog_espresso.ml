(* espresso_mini: two-level logic minimization in the style of espresso's
   inner loops — cube (implicant) merging over a bit-vector cover. Reads
   minterms of an n-variable function and repeatedly merges distance-1
   cubes (the Quine-McCluskey step espresso approximates), then counts
   the prime cover. Branch-heavy bit manipulation with irregular loop
   trip counts, like the original. *)

let source = {|
#define MAX_CUBES 4096

/* A cube is (mask, bits): mask has 1 where the variable is a don't-care;
   bits holds the values of the cared-for variables. */
int cube_mask[MAX_CUBES];
int cube_bits[MAX_CUBES];
int cube_live[MAX_CUBES];
int n_cubes;
int n_vars;

int merges_done;
int passes_done;

int popcount(int x) {
  int n = 0;
  while (x) {
    n += x & 1;
    x >>= 1;
  }
  return n;
}

int add_cube(int mask, int bits) {
  int i;
  /* suppress duplicates */
  for (i = 0; i < n_cubes; i++) {
    if (cube_live[i] && cube_mask[i] == mask && cube_bits[i] == bits)
      return 0;
  }
  if (n_cubes >= MAX_CUBES) { printf("cover overflow\n"); exit(1); }
  cube_mask[n_cubes] = mask;
  cube_bits[n_cubes] = bits;
  cube_live[n_cubes] = 1;
  n_cubes++;
  return 1;
}

/* Can cubes i and j merge? They must agree on mask and differ in exactly
   one cared bit. Returns the merged-away bit or -1. */
int merge_distance(int i, int j) {
  int diff;
  if (cube_mask[i] != cube_mask[j]) return -1;
  diff = cube_bits[i] ^ cube_bits[j];
  if (diff == 0) return -1;
  if ((diff & (diff - 1)) != 0) return -1;  /* more than one bit */
  return diff;
}

/* One pass of pairwise merging; returns number of merges. Hot. */
int merge_pass(void) {
  int i, j, d, merged = 0, limit = n_cubes;
  for (i = 0; i < limit; i++) {
    if (!cube_live[i]) continue;
    for (j = i + 1; j < limit; j++) {
      if (!cube_live[j]) continue;
      d = merge_distance(i, j);
      if (d > 0) {
        if (add_cube(cube_mask[i] | d, cube_bits[i] & ~d)) {
          cube_live[i] = 0;
          cube_live[j] = 0;
          merged++;
          merges_done++;
        }
      }
    }
  }
  return merged;
}

/* Does live cube [c] contain minterm [m]? */
int covers(int c, int m) {
  return (cube_bits[c] & ~cube_mask[c]) == (m & ~cube_mask[c]);
}

int count_live(void) {
  int i, n = 0;
  for (i = 0; i < n_cubes; i++)
    if (cube_live[i]) n++;
  return n;
}

/* Verify the cover still covers all original minterms. */
int verify_cover(int *minterms, int n_min) {
  int k, c, ok, all_ok = 1;
  for (k = 0; k < n_min; k++) {
    ok = 0;
    for (c = 0; c < n_cubes && !ok; c++) {
      if (cube_live[c] && covers(c, minterms[k])) ok = 1;
    }
    if (!ok) all_ok = 0;
  }
  return all_ok;
}

int cover_cost(void) {
  int i, cost = 0;
  for (i = 0; i < n_cubes; i++)
    if (cube_live[i]) cost += n_vars - popcount(cube_mask[i]);
  return cost;
}

int read_int(void) {
  int c, v = 0, seen = 0;
  c = getchar();
  while (c == ' ' || c == '\n' || c == '\t' || c == '\r') c = getchar();
  while (c >= '0' && c <= '9') {
    v = v * 10 + (c - '0');
    seen = 1;
    c = getchar();
  }
  if (!seen) return -1;
  return v;
}

int main(void) {
  int minterms[2048];
  int n_min = 0, m;
  n_vars = read_int();
  if (n_vars <= 0 || n_vars > 16) { printf("bad var count\n"); return 1; }
  while ((m = read_int()) >= 0) {
    if (n_min < 2048) {
      minterms[n_min] = m;
      n_min++;
    }
  }
  n_cubes = 0;
  for (m = 0; m < n_min; m++) add_cube(0, minterms[m]);
  passes_done = 0;
  while (merge_pass() > 0) {
    passes_done++;
    if (passes_done > 32) break;
  }
  printf("vars=%d minterms=%d primes=%d cost=%d merges=%d passes=%d ok=%d\n",
         n_vars, n_min, count_live(), cover_cost(), merges_done,
         passes_done, verify_cover(minterms, n_min));
  return 0;
}
|}

(* Inputs: first number is the variable count, the rest are minterms. *)
let gen_input n_vars pred =
  let minterms = ref [] in
  for m = (1 lsl n_vars) - 1 downto 0 do
    if pred m then minterms := m :: !minterms
  done;
  string_of_int n_vars ^ "\n"
  ^ String.concat " " (List.map string_of_int !minterms)

let program : Bench_prog.t =
  { Bench_prog.name = "espresso_mini";
    description = "Two-level logic (cube cover) minimization";
    analogue = "espresso";
    source;
    runs =
      [ (* parity-ish: hard to merge *)
        Bench_prog.run ~input:(gen_input 7 (fun m -> (m land 1) + ((m lsr 1) land 1) + ((m lsr 2) land 1) mod 2 = 1)) ();
        (* threshold function: merges well *)
        Bench_prog.run ~input:(gen_input 8 (fun m -> m >= 96)) ();
        (* sparse random-ish *)
        Bench_prog.run ~input:(gen_input 9 (fun m -> (m * 2654435761) land 0xff < 40)) ();
        (* intervals *)
        Bench_prog.run ~input:(gen_input 8 (fun m -> (m >= 32 && m < 96) || m >= 200)) () ] }
