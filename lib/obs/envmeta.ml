(* Best-effort environment metadata, embedded in every persisted
   observability document (run records, bench JSON) so numbers collected
   on different machines can be told apart when they are compared.

   Everything here is dependency-free and never fails: a field that
   cannot be determined is the string "unknown". The git revision is
   read straight from the .git directory (no subprocess — the binaries
   must work without git on PATH, and bin/ does not link unix). *)

let read_file (path : string) : string option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s

let trim_line (s : string) : string =
  match String.index_opt s '\n' with
  | Some i -> String.trim (String.sub s 0 i)
  | None -> String.trim s

let is_hex (s : string) : bool =
  s <> ""
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

(* Walk up from [start] looking for a .git directory (or the "gitdir:"
   pointer file a worktree leaves behind). *)
let rec find_git_dir (dir : string) (fuel : int) : string option =
  if fuel = 0 then None
  else
    let cand = Filename.concat dir ".git" in
    if Sys.file_exists cand then
      if Sys.is_directory cand then Some cand
      else
        (* worktree: ".git" is a one-line file "gitdir: <path>" *)
        match read_file cand with
        | Some contents ->
          let line = trim_line contents in
          let prefix = "gitdir:" in
          if String.length line > String.length prefix
             && String.sub line 0 (String.length prefix) = prefix
          then
            let p =
              String.trim
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
            in
            Some (if Filename.is_relative p then Filename.concat dir p else p)
          else None
        | None -> None
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_git_dir parent (fuel - 1)

(* Resolve "ref: refs/heads/x" through the loose ref file or
   packed-refs; a detached HEAD is already the hash. *)
let resolve_ref (git_dir : string) (refname : string) : string option =
  match read_file (Filename.concat git_dir refname) with
  | Some contents when is_hex (trim_line contents) -> Some (trim_line contents)
  | _ -> (
    match read_file (Filename.concat git_dir "packed-refs") with
    | None -> None
    | Some packed ->
      String.split_on_char '\n' packed
      |> List.find_map (fun line ->
           match String.index_opt line ' ' with
           | Some i
             when String.sub line (i + 1) (String.length line - i - 1)
                  = refname
                  && is_hex (String.sub line 0 i) ->
             Some (String.sub line 0 i)
           | _ -> None))

let git_rev () : string =
  let result =
    match find_git_dir (Sys.getcwd ()) 64 with
    | None -> None
    | Some git_dir -> (
      match read_file (Filename.concat git_dir "HEAD") with
      | None -> None
      | Some head ->
        let head = trim_line head in
        if is_hex head then Some head
        else
          let prefix = "ref:" in
          if String.length head > String.length prefix
             && String.sub head 0 (String.length prefix) = prefix
          then
            resolve_ref git_dir
              (String.trim
                 (String.sub head (String.length prefix)
                    (String.length head - String.length prefix)))
          else None)
  in
  Option.value ~default:"unknown" result

let ocaml_version : string = Sys.ocaml_version

let cores () : int = Domain.recommended_domain_count ()

let common () : (string * string) list =
  [ ("git_rev", git_rev ());
    ("ocaml_version", ocaml_version);
    ("cores", string_of_int (cores ()));
    ("os", Sys.os_type);
    ("word_size", string_of_int Sys.word_size) ]
