test/test_lexer.ml: Alcotest Cfront Lexer List String Token
