(* End-to-end orchestration: compile C source, profile it on inputs, and
   score every estimator against the profiles with the paper's protocol.

   Scoring protocol (paper section 3):
   - a static estimate is compared separately to each profile and the
     scores averaged;
   - profiling-as-an-estimate is scored by matching each profile against
     the normalized aggregate of all the *other* profiles.

   Thread-safety audit (the parallel suite pipeline relies on this):
   [compile] threads all parser/typechecker/builder state through values
   it allocates; [run_once]/[profile_runs] mutate only the interpreter
   state and profile counters created for that run; the estimate tables
   built below are written once before the provider closure escapes and
   read-only afterwards. No function in this module writes global
   state. Estimators read [Config.current], which the ablation
   experiments mutate strictly between parallel regions. *)

module Ast = Cfront.Ast
module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Parser = Cfront.Parser
module Cfg = Cfg_ir.Cfg
module Build = Cfg_ir.Build
module Callgraph = Cfg_ir.Callgraph
module Eval = Cinterp.Eval
module Compile = Cinterp.Compile
module Profile = Cinterp.Profile

(* Interpreter back end used for profiling. [Tree] is the reference
   AST-walking [Eval]; [Compiled] is the closure-compiled [Compile] back
   end. Both produce bit-identical outcomes (test/test_compile.ml), so
   the selector only affects speed. *)
type backend = Tree | Compiled

let backend_to_string = function Tree -> "tree" | Compiled -> "compiled"

let backend_of_string = function
  | "tree" -> Some Tree
  | "compiled" -> Some Compiled
  | _ -> None

(* Process-wide default, set once from the CLI before any parallelism. *)
let default_backend = ref Compiled

type compiled = {
  name : string;
  source : string;
  tc : Typecheck.t;
  prog : Cfg.program;
  graph : Callgraph.t;
  exe_lock : Mutex.t;
  mutable exe : Compile.prog option;
      (* memoized closure-compiled program; [exe_lock] guards both the
         write and the read — the compiled record is shared across
         domains and a racy read of [exe] could observe a partially
         published value under the OCaml memory model *)
  usage_lock : Mutex.t;
  usage_tbl : (string, Usage.t) Hashtbl.t;
      (* per-function [Usage.of_fun] memo shared by estimator sweeps *)
  hash_lock : Mutex.t;
  mutable unit_sig : string option;
      (* memoized [Fnhash.unit_signature]; guarded by [hash_lock] *)
  hash_tbl : (string, string) Hashtbl.t;
      (* per-function [Fnhash.fn_hash] memo; guarded by [hash_lock] *)
}

let compile ?(defines = []) ~(name : string) (source : string) : compiled =
  Obs.Probe.with_span "compile" (fun () ->
      let tunit =
        Obs.Probe.with_span "parse" (fun () ->
            Parser.parse_string ~defines ~file:(name ^ ".c") source)
      in
      let tc = Obs.Probe.with_span "typecheck" (fun () -> Typecheck.check tunit) in
      let prog = Obs.Probe.with_span "cfg" (fun () -> Build.build tc) in
      { name; source; tc; prog; graph = Callgraph.build prog;
        exe_lock = Mutex.create (); exe = None;
        usage_lock = Mutex.create (); usage_tbl = Hashtbl.create 16;
        hash_lock = Mutex.create (); unit_sig = None;
        hash_tbl = Hashtbl.create 16 })

(* The closure-compiled executable for [c], built on first use. *)
let closure_exe (c : compiled) : Compile.prog =
  Mutex.lock c.exe_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.exe_lock)
    (fun () ->
      match c.exe with
      | Some exe -> exe
      | None ->
        let exe =
          Obs.Probe.with_span "compile.closures" (fun () ->
              Compile.compile c.prog)
        in
        c.exe <- Some exe;
        exe)

(* Memoized [Usage.of_fun]; a [Usage.t] is immutable after construction,
   so sharing one across estimator sweeps (and domains) is safe. *)
let usage_of (c : compiled) (fn : Cfg.fn) : Usage.t =
  Mutex.lock c.usage_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.usage_lock)
    (fun () ->
      match Hashtbl.find_opt c.usage_tbl fn.Cfg.fn_name with
      | Some u -> u
      | None ->
        let u = Usage.of_fun c.tc fn.Cfg.fn_def in
        Hashtbl.replace c.usage_tbl fn.Cfg.fn_name u;
        u)

(* Memoized per-function content hash (Cfront.Fnhash): the incremental
   store (Driver.Incr) keys intra solutions by it. The [Usage] summary
   is computed outside [hash_lock] so the two memo locks never nest. *)
let fn_hash (c : compiled) (fn : Cfg.fn) : string =
  let usage = usage_of c fn in
  Mutex.lock c.hash_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.hash_lock)
    (fun () ->
      match Hashtbl.find_opt c.hash_tbl fn.Cfg.fn_name with
      | Some h -> h
      | None ->
        let unit_sig =
          match c.unit_sig with
          | Some s -> s
          | None ->
            let s = Cfront.Fnhash.unit_signature c.tc in
            c.unit_sig <- Some s;
            s
        in
        let h = Cfront.Fnhash.fn_hash c.tc ~unit_sig usage fn.Cfg.fn_def in
        Hashtbl.replace c.hash_tbl fn.Cfg.fn_name h;
        h)

(* One profiling run: command-line arguments and stdin contents. *)
type run = { argv : string list; input : string }

let run_once ?fuel ?deadline_s ?backend (c : compiled) (r : run) :
    Eval.outcome =
  Obs.Probe.with_span "profile" (fun () ->
      match
        (match backend with Some b -> b | None -> !default_backend)
      with
      | Tree ->
        Obs.Probe.count "interp.dispatch.tree";
        Eval.run ?fuel ?deadline_s ~argv:r.argv ~input:r.input c.prog
      | Compiled ->
        Obs.Probe.count "interp.dispatch.compiled";
        Compile.run ?fuel ?deadline_s ~argv:r.argv ~input:r.input
          (closure_exe c))

let profile_runs ?fuel ?deadline_s ?backend (c : compiled)
    (runs : run list) : Profile.t list =
  List.map
    (fun r -> (run_once ?fuel ?deadline_s ?backend c r).Eval.profile)
    runs

(* ------------------------------------------------------------------ *)
(* Intra-procedural estimates: per-function block frequency arrays. *)

type intra_kind = Iloop | Ismart | Imarkov | Istructural | Icombined

let intra_kind_to_string = function
  | Iloop -> "loop"
  | Ismart -> "smart"
  | Imarkov -> "markov"
  | Istructural -> "structural"
  | Icombined -> "markov-wl"

let intra_kind_of_string = function
  | "loop" -> Some Iloop
  | "smart" -> Some Ismart
  | "markov" -> Some Imarkov
  | "structural" -> Some Istructural
  | "markov-wl" -> Some Icombined
  | _ -> None

let all_intra_kinds = [ Iloop; Ismart; Imarkov; Istructural; Icombined ]

(* The block-frequency estimate of one function — the unit of work the
   incremental store caches. *)
let intra_freqs_fn (c : compiled) (kind : intra_kind) (fn : Cfg.fn) :
    float array =
  (* The Markov kinds degrade to the loop estimate of the same
     function when their solve chain exhausts — the weakest
     estimator the paper still found useful, and one that cannot
     fail. *)
  let loop_fallback =
    ("loop estimate",
     fun () -> Ast_estimator.block_freqs c.tc fn Ast_estimator.Loop)
  in
  match kind with
  | Iloop -> Ast_estimator.block_freqs c.tc fn Ast_estimator.Loop
  | Ismart -> Ast_estimator.block_freqs c.tc fn Ast_estimator.Smart
  | Imarkov ->
    Markov_intra.block_freqs ~usage:(usage_of c fn)
      ~inject_key:c.name ~fallback:loop_fallback c.tc fn
  | Istructural -> Structural_estimator.block_freqs_refined fn
  | Icombined ->
    Markov_intra.block_freqs_combined ~usage:(usage_of c fn)
      ~inject_key:c.name ~fallback:loop_fallback c.tc fn

(* Per-function caching hook. [Driver.Incr.install] replaces the
   pass-through so every intra sweep in the process — suite runs,
   experiments, the serve daemon — is served from the content-addressed
   store. Core cannot depend on Driver, hence the injection point. The
   hook must either return [compute ()] or a bit-identical previous
   return of an equivalent computation; [Incr] keys entries by function
   content hash, solver mode and the [Config] fingerprint to guarantee
   that. *)
let intra_cache_hook :
    (compiled -> intra_kind -> Cfg.fn -> (unit -> float array) -> float array)
    ref =
  ref (fun _ _ _ compute -> compute ())

let intra_table (c : compiled) (kind : intra_kind) :
    (string, float array) Hashtbl.t =
  Obs.Probe.with_span ("intra." ^ intra_kind_to_string kind) (fun () ->
  Obs.Inject.fire "estimate" ~key:c.name;
  let table = Hashtbl.create 32 in
  List.iter
    (fun fn ->
      let freqs =
        !intra_cache_hook c kind fn (fun () -> intra_freqs_fn c kind fn)
      in
      Hashtbl.replace table fn.Cfg.fn_name freqs)
    c.prog.Cfg.prog_fns;
  table)

let intra_provider (c : compiled) (kind : intra_kind) :
    string -> float array =
  let table = intra_table c kind in
  fun name -> Hashtbl.find table name

(* Block counts of a profile as an intra "estimate" (for scoring the
   profiling column). *)
let intra_of_profile (p : Profile.t) : string -> float array =
 fun name -> Profile.block_counts p name

(* Invocation-weighted per-function weight-matching score of an intra
   estimate against one profile (Figure 4's metric). Functions that the
   evaluation profile never invokes carry no weight. *)
let intra_score (c : compiled) ~(estimate : string -> float array)
    (eval_profile : Profile.t) ~(cutoff : float) : float =
  let pairs =
    List.filter_map
      (fun fn ->
        let inv = Profile.invocations eval_profile fn in
        if inv <= 0.0 then None
        else begin
          let actual = Profile.block_counts eval_profile fn.Cfg.fn_name in
          let score =
            Weight_matching.score ~estimate:(estimate fn.Cfg.fn_name)
              ~actual ~cutoff
          in
          Some (score, inv)
        end)
      c.prog.Cfg.prog_fns
  in
  Weight_matching.weighted_mean pairs

(* ------------------------------------------------------------------ *)
(* Inter-procedural estimates: invocation counts per function. *)

type inter_kind =
  | Isimple of Inter_simple.kind
  | Imarkov_inter

let inter_kind_to_string = function
  | Isimple k -> Inter_simple.kind_to_string k
  | Imarkov_inter -> "markov"

(* Estimated invocation counts, in call-graph node order. The paper
   builds every inter-procedural estimator on the smart intra
   estimates. *)
let inter_estimate (c : compiled) ~(intra : string -> float array)
    (kind : inter_kind) : float array =
  Obs.Probe.with_span ("inter." ^ inter_kind_to_string kind) (fun () ->
      Obs.Inject.fire "estimate" ~key:c.name;
      let assoc =
        match kind with
        | Isimple k -> Inter_simple.estimate c.graph ~intra k
        | Imarkov_inter ->
          (Markov_inter.estimate ~inject_key:c.name c.graph ~intra)
            .Markov_inter.freqs
      in
      Array.of_list (List.map snd assoc))

(* Actual invocation counts, same order. *)
let inter_actual (c : compiled) (p : Profile.t) : float array =
  Array.map
    (fun name ->
      let fn = Option.get (Cfg.find_fn c.prog name) in
      Profile.invocations p fn)
    c.graph.Callgraph.names

let inter_score ~(estimate : float array) ~(actual : float array)
    ~(cutoff : float) : float =
  Weight_matching.score ~estimate ~actual ~cutoff

(* ------------------------------------------------------------------ *)
(* Call-site ranking. *)

(* Estimated direct-call-site frequencies in [Cfg.direct_sites] order. *)
let callsite_estimate (c : compiled) ~(intra : string -> float array)
    (kind : inter_kind) : float array =
  let inv = inter_estimate c ~intra kind in
  let by_name name =
    match Callgraph.node_of_name c.graph name with
    | Some i -> inv.(i)
    | None -> 0.0
  in
  Callsite_rank.estimate c.prog ~intra ~inter:by_name
  |> List.map snd |> Array.of_list

let callsite_actual (c : compiled) (p : Profile.t) : float array =
  Callsite_rank.actual c.prog p |> List.map snd |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Cross-validation over a program's profiles. *)

(* Mean score of a fixed estimate against each profile. *)
let mean_over_profiles (profiles : Profile.t list)
    (score_against : Profile.t -> float) : float =
  match profiles with
  | [] -> invalid_arg "mean_over_profiles: no profiles"
  | _ ->
    List.fold_left (fun acc p -> acc +. score_against p) 0.0 profiles
    /. float_of_int (List.length profiles)

(* Mean score of profiling-as-estimate: each profile is predicted by the
   aggregate of the others (or by itself if it is the only one). *)
let cross_profile_mean (c : compiled) (profiles : Profile.t list)
    (score : train:Profile.t -> eval_p:Profile.t -> float) : float =
  match profiles with
  | [] -> invalid_arg "cross_profile_mean: no profiles"
  | [ p ] -> score ~train:p ~eval_p:p
  | _ ->
    let n = List.length profiles in
    let total = ref 0.0 in
    List.iteri
      (fun i p ->
        let others = List.filteri (fun j _ -> j <> i) profiles in
        let train = Profile.aggregate c.prog others in
        total := !total +. score ~train ~eval_p:p)
      profiles;
    !total /. float_of_int n

(* ------------------------------------------------------------------ *)
(* Cost model for the selective-optimization experiment (Figure 10). *)

(* Static cost of a block: one unit plus one per expression node. *)
let block_costs (fn : Cfg.fn) : float array =
  let expr_nodes (e : Ast.expr) =
    let n = ref 0 in
    Ast.iter_expr (fun _ -> incr n) e;
    !n
  in
  Array.map
    (fun (b : Cfg.block) ->
      let instrs =
        List.fold_left
          (fun acc instr ->
            acc
            +
            match instr with
            | Cfg.Iexpr e -> expr_nodes e
            | Cfg.Ilocal_init (_, d) -> (
              match d.Ast.d_init with
              | Some (Ast.Iexpr e) -> expr_nodes e
              | _ -> 1))
          0 b.Cfg.b_instrs
      in
      let term =
        match b.Cfg.b_term with
        | Cfg.Tbranch (br, _, _) -> expr_nodes br.Cfg.br_cond
        | Cfg.Tswitch (e, _, _) -> expr_nodes e
        | Cfg.Treturn (Some e) -> expr_nodes e
        | Cfg.Tjump _ | Cfg.Treturn None -> 0
      in
      1.0 +. float_of_int (instrs + term))
    fn.Cfg.fn_blocks

(* Speedup factor applied to blocks of optimized functions: gcc -O2 on
   unoptimized code bought roughly 2x on compress-like integer code. *)
let optimized_cost_factor = 0.5

(* Modelled run time of [profile] when the functions in [optimized] are
   compiled with optimization. *)
let modelled_time (c : compiled) (profile : Profile.t)
    ~(optimized : string list) : float =
  List.fold_left
    (fun acc fn ->
      let costs = block_costs fn in
      let counts = Profile.block_counts profile fn.Cfg.fn_name in
      let factor =
        if List.mem fn.Cfg.fn_name optimized then optimized_cost_factor
        else 1.0
      in
      let fn_time = ref 0.0 in
      Array.iteri
        (fun i cost -> fn_time := !fn_time +. (cost *. counts.(i)))
        costs;
      acc +. (factor *. !fn_time))
    0.0 c.prog.Cfg.prog_fns
