(* Compressed sparse row form of the Markov system matrix.

   The Markov estimators solve (I - P^T) x = e over matrices that are
   overwhelmingly sparse: a CFG block has a couple of successors, a
   call-graph node a handful of callees, so the dense n*n build wastes
   O(n^2) memory and the elimination O(n^3) time on zeros. This module
   builds A = I - scale*P^T row by row, directly from the weighted arc
   list the estimators already produce — no dense intermediate.

   Layout: the diagonal is stored separately ([diag], dense over rows),
   off-diagonal entries in the usual row_start/cols/vals triple. Keeping
   the diagonal out of the triple means duplicate self-arcs fold into
   [diag] exactly like the dense build's [add_to], and the Gauss-Seidel
   sweep reads a_ii without scanning its row. Duplicate off-diagonal
   arcs are left unmerged: every consumer sums a row's entries, so
   duplicates contribute identically to a merged entry.

   All arrays live in the per-domain [Scratch] buffers and are
   oversized; consumers must bound their loops by [n]/[row_start] and
   never by [Array.length]. A [t] is therefore only valid until the
   next solve on the same domain. *)

(* Arc producer: calls its argument once per weighted arc (src, dst, p).
   Must be re-runnable (the build makes two passes) and deliver the
   same arcs in the same order both times. *)
type arcs_iter = (int -> int -> float -> unit) -> unit

type t = {
  n : int;
  nnz : int;                (* off-diagonal entry count *)
  row_start : int array;    (* length >= n+1; row i at [row_start.(i), row_start.(i+1)) *)
  cols : int array;         (* length >= nnz *)
  vals : float array;       (* length >= nnz *)
  diag : float array;       (* length >= n; a_ii *)
}

let bad_arc src dst n =
  invalid_arg
    (Printf.sprintf "Csr.of_markov_arcs: arc (%d -> %d) outside [0, %d)" src
       dst n)

(* Build A = I - scale*P^T from the arcs: arc (src, dst, p) contributes
   -p*scale at row dst, column src. Arc endpoints are validated — a
   malformed graph surfaces as a typed [Invalid_argument] here, not an
   index error deep in a sweep. *)
let of_markov_arcs ?(scale = 1.0) ~(n : int) (arcs : arcs_iter) : t =
  let s = Scratch.get () in
  let fill = Scratch.fill s n in
  Array.fill fill 0 n 0;
  (* pass 1: validate and count off-diagonal entries per row (= dst) *)
  let nnz = ref 0 in
  arcs (fun src dst _p ->
      if src < 0 || src >= n || dst < 0 || dst >= n then bad_arc src dst n;
      if src <> dst then begin
        fill.(dst) <- fill.(dst) + 1;
        incr nnz
      end);
  let nnz = !nnz in
  let row_start = Scratch.row_start s (n + 1) in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    row_start.(i) <- !acc;
    acc := !acc + fill.(i)
  done;
  row_start.(n) <- !acc;
  (* pass 2: place entries; [fill] becomes the per-row write cursor *)
  Array.blit row_start 0 fill 0 n;
  let cols = Scratch.cols s (max 1 nnz) in
  let vals = Scratch.vals s (max 1 nnz) in
  let diag = Scratch.diag s n in
  Array.fill diag 0 n 1.0;
  arcs (fun src dst p ->
      let w = -.(p *. scale) in
      if src = dst then diag.(dst) <- diag.(dst) +. w
      else begin
        let pos = fill.(dst) in
        cols.(pos) <- src;
        vals.(pos) <- w;
        fill.(dst) <- pos + 1
      end);
  { n; nnz; row_start; cols; vals; diag }

(* Largest |entry| of the matrix — the same relative-scale notion the
   dense solver's pivot threshold uses. *)
let scale_of (a : t) : float =
  let m = ref 0.0 in
  for i = 0 to a.n - 1 do
    let v = Float.abs a.diag.(i) in
    if v > !m then m := v
  done;
  for k = 0 to a.nnz - 1 do
    let v = Float.abs a.vals.(k) in
    if v > !m then m := v
  done;
  !m

(* y <- A x (for tests and residual checks). [y] may not alias [x]. *)
let mul_vec (a : t) (x : float array) (y : float array) : unit =
  for i = 0 to a.n - 1 do
    let s = ref (a.diag.(i) *. x.(i)) in
    for k = a.row_start.(i) to a.row_start.(i + 1) - 1 do
      s := !s +. (a.vals.(k) *. x.(a.cols.(k)))
    done;
    y.(i) <- !s
  done
