lib/core/pipeline.mli: Cfg_ir Cfront Cinterp Hashtbl Inter_simple
