(* Lexical tokens for the C subset.

   Keywords that the subset parses but treats as no-ops (e.g. [const],
   [volatile], [register]) still get distinct tokens so the parser can skip
   them in a principled way. *)

type pos = { file : string; line : int; col : int }

let dummy_pos = { file = "<none>"; line = 0; col = 0 }

let pp_pos fmt p = Format.fprintf fmt "%s:%d:%d" p.file p.line p.col

type t =
  (* Literals and identifiers *)
  | IDENT of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | CHAR_LIT of int
  | STRING_LIT of string
  (* Keywords *)
  | KW_VOID | KW_CHAR | KW_INT | KW_LONG | KW_SHORT | KW_FLOAT | KW_DOUBLE
  | KW_SIGNED | KW_UNSIGNED
  | KW_STRUCT | KW_UNION | KW_ENUM | KW_TYPEDEF
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_SWITCH | KW_CASE
  | KW_DEFAULT | KW_BREAK | KW_CONTINUE | KW_GOTO | KW_RETURN
  | KW_SIZEOF
  | KW_STATIC | KW_EXTERN | KW_AUTO | KW_REGISTER | KW_CONST | KW_VOLATILE
  (* Punctuation and operators *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | QUESTION | ELLIPSIS
  | DOT | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | PLUSPLUS | MINUSMINUS
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | LT | GT | LE | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN | PERCENT_ASSIGN
  | AMP_ASSIGN | PIPE_ASSIGN | CARET_ASSIGN | LSHIFT_ASSIGN | RSHIFT_ASSIGN
  | EOF

let keyword_table : (string * t) list =
  [ ("void", KW_VOID); ("char", KW_CHAR); ("int", KW_INT); ("long", KW_LONG);
    ("short", KW_SHORT); ("float", KW_FLOAT); ("double", KW_DOUBLE);
    ("signed", KW_SIGNED); ("unsigned", KW_UNSIGNED);
    ("struct", KW_STRUCT); ("union", KW_UNION); ("enum", KW_ENUM);
    ("typedef", KW_TYPEDEF);
    ("if", KW_IF); ("else", KW_ELSE); ("while", KW_WHILE); ("do", KW_DO);
    ("for", KW_FOR); ("switch", KW_SWITCH); ("case", KW_CASE);
    ("default", KW_DEFAULT); ("break", KW_BREAK); ("continue", KW_CONTINUE);
    ("goto", KW_GOTO); ("return", KW_RETURN); ("sizeof", KW_SIZEOF);
    ("static", KW_STATIC); ("extern", KW_EXTERN); ("auto", KW_AUTO);
    ("register", KW_REGISTER); ("const", KW_CONST); ("volatile", KW_VOLATILE) ]

let keyword_of_string s = List.assoc_opt s keyword_table

let to_string = function
  | IDENT s -> s
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "'%s'" (Char.escaped (Char.chr (c land 0xff)))
  | STRING_LIT s -> Printf.sprintf "%S" s
  | KW_VOID -> "void" | KW_CHAR -> "char" | KW_INT -> "int"
  | KW_LONG -> "long" | KW_SHORT -> "short" | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double" | KW_SIGNED -> "signed" | KW_UNSIGNED -> "unsigned"
  | KW_STRUCT -> "struct" | KW_UNION -> "union" | KW_ENUM -> "enum"
  | KW_TYPEDEF -> "typedef"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_DO -> "do"
  | KW_FOR -> "for" | KW_SWITCH -> "switch" | KW_CASE -> "case"
  | KW_DEFAULT -> "default" | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue" | KW_GOTO -> "goto" | KW_RETURN -> "return"
  | KW_SIZEOF -> "sizeof"
  | KW_STATIC -> "static" | KW_EXTERN -> "extern" | KW_AUTO -> "auto"
  | KW_REGISTER -> "register" | KW_CONST -> "const"
  | KW_VOLATILE -> "volatile"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | COLON -> ":" | QUESTION -> "?"
  | ELLIPSIS -> "..."
  | DOT -> "." | ARROW -> "->"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | LSHIFT -> "<<" | RSHIFT -> ">>"
  | LT -> "<" | GT -> ">" | LE -> "<=" | GE -> ">=" | EQEQ -> "==" | NEQ -> "!="
  | ANDAND -> "&&" | OROR -> "||"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+=" | MINUS_ASSIGN -> "-=" | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/=" | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&=" | PIPE_ASSIGN -> "|=" | CARET_ASSIGN -> "^="
  | LSHIFT_ASSIGN -> "<<=" | RSHIFT_ASSIGN -> ">>="
  | EOF -> "<eof>"
