examples/quickstart.mli:
