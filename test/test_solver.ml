(* Sparse-vs-dense solver differential tests.

   The sparse iterative path is allowed to differ from the dense
   elimination by solver noise, bounded by the drift gate's epsilon band
   ([Drift.default_solver_band]); everything the solver does not touch
   must stay bit-identical. These tests pin that contract at three
   levels: the full 16-program experiment matrix, a 100-program corpus
   sample, and the raw solver chain on a divergent system (which must
   fall back to the dense answer, negative entries and all). *)

module Linsolve = Linalg.Linsolve
module Drift = Driver.Drift
module Score = Driver.Score
module Pipeline = Core.Pipeline
module Cfg = Cfg_ir.Cfg
module MI = Core.Markov_intra
module Genprog = Corpus.Genprog
module Shape = Corpus.Shape

(* Every test restores the process-wide solver mode: the rest of the
   test binary assumes the default (dense). *)
let with_mode (mode : Linsolve.mode) (f : unit -> 'a) : 'a =
  let saved = !Linsolve.solver_mode in
  Linsolve.solver_mode := mode;
  Fun.protect ~finally:(fun () -> Linsolve.solver_mode := saved) f

let rel_within band a b =
  let d = Float.abs (a -. b) in
  d <= band *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* --- full experiment matrix ------------------------------------------- *)

(* Run every experiment under both modes and hold each score pair to the
   drift gate's own rule: solver-derived scores within the band,
   everything else bit-identical. This is the same comparison `bin diff
   --solver-band` applies to a sparse run record. *)
let test_experiments_within_band () =
  let scores_under mode =
    with_mode mode (fun () ->
        Score.reset ();
        ignore (Driver.Experiments.run_all ());
        let scores = Score.all () in
        Score.reset ();
        scores)
  in
  let dense = scores_under Linsolve.Dense in
  let sparse = scores_under Linsolve.Sparse in
  Alcotest.(check bool) "matrix is non-trivial" true (List.length dense > 100);
  Alcotest.(check int) "same score set" (List.length dense)
    (List.length sparse);
  let solver_touched = ref 0 in
  List.iter2
    (fun (d : Score.t) (s : Score.t) ->
      Alcotest.(check string) "same key order"
        (Score.key_to_string (Score.key d))
        (Score.key_to_string (Score.key s));
      let label = Score.key_to_string (Score.key d) in
      if Drift.solver_derived d then begin
        if s.Score.s_value <> d.Score.s_value then incr solver_touched;
        Alcotest.(check bool)
          (label ^ " within solver band")
          true
          (Drift.within_band ~band:Drift.default_solver_band
             d.Score.s_value s.Score.s_value)
      end
      else
        Alcotest.(check bool)
          (label ^ " bit-identical (solver-independent)")
          true
          (compare d.Score.s_value s.Score.s_value = 0))
    dense sparse;
  (* If no solver-derived score moved at all, the sparse path almost
     certainly never ran and this test is vacuous. *)
  Alcotest.(check bool) "sparse solver actually exercised" true
    (!solver_touched > 0)

(* --- corpus sample ---------------------------------------------------- *)

(* 100 generated programs (4 classes x 25 seeds, small shapes): per
   function, the sparse block frequencies must track the dense ones
   within the band. Exercises loop nests, branchy CFGs, pointer tables
   and recursion — shapes the 16-program suite undersamples. *)
let test_corpus_sample_within_band () =
  let checked = ref 0 in
  List.iter
    (fun cls ->
      for index = 0 to 24 do
        let name = Genprog.name cls index in
        let src =
          Genprog.generate ~seed:11 ~cls ~size:Shape.small ~index
        in
        let c = Pipeline.compile ~name src in
        List.iter
          (fun (fn : Cfg.fn) ->
            let freqs_under mode =
              with_mode mode (fun () -> MI.block_freqs c.Pipeline.tc fn)
            in
            let d = freqs_under Linsolve.Dense in
            let s = freqs_under Linsolve.Sparse in
            Alcotest.(check int)
              (name ^ ": same block count")
              (Array.length d) (Array.length s);
            Array.iteri
              (fun i dv ->
                incr checked;
                if not (rel_within Drift.default_solver_band dv s.(i)) then
                  Alcotest.failf "%s block %d: dense %.17g vs sparse %.17g"
                    name i dv s.(i))
              d)
          c.Pipeline.prog.Cfg.prog_fns
      done)
    Shape.all_classes;
  Alcotest.(check bool) "compared a real population" true (!checked > 500)

(* --- divergent system: the dense fallback ----------------------------- *)

(* Arc probabilities > 1 make rho(I - A) > 1: both iterative solvers
   blow up, and the sparse chain must hand back exactly the dense
   elimination's answer — including its negative entries, which the
   estimator-level validity checks key off. *)
let divergent_arcs = [ (0, 1, 2.0); (1, 0, 2.0) ]

let test_divergent_falls_back_to_dense () =
  let solve mode =
    with_mode mode (fun () ->
        Linsolve.markov_frequencies ~n:2 ~source:0 divergent_arcs)
  in
  let d = solve Linsolve.Dense in
  let s = solve Linsolve.Sparse in
  Alcotest.(check bool) "sparse = dense bitwise (fallback ran)" true (d = s);
  (* the genuine solution of (I-A)x=b here: x0 = -1/3, x1 = -2/3 *)
  Alcotest.(check bool) "solution is the real (negative) one" true
    (s.(0) < 0.0 && s.(1) < 0.0)

(* Past [dense_fallback_limit] the n*n fallback would be an OOM, so a
   divergent sparse solve must surface as [Singular] for the damping
   chain instead of attempting the dense build. *)
let test_divergent_over_limit_is_singular () =
  let n = Linsolve.dense_fallback_limit + 1 in
  with_mode Linsolve.Sparse (fun () ->
      match Linsolve.markov_frequencies ~n ~source:0 divergent_arcs with
      | exception Linsolve.Singular _ -> ()
      | _ -> Alcotest.fail "expected Singular past the dense fallback limit")

(* The estimator-level solve must stay *total* on the same system: the
   damping retries shrink rho below 1, so a huge divergent system still
   produces finite frequencies without ever building a dense matrix. *)
let test_over_limit_damping_chain_recovers () =
  let n = Linsolve.dense_fallback_limit + 1 in
  with_mode Linsolve.Sparse (fun () ->
      let x = MI.solve_blocks ~n ~entry:0 divergent_arcs in
      Alcotest.(check int) "full solution" n (Array.length x);
      Alcotest.(check bool) "finite frequencies" true
        (Array.for_all Float.is_finite x))

let suite =
  [ Alcotest.test_case "experiment matrix sparse vs dense" `Slow
      test_experiments_within_band;
    Alcotest.test_case "corpus sample sparse vs dense" `Slow
      test_corpus_sample_within_band;
    Alcotest.test_case "divergent system falls back to dense" `Quick
      test_divergent_falls_back_to_dense;
    Alcotest.test_case "divergent past limit raises Singular" `Quick
      test_divergent_over_limit_is_singular;
    Alcotest.test_case "damping chain recovers past limit" `Quick
      test_over_limit_damping_chain_recovers ]
