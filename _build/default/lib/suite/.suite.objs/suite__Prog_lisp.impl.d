lib/suite/prog_lisp.ml: Bench_prog List Printf String
