lib/suite/prog_tree.ml: Bench_prog
