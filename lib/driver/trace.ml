(* Aggregation and reporting over the Obs.Probe recording layer. *)

module Probe = Obs.Probe

let enable () = Probe.set_enabled true
let enabled = Probe.enabled
let with_span = Probe.with_span

(* ------------------------------------------------------------------ *)
(* Deterministic aggregation: the flat id-sorted span stream becomes a
   tree of (label, count, total) nodes. Children are attached to their
   recorded parent; spans whose parent never closed (or crossed a domain
   without [with_parent]) surface as roots. Sibling spans with the same
   label merge; label order within a level is first-seen id order, which
   depends only on execution structure. *)

type node = {
  label : string;
  mutable n_count : int;
  mutable n_total_ns : int64;
  mutable kids : Probe.span list; (* reversed; re-sorted on aggregation *)
}

let duration (s : Probe.span) = Int64.sub s.Probe.stop_ns s.Probe.start_ns

let rec aggregate (spans : Probe.span list)
    (children : (int, Probe.span list) Hashtbl.t) : node list =
  (* [spans] arrives id-sorted; keep first-seen label order. *)
  let order : string list ref = ref [] in
  let by_label : (string, node) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Probe.span) ->
      let node =
        match Hashtbl.find_opt by_label s.Probe.label with
        | Some n -> n
        | None ->
          let n =
            { label = s.Probe.label; n_count = 0; n_total_ns = 0L; kids = [] }
          in
          Hashtbl.replace by_label s.Probe.label n;
          order := s.Probe.label :: !order;
          n
      in
      node.n_count <- node.n_count + 1;
      node.n_total_ns <- Int64.add node.n_total_ns (duration s);
      node.kids <-
        Option.value ~default:[] (Hashtbl.find_opt children s.Probe.id)
        @ node.kids)
    spans;
  List.rev_map (fun label -> Hashtbl.find by_label label) !order

and resolve_kids children (n : node) : node list =
  aggregate
    (List.sort (fun a b -> compare a.Probe.id b.Probe.id) n.kids)
    children

(* The spans/children tables shared by both renderers. *)
let span_tables () =
  let spans = Probe.spans () in
  let ids = Hashtbl.create 256 in
  List.iter (fun (s : Probe.span) -> Hashtbl.replace ids s.Probe.id ()) spans;
  let children : (int, Probe.span list) Hashtbl.t = Hashtbl.create 256 in
  let roots =
    List.filter
      (fun (s : Probe.span) ->
        if s.Probe.parent >= 0 && Hashtbl.mem ids s.Probe.parent then begin
          Hashtbl.replace children s.Probe.parent
            (s
            :: Option.value ~default:[]
                 (Hashtbl.find_opt children s.Probe.parent));
          false
        end
        else true)
      spans
  in
  (roots, children)

let ms_of_ns ns = Int64.to_float ns /. 1e6

let render_tree () : string =
  let roots, children = span_tables () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "trace: pipeline spans (count × total wall time)\n";
  let rec render indent nodes =
    List.iter
      (fun n ->
        Buffer.add_string buf
          (Printf.sprintf "%s%-*s %6d× %10.3f ms\n" indent
             (max 1 (40 - String.length indent))
             n.label n.n_count
             (ms_of_ns n.n_total_ns));
        render (indent ^ "  ") (resolve_kids children n))
      nodes
  in
  render "  " (aggregate roots children);
  let counters = Probe.counters () in
  if counters <> [] then begin
    Buffer.add_string buf "trace: counters\n";
    List.iter
      (fun (name, (c : Probe.counter)) ->
        if c.Probe.vmin = 1.0 && c.Probe.vmax = 1.0 then
          Buffer.add_string buf
            (Printf.sprintf "  %-40s %10d\n" name c.Probe.hits)
        else
          Buffer.add_string buf
            (Printf.sprintf "  %-40s %10d  total %.6g  min %.6g  max %.6g\n"
               name c.Probe.hits c.Probe.total c.Probe.vmin c.Probe.vmax))
      counters
  end;
  let gauges = Probe.gauges () in
  if gauges <> [] then begin
    Buffer.add_string buf "trace: gauges (last value)\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-40s %10.6g\n" name v))
      gauges
  end;
  (* Degradations taken during the run; absent entirely when healthy,
     so healthy trace output is unchanged. *)
  let faults = Fault.summary () in
  if faults <> "" then begin
    Buffer.add_string buf "trace: faults\n";
    Buffer.add_string buf faults
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON export. Hand-rolled: the repository deliberately has no JSON
   dependency, and the document is flat. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity; counters observing them must not corrupt
   the document. *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.6g" v
  else Printf.sprintf "\"%s\"" (string_of_float v)

let metrics_json () : string =
  let roots, children = span_tables () in
  (* flatten the aggregate tree into slash-joined paths *)
  let rows : (string * int * float) list ref = ref [] in
  let rec walk prefix nodes =
    List.iter
      (fun n ->
        let path = if prefix = "" then n.label else prefix ^ "/" ^ n.label in
        rows := (path, n.n_count, ms_of_ns n.n_total_ns) :: !rows;
        walk path (resolve_kids children n))
      nodes
  in
  walk "" (aggregate roots children);
  let rows = List.sort compare (List.rev !rows) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"jobs\": %d,\n" (Parallel.jobs ()));
  Buffer.add_string buf "  \"spans\": [\n";
  List.iteri
    (fun i (path, count, total_ms) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"path\": \"%s\", \"count\": %d, \"total_ms\": %s}%s\n"
           (json_escape path) count (json_float total_ms)
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"counters\": [\n";
  let counters = Probe.counters () in
  List.iteri
    (fun i (name, (c : Probe.counter)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"hits\": %d, \"total\": %s, \"min\": \
            %s, \"max\": %s}%s\n"
           (json_escape name) c.Probe.hits (json_float c.Probe.total)
           (json_float c.Probe.vmin) (json_float c.Probe.vmax)
           (if i < List.length counters - 1 then "," else "")))
    counters;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"gauges\": [\n";
  let gauges = Probe.gauges () in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": \"%s\", \"value\": %s}%s\n"
           (json_escape name) (json_float v)
           (if i < List.length gauges - 1 then "," else "")))
    gauges;
  Buffer.add_string buf "  ],\n";
  (* Every degradation the run recorded, in the deterministic
     [Fault.sorted] order — the chaos CI job archives this document as
     its fault-summary artifact. *)
  Buffer.add_string buf "  \"faults\": [\n";
  let faults = Fault.sorted () in
  List.iteri
    (fun i (f : Fault.t) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"stage\": \"%s\", \"subject\": \"%s\", \"detail\": \
            \"%s\", \"exn\": \"%s\", \"recovery\": \"%s\"}%s\n"
           (json_escape (Fault.stage_to_string f.Fault.f_stage))
           (json_escape f.Fault.f_subject)
           (json_escape f.Fault.f_detail)
           (json_escape f.Fault.f_exn)
           (json_escape f.Fault.f_recovery)
           (if i < List.length faults - 1 then "," else "")))
    faults;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let with_reporting ~(trace : bool) ~(metrics_out : string option) f =
  let wanted = trace || metrics_out <> None in
  if wanted then enable ();
  let report () =
    if wanted then begin
      if trace then prerr_string (render_tree ());
      match metrics_out with
      | Some path ->
        let oc = open_out path in
        output_string oc (metrics_json ());
        close_out oc;
        Printf.eprintf "[metrics written to %s]\n%!" path
      | None -> ()
    end
  in
  Fun.protect ~finally:report (fun () -> with_span "run" f)
