(* Hand-written lexer for the C subset.

   Operates on a whole source string (the mini preprocessor in [Preproc] runs
   first and produces plain C text). Produces a list of located tokens; the
   parser consumes them through a cursor. *)

exception Error of string * Token.pos

type located = { tok : Token.t; pos : Token.pos }

type state = {
  src : string;
  file : string;
  mutable off : int;   (* byte offset into [src] *)
  mutable line : int;
  mutable bol : int;   (* offset of beginning of current line *)
}

let make ~file src = { src; file; off = 0; line = 1; bol = 0 }

let pos st : Token.pos =
  { file = st.file; line = st.line; col = st.off - st.bol + 1 }

let error st msg = raise (Error (msg, pos st))

let at_end st = st.off >= String.length st.src

let peek st = if at_end st then '\000' else st.src.[st.off]

let peek2 st =
  if st.off + 1 >= String.length st.src then '\000' else st.src.[st.off + 1]

let peek3 st =
  if st.off + 2 >= String.length st.src then '\000' else st.src.[st.off + 2]

let advance st =
  if peek st = '\n' then begin
    st.line <- st.line + 1;
    st.off <- st.off + 1;
    st.bol <- st.off
  end else st.off <- st.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(* Skip whitespace and comments; returns unit, may raise on unterminated
   comment. *)
let rec skip_trivia st =
  if at_end st then ()
  else
    match peek st with
    | ' ' | '\t' | '\r' | '\n' -> advance st; skip_trivia st
    | '/' when peek2 st = '*' ->
      let start = pos st in
      advance st; advance st;
      let rec loop () =
        if at_end st then
          raise (Error ("unterminated comment", start))
        else if peek st = '*' && peek2 st = '/' then begin
          advance st; advance st
        end else begin
          advance st; loop ()
        end
      in
      loop (); skip_trivia st
    | '/' when peek2 st = '/' ->
      while (not (at_end st)) && peek st <> '\n' do advance st done;
      skip_trivia st
    | _ -> ()

let lex_ident st =
  let start = st.off in
  while is_ident_char (peek st) do advance st done;
  String.sub st.src start (st.off - start)

(* Numeric literal: decimal, hex (0x...), octal (0...), or floating point
   (with optional exponent). Integer suffixes [uUlL] are accepted and
   ignored. *)
let lex_number st =
  let start = st.off in
  let is_float = ref false in
  if peek st = '0' && (peek2 st = 'x' || peek2 st = 'X') then begin
    advance st; advance st;
    while is_hex_digit (peek st) do advance st done
  end else begin
    while is_digit (peek st) do advance st done;
    if peek st = '.' && is_digit (peek2 st) then begin
      is_float := true;
      advance st;
      while is_digit (peek st) do advance st done
    end;
    if peek st = 'e' || peek st = 'E' then begin
      let save = st.off in
      advance st;
      if peek st = '+' || peek st = '-' then advance st;
      if is_digit (peek st) then begin
        is_float := true;
        while is_digit (peek st) do advance st done
      end else st.off <- save
    end
  end;
  let text = String.sub st.src start (st.off - start) in
  (* consume and drop integer suffixes *)
  while (match peek st with 'u' | 'U' | 'l' | 'L' -> true | _ -> false) do
    advance st
  done;
  if !is_float then Token.FLOAT_LIT (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> Token.INT_LIT n
    | None -> error st (Printf.sprintf "invalid integer literal %S" text)

let lex_escape st =
  (* Called just after the backslash. *)
  let c = peek st in
  advance st;
  match c with
  | 'n' -> 10 | 't' -> 9 | 'r' -> 13 | '0' -> 0 | 'b' -> 8 | 'f' -> 12
  | 'v' -> 11 | 'a' -> 7
  | '\\' -> 92 | '\'' -> 39 | '"' -> 34 | '?' -> 63
  | 'x' ->
    let v = ref 0 in
    let n = ref 0 in
    while is_hex_digit (peek st) && !n < 2 do
      let d = peek st in
      let dv =
        if is_digit d then Char.code d - Char.code '0'
        else (Char.code (Char.lowercase_ascii d) - Char.code 'a') + 10
      in
      v := (!v * 16) + dv;
      incr n;
      advance st
    done;
    if !n = 0 then error st "invalid hex escape" else !v
  | c when is_digit c ->
    (* octal escape, up to 3 digits, first already consumed *)
    let v = ref (Char.code c - Char.code '0') in
    let n = ref 1 in
    while is_digit (peek st) && peek st < '8' && !n < 3 do
      v := (!v * 8) + (Char.code (peek st) - Char.code '0');
      incr n;
      advance st
    done;
    !v
  | c -> error st (Printf.sprintf "unknown escape '\\%c'" c)

let lex_char_lit st =
  advance st; (* opening quote *)
  let v =
    match peek st with
    | '\\' -> advance st; lex_escape st
    | '\'' -> error st "empty character literal"
    | c -> advance st; Char.code c
  in
  if peek st <> '\'' then error st "unterminated character literal";
  advance st;
  Token.CHAR_LIT v

let lex_string_lit st =
  advance st; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_end st then error st "unterminated string literal"
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
        advance st;
        Buffer.add_char buf (Char.chr (lex_escape st land 0xff));
        loop ()
      | '\n' -> error st "newline in string literal"
      | c -> advance st; Buffer.add_char buf c; loop ()
  in
  loop ();
  Token.STRING_LIT (Buffer.contents buf)

let lex_operator st =
  let open Token in
  let c1 = peek st and c2 = peek2 st and c3 = peek3 st in
  let take n t =
    for _ = 1 to n do advance st done;
    t
  in
  match (c1, c2, c3) with
  | ('.', '.', '.') -> take 3 ELLIPSIS
  | ('<', '<', '=') -> take 3 LSHIFT_ASSIGN
  | ('>', '>', '=') -> take 3 RSHIFT_ASSIGN
  | ('-', '>', _) -> take 2 ARROW
  | ('+', '+', _) -> take 2 PLUSPLUS
  | ('-', '-', _) -> take 2 MINUSMINUS
  | ('<', '<', _) -> take 2 LSHIFT
  | ('>', '>', _) -> take 2 RSHIFT
  | ('<', '=', _) -> take 2 LE
  | ('>', '=', _) -> take 2 GE
  | ('=', '=', _) -> take 2 EQEQ
  | ('!', '=', _) -> take 2 NEQ
  | ('&', '&', _) -> take 2 ANDAND
  | ('|', '|', _) -> take 2 OROR
  | ('+', '=', _) -> take 2 PLUS_ASSIGN
  | ('-', '=', _) -> take 2 MINUS_ASSIGN
  | ('*', '=', _) -> take 2 STAR_ASSIGN
  | ('/', '=', _) -> take 2 SLASH_ASSIGN
  | ('%', '=', _) -> take 2 PERCENT_ASSIGN
  | ('&', '=', _) -> take 2 AMP_ASSIGN
  | ('|', '=', _) -> take 2 PIPE_ASSIGN
  | ('^', '=', _) -> take 2 CARET_ASSIGN
  | ('(', _, _) -> take 1 LPAREN
  | (')', _, _) -> take 1 RPAREN
  | ('{', _, _) -> take 1 LBRACE
  | ('}', _, _) -> take 1 RBRACE
  | ('[', _, _) -> take 1 LBRACKET
  | (']', _, _) -> take 1 RBRACKET
  | (';', _, _) -> take 1 SEMI
  | (',', _, _) -> take 1 COMMA
  | (':', _, _) -> take 1 COLON
  | ('?', _, _) -> take 1 QUESTION
  | ('.', _, _) -> take 1 DOT
  | ('+', _, _) -> take 1 PLUS
  | ('-', _, _) -> take 1 MINUS
  | ('*', _, _) -> take 1 STAR
  | ('/', _, _) -> take 1 SLASH
  | ('%', _, _) -> take 1 PERCENT
  | ('&', _, _) -> take 1 AMP
  | ('|', _, _) -> take 1 PIPE
  | ('^', _, _) -> take 1 CARET
  | ('~', _, _) -> take 1 TILDE
  | ('!', _, _) -> take 1 BANG
  | ('<', _, _) -> take 1 LT
  | ('>', _, _) -> take 1 GT
  | ('=', _, _) -> take 1 ASSIGN
  | (c, _, _) -> error st (Printf.sprintf "unexpected character %C" c)

let next_token st : located =
  skip_trivia st;
  let p = pos st in
  if at_end st then { tok = Token.EOF; pos = p }
  else
    let c = peek st in
    let tok =
      if is_ident_start c then
        let s = lex_ident st in
        match Token.keyword_of_string s with
        | Some kw -> kw
        | None -> Token.IDENT s
      else if is_digit c then lex_number st
      else if c = '.' && is_digit (peek2 st) then begin
        (* .5 style float *)
        let start = st.off in
        advance st;
        while is_digit (peek st) do advance st done;
        Token.FLOAT_LIT
          (float_of_string ("0" ^ String.sub st.src start (st.off - start)))
      end
      else if c = '\'' then lex_char_lit st
      else if c = '"' then lex_string_lit st
      else lex_operator st
    in
    { tok; pos = p }

(* Tokenize a full source string. Adjacent string literals are concatenated
   as in C. *)
let tokenize ~file src : located list =
  let st = make ~file src in
  let rec loop acc =
    let t = next_token st in
    match t.tok with
    | Token.EOF -> List.rev (t :: acc)
    | Token.STRING_LIT s -> begin
      (* try to merge a following string literal *)
      let rec merge s =
        let save = (st.off, st.line, st.bol) in
        let t2 = next_token st in
        match t2.tok with
        | Token.STRING_LIT s2 -> merge (s ^ s2)
        | _ ->
          let (o, l, b) = save in
          st.off <- o; st.line <- l; st.bol <- b;
          s
      in
      let s = merge s in
      loop ({ t with tok = Token.STRING_LIT s } :: acc)
    end
    | _ -> loop (t :: acc)
  in
  loop []
