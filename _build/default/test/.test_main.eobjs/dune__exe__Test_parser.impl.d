test/test_parser.ml: Alcotest Ast Cfront Ctypes Hashtbl List Parser Pretty Printf
