lib/suite/prog_bison.ml: Bench_prog Buffer Printf String
