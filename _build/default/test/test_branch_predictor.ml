(* Branch predictor tests: each heuristic firing on a purpose-built
   branch, the priority order, and loop handling. *)

open Cfront
module BP = Core.Branch_predictor
module Cfg = Cfg_ir.Cfg

let compile src =
  let tu = Parser.parse_string ~file:"t.c" src in
  let tc = Typecheck.check tu in
  (tc, Cfg_ir.Build.build tc)

(* Predict the branches of function f in source order of their blocks. *)
let predictions src =
  let tc, prog = compile src in
  let fn = Option.get (Cfg.find_fn prog "f") in
  let usage = Usage.of_fun tc fn.Cfg.fn_def in
  List.map
    (fun (_, br) -> BP.predict tc usage br)
    (Cfg.branches fn)

let check_one name src expected_prediction expected_reason =
  match predictions src with
  | [ (p, r) ] ->
    Alcotest.(check string)
      (name ^ " reason") expected_reason (BP.reason_to_string r);
    Alcotest.(check bool)
      (name ^ " direction") true (p = expected_prediction)
  | l -> Alcotest.failf "%s: expected 1 branch, got %d" name (List.length l)

let test_loop_heuristic () =
  check_one "while" "int f(int n) { while (n) n--; return n; }" BP.Taken
    "loop";
  check_one "for" "int f(int n) { int i; for (i = 0; i < n; i++); return i; }"
    BP.Taken "loop";
  check_one "do" "int f(int n) { do n--; while (n > 0); return n; }" BP.Taken
    "loop"

let test_pointer_heuristic () =
  check_one "p == NULL unlikely"
    "int f(int *p) { if (p == NULL) return 1; return 0; }" BP.NotTaken
    "pointer";
  check_one "p != NULL likely"
    "int f(int *p) { if (p != NULL) return 1; return 0; }" BP.Taken
    "pointer";
  check_one "bare pointer truthy"
    "int f(int *p) { if (p) return 1; return 0; }" BP.Taken "pointer";
  check_one "!p unlikely" "int f(int *p) { if (!p) return 1; return 0; }"
    BP.NotTaken "pointer";
  check_one "pointer equality unlikely"
    "int f(int *p, int *q) { if (p == q) return 1; return 0; }" BP.NotTaken
    "pointer"

let test_error_call_heuristic () =
  check_one "exit in then-arm"
    "int f(int n) { if (n > 1000) exit(1); return n; }" BP.NotTaken
    "error-call";
  check_one "abort in else-arm"
    "int f(int n) { if (n < 100) n++; else abort(); return n; }" BP.Taken
    "error-call"

let test_opcode_heuristic () =
  check_one "x < 0 unlikely" "int f(int x) { if (x < 0) return 1; return 0; }"
    BP.NotTaken "opcode";
  check_one "x >= 0 likely" "int f(int x) { if (x >= 0) return 1; return 0; }"
    BP.Taken "opcode";
  check_one "equality unlikely"
    "int f(int x, int y) { if (x == y) return 1; return 0; }" BP.NotTaken
    "opcode";
  check_one "inequality likely"
    "int f(int x, int y) { if (x != y) return 1; return 0; }" BP.Taken
    "opcode"

let test_multi_and_heuristic () =
  check_one "two conjuncts"
    "int f(int x, int y) { if (x > 1 && y > 1) return 1; return 0; }"
    BP.NotTaken "multi-and";
  check_one "three conjuncts"
    "int f(int x, int y) { if (x > 1 && y > 1 && x > y) return 1; return 0; }"
    BP.NotTaken "multi-and"

let test_store_heuristic () =
  check_one "then-arm writes a variable read later"
    "int f(int x) { int r = 0; if (x > 1) { r = x; } else { x--; } return r; }"
    BP.Taken "store"

let test_return_heuristic () =
  check_one "early return unlikely"
    "int f(int x, int y) { if (x > y) { return y; } x += y; return x; }"
    BP.NotTaken "return"

let test_constant_heuristic () =
  check_one "constant true" "int f(int x) { if (1) return 1; return 0; }"
    BP.Taken "constant";
  check_one "constant false via fold"
    "int f(int x) { if (3 < 2) return 1; return 0; }" BP.NotTaken "constant"

let test_priority_pointer_over_opcode () =
  (* p == NULL matches both pointer and opcode(==); pointer must win *)
  check_one "pointer beats opcode"
    "int f(char *p) { if (p == NULL) return 1; return 0; }" BP.NotTaken
    "pointer"

let test_priority_error_over_return () =
  (* the exit arm also returns; error-call fires first *)
  check_one "error-call beats return"
    "int f(int n) { if (n > 9) { exit(1); return 0; } return n; }"
    BP.NotTaken "error-call"

let test_default () =
  check_one "no heuristic applies"
    "int f(int x, int y) { if (x > y) x++; else y++; return x + y; }"
    BP.Taken "default"

let test_probabilities () =
  Alcotest.(check (float 1e-9)) "taken prob" 0.8 (BP.taken_probability ());
  let tc, prog =
    compile "int f(int *p) { if (p == NULL) return 1; return 0; }"
  in
  let fn = Option.get (Cfg.find_fn prog "f") in
  let usage = Usage.of_fun tc fn.Cfg.fn_def in
  let _, br = List.hd (Cfg.branches fn) in
  Alcotest.(check (float 1e-9)) "not-taken prob" 0.2
    (BP.probability_true tc usage br);
  Alcotest.(check (float 1e-9)) "naive prob" 0.5
    (BP.probability_true_naive br)

(* Wu-Larus evidence combination (the paper's open-question extension). *)
let combined_probability src =
  let tc, prog = compile src in
  let fn = Option.get (Cfg.find_fn prog "f") in
  let usage = Usage.of_fun tc fn.Cfg.fn_def in
  let _, br = List.hd (Cfg.branches fn) in
  BP.probability_true_combined tc usage br.Cfg.br_stmt br.Cfg.br_cond
    ~then_arm:br.Cfg.br_then_arm ~else_arm:br.Cfg.br_else_arm

let test_combined_probabilities () =
  (* no evidence -> 0.5 *)
  Alcotest.(check (float 1e-9)) "no evidence" 0.5
    (combined_probability
       "int f(int x, int y) { if (x > y) x++; else y++; return x + y; }");
  (* single heuristic -> its calibrated probability *)
  Alcotest.(check (float 1e-9)) "opcode alone" (1.0 -. 0.84)
    (combined_probability
       "int f(int x, int y) { if (x == y) x++; else y++; return x + y; }");
  (* agreeing heuristics reinforce: pointer(ne: 0.6 taken) and
     opcode(ne: 0.84 taken) combine above either alone *)
  let p =
    combined_probability
      "int f(int *a, int *b) { int r = 0; if (a != b) r++; else r--; return r; }"
  in
  Alcotest.(check bool) "agreement reinforces" true (p > 0.84);
  (* Dempster-Shafer algebra *)
  Alcotest.(check (float 1e-9)) "ds formula"
    (0.6 *. 0.84 /. ((0.6 *. 0.84) +. (0.4 *. 0.16)))
    (BP.dempster_shafer 0.6 0.84);
  Alcotest.(check (float 1e-9)) "0.5 is neutral" 0.7
    (BP.dempster_shafer 0.5 0.7);
  (* constants saturate *)
  Alcotest.(check (float 1e-9)) "constant true" 1.0
    (combined_probability
       "int f(int x) { if (1 < 2) x++; else x--; return x; }")

let test_constant_while_one () =
  (* `while (1)` has two branches in f: the while and the inner if *)
  match
    predictions "int f(int x) { while (1) { if (x) return 1; } }"
  with
  | [ (BP.Taken, BP.Hconstant); _ ] | [ _; (BP.Taken, BP.Hconstant) ] -> ()
  | _ -> Alcotest.fail "while(1) should be a constant-taken branch"

let suite =
  [ Alcotest.test_case "loop" `Quick test_loop_heuristic;
    Alcotest.test_case "pointer" `Quick test_pointer_heuristic;
    Alcotest.test_case "error call" `Quick test_error_call_heuristic;
    Alcotest.test_case "opcode" `Quick test_opcode_heuristic;
    Alcotest.test_case "multi-and" `Quick test_multi_and_heuristic;
    Alcotest.test_case "store" `Quick test_store_heuristic;
    Alcotest.test_case "return" `Quick test_return_heuristic;
    Alcotest.test_case "constant" `Quick test_constant_heuristic;
    Alcotest.test_case "pointer beats opcode" `Quick
      test_priority_pointer_over_opcode;
    Alcotest.test_case "error beats return" `Quick
      test_priority_error_over_return;
    Alcotest.test_case "default" `Quick test_default;
    Alcotest.test_case "probabilities" `Quick test_probabilities;
    Alcotest.test_case "combined probabilities" `Quick
      test_combined_probabilities;
    Alcotest.test_case "constant while(1)" `Quick test_constant_while_one ]
