(** Markov model of control flow within one function (paper section 5.1).

    The CFG becomes a Markov chain: states are basic blocks, transition
    probabilities come from the branch predictor, and the relative block
    frequencies solve the linear system of the paper's Figure 7, with the
    entry block pinned at one external entry. Unlike the AST walk, this
    model sees break/continue/goto/return edges. *)

module Typecheck = Cfront.Typecheck
module Usage = Cfront.Usage
module Cfg = Cfg_ir.Cfg
module Linsolve = Linalg.Linsolve

(** Outgoing arc probabilities of a block. [branch_prob] overrides the
    P(condition true) model (default: the paper's first-match 0.8/0.2
    rule). *)
val arc_probs :
  ?branch_prob:(Cfg.branch -> float) ->
  Typecheck.t ->
  Usage.t ->
  Cfg.block ->
  (int * float) list

(** All weighted arcs of a function under the probability model. *)
val arcs_of_fn :
  ?branch_prob:(Cfg.branch -> float) ->
  Typecheck.t ->
  Usage.t ->
  Cfg.fn ->
  (int * int * float) list

(** Solve the chain; probability-1 cycles (infinite goto loops) are damped
    until the system is regular, so the solver is total. The degradation
    chain is markov → 20 damped retries → [?fallback] (a labelled thunk,
    e.g. the loop estimate) → flat; exhausting the retries records an
    [Obs.Faultlog] entry. [?inject_key] names this solve for the
    ["solve.intra"] injection point. *)
val solve_blocks :
  ?inject_key:string ->
  ?fallback:string * (unit -> float array) ->
  n:int ->
  entry:int ->
  (int * int * float) list ->
  float array

(** Estimated relative block frequencies (entry = 1). [?usage] supplies a
    precomputed [Usage.of_fun] result so estimator sweeps over the same
    function share one AST walk; results are identical either way.
    [?inject_key] and [?fallback] are forwarded to {!solve_blocks}. *)
val block_freqs :
  ?usage:Usage.t ->
  ?inject_key:string ->
  ?fallback:string * (unit -> float array) ->
  Typecheck.t ->
  Cfg.fn ->
  float array

(** The Wu-Larus variant: if-branch probabilities from combined heuristic
    evidence instead of the binary guess. *)
val block_freqs_combined :
  ?usage:Usage.t ->
  ?inject_key:string ->
  ?fallback:string * (unit -> float array) ->
  Typecheck.t ->
  Cfg.fn ->
  float array

(** The system in presentable form (paper Figures 6-7). *)
type presented = {
  equations : (int * (int * float) list) list;
      (** per block: the weighted predecessor list of its equation *)
  solution : float array;
}

val present : ?usage:Usage.t -> Typecheck.t -> Cfg.fn -> presented
