(* Estimator configuration knobs.

   The paper fixes these (loops iterate 5 times, predicted arms get 0.8,
   switch arms weighted by case labels, all heuristics on) but discusses
   each choice: footnote 5 claims the exact branch probability "did not
   have a significant effect", section 4.1 justifies the standard loop
   count, and footnote 3 reports the switch-weighting comparison. The
   ablation experiments vary one knob at a time to check those claims;
   everything else reads the current configuration. *)

type t = {
  mutable loop_iterations : float;
      (* the standard loop count: test executions per loop entry *)
  mutable branch_probability : float;
      (* probability given to the predicted arm of a binary branch *)
  mutable switch_by_labels : bool;
      (* weight switch arms by label count (true) or equally (false) *)
  (* individual heuristic toggles for the smart predictor *)
  mutable heuristic_pointer : bool;
  mutable heuristic_error_call : bool;
  mutable heuristic_opcode : bool;
  mutable heuristic_multi_and : bool;
  mutable heuristic_store : bool;
  mutable heuristic_return : bool;
}

let defaults () : t =
  { loop_iterations = 5.0;
    branch_probability = 0.8;
    switch_by_labels = true;
    heuristic_pointer = true;
    heuristic_error_call = true;
    heuristic_opcode = true;
    heuristic_multi_and = true;
    heuristic_store = true;
    heuristic_return = true }

let current : t = defaults ()

let reset () =
  let d = defaults () in
  current.loop_iterations <- d.loop_iterations;
  current.branch_probability <- d.branch_probability;
  current.switch_by_labels <- d.switch_by_labels;
  current.heuristic_pointer <- d.heuristic_pointer;
  current.heuristic_error_call <- d.heuristic_error_call;
  current.heuristic_opcode <- d.heuristic_opcode;
  current.heuristic_multi_and <- d.heuristic_multi_and;
  current.heuristic_store <- d.heuristic_store;
  current.heuristic_return <- d.heuristic_return

(* Run [f] with [set] applied to the configuration, restoring the
   defaults afterwards even on exceptions.

   Concurrency contract: the estimators only ever read [current], and
   writes happen here, strictly before [f] starts and after it returns.
   [f] may therefore fan work out across domains (the ablations do, via
   Driver.Parallel), but must not return while tasks that read the
   modified configuration are still in flight — which the fan-out/merge
   shape of [Parallel.map] guarantees. *)
let with_settings (set : t -> unit) (f : unit -> 'a) : 'a =
  set current;
  Fun.protect ~finally:reset f

(* A compact canonical rendering of [current], for use inside cache
   keys (Driver.Incr): two runs with different live configurations must
   never share a cached estimate. Field order is fixed; booleans print
   as 0/1; floats with full round-trip precision. *)
let fingerprint () : string =
  let b v = if v then "1" else "0" in
  Printf.sprintf "li=%h,bp=%h,sw=%s,hp=%s,he=%s,ho=%s,ha=%s,hs=%s,hr=%s"
    current.loop_iterations current.branch_probability
    (b current.switch_by_labels) (b current.heuristic_pointer)
    (b current.heuristic_error_call) (b current.heuristic_opcode)
    (b current.heuristic_multi_and) (b current.heuristic_store)
    (b current.heuristic_return)
