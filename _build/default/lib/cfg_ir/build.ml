(* AST-to-CFG lowering.

   One pass per function with a mutable "current block". Break/continue
   targets and the enclosing switch are threaded through a context; goto
   labels get blocks on demand. After lowering, a cleanup pass removes
   empty forwarding blocks (so block granularity matches a conventional
   compiler's) and computes predecessor lists. *)

module Ast = Cfront.Ast
module Token = Cfront.Token
module Typecheck = Cfront.Typecheck
module Const_fold = Cfront.Const_fold

exception Error of string * Token.pos

type builder = {
  tc : Typecheck.t;
  fname : string;
  mutable blocks : Cfg.block list; (* reverse order *)
  mutable n_blocks : int;
  mutable cur : Cfg.block;         (* block being filled *)
  mutable cur_alive : bool;        (* false after break/goto/return *)
  labels : (string, int) Hashtbl.t;
  site_counter : int ref;          (* shared across the program *)
  mutable sites : Cfg.call_site list;
}

let new_block b : Cfg.block =
  let blk =
    { Cfg.b_id = b.n_blocks; b_instrs = []; b_term = Cfg.Treturn None;
      b_src = None; b_preds = [] }
  in
  b.blocks <- blk :: b.blocks;
  b.n_blocks <- b.n_blocks + 1;
  blk

let switch_to b blk =
  b.cur <- blk;
  b.cur_alive <- true

(* Terminate the current block (if still alive) and mark it dead. *)
let terminate b term =
  if b.cur_alive then begin
    b.cur.Cfg.b_term <- term;
    b.cur_alive <- false
  end

let note_src b (s : Ast.stmt) =
  if b.cur_alive && b.cur.Cfg.b_src = None then
    b.cur.Cfg.b_src <- Some s.Ast.sid

(* Record the call sites contained in an expression, in evaluation order
   (approximated by syntax order; only the set matters). *)
let record_sites b (e : Ast.expr) =
  Ast.iter_expr
    (fun (x : Ast.expr) ->
      match x.Ast.enode with
      | Ast.Call (fn, _) ->
        let callee =
          match fn.Ast.enode with
          | Ast.Ident _ -> begin
            match Typecheck.resolution_of b.tc fn with
            | Some (Typecheck.Rfun name) -> Cfg.Direct name
            | Some (Typecheck.Rbuiltin name) -> Cfg.Builtin name
            | _ -> Cfg.Indirect
          end
          | _ -> Cfg.Indirect
        in
        let cs =
          { Cfg.cs_id = !(b.site_counter); cs_fun = b.fname;
            cs_block = b.cur.Cfg.b_id; cs_expr = x; cs_callee = callee }
        in
        incr b.site_counter;
        b.sites <- cs :: b.sites
      | _ -> ())
    e

let add_expr b (e : Ast.expr) =
  if b.cur_alive then begin
    record_sites b e;
    b.cur.Cfg.b_instrs <- Cfg.Iexpr e :: b.cur.Cfg.b_instrs
  end

let add_local_init b slot (d : Ast.decl) =
  if b.cur_alive then begin
    (match d.Ast.d_init with
    | Some (Ast.Iexpr e) -> record_sites b e
    | _ -> ());
    b.cur.Cfg.b_instrs <- Cfg.Ilocal_init (slot, d) :: b.cur.Cfg.b_instrs
  end

let label_block b label =
  match Hashtbl.find_opt b.labels label with
  | Some id -> id
  | None ->
    let blk = new_block b in
    Hashtbl.replace b.labels label blk.Cfg.b_id;
    blk.Cfg.b_id

type loop_ctx = { break_to : int option; continue_to : int option }

(* Cases collected while lowering a switch body. *)
type switch_ctx = {
  mutable cases : (int * int) list; (* value, block *)
  mutable default : int option;
}

let block_by_id b id = List.find (fun blk -> blk.Cfg.b_id = id) b.blocks

(* ------------------------------------------------------------------ *)

let rec lower_stmt b (loop : loop_ctx) (sw : switch_ctx option)
    (s : Ast.stmt) =
  note_src b s;
  match s.Ast.snode with
  | Ast.Snull -> ()
  | Ast.Sexpr e -> add_expr b e
  | Ast.Sblock items ->
    List.iter
      (function
        | Ast.Bstmt s -> lower_stmt b loop sw s
        | Ast.Bdecl d -> lower_decl b d)
      items
  | Ast.Sif (cond, then_s, else_s) -> begin
    record_sites b cond;
    let then_blk = new_block b in
    let join = new_block b in
    let else_id, else_arm =
      match else_s with
      | Some es ->
        let eb = new_block b in
        (eb.Cfg.b_id, Some es)
      | None -> (join.Cfg.b_id, None)
    in
    let br =
      { Cfg.br_cond = cond; br_kind = Cfg.Kif; br_stmt = s;
        br_then_arm = Some then_s; br_else_arm = else_arm }
    in
    terminate b (Cfg.Tbranch (br, then_blk.Cfg.b_id, else_id));
    switch_to b then_blk;
    lower_stmt b loop sw then_s;
    terminate b (Cfg.Tjump join.Cfg.b_id);
    (match else_s with
    | Some es ->
      switch_to b (block_by_id b else_id);
      lower_stmt b loop sw es;
      terminate b (Cfg.Tjump join.Cfg.b_id)
    | None -> ());
    switch_to b join
  end
  | Ast.Swhile (cond, body) -> begin
    let header = new_block b in
    let body_blk = new_block b in
    let exit_blk = new_block b in
    terminate b (Cfg.Tjump header.Cfg.b_id);
    switch_to b header;
    header.Cfg.b_src <- Some s.Ast.sid;
    record_sites b cond;
    let br =
      { Cfg.br_cond = cond; br_kind = Cfg.Kwhile; br_stmt = s;
        br_then_arm = Some body; br_else_arm = None }
    in
    terminate b (Cfg.Tbranch (br, body_blk.Cfg.b_id, exit_blk.Cfg.b_id));
    switch_to b body_blk;
    let inner =
      { break_to = Some exit_blk.Cfg.b_id;
        continue_to = Some header.Cfg.b_id }
    in
    lower_stmt b inner sw body;
    terminate b (Cfg.Tjump header.Cfg.b_id);
    switch_to b exit_blk
  end
  | Ast.Sdo (body, cond) -> begin
    let body_blk = new_block b in
    let test_blk = new_block b in
    let exit_blk = new_block b in
    terminate b (Cfg.Tjump body_blk.Cfg.b_id);
    switch_to b body_blk;
    let inner =
      { break_to = Some exit_blk.Cfg.b_id;
        continue_to = Some test_blk.Cfg.b_id }
    in
    lower_stmt b inner sw body;
    terminate b (Cfg.Tjump test_blk.Cfg.b_id);
    switch_to b test_blk;
    test_blk.Cfg.b_src <- Some s.Ast.sid;
    record_sites b cond;
    let br =
      { Cfg.br_cond = cond; br_kind = Cfg.Kdo; br_stmt = s;
        br_then_arm = Some body; br_else_arm = None }
    in
    terminate b (Cfg.Tbranch (br, body_blk.Cfg.b_id, exit_blk.Cfg.b_id));
    switch_to b exit_blk
  end
  | Ast.Sfor (init, cond, step, body) -> begin
    (match init with
    | Ast.Fnone -> ()
    | Ast.Fexpr e -> add_expr b e
    | Ast.Fdecl ds -> List.iter (lower_decl b) ds);
    let header = new_block b in
    let body_blk = new_block b in
    let step_blk = new_block b in
    let exit_blk = new_block b in
    terminate b (Cfg.Tjump header.Cfg.b_id);
    switch_to b header;
    header.Cfg.b_src <- Some s.Ast.sid;
    (match cond with
    | Some cond ->
      record_sites b cond;
      let br =
        { Cfg.br_cond = cond; br_kind = Cfg.Kfor; br_stmt = s;
          br_then_arm = Some body; br_else_arm = None }
      in
      terminate b (Cfg.Tbranch (br, body_blk.Cfg.b_id, exit_blk.Cfg.b_id))
    | None -> terminate b (Cfg.Tjump body_blk.Cfg.b_id));
    switch_to b body_blk;
    let inner =
      { break_to = Some exit_blk.Cfg.b_id;
        continue_to = Some step_blk.Cfg.b_id }
    in
    lower_stmt b inner sw body;
    terminate b (Cfg.Tjump step_blk.Cfg.b_id);
    switch_to b step_blk;
    step_blk.Cfg.b_src <- Some s.Ast.sid;
    Option.iter (fun e -> add_expr b e) step;
    terminate b (Cfg.Tjump header.Cfg.b_id);
    switch_to b exit_blk
  end
  | Ast.Sswitch (scrutinee, body) -> begin
    record_sites b scrutinee;
    let exit_blk = new_block b in
    let sw_ctx = { cases = []; default = None } in
    let dispatch = b.cur in
    let dispatch_alive = b.cur_alive in
    (* Lower the body into fresh blocks; each case label starts one. *)
    b.cur_alive <- false;
    let inner = { loop with break_to = Some exit_blk.Cfg.b_id } in
    lower_stmt b inner (Some sw_ctx) body;
    terminate b (Cfg.Tjump exit_blk.Cfg.b_id);
    if dispatch_alive then begin
      dispatch.Cfg.b_term <-
        Cfg.Tswitch
          ( scrutinee,
            List.rev sw_ctx.cases,
            Option.value ~default:exit_blk.Cfg.b_id sw_ctx.default );
      (* dispatch was never formally terminated via [terminate]; it is
         dead now in the sense that lowering continues at exit *)
    end;
    switch_to b exit_blk
  end
  | Ast.Scase (value_expr, body) -> begin
    let v =
      try Const_fold.eval_int_exn b.tc value_expr
      with Typecheck.Error (m, p) -> raise (Error (m, p))
    in
    let case_blk = new_block b in
    case_blk.Cfg.b_src <- Some s.Ast.sid;
    (* fall-through from the previous case *)
    terminate b (Cfg.Tjump case_blk.Cfg.b_id);
    (match sw with
    | Some ctx -> ctx.cases <- (v, case_blk.Cfg.b_id) :: ctx.cases
    | None -> raise (Error ("case outside switch", s.Ast.spos)));
    switch_to b case_blk;
    lower_stmt b loop sw body
  end
  | Ast.Sdefault body -> begin
    let blk = new_block b in
    blk.Cfg.b_src <- Some s.Ast.sid;
    terminate b (Cfg.Tjump blk.Cfg.b_id);
    (match sw with
    | Some ctx ->
      if ctx.default <> None then
        raise (Error ("duplicate default", s.Ast.spos));
      ctx.default <- Some blk.Cfg.b_id
    | None -> raise (Error ("default outside switch", s.Ast.spos)));
    switch_to b blk;
    lower_stmt b loop sw body
  end
  | Ast.Sbreak -> begin
    match loop.break_to with
    | Some target -> terminate b (Cfg.Tjump target)
    | None -> raise (Error ("break outside loop/switch", s.Ast.spos))
  end
  | Ast.Scontinue -> begin
    match loop.continue_to with
    | Some target -> terminate b (Cfg.Tjump target)
    | None -> raise (Error ("continue outside loop", s.Ast.spos))
  end
  | Ast.Sgoto label -> terminate b (Cfg.Tjump (label_block b label))
  | Ast.Slabel (label, body) -> begin
    let id = label_block b label in
    terminate b (Cfg.Tjump id);
    switch_to b (block_by_id b id);
    note_src b s;
    lower_stmt b loop sw body
  end
  | Ast.Sreturn e -> begin
    Option.iter (record_sites b) e;
    terminate b (Cfg.Treturn e)
  end

and lower_decl b (d : Ast.decl) =
  match Hashtbl.find_opt b.tc.Typecheck.decl_slots d.Ast.d_id with
  | Some slot when slot >= 0 ->
    if d.Ast.d_init <> None then add_local_init b slot d
  | _ -> () (* lifted static: initialized at program start *)

(* ------------------------------------------------------------------ *)
(* Cleanup: drop empty forwarding blocks, renumber, compute preds. *)

let simplify (blocks : Cfg.block array) (entry : int) :
    Cfg.block array * int =
  let n = Array.length blocks in
  (* Resolve chains of empty Tjump blocks. *)
  let forward = Array.make n (-1) in
  let rec resolve id seen =
    if forward.(id) >= 0 then forward.(id)
    else if List.mem id seen then id (* empty self-loop: keep *)
    else begin
      let blk = blocks.(id) in
      match (blk.Cfg.b_instrs, blk.Cfg.b_term) with
      | [], Cfg.Tjump target ->
        let final = resolve target (id :: seen) in
        forward.(id) <- final;
        final
      | _ ->
        forward.(id) <- id;
        id
    end
  in
  for i = 0 to n - 1 do
    ignore (resolve i [])
  done;
  let entry = forward.(entry) in
  (* Which blocks survive? The entry plus every forwarding target reachable
     from it. *)
  let reachable = Array.make n false in
  let rec visit id =
    let id = forward.(id) in
    if not reachable.(id) then begin
      reachable.(id) <- true;
      List.iter visit (Cfg.successors blocks.(id).Cfg.b_term)
    end
  in
  visit entry;
  let remap = Array.make n (-1) in
  let kept = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if reachable.(i) then begin
      remap.(i) <- !count;
      incr count;
      kept := blocks.(i) :: !kept
    end
  done;
  let kept = Array.of_list (List.rev !kept) in
  let redirect id = remap.(forward.(id)) in
  let new_blocks =
    Array.mapi
      (fun new_id blk ->
        let term =
          match blk.Cfg.b_term with
          | Cfg.Tjump t -> Cfg.Tjump (redirect t)
          | Cfg.Tbranch (br, a, b) -> Cfg.Tbranch (br, redirect a, redirect b)
          | Cfg.Tswitch (e, cases, d) ->
            Cfg.Tswitch
              (e, List.map (fun (v, t) -> (v, redirect t)) cases, redirect d)
          | Cfg.Treturn e -> Cfg.Treturn e
        in
        { blk with
          Cfg.b_id = new_id;
          b_instrs = List.rev blk.Cfg.b_instrs;
          b_term = term;
          b_preds = [] })
      kept
  in
  (* Predecessors. *)
  Array.iter
    (fun blk ->
      List.iter
        (fun succ ->
          let s = new_blocks.(succ) in
          if not (List.mem blk.Cfg.b_id s.Cfg.b_preds) then
            s.Cfg.b_preds <- blk.Cfg.b_id :: s.Cfg.b_preds)
        (Cfg.successors blk.Cfg.b_term))
    new_blocks;
  (new_blocks, remap.(entry))

(* Remap the block indices recorded in call sites after simplification is
   not possible (the builder stored original ids), so we instead rebuild
   site block ids by searching for the containing block. We avoid that by
   recording sites against original ids and translating with the same
   remap; to keep the interface simple we recompute from instructions. *)
let relocate_sites (blocks : Cfg.block array) (sites : Cfg.call_site list) :
    Cfg.call_site list =
  (* call expression node id -> new block id *)
  let home = Hashtbl.create 64 in
  Array.iter
    (fun blk ->
      let note (e : Ast.expr) =
        Ast.iter_expr
          (fun x ->
            match x.Ast.enode with
            | Ast.Call _ -> Hashtbl.replace home x.Ast.eid blk.Cfg.b_id
            | _ -> ())
          e
      in
      List.iter
        (function
          | Cfg.Iexpr e -> note e
          | Cfg.Ilocal_init (_, d) -> begin
            match d.Ast.d_init with
            | Some (Ast.Iexpr e) -> note e
            | _ -> ()
          end)
        blk.Cfg.b_instrs;
      match blk.Cfg.b_term with
      | Cfg.Tbranch (br, _, _) -> note br.Cfg.br_cond
      | Cfg.Tswitch (e, _, _) -> note e
      | Cfg.Treturn (Some e) -> note e
      | Cfg.Tjump _ | Cfg.Treturn None -> ())
    blocks;
  List.filter_map
    (fun cs ->
      match Hashtbl.find_opt home cs.Cfg.cs_expr.Ast.eid with
      | Some blk -> Some { cs with Cfg.cs_block = blk }
      | None -> None (* call site in unreachable code *))
    sites

(* ------------------------------------------------------------------ *)

let build_fn tc site_counter (fi : Typecheck.fun_info) : Cfg.fn =
  let f = fi.Typecheck.fi_def in
  let b =
    { tc; fname = f.Ast.f_name; blocks = []; n_blocks = 0;
      cur = { Cfg.b_id = 0; b_instrs = []; b_term = Cfg.Treturn None;
              b_src = None; b_preds = [] };
      cur_alive = false; labels = Hashtbl.create 4; site_counter;
      sites = [] }
  in
  let entry = new_block b in
  switch_to b entry;
  entry.Cfg.b_src <- Some f.Ast.f_body.Ast.sid;
  lower_stmt b { break_to = None; continue_to = None } None f.Ast.f_body;
  terminate b (Cfg.Treturn None);
  let blocks = Array.of_list (List.rev b.blocks) in
  let blocks, entry_id = simplify blocks entry.Cfg.b_id in
  let sites = relocate_sites blocks (List.rev b.sites) in
  { Cfg.fn_name = f.Ast.f_name; fn_def = f; fn_info = fi;
    fn_blocks = blocks; fn_entry = entry_id; fn_call_sites = sites }

(* Build CFGs for all defined functions of a typechecked unit, assigning
   program-wide call-site ids. *)
let build (tc : Typecheck.t) : Cfg.program =
  let site_counter = ref 0 in
  let fns =
    List.map
      (fun name ->
        match Typecheck.fun_info tc name with
        | Some fi -> build_fn tc site_counter fi
        | None -> invalid_arg ("unknown function " ^ name))
      tc.Typecheck.fun_order
  in
  (* Re-number call sites densely in (function, block) order so that
     unreachable-code sites dropped by simplification leave no holes. *)
  let counter = ref 0 in
  let fns =
    List.map
      (fun fn ->
        let sites =
          List.map
            (fun cs ->
              let cs = { cs with Cfg.cs_id = !counter } in
              incr counter;
              cs)
            fn.Cfg.fn_call_sites
        in
        { fn with Cfg.fn_call_sites = sites })
      fns
  in
  let all =
    Array.of_list (List.concat_map (fun fn -> fn.Cfg.fn_call_sites) fns)
  in
  { Cfg.prog_tc = tc; prog_fns = fns; prog_sites = all }
